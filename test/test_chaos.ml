(* Chaos suite: every fault plan must leave the answer untouched.

   Each scenario runs a workload fault-free, then under an injected fault
   plan, and checks that (1) the verdict is identical, (2) the recovery
   machinery is visible in the event log, and (3) the same plan and seed
   replay the identical event timeline.

   Fault instants are derived from the workload's fault-free duration so
   every plan actually lands mid-run regardless of instance size. *)

module C = Gridsat_core
module Cfg = C.Config
module F = Grid.Fault

let check = Alcotest.check
let bool = Alcotest.bool

(* ---------- apparatus ---------- *)

(* Six uniform hosts split across two sites, master on the east side, so
   site partitions cut real traffic.  Inter-site links use the default
   wide-area parameters (40 ms, 2 MB/s). *)
let testbed2site () =
  let base = C.Testbed.uniform ~n:6 ~speed:500. () in
  let hosts =
    List.mapi
      (fun i (h : C.Testbed.host) ->
        let r = h.C.Testbed.resource in
        let site = if i < 3 then "east" else "west" in
        {
          h with
          C.Testbed.resource =
            Grid.Resource.make ~id:r.Grid.Resource.id ~name:r.Grid.Resource.name ~site
              ~speed:r.Grid.Resource.speed ~mem_bytes:r.Grid.Resource.mem_bytes
              ~kind:r.Grid.Resource.kind;
        })
      base.C.Testbed.hosts
  in
  { base with C.Testbed.name = "chaos-2site"; master_site = "east"; hosts }

(* Eager splitting, light checkpoints on a short period, quick failure
   detection: the fault-tolerance machinery gets exercised even on small
   instances. *)
let chaos_config =
  {
    Cfg.default with
    Cfg.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
    checkpoint = Cfg.Light;
    checkpoint_period = 5.;
    heartbeat_period = 5.;
    suspect_timeout = 30.;
  }

(* Certified runs: every UNSAT claim must carry a DRUP fragment that
   checks under the branch's journaled guiding path.  Clause sharing is
   off (a foreign clause is not derivable from the receiver's own
   fragment) and integrity framing is on, as [Config.validate] demands. *)
let certify_config =
  { chaos_config with Cfg.certify = true; integrity_checks = true; share_max_len = 0 }

(* Straggler defense on: health-aware ranking, adaptive deadlines and
   hedged re-execution, with jittered retry backoff. *)
let hedge_config =
  {
    chaos_config with
    Cfg.hedge = true;
    adaptive_timeouts = true;
    retry_jitter = 0.1;
    (* a fine monitor tick so the p99 crossing is noticed promptly *)
    heartbeat_period = 2.;
    (* no clause sharing: a straggler's branch cannot be refuted for free
       by imported clauses, so the stuck copy really is stuck — the
       scenario the hedge exists for *)
    share_max_len = 0;
  }

let workloads =
  [
    ("php-6-5", Workloads.Php.instance ~pigeons:6 ~holes:5);
    ("php-7-6", Workloads.Php.instance ~pigeons:7 ~holes:6);
    ("planted-30", Workloads.Random_sat.planted ~nvars:30 ~ratio:5.0 ~seed:11 ());
  ]

let answer_kind = function
  | C.Master.Sat _ -> "SAT"
  | C.Master.Unsat -> "UNSAT"
  | C.Master.Unknown _ -> "UNKNOWN"

let has_event p (r : C.Master.result) = List.exists (fun e -> p e.C.Events.kind) r.C.Master.events

let solve ?(config = chaos_config) ?(fault_plan = []) ?on_master ?testbed cnf =
  let testbed = match testbed with Some tb -> tb | None -> testbed2site () in
  C.Gridsat.solve ~config ~fault_plan ?on_master ~testbed cnf

(* A scenario bundles a fault plan (parameterised by the fault-free run
   time) with the events that prove the machinery reacted.  Proof events
   are only required of UNSAT workloads: those cannot terminate while the
   faulted host's subproblem is unaccounted for, so detection and
   recovery must appear; a SAT run may legitimately finish first. *)
type scenario = {
  sname : string;
  config : Cfg.t;
  plan : float -> F.spec list;
  proof : (C.Events.kind -> bool) list;
}

(* host 1 registers first and receives the initial problem; it saves an
   initial checkpoint the moment the problem arrives *)
let crash_time t = Float.max 3. (0.3 *. t)

let scenarios =
  [
    {
      sname = "crash";
      config = chaos_config;
      plan = (fun t -> [ F.Crash_host { host = 1; at = crash_time t } ]);
      proof =
        [
          (function C.Events.Host_crashed 1 -> true | _ -> false);
          (function C.Events.Client_suspected { client = 1 } -> true | _ -> false);
          (function C.Events.Recovered_from_checkpoint { client = 1; _ } -> true | _ -> false);
        ];
    };
    {
      sname = "hang";
      config = chaos_config;
      plan = (fun t -> [ F.Hang_host { host = 1; at = crash_time t } ]);
      proof =
        [
          (function C.Events.Host_hung 1 -> true | _ -> false);
          (function C.Events.Client_suspected { client = 1 } -> true | _ -> false);
          (function C.Events.Recovered_from_checkpoint { client = 1; _ } -> true | _ -> false);
        ];
    };
    {
      sname = "partition";
      (* the lease must outlive the partition or the whole west side gets
         written off; the default retry schedule spans the outage *)
      config = { chaos_config with Cfg.suspect_timeout = 1000. };
      plan =
        (fun t ->
          [ F.Partition_site { site = "west"; from_t = 0.2 *. t; until_t = 0.65 *. t } ]);
      proof = [];
    };
    {
      sname = "loss-p02";
      config = chaos_config;
      plan =
        (fun _ ->
          [
            F.Drop_messages
              { src_site = None; dst_site = None; p = 0.2; from_t = 0.; until_t = infinity };
          ]);
      proof = [ (function C.Events.Message_retried _ -> true | _ -> false) ];
    };
    {
      sname = "corrupt-p02";
      config = chaos_config;
      plan =
        (fun _ ->
          [
            F.Corrupt_messages
              { src_site = None; dst_site = None; p = 0.02; from_t = 0.; until_t = infinity };
          ]);
      proof = [ (function C.Events.Corrupt_message_detected _ -> true | _ -> false) ];
    };
    {
      sname = "corrupt-p05-certified";
      config = certify_config;
      plan =
        (fun _ ->
          [
            F.Corrupt_messages
              { src_site = None; dst_site = None; p = 0.05; from_t = 0.; until_t = infinity };
          ]);
      proof =
        [
          (function C.Events.Corrupt_message_detected _ -> true | _ -> false);
          (function C.Events.Unsat_fragment_certified _ -> true | _ -> false);
        ];
    };
    {
      sname = "straggler";
      config = hedge_config;
      plan = (fun t -> [ F.Slow_host { host = 1; at = Float.max 2. (0.2 *. t); factor = 20. } ]);
      proof = [ (function C.Events.Host_slowed { host = 1; _ } -> true | _ -> false) ];
    };
    {
      sname = "flaky";
      config = hedge_config;
      plan =
        (fun t ->
          [
            F.Flaky_host
              {
                host = 1;
                factor = 10.;
                period = Float.max 2. (0.2 *. t);
                from_t = Float.max 1. (0.1 *. t);
                until_t = infinity;
              };
          ]);
      proof = [ (function C.Events.Host_slowed { host = 1; _ } -> true | _ -> false) ];
    };
    {
      sname = "choke";
      (* a saturated fabric for the first 60% of the run: every site pair
         shares a 4 KB window, so the burst of initial problem transfers
         overruns it and the reliable channel must retry into later
         windows; the choke lifts before exhausted retry chains could
         wedge a transfer whose payload exceeds a whole window *)
      config = chaos_config;
      plan =
        (fun t ->
          [
            F.Choke_link
              {
                src_site = None;
                dst_site = None;
                bytes_per_window = 4096;
                window = 2.;
                from_t = 0.;
                until_t = Float.max 3. (0.6 *. t);
              };
          ]);
      proof = [ (function C.Events.Message_retried _ -> true | _ -> false) ];
    };
    {
      sname = "disk-full";
      config = chaos_config;
      (* a 1-byte quota no compaction can satisfy, lifted mid-run: the
         journal must enter degraded mode and recover on relief.  The
         fault perturbs no messages, so the faulted run keeps the
         baseline timeline and both instants land inside it. *)
      plan = (fun t -> [ F.Disk_full { at = 0.3 *. t; quota = 1; until_t = 0.6 *. t } ]);
      proof =
        [
          (function C.Events.Forced_compaction _ -> true | _ -> false);
          (function C.Events.Journal_degraded _ -> true | _ -> false);
          (function C.Events.Journal_recovered _ -> true | _ -> false);
        ];
    };
    {
      sname = "choke-disk-full";
      config = chaos_config;
      (* both resource faults at once; the disk never recovers, so the
         journal stays degraded to the verdict *)
      plan =
        (fun t ->
          [
            F.Choke_link
              {
                src_site = None;
                dst_site = None;
                bytes_per_window = 4096;
                window = 2.;
                from_t = 0.;
                until_t = Float.max 3. (0.6 *. t);
              };
            F.Disk_full { at = Float.max 2. (0.2 *. t); quota = 1; until_t = infinity };
          ]);
      proof =
        [
          (function C.Events.Message_retried _ -> true | _ -> false);
          (function C.Events.Journal_degraded _ -> true | _ -> false);
        ];
    };
    {
      sname = "master-crash";
      (* a tight retry schedule so clients detect the outage quickly, and a
         short grace so reconciliation lands well before the run ends *)
      config =
        { chaos_config with Cfg.retry_base = 0.5; retry_max_attempts = 4; resync_grace = 5. };
      plan =
        (fun t ->
          [ F.Crash_master { at = Float.max 4. (0.3 *. t); restart_after = Float.max 10. (0.15 *. t) } ]);
      proof =
        [
          (function C.Events.Master_crashed -> true | _ -> false);
          (function C.Events.Master_restarted -> true | _ -> false);
          (function C.Events.Client_resynced _ -> true | _ -> false);
        ];
    };
  ]

(* ---------- the matrix ---------- *)

let run_scenario s (wname, cnf) () =
  let baseline = solve ~config:s.config cnf in
  let plan = s.plan baseline.C.Master.time in
  let faulted = solve ~config:s.config ~fault_plan:plan cnf in
  check bool "fault-free run produces a real verdict" true
    (answer_kind baseline.C.Master.answer <> "UNKNOWN");
  check Alcotest.string
    (Printf.sprintf "%s/%s: verdict unchanged under faults" s.sname wname)
    (answer_kind baseline.C.Master.answer)
    (answer_kind faulted.C.Master.answer);
  if answer_kind baseline.C.Master.answer = "UNSAT" then
    List.iteri
      (fun i p ->
        check bool (Printf.sprintf "%s/%s: proof event %d present" s.sname wname i) true
          (has_event p faulted))
      s.proof;
  (* same plan, same seed: the timeline must replay exactly *)
  let again = solve ~config:s.config ~fault_plan:plan cnf in
  check bool
    (Printf.sprintf "%s/%s: identical event timeline on replay" s.sname wname)
    true
    (faulted.C.Master.events = again.C.Master.events)

(* Partition runs generate retries only when critical traffic crosses the
   cut; assert it on the workload where splitting reliably spans sites. *)
let test_partition_retries () =
  let s = List.find (fun s -> s.sname = "partition") scenarios in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config:s.config cnf in
  let r = solve ~config:s.config ~fault_plan:(s.plan baseline.C.Master.time) cnf in
  check bool "messages were dropped by the cut" true (r.C.Master.dropped_messages > 0);
  check bool "reliable channel retried across the cut" true
    (has_event (function C.Events.Message_retried _ -> true | _ -> false) r)

let test_loss_counters_surface () =
  let s = List.find (fun s -> s.sname = "loss-p02") scenarios in
  let r = solve ~config:s.config ~fault_plan:(s.plan 0.) (Workloads.Php.instance ~pigeons:6 ~holes:5) in
  check bool "drops surfaced in the result" true
    (r.C.Master.dropped_messages > 0 && r.C.Master.dropped_bytes > 0);
  check bool "retries surfaced in the result" true (r.C.Master.retries > 0)

(* ---------- master durability ---------- *)

let master_crash_scenario () = List.find (fun s -> s.sname = "master-crash") scenarios

(* The journal is the failover contract: replaying it must be a pure
   function of its contents.  Replay the post-run journal twice and demand
   bit-identical state digests; the journal must also have seen real
   traffic and compacted along the way. *)
let test_journal_replay_deterministic () =
  let s = master_crash_scenario () in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let captured = ref None in
  let baseline = solve ~config:s.config cnf in
  let r =
    solve ~config:{ s.config with Cfg.journal_compact_every = 8 }
      ~fault_plan:(s.plan baseline.C.Master.time)
      ~on_master:(fun m -> captured := Some m)
      cnf
  in
  check bool "faulted run still concludes" true (answer_kind r.C.Master.answer = "UNSAT");
  match !captured with
  | None -> Alcotest.fail "master not captured"
  | Some m ->
      let j = C.Master.journal m in
      check bool "journal recorded the run" true (C.Journal.appended j > 0);
      check bool "journal compacted" true (C.Journal.compactions j > 0);
      let d1 = C.Journal.digest (C.Journal.replay j) in
      let d2 = C.Journal.digest (C.Journal.replay j) in
      check Alcotest.string "replay is deterministic" d1 d2;
      (match (C.Journal.replay j).C.Journal.verdict with
      | Some v -> check Alcotest.string "journal carries the verdict" "UNSAT" v
      | None -> Alcotest.fail "no verdict journaled")

(* Worst case for durability: the master is down, and while it is down the
   client holding a subproblem dies too — with checkpointing disabled, so
   there is nothing to restore from.  The replacement master must notice
   at reconciliation that nobody holds the journaled subproblem and
   re-derive it from the original CNF plus the journaled lineage.  The
   verdict must survive. *)
let test_client_dies_during_outage_no_checkpoint () =
  let s = master_crash_scenario () in
  let config = { s.config with Cfg.checkpoint = Cfg.No_checkpoint } in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config cnf in
  check bool "baseline is unsat" true (answer_kind baseline.C.Master.answer = "UNSAT");
  let t = baseline.C.Master.time in
  let crash_at = Float.max 4. (0.3 *. t) in
  let plan =
    [
      F.Crash_master { at = crash_at; restart_after = Float.max 10. (0.15 *. t) };
      (* host 1 holds the initial problem; kill it while the master is dark *)
      F.Crash_host { host = 1; at = crash_at +. 1. };
    ]
  in
  let r = solve ~config ~fault_plan:plan cnf in
  check Alcotest.string "verdict survives losing both master and holder" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "the lost subproblem was re-derived from lineage" true
    (has_event (function C.Events.Rederived_from_lineage _ -> true | _ -> false) r);
  check bool "rederivations surfaced in the result" true (r.C.Master.rederivations > 0);
  check bool "master crash surfaced in the result" true (r.C.Master.master_crashes = 1)

(* Regression: under loss and retries a client's Finished_unsat can reach
   the master before the Split_ok / Problem_received that would register
   its pid, so the journal can carry the refutation ahead of the
   registration.  Pids are never reused, so the tombstone must win on
   replay — otherwise the late registration resurrects a branch nobody
   holds and the run wedges. *)
let test_refutation_tombstone_survives_reorder () =
  let open C.Journal in
  let pid = (2, 1) and donor_pid = (1, 1) in
  let path = [ Sat.Types.pos 3 ] and donor_path = [ Sat.Types.neg 3 ] in
  let j = create ~compact_every:100 () in
  append j (Registered { client = 1 });
  append j (Assigned { pid = donor_pid; dst = 1; path = [] });
  append j (Refuted { pid });
  (* the reordered registrations arrive after the refutation *)
  append j (Split { donor = 1; donor_pid; donor_path; pid; dst = 5; path });
  append j (Adopted { pid; client = 5; path });
  append j (Started { pid; client = 5 });
  let st = replay j in
  check bool "refuted pid stays dead" false (Hashtbl.mem st.live pid);
  check bool "refuted pid has no holder" false (Hashtbl.mem st.holder pid);
  check bool "tombstone recorded" true (Hashtbl.mem st.refuted pid);
  check bool "donor branch unaffected" true (Hashtbl.mem st.live donor_pid);
  (* the gate must also hold across compaction into the snapshot *)
  let j2 = create ~compact_every:2 () in
  append j2 (Refuted { pid });
  append j2 (Adopted { pid; client = 5; path });
  append j2 (Started { pid; client = 5 });
  let st2 = replay j2 in
  check bool "tombstone survives compaction" false (Hashtbl.mem st2.live pid);
  check Alcotest.string "reordered replays agree" (digest st) (digest (replay j))

(* ---------- integrity and certification ---------- *)

(* The acceptance bar for certified runs: a multi-client UNSAT under 5%
   payload corruption must still terminate with the right verdict, every
   refuted branch covered by a checked fragment, and the corruption must
   be visible in the counters — detected payloads, NACKed retransmits —
   with zero quarantines (corruption is detected at the frame, it never
   reaches the checker as a wrong answer). *)
let test_certified_unsat_under_corruption () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let plan =
    [
      F.Corrupt_messages
        { src_site = None; dst_site = None; p = 0.05; from_t = 0.; until_t = infinity };
    ]
  in
  let r = solve ~config:certify_config ~fault_plan:plan cnf in
  check Alcotest.string "certified UNSAT under 5% corruption" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "the run actually split across clients" true (r.C.Master.splits > 0);
  check bool "corrupt payloads were detected" true (r.C.Master.corrupt_detected > 0);
  check bool "corrupt reliable envelopes were NACKed" true (r.C.Master.nacks > 0);
  check bool "refuted branches carried certified fragments" true
    (r.C.Master.certified_fragments > 0);
  check Alcotest.int "no honest client was quarantined" 0 r.C.Master.quarantines

(* A forged refutation: a busy client claims the initial subproblem is
   unsatisfiable with a proof that derives nothing.  The fragment check
   must fail, the forger must be quarantined and its own work re-derived
   elsewhere, and the final verdict must be unaffected. *)
let test_forged_refutation_quarantined () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let r =
    solve ~config:certify_config
      ~on_master:(fun m ->
        C.Master.schedule m ~delay:3. (fun () ->
            match C.Master.busy_client_ids m with
            | [] -> ()
            | c :: _ ->
                C.Master.inject m ~src:c
                  (C.Protocol.Finished_unsat { pid = (0, 0); proof = Some "" })))
      cnf
  in
  check Alcotest.string "verdict survives a forged refutation" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "certification failure logged" true
    (has_event (function C.Events.Certification_failed _ -> true | _ -> false) r);
  check bool "forger quarantined" true
    (has_event (function C.Events.Client_quarantined _ -> true | _ -> false) r);
  check bool "quarantine surfaced in the result" true (r.C.Master.quarantines > 0)

(* Checkpoint rot: every snapshot's at-rest seal is flipped just before
   the holder of the initial problem crashes.  The recovery path must
   refuse the rotten snapshot and fall back to lineage re-derivation
   instead of silently restoring garbage. *)
let test_checkpoint_rot_falls_back_to_lineage () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve cnf in
  let at = crash_time baseline.C.Master.time in
  let plan =
    [
      F.Corrupt_storage { at; journal_records = 0; checkpoints = true };
      F.Crash_host { host = 1; at = at +. 0.01 };
    ]
  in
  let r = solve ~fault_plan:plan cnf in
  check Alcotest.string "verdict survives checkpoint rot" "UNSAT" (answer_kind r.C.Master.answer);
  check bool "storage corruption logged" true
    (has_event (function C.Events.Storage_corrupted _ -> true | _ -> false) r);
  check bool "rotten snapshot discarded" true (r.C.Master.checkpoints_discarded > 0);
  check bool "lost work re-derived from lineage" true
    (has_event (function C.Events.Rederived_from_lineage _ -> true | _ -> false) r)

(* Journal tail rot: records whose seal no longer matches are scrubbed on
   replay — the good prefix survives, the torn tail is dropped and
   counted, never half-applied. *)
let test_journal_corrupt_tail_scrubbed () =
  let open C.Journal in
  let j = create ~compact_every:100 () in
  append j (Registered { client = 1 });
  append j (Assigned { pid = (0, 0); dst = 1; path = [] });
  append j (Refuted { pid = (0, 0) });
  corrupt_tail j ~n:2;
  let st = replay j in
  check Alcotest.int "both rotten records dropped" 2 (records_dropped j);
  check bool "good prefix survived: client registration applied" true
    (Hashtbl.mem st.clients 1);
  check bool "rotten refutation not applied" false (Hashtbl.mem st.refuted (0, 0))

let test_checkpoint_corrupt_all_discards () =
  let cnf = Workloads.Php.instance ~pigeons:4 ~holes:3 in
  let ck = C.Checkpoint.create cnf in
  let sp = C.Subproblem.initial cnf in
  ignore (C.Checkpoint.save ck ~client:1 ~mode:Cfg.Heavy sp);
  (match C.Checkpoint.restore ck ~client:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "intact snapshot must restore");
  C.Checkpoint.corrupt_all ck;
  (match C.Checkpoint.restore ck ~client:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "rotten snapshot must be refused");
  check Alcotest.int "discard counted" 1 (C.Checkpoint.discarded ck);
  (* discarding is destructive: a second restore finds nothing *)
  check bool "rotten snapshot removed from the store" true
    (C.Checkpoint.restore ck ~client:1 = None)

(* ---------- straggler defense and hedged execution ---------- *)

(* A scenario engineered so hedging must fire: the host holding the
   initial problem turns into an extreme straggler early, the rest of the
   fleet populates the duration histogram with quick results, and idle
   capacity appears as branches drain — the monitor then clones the
   straggler's subproblem to an idle host. *)
let straggler_plan _t = [ F.Slow_host { host = 1; at = 2.; factor = 10_000. } ]

(* A wider fleet than the matrix testbed: idle hosts must exist at the
   moment the straggler's elapsed time crosses the fleet p99, or the
   hedge gate (straggler AND spare capacity) never opens. *)
let hedge_testbed () = C.Testbed.uniform ~n:10 ~speed:500. ()
let hedge_cnf = Workloads.Php.instance ~pigeons:8 ~holes:7

let hedge_ledger (r : C.Master.result) =
  List.fold_left
    (fun (launched, fenced) e ->
      match e.C.Events.kind with
      | C.Events.Hedge_launched { pid; _ } -> (pid :: launched, fenced)
      | C.Events.Hedge_cancelled { pid; _ } -> (launched, pid :: fenced)
      | _ -> (launched, fenced))
    ([], []) r.C.Master.events

let test_hedge_exactly_once () =
  let cnf = hedge_cnf in
  let baseline = solve ~config:hedge_config ~testbed:(hedge_testbed ()) cnf in
  check Alcotest.string "baseline is unsat" "UNSAT" (answer_kind baseline.C.Master.answer);
  let plan = straggler_plan baseline.C.Master.time in
  let captured = ref None in
  let r =
    solve ~config:hedge_config ~fault_plan:plan ~testbed:(hedge_testbed ())
      ~on_master:(fun m -> captured := Some m)
      cnf
  in
  check Alcotest.string "verdict survives the straggler" "UNSAT" (answer_kind r.C.Master.answer);
  check bool "a hedge was launched" true (r.C.Master.hedges > 0);
  (* exactly-once: every hedged pid resolves to one winner and one fenced
     loser — launch and fence ledgers must match pid for pid *)
  let launched, fenced = hedge_ledger r in
  check Alcotest.int "hedge counter matches the event ledger" r.C.Master.hedges
    (List.length launched);
  check Alcotest.int "fence counter matches the event ledger" r.C.Master.hedge_cancellations
    (List.length fenced);
  check bool "every launched hedge was fenced exactly once" true
    (List.sort compare launched = List.sort compare fenced);
  (* the pool came back: nobody is still marked busy after the verdict *)
  (match !captured with
  | None -> Alcotest.fail "master not captured"
  | Some m -> check (Alcotest.list Alcotest.int) "no busy client left" [] (C.Master.busy_client_ids m));
  (* same plan, same seed: the hedged timeline replays exactly *)
  let again = solve ~config:hedge_config ~fault_plan:plan ~testbed:(hedge_testbed ()) cnf in
  check bool "identical event timeline on replay" true (r.C.Master.events = again.C.Master.events)

let test_hedge_beats_no_hedge () =
  (* C13 in miniature: with an extreme straggler holding a branch, the
     hedged run must finish no later than the defenseless one *)
  let cnf = hedge_cnf in
  let no_hedge = { hedge_config with Cfg.hedge = false; adaptive_timeouts = false } in
  let baseline = solve ~config:no_hedge ~testbed:(hedge_testbed ()) cnf in
  let plan = straggler_plan baseline.C.Master.time in
  let slow = solve ~config:no_hedge ~fault_plan:plan ~testbed:(hedge_testbed ()) cnf in
  let hedged = solve ~config:hedge_config ~fault_plan:plan ~testbed:(hedge_testbed ()) cnf in
  check Alcotest.string "same verdict either way" (answer_kind slow.C.Master.answer)
    (answer_kind hedged.C.Master.answer);
  check bool "the straggler actually hurt the defenseless run" true
    (slow.C.Master.time > baseline.C.Master.time +. 1e-6);
  check bool "hedging recovers (most of) the loss" true
    (hedged.C.Master.time <= slow.C.Master.time +. 1e-6)

let test_hedge_certify_stable () =
  (* hedging must not break split-tree certification: duplicate copies of
     a branch are fenced before they can double-cover it *)
  let config = { certify_config with Cfg.hedge = true; adaptive_timeouts = true } in
  let cnf = hedge_cnf in
  let baseline = solve ~config ~testbed:(hedge_testbed ()) cnf in
  let r =
    solve ~config
      ~fault_plan:(straggler_plan baseline.C.Master.time)
      ~testbed:(hedge_testbed ()) cnf
  in
  check Alcotest.string "certified UNSAT under a straggler" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "refuted branches carried certified fragments" true
    (r.C.Master.certified_fragments > 0);
  check Alcotest.int "no honest client was quarantined" 0 r.C.Master.quarantines;
  let launched, fenced = hedge_ledger r in
  check bool "hedge fences stay exactly-once under certification" true
    (List.sort compare launched = List.sort compare fenced)

let test_probation_on_crash () =
  (* a crash trips the circuit breaker: the host enters probation and the
     transition is visible in the event log *)
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config:hedge_config cnf in
  let plan = [ F.Crash_host { host = 1; at = crash_time baseline.C.Master.time } ] in
  let r = solve ~config:hedge_config ~fault_plan:plan cnf in
  check Alcotest.string "verdict survives" "UNSAT" (answer_kind r.C.Master.answer);
  check bool "crash put the host on probation" true
    (has_event (function C.Events.Host_probation { host = 1; _ } -> true | _ -> false) r)

(* ---------- hot-standby failover ---------- *)

(* Replication on over the chaos base: a one-second ship cadence so the
   shadow journal tracks closely, a lease comfortably above the heartbeat
   period, and a retry schedule wide enough that the promoted master's
   resync broadcasts survive a partition window (the retries re-frame at
   the successor's epoch, so a heal delivers the succession notice). *)
let standby_config =
  {
    chaos_config with
    Cfg.standby = true;
    ship_interval = 1.;
    standby_lease = 8.;
    retry_base = 1.;
    retry_max_attempts = 6;
    resync_grace = 8.;
  }

(* The primary dies mid-run and never comes back; the standby's lease
   expires and its shadow journal takes over.  Zero jobs lost: the
   verdict is identical to the fault-free run, with no [Master_restarted]
   anywhere — the failover redirected the fleet instead of replaying a
   replacement at the old endpoint. *)
let test_failover_crash_during_ship () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config:standby_config cnf in
  check Alcotest.string "standby baseline is unsat" "UNSAT" (answer_kind baseline.C.Master.answer);
  check bool "journal batches shipped fault-free" true (baseline.C.Master.ships > 0);
  check Alcotest.int "no promotion without a fault" 0 baseline.C.Master.promotions;
  check Alcotest.int "replication never diverged fault-free" 0
    baseline.C.Master.replication_divergences;
  let at = Float.max 4. (0.3 *. baseline.C.Master.time) in
  let plan = [ F.Crash_master { at; restart_after = infinity } ] in
  let captured = ref None in
  let r =
    solve ~config:standby_config ~fault_plan:plan ~on_master:(fun m -> captured := Some m) cnf
  in
  check Alcotest.string "zero jobs lost: verdict survives without a replay-restart" "UNSAT"
    (answer_kind r.C.Master.answer);
  check Alcotest.int "exactly one promotion" 1 r.C.Master.promotions;
  check Alcotest.int "replication never diverged" 0 r.C.Master.replication_divergences;
  check bool "promotion visible in the event log" true
    (has_event (function C.Events.Standby_promoted _ -> true | _ -> false) r);
  check bool "the old endpoint never restarted" false
    (has_event (function C.Events.Master_restarted -> true | _ -> false) r);
  check bool "clients resynced to the promoted master" true
    (has_event (function C.Events.Client_resynced _ -> true | _ -> false) r);
  (match !captured with
  | None -> Alcotest.fail "master not captured"
  | Some m ->
      check Alcotest.int "run concluded at epoch 1" 1 (C.Master.epoch m);
      check bool "master reports itself promoted" true (C.Master.promoted m));
  (* same seed, same plan: the joblog digest must be byte-stable *)
  let captured2 = ref None in
  let again =
    solve ~config:standby_config ~fault_plan:plan ~on_master:(fun m -> captured2 := Some m) cnf
  in
  check bool "identical event timeline on replay" true
    (r.C.Master.events = again.C.Master.events);
  match (!captured, !captured2) with
  | Some a, Some b ->
      check Alcotest.string "journal digest byte-stable across same-seed replays"
        (C.Journal.digest (C.Journal.replay (C.Master.journal a)))
        (C.Journal.digest (C.Journal.replay (C.Master.journal b)))
  | _ -> Alcotest.fail "masters not captured"

(* Synchronous shipping: every append reaches the standby before the
   primary proceeds, so the shadow journal has zero lag when the crash
   lands.  The failover contract is the same. *)
let test_failover_ship_sync () =
  let config = { standby_config with Cfg.ship_sync = true } in
  let cnf = Workloads.Php.instance ~pigeons:6 ~holes:5 in
  let baseline = solve ~config cnf in
  check Alcotest.string "sync-ship baseline is unsat" "UNSAT"
    (answer_kind baseline.C.Master.answer);
  let at = Float.max 4. (0.3 *. baseline.C.Master.time) in
  let r =
    solve ~config ~fault_plan:[ F.Crash_master { at; restart_after = infinity } ] cnf
  in
  check Alcotest.string "verdict survives under sync shipping" "UNSAT"
    (answer_kind r.C.Master.answer);
  check Alcotest.int "exactly one promotion" 1 r.C.Master.promotions;
  check Alcotest.int "replication never diverged" 0 r.C.Master.replication_divergences

(* Dueling masters: a partition cuts the standby off while the primary is
   perfectly healthy.  The lease expires, the standby promotes, and when
   the partition heals the fleet must observably refuse the superseded
   primary's traffic (stale-epoch rejections) and fence it for good. *)
let test_failover_partition_then_heal () =
  (* a longer grace so reconciliation happens after the heal delivers the
     retried resync broadcasts to the fleet *)
  let config = { standby_config with Cfg.resync_grace = 15. } in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config cnf in
  let p0 = Float.max 3. (0.2 *. baseline.C.Master.time) in
  let plan =
    [ F.Partition_site { site = C.Replica.site; from_t = p0; until_t = p0 +. 12. } ]
  in
  let captured = ref None in
  let r = solve ~config ~fault_plan:plan ~on_master:(fun m -> captured := Some m) cnf in
  check Alcotest.string "verdict survives dueling masters" "UNSAT"
    (answer_kind r.C.Master.answer);
  check Alcotest.int "exactly one promotion" 1 r.C.Master.promotions;
  check bool "stale-epoch frames observably rejected after the heal" true
    (r.C.Master.stale_epoch_rejections > 0);
  check bool "stale rejection visible in the event log" true
    (has_event (function C.Events.Stale_epoch_rejected _ -> true | _ -> false) r);
  check bool "the superseded primary was fenced" true
    (has_event (function C.Events.Stale_primary_fenced _ -> true | _ -> false) r);
  check Alcotest.int "replication never diverged" 0 r.C.Master.replication_divergences;
  (match !captured with
  | None -> Alcotest.fail "master not captured"
  | Some m -> check Alcotest.int "run concluded at epoch 1" 1 (C.Master.epoch m));
  (* same plan, same seed: the dueling timeline replays exactly *)
  let again = solve ~config ~fault_plan:plan cnf in
  check bool "identical event timeline on replay" true (r.C.Master.events = again.C.Master.events)

(* Dueling masters must never double-grant: run the same partition under
   full certification.  If the superseded primary's traffic could still
   place or resolve work, a branch would end up double-covered or a
   conflicting claim would fail its fragment check — either way a
   quarantine.  A clean certified UNSAT with zero quarantines is the
   strongest exactly-once witness the pipeline has. *)
let test_failover_dueling_never_double_grants () =
  let config =
    {
      certify_config with
      Cfg.standby = true;
      ship_interval = 1.;
      standby_lease = 8.;
      retry_base = 1.;
      retry_max_attempts = 6;
      resync_grace = 15.;
    }
  in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config cnf in
  let p0 = Float.max 3. (0.2 *. baseline.C.Master.time) in
  let plan =
    [ F.Partition_site { site = C.Replica.site; from_t = p0; until_t = p0 +. 12. } ]
  in
  let r = solve ~config ~fault_plan:plan cnf in
  check Alcotest.string "certified UNSAT under dueling masters" "UNSAT"
    (answer_kind r.C.Master.answer);
  check Alcotest.int "exactly one promotion" 1 r.C.Master.promotions;
  check bool "refuted branches carried certified fragments" true
    (r.C.Master.certified_fragments > 0);
  check Alcotest.int "no client was quarantined: nothing was double-granted" 0
    r.C.Master.quarantines

(* The replication-lag worst case: the primary dies before its first
   non-empty ship flush, so the standby promotes onto an effectively
   empty shadow journal.  Two sub-cases: the crash lands before any
   client even got the root problem (everything must be bootstrapped
   from the CNF), or just after the root was assigned (the sole record
   of the search is a busy client's resync reply).  Both must still end
   in the fault-free verdict with one promotion and no replay-restart. *)
let test_failover_empty_shadow () =
  let cnf = Workloads.Php.instance ~pigeons:6 ~holes:5 in
  let baseline = solve ~config:standby_config cnf in
  check Alcotest.string "empty-shadow baseline is unsat" "UNSAT"
    (answer_kind baseline.C.Master.answer);
  List.iter
    (fun (label, at) ->
      let r =
        solve ~config:standby_config
          ~fault_plan:[ F.Crash_master { at; restart_after = infinity } ]
          cnf
      in
      check Alcotest.string (label ^ ": verdict survives an empty shadow") "UNSAT"
        (answer_kind r.C.Master.answer);
      check Alcotest.int (label ^ ": exactly one promotion") 1 r.C.Master.promotions;
      check bool (label ^ ": no replay-restart") false
        (has_event (function C.Events.Master_restarted -> true | _ -> false) r))
    [ ("crash before first assignment", 0.5); ("crash right after first assignment", 1.4) ]

(* Property (satellite): the continuous consistency check never trips.
   Every acknowledged ship batch compares the standby's shadow replay
   digest against the primary's journal digest at flush time; under
   arbitrary seeded loss/duplication plans — the reliable channel's
   retries and receiver-side dedup absorbing the noise — and in either
   shipping mode, the digests must match at every ack. *)
let prop_shadow_digest_matches =
  let gen =
    let open QCheck.Gen in
    float_bound_inclusive 0.2 >>= fun drop_p ->
    float_bound_inclusive 0.2 >>= fun dup_p ->
    bool >|= fun sync -> (drop_p, dup_p, sync)
  in
  let print (drop_p, dup_p, sync) =
    Printf.sprintf "drop_p=%g dup_p=%g ship=%s" drop_p dup_p (if sync then "sync" else "async")
  in
  QCheck.Test.make ~count:10 ~name:"standby shadow digest matches at every ship ack"
    (QCheck.make ~print gen) (fun (drop_p, dup_p, sync) ->
      let config = { standby_config with Cfg.ship_sync = sync } in
      let plan =
        [
          F.Drop_messages
            { src_site = None; dst_site = None; p = drop_p; from_t = 0.; until_t = infinity };
          F.Duplicate_messages { p = dup_p; extra = 0.1; from_t = 0.; until_t = infinity };
        ]
      in
      let r = solve ~config ~fault_plan:plan (Workloads.Php.instance ~pigeons:6 ~holes:5) in
      answer_kind r.C.Master.answer = "UNSAT"
      && r.C.Master.ships > 0
      && r.C.Master.replication_divergences = 0)

let () =
  let matrix =
    List.concat_map
      (fun s ->
        List.map
          (fun w ->
            Alcotest.test_case (Printf.sprintf "%s on %s" s.sname (fst w)) `Slow (run_scenario s w))
          workloads)
      scenarios
  in
  Alcotest.run "chaos"
    [
      ("matrix", matrix);
      ( "counters",
        [
          Alcotest.test_case "partition retries" `Slow test_partition_retries;
          Alcotest.test_case "loss counters" `Slow test_loss_counters_surface;
        ] );
      ( "durability",
        [
          Alcotest.test_case "journal replay deterministic" `Slow test_journal_replay_deterministic;
          Alcotest.test_case "client dies during outage, no checkpoint" `Slow
            test_client_dies_during_outage_no_checkpoint;
          Alcotest.test_case "refutation tombstone survives reorder" `Quick
            test_refutation_tombstone_survives_reorder;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "certified UNSAT under 5% corruption" `Slow
            test_certified_unsat_under_corruption;
          Alcotest.test_case "forged refutation quarantined" `Slow
            test_forged_refutation_quarantined;
          Alcotest.test_case "checkpoint rot falls back to lineage" `Slow
            test_checkpoint_rot_falls_back_to_lineage;
          Alcotest.test_case "journal corrupt tail scrubbed" `Quick
            test_journal_corrupt_tail_scrubbed;
          Alcotest.test_case "checkpoint corrupt_all discards" `Quick
            test_checkpoint_corrupt_all_discards;
        ] );
      ( "stragglers",
        [
          Alcotest.test_case "hedge exactly-once" `Slow test_hedge_exactly_once;
          Alcotest.test_case "hedge beats no-hedge" `Slow test_hedge_beats_no_hedge;
          Alcotest.test_case "hedge under certification" `Slow test_hedge_certify_stable;
          Alcotest.test_case "probation on crash" `Slow test_probation_on_crash;
        ] );
      ( "failover",
        [
          Alcotest.test_case "crash during ship" `Slow test_failover_crash_during_ship;
          Alcotest.test_case "empty shadow journal" `Slow test_failover_empty_shadow;
          Alcotest.test_case "sync shipping" `Slow test_failover_ship_sync;
          Alcotest.test_case "partition then heal" `Slow test_failover_partition_then_heal;
          Alcotest.test_case "dueling masters never double-grant" `Slow
            test_failover_dueling_never_double_grants;
          QCheck_alcotest.to_alcotest prop_shadow_digest_matches;
        ] );
    ]
