(* Chaos suite: every fault plan must leave the answer untouched.

   Each scenario runs a workload fault-free, then under an injected fault
   plan, and checks that (1) the verdict is identical, (2) the recovery
   machinery is visible in the event log, and (3) the same plan and seed
   replay the identical event timeline.

   Fault instants are derived from the workload's fault-free duration so
   every plan actually lands mid-run regardless of instance size. *)

module C = Gridsat_core
module Cfg = C.Config
module F = Grid.Fault

let check = Alcotest.check
let bool = Alcotest.bool

(* ---------- apparatus ---------- *)

(* Six uniform hosts split across two sites, master on the east side, so
   site partitions cut real traffic.  Inter-site links use the default
   wide-area parameters (40 ms, 2 MB/s). *)
let testbed2site () =
  let base = C.Testbed.uniform ~n:6 ~speed:500. () in
  let hosts =
    List.mapi
      (fun i (h : C.Testbed.host) ->
        let r = h.C.Testbed.resource in
        let site = if i < 3 then "east" else "west" in
        {
          h with
          C.Testbed.resource =
            Grid.Resource.make ~id:r.Grid.Resource.id ~name:r.Grid.Resource.name ~site
              ~speed:r.Grid.Resource.speed ~mem_bytes:r.Grid.Resource.mem_bytes
              ~kind:r.Grid.Resource.kind;
        })
      base.C.Testbed.hosts
  in
  { base with C.Testbed.name = "chaos-2site"; master_site = "east"; hosts }

(* Eager splitting, light checkpoints on a short period, quick failure
   detection: the fault-tolerance machinery gets exercised even on small
   instances. *)
let chaos_config =
  {
    Cfg.default with
    Cfg.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
    checkpoint = Cfg.Light;
    checkpoint_period = 5.;
    heartbeat_period = 5.;
    suspect_timeout = 30.;
  }

let workloads =
  [
    ("php-6-5", Workloads.Php.instance ~pigeons:6 ~holes:5);
    ("php-7-6", Workloads.Php.instance ~pigeons:7 ~holes:6);
    ("planted-30", Workloads.Random_sat.planted ~nvars:30 ~ratio:5.0 ~seed:11 ());
  ]

let answer_kind = function
  | C.Master.Sat _ -> "SAT"
  | C.Master.Unsat -> "UNSAT"
  | C.Master.Unknown _ -> "UNKNOWN"

let has_event p (r : C.Master.result) = List.exists (fun e -> p e.C.Events.kind) r.C.Master.events

let solve ?(config = chaos_config) ?(fault_plan = []) cnf =
  C.Gridsat.solve ~config ~fault_plan ~testbed:(testbed2site ()) cnf

(* A scenario bundles a fault plan (parameterised by the fault-free run
   time) with the events that prove the machinery reacted.  Proof events
   are only required of UNSAT workloads: those cannot terminate while the
   faulted host's subproblem is unaccounted for, so detection and
   recovery must appear; a SAT run may legitimately finish first. *)
type scenario = {
  sname : string;
  config : Cfg.t;
  plan : float -> F.spec list;
  proof : (C.Events.kind -> bool) list;
}

(* host 1 registers first and receives the initial problem; it saves an
   initial checkpoint the moment the problem arrives *)
let crash_time t = Float.max 3. (0.3 *. t)

let scenarios =
  [
    {
      sname = "crash";
      config = chaos_config;
      plan = (fun t -> [ F.Crash_host { host = 1; at = crash_time t } ]);
      proof =
        [
          (function C.Events.Host_crashed 1 -> true | _ -> false);
          (function C.Events.Client_suspected { client = 1 } -> true | _ -> false);
          (function C.Events.Recovered_from_checkpoint { client = 1; _ } -> true | _ -> false);
        ];
    };
    {
      sname = "hang";
      config = chaos_config;
      plan = (fun t -> [ F.Hang_host { host = 1; at = crash_time t } ]);
      proof =
        [
          (function C.Events.Host_hung 1 -> true | _ -> false);
          (function C.Events.Client_suspected { client = 1 } -> true | _ -> false);
          (function C.Events.Recovered_from_checkpoint { client = 1; _ } -> true | _ -> false);
        ];
    };
    {
      sname = "partition";
      (* the lease must outlive the partition or the whole west side gets
         written off; the default retry schedule spans the outage *)
      config = { chaos_config with Cfg.suspect_timeout = 1000. };
      plan =
        (fun t ->
          [ F.Partition_site { site = "west"; from_t = 0.2 *. t; until_t = 0.65 *. t } ]);
      proof = [];
    };
    {
      sname = "loss-p02";
      config = chaos_config;
      plan =
        (fun _ ->
          [
            F.Drop_messages
              { src_site = None; dst_site = None; p = 0.2; from_t = 0.; until_t = infinity };
          ]);
      proof = [ (function C.Events.Message_retried _ -> true | _ -> false) ];
    };
  ]

(* ---------- the matrix ---------- *)

let run_scenario s (wname, cnf) () =
  let baseline = solve ~config:s.config cnf in
  let plan = s.plan baseline.C.Master.time in
  let faulted = solve ~config:s.config ~fault_plan:plan cnf in
  check bool "fault-free run produces a real verdict" true
    (answer_kind baseline.C.Master.answer <> "UNKNOWN");
  check Alcotest.string
    (Printf.sprintf "%s/%s: verdict unchanged under faults" s.sname wname)
    (answer_kind baseline.C.Master.answer)
    (answer_kind faulted.C.Master.answer);
  if answer_kind baseline.C.Master.answer = "UNSAT" then
    List.iteri
      (fun i p ->
        check bool (Printf.sprintf "%s/%s: proof event %d present" s.sname wname i) true
          (has_event p faulted))
      s.proof;
  (* same plan, same seed: the timeline must replay exactly *)
  let again = solve ~config:s.config ~fault_plan:plan cnf in
  check bool
    (Printf.sprintf "%s/%s: identical event timeline on replay" s.sname wname)
    true
    (faulted.C.Master.events = again.C.Master.events)

(* Partition runs generate retries only when critical traffic crosses the
   cut; assert it on the workload where splitting reliably spans sites. *)
let test_partition_retries () =
  let s = List.find (fun s -> s.sname = "partition") scenarios in
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve ~config:s.config cnf in
  let r = solve ~config:s.config ~fault_plan:(s.plan baseline.C.Master.time) cnf in
  check bool "messages were dropped by the cut" true (r.C.Master.dropped_messages > 0);
  check bool "reliable channel retried across the cut" true
    (has_event (function C.Events.Message_retried _ -> true | _ -> false) r)

let test_loss_counters_surface () =
  let s = List.find (fun s -> s.sname = "loss-p02") scenarios in
  let r = solve ~config:s.config ~fault_plan:(s.plan 0.) (Workloads.Php.instance ~pigeons:6 ~holes:5) in
  check bool "drops surfaced in the result" true
    (r.C.Master.dropped_messages > 0 && r.C.Master.dropped_bytes > 0);
  check bool "retries surfaced in the result" true (r.C.Master.retries > 0)

let () =
  let matrix =
    List.concat_map
      (fun s ->
        List.map
          (fun w ->
            Alcotest.test_case (Printf.sprintf "%s on %s" s.sname (fst w)) `Slow (run_scenario s w))
          workloads)
      scenarios
  in
  Alcotest.run "chaos"
    [
      ("matrix", matrix);
      ( "counters",
        [
          Alcotest.test_case "partition retries" `Slow test_partition_retries;
          Alcotest.test_case "loss counters" `Slow test_loss_counters_surface;
        ] );
    ]
