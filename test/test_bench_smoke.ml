(* Smoke tests for the benchmark harness: the scale constants are
   coherent, a real Table 1 row runs end to end, and the category logic
   classifies outcomes correctly. *)

module R = Workloads.Registry
module C = Gridsat_core

let check = Alcotest.check
let bool = Alcotest.bool

let test_scale_constants () =
  check bool "timeouts ordered" true
    (Bench_lib.Scale.gridsat_timeout_solvable < Bench_lib.Scale.gridsat_timeout_challenge);
  check bool "zchaff allowance largest" true
    (Bench_lib.Scale.zchaff_timeout > Bench_lib.Scale.gridsat_timeout_challenge);
  check bool "paper scaling" true (Bench_lib.Scale.paper_seconds 6000. = 150.)

let test_scaled_testbed () =
  let tb = Bench_lib.Scale.grads () in
  check bool "34 hosts" true (C.Testbed.nhosts tb = 34);
  let fast = C.Testbed.fastest tb in
  check bool "memory scaled down" true
    (fast.C.Testbed.resource.Grid.Resource.mem_bytes <= 64 * 1024 * 1024)

let test_run_row_easy () =
  let entry =
    match R.find "glassy-sat-sel_N210_n.cnf" with Some e -> e | None -> Alcotest.fail "missing row"
  in
  let row = Bench_lib.Runner.run_row ~testbed:(Bench_lib.Scale.grads ()) entry in
  check bool "status consistent" true (Bench_lib.Runner.status_consistent row);
  check bool "lands in paper band" true
    (Bench_lib.Runner.measured_category row = R.Both_solved)

let test_row_timeouts_by_category () =
  let get name = match R.find name with Some e -> e | None -> Alcotest.fail "missing" in
  check bool "solvable rows get the short window" true
    (Bench_lib.Scale.row_timeout (get "qg2-8.cnf") = Bench_lib.Scale.gridsat_timeout_solvable);
  check bool "challenge rows get the long window" true
    (Bench_lib.Scale.row_timeout (get "7pipe.cnf") = Bench_lib.Scale.gridsat_timeout_challenge)

let () =
  Alcotest.run "bench_smoke"
    [
      ( "bench",
        [
          Alcotest.test_case "scale constants" `Quick test_scale_constants;
          Alcotest.test_case "scaled testbed" `Quick test_scaled_testbed;
          Alcotest.test_case "run one row" `Slow test_run_row_easy;
          Alcotest.test_case "timeout by category" `Quick test_row_timeouts_by_category;
        ] );
    ]
