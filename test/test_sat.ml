(* Unit, integration and property tests for the CDCL core (lib/sat). *)

module T = Sat.Types
module Cnf = Sat.Cnf
module Solver = Sat.Solver
module Brute = Sat.Brute
module Model = Sat.Model
module Vec = Sat.Vec
module Heap = Sat.Heap
module Dimacs = Sat.Dimacs

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- helpers ---------- *)

let solve_cnf ?config cnf =
  let s = Solver.create ?config cnf in
  Solver.solve s

let is_sat = function Solver.Sat _ -> true | _ -> false
let is_unsat = function Solver.Unsat -> true | _ -> false

let random_cnf_gen ~max_vars ~max_clauses ~max_len =
  let open QCheck.Gen in
  int_range 1 max_vars >>= fun nv ->
  int_range 0 max_clauses >>= fun nc ->
  let lit_gen = map2 (fun v s -> if s then v else -v) (int_range 1 nv) bool in
  let clause_gen = list_size (int_range 1 max_len) lit_gen in
  list_size (return nc) clause_gen >|= fun clauses -> Cnf.make ~nvars:nv clauses

let arbitrary_cnf =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Cnf.pp c)
    (random_cnf_gen ~max_vars:10 ~max_clauses:40 ~max_len:4)

(* ---------- Types ---------- *)

let test_lit_encoding () =
  check int "pos var" 3 (T.var (T.pos 3));
  check int "neg var" 3 (T.var (T.neg 3));
  check bool "pos polarity" true (T.is_pos (T.pos 5));
  check bool "neg polarity" false (T.is_pos (T.neg 5));
  check int "negate pos" (T.neg 4) (T.negate (T.pos 4));
  check int "negate neg" (T.pos 4) (T.negate (T.neg 4));
  check int "dimacs roundtrip pos" 7 (T.to_int (T.lit_of_int 7));
  check int "dimacs roundtrip neg" (-7) (T.to_int (T.lit_of_int (-7)))

let test_lit_of_int_zero () =
  Alcotest.check_raises "zero rejected" (Invalid_argument "Types.lit_of_int: zero") (fun () ->
      ignore (T.lit_of_int 0))

let test_lit_value () =
  check bool "pos under true" true (T.lit_value T.True (T.pos 1) = T.True);
  check bool "neg under true" true (T.lit_value T.True (T.neg 1) = T.False);
  check bool "pos under false" true (T.lit_value T.False (T.pos 1) = T.False);
  check bool "neg under false" true (T.lit_value T.False (T.neg 1) = T.True);
  check bool "unknown" true (T.lit_value T.Unknown (T.pos 1) = T.Unknown)

let prop_lit_roundtrip =
  QCheck.Test.make ~name:"lit_of_int/to_int roundtrip" ~count:200
    QCheck.(map (fun i -> if i = 0 then 1 else i) (int_range (-1000) 1000))
    (fun i -> T.to_int (T.lit_of_int i) = i)

let prop_negate_involution =
  QCheck.Test.make ~name:"negate is an involution" ~count:200
    QCheck.(int_range 1 1000)
    (fun v -> T.negate (T.negate (T.pos v)) = T.pos v)

(* ---------- Vec ---------- *)

let test_vec_basic () =
  let v = Vec.create 0 in
  check bool "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  check int "size" 100 (Vec.size v);
  check int "get" 50 (Vec.get v 49);
  check int "last" 100 (Vec.last v);
  check int "pop" 100 (Vec.pop v);
  check int "size after pop" 99 (Vec.size v);
  Vec.shrink v 10;
  check int "size after shrink" 10 (Vec.size v);
  check int "fold sum" 55 (Vec.fold ( + ) 0 v);
  Vec.clear v;
  check bool "cleared" true (Vec.is_empty v)

let test_vec_swap_remove () =
  let v = Vec.of_list 0 [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 0;
  check int "size" 3 (Vec.size v);
  check int "moved last into slot" 4 (Vec.get v 0);
  check bool "contents" true (List.sort compare (Vec.to_list v) = [ 2; 3; 4 ])

let test_vec_bounds () =
  let v = Vec.of_list 0 [ 1 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let prop_vec_to_of_list =
  QCheck.Test.make ~name:"Vec.of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list 0 xs) = xs)

(* ---------- Heap ---------- *)

let test_heap_pop_order () =
  let score = [| 0.; 5.; 1.; 9.; 3.; 7. |] in
  let h = Heap.create ~nvars:5 ~gt:(fun a b -> score.(a) > score.(b)) in
  List.iter (Heap.insert h) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> Heap.remove_max h) in
  check bool "pops by descending score" true (order = [ 3; 5; 1; 4; 2 ]);
  check bool "empty afterwards" true (Heap.is_empty h)

let test_heap_update () =
  let score = Array.make 6 0. in
  let h = Heap.create ~nvars:5 ~gt:(fun a b -> score.(a) > score.(b)) in
  List.iter (Heap.insert h) [ 1; 2; 3; 4; 5 ];
  score.(2) <- 100.;
  Heap.update h 2;
  check int "updated var first" 2 (Heap.remove_max h)

let test_heap_duplicate_insert () =
  let h = Heap.create ~nvars:3 ~gt:(fun a b -> a > b) in
  Heap.insert h 2;
  Heap.insert h 2;
  check int "no duplicate" 1 (Heap.size h)

let prop_heap_sorts =
  let gen = QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range 0. 100.)) in
  QCheck.Test.make ~name:"heap pops in score order" ~count:100 gen (fun scores ->
      let n = List.length scores in
      QCheck.assume (n > 0);
      let score = Array.of_list (0. :: scores) in
      let h = Heap.create ~nvars:n ~gt:(fun a b -> score.(a) > score.(b)) in
      for v = 1 to n do
        Heap.insert h v
      done;
      let popped = List.init n (fun _ -> Heap.remove_max h) in
      let keys = List.map (fun v -> score.(v)) popped in
      List.sort (fun a b -> Float.compare b a) keys = keys)

(* ---------- more Vec / Stats / Model coverage ---------- *)

let test_vec_copy_independent () =
  let v = Vec.of_list 0 [ 1; 2; 3 ] in
  let w = Vec.copy v in
  Vec.push w 4;
  Vec.set w 0 9;
  check int "original unchanged" 1 (Vec.get v 0);
  check int "original size unchanged" 3 (Vec.size v);
  check int "copy updated" 4 (Vec.size w)

let test_vec_iteri_exists () =
  let v = Vec.of_list 0 [ 10; 20; 30 ] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check bool "iteri pairs" true (List.rev !acc = [ (0, 10); (1, 20); (2, 30) ]);
  check bool "exists true" true (Vec.exists (fun x -> x = 20) v);
  check bool "exists false" false (Vec.exists (fun x -> x = 99) v)

let test_stats_add_and_averages () =
  let a = Sat.Stats.create () and b = Sat.Stats.create () in
  a.Sat.Stats.learned <- 2;
  a.Sat.Stats.learned_literals <- 10;
  a.Sat.Stats.max_decision_level <- 4;
  b.Sat.Stats.learned <- 3;
  b.Sat.Stats.learned_literals <- 5;
  b.Sat.Stats.max_decision_level <- 9;
  Sat.Stats.add a b;
  check int "learned summed" 5 a.Sat.Stats.learned;
  check bool "avg length" true (abs_float (Sat.Stats.avg_learned_length a -. 3.) < 1e-9);
  check int "max level maxed" 9 a.Sat.Stats.max_decision_level;
  check bool "bcp fraction zero without time" true (Sat.Stats.bcp_fraction a = 0.)

let test_model_accessors () =
  let m = Model.of_array [| false; true; false; true |] in
  check int "nvars" 3 (Model.nvars m);
  check bool "value" true (Model.value m 1);
  check bool "signed literals" true (Model.true_literals m = [ 1; -2; 3 ]);
  Alcotest.check_raises "out of range" (Invalid_argument "Model.value: variable out of range")
    (fun () -> ignore (Model.value m 4))

let test_cnf_with_extra_clauses () =
  let base = Cnf.make ~nvars:3 [ [ 1; 2 ] ] in
  let extended = Cnf.with_extra_clauses base [ [| T.neg 1 |]; [| T.neg 2 |] ] in
  check int "clauses appended" 3 (Cnf.nclauses extended);
  check bool "combination unsat" true (Brute.solve extended = Brute.Unsat);
  check bool "base unchanged" true (Cnf.nclauses base = 1)

let test_dimacs_file_roundtrip () =
  let cnf = Cnf.make ~nvars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; -4 ]; [ -3 ] ] in
  let path = Filename.temp_file "gridsat_test" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path cnf;
      let back = Dimacs.parse_file path in
      check int "vars survive" (Cnf.nvars cnf) (Cnf.nvars back);
      check int "clauses survive" (Cnf.nclauses cnf) (Cnf.nclauses back))

(* ---------- Cnf ---------- *)

let test_cnf_normalisation () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; 1; 2 ]; [ 1; -1 ]; [ 3 ] ] in
  check int "tautology dropped" 1 (Cnf.dropped_tautologies cnf);
  check int "clauses kept" 2 (Cnf.nclauses cnf);
  check int "duplicate literal removed" 3 (Cnf.nliterals cnf)

let test_cnf_empty_clause () =
  let cnf = Cnf.make ~nvars:2 [ []; [ 1 ] ] in
  check bool "empty clause detected" true (Cnf.has_empty_clause cnf);
  check bool "solver reports unsat" true (is_unsat (solve_cnf cnf))

let test_cnf_out_of_range () =
  Alcotest.check_raises "literal out of range"
    (Invalid_argument "Cnf: literal 5 out of range (nvars = 3)") (fun () ->
      ignore (Cnf.make ~nvars:3 [ [ 5 ] ]))

let test_cnf_eval () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; -2 ]; [ 3 ] ] in
  check bool "satisfying" true (Cnf.eval cnf [| false; true; true; true |]);
  check bool "falsifying" false (Cnf.eval cnf [| false; false; true; true |])

let prop_cnf_eval_total =
  QCheck.Test.make ~name:"eval agrees with clause-wise eval" ~count:100 arbitrary_cnf
    (fun cnf ->
      let n = Cnf.nvars cnf in
      let a = Array.init (n + 1) (fun i -> i mod 2 = 0) in
      Cnf.eval cnf a
      = List.for_all (fun c -> Cnf.clause_eval c a) (Cnf.clauses cnf))

(* ---------- Dimacs ---------- *)

let test_dimacs_parse () =
  let doc = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Dimacs.parse_string doc in
  check int "nvars" 3 (Cnf.nvars cnf);
  check int "nclauses" 2 (Cnf.nclauses cnf)

let test_dimacs_multiline_clause () =
  let doc = "p cnf 3 1\n1\n-2\n3 0\n" in
  let cnf = Dimacs.parse_string doc in
  check int "one clause across lines" 1 (Cnf.nclauses cnf)

let test_dimacs_errors () =
  let expect_fail doc =
    match Dimacs.parse_string doc with
    | exception Dimacs.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_fail "1 2 0\n";
  expect_fail "p cnf x y\n";
  expect_fail "p cnf 2 1\n3 0\n";
  expect_fail "p cnf 2 1\np cnf 2 1\n1 0\n"

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs print/parse roundtrip" ~count:100 arbitrary_cnf (fun cnf ->
      let cnf' = Dimacs.parse_string (Dimacs.to_string cnf) in
      Cnf.nvars cnf' = Cnf.nvars cnf
      && List.map Array.to_list (Cnf.clauses cnf')
         = List.map Array.to_list (Cnf.clauses cnf))

(* ---------- Brute ---------- *)

let test_brute_simple () =
  let sat = Cnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  (match Brute.solve sat with
  | Brute.Sat m -> check bool "model satisfies" true (Model.satisfies sat m)
  | Brute.Unsat -> Alcotest.fail "expected sat");
  let unsat = Cnf.make ~nvars:1 [ [ 1 ]; [ -1 ] ] in
  check bool "unsat" true (Brute.solve unsat = Brute.Unsat)

let test_brute_count () =
  (* x1 or x2 has 3 models out of 4 *)
  let cnf = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
  check int "model count" 3 (Brute.count_models cnf)

(* ---------- Solver: basic behaviours ---------- *)

let test_solver_empty_formula () =
  let cnf = Cnf.make ~nvars:3 [] in
  check bool "trivially sat" true (is_sat (solve_cnf cnf))

let test_solver_unit_propagation () =
  let cnf = Cnf.make ~nvars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  match solve_cnf cnf with
  | Solver.Sat m ->
      check bool "v1" true (Model.value m 1);
      check bool "v2" true (Model.value m 2);
      check bool "v3" true (Model.value m 3)
  | _ -> Alcotest.fail "expected sat"

let test_solver_conflict_at_root () =
  let cnf = Cnf.make ~nvars:2 [ [ 1 ]; [ -1; 2 ]; [ -2 ] ] in
  check bool "root conflict unsat" true (is_unsat (solve_cnf cnf))

let php ~pigeons ~holes =
  (* pigeon p in hole h is variable (p-1)*holes + h *)
  let v p h = ((p - 1) * holes) + h in
  let at_least =
    List.init pigeons (fun p -> List.init holes (fun h -> v (p + 1) (h + 1)))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -v p1 h; -v p2 h ] else None)
              (List.init pigeons (fun i -> i + 1)))
          (List.init pigeons (fun i -> i + 1)))
      (List.init holes (fun i -> i + 1))
  in
  Cnf.make ~nvars:(pigeons * holes) (at_least @ at_most)

let test_solver_php () =
  check bool "php(4,3) unsat" true (is_unsat (solve_cnf (php ~pigeons:4 ~holes:3)));
  check bool "php(5,4) unsat" true (is_unsat (solve_cnf (php ~pigeons:5 ~holes:4)));
  check bool "php(4,4) sat" true (is_sat (solve_cnf (php ~pigeons:4 ~holes:4)))

let test_solver_model_verified () =
  let cnf = php ~pigeons:4 ~holes:4 in
  match solve_cnf cnf with
  | Solver.Sat m -> check bool "model checks" true (Model.satisfies cnf m)
  | _ -> Alcotest.fail "expected sat"

let test_solver_budget_resume () =
  let cnf = php ~pigeons:7 ~holes:6 in
  let s = Solver.create cnf in
  let steps = ref 0 in
  let rec loop () =
    incr steps;
    if !steps > 1_000_000 then Alcotest.fail "did not terminate";
    match Solver.run s ~budget:100 with
    | Solver.Budget_exhausted -> loop ()
    | r -> r
  in
  check bool "resumable run finds unsat" true (is_unsat (loop ()));
  check bool "took several slices" true (!steps > 1)

let test_solver_budget_matches_single_run () =
  (* Chunked execution must reach the same answer as one big run. *)
  let cnf = php ~pigeons:6 ~holes:5 in
  let one = solve_cnf cnf in
  let s = Solver.create cnf in
  let rec loop () =
    match Solver.run s ~budget:57 with Solver.Budget_exhausted -> loop () | r -> r
  in
  check bool "same answer" true (is_unsat one && is_unsat (loop ()))

let test_solver_stats_populated () =
  let cnf = php ~pigeons:5 ~holes:4 in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  check bool "decisions > 0" true (st.Sat.Stats.decisions > 0);
  check bool "propagations > 0" true (st.Sat.Stats.propagations > 0);
  check bool "conflicts > 0" true (st.Sat.Stats.conflicts > 0);
  check bool "learned > 0" true (st.Sat.Stats.learned > 0)

let test_solver_mem_pressure () =
  let cnf = php ~pigeons:8 ~holes:7 in
  let config = { Solver.default_config with mem_limit_bytes = 2_000 } in
  let s = Solver.create ~config cnf in
  let rec loop n =
    if n = 0 then Alcotest.fail "never reported memory pressure"
    else
      match Solver.run s ~budget:10_000 with
      | Solver.Mem_pressure -> ()
      | Solver.Budget_exhausted -> loop (n - 1)
      | Solver.Unsat -> Alcotest.fail "solved despite tiny memory (unexpected for this test)"
      | Solver.Sat _ -> Alcotest.fail "php is unsat"
  in
  loop 10_000

let test_solver_roots () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let s = Solver.create_with_roots cnf [ T.neg 2 ] in
  (match Solver.solve s with
  | Solver.Sat m ->
      check bool "root respected" false (Model.value m 2);
      check bool "v1 forced" true (Model.value m 1);
      check bool "v3 forced" true (Model.value m 3)
  | _ -> Alcotest.fail "expected sat");
  let s2 = Solver.create_with_roots cnf [ T.neg 2; T.neg 1 ] in
  check bool "contradictory roots unsat" true (is_unsat (Solver.solve s2))

let test_solver_restarts_happen () =
  let cnf = php ~pigeons:7 ~holes:6 in
  let config = { Solver.default_config with restart_base = 8 } in
  let s = Solver.create ~config cnf in
  ignore (Solver.solve s);
  check bool "restarted" true ((Solver.stats s).Sat.Stats.restarts > 0)

let test_solver_no_restarts () =
  let cnf = php ~pigeons:5 ~holes:4 in
  let config = { Solver.default_config with restarts_enabled = false } in
  let s = Solver.create ~config cnf in
  ignore (Solver.solve s);
  check int "no restarts" 0 (Solver.stats s).Sat.Stats.restarts

(* ---------- Solver vs Brute (the key correctness property) ---------- *)

let prop_solver_matches_brute =
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:400 arbitrary_cnf (fun cnf ->
      match (solve_cnf cnf, Brute.solve cnf) with
      | Solver.Sat m, Brute.Sat _ -> Model.satisfies cnf m
      | Solver.Unsat, Brute.Unsat -> true
      | Solver.Sat _, Brute.Unsat | Solver.Unsat, Brute.Sat _ -> false
      | (Solver.Budget_exhausted | Solver.Mem_pressure), _ -> false)

let prop_solver_deterministic =
  QCheck.Test.make ~name:"same seed => same statistics" ~count:50 arbitrary_cnf (fun cnf ->
      let run () =
        let s = Solver.create cnf in
        ignore (Solver.solve s);
        let st = Solver.stats s in
        (st.Sat.Stats.decisions, st.Sat.Stats.conflicts, st.Sat.Stats.propagations)
      in
      run () = run ())

let prop_learned_clauses_implied =
  (* Any clause the solver learns must be implied by the original formula:
     formula AND (negation of learned clause) must be unsatisfiable. *)
  QCheck.Test.make ~name:"learned clauses are implied" ~count:60
    (QCheck.make (random_cnf_gen ~max_vars:8 ~max_clauses:30 ~max_len:3))
    (fun cnf ->
      let config = { Solver.default_config with share_export_max = 100 } in
      let s = Solver.create ~config cnf in
      ignore (Solver.solve s);
      let learned = Solver.drain_shares s ~max_len:100 in
      List.for_all
        (fun clause ->
          let negation = List.map (fun l -> [ T.to_int (T.negate l) ]) (Array.to_list clause) in
          let augmented = Cnf.make ~nvars:(Cnf.nvars cnf) negation in
          let combined = Cnf.with_extra_clauses augmented (Cnf.clauses cnf) in
          Brute.solve combined = Brute.Unsat)
        learned)

(* ---------- Split ---------- *)

let force_split s =
  (* Drive the solver until it has at least one decision, then split.
     Clauses are captured before the split commits the branch, exactly as
     a GridSAT client does. *)
  let rec loop n =
    if n = 0 then None
    else
      match Solver.run s ~budget:30 with
      | Solver.Budget_exhausted ->
          if Solver.decision_level s > 0 then begin
            let clauses = Solver.active_clauses s in
            match Solver.split s with
            | Some (facts, path) -> Some (clauses, facts, path)
            | None -> None
          end
          else loop (n - 1)
      | _ -> None
  in
  loop 2000

let prop_split_preserves_satisfiability =
  QCheck.Test.make ~name:"split: sat(P) = sat(A) || sat(B)" ~count:150
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:42 ~max_len:3))
    (fun cnf ->
      let expected = Brute.solve cnf <> Brute.Unsat in
      let s = Solver.create cnf in
      match force_split s with
      | None -> QCheck.assume_fail () (* solved before any split opportunity *)
      | Some (clauses, facts, path) ->
          (* side A: the mutated original solver; side B: fresh solver on the
             transferred clauses + new roots *)
          let b =
            Solver.create_with_roots ~facts (Cnf.of_lit_arrays ~nvars:(Cnf.nvars cnf) clauses) path
          in
          let sat_a = is_sat (Solver.solve s) in
          let sat_b = is_sat (Solver.solve b) in
          (sat_a || sat_b) = expected)

let prop_split_branches_disjoint =
  QCheck.Test.make ~name:"split: branches disagree on the split literal" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:42 ~max_len:3))
    (fun cnf ->
      let s = Solver.create cnf in
      match force_split s with
      | None -> QCheck.assume_fail ()
      | Some (_, _, path) ->
          (* the last path literal of B complements a root literal of A,
             and A's committed branch is tracked as tainted *)
          let d = List.nth path (List.length path - 1) in
          List.mem (T.negate d) (Solver.root_path s))

let test_split_at_root_is_none () =
  let cnf = Cnf.make ~nvars:2 [ [ 1 ] ] in
  let s = Solver.create cnf in
  check bool "no decision yet" true (Solver.split s = None)

(* ---------- Clause sharing ---------- *)

let test_foreign_merge_implication () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; 2; 3 ] ] in
  let s = Solver.create cnf in
  Solver.queue_foreign_clauses s [ [| T.pos 2 |] ];
  check int "queued" 1 (Solver.pending_foreign s);
  (match Solver.solve s with
  | Solver.Sat m -> check bool "foreign unit forced" true (Model.value m 2)
  | _ -> Alcotest.fail "expected sat");
  check int "queue drained" 0 (Solver.pending_foreign s);
  check bool "implication recorded" true
    ((Solver.stats s).Sat.Stats.foreign_implications >= 1)

let test_foreign_merge_conflict () =
  let cnf = Cnf.make ~nvars:2 [ [ 1 ] ] in
  let s = Solver.create cnf in
  Solver.queue_foreign_clauses s [ [| T.neg 1 |] ];
  check bool "conflicting foreign clause => unsat" true (is_unsat (Solver.solve s))

let test_foreign_merge_discard_satisfied () =
  let cnf = Cnf.make ~nvars:2 [ [ 1 ] ] in
  let s = Solver.create cnf in
  Solver.queue_foreign_clauses s [ [| T.pos 1; T.pos 2 |] ];
  ignore (Solver.solve s);
  check bool "satisfied clause discarded" true
    ((Solver.stats s).Sat.Stats.foreign_discarded >= 1)

let prop_sharing_preserves_answer =
  (* Feeding a solver clauses learned from the *same* formula by a peer
     never changes the answer. *)
  QCheck.Test.make ~name:"clause sharing is sound" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:40 ~max_len:3))
    (fun cnf ->
      let peer = Solver.create ~config:{ Solver.default_config with seed = 1 } cnf in
      ignore (Solver.solve peer);
      let shares = Solver.drain_shares peer ~max_len:10 in
      let s = Solver.create cnf in
      Solver.queue_foreign_clauses s shares;
      let expected = Brute.solve cnf <> Brute.Unsat in
      (match Solver.solve s with
      | Solver.Sat m -> expected && Model.satisfies cnf m
      | Solver.Unsat -> not expected
      | Solver.Budget_exhausted | Solver.Mem_pressure -> false))

let random_assumptions nv seed =
  (* a deterministic pseudo-random guiding path over distinct variables *)
  let st = Random.State.make [| seed; nv |] in
  let k = Random.State.int st (max 1 (nv / 2)) in
  let vars = List.sort_uniq compare (List.init k (fun _ -> 1 + Random.State.int st nv)) in
  List.map (fun v -> if Random.State.bool st then T.pos v else T.neg v) vars

let prop_shares_from_assumed_solver_globally_valid =
  (* The crux of sound distributed sharing: clauses exported by a client
     working under guiding-path assumptions must be implied by the ORIGINAL
     formula alone (taint tracking re-introduces the assumptions). *)
  QCheck.Test.make ~name:"shares under assumptions are globally valid" ~count:120
    QCheck.(
      pair (QCheck.make (random_cnf_gen ~max_vars:8 ~max_clauses:28 ~max_len:3)) (int_range 0 1000))
    (fun (cnf, seed) ->
      let path = random_assumptions (Cnf.nvars cnf) seed in
      let config = { Solver.default_config with share_export_max = 100 } in
      let s = Solver.create_with_roots ~config cnf path in
      ignore (Solver.solve s);
      let shares = Solver.drain_shares s ~max_len:100 in
      List.for_all
        (fun clause ->
          Array.length clause > 0
          &&
          let negation = List.map (fun l -> [ T.to_int (T.negate l) ]) (Array.to_list clause) in
          let augmented = Cnf.make ~nvars:(Cnf.nvars cnf) negation in
          let combined = Cnf.with_extra_clauses augmented (Cnf.clauses cnf) in
          Brute.solve combined = Brute.Unsat)
        shares)

let prop_cross_subproblem_sharing_sound =
  (* Full distributed scenario: split a problem, let one side share into the
     other, answers must still combine to the brute-force answer. *)
  QCheck.Test.make ~name:"cross-subproblem sharing preserves the answer" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:42 ~max_len:3))
    (fun cnf ->
      let expected = Brute.solve cnf <> Brute.Unsat in
      let s = Solver.create ~config:{ Solver.default_config with share_export_max = 100 } cnf in
      match force_split s with
      | None -> QCheck.assume_fail ()
      | Some (clauses, facts, path) ->
          let b =
            Solver.create_with_roots
              ~config:{ Solver.default_config with share_export_max = 100 }
              ~facts
              (Cnf.of_lit_arrays ~nvars:(Cnf.nvars cnf) clauses)
              path
          in
          (* run A a bit more so it learns under its committed assumptions,
             then inject its shares into B, and vice versa *)
          ignore (Solver.run s ~budget:200);
          Solver.queue_foreign_clauses b (Solver.drain_shares s ~max_len:100);
          ignore (Solver.run b ~budget:200);
          Solver.queue_foreign_clauses s (Solver.drain_shares b ~max_len:100);
          let sat_a = is_sat (Solver.solve s) in
          let sat_b = is_sat (Solver.solve b) in
          (sat_a || sat_b) = expected)

let test_drain_shares_respects_length () =
  let cnf = php ~pigeons:5 ~holes:4 in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  let shares = Solver.drain_shares s ~max_len:3 in
  check bool "all short" true (List.for_all (fun c -> Array.length c <= 3) shares);
  check bool "drained" true (Solver.drain_shares s ~max_len:10 = [])

(* ---------- root simplification / transfer ---------- *)

let test_active_clauses_pruned () =
  (* clause (1 2) is satisfied once root forces 1: it must not be transferred *)
  let cnf = Cnf.make ~nvars:3 [ [ 1 ]; [ 1; 2 ]; [ -1; 2; 3 ] ] in
  let s = Solver.create cnf in
  let active = Solver.active_clauses s in
  check bool "satisfied clause dropped" true
    (not
       (List.exists
          (fun c -> List.sort compare (Array.to_list c) = List.sort compare [ T.pos 1; T.pos 2 ])
          active));
  (* the false literal -1 must have been stripped from the last clause *)
  check bool "false literal stripped" true
    (List.exists (fun c -> Array.to_list c = [ T.pos 2; T.pos 3 ] || Array.to_list c = [ T.pos 3; T.pos 2 ]) active
    || List.for_all (fun c -> not (Array.exists (fun l -> l = T.neg 1) c)) active)

let test_transfer_bytes_positive () =
  let cnf = php ~pigeons:4 ~holes:3 in
  let s = Solver.create cnf in
  check bool "positive size" true (Solver.transfer_bytes s > 0)

let test_db_bytes_tracks_learning () =
  let cnf = php ~pigeons:6 ~holes:5 in
  let s = Solver.create cnf in
  let before = Solver.db_bytes s in
  ignore (Solver.run s ~budget:20_000);
  check bool "db grows with learning" true (Solver.db_bytes s >= before)

let prop_restart_strategies_preserve_answers =
  QCheck.Test.make ~name:"all restart strategies agree" ~count:100 arbitrary_cnf (fun cnf ->
      let answers =
        List.map
          (fun strategy ->
            let config =
              { Solver.default_config with Solver.restart_strategy = strategy; restart_base = 16 }
            in
            is_sat (solve_cnf ~config cnf))
          [ Solver.Luby; Solver.Geometric 1.5; Solver.Fixed ]
      in
      match answers with
      | [ a; b; c ] -> a = b && b = c && a = (Brute.solve cnf <> Brute.Unsat)
      | _ -> false)

let test_fixed_restarts_more_frequent () =
  let cnf = php ~pigeons:7 ~holes:6 in
  let restarts strategy =
    let config =
      { Solver.default_config with Solver.restart_strategy = strategy; restart_base = 16 }
    in
    let s = Solver.create ~config cnf in
    ignore (Solver.solve s);
    (Solver.stats s).Sat.Stats.restarts
  in
  check bool "fixed restarts at least as often as luby" true
    (restarts Solver.Fixed >= restarts Solver.Luby)

(* ---------- Preprocess ---------- *)

module Pre = Sat.Preprocess

let prop_preprocess_equisatisfiable =
  QCheck.Test.make ~name:"preprocessing preserves satisfiability" ~count:300 arbitrary_cnf
    (fun cnf ->
      let r = Pre.run cnf in
      let before = Brute.solve cnf <> Brute.Unsat in
      let after = Brute.solve r.Pre.cnf <> Brute.Unsat in
      before = after)

let prop_preprocess_models_extend =
  QCheck.Test.make ~name:"extended models satisfy the original" ~count:300 arbitrary_cnf
    (fun cnf ->
      match Pre.solve cnf with
      | Solver.Sat m -> Model.satisfies cnf m
      | Solver.Unsat -> Brute.solve cnf = Brute.Unsat
      | Solver.Budget_exhausted | Solver.Mem_pressure -> false)

let test_preprocess_subsumption () =
  (* (1 2) subsumes (1 2 3); (1) self-subsumes (-1 2) to (2) *)
  let cnf = Cnf.make ~nvars:3 [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let r = Pre.run cnf in
  check bool "clause count shrinks" true (r.Pre.clauses_after < r.Pre.clauses_before)

let test_preprocess_pure_literal () =
  (* variable 3 occurs only positively: eliminated for free *)
  let cnf = Cnf.make ~nvars:3 [ [ 1; 3 ]; [ 2; 3 ]; [ 1; -2 ] ] in
  let r = Pre.run cnf in
  check bool "eliminations happened" true (r.Pre.eliminated > 0);
  match Pre.solve cnf with
  | Solver.Sat m -> check bool "model valid" true (Model.satisfies cnf m)
  | _ -> Alcotest.fail "expected sat"

let test_preprocess_keeps_unsat () =
  let cnf = php ~pigeons:5 ~holes:4 in
  let r = Pre.run cnf in
  check bool "still unsat after preprocessing" true (is_unsat (solve_cnf r.Pre.cnf))

let test_preprocess_empty_formula () =
  let r = Pre.run (Cnf.make ~nvars:2 []) in
  check int "nothing to do" 0 r.Pre.clauses_after;
  match Pre.solve (Cnf.make ~nvars:2 []) with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat"

(* ---------- extensions: minimization and phase saving ---------- *)

let minimize_config = { Solver.default_config with Solver.minimize_learned = true }
let phase_config = { Solver.default_config with Solver.phase_saving = true }

let prop_minimization_preserves_answers =
  QCheck.Test.make ~name:"clause minimization preserves answers" ~count:200 arbitrary_cnf
    (fun cnf ->
      match (solve_cnf ~config:minimize_config cnf, Brute.solve cnf) with
      | Solver.Sat m, Brute.Sat _ -> Model.satisfies cnf m
      | Solver.Unsat, Brute.Unsat -> true
      | _ -> false)

let prop_phase_saving_preserves_answers =
  QCheck.Test.make ~name:"phase saving preserves answers" ~count:200 arbitrary_cnf (fun cnf ->
      let config = { phase_config with Solver.minimize_learned = true } in
      match (solve_cnf ~config cnf, Brute.solve cnf) with
      | Solver.Sat m, Brute.Sat _ -> Model.satisfies cnf m
      | Solver.Unsat, Brute.Unsat -> true
      | _ -> false)

let prop_minimized_learned_still_implied =
  QCheck.Test.make ~name:"minimized learned clauses are implied" ~count:60
    (QCheck.make (random_cnf_gen ~max_vars:8 ~max_clauses:30 ~max_len:3))
    (fun cnf ->
      let config = { minimize_config with Solver.share_export_max = 100 } in
      let s = Solver.create ~config cnf in
      ignore (Solver.solve s);
      List.for_all
        (fun clause ->
          let negation = List.map (fun l -> [ T.to_int (T.negate l) ]) (Array.to_list clause) in
          let augmented = Cnf.make ~nvars:(Cnf.nvars cnf) negation in
          Brute.solve (Cnf.with_extra_clauses augmented (Cnf.clauses cnf)) = Brute.Unsat)
        (Solver.drain_shares s ~max_len:100))

let test_minimization_shortens_clauses () =
  let cnf = php ~pigeons:7 ~holes:6 in
  let run config =
    let s = Solver.create ~config cnf in
    ignore (Solver.solve s);
    Sat.Stats.avg_learned_length (Solver.stats s)
  in
  let base = run Solver.default_config in
  let minimized = run minimize_config in
  check bool "average learned clause no longer" true (minimized <= base)

let prop_minimized_proofs_check =
  QCheck.Test.make ~name:"proofs with minimization still check" ~count:80
    (QCheck.make (random_cnf_gen ~max_vars:8 ~max_clauses:40 ~max_len:3))
    (fun cnf ->
      QCheck.assume (Brute.solve cnf = Brute.Unsat);
      let config = { minimize_config with Solver.emit_proof = true } in
      let s = Solver.create ~config cnf in
      match Solver.solve s with
      | Solver.Unsat -> Sat.Drup.check cnf (Solver.proof s) = Ok ()
      | _ -> false)

(* ---------- DRUP proofs ---------- *)

module Drup = Sat.Drup

let proof_config = { Solver.default_config with Solver.emit_proof = true }

let unsat_with_proof cnf =
  let s = Solver.create ~config:proof_config cnf in
  match Solver.solve s with
  | Solver.Unsat -> Some (Solver.proof s)
  | _ -> None

let test_drup_php_proof () =
  let cnf = php ~pigeons:6 ~holes:5 in
  match unsat_with_proof cnf with
  | None -> Alcotest.fail "expected unsat"
  | Some proof ->
      check bool "proof nonempty" true (proof <> []);
      check bool "proof checks" true (Drup.check cnf proof = Ok ())

let test_drup_tampered_proof_fails () =
  let cnf = php ~pigeons:5 ~holes:4 in
  match unsat_with_proof cnf with
  | None -> Alcotest.fail "expected unsat"
  | Some proof ->
      (* drop all Add steps: the remaining proof cannot reach the empty clause *)
      let holes_only =
        List.filter (function Drup.Add _ -> false | Drup.Delete _ -> true) proof
      in
      (match Drup.check cnf holes_only with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "gutted proof must fail");
      (* inserting a non-RUP clause must fail *)
      let bogus = Drup.Add [| T.pos 1 |] :: Drup.Add [| T.neg 1 |] :: [] in
      let cnf2 = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
      match Drup.check cnf2 bogus with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "non-RUP step must fail"

let test_drup_sat_run_has_no_refutation () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let s = Solver.create ~config:proof_config cnf in
  (match Solver.solve s with Solver.Sat _ -> () | _ -> Alcotest.fail "expected sat");
  match Drup.check cnf (Solver.proof s) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "a satisfiable formula must not have a checking refutation"

let test_drup_rup_single () =
  let cnf = Cnf.make ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ] ] in
  check bool "unit 1 is RUP" true (Drup.check_clause_rup cnf [] [| T.pos 1 |]);
  check bool "unit 2 is not RUP" false (Drup.check_clause_rup cnf [] [| T.pos 2 |])

let test_drup_text_roundtrip () =
  let proof =
    [ Drup.Add [| T.pos 1; T.neg 2 |]; Drup.Delete [| T.pos 3 |]; Drup.Add [||] ]
  in
  check bool "roundtrip" true (Drup.of_string (Drup.to_string proof) = proof);
  (match Drup.of_string "1 2 0\nd 3 0\n0\n" with
  | [ Drup.Add _; Drup.Delete _; Drup.Add [||] ] -> ()
  | _ -> Alcotest.fail "parse shape");
  Alcotest.check_raises "unterminated line" (Failure "Drup.of_string: line not terminated by 0")
    (fun () -> ignore (Drup.of_string "1 2\n"))

(* Proof text that crossed the network is untrusted: every malformed
   shape must yield a clean [Failure] from [of_string] (which the master
   turns into a certification failure), never a crash or a silently
   truncated proof. *)
let test_drup_of_string_garbage () =
  let rejects text =
    match Drup.of_string text with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "garbage accepted: %S" text)
  in
  rejects "1 2\n";
  (* merged lines: a 0 in the middle of a clause *)
  rejects "1 0 2 0\n";
  rejects "frobnicate 0\n";
  rejects "1 2 zork 0\n";
  rejects "d\n";
  rejects "0 0\n";
  (* well-formed text still parses, including blank lines and d-steps *)
  match Drup.of_string "  \n\n1 -2 0\nd 1 -2 0\n0\n" with
  | [ Drup.Add _; Drup.Delete _; Drup.Add [||] ] -> ()
  | _ -> Alcotest.fail "valid proof text mangled"

(* [check_under] certifies cnf /\ assumptions |= false: a branch's
   refutation must be valid under its guiding path and invalid globally,
   and out-of-range literals (in steps or assumptions) must come back as
   [Error], not an exception. *)
let test_drup_check_under () =
  (* satisfiable formula, refutable under the branch ~2 *)
  let cnf = Cnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  check bool "empty proof checks under the branch" true
    (Drup.check_under cnf ~assumptions:[ T.neg 2 ] [] = Ok ());
  check bool "same proof fails globally" true (Drup.check cnf [] <> Ok ());
  (* a unit that is RUP only thanks to the assumptions is accepted *)
  let proof = [ Drup.Add [| T.pos 1 |]; Drup.Add [||] ] in
  check bool "assumption-dependent step accepted under the branch" true
    (Drup.check_under cnf ~assumptions:[ T.neg 2 ] proof = Ok ());
  check bool "assumption-dependent step rejected globally" true
    (Drup.check cnf proof <> Ok ());
  (* untrusted input: out-of-range literals are diagnosed, not fatal *)
  (match Drup.check_under cnf ~assumptions:[] [ Drup.Add [| T.pos 99 |] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range proof literal accepted");
  match Drup.check_under cnf ~assumptions:[ T.pos 99 ] [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range assumption accepted"

let prop_drup_random_unsat_proofs_check =
  QCheck.Test.make ~name:"random UNSAT proofs check" ~count:120
    (QCheck.make (random_cnf_gen ~max_vars:8 ~max_clauses:40 ~max_len:3))
    (fun cnf ->
      QCheck.assume (Brute.solve cnf = Brute.Unsat);
      match unsat_with_proof cnf with
      | None -> false
      | Some proof -> Drup.check cnf proof = Ok ())

(* ---------- suite ---------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sat"
    [
      ( "types",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "zero literal rejected" `Quick test_lit_of_int_zero;
          Alcotest.test_case "literal valuation" `Quick test_lit_value;
        ]
        @ qsuite [ prop_lit_roundtrip; prop_negate_involution ] );
      ( "vec",
        [
          Alcotest.test_case "push/pop/shrink" `Quick test_vec_basic;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "bounds checking" `Quick test_vec_bounds;
        ]
        @ qsuite [ prop_vec_to_of_list ] );
      ( "heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
          Alcotest.test_case "update" `Quick test_heap_update;
          Alcotest.test_case "duplicate insert" `Quick test_heap_duplicate_insert;
        ]
        @ qsuite [ prop_heap_sorts ] );
      ( "coverage",
        [
          Alcotest.test_case "vec copy" `Quick test_vec_copy_independent;
          Alcotest.test_case "vec iteri/exists" `Quick test_vec_iteri_exists;
          Alcotest.test_case "stats arithmetic" `Quick test_stats_add_and_averages;
          Alcotest.test_case "model accessors" `Quick test_model_accessors;
          Alcotest.test_case "cnf extension" `Quick test_cnf_with_extra_clauses;
          Alcotest.test_case "dimacs file roundtrip" `Quick test_dimacs_file_roundtrip;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "normalisation" `Quick test_cnf_normalisation;
          Alcotest.test_case "empty clause" `Quick test_cnf_empty_clause;
          Alcotest.test_case "range check" `Quick test_cnf_out_of_range;
          Alcotest.test_case "eval" `Quick test_cnf_eval;
        ]
        @ qsuite [ prop_cnf_eval_total ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
          Alcotest.test_case "multiline clause" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ]
        @ qsuite [ prop_dimacs_roundtrip ] );
      ( "brute",
        [
          Alcotest.test_case "simple" `Quick test_brute_simple;
          Alcotest.test_case "model count" `Quick test_brute_count;
        ] );
      ( "solver",
        [
          Alcotest.test_case "empty formula" `Quick test_solver_empty_formula;
          Alcotest.test_case "unit propagation" `Quick test_solver_unit_propagation;
          Alcotest.test_case "root conflict" `Quick test_solver_conflict_at_root;
          Alcotest.test_case "pigeonhole" `Slow test_solver_php;
          Alcotest.test_case "model verified" `Quick test_solver_model_verified;
          Alcotest.test_case "budgeted resume" `Slow test_solver_budget_resume;
          Alcotest.test_case "chunked = monolithic" `Slow test_solver_budget_matches_single_run;
          Alcotest.test_case "stats populated" `Quick test_solver_stats_populated;
          Alcotest.test_case "memory pressure" `Slow test_solver_mem_pressure;
          Alcotest.test_case "root assumptions" `Quick test_solver_roots;
          Alcotest.test_case "restarts happen" `Quick test_solver_restarts_happen;
          Alcotest.test_case "restarts disabled" `Quick test_solver_no_restarts;
        ]
        @ qsuite
            [ prop_solver_matches_brute; prop_solver_deterministic; prop_learned_clauses_implied ]
      );
      ( "split",
        [ Alcotest.test_case "no decision => no split" `Quick test_split_at_root_is_none ]
        @ qsuite [ prop_split_preserves_satisfiability; prop_split_branches_disjoint ] );
      ( "sharing",
        [
          Alcotest.test_case "foreign implication" `Quick test_foreign_merge_implication;
          Alcotest.test_case "foreign conflict" `Quick test_foreign_merge_conflict;
          Alcotest.test_case "foreign discard" `Quick test_foreign_merge_discard_satisfied;
          Alcotest.test_case "drain respects length" `Quick test_drain_shares_respects_length;
        ]
        @ qsuite
            [
              prop_sharing_preserves_answer;
              prop_shares_from_assumed_solver_globally_valid;
              prop_cross_subproblem_sharing_sound;
            ] );
      ( "preprocess",
        [
          Alcotest.test_case "subsumption" `Quick test_preprocess_subsumption;
          Alcotest.test_case "pure literal" `Quick test_preprocess_pure_literal;
          Alcotest.test_case "unsat preserved" `Quick test_preprocess_keeps_unsat;
          Alcotest.test_case "empty formula" `Quick test_preprocess_empty_formula;
        ]
        @ qsuite [ prop_preprocess_equisatisfiable; prop_preprocess_models_extend ] );
      ( "extensions",
        [
          Alcotest.test_case "minimization shortens" `Slow test_minimization_shortens_clauses;
          Alcotest.test_case "fixed restart cadence" `Quick test_fixed_restarts_more_frequent;
        ]
        @ qsuite [ prop_restart_strategies_preserve_answers ]
        @ qsuite
            [
              prop_minimization_preserves_answers;
              prop_phase_saving_preserves_answers;
              prop_minimized_learned_still_implied;
              prop_minimized_proofs_check;
            ] );
      ( "drup",
        [
          Alcotest.test_case "pigeonhole proof" `Slow test_drup_php_proof;
          Alcotest.test_case "tampered proof fails" `Quick test_drup_tampered_proof_fails;
          Alcotest.test_case "sat run refutes nothing" `Quick test_drup_sat_run_has_no_refutation;
          Alcotest.test_case "single RUP check" `Quick test_drup_rup_single;
          Alcotest.test_case "text roundtrip" `Quick test_drup_text_roundtrip;
          Alcotest.test_case "garbage text rejected" `Quick test_drup_of_string_garbage;
          Alcotest.test_case "check under assumptions" `Quick test_drup_check_under;
        ]
        @ qsuite [ prop_drup_random_unsat_proofs_check ] );
      ( "transfer",
        [
          Alcotest.test_case "active clauses pruned" `Quick test_active_clauses_pruned;
          Alcotest.test_case "transfer bytes" `Quick test_transfer_bytes_positive;
          Alcotest.test_case "db bytes track learning" `Quick test_db_bytes_tracks_learning;
        ] );
    ]
