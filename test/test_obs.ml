(* The observability layer: metrics registry, span recorder, exporters.

   The load-bearing properties: histogram quantiles are accurate to the
   bucket resolution on known distributions, span parent/child nesting
   is preserved across processes, the Chrome trace export is
   byte-deterministic under a deterministic clock (golden-file test),
   and the run report round-trips through the JSON parser. *)

open Alcotest
module J = Obs.Json

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

module M = Obs.Metrics
module S = Obs.Span

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("flag", J.Bool true);
        ("n", J.Int (-42));
        ("x", J.Float 2.5);
        ("big", J.Float 1e300);
        ("s", J.String "a \"quoted\" line\nwith unicode \xe2\x86\x92");
        ("l", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  match J.of_string (J.to_string doc) with
  | Ok doc' -> check string "roundtrip" (J.to_string doc) (J.to_string doc')
  | Error e -> fail e

let test_json_parse_errors () =
  let bad s =
    match J.of_string s with Ok _ -> fail (s ^ " should not parse") | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated";
  (match J.of_string "  [1, 2e3, {\"k\": null}] " with
  | Ok _ -> ()
  | Error e -> fail e);
  match J.of_string "\"\\u00e9\\u2192\"" with
  | Ok (J.String s) -> check string "utf8 escapes" "\xc3\xa9\xe2\x86\x92" s
  | Ok _ -> fail "wrong shape"
  | Error e -> fail e

let test_json_float_repr () =
  check string "integral floats stay integral" "[1,2,-0]"
    (J.to_string (J.List [ J.Float 1.0; J.Float 2.0; J.Float (-0.) ]));
  check string "nan is null" "null" (J.to_string (J.Float Float.nan));
  check string "fractions are shortest-ish" "0.1" (J.to_string (J.Float 0.1))

(* ---------- histogram quantiles ---------- *)

(* Log buckets with 4 sub-buckets/octave have ~12% relative width; allow
   a generous 20% relative error against the exact quantile. *)
let check_rel name expected got =
  let err = Float.abs (got -. expected) /. Float.max 1e-9 (Float.abs expected) in
  if err > 0.20 then
    failf "%s: expected ~%g, got %g (err %.1f%%)" name expected got (100. *. err)

let test_histogram_uniform () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "u" in
  for i = 1 to 10_000 do
    M.observe h (float_of_int i)
  done;
  check int "count" 10_000 (M.hist_count h);
  check_rel "p50" 5_000. (M.quantile h 0.5);
  check_rel "p90" 9_000. (M.quantile h 0.9);
  check_rel "p99" 9_900. (M.quantile h 0.99);
  (* quantiles are clamped to the observed range *)
  check_rel "p0 near min" 1. (M.quantile h 0.);
  check (float 1e-9) "p100 is max" 10_000. (M.quantile h 1.)

let test_histogram_exponential () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "e" in
  (* deterministic inverse-CDF sampling of Exp(1): x_i = -ln(1 - u_i) *)
  let n = 20_000 in
  for i = 0 to n - 1 do
    let u = (float_of_int i +. 0.5) /. float_of_int n in
    M.observe h (-.Float.log (1. -. u))
  done;
  check_rel "p50" (Float.log 2.) (M.quantile h 0.5);
  check_rel "p90" (Float.log 10.) (M.quantile h 0.9);
  check_rel "p99" (Float.log 100.) (M.quantile h 0.99)

let test_histogram_point_mass () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "p" in
  for _ = 1 to 100 do
    M.observe h 7.25
  done;
  check_rel "p50" 7.25 (M.quantile h 0.5);
  check_rel "p99" 7.25 (M.quantile h 0.99);
  check (float 1e-9) "sum" 725. (M.hist_sum h)

let test_histogram_edge_samples () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "edge" in
  M.observe h 0.;
  M.observe h Float.nan;
  M.observe h (-3.);
  M.observe h Float.infinity;
  check int "all samples counted" 4 (M.hist_count h);
  check (float 1e-9) "empty quantile" 0. (M.quantile (M.histogram m "empty") 0.5)

let test_metrics_registry () =
  let m = M.create ~enabled:true in
  let c1 = M.counter m ~labels:[ ("client", "1") ] "x" in
  let c1' = M.counter m ~labels:[ ("client", "1") ] "x" in
  let c2 = M.counter m ~labels:[ ("client", "2") ] "x" in
  M.incr c1;
  M.add c1' 2;
  M.incr c2;
  check int "same handle" 3 (M.counter_value c1);
  check int "distinct labels" 1 (M.counter_value c2);
  let g = M.gauge m "g" in
  M.gauge_max g 5.;
  M.gauge_max g 3.;
  check (float 1e-9) "gauge_max keeps max" 5. (M.gauge_value g);
  (* disabled registry: inert instruments, empty export *)
  let d = M.counter M.disabled "y" in
  M.incr d;
  check string "disabled exports empty" "{}" (J.to_string (M.to_json M.disabled))

(* ---------- span nesting ---------- *)

let test_span_nesting () =
  let r = S.create ~enabled:true in
  let t = ref 0.0 in
  S.set_clock r (fun () -> !t);
  let root = S.enter r ~tid:S.master_tid ~cat:"master" "root" in
  t := 1.0;
  let child = S.enter r ~parent:root ~tid:1 ~cat:"client" "solve" in
  t := 2.0;
  let leaf = S.instant r ~parent:child ~tid:1 ~cat:"solver" "restart" in
  t := 5.0;
  S.exit r child ~args:[ ("outcome", J.String "unsat") ];
  t := 6.0;
  S.exit r root;
  check int "three spans" 3 (S.count r);
  let get id = match S.find r id with Some s -> s | None -> fail "span lost" in
  check int "child -> root" root (get child).S.parent;
  check int "leaf -> child" child (get leaf).S.parent;
  check int "root is orphan" S.none (get root).S.parent;
  let c = get child and p = get root in
  check bool "child nested in parent" true
    (c.S.start >= p.S.start && c.S.stop <= p.S.stop);
  check (float 1e-9) "child duration" 4.0 (c.S.stop -. c.S.start);
  (* closing twice must not move the stop time *)
  t := 50.0;
  S.exit r child;
  check (float 1e-9) "exit is idempotent" 5.0 (get child).S.stop;
  (* instants stay zero-width and cannot be exited *)
  S.exit r leaf;
  check (float 1e-9) "instant zero width" 0.0 ((get leaf).S.stop -. (get leaf).S.start)

let test_span_disabled () =
  let r = S.disabled in
  let id = S.enter r ~cat:"x" "nothing" in
  check int "disabled returns none" S.none id;
  S.exit r id;
  check int "nothing recorded" 0 (S.count r)

(* ---------- Chrome trace export: golden file ---------- *)

let test_chrome_golden () =
  let r = S.create ~enabled:true in
  let t = ref 0.0 in
  S.set_clock r (fun () -> !t);
  let root = S.enter r ~tid:S.master_tid ~cat:"master" "assign" in
  t := 0.0015;
  let s = S.enter r ~parent:root ~tid:3 ~cat:"client" ~args:[ ("pid", J.String "0.1") ] "solve" in
  t := 0.004;
  ignore (S.instant r ~parent:s ~tid:3 ~cat:"protocol" "split.donate");
  t := 0.25;
  S.exit r s ~args:[ ("outcome", J.String "unsat") ];
  S.exit r root;
  let golden =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"gridsat\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\"args\":{\"name\":\"client 3\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1000,\"args\":{\"name\":\"master\"}},{\"name\":\"assign\",\"cat\":\"master\",\"pid\":1,\"tid\":1000,\"ts\":0,\"ph\":\"X\",\"dur\":250000,\"args\":{\"sid\":1}},{\"name\":\"solve\",\"cat\":\"client\",\"pid\":1,\"tid\":3,\"ts\":1500,\"ph\":\"X\",\"dur\":248500,\"args\":{\"sid\":2,\"parent\":1,\"pid\":\"0.1\",\"outcome\":\"unsat\"}},{\"name\":\"split.donate\",\"cat\":\"protocol\",\"pid\":1,\"tid\":3,\"ts\":4000,\"ph\":\"i\",\"s\":\"t\",\"args\":{\"sid\":3,\"parent\":2}}]}\n"
  in
  check string "golden trace bytes" golden (Obs.Chrome.export_string r);
  match Obs.Chrome.validate (Obs.Chrome.export r) with
  | Ok () -> ()
  | Error e -> fail e

let test_chrome_validate_rejects () =
  let bad = J.Obj [ ("traceEvents", J.Int 3) ] in
  (match Obs.Chrome.validate bad with Ok () -> fail "should reject" | Error _ -> ());
  let bad_ph =
    J.Obj
      [
        ( "traceEvents",
          J.List [ J.Obj [ ("name", J.String "x"); ("ph", J.String "?"); ("ts", J.Int 0) ] ] );
      ]
  in
  match Obs.Chrome.validate bad_ph with Ok () -> fail "unknown phase" | Error _ -> ()

(* ---------- report ---------- *)

let test_report_build_validate () =
  let obs = Obs.create () in
  Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) "c");
  ignore (S.instant (Obs.spans obs) ~cat:"master" "tick");
  let doc =
    Obs.Report.build
      ~meta:[ ("mode", J.String "test") ]
      ~sections:[ ("run", J.Obj [ ("answer", J.String "UNSAT") ]) ]
      ~metrics:(Obs.metrics obs) ~spans:(Obs.spans obs) ()
  in
  (match Obs.Report.validate doc with Ok () -> () | Error e -> fail e);
  (match J.of_string (J.to_string doc) with
  | Ok doc' -> check string "report roundtrips" (J.to_string doc) (J.to_string doc')
  | Error e -> fail e);
  check bool "summary mentions the answer" true (contains (Obs.Report.summary doc) "UNSAT");
  match Obs.Report.validate (J.Obj [ ("schema", J.String "other/9") ]) with
  | Ok () -> fail "wrong schema accepted"
  | Error _ -> ()

(* ---------- determinism across whole runs ---------- *)

let test_grid_trace_deterministic () =
  let module C = Gridsat_core in
  let run () =
    let obs = Obs.create () in
    let testbed = C.Testbed.uniform ~n:4 ~speed:2000. () in
    let config =
      {
        C.Config.default with
        C.Config.split_timeout = 0.5;
        slice = 0.5;
        overall_timeout = 10_000.;
        seed = 7;
      }
    in
    let cnf = Workloads.Php.instance ~pigeons:6 ~holes:5 in
    let r = C.Gridsat.solve ~config ~obs ~testbed cnf in
    (Obs.Chrome.export_string (Obs.spans obs), C.Run_report.build ~meta:[ ("seed", J.Int 7) ] ~obs r)
  in
  let trace1, doc = run () in
  let trace2, _ = run () in
  check string "seeded trace is byte-stable" trace1 trace2;
  (match Obs.Chrome.validate (match J.of_string trace1 with Ok d -> d | Error e -> fail e) with
  | Ok () -> ()
  | Error e -> fail e);
  (* the report carries metrics from every layer of the run *)
  (match Obs.Report.validate doc with Ok () -> () | Error e -> fail e);
  let metrics_names =
    match J.member "metrics" doc with
    | Some (J.Obj kvs) -> List.map fst kvs
    | _ -> fail "metrics section missing"
  in
  let has prefix =
    List.exists
      (fun n ->
        String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix)
      metrics_names
  in
  List.iter
    (fun p -> check bool ("layer metric " ^ p) true (has p))
    [ "solver."; "client."; "master."; "net."; "reliable."; "journal."; "sim." ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          test_case "roundtrip" `Quick test_json_roundtrip;
          test_case "parse errors" `Quick test_json_parse_errors;
          test_case "float repr" `Quick test_json_float_repr;
        ] );
      ( "histogram",
        [
          test_case "uniform quantiles" `Quick test_histogram_uniform;
          test_case "exponential quantiles" `Quick test_histogram_exponential;
          test_case "point mass" `Quick test_histogram_point_mass;
          test_case "edge samples" `Quick test_histogram_edge_samples;
          test_case "registry semantics" `Quick test_metrics_registry;
        ] );
      ( "span",
        [
          test_case "nesting invariants" `Quick test_span_nesting;
          test_case "disabled recorder" `Quick test_span_disabled;
        ] );
      ( "chrome",
        [
          test_case "golden export" `Quick test_chrome_golden;
          test_case "validate rejects" `Quick test_chrome_validate_rejects;
        ] );
      ( "report",
        [ test_case "build/validate/summary" `Quick test_report_build_validate ] );
      ( "end-to-end",
        [ test_case "seeded trace deterministic" `Slow test_grid_trace_deterministic ] );
    ]
