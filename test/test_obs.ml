(* The observability layer: metrics registry, span recorder, exporters.

   The load-bearing properties: histogram quantiles are accurate to the
   bucket resolution on known distributions, span parent/child nesting
   is preserved across processes, the Chrome trace export is
   byte-deterministic under a deterministic clock (golden-file test),
   and the run report round-trips through the JSON parser. *)

open Alcotest
module J = Obs.Json

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

module M = Obs.Metrics
module S = Obs.Span

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("flag", J.Bool true);
        ("n", J.Int (-42));
        ("x", J.Float 2.5);
        ("big", J.Float 1e300);
        ("s", J.String "a \"quoted\" line\nwith unicode \xe2\x86\x92");
        ("l", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  match J.of_string (J.to_string doc) with
  | Ok doc' -> check string "roundtrip" (J.to_string doc) (J.to_string doc')
  | Error e -> fail e

let test_json_parse_errors () =
  let bad s =
    match J.of_string s with Ok _ -> fail (s ^ " should not parse") | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated";
  (match J.of_string "  [1, 2e3, {\"k\": null}] " with
  | Ok _ -> ()
  | Error e -> fail e);
  match J.of_string "\"\\u00e9\\u2192\"" with
  | Ok (J.String s) -> check string "utf8 escapes" "\xc3\xa9\xe2\x86\x92" s
  | Ok _ -> fail "wrong shape"
  | Error e -> fail e

let test_json_float_repr () =
  check string "integral floats stay integral" "[1,2,-0]"
    (J.to_string (J.List [ J.Float 1.0; J.Float 2.0; J.Float (-0.) ]));
  check string "nan is null" "null" (J.to_string (J.Float Float.nan));
  check string "fractions are shortest-ish" "0.1" (J.to_string (J.Float 0.1))

(* ---------- histogram quantiles ---------- *)

(* Log buckets with 4 sub-buckets/octave have ~12% relative width; allow
   a generous 20% relative error against the exact quantile. *)
let check_rel name expected got =
  let err = Float.abs (got -. expected) /. Float.max 1e-9 (Float.abs expected) in
  if err > 0.20 then
    failf "%s: expected ~%g, got %g (err %.1f%%)" name expected got (100. *. err)

let test_histogram_uniform () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "u" in
  for i = 1 to 10_000 do
    M.observe h (float_of_int i)
  done;
  check int "count" 10_000 (M.hist_count h);
  check_rel "p50" 5_000. (M.quantile h 0.5);
  check_rel "p90" 9_000. (M.quantile h 0.9);
  check_rel "p99" 9_900. (M.quantile h 0.99);
  (* quantiles are clamped to the observed range *)
  check_rel "p0 near min" 1. (M.quantile h 0.);
  check (float 1e-9) "p100 is max" 10_000. (M.quantile h 1.)

let test_histogram_exponential () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "e" in
  (* deterministic inverse-CDF sampling of Exp(1): x_i = -ln(1 - u_i) *)
  let n = 20_000 in
  for i = 0 to n - 1 do
    let u = (float_of_int i +. 0.5) /. float_of_int n in
    M.observe h (-.Float.log (1. -. u))
  done;
  check_rel "p50" (Float.log 2.) (M.quantile h 0.5);
  check_rel "p90" (Float.log 10.) (M.quantile h 0.9);
  check_rel "p99" (Float.log 100.) (M.quantile h 0.99)

let test_histogram_point_mass () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "p" in
  for _ = 1 to 100 do
    M.observe h 7.25
  done;
  check_rel "p50" 7.25 (M.quantile h 0.5);
  check_rel "p99" 7.25 (M.quantile h 0.99);
  check (float 1e-9) "sum" 725. (M.hist_sum h)

let test_histogram_edge_samples () =
  let m = M.create ~enabled:true in
  let h = M.histogram m "edge" in
  M.observe h 0.;
  M.observe h Float.nan;
  M.observe h (-3.);
  M.observe h Float.infinity;
  check int "all samples counted" 4 (M.hist_count h);
  check (float 1e-9) "empty quantile" 0. (M.quantile (M.histogram m "empty") 0.5)

let test_metrics_registry () =
  let m = M.create ~enabled:true in
  let c1 = M.counter m ~labels:[ ("client", "1") ] "x" in
  let c1' = M.counter m ~labels:[ ("client", "1") ] "x" in
  let c2 = M.counter m ~labels:[ ("client", "2") ] "x" in
  M.incr c1;
  M.add c1' 2;
  M.incr c2;
  check int "same handle" 3 (M.counter_value c1);
  check int "distinct labels" 1 (M.counter_value c2);
  let g = M.gauge m "g" in
  M.gauge_max g 5.;
  M.gauge_max g 3.;
  check (float 1e-9) "gauge_max keeps max" 5. (M.gauge_value g);
  (* disabled registry: inert instruments, empty export *)
  let d = M.counter M.disabled "y" in
  M.incr d;
  check string "disabled exports empty" "{}" (J.to_string (M.to_json M.disabled))

(* ---------- JSON parser hardening ---------- *)

let test_json_hardening () =
  let bad s =
    match J.of_string s with Ok _ -> fail (s ^ " should not parse") | Error _ -> ()
  in
  (* malformed and truncated escapes *)
  bad "\"\\u12\"";
  bad "\"\\u12G4\"";
  bad "\"\\x41\"";
  bad "\"\\";
  bad "\"\\u\"";
  (* truncated documents *)
  bad "{\"a\": [1, 2";
  bad "[1,2";
  bad "{\"a\"";
  bad "{\"a\":";
  bad "[{\"k\": \"v\"}";
  (* duplicate keys parse; member resolves to the first binding *)
  (match J.of_string "{\"a\":1,\"a\":2}" with
  | Ok doc -> (
      match J.member "a" doc with
      | Some (J.Int 1) -> ()
      | _ -> fail "duplicate key: first binding must win")
  | Error e -> fail e);
  (* nesting: bounded recursion returns Error instead of crashing *)
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match J.of_string (deep 400) with Ok _ -> () | Error e -> fail e);
  bad (deep 100_000);
  bad (String.make 100_000 '[');
  (* same bound through object nesting *)
  let deep_obj n =
    String.concat "" (List.init n (fun _ -> "{\"k\":")) ^ "1" ^ String.make n '}'
  in
  (match J.of_string (deep_obj 400) with Ok _ -> () | Error e -> fail e);
  bad (deep_obj 100_000)

(* ---------- histogram merge preserves quantiles (property) ---------- *)

(* Scoped registries share one table, so observing the same instrument
   name under two label scopes and reading the merged view is the merge
   under test.  Merging is bucket-wise count addition, so the merged
   quantiles must equal those of a single histogram fed the union, and
   sit inside the union's [min, max]. *)
let test_histogram_merge_prop =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 120) (float_range 0.01 10_000.))
        (list_size (int_range 1 120) (float_range 0.01 10_000.)))
  in
  QCheck.Test.make ~name:"histogram merge preserves quantile bounds" ~count:200
    (QCheck.make gen) (fun (xs, ys) ->
      let m = M.create ~enabled:true in
      let h1 = M.histogram (M.scope m ~labels:[ ("job", "1") ]) "lat" in
      let h2 = M.histogram (M.scope m ~labels:[ ("job", "2") ]) "lat" in
      List.iter (M.observe h1) xs;
      List.iter (M.observe h2) ys;
      let direct = M.histogram (M.create ~enabled:true) "lat" in
      List.iter (M.observe direct) (xs @ ys);
      let union = List.sort compare (xs @ ys) in
      let mn = List.hd union and mx = List.nth union (List.length union - 1) in
      match List.assoc_opt "lat" (M.export_merged m) with
      | Some (M.Histogram e) ->
          let close a b =
            Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
          in
          e.count = List.length union
          && close e.lo mn && close e.hi mx
          && List.for_all
               (fun (q, merged_q) ->
                 close merged_q (M.quantile direct q)
                 && merged_q >= mn -. 1e-9 && merged_q <= mx +. 1e-9)
               [ (0.5, e.p50); (0.9, e.p90); (0.99, e.p99) ]
      | _ -> false)

(* ---------- scoped registries and the merged view ---------- *)

let test_metrics_scoping () =
  let m = M.create ~enabled:true in
  let s1 = M.scope m ~labels:[ ("job", "1") ] in
  let s2 = M.scope m ~labels:[ ("job", "2") ] in
  M.add (M.counter s1 "jobs.done") 3;
  M.add (M.counter s2 "jobs.done") 4;
  (* a scoped handle is the same instrument as explicit labels on the base *)
  check int "scoped = labeled" 3 (M.counter_value (M.counter m ~labels:[ ("job", "1") ] "jobs.done"));
  (* nested scopes append their labels *)
  let s1t = M.scope s1 ~labels:[ ("tenant", "acme") ] in
  M.incr (M.counter s1t "jobs.done");
  check int "nested scope"
    1
    (M.counter_value (M.counter m ~labels:[ ("job", "1"); ("tenant", "acme") ] "jobs.done"));
  (* the merged view strips labels and sums counters *)
  (match List.assoc_opt "jobs.done" (M.export_merged m) with
  | Some (M.Counter n) -> check int "merged counter sums" 8 n
  | _ -> fail "merged counter missing");
  (* gauges merge by max *)
  M.set (M.gauge s1 "depth") 2.;
  M.set (M.gauge s2 "depth") 5.;
  (match List.assoc_opt "depth" (M.export_merged m) with
  | Some (M.Gauge g) -> check (float 1e-9) "merged gauge max" 5. g
  | _ -> fail "merged gauge missing");
  (* scoping a disabled registry stays inert *)
  let d = M.scope M.disabled ~labels:[ ("job", "9") ] in
  M.incr (M.counter d "z");
  check string "disabled scope exports empty" "{}" (J.to_string (M.to_json M.disabled))

(* ---------- flight recorder ---------- *)

module F = Obs.Flight

let test_flight_ring () =
  let f = F.create ~capacity:4 () in
  let t = ref 0. in
  F.set_clock f (fun () -> !t);
  for i = 1 to 10 do
    t := float_of_int i;
    F.note f ~sub:"pool" (Printf.sprintf "e%d" i)
  done;
  check int "all notes counted" 10 (F.recorded f);
  check int "overflow evicted" 6 (F.evicted f);
  let evs = F.events f in
  check int "ring keeps capacity" 4 (List.length evs);
  check (list string) "newest survive" [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun (e : F.event) -> e.F.name) evs);
  (* disabled recorder is inert *)
  F.note F.disabled ~sub:"pool" "x";
  check int "disabled records nothing" 0 (F.recorded F.disabled)

let test_flight_causal_dump () =
  let mk () =
    let f = F.create ~capacity:8 () in
    let t = ref 0. in
    F.set_clock f (fun () -> !t);
    List.iter
      (fun (at, sub, name) ->
        t := at;
        F.note f ~sub ~args:[ ("k", J.Int 1) ] name)
      [
        (1., "master", "assign"); (1., "net", "send"); (2., "client", "recv");
        (2., "master", "ack"); (3., "service", "finish");
      ];
    f
  in
  let f = mk () in
  let evs = F.events f in
  (* the global sequence is a causal total order: strictly increasing,
     interleaving all subsystems *)
  let seqs = List.map (fun (e : F.event) -> e.F.seq) evs in
  check bool "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 4) seqs) (List.tl seqs));
  check (list string) "interleaved order" [ "master"; "net"; "client"; "master"; "service" ]
    (List.map (fun (e : F.event) -> e.F.sub) evs);
  (* a dump is byte-deterministic for the same recorded history *)
  let d1 = J.to_string (F.dump f ~at:3. ~trigger:"quarantine" ~detail:"client 2" ()) in
  let d2 = J.to_string (F.dump (mk ()) ~at:3. ~trigger:"quarantine" ~detail:"client 2" ()) in
  check string "dump deterministic" d1 d2;
  check bool "dump carries the trigger" true (contains d1 "\"trigger\":\"quarantine\"");
  check bool "dump carries events" true (contains d1 "\"finish\"");
  check string "file name canonical" "FLIGHT-00000003.500-slo-fast-burn.json"
    (F.file_name ~at:3.5 ~trigger:"slo fast/burn")

(* ---------- anomaly detection ---------- *)

module A = Obs.Anomaly

let test_anomaly_detector () =
  let a = A.create () in
  let d = A.detector a ~name:"lat" ~min_n:8 ~z:4.0 ~cooldown:30. ~direction:`High () in
  (* warmup: a steady baseline must not fire *)
  for i = 1 to 20 do
    A.observe d ~at:(float_of_int i) 1.0
  done;
  check int "steady stream quiet" 0 (List.length (A.triggers a));
  (* a large spike fires once... *)
  A.observe d ~at:21. 100.;
  check int "spike fires" 1 (List.length (A.triggers a));
  (* ...and the cooldown suppresses an immediate repeat *)
  A.observe d ~at:22. 100.;
  check int "cooldown holds" 1 (List.length (A.triggers a));
  (* past the cooldown the (still-anomalous) signal may fire again *)
  A.observe d ~at:60. 1_000_000.;
  check int "re-arms after cooldown" 2 (List.length (A.triggers a));
  (match A.triggers a with
  | tr :: _ ->
      check string "rule name" "lat" tr.A.rule;
      check (float 1e-9) "trigger time" 21. tr.A.at
  | [] -> fail "no trigger");
  (* discrete trips call handlers and record *)
  let seen = ref [] in
  A.on_trigger a (fun tr -> seen := tr.A.rule :: !seen);
  A.trip a ~at:70. ~rule:"brownout" ~value:0.3 ~threshold:0.5 ();
  check (list string) "handler saw the trip" [ "brownout" ] !seen;
  check int "trip recorded" 3 (List.length (A.triggers a));
  (* a `Low detector fires on collapses, not spikes *)
  let low = A.detector a ~name:"hit-rate" ~min_n:8 ~direction:`Low () in
  for i = 1 to 10 do
    A.observe low ~at:(float_of_int (100 + i)) 0.9
  done;
  A.observe low ~at:111. 0.9001;
  let before = List.length (A.triggers a) in
  A.observe low ~at:112. (-100.);
  check int "low fires on collapse" (before + 1) (List.length (A.triggers a));
  (* inert detector on a disabled owner *)
  let di = A.detector A.disabled ~name:"x" () in
  for i = 1 to 50 do
    A.observe di ~at:(float_of_int i) (float_of_int (i * 1000))
  done;
  check int "disabled never fires" 0 (List.length (A.triggers A.disabled))

(* ---------- SLOs ---------- *)

module Slo = Obs.Slo

let test_slo_parse () =
  let bad s =
    match Slo.parse s with
    | Ok _ -> fail (s ^ " should not parse")
    | Error _ -> ()
  in
  bad "";
  bad "   ;  ";
  bad "acme";
  bad "acme:";
  bad "acme:latency<5";
  bad "acme:solve<0";
  bad "acme:solve<-3";
  bad "acme:solve<5@1.5";
  bad "acme:solve<5@0";
  bad "acme:errors<1.5";
  bad "acme:errors<0.1@0.9";
  bad "acme:solve<10;acme:solve<20";
  match Slo.parse "acme:queue_wait<5,solve<60@0.95,errors<0.1;*:solve<120" with
  | Error e -> fail e
  | Ok spec ->
      check string "raw spec preserved" "acme:queue_wait<5,solve<60@0.95,errors<0.1;*:solve<120"
        (Slo.spec_string spec)

let test_slo_burn () =
  let spec =
    match Slo.parse "acme:solve<10" with Ok s -> s | Error e -> fail e
  in
  let t = Slo.create ~window_short:60. ~window_long:600. ~fast_burn:6. spec in
  let alerts = ref [] in
  Slo.on_fast_burn t (fun ~tenant ~target ~burn:_ -> alerts := (tenant, target) :: !alerts);
  (* nine good jobs: budget untouched, no alert *)
  for i = 1 to 9 do
    Slo.note_solved t ~now:(float_of_int i) ~tenant:"acme" 1.0
  done;
  check int "no alert while good" 0 (List.length !alerts);
  (* one breach of the bound: 1 bad / 10 events over a 0.1 budget is
     burn 1.0 — on budget, below the 6.0 fast-burn line *)
  Slo.note_solved t ~now:10. ~tenant:"acme" 50.0;
  check int "single breach below fast-burn" 0 (List.length !alerts);
  (* a burst of breaches pushes both windows past the line, once *)
  for i = 11 to 30 do
    Slo.note_solved t ~now:(float_of_int i) ~tenant:"acme" 50.0
  done;
  check (list (pair string string)) "fast-burn fired once, edge-triggered"
    [ ("acme", "solve") ] !alerts;
  (* wildcard fallback tracks tenants the spec never named *)
  let wspec = match Slo.parse "*:errors<0.5" with Ok s -> s | Error e -> fail e in
  let w = Slo.create wspec in
  Slo.note_error w ~now:1. ~tenant:"stranger";
  Slo.note_solved w ~now:2. ~tenant:"stranger" 1.0;
  let doc = Slo.to_json w ~now:2. in
  check bool "wildcard stream exists" true (contains (J.to_string doc) "\"stranger\"");
  check bool "counts both events" true (contains (J.to_string doc) "\"events\":2");
  (* the json section is deterministic *)
  check string "slo json deterministic" (J.to_string doc) (J.to_string (Slo.to_json w ~now:2.))

(* ---------- exposition ---------- *)

let test_expo_render () =
  let m = M.create ~enabled:true in
  M.add (M.counter (M.scope m ~labels:[ ("job", "1"); ("tenant", "acme") ]) "service.jobs.done") 3;
  M.set (M.gauge m "pool.free") 7.;
  let h = M.histogram m ~labels:[ ("tenant", "acme") ] "service.e2e_s" in
  List.iter (M.observe h) [ 1.0; 2.0; 4.0 ];
  let text = Obs.Expo.render m in
  List.iter
    (fun line -> check bool ("exposition has " ^ line) true (contains text line))
    [
      "# TYPE service_jobs_done counter";
      "service_jobs_done{job=\"1\",tenant=\"acme\"} 3";
      "# TYPE pool_free gauge";
      "pool_free 7";
      "# TYPE service_e2e_s summary";
      "service_e2e_s{tenant=\"acme\",quantile=\"0.5\"}";
      "service_e2e_s_sum{tenant=\"acme\"} 7";
      "service_e2e_s_count{tenant=\"acme\"} 3";
    ];
  (* byte-deterministic for a given registry state *)
  check string "exposition deterministic" text (Obs.Expo.render m);
  (* the merged view drops the labels *)
  let merged = Obs.Expo.render_merged m in
  check bool "merged strips labels" true (contains merged "service_jobs_done 3");
  check bool "merged has no label braces" false (contains merged "{job=")

(* ---------- span nesting ---------- *)

let test_span_nesting () =
  let r = S.create ~enabled:true in
  let t = ref 0.0 in
  S.set_clock r (fun () -> !t);
  let root = S.enter r ~tid:S.master_tid ~cat:"master" "root" in
  t := 1.0;
  let child = S.enter r ~parent:root ~tid:1 ~cat:"client" "solve" in
  t := 2.0;
  let leaf = S.instant r ~parent:child ~tid:1 ~cat:"solver" "restart" in
  t := 5.0;
  S.exit r child ~args:[ ("outcome", J.String "unsat") ];
  t := 6.0;
  S.exit r root;
  check int "three spans" 3 (S.count r);
  let get id = match S.find r id with Some s -> s | None -> fail "span lost" in
  check int "child -> root" root (get child).S.parent;
  check int "leaf -> child" child (get leaf).S.parent;
  check int "root is orphan" S.none (get root).S.parent;
  let c = get child and p = get root in
  check bool "child nested in parent" true
    (c.S.start >= p.S.start && c.S.stop <= p.S.stop);
  check (float 1e-9) "child duration" 4.0 (c.S.stop -. c.S.start);
  (* closing twice must not move the stop time *)
  t := 50.0;
  S.exit r child;
  check (float 1e-9) "exit is idempotent" 5.0 (get child).S.stop;
  (* instants stay zero-width and cannot be exited *)
  S.exit r leaf;
  check (float 1e-9) "instant zero width" 0.0 ((get leaf).S.stop -. (get leaf).S.start)

let test_span_disabled () =
  let r = S.disabled in
  let id = S.enter r ~cat:"x" "nothing" in
  check int "disabled returns none" S.none id;
  S.exit r id;
  check int "nothing recorded" 0 (S.count r)

(* ---------- Chrome trace export: golden file ---------- *)

let test_chrome_golden () =
  let r = S.create ~enabled:true in
  let t = ref 0.0 in
  S.set_clock r (fun () -> !t);
  let root = S.enter r ~tid:S.master_tid ~cat:"master" "assign" in
  t := 0.0015;
  let s = S.enter r ~parent:root ~tid:3 ~cat:"client" ~args:[ ("pid", J.String "0.1") ] "solve" in
  t := 0.004;
  ignore (S.instant r ~parent:s ~tid:3 ~cat:"protocol" "split.donate");
  t := 0.25;
  S.exit r s ~args:[ ("outcome", J.String "unsat") ];
  S.exit r root;
  let golden =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"gridsat\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\"args\":{\"name\":\"client 3\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1000,\"args\":{\"name\":\"master\"}},{\"name\":\"assign\",\"cat\":\"master\",\"pid\":1,\"tid\":1000,\"ts\":0,\"ph\":\"X\",\"dur\":250000,\"args\":{\"sid\":1}},{\"name\":\"solve\",\"cat\":\"client\",\"pid\":1,\"tid\":3,\"ts\":1500,\"ph\":\"X\",\"dur\":248500,\"args\":{\"sid\":2,\"parent\":1,\"pid\":\"0.1\",\"outcome\":\"unsat\"}},{\"name\":\"split.donate\",\"cat\":\"protocol\",\"pid\":1,\"tid\":3,\"ts\":4000,\"ph\":\"i\",\"s\":\"t\",\"args\":{\"sid\":3,\"parent\":2}}]}\n"
  in
  check string "golden trace bytes" golden (Obs.Chrome.export_string r);
  match Obs.Chrome.validate (Obs.Chrome.export r) with
  | Ok () -> ()
  | Error e -> fail e

let test_chrome_validate_rejects () =
  let bad = J.Obj [ ("traceEvents", J.Int 3) ] in
  (match Obs.Chrome.validate bad with Ok () -> fail "should reject" | Error _ -> ());
  let bad_ph =
    J.Obj
      [
        ( "traceEvents",
          J.List [ J.Obj [ ("name", J.String "x"); ("ph", J.String "?"); ("ts", J.Int 0) ] ] );
      ]
  in
  match Obs.Chrome.validate bad_ph with Ok () -> fail "unknown phase" | Error _ -> ()

(* ---------- report ---------- *)

let test_report_build_validate () =
  let obs = Obs.create () in
  Obs.Metrics.incr (Obs.Metrics.counter (Obs.metrics obs) "c");
  ignore (S.instant (Obs.spans obs) ~cat:"master" "tick");
  let doc =
    Obs.Report.build
      ~meta:[ ("mode", J.String "test") ]
      ~sections:[ ("run", J.Obj [ ("answer", J.String "UNSAT") ]) ]
      ~metrics:(Obs.metrics obs) ~spans:(Obs.spans obs) ()
  in
  (match Obs.Report.validate doc with Ok () -> () | Error e -> fail e);
  (match J.of_string (J.to_string doc) with
  | Ok doc' -> check string "report roundtrips" (J.to_string doc) (J.to_string doc')
  | Error e -> fail e);
  check bool "summary mentions the answer" true (contains (Obs.Report.summary doc) "UNSAT");
  match Obs.Report.validate (J.Obj [ ("schema", J.String "other/9") ]) with
  | Ok () -> fail "wrong schema accepted"
  | Error _ -> ()

(* ---------- determinism across whole runs ---------- *)

let test_grid_trace_deterministic () =
  let module C = Gridsat_core in
  let run () =
    let obs = Obs.create () in
    let testbed = C.Testbed.uniform ~n:4 ~speed:2000. () in
    let config =
      {
        C.Config.default with
        C.Config.split_timeout = 0.5;
        slice = 0.5;
        overall_timeout = 10_000.;
        seed = 7;
      }
    in
    let cnf = Workloads.Php.instance ~pigeons:6 ~holes:5 in
    let r = C.Gridsat.solve ~config ~obs ~testbed cnf in
    (Obs.Chrome.export_string (Obs.spans obs), C.Run_report.build ~meta:[ ("seed", J.Int 7) ] ~obs r)
  in
  let trace1, doc = run () in
  let trace2, _ = run () in
  check string "seeded trace is byte-stable" trace1 trace2;
  (match Obs.Chrome.validate (match J.of_string trace1 with Ok d -> d | Error e -> fail e) with
  | Ok () -> ()
  | Error e -> fail e);
  (* the report carries metrics from every layer of the run *)
  (match Obs.Report.validate doc with Ok () -> () | Error e -> fail e);
  let metrics_names =
    match J.member "metrics" doc with
    | Some (J.Obj kvs) -> List.map fst kvs
    | _ -> fail "metrics section missing"
  in
  let has prefix =
    List.exists
      (fun n ->
        String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix)
      metrics_names
  in
  List.iter
    (fun p -> check bool ("layer metric " ^ p) true (has p))
    [ "solver."; "client."; "master."; "net."; "reliable."; "journal."; "sim." ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          test_case "roundtrip" `Quick test_json_roundtrip;
          test_case "parse errors" `Quick test_json_parse_errors;
          test_case "float repr" `Quick test_json_float_repr;
          test_case "parser hardening" `Quick test_json_hardening;
        ] );
      ( "histogram",
        [
          test_case "uniform quantiles" `Quick test_histogram_uniform;
          test_case "exponential quantiles" `Quick test_histogram_exponential;
          test_case "point mass" `Quick test_histogram_point_mass;
          test_case "edge samples" `Quick test_histogram_edge_samples;
          test_case "registry semantics" `Quick test_metrics_registry;
          test_case "scoped registries + merged view" `Quick test_metrics_scoping;
          QCheck_alcotest.to_alcotest test_histogram_merge_prop;
        ] );
      ( "flight",
        [
          test_case "ring eviction" `Quick test_flight_ring;
          test_case "causal order + dump" `Quick test_flight_causal_dump;
        ] );
      ( "anomaly", [ test_case "detectors, cooldown, trips" `Quick test_anomaly_detector ] );
      ( "slo",
        [
          test_case "spec parsing" `Quick test_slo_parse;
          test_case "burn rates + fast-burn alert" `Quick test_slo_burn;
        ] );
      ( "expo", [ test_case "prometheus rendering" `Quick test_expo_render ] );
      ( "span",
        [
          test_case "nesting invariants" `Quick test_span_nesting;
          test_case "disabled recorder" `Quick test_span_disabled;
        ] );
      ( "chrome",
        [
          test_case "golden export" `Quick test_chrome_golden;
          test_case "validate rejects" `Quick test_chrome_validate_rejects;
        ] );
      ( "report",
        [ test_case "build/validate/summary" `Quick test_report_build_validate ] );
      ( "end-to-end",
        [ test_case "seeded trace deterministic" `Slow test_grid_trace_deterministic ] );
    ]
