(* Tests for the distributed GridSAT layer: subproblems, scheduler,
   checkpoints, the master/client protocol, and full end-to-end runs on
   simulated testbeds. *)

module T = Sat.Types
module Cnf = Sat.Cnf
module Solver = Sat.Solver
module Brute = Sat.Brute
module C = Gridsat_core
module Sub = C.Subproblem
module Cfg = C.Config

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- instances ---------- *)

let php ~pigeons ~holes =
  let v p h = ((p - 1) * holes) + h in
  let at_least = List.init pigeons (fun p -> List.init holes (fun h -> v (p + 1) (h + 1))) in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -v p1 h; -v p2 h ] else None)
              (List.init pigeons (fun i -> i + 1)))
          (List.init pigeons (fun i -> i + 1)))
      (List.init holes (fun i -> i + 1))
  in
  Cnf.make ~nvars:(pigeons * holes) (at_least @ at_most)

let random_cnf_gen ~max_vars ~max_clauses ~max_len =
  let open QCheck.Gen in
  int_range 1 max_vars >>= fun nv ->
  int_range 0 max_clauses >>= fun nc ->
  let lit_gen = map2 (fun v s -> if s then v else -v) (int_range 1 nv) bool in
  let clause_gen = list_size (int_range 1 max_len) lit_gen in
  list_size (return nc) clause_gen >|= fun clauses -> Cnf.make ~nvars:nv clauses

(* A config that splits eagerly so small instances still exercise the
   distributed machinery. *)
let eager_config =
  {
    Cfg.default with
    Cfg.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
  }

let testbed4 = C.Testbed.uniform ~n:4 ~speed:500. ()

let answer_of_result (r : C.Master.result) = r.C.Master.answer

let is_sat = function C.Master.Sat _ -> true | _ -> false
let is_unsat = function C.Master.Unsat -> true | _ -> false
let is_unknown = function C.Master.Unknown _ -> true | _ -> false

let has_event p (r : C.Master.result) = List.exists (fun e -> p e.C.Events.kind) r.C.Master.events

(* ---------- Subproblem ---------- *)

let test_subproblem_initial () =
  let cnf = php ~pigeons:4 ~holes:3 in
  let sp = Sub.initial cnf in
  check int "all clauses" (Cnf.nclauses cnf) (Sub.nclauses sp);
  check int "no path" 0 (Sub.depth sp);
  check bool "bytes positive" true (Sub.bytes sp > 0)

let test_subproblem_prune () =
  let sp =
    {
      Sub.nvars = 4;
      facts = [ T.pos 1 ];
      path = [ T.neg 2 ];
      clauses =
        [
          [| T.pos 1; T.pos 3 |] (* satisfied by fact 1: dropped *);
          [| T.neg 2; T.pos 4 |] (* satisfied by path ~2: dropped *);
          [| T.neg 1; T.pos 3 |] (* ~1 false by fact: stripped to (3) *);
          [| T.pos 2; T.pos 4 |] (* 2 false by path: kept whole (taint) *);
        ];
    }
  in
  let pruned = Sub.prune sp in
  let as_lists = List.map Array.to_list pruned.Sub.clauses in
  check int "two clauses survive" 2 (List.length as_lists);
  check bool "fact-false literal stripped" true (List.mem [ T.pos 3 ] as_lists);
  check bool "path literal kept" true (List.mem [ T.pos 2; T.pos 4 ] as_lists)

let test_subproblem_split_roundtrip () =
  (* split a solver mid-search; both halves together must preserve the
     answer (Figure 2 semantics) *)
  let cnf = php ~pigeons:5 ~holes:4 in
  let solver = Solver.create cnf in
  let rec drive n =
    if n = 0 then None
    else
      match Solver.run solver ~budget:20 with
      | Solver.Budget_exhausted ->
          if Solver.decision_level solver > 0 then Sub.split_from solver else drive (n - 1)
      | _ -> None
  in
  match drive 1000 with
  | None -> Alcotest.fail "could not reach a splittable state"
  | Some sp ->
      check int "path extended" 1 (Sub.depth sp);
      let b = Sub.to_solver ~config:Solver.default_config sp in
      let sat_a = match Solver.solve solver with Solver.Sat _ -> true | _ -> false in
      let sat_b = match Solver.solve b with Solver.Sat _ -> true | _ -> false in
      check bool "unsat on both branches" false (sat_a || sat_b)

let test_subproblem_capture () =
  let cnf = Cnf.make ~nvars:3 [ [ 1 ]; [ -1; 2 ]; [ 2; 3 ] ] in
  let solver = Solver.create cnf in
  let sp = Sub.capture solver in
  check bool "facts include propagated roots" true
    (List.mem (T.pos 1) sp.Sub.facts && List.mem (T.pos 2) sp.Sub.facts);
  (* both clauses are satisfied at the root: nothing left to transfer *)
  check int "clauses pruned" 0 (Sub.nclauses sp)

let prop_subproblem_wire_roundtrip =
  QCheck.Test.make ~name:"subproblem wire format roundtrips" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:30 ~max_len:4))
    (fun cnf ->
      let nv = Cnf.nvars cnf in
      let sp =
        {
          Sub.nvars = nv;
          facts = (if nv >= 1 then [ T.pos 1 ] else []);
          path = (if nv >= 2 then [ T.neg 2 ] else []);
          clauses = Cnf.clauses cnf;
        }
      in
      let back = Sub.of_string (Sub.to_string sp) in
      back.Sub.nvars = sp.Sub.nvars
      && back.Sub.facts = sp.Sub.facts
      && back.Sub.path = sp.Sub.path
      && List.map Array.to_list back.Sub.clauses = List.map Array.to_list sp.Sub.clauses)

let test_subproblem_wire_errors () =
  let expect_fail text =
    match Sub.of_string text with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  expect_fail "";
  expect_fail "p wrong 3 1\nf 0\na 0\n1 0\n";
  expect_fail "p subproblem 3 1\nf 0\na 0\n1 2\n"

let prop_prune_idempotent =
  QCheck.Test.make ~name:"subproblem pruning is idempotent" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:40 ~max_len:4))
    (fun cnf ->
      let nv = Cnf.nvars cnf in
      let sp =
        {
          Sub.nvars = nv;
          facts = (if nv >= 1 then [ T.pos 1 ] else []);
          path = (if nv >= 2 then [ T.neg 2 ] else []);
          clauses = Cnf.clauses cnf;
        }
      in
      let once = Sub.prune sp in
      let twice = Sub.prune once in
      List.map Array.to_list once.Sub.clauses = List.map Array.to_list twice.Sub.clauses)

let prop_prune_never_grows =
  QCheck.Test.make ~name:"pruning never grows a subproblem" ~count:100
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:40 ~max_len:4))
    (fun cnf ->
      let sp = Sub.initial cnf in
      let sp = { sp with Sub.facts = (if Cnf.nvars cnf >= 1 then [ T.neg 1 ] else []) } in
      Sub.bytes (Sub.prune sp) <= Sub.bytes sp)

(* ---------- Scheduler ---------- *)

let cand ?(health = 1.0) ~id ~speed ~mem_gb ~forecast () =
  {
    C.Scheduler.resource =
      Grid.Resource.make ~id ~name:(Printf.sprintf "r%d" id) ~site:"s" ~speed
        ~mem_bytes:(int_of_float (mem_gb *. 1024. *. 1024. *. 1024.))
        ~kind:Grid.Resource.Interactive;
    forecast;
    health;
  }

let test_scheduler_rank_monotone () =
  let base = cand ~id:1 ~speed:100. ~mem_gb:1. ~forecast:0.5 () in
  let faster = cand ~id:2 ~speed:200. ~mem_gb:1. ~forecast:0.5 () in
  let freer = cand ~id:3 ~speed:100. ~mem_gb:1. ~forecast:1.0 () in
  let bigger = cand ~id:4 ~speed:100. ~mem_gb:4. ~forecast:0.5 () in
  check bool "speed raises rank" true (C.Scheduler.rank faster > C.Scheduler.rank base);
  check bool "availability raises rank" true (C.Scheduler.rank freer > C.Scheduler.rank base);
  check bool "memory raises rank" true (C.Scheduler.rank bigger > C.Scheduler.rank base)

let test_scheduler_pick_policies () =
  let rng = Random.State.make [| 1 |] in
  let cands =
    [ cand ~id:1 ~speed:100. ~mem_gb:1. ~forecast:0.9 (); cand ~id:2 ~speed:300. ~mem_gb:1. ~forecast:0.9 () ]
  in
  (match C.Scheduler.pick Cfg.Nws_rank ~rng cands with
  | Some c -> check int "nws picks fastest" 2 c.C.Scheduler.resource.Grid.Resource.id
  | None -> Alcotest.fail "expected a pick");
  (match C.Scheduler.pick Cfg.First_fit ~rng cands with
  | Some c -> check int "first-fit picks lowest id" 1 c.C.Scheduler.resource.Grid.Resource.id
  | None -> Alcotest.fail "expected a pick");
  check bool "empty pool" true (C.Scheduler.pick Cfg.Nws_rank ~rng [] = None)

let test_scheduler_backlog () =
  check bool "longest-running first" true
    (C.Scheduler.pick_backlog [ (7, 100.); (3, 10.); (9, 50.) ] = Some 3);
  check bool "empty backlog" true (C.Scheduler.pick_backlog [] = None);
  (* two clients busy since the same instant (mass recovery re-homing a
     batch in one event): the lower id wins, regardless of entry order *)
  check bool "tie breaks on lower id" true
    (C.Scheduler.pick_backlog [ (9, 10.); (3, 10.); (7, 50.) ] = Some 3);
  check bool "tie break is order-independent" true
    (C.Scheduler.pick_backlog [ (3, 10.); (9, 10.); (7, 50.) ] = Some 3);
  check bool "older entry beats lower id" true
    (C.Scheduler.pick_backlog [ (1, 20.); (9, 10.) ] = Some 9)

let test_scheduler_migration_rule () =
  check bool "2x rule fires" true (C.Scheduler.should_migrate ~enabled:true ~busy_rank:10. ~idle_rank:20.);
  check bool "below 2x no" false (C.Scheduler.should_migrate ~enabled:true ~busy_rank:10. ~idle_rank:19.);
  check bool "disabled" false (C.Scheduler.should_migrate ~enabled:false ~busy_rank:1. ~idle_rank:100.);
  (* the paper's bar is "at least twice": the exact boundary migrates *)
  check bool "exact 2x boundary migrates" true
    (C.Scheduler.should_migrate ~enabled:true ~busy_rank:7.5 ~idle_rank:15.);
  check bool "just under the boundary stays" false
    (C.Scheduler.should_migrate ~enabled:true ~busy_rank:7.5 ~idle_rank:14.999)

(* ---------- Checkpoint ---------- *)

let test_checkpoint_light_restores_original_clauses () =
  let cnf = Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let store = C.Checkpoint.create cnf in
  let sp = { Sub.nvars = 3; facts = []; path = [ T.pos 1 ]; clauses = [ [| T.neg 1; T.pos 3 |] ] } in
  let bytes = C.Checkpoint.save store ~client:5 ~mode:Cfg.Light sp in
  check bool "light checkpoint small" true (bytes < Sub.bytes sp + 64);
  match C.Checkpoint.restore store ~client:5 with
  | None -> Alcotest.fail "expected a checkpoint"
  | Some restored ->
      check bool "path preserved" true (restored.Sub.path = [ T.pos 1 ]);
      (* clause (1 2) is satisfied by path 1 => pruned; (-1 3) loses nothing
         (the false literal is a path literal, kept for soundness) *)
      check int "clauses rebuilt from the problem file" 1 (Sub.nclauses restored)

let test_checkpoint_heavy_roundtrip () =
  let cnf = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
  let store = C.Checkpoint.create cnf in
  let sp = { Sub.nvars = 2; facts = [ T.pos 2 ]; path = []; clauses = [ [| T.pos 1; T.neg 2 |] ] } in
  ignore (C.Checkpoint.save store ~client:1 ~mode:Cfg.Heavy sp);
  (match C.Checkpoint.restore store ~client:1 with
  | Some restored -> check int "heavy keeps stored clauses" 1 (Sub.nclauses restored)
  | None -> Alcotest.fail "expected a checkpoint");
  check int "saves counted" 1 (C.Checkpoint.saves store);
  C.Checkpoint.drop store ~client:1;
  check bool "dropped" true (C.Checkpoint.restore store ~client:1 = None)

let test_checkpoint_none_mode () =
  let store = C.Checkpoint.create (Cnf.make ~nvars:1 []) in
  let sp = Sub.initial (Cnf.make ~nvars:1 []) in
  check int "no-checkpoint stores nothing" 0
    (C.Checkpoint.save store ~client:1 ~mode:Cfg.No_checkpoint sp)

(* ---------- end-to-end runs ---------- *)

let test_gridsat_unsat () =
  let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check bool "used several clients" true (r.C.Master.max_clients >= 2);
  check bool "split happened" true (r.C.Master.splits >= 1);
  check bool "positive virtual time" true (r.C.Master.time > 0.)

let test_gridsat_sat_verified () =
  let cnf = php ~pigeons:8 ~holes:8 in
  let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 cnf in
  (match answer_of_result r with
  | C.Master.Sat m -> check bool "model satisfies" true (Sat.Model.satisfies cnf m)
  | _ -> Alcotest.fail "expected sat");
  check bool "verification logged" true
    (has_event (function C.Events.Model_verified true -> true | _ -> false) r)

let test_gridsat_trivial_stays_sequential () =
  (* an easy instance must never spread beyond one client (the scheduler's
     goal is "to keep the execution as sequential as possible") *)
  let cnf = Cnf.make ~nvars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; 4 ] ] in
  let r = C.Gridsat.solve ~config:{ eager_config with Cfg.split_timeout = 50. } ~testbed:testbed4 cnf in
  check bool "sat" true (is_sat (answer_of_result r));
  check int "one client" 1 r.C.Master.max_clients;
  check int "no splits" 0 r.C.Master.splits

let test_gridsat_timeout () =
  let cnf = php ~pigeons:9 ~holes:8 in
  let config = { eager_config with Cfg.overall_timeout = 3. } in
  let r = C.Gridsat.solve ~config ~testbed:testbed4 cnf in
  check bool "unknown on timeout" true (is_unknown (answer_of_result r));
  check bool "time at timeout" true (r.C.Master.time >= 3.);
  (* a timed-out run is still a complete run: the report document builds
     and validates, so --report/--trace artifacts survive the timeout *)
  let doc = C.Run_report.build ~meta:[ ("problem", Obs.Json.String "php-9-8") ] ~obs:Obs.disabled r in
  match Obs.Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("timed-out run report invalid: " ^ e)

let test_gridsat_figure3_sequence () =
  (* the five-message split protocol must appear in order in the log *)
  let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 (php ~pigeons:7 ~holes:6) in
  let times p =
    List.filter_map (fun e -> if p e.C.Events.kind then Some e.C.Events.time else None) r.C.Master.events
  in
  let first p = match times p with [] -> None | t :: _ -> Some t in
  let requested = first (function C.Events.Split_requested _ -> true | _ -> false) in
  let granted = first (function C.Events.Split_granted _ -> true | _ -> false) in
  let completed = first (function C.Events.Split_completed _ -> true | _ -> false) in
  match (requested, granted, completed) with
  | Some t1, Some t2, Some t3 ->
      check bool "request before grant" true (t1 <= t2);
      check bool "grant before completion" true (t2 <= t3)
  | _ -> Alcotest.fail "split protocol events missing"

let test_gridsat_sharing_counts () =
  let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 (php ~pigeons:7 ~holes:6) in
  check bool "clauses were shared" true (r.C.Master.shared_clauses > 0);
  check bool "broadcast events logged" true
    (has_event (function C.Events.Shares_broadcast _ -> true | _ -> false) r)

let test_gridsat_deterministic () =
  let run () =
    let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 (php ~pigeons:6 ~holes:5) in
    (C.Gridsat.answer_string r.C.Master.answer, r.C.Master.time, r.C.Master.splits,
     r.C.Master.messages, List.length r.C.Master.events)
  in
  check bool "identical reruns" true (run () = run ())

let test_gridsat_memory_pressure_splits () =
  (* tiny hosts: the client must split under memory pressure rather than die *)
  let testbed = C.Testbed.uniform ~n:8 ~speed:500. ~mem_mb:1 () in
  let config =
    {
      eager_config with
      Cfg.min_client_memory = 0;
      split_timeout = 1000. (* only memory splits *);
      mem_headroom = 0.3 (* ask early, before the solver's own reduction kicks in *);
    }
  in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:9 ~holes:8) in
  check bool "still unsat" true (is_unsat (answer_of_result r));
  check bool "memory split requested" true
    (has_event
       (function C.Events.Split_requested { reason = `Memory; _ } -> true | _ -> false)
       r)

let test_gridsat_solves_where_baseline_memouts () =
  (* the paper's headline: problems zChaff cannot fit in one host's memory
     fall to the distributed solver *)
  let testbed = C.Testbed.uniform ~n:8 ~speed:500. ~mem_mb:1 () in
  let cnf = php ~pigeons:9 ~holes:8 in
  let baseline = C.Baseline.run ~host:(C.Testbed.fastest testbed) cnf in
  check bool "baseline memouts" true (baseline.C.Baseline.outcome = C.Baseline.Memout);
  let config = { eager_config with Cfg.min_client_memory = 0 } in
  let r = C.Gridsat.solve ~config ~testbed cnf in
  check bool "gridsat solves it" true (is_unsat (answer_of_result r))

let test_gridsat_backlog_served () =
  (* 2 hosts, eager splitting: some requests must be denied then served *)
  let testbed = C.Testbed.uniform ~n:2 ~speed:400. () in
  let config = { eager_config with Cfg.split_timeout = 1. } in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check bool "some request was backlogged" true
    (has_event (function C.Events.Split_denied _ -> true | _ -> false) r)

let test_gridsat_scheduler_policies_all_correct () =
  List.iter
    (fun policy ->
      let config = { eager_config with Cfg.scheduler = policy } in
      let r = C.Gridsat.solve ~config ~testbed:testbed4 (php ~pigeons:6 ~holes:5) in
      check bool "unsat under every policy" true (is_unsat (answer_of_result r)))
    [ Cfg.Nws_rank; Cfg.Random_pick; Cfg.First_fit ]

let test_gridsat_no_sharing_still_correct () =
  let config = { eager_config with Cfg.share_max_len = 0 } in
  let r = C.Gridsat.solve ~config ~testbed:testbed4 (php ~pigeons:6 ~holes:5) in
  check bool "unsat without sharing" true (is_unsat (answer_of_result r));
  check int "nothing shared" 0 r.C.Master.shared_clauses

let test_gridsat_heterogeneous_testbed () =
  let r = C.Gridsat.solve ~config:eager_config ~testbed:(C.Testbed.grads ()) (php ~pigeons:7 ~holes:6) in
  check bool "unsat on grads testbed" true (is_unsat (answer_of_result r))

let test_gridsat_migration () =
  (* host 1 is slow, host 2 is much faster: after both register, the master
     should migrate the initial problem from 1 to 2 *)
  let slow =
    Grid.Resource.make ~id:1 ~name:"slow" ~site:"a" ~speed:50. ~mem_bytes:(512 * 1024 * 1024)
      ~kind:Grid.Resource.Interactive
  in
  let fast =
    Grid.Resource.make ~id:2 ~name:"fast" ~site:"a" ~speed:1000. ~mem_bytes:(512 * 1024 * 1024)
      ~kind:Grid.Resource.Interactive
  in
  let testbed =
    {
      C.Testbed.name = "mig";
      master_site = "a";
      hosts =
        [
          { C.Testbed.resource = slow; trace = Grid.Trace.constant 1.0 };
          { C.Testbed.resource = fast; trace = Grid.Trace.constant 1.0 };
        ];
      batch = None;
      late_hosts = [];
      configure_network = (fun _ -> ());
    }
  in
  let config = { eager_config with Cfg.split_timeout = 1000. } in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check bool "migration happened" true
    (has_event (function C.Events.Migration { src = 1; dst = 2; _ } -> true | _ -> false) r)

(* The migrated branch is moved, not copied or re-derived: after
   Migrate_to -> transfer -> resume, the destination holds the same
   subproblem and finishes it, and the timeline never shows the work
   double-counted or lost. *)
let test_gridsat_migration_preserves_subproblem () =
  let slow =
    Grid.Resource.make ~id:1 ~name:"slow" ~site:"a" ~speed:50. ~mem_bytes:(512 * 1024 * 1024)
      ~kind:Grid.Resource.Interactive
  in
  let fast =
    Grid.Resource.make ~id:2 ~name:"fast" ~site:"a" ~speed:1000. ~mem_bytes:(512 * 1024 * 1024)
      ~kind:Grid.Resource.Interactive
  in
  let testbed =
    {
      C.Testbed.name = "mig-resume";
      master_site = "a";
      hosts =
        [
          { C.Testbed.resource = slow; trace = Grid.Trace.constant 1.0 };
          { C.Testbed.resource = fast; trace = Grid.Trace.constant 1.0 };
        ];
      batch = None;
      late_hosts = [];
      configure_network = (fun _ -> ());
    }
  in
  (* splitting off: exactly one subproblem exists for the whole run, so
     whoever finishes must have resumed the migrated branch *)
  let config = { eager_config with Cfg.split_timeout = 1000. } in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check (Alcotest.int) "no splits: a single preserved branch" 0 r.C.Master.splits;
  let index p =
    let rec go i = function
      | [] -> -1
      | e :: rest -> if p e.C.Events.kind then i else go (i + 1) rest
    in
    go 0 r.C.Master.events
  in
  let assigned = index (function C.Events.Problem_assigned { dst = 1; _ } -> true | _ -> false) in
  let migrated = index (function C.Events.Migration { src = 1; dst = 2; _ } -> true | _ -> false) in
  let finished = index (function C.Events.Client_finished_unsat 2 -> true | _ -> false) in
  check bool "timeline records the migration" true (migrated >= 0);
  check bool "migration follows the initial assignment" true (assigned >= 0 && assigned < migrated);
  check bool "destination resumed and finished the migrated branch" true (finished > migrated);
  let curve = C.Timeline.busy_curve r.C.Master.events in
  check (Alcotest.int) "the branch is never double-counted" 1 (C.Timeline.peak curve)

let test_gridsat_migration_disabled () =
  let config = { eager_config with Cfg.migration_enabled = false } in
  let r = C.Gridsat.solve ~config ~testbed:testbed4 (php ~pigeons:6 ~holes:5) in
  check bool "no migration events" false
    (has_event (function C.Events.Migration _ -> true | _ -> false) r)

let test_late_host_joins () =
  (* one slow host starts alone; a fast host joins at t=5 and is used *)
  let mk id speed =
    {
      C.Testbed.resource =
        Grid.Resource.make ~id ~name:(Printf.sprintf "h%d" id) ~site:"a" ~speed
          ~mem_bytes:(512 * 1024 * 1024) ~kind:Grid.Resource.Interactive;
      trace = Grid.Trace.constant 1.0;
    }
  in
  let testbed =
    {
      C.Testbed.name = "late";
      master_site = "a";
      hosts = [ mk 1 400. ];
      batch = None;
      late_hosts = [ (5., mk 2 800.) ];
      configure_network = (fun _ -> ());
    }
  in
  let config = { eager_config with Cfg.split_timeout = 1. } in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check bool "late client registered" true
    (has_event (function C.Events.Client_started 2 -> true | _ -> false) r);
  check int "both hosts were busy at some point" 2 r.C.Master.max_clients

(* ---------- batch (Blue Horizon) ---------- *)

let batch_testbed ~mean_wait ~duration =
  let interactive = C.Testbed.uniform ~n:2 ~speed:300. () in
  {
    interactive with
    C.Testbed.name = "batch-test";
    batch =
      Some
        {
          C.Testbed.site = "local";
          nodes = 4;
          node_speed = 800.;
          node_mem = 1024 * 1024 * 1024;
          duration;
          mean_wait;
          queue_seed = 0;
        };
  }

let test_batch_cancelled_when_solved_early () =
  let testbed = batch_testbed ~mean_wait:1.0e7 ~duration:100. in
  let r = C.Gridsat.solve ~config:eager_config ~testbed (php ~pigeons:6 ~holes:5) in
  check bool "solved before batch start" true (is_unsat (answer_of_result r));
  check bool "job submitted" true
    (has_event (function C.Events.Batch_job_submitted _ -> true | _ -> false) r);
  check bool "job cancelled" true
    (has_event (function C.Events.Batch_job_cancelled -> true | _ -> false) r)

let test_batch_nodes_join () =
  let testbed = batch_testbed ~mean_wait:0.001 ~duration:1.0e6 in
  let r = C.Gridsat.solve ~config:eager_config ~testbed (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (is_unsat (answer_of_result r));
  check bool "batch job started" true
    (has_event (function C.Events.Batch_job_started _ -> true | _ -> false) r);
  check bool "batch clients registered" true
    (has_event (function C.Events.Client_started id -> id >= 1000 | _ -> false) r)

let test_batch_expiry_terminates () =
  let testbed = batch_testbed ~mean_wait:0.001 ~duration:2.0 in
  let config = { eager_config with Cfg.overall_timeout = 1.0e6 } in
  let r = C.Gridsat.solve ~config ~testbed (php ~pigeons:9 ~holes:8) in
  (* either we solved before the 2-second job expired, or the expiry ended
     the run; with this hard instance expiry wins *)
  check bool "batch expiry ends the run" true (is_unknown (answer_of_result r))

(* ---------- failures and checkpointing ---------- *)

let solve_with_kill ~config ~testbed ~tkill cnf =
  let killed = ref None in
  C.Gridsat.solve ~config ~testbed
    ~on_master:(fun m ->
      let sim_kill () =
        (* find a busy client and kill it *)
        let events = C.Master.events_so_far m in
        let busy =
          List.fold_left
            (fun acc e ->
              match e.C.Events.kind with
              | C.Events.Problem_assigned { dst; _ } -> Some dst
              | C.Events.Client_finished_unsat id when acc = Some id -> None
              | _ -> acc)
            None events
        in
        match busy with
        | Some id when not (C.Master.finished m) ->
            killed := Some id;
            C.Master.kill_client m id
        | _ -> ()
      in
      C.Master.schedule m ~delay:tkill sim_kill)
    cnf
  |> fun r -> (r, !killed)

let test_kill_busy_without_checkpoint_rederives () =
  (* no checkpointing is armed, so the dead client's subproblem cannot be
     restored — it must be re-derived from the original CNF plus the
     journaled guiding-path lineage, and the run must still conclude *)
  let config = { eager_config with Cfg.split_timeout = 1000. } in
  let r, killed = solve_with_kill ~config ~testbed:testbed4 ~tkill:5. (php ~pigeons:8 ~holes:7) in
  check bool "a client was killed" true (killed <> None);
  check bool "lineage re-derivation logged" true
    (has_event (function C.Events.Rederived_from_lineage _ -> true | _ -> false) r);
  check bool "still unsat despite the loss" true (is_unsat (answer_of_result r))

let test_kill_busy_with_checkpoint_recovers () =
  let config =
    { eager_config with Cfg.split_timeout = 1000.; checkpoint = Cfg.Light; slice = 0.5 }
  in
  let r, killed = solve_with_kill ~config ~testbed:testbed4 ~tkill:9. (php ~pigeons:7 ~holes:6) in
  check bool "a client was killed" true (killed <> None);
  check bool "recovery event logged" true
    (has_event (function C.Events.Recovered_from_checkpoint _ -> true | _ -> false) r);
  check bool "answer still correct" true (is_unsat (answer_of_result r))

let test_kill_idle_is_tolerated () =
  let config = { eager_config with Cfg.split_timeout = 1000. } in
  let r =
    C.Gridsat.solve ~config ~testbed:testbed4
      ~on_master:(fun m ->
        C.Master.schedule m ~delay:3. (fun () ->
            (* client 4 is idle on this easy run; killing it must not
               disturb the answer *)
            C.Master.kill_client m 4))
      (php ~pigeons:6 ~holes:5)
  in
  check bool "still unsat" true (is_unsat (answer_of_result r))

(* A four-host testbed with every host on its own site and slow, high-
   latency links, so control and handoff messages spend observable
   virtual time in flight and failures can be injected mid-handoff. *)
let testbed4_slow =
  let base = C.Testbed.uniform ~n:4 ~speed:500. () in
  let sites = [| "s1"; "s2"; "s3"; "s4" |] in
  let hosts =
    List.mapi
      (fun i (h : C.Testbed.host) ->
        let r = h.C.Testbed.resource in
        {
          h with
          C.Testbed.resource =
            Grid.Resource.make ~id:r.Grid.Resource.id ~name:r.Grid.Resource.name ~site:sites.(i)
              ~speed:r.Grid.Resource.speed ~mem_bytes:r.Grid.Resource.mem_bytes
              ~kind:r.Grid.Resource.kind;
        })
      base.C.Testbed.hosts
  in
  {
    base with
    C.Testbed.name = "uniform-4-slow";
    master_site = "s1";
    hosts;
    configure_network =
      (fun net ->
        Array.iter
          (fun a ->
            Array.iter
              (fun b ->
                if a < b then Grid.Network.set_link net a b ~latency:0.5 ~bandwidth:1e6)
              sites)
          sites);
  }

(* Kill the reserved split partner the moment the pairing is announced:
   the donor's peer-to-peer handoff can never be acknowledged, so its
   retry budget runs out and the branch must come back to the master as
   an orphan instead of being silently lost. *)
let test_kill_reserved_partner_mid_handoff () =
  let killed = ref None in
  let config =
    {
      eager_config with
      Cfg.checkpoint = Cfg.Light;
      retry_base = 0.5;
      retry_max_attempts = 3;
    }
  in
  let r =
    C.Gridsat.solve ~config ~testbed:testbed4_slow
      ~on_master:(fun m ->
        let rec poll () =
          if (not (C.Master.finished m)) && !killed = None then begin
            (match
               List.find_map
                 (fun e ->
                   match e.C.Events.kind with
                   | C.Events.Split_granted { partner; _ } -> Some partner
                   | _ -> None)
                 (C.Master.events_so_far m)
             with
            | Some partner ->
                killed := Some partner;
                C.Master.kill_client m partner
            | None -> ());
            if !killed = None then C.Master.schedule m ~delay:0.2 poll
          end
        in
        C.Master.schedule m ~delay:0.2 poll)
      (php ~pigeons:7 ~holes:6)
  in
  check bool "a reserved partner was killed" true (!killed <> None);
  check bool "the branch came back as an orphan" true
    (has_event (function C.Events.Orphan_returned _ -> true | _ -> false) r);
  check bool "answer still correct" true (is_unsat (answer_of_result r))

(* Kill a split requester right after its partner was reserved: the
   partner must not be left parked in Reserved, and after termination no
   host may remain Reserved at all. *)
let test_terminate_releases_reservations () =
  let killed = ref None in
  let master = ref None in
  let config = { eager_config with Cfg.checkpoint = Cfg.Light } in
  let r =
    C.Gridsat.solve ~config ~testbed:testbed4
      ~on_master:(fun m ->
        master := Some m;
        let rec poll () =
          if (not (C.Master.finished m)) && !killed = None then begin
            (match
               List.find_map
                 (fun e ->
                   match e.C.Events.kind with
                   | C.Events.Split_granted { client; _ } -> Some client
                   | _ -> None)
                 (C.Master.events_so_far m)
             with
            | Some requester ->
                killed := Some requester;
                C.Master.kill_client m requester
            | None -> ());
            if !killed = None then C.Master.schedule m ~delay:0.2 poll
          end
        in
        C.Master.schedule m ~delay:0.2 poll)
      (php ~pigeons:7 ~holes:6)
  in
  check bool "a split requester was killed" true (!killed <> None);
  check bool "its work was recovered" true (is_unsat (answer_of_result r));
  match !master with
  | Some m -> check (Alcotest.list Alcotest.int) "no host left Reserved" [] (C.Master.reserved_hosts m)
  | None -> Alcotest.fail "master not captured"

let test_checkpoint_events_logged () =
  let config = { eager_config with Cfg.checkpoint = Cfg.Heavy } in
  let r = C.Gridsat.solve ~config ~testbed:testbed4 (php ~pigeons:7 ~holes:6) in
  check bool "checkpoints saved" true
    (has_event (function C.Events.Checkpoint_saved _ -> true | _ -> false) r);
  check bool "checkpoint bytes reported" true (r.C.Master.checkpoint_bytes > 0)

(* ---------- Protocol / Events / Config / Testbed coverage ---------- *)

let test_protocol_sizes () =
  let sp = Sub.initial (php ~pigeons:4 ~holes:3) in
  check bool "problem message dominated by the subproblem" true
    (C.Protocol.size (C.Protocol.Problem { pid = (1, 0); sp; sent_at = 0. }) = Sub.bytes sp);
  check bool "control messages are small" true
    (C.Protocol.size C.Protocol.Stop = C.Protocol.control_bytes);
  check bool "heartbeats and acks are small" true
    (C.Protocol.size (C.Protocol.Heartbeat { decisions = 0 }) = C.Protocol.control_bytes
    && C.Protocol.size (C.Protocol.Ack { mid = 7 }) = C.Protocol.control_bytes);
  check bool "reliable envelope weighs what its payload weighs" true
    (C.Protocol.size
       (C.Protocol.Reliable { mid = 3; payload = C.Protocol.Problem { pid = (1, 0); sp; sent_at = 0. } })
    = Sub.bytes sp);
  check bool "critical classification" true
    (C.Protocol.critical (C.Protocol.Finished_unsat { pid = (1, 0); proof = None })
    && C.Protocol.critical (C.Protocol.Orphaned { pid = (1, 0); sp })
    && (not (C.Protocol.critical (C.Protocol.Heartbeat { decisions = 0 })))
    && not (C.Protocol.critical (C.Protocol.Shares { clauses = [] })));
  let shares = [ [| T.pos 1; T.neg 2 |]; [| T.pos 3 |] ] in
  check bool "share size counts literals" true
    (C.Protocol.shares_bytes shares > C.Protocol.control_bytes);
  check bool "share and relay sizes agree" true
    (C.Protocol.size (C.Protocol.Shares { clauses = shares })
    = C.Protocol.size (C.Protocol.Share_relay { origin = 1; clauses = shares }))

(* ---------- Reliable channel unit tests ---------- *)

let make_reliable ~sim ?(max_attempts = 3) ?on_exhausted ~sent ~gave () =
  C.Reliable.create ~sim
    ~send_raw:(fun ~dst msg -> sent := (dst, msg) :: !sent)
    ~active:(fun () -> true)
    ~retry_base:1.0 ~max_attempts
    ~on_retry:(fun ~dst:_ ~attempt:_ -> ())
    ?on_exhausted
    ~on_give_up:(fun ~dst msg -> gave := (dst, msg) :: !gave)
    ()

let drain sim = while Grid.Sim.step sim do () done

let test_reliable_duplicate_ack () =
  let sim = Grid.Sim.create () in
  let sent = ref [] and gave = ref [] in
  let rel = make_reliable ~sim ~sent ~gave () in
  C.Reliable.send rel ~dst:7 C.Protocol.Stop;
  let mid =
    match !sent with
    | [ (7, C.Protocol.Reliable { mid; _ }) ] -> mid
    | _ -> Alcotest.fail "expected one enveloped transmission"
  in
  C.Reliable.handle_ack rel ~mid;
  check int "settled" 0 (C.Reliable.outstanding rel);
  (* a duplicate ack (retransmission crossed the first ack) is a no-op *)
  C.Reliable.handle_ack rel ~mid;
  C.Reliable.handle_ack rel ~mid:999;
  check int "still settled" 0 (C.Reliable.outstanding rel);
  drain sim;
  check int "no retries after the ack" 0 (C.Reliable.retries rel);
  check bool "never gave up" true (!gave = [])

let test_reliable_dedup_on_admission () =
  let sim = Grid.Sim.create () in
  let sent = ref [] and gave = ref [] in
  let rel = make_reliable ~sim ~sent ~gave () in
  check bool "first (5,1) admitted" true (C.Reliable.admit rel ~src:5 ~mid:1);
  check bool "replayed (5,1) rejected" false (C.Reliable.admit rel ~src:5 ~mid:1);
  check bool "same src, new mid admitted" true (C.Reliable.admit rel ~src:5 ~mid:2);
  check bool "same mid, other src admitted" true (C.Reliable.admit rel ~src:6 ~mid:1);
  check bool "replay still rejected" false (C.Reliable.admit rel ~src:5 ~mid:1)

let test_reliable_exhaustion_signal () =
  let sim = Grid.Sim.create () in
  let sent = ref [] and gave = ref [] in
  let exhausted = ref [] in
  let rel =
    make_reliable ~sim ~max_attempts:3
      ~on_exhausted:(fun ~dst ~attempts -> exhausted := (dst, attempts) :: !exhausted)
      ~sent ~gave ()
  in
  C.Reliable.send rel ~dst:9 C.Protocol.Stop;
  check int "one in flight" 1 (C.Reliable.outstanding_to rel ~dst:9);
  drain sim (* nobody ever acks *);
  check (Alcotest.list (Alcotest.pair int int)) "exhaustion fired with the attempt count"
    [ (9, 3) ] !exhausted;
  check int "then the owner was told" 1 (List.length !gave);
  check bool "with the original payload" true (List.hd !gave = (9, C.Protocol.Stop));
  check int "initial + 3 retries transmitted" 4 (List.length !sent);
  check int "nothing left outstanding" 0 (C.Reliable.outstanding rel);
  check int "give-up counted" 1 (C.Reliable.gave_up rel)

(* ---------- Config validation ---------- *)

let test_config_validate () =
  let ok c = match Cfg.validate c with Ok () -> true | Error _ -> false in
  let rejects c =
    match Cfg.validate c with
    | Error msg -> String.length msg > 0
    | Ok () -> false
  in
  check bool "default config is valid" true (ok Cfg.default);
  check bool "experiment sets are valid" true
    (ok Cfg.experiment_set_1 && ok Cfg.experiment_set_2);
  check bool "suspect timeout must exceed heartbeat" true
    (rejects { Cfg.default with Cfg.suspect_timeout = Cfg.default.Cfg.heartbeat_period });
  check bool "checkpoint period must be positive" true
    (rejects { Cfg.default with Cfg.checkpoint_period = 0. });
  (* the CLI's --timeout flag lands here: a non-positive override must be
     refused before the run starts, not clamped or ignored *)
  check bool "zero overall timeout rejected" true
    (rejects { Cfg.default with Cfg.overall_timeout = 0. });
  check bool "negative overall timeout rejected" true
    (rejects { Cfg.default with Cfg.overall_timeout = -5. });
  check bool "at least one delivery attempt" true
    (rejects { Cfg.default with Cfg.retry_max_attempts = 0 });
  check bool "heartbeat must be positive" true
    (rejects { Cfg.default with Cfg.heartbeat_period = 0. });
  check bool "journal must compact eventually" true
    (rejects { Cfg.default with Cfg.journal_compact_every = 0 });
  check bool "resync grace must be positive" true
    (rejects { Cfg.default with Cfg.resync_grace = 0. });
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Cfg.validate { Cfg.default with Cfg.retry_max_attempts = -1 } with
  | Error msg -> check bool "error names the field" true (contains msg "retry")
  | Ok () -> Alcotest.fail "negative retry budget accepted");
  check bool "certify requires integrity framing" true
    (rejects
       { Cfg.default with Cfg.certify = true; integrity_checks = false; share_max_len = 0 });
  check bool "certify forbids clause sharing" true
    (rejects { Cfg.default with Cfg.certify = true; integrity_checks = true; share_max_len = 10 });
  check bool "certify with sharing off and framing on is valid" true
    (ok { Cfg.default with Cfg.certify = true; integrity_checks = true; share_max_len = 0 });
  match Cfg.validate_exn { Cfg.default with Cfg.suspect_timeout = 1.; heartbeat_period = 5. } with
  | () -> Alcotest.fail "validate_exn let an inconsistent config through"
  | exception Invalid_argument _ -> ()

let test_fault_plan_validate () =
  let module F = Grid.Fault in
  let ok specs = match F.validate specs with Ok () -> true | Error _ -> false in
  let rejects specs = match F.validate specs with Error _ -> true | Ok () -> false in
  check bool "empty plan is valid" true (ok []);
  check bool "corruption probability above 1 rejected" true
    (rejects
       [
         F.Corrupt_messages
           { src_site = None; dst_site = None; p = 1.5; from_t = 0.; until_t = infinity };
       ]);
  check bool "negative corruption probability rejected" true
    (rejects
       [
         F.Corrupt_messages
           { src_site = None; dst_site = None; p = -0.1; from_t = 0.; until_t = infinity };
       ]);
  check bool "inverted corruption window rejected" true
    (rejects
       [
         F.Corrupt_messages { src_site = None; dst_site = None; p = 0.1; from_t = 5.; until_t = 1. };
       ]);
  check bool "negative journal rot count rejected" true
    (rejects [ F.Corrupt_storage { at = 0.; journal_records = -1; checkpoints = true } ]);
  check bool "valid corruption plan accepted" true
    (ok
       [
         F.Corrupt_messages
           { src_site = None; dst_site = None; p = 0.05; from_t = 0.; until_t = infinity };
         F.Corrupt_storage { at = 3.; journal_records = 2; checkpoints = true };
       ])

let test_events_printing () =
  (* every constructor renders without raising *)
  let kinds =
    [
      C.Events.Client_started 1;
      C.Events.Problem_assigned { src = 0; dst = 1; bytes = 10; depth = 2 };
      C.Events.Split_requested { client = 1; reason = `Memory };
      C.Events.Split_requested { client = 1; reason = `Long_running };
      C.Events.Split_granted { client = 1; partner = 2 };
      C.Events.Split_denied { client = 1 };
      C.Events.Split_completed { src = 1; dst = 2; bytes = 5 };
      C.Events.Migration { src = 1; dst = 2; bytes = 5 };
      C.Events.Shares_broadcast { origin = 1; count = 3; recipients = 4 };
      C.Events.Client_finished_unsat 1;
      C.Events.Client_found_model 1;
      C.Events.Model_verified true;
      C.Events.Client_killed 1;
      C.Events.Host_crashed 1;
      C.Events.Host_hung 1;
      C.Events.Client_suspected { client = 1 };
      C.Events.False_suspicion { client = 1 };
      C.Events.Message_retried { src = 1; dst = 2; attempt = 3 };
      C.Events.Message_given_up { src = 1; dst = 2 };
      C.Events.Recovery_requeued { client = 1 };
      C.Events.Orphan_returned { donor = 1 };
      C.Events.Checkpoint_saved { client = 1; bytes = 9 };
      C.Events.Recovered_from_checkpoint { client = 1; onto = 2 };
      C.Events.Retries_exhausted { src = 1; dst = 2; attempts = 6 };
      C.Events.Rederived_from_lineage { holder = Some 3; depth = 4 };
      C.Events.Rederived_from_lineage { holder = None; depth = 0 };
      C.Events.Master_crashed;
      C.Events.Master_restarted;
      C.Events.Master_outage_detected { client = 2 };
      C.Events.Client_resynced { client = 2; busy = true };
      C.Events.Batch_job_submitted { nodes = 4 };
      C.Events.Batch_job_started { nodes = 4 };
      C.Events.Batch_job_cancelled;
      C.Events.Terminated "why";
    ]
  in
  List.iter
    (fun kind ->
      let s = Format.asprintf "%a" C.Events.pp (C.Events.make 1.5 kind) in
      check bool "nonempty rendering" true (String.length s > 5))
    kinds

let test_config_experiment_sets () =
  check int "set 1 shares length 10" 10 Cfg.experiment_set_1.Cfg.share_max_len;
  check int "set 2 shares length 3" 3 Cfg.experiment_set_2.Cfg.share_max_len;
  check bool "set 2 doubles the timeout" true
    (Cfg.experiment_set_2.Cfg.overall_timeout > Cfg.experiment_set_1.Cfg.overall_timeout)

let test_testbed_shapes () =
  let grads = C.Testbed.grads () in
  check int "grads has 34 hosts" 34 (C.Testbed.nhosts grads);
  check bool "grads has no batch" true (grads.C.Testbed.batch = None);
  let set2 = C.Testbed.set2 () in
  check int "set2 has 27 hosts" 27 (C.Testbed.nhosts set2);
  check bool "set2 has a batch spec" true (set2.C.Testbed.batch <> None);
  let fast = C.Testbed.fastest grads in
  List.iter
    (fun (h : C.Testbed.host) ->
      check bool "fastest is max" true
        (h.C.Testbed.resource.Grid.Resource.speed <= fast.C.Testbed.resource.Grid.Resource.speed))
    grads.C.Testbed.hosts;
  (* host ids are unique *)
  let ids = List.map (fun h -> h.C.Testbed.resource.Grid.Resource.id) grads.C.Testbed.hosts in
  check int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_answer_strings () =
  check bool "unsat string" true (C.Gridsat.answer_string C.Master.Unsat = "UNSAT");
  check bool "unknown string" true
    (C.Gridsat.answer_string (C.Master.Unknown "x") = "UNKNOWN(x)")

let test_subproblem_bytes_monotone () =
  let small = Sub.initial (php ~pigeons:3 ~holes:3) in
  let big = Sub.initial (php ~pigeons:6 ~holes:6) in
  check bool "more clauses cost more bytes" true (Sub.bytes big > Sub.bytes small)

(* ---------- Timeline ---------- *)

let test_timeline_curve () =
  let ev t k = C.Events.make t k in
  let events =
    [
      ev 0. (C.Events.Client_started 1);
      ev 1. (C.Events.Problem_assigned { src = 0; dst = 1; bytes = 10; depth = 0 });
      ev 5. (C.Events.Problem_assigned { src = 1; dst = 2; bytes = 10; depth = 1 });
      ev 9. (C.Events.Client_finished_unsat 2);
      ev 12. (C.Events.Client_finished_unsat 1);
      ev 12. (C.Events.Terminated "done");
    ]
  in
  let curve = C.Timeline.busy_curve events in
  check int "peak" 2 (C.Timeline.peak curve);
  (* busy: 1 during [1,5), 2 during [5,9), 1 during [9,12) => 15 client-seconds *)
  check bool "client seconds" true (abs_float (C.Timeline.client_seconds curve -. 15.) < 1e-6);
  check bool "average" true (abs_float (C.Timeline.average curve -. (15. /. 12.)) < 1e-6)

let test_timeline_migration_frees_source () =
  let ev t k = C.Events.make t k in
  let events =
    [
      ev 0. (C.Events.Problem_assigned { src = 0; dst = 1; bytes = 1; depth = 0 });
      ev 2. (C.Events.Migration { src = 1; dst = 2; bytes = 1 });
      ev 2. (C.Events.Problem_assigned { src = 1; dst = 2; bytes = 1; depth = 0 });
      ev 6. (C.Events.Client_found_model 2);
    ]
  in
  let curve = C.Timeline.busy_curve events in
  check bool "peak stays 1-2" true (C.Timeline.peak curve <= 2);
  check int "final count zero" 0 (snd (List.nth curve (List.length curve - 1)))

let test_timeline_chart_renders () =
  let r = C.Gridsat.solve ~config:eager_config ~testbed:testbed4 (php ~pigeons:6 ~holes:5) in
  let curve = C.Timeline.busy_curve r.C.Master.events in
  let chart = C.Timeline.ascii_chart ~width:30 ~height:5 curve in
  check bool "chart nonempty" true (String.length chart > 0);
  check bool "has bars" true (String.contains chart '#');
  check bool "empty curve handled" true (C.Timeline.ascii_chart [] = "(no data)\n");
  (* a single-point curve has no elapsed time: defined no-data output,
     zero average, zero integral *)
  let point = [ (3., 1) ] in
  let chart = C.Timeline.ascii_chart point in
  check bool "single point renders no-data" true
    (String.length chart > 0 && chart.[0] = '(' && String.contains chart ')');
  check (Alcotest.float 1e-9) "single point average" 0. (C.Timeline.average point);
  check (Alcotest.float 1e-9) "empty average" 0. (C.Timeline.average []);
  check (Alcotest.float 1e-9) "single point integral" 0. (C.Timeline.client_seconds point)

(* ---------- the answer-correctness property ---------- *)

let prop_gridsat_matches_brute =
  QCheck.Test.make ~name:"gridsat agrees with brute force" ~count:60
    (QCheck.make (random_cnf_gen ~max_vars:10 ~max_clauses:44 ~max_len:3))
    (fun cnf ->
      let config = { eager_config with Cfg.split_timeout = 0.5 } in
      let r = C.Gridsat.solve ~config ~testbed:testbed4 cnf in
      match (answer_of_result r, Brute.solve cnf) with
      | C.Master.Sat m, Brute.Sat _ -> Sat.Model.satisfies cnf m
      | C.Master.Unsat, Brute.Unsat -> true
      | _ -> false)

(* ---------- baseline ---------- *)

let test_baseline_outcomes () =
  let host = C.Testbed.fastest testbed4 in
  let sat = C.Baseline.run ~host (php ~pigeons:5 ~holes:5) in
  (match sat.C.Baseline.outcome with
  | C.Baseline.Sat m -> check bool "model ok" true (Sat.Model.satisfies (php ~pigeons:5 ~holes:5) m)
  | _ -> Alcotest.fail "expected sat");
  let unsat = C.Baseline.run ~host (php ~pigeons:5 ~holes:4) in
  check bool "unsat" true (unsat.C.Baseline.outcome = C.Baseline.Unsat);
  check bool "time positive" true (unsat.C.Baseline.time > 0.);
  let tout = C.Baseline.run ~timeout:0.001 ~host (php ~pigeons:9 ~holes:8) in
  check bool "timeout" true (tout.C.Baseline.outcome = C.Baseline.Timeout)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "core"
    [
      ( "subproblem",
        [
          Alcotest.test_case "initial" `Quick test_subproblem_initial;
          Alcotest.test_case "prune" `Quick test_subproblem_prune;
          Alcotest.test_case "split roundtrip" `Quick test_subproblem_split_roundtrip;
          Alcotest.test_case "capture" `Quick test_subproblem_capture;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rank monotone" `Quick test_scheduler_rank_monotone;
          Alcotest.test_case "pick policies" `Quick test_scheduler_pick_policies;
          Alcotest.test_case "backlog order" `Quick test_scheduler_backlog;
          Alcotest.test_case "migration rule" `Quick test_scheduler_migration_rule;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "light restore" `Quick test_checkpoint_light_restores_original_clauses;
          Alcotest.test_case "heavy roundtrip" `Quick test_checkpoint_heavy_roundtrip;
          Alcotest.test_case "none mode" `Quick test_checkpoint_none_mode;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "unsat run" `Slow test_gridsat_unsat;
          Alcotest.test_case "sat verified" `Slow test_gridsat_sat_verified;
          Alcotest.test_case "easy stays sequential" `Quick test_gridsat_trivial_stays_sequential;
          Alcotest.test_case "timeout" `Slow test_gridsat_timeout;
          Alcotest.test_case "figure 3 sequence" `Slow test_gridsat_figure3_sequence;
          Alcotest.test_case "sharing counts" `Slow test_gridsat_sharing_counts;
          Alcotest.test_case "deterministic" `Slow test_gridsat_deterministic;
          Alcotest.test_case "memory-pressure splits" `Slow test_gridsat_memory_pressure_splits;
          Alcotest.test_case "beats baseline memout" `Slow test_gridsat_solves_where_baseline_memouts;
          Alcotest.test_case "backlog served" `Slow test_gridsat_backlog_served;
          Alcotest.test_case "all scheduler policies" `Slow test_gridsat_scheduler_policies_all_correct;
          Alcotest.test_case "no sharing still correct" `Slow test_gridsat_no_sharing_still_correct;
          Alcotest.test_case "heterogeneous testbed" `Slow test_gridsat_heterogeneous_testbed;
          Alcotest.test_case "migration" `Slow test_gridsat_migration;
          Alcotest.test_case "migration preserves subproblem" `Slow
            test_gridsat_migration_preserves_subproblem;
          Alcotest.test_case "migration disabled" `Slow test_gridsat_migration_disabled;
          Alcotest.test_case "late host joins" `Slow test_late_host_joins;
        ] );
      ( "batch",
        [
          Alcotest.test_case "cancel on early solve" `Slow test_batch_cancelled_when_solved_early;
          Alcotest.test_case "nodes join" `Slow test_batch_nodes_join;
          Alcotest.test_case "expiry terminates" `Slow test_batch_expiry_terminates;
        ] );
      ( "failures",
        [
          Alcotest.test_case "busy kill without checkpoint" `Slow
            test_kill_busy_without_checkpoint_rederives;
          Alcotest.test_case "busy kill with checkpoint" `Slow test_kill_busy_with_checkpoint_recovers;
          Alcotest.test_case "idle kill tolerated" `Slow test_kill_idle_is_tolerated;
          Alcotest.test_case "partner killed mid-handoff" `Slow
            test_kill_reserved_partner_mid_handoff;
          Alcotest.test_case "reservations released" `Slow test_terminate_releases_reservations;
          Alcotest.test_case "checkpoint events" `Slow test_checkpoint_events_logged;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "duplicate ack is a no-op" `Quick test_reliable_duplicate_ack;
          Alcotest.test_case "dedup on admission" `Quick test_reliable_dedup_on_admission;
          Alcotest.test_case "retry exhaustion signal" `Quick test_reliable_exhaustion_signal;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "message sizes" `Quick test_protocol_sizes;
          Alcotest.test_case "event rendering" `Quick test_events_printing;
          Alcotest.test_case "config validation" `Quick test_config_validate;
          Alcotest.test_case "fault plan validation" `Quick test_fault_plan_validate;
          Alcotest.test_case "experiment configs" `Quick test_config_experiment_sets;
          Alcotest.test_case "testbed shapes" `Quick test_testbed_shapes;
          Alcotest.test_case "answer strings" `Quick test_answer_strings;
          Alcotest.test_case "subproblem bytes" `Quick test_subproblem_bytes_monotone;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "curve arithmetic" `Quick test_timeline_curve;
          Alcotest.test_case "migration frees source" `Quick test_timeline_migration_frees_source;
          Alcotest.test_case "chart renders" `Quick test_timeline_chart_renders;
        ] );
      ( "correctness",
        [ Alcotest.test_case "wire format errors" `Quick test_subproblem_wire_errors ]
        @ qsuite
            [
              prop_gridsat_matches_brute;
              prop_prune_idempotent;
              prop_prune_never_grows;
              prop_subproblem_wire_roundtrip;
            ] );
      ("baseline", [ Alcotest.test_case "outcomes" `Slow test_baseline_outcomes ]);
    ]
