(* Tests for the shared-memory (domains) parallel backend. *)

module Cnf = Sat.Cnf
module Brute = Sat.Brute
module Par = Par.Par_solver

let check = Alcotest.check
let bool = Alcotest.bool

let php ~pigeons ~holes =
  let v p h = ((p - 1) * holes) + h in
  let at_least = List.init pigeons (fun p -> List.init holes (fun h -> v (p + 1) (h + 1))) in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -v p1 h; -v p2 h ] else None)
              (List.init pigeons (fun i -> i + 1)))
          (List.init pigeons (fun i -> i + 1)))
      (List.init holes (fun i -> i + 1))
  in
  Cnf.make ~nvars:(pigeons * holes) (at_least @ at_most)

let test_par_unsat () =
  let outcome, stats = Par.solve ~num_domains:3 ~slice_budget:2_000 (php ~pigeons:7 ~holes:6) in
  check bool "unsat" true (outcome = Par.Unsat);
  check bool "several subproblems exhausted" true (stats.Par.subproblems_solved >= 1);
  check bool "work was split" true (stats.Par.splits >= 1)

let test_par_sat_verified () =
  let cnf = php ~pigeons:7 ~holes:7 in
  match Par.solve ~num_domains:3 ~slice_budget:2_000 cnf with
  | Par.Sat m, _ -> check bool "model verified" true (Sat.Model.satisfies cnf m)
  | (Par.Unsat | Par.Budget_exhausted), _ -> Alcotest.fail "expected sat"

let test_par_single_domain () =
  let outcome, stats = Par.solve ~num_domains:1 (php ~pigeons:6 ~holes:5) in
  check bool "unsat with one domain" true (outcome = Par.Unsat);
  check bool "one domain reported" true (stats.Par.domains = 1)

let test_par_budget () =
  let outcome, _ = Par.solve ~num_domains:2 ~total_budget:5_000 (php ~pigeons:9 ~holes:8) in
  check bool "budget exhausted" true (outcome = Par.Budget_exhausted)

let test_par_trivial () =
  let sat = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
  (match Par.solve ~num_domains:2 sat with
  | Par.Sat _, _ -> ()
  | _ -> Alcotest.fail "expected sat");
  let unsat = Cnf.make ~nvars:1 [ [ 1 ]; [ -1 ] ] in
  match Par.solve ~num_domains:2 unsat with
  | Par.Unsat, _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_par_empty_formula () =
  match Par.solve ~num_domains:2 (Cnf.make ~nvars:3 []) with
  | Par.Sat _, _ -> ()
  | _ -> Alcotest.fail "expected sat"

let prop_par_matches_brute =
  let gen =
    let open QCheck.Gen in
    int_range 1 9 >>= fun nv ->
    int_range 0 36 >>= fun nc ->
    let lit = map2 (fun v s -> if s then v else -v) (int_range 1 nv) bool in
    list_size (return nc) (list_size (int_range 1 3) lit) >|= fun cs -> Cnf.make ~nvars:nv cs
  in
  QCheck.Test.make ~name:"par solver agrees with brute force" ~count:60 (QCheck.make gen)
    (fun cnf ->
      let outcome, _ = Par.solve ~num_domains:2 ~slice_budget:500 cnf in
      match (outcome, Brute.solve cnf) with
      | Par.Sat m, Brute.Sat _ -> Sat.Model.satisfies cnf m
      | Par.Unsat, Brute.Unsat -> true
      | _ -> false)

let test_portfolio_unsat () =
  let outcome, stats = Par.portfolio ~num_domains:3 ~slice_budget:2_000 (php ~pigeons:6 ~holes:5) in
  check bool "unsat" true (outcome = Par.Unsat);
  check bool "portfolio never splits" true (stats.Par.splits = 0)

let test_portfolio_sat () =
  let cnf = php ~pigeons:7 ~holes:7 in
  match Par.portfolio ~num_domains:3 ~slice_budget:2_000 cnf with
  | Par.Sat m, _ -> check bool "model verified" true (Sat.Model.satisfies cnf m)
  | _ -> Alcotest.fail "expected sat"

let prop_portfolio_matches_brute =
  let gen =
    let open QCheck.Gen in
    int_range 1 9 >>= fun nv ->
    int_range 0 36 >>= fun nc ->
    let lit = map2 (fun v s -> if s then v else -v) (int_range 1 nv) bool in
    list_size (return nc) (list_size (int_range 1 3) lit) >|= fun cs -> Cnf.make ~nvars:nv cs
  in
  QCheck.Test.make ~name:"portfolio agrees with brute force" ~count:40 (QCheck.make gen)
    (fun cnf ->
      let outcome, _ = Par.portfolio ~num_domains:2 ~slice_budget:500 cnf in
      match (outcome, Brute.solve cnf) with
      | Par.Sat m, Brute.Sat _ -> Sat.Model.satisfies cnf m
      | Par.Unsat, Brute.Unsat -> true
      | _ -> false)

let test_par_shares_flow () =
  let _, stats =
    Par.solve ~num_domains:3 ~slice_budget:1_000 ~share_max_len:16 (php ~pigeons:8 ~holes:7)
  in
  check bool "clauses were shared" true (stats.Par.shared_clauses > 0)

let () =
  Alcotest.run "par"
    [
      ( "par_solver",
        [
          Alcotest.test_case "unsat" `Slow test_par_unsat;
          Alcotest.test_case "sat verified" `Slow test_par_sat_verified;
          Alcotest.test_case "single domain" `Quick test_par_single_domain;
          Alcotest.test_case "budget cap" `Slow test_par_budget;
          Alcotest.test_case "trivial cases" `Quick test_par_trivial;
          Alcotest.test_case "empty formula" `Quick test_par_empty_formula;
          Alcotest.test_case "shares flow" `Slow test_par_shares_flow;
          Alcotest.test_case "portfolio unsat" `Slow test_portfolio_unsat;
          Alcotest.test_case "portfolio sat" `Slow test_portfolio_sat;
        ]
        @ [
            QCheck_alcotest.to_alcotest prop_par_matches_brute;
            QCheck_alcotest.to_alcotest prop_portfolio_matches_brute;
          ] );
    ]
