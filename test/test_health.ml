(* Unit tests for the host-health model (circuit breaker, blended score,
   percentile-derived deadlines) and the jittered Reliable backoff. *)

module H = Gridsat_core.Health
module R = Gridsat_core.Reliable

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

(* ---------- circuit breaker ---------- *)

let test_breaker_lifecycle () =
  let h = H.create ~probation_base:10. () in
  check bool "unknown host admissible" true (H.admissible h ~host:1 ~now:0.);
  check flt "unknown host scores 1" 1.0 (H.score h ~host:1);
  (match H.incident h ~host:1 ~now:0. `Crash with
  | Some until_t -> check flt "first probation is the base" 10. until_t
  | None -> Alcotest.fail "crash must trip the breaker");
  check bool "open breaker inadmissible" false (H.admissible h ~host:1 ~now:5.);
  check flt "open breaker scores 0" 0. (H.score h ~host:1);
  (* probation expiry flips to half-open: one canary slot *)
  check bool "half-open admissible" true (H.admissible h ~host:1 ~now:11.);
  check bool "half-open score is halved" true (H.score h ~host:1 <= 0.5);
  H.note_assigned h ~host:1;
  check bool "canary outstanding blocks a second problem" false (H.admissible h ~host:1 ~now:12.);
  check bool "canary success closes the breaker" true (H.note_success h ~host:1);
  check bool "closed again" true (H.admissible h ~host:1 ~now:13.);
  (* a success on a closed breaker is not a canary *)
  check bool "ordinary success is not a canary" false (H.note_success h ~host:1)

let test_breaker_exponential_probation () =
  let h = H.create ~probation_base:10. () in
  let trip now =
    match H.incident h ~host:3 ~now `Exhausted with
    | Some until_t -> until_t -. now
    | None -> Alcotest.fail "exhaustion must trip the breaker"
  in
  check flt "first trip: base" 10. (trip 0.);
  check flt "second trip: doubled" 20. (trip 100.);
  check flt "third trip: doubled again" 40. (trip 200.);
  (* a canary success resets the streak *)
  ignore (H.admissible h ~host:3 ~now:1000.);
  H.note_assigned h ~host:3;
  check bool "canary closes" true (H.note_success h ~host:3);
  check flt "streak reset after re-admission" 10. (trip 2000.)

let test_soft_incidents_do_not_trip () =
  let h = H.create () in
  check bool "corruption does not trip" true (H.incident h ~host:2 ~now:0. `Corruption = None);
  check bool "retry does not trip" true (H.incident h ~host:2 ~now:0. `Retry = None);
  check bool "still admissible" true (H.admissible h ~host:2 ~now:1.);
  check bool "but the score dropped" true (H.score h ~host:2 < 1.0)

(* ---------- blended score ---------- *)

let test_score_progress_rate () =
  let h = H.create () in
  (* host 1 decides 100/s, host 2 only 10/s; same heartbeat cadence *)
  for i = 0 to 20 do
    let now = float_of_int i *. 2. in
    H.note_heartbeat h ~host:1 ~now ~decisions:(i * 200);
    H.note_heartbeat h ~host:2 ~now ~decisions:(i * 20)
  done;
  check bool "straggler scores below the healthy host" true
    (H.score h ~host:2 < H.score h ~host:1);
  check bool "straggler clearly demoted" true (H.score h ~host:2 <= 0.5);
  check bool "score floor holds" true (H.score h ~host:2 >= 0.05)

let test_score_ack_latency () =
  let h = H.create () in
  for _ = 1 to 30 do
    H.note_ack h ~host:1 ~latency:0.01;
    H.note_ack h ~host:2 ~latency:0.01;
    H.note_ack h ~host:3 ~latency:1.0
  done;
  check bool "slow-acking host scores below fast ones" true
    (H.score h ~host:3 < H.score h ~host:1)

(* ---------- percentile queries and adaptive deadlines ---------- *)

let test_duration_percentile_gate () =
  let h = H.create () in
  for _ = 1 to 4 do
    H.note_duration h ~elapsed:5.
  done;
  check bool "no p99 under 5 samples" true (H.duration_p99 h = None);
  H.note_duration h ~elapsed:5.;
  match H.duration_p99 h with
  | None -> Alcotest.fail "5 samples must yield a p99"
  | Some p -> check bool "p99 near the sample value" true (p >= 4. && p <= 6.)

let test_suspect_timeout_tightens_only () =
  let h = H.create () in
  check flt "no samples: the configured default" 30. (H.suspect_timeout h ~heartbeat_period:2. ~default:30.);
  (* steady 2-second gaps: 3 * p99 ~ 6, well under the default *)
  for i = 0 to 25 do
    H.note_heartbeat h ~host:1 ~now:(float_of_int i *. 2.) ~decisions:(i * 10)
  done;
  let s = H.suspect_timeout h ~heartbeat_period:2. ~default:30. in
  check bool "adaptive lease tightened" true (s < 30.);
  check bool "never below 2.5 heartbeats" true (s >= 5.);
  (* a tiny default is a hard ceiling, whatever the percentile says *)
  check flt "cannot loosen past the default" 4.
    (H.suspect_timeout h ~heartbeat_period:1. ~default:4.)

let test_retry_base_clamps () =
  let h = H.create () in
  check bool "no samples: no override" true (H.retry_base h ~default:2. = None);
  for _ = 1 to 25 do
    H.note_ack h ~host:1 ~latency:0.05
  done;
  (match H.retry_base h ~default:2. with
  | None -> Alcotest.fail "enough samples must yield an override"
  | Some b ->
      check bool "tightened toward 2 * ack p99" true (b < 2.);
      check bool "floored at default/4" true (b >= 0.5));
  (* huge latencies cannot push the base past the configured worst case *)
  let h2 = H.create () in
  for _ = 1 to 25 do
    H.note_ack h2 ~host:1 ~latency:100.
  done;
  match H.retry_base h2 ~default:2. with
  | Some b -> check flt "capped at the default" 2. b
  | None -> Alcotest.fail "expected an override"

(* ---------- reporting ---------- *)

let test_views_and_json () =
  let h = H.create ~probation_base:10. () in
  H.note_ack h ~host:2 ~latency:0.1;
  ignore (H.incident h ~host:1 ~now:0. `Crash);
  let vs = H.views h in
  check int "one row per host" 2 (List.length vs);
  let v1 = List.hd vs and v2 = List.nth vs 1 in
  check int "sorted by host id" 1 v1.H.v_host;
  check Alcotest.string "tripped host in probation" "probation" v1.H.v_state;
  check int "crash counted" 1 v1.H.v_crashes;
  check Alcotest.string "healthy host ok" "ok" v2.H.v_state;
  ignore (H.admissible h ~host:1 ~now:20.);
  let v1' = List.hd (H.views h) in
  check Alcotest.string "half-open renders as canary" "canary" v1'.H.v_state;
  match H.to_json h with
  | Obs.Json.List rows -> check int "json row per host" 2 (List.length rows)
  | _ -> Alcotest.fail "to_json must be a list"

(* ---------- Reliable: seeded jitter and backoff caps ---------- *)

let mk_reliable ?(seed = 7) ?(jitter = 0.) ?(obs_tid = 1) ?(retry_base = 1.) () =
  R.create ~seed ~jitter ~obs_tid
    ~sim:(Grid.Sim.create ())
    ~send_raw:(fun ~dst:_ _ -> ())
    ~active:(fun () -> true)
    ~retry_base ~max_attempts:5
    ~on_retry:(fun ~dst:_ ~attempt:_ -> ())
    ~on_give_up:(fun ~dst:_ _ -> ())
    ()

let test_backoff_exact_without_jitter () =
  let r = mk_reliable ~retry_base:1. () in
  check flt "attempt 0" 1. (R.backoff r 0);
  check flt "attempt 1" 2. (R.backoff r 1);
  check flt "attempt 3" 8. (R.backoff r 3);
  check flt "attempt 5 capped" 32. (R.backoff r 5);
  check flt "attempt 20 still capped" 32. (R.backoff r 20)

let test_backoff_jitter_envelope_and_determinism () =
  let draws ?(obs_tid = 1) seed =
    let r = mk_reliable ~seed ~jitter:0.25 ~obs_tid ~retry_base:1. () in
    List.init 50 (fun i -> R.backoff r (i mod 6))
  in
  let a = draws 42 and b = draws 42 in
  check bool "same seed replays the same jitter" true (a = b);
  check bool "different seed differs" true (a <> draws 43);
  check bool "different endpoint differs" true (a <> draws ~obs_tid:2 42);
  (* every draw inside +/- 25% of its nominal delay, cap included *)
  List.iteri
    (fun i d ->
      let nominal = Float.min 32. (Float.pow 2. (float_of_int (i mod 6))) in
      check bool "draw inside the envelope" true
        (d >= 0.75 *. nominal -. 1e-9 && d <= 1.25 *. nominal +. 1e-9))
    a;
  check bool "jitter actually varies" true
    (List.sort_uniq compare (List.map (fun d -> Float.round (d *. 1e6)) a) |> List.length > 10)

let test_set_retry_base_clamped () =
  let r = mk_reliable ~retry_base:2. () in
  R.set_retry_base r (Some 0.5);
  check flt "tightened base" 0.5 (R.backoff r 0);
  R.set_retry_base r (Some 100.);
  check flt "cannot loosen past the configured base" 2. (R.backoff r 0);
  R.set_retry_base r (Some 1e-9);
  check flt "floored at 1ms" 0.001 (R.backoff r 0);
  R.set_retry_base r None;
  check flt "None restores the constant" 2. (R.backoff r 0)

let () =
  Alcotest.run "health"
    [
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "exponential probation" `Quick test_breaker_exponential_probation;
          Alcotest.test_case "soft incidents" `Quick test_soft_incidents_do_not_trip;
        ] );
      ( "score",
        [
          Alcotest.test_case "progress rate" `Quick test_score_progress_rate;
          Alcotest.test_case "ack latency" `Quick test_score_ack_latency;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "duration percentile gate" `Quick test_duration_percentile_gate;
          Alcotest.test_case "suspect timeout tightens only" `Quick test_suspect_timeout_tightens_only;
          Alcotest.test_case "retry base clamps" `Quick test_retry_base_clamps;
        ] );
      ( "report",
        [ Alcotest.test_case "views and json" `Quick test_views_and_json ] );
      ( "reliable",
        [
          Alcotest.test_case "exact backoff without jitter" `Quick test_backoff_exact_without_jitter;
          Alcotest.test_case "jitter envelope and determinism" `Quick
            test_backoff_jitter_envelope_and_determinism;
          Alcotest.test_case "set_retry_base clamped" `Quick test_set_retry_base_clamped;
        ] );
    ]
