(* Replays the paper's Section 2.3 / Figure 1 worked example and checks the
   solver reproduces it exactly: the implication cascade at decision level 6,
   the conflict on V3, the FirstUIP node V5, the learned clause
   (~V10 + ~V7 + V8 + V9 + ~V5), the backjump to level 4 (the level of V9's
   assignment), and the asserting implication V5 = false.

   Note: the paper's prose sets V10 false while its figure and learned clause
   require V10 true; we follow the figure (clause 8 is adjusted accordingly,
   see examples/paper_example.ml for the full narrative). *)

module T = Sat.Types
module Cnf = Sat.Cnf
module Solver = Sat.Solver

(* The reconstructed formula: 14 variables, 9 clauses. *)
let formula =
  Cnf.make ~nvars:14
    [
      [ -11; 12 ] (* c1 *);
      [ -12; -10; 5 ] (* c2 *);
      [ -5; -7; 1 ] (* c3 *);
      [ -5; 8; 2 ] (* c4 *);
      [ 4; -6; 14 ] (* c5: inert once V14 holds *);
      [ -1; -10; 9; 3 ] (* c6: implies V3 true *);
      [ -2; -3 ] (* c7: implies V3 false -> conflict *);
      [ -10; -13 ] (* c8 *);
      [ 14 ] (* c9: unit *);
    ]

let decisions = [ 10; 7; -8; -9; 6 ] (* levels 1..5; level 6 decides V11 *)

let run_to_conflict () =
  let s = Solver.create formula in
  List.iter
    (fun d ->
      Solver.decide_manual s (T.lit_of_int d);
      match Solver.propagate_manual s with
      | `Ok -> ()
      | `Conflict _ -> Alcotest.fail "premature conflict")
    decisions;
  Solver.decide_manual s (T.lit_of_int 11);
  match Solver.propagate_manual s with
  | `Ok -> Alcotest.fail "expected a conflict at level 6"
  | `Conflict info -> (s, info)

let sorted_ints lits = List.sort compare (List.map T.to_int (Array.to_list lits))

let test_level0_unit () =
  let s = Solver.create formula in
  Alcotest.(check bool) "V14 forced at root" true (Solver.value_of_var s 14 = T.True);
  Alcotest.(check int) "V14 at level 0" 0 (Solver.level_of_var s 14)

let test_clause8_implication () =
  let s = Solver.create formula in
  Solver.decide_manual s (T.lit_of_int 10);
  (match Solver.propagate_manual s with
  | `Ok -> ()
  | `Conflict _ -> Alcotest.fail "no conflict expected");
  Alcotest.(check bool) "V13 implied false" true (Solver.value_of_var s 13 = T.False);
  Alcotest.(check int) "V13 at level 1" 1 (Solver.level_of_var s 13);
  (* V13's antecedent is clause 8 *)
  match Solver.antecedent_of_var s 13 with
  | Some c -> Alcotest.(check (list int)) "antecedent is c8" [ -13; -10 ] (sorted_ints c)
  | None -> Alcotest.fail "V13 should have an antecedent"

let test_conflict_on_v3 () =
  let _, info = run_to_conflict () in
  Alcotest.(check (list int))
    "conflicting clause is c7" [ -3; -2 ]
    (sorted_ints info.Solver.conflicting_clause);
  Alcotest.(check bool)
    "conflict variable is V2 or V3" true
    (info.Solver.conflicting_var = 2 || info.Solver.conflicting_var = 3)

let test_learned_clause () =
  let _, info = run_to_conflict () in
  Alcotest.(check (list int))
    "learned clause matches the paper" [ -10; -7; -5; 8; 9 ]
    (sorted_ints info.Solver.learned);
  Alcotest.(check int) "asserting literal is ~V5" (-5) (T.to_int info.Solver.learned.(0))

let test_first_uip () =
  let _, info = run_to_conflict () in
  Alcotest.(check int) "FirstUIP is V5" 5 info.Solver.uip_var

let test_backjump_level () =
  let _, info = run_to_conflict () in
  Alcotest.(check int) "backjump to level 4 (level of ~V9)" 4 info.Solver.backjump_level

let test_asserting_implication () =
  let s, _ = run_to_conflict () in
  Alcotest.(check int) "now at level 4" 4 (Solver.decision_level s);
  Alcotest.(check bool) "V5 asserted false" true (Solver.value_of_var s 5 = T.False);
  Alcotest.(check int) "V5 at level 4" 4 (Solver.level_of_var s 5);
  (* the asserting implication cascades: c2 forces ~V12, then c1 forces ~V11 *)
  match Solver.propagate_manual s with
  | `Conflict _ -> Alcotest.fail "no further conflict expected"
  | `Ok ->
      Alcotest.(check bool) "V12 implied false" true (Solver.value_of_var s 12 = T.False);
      Alcotest.(check bool) "V11 implied false" true (Solver.value_of_var s 11 = T.False)

let test_implication_graph_snapshot () =
  let _, info = run_to_conflict () in
  let graph = info.Solver.implication_graph in
  let level6 = List.filter (fun (_, lvl, _) -> lvl = 6) graph in
  let vars = List.map (fun (v, _, _) -> v) level6 |> List.sort compare in
  Alcotest.(check (list int)) "level-6 nodes of the graph" [ 1; 2; 3; 5; 11; 12 ] vars;
  (* the decision V11 has no antecedent; every other level-6 node has one *)
  List.iter
    (fun (v, _, ante) ->
      if v = 11 then Alcotest.(check bool) "decision has no antecedent" true (ante = None)
      else Alcotest.(check bool) (Printf.sprintf "V%d has an antecedent" v) true (ante <> None))
    level6

let test_formula_is_satisfiable () =
  (* the example formula itself is easily satisfiable; the conflict is an
     artifact of the scripted decisions *)
  match Sat.Brute.solve formula with
  | Sat.Brute.Sat _ -> ()
  | Sat.Brute.Unsat -> Alcotest.fail "example formula should be satisfiable"

let test_solver_finishes_after_replay () =
  let s, _ = run_to_conflict () in
  match Solver.solve s with
  | Solver.Sat m -> Alcotest.(check bool) "model valid" true (Sat.Model.satisfies formula m)
  | _ -> Alcotest.fail "expected sat"

(* ---------- Figure 2 on the same formula ----------

   The paper's split example continues from the Figure 1 state: client A
   keeps the branch with its first decision (V10 true) committed to the
   root, and client B receives the complement (~V10).  The paper notes
   that A can drop clauses 8 and 9 (satisfied at its new root) while B can
   drop clause 9 *and the newly learned clause* (satisfied by ~V10). *)

let test_figure2_split_of_figure1_state () =
  let s, _ = run_to_conflict () in
  (* settle the asserting implication so the stack matches the figure *)
  (match Solver.propagate_manual s with `Ok -> () | `Conflict _ -> Alcotest.fail "unexpected");
  let module Sub = Gridsat_core.Subproblem in
  match Sub.split_from s with
  | None -> Alcotest.fail "expected a split"
  | Some sp ->
      (* client A committed V10 (and its implication ~V13) to the root *)
      let a_path = List.map T.to_int (Solver.root_path s) in
      Alcotest.(check bool) "A's guiding path holds V10" true (List.mem 10 a_path);
      Alcotest.(check bool) "A's guiding path holds ~V13" true (List.mem (-13) a_path);
      (* client B's guiding path is the complement of A's first decision *)
      let b_path = List.map T.to_int sp.Sub.path in
      Alcotest.(check (list int)) "B starts from ~V10" [ -10 ] b_path;
      (* A dropped the clauses satisfied at its root: c8 (~V10|~V13) and
         c9 (V14) *)
      let a_clauses = List.map sorted_ints (Solver.active_clauses s) in
      Alcotest.(check bool) "A dropped clause 8" true
        (not (List.mem [ -13; -10 ] a_clauses));
      Alcotest.(check bool) "A dropped clause 9" true (not (List.mem [ 14 ] a_clauses));
      (* B dropped clause 9 and the learned clause (satisfied by ~V10) *)
      let b_clauses = List.map sorted_ints sp.Sub.clauses in
      Alcotest.(check bool) "B dropped clause 9" true (not (List.mem [ 14 ] b_clauses));
      Alcotest.(check bool) "B dropped the learned clause" true
        (not (List.mem [ -10; -7; -5; 8; 9 ] b_clauses));
      (* B still carries clause 8? it is satisfied by ~V10 as well *)
      Alcotest.(check bool) "B dropped clause 8 too" true
        (not (List.mem [ -13; -10 ] b_clauses));
      (* both halves remain satisfiable (the original formula is) *)
      let b = Sub.to_solver ~config:Solver.default_config sp in
      let sat solver = match Solver.solve solver with Solver.Sat _ -> true | _ -> false in
      Alcotest.(check bool) "some branch is satisfiable" true (sat s || sat b)

let () =
  Alcotest.run "paper_example"
    [
      ( "figure1",
        [
          Alcotest.test_case "unit clause at level 0" `Quick test_level0_unit;
          Alcotest.test_case "clause 8 implication" `Quick test_clause8_implication;
          Alcotest.test_case "conflict on V3" `Quick test_conflict_on_v3;
          Alcotest.test_case "learned clause" `Quick test_learned_clause;
          Alcotest.test_case "FirstUIP node" `Quick test_first_uip;
          Alcotest.test_case "backjump level" `Quick test_backjump_level;
          Alcotest.test_case "asserting implication" `Quick test_asserting_implication;
          Alcotest.test_case "implication graph" `Quick test_implication_graph_snapshot;
          Alcotest.test_case "formula satisfiable" `Quick test_formula_is_satisfiable;
          Alcotest.test_case "search completes" `Quick test_solver_finishes_after_replay;
          Alcotest.test_case "figure 2 split" `Quick test_figure2_split_of_figure1_state;
        ] );
    ]
