(* Service suite: the multi-tenant job front-end must degrade gracefully
   under overload and chaos.

   The core property, checked under a seeded chaos plan: every submitted
   job reaches exactly one terminal state — verdict, cached, shed,
   deadline or cancelled — with every host back in the pool, and the
   whole schedule replays deterministically. *)

module C = Gridsat_core
module Cfg = C.Config
module S = Gridsat_service
module Svc = S.Service
module Job = S.Job

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- apparatus ---------- *)

let php ~pigeons ~holes = Workloads.Php.instance ~pigeons ~holes

let planted ?(nvars = 20) seed = Workloads.Random_sat.planted ~nvars ~ratio:5.0 ~seed ()

(* Eager splitting, light checkpoints, quick failure detection — same
   tuning as the chaos suite, so the fault-tolerance machinery is
   exercised even on tiny instances. *)
let run_config =
  {
    Cfg.default with
    Cfg.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
    checkpoint = Cfg.Light;
    checkpoint_period = 5.;
    heartbeat_period = 5.;
    suspect_timeout = 30.;
  }

let svc_config =
  {
    Svc.default_config with
    Svc.run = run_config;
    hosts_per_job = 2;
    max_concurrent = 2;
    queue_capacity = 8;
    starvation_after = 30.;
  }

let testbed n = C.Testbed.uniform ~n ~speed:500. ()

let dummy_cnf = Sat.Cnf.make ~nvars:1 [ [ 1 ] ]

let mk_job id tenant priority submitted_at =
  {
    Job.id;
    tenant;
    priority;
    label = "";
    cnf = dummy_cnf;
    digest = "";
    deadline = None;
    submitted_at;
    state = Job.Queued;
    started_at = None;
    finished_at = None;
    preemptions = 0;
    result = None;
  }

let job_by_id svc id =
  match List.find_opt (fun (j : Job.t) -> j.Job.id = id) (Svc.jobs svc) with
  | Some j -> j
  | None -> Alcotest.fail (Printf.sprintf "job %d not found" id)

(* ---------- admission policy ---------- *)

let test_admission_priority_and_fairness () =
  let adm = S.Admission.create ~capacity:8 ~starvation_after:0. in
  let no_load _ = 0 in
  let low = mk_job 1 "a" Job.Low 0. in
  let high = mk_job 2 "a" Job.High 0. in
  S.Admission.enqueue adm low;
  S.Admission.enqueue adm high;
  (match S.Admission.take adm ~now:0. ~tenant_load:no_load with
  | Some j -> check int "higher priority first" 2 j.Job.id
  | None -> Alcotest.fail "expected a job");
  (match S.Admission.take adm ~now:0. ~tenant_load:no_load with
  | Some j -> check int "then the low job" 1 j.Job.id
  | None -> Alcotest.fail "expected a job");
  (* equal priority: the tenant with fewer running jobs wins the tie *)
  S.Admission.enqueue adm (mk_job 3 "busy" Job.Normal 0.);
  S.Admission.enqueue adm (mk_job 4 "idle" Job.Normal 0.);
  let load = function "busy" -> 2 | _ -> 0 in
  (match S.Admission.take adm ~now:0. ~tenant_load:load with
  | Some j -> check int "fair tenant first" 4 j.Job.id
  | None -> Alcotest.fail "expected a job");
  (* same tenant, same priority: FIFO by submission *)
  S.Admission.enqueue adm (mk_job 6 "a" Job.Normal 0.);
  S.Admission.enqueue adm (mk_job 5 "a" Job.Normal 0.);
  match S.Admission.take adm ~now:0. ~tenant_load:no_load with
  | Some j -> check int "fifo tie-break" 3 j.Job.id
  | None -> Alcotest.fail "expected a job"

let test_admission_starvation_guard () =
  let adm = S.Admission.create ~capacity:8 ~starvation_after:100. in
  let no_load _ = 0 in
  let old_low = mk_job 1 "a" Job.Low 0. in
  let fresh_high = mk_job 2 "b" Job.High 299. in
  S.Admission.enqueue adm old_low;
  S.Admission.enqueue adm fresh_high;
  (* at t=300 the low job has aged 3 levels (effective 3), the fresh
     high job none (effective 2): the starved job finally goes first *)
  check int "aged low outranks fresh high" 3
    (S.Admission.effective_priority adm ~now:300. old_low);
  match S.Admission.take adm ~now:300. ~tenant_load:no_load with
  | Some j -> check int "starvation guard fires" 1 j.Job.id
  | None -> Alcotest.fail "expected a job"

let test_admission_bounds_and_retry_hint () =
  let adm = S.Admission.create ~capacity:2 ~starvation_after:0. in
  check bool "empty not full" false (S.Admission.is_full adm);
  S.Admission.enqueue adm (mk_job 1 "a" Job.Normal 0.);
  let hint1 = S.Admission.retry_after adm ~base:10. in
  S.Admission.enqueue adm (mk_job 2 "a" Job.Normal 0.);
  let hint2 = S.Admission.retry_after adm ~base:10. in
  check bool "full at capacity" true (S.Admission.is_full adm);
  check bool "hint grows with depth" true (hint2 > hint1);
  check bool "enqueue past capacity rejected" true
    (try
       S.Admission.enqueue adm (mk_job 3 "a" Job.Normal 0.);
       false
     with Invalid_argument _ -> true);
  (* requeue (preemption victim) bypasses the bound *)
  S.Admission.requeue adm (mk_job 4 "a" Job.Normal 0.);
  check int "victim requeued over capacity" 3 (S.Admission.length adm)

(* ---------- verdict cache ---------- *)

let test_cache_digest_canonical () =
  let a = Sat.Cnf.make ~nvars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; 4 ] ] in
  (* same clause set: literals permuted, clauses permuted, one duplicated *)
  let b = Sat.Cnf.make ~nvars:4 [ [ 4; 2 ]; [ 2; 1 ]; [ 3; -1 ]; [ 1; 2 ] ] in
  let c = Sat.Cnf.make ~nvars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; -4 ] ] in
  check bool "permutation-invariant" true (S.Cache.digest a = S.Cache.digest b);
  check bool "different formula, different digest" false (S.Cache.digest a = S.Cache.digest c)

let test_cache_store_and_verify () =
  let cache = S.Cache.create () in
  let cnf = Sat.Cnf.make ~nvars:2 [ [ 1 ]; [ 1; 2 ] ] in
  let digest = S.Cache.digest cnf in
  let model = Sat.Model.of_array [| false; true; false |] in
  check bool "miss before store" true (S.Cache.find cache ~digest ~cnf = None);
  S.Cache.store cache ~digest (C.Master.Unknown "timeout");
  check bool "unknown never cached" true (S.Cache.find cache ~digest ~cnf = None);
  S.Cache.store cache ~digest (C.Master.Sat model);
  (match S.Cache.find cache ~digest ~cnf with
  | Some (C.Master.Sat m) -> check bool "served model satisfies" true (Sat.Model.satisfies cnf m)
  | _ -> Alcotest.fail "expected a SAT hit");
  check int "hit counted" 1 (S.Cache.hits cache);
  (* a stored model that does not satisfy the submitted formula (digest
     collision, rotted entry) must read as a miss, not a wrong answer *)
  let cache2 = S.Cache.create () in
  let bad = Sat.Model.of_array [| false; false; false |] in
  S.Cache.store cache2 ~digest (C.Master.Sat bad);
  check bool "unverifiable hit is a miss" true (S.Cache.find cache2 ~digest ~cnf = None);
  check int "poisoned entry evicted" 0 (S.Cache.size cache2)

(* ---------- job log ---------- *)

let test_joblog_replay_and_scrub () =
  let mk () =
    let log = S.Joblog.create () in
    S.Joblog.append log
      (S.Joblog.Submitted { id = 1; tenant = "a"; priority = "high"; digest = "d"; deadline = None });
    S.Joblog.append log (S.Joblog.Admitted { id = 1 });
    S.Joblog.append log (S.Joblog.Started { id = 1; hosts = [ 3; 4 ] });
    S.Joblog.append log (S.Joblog.Requeued { id = 1; reason = "preempted" });
    S.Joblog.append log (S.Joblog.Started { id = 1; hosts = [ 5; 6 ] });
    S.Joblog.append log (S.Joblog.Finished { id = 1; terminal = "verdict:UNSAT" });
    S.Joblog.append log
      (S.Joblog.Submitted { id = 2; tenant = "b"; priority = "low"; digest = "e"; deadline = Some 9. });
    S.Joblog.append log (S.Joblog.Shed { id = 2; retry_after = 30. });
    log
  in
  let log = mk () in
  let st = S.Joblog.replay log in
  check int "submissions" 2 st.S.Joblog.submitted;
  check int "requeues" 1 st.S.Joblog.requeues;
  check bool "job 1 finished" true (Hashtbl.find st.S.Joblog.jobs 1 = S.Joblog.Done "verdict:UNSAT");
  check bool "job 2 shed" true (Hashtbl.find st.S.Joblog.jobs 2 = S.Joblog.Done "shed");
  check bool "replay digest deterministic" true
    (S.Joblog.digest st = S.Joblog.digest (S.Joblog.replay (mk ())));
  (* rot the newest record (job 2's shed): replay scrubs it instead of
     trusting it *)
  S.Joblog.corrupt_tail log ~n:1;
  let st' = S.Joblog.replay log in
  check int "rotted record dropped" 1 (S.Joblog.records_dropped log);
  check bool "job 1 state survives" true (Hashtbl.find st'.S.Joblog.jobs 1 = S.Joblog.Done "verdict:UNSAT");
  (* job 2's shed record was rotted away: it replays as still queued *)
  check bool "job 2 degraded to queued" true (Hashtbl.find st'.S.Joblog.jobs 2 = S.Joblog.Queued)

(* ---------- end-to-end scheduling ---------- *)

let test_single_job_verdict () =
  let svc = Svc.create ~cfg:svc_config ~testbed:(testbed 4) () in
  (match Svc.submit svc ~tenant:"acme" ~priority:Job.Normal (php ~pigeons:6 ~holes:5) with
  | Svc.Accepted -> ()
  | _ -> Alcotest.fail "expected admission");
  Svc.run svc;
  let j = job_by_id svc 1 in
  (match j.Job.state with
  | Job.Done (Job.Verdict C.Master.Unsat) -> ()
  | s -> Alcotest.fail ("expected UNSAT verdict, got " ^ Job.state_string s));
  let s = Svc.stats svc in
  check int "completed" 1 s.Svc.completed;
  check int "all hosts back" s.Svc.hosts_total s.Svc.hosts_free;
  check bool "nothing running" true (Svc.running_masters svc = [])

let test_cache_hit_on_resubmission () =
  let svc = Svc.create ~cfg:svc_config ~testbed:(testbed 4) () in
  let cnf = planted ~nvars:25 3 in
  ignore (Svc.submit svc ~tenant:"acme" ~priority:Job.Normal cnf);
  Svc.run svc;
  let first = job_by_id svc 1 in
  check bool "first run solved SAT" true
    (match first.Job.state with Job.Done (Job.Verdict (C.Master.Sat _)) -> true | _ -> false);
  (* resubmit the same formula with clauses shuffled: instant verified
     answer, no run, no subproblem dispatched *)
  let shuffled =
    let cls = List.rev_map (fun a -> List.rev_map Sat.Types.to_int (Array.to_list a)) (Sat.Cnf.clauses cnf) in
    Sat.Cnf.make ~nvars:(Sat.Cnf.nvars cnf) cls
  in
  (match Svc.submit svc ~tenant:"other" ~priority:Job.Low shuffled with
  | Svc.Cached (C.Master.Sat m) -> check bool "cached model verified" true (Sat.Model.satisfies shuffled m)
  | _ -> Alcotest.fail "expected a cached SAT verdict");
  let second = job_by_id svc 2 in
  check bool "cache-hit job is terminal" true (Job.is_terminal second);
  check bool "no run happened for the hit" true (second.Job.result = None);
  let s = Svc.stats svc in
  check int "cache hit counted" 1 s.Svc.cache_hits;
  check int "still all hosts free" s.Svc.hosts_total s.Svc.hosts_free

let test_deadline_expiry_releases_pool () =
  let cfg = { svc_config with Svc.max_concurrent = 1 } in
  let svc = Svc.create ~cfg ~testbed:(testbed 2) () in
  (* far too hard to finish in 5 virtual seconds *)
  ignore (Svc.submit svc ~tenant:"acme" ~priority:Job.High ~deadline_in:5. (php ~pigeons:9 ~holes:8));
  (* a second job waits behind it and must still get served *)
  ignore (Svc.submit svc ~tenant:"acme" ~priority:Job.Normal (php ~pigeons:5 ~holes:4));
  Svc.run svc;
  let j1 = job_by_id svc 1 and j2 = job_by_id svc 2 in
  check bool "deadline terminal" true (j1.Job.state = Job.Done Job.Deadline_expired);
  (match j1.Job.result with
  | Some r ->
      check bool "run closed with a clean verdict" true
        (match r.C.Master.answer with C.Master.Unknown "deadline" -> true | _ -> false)
  | None -> Alcotest.fail "expected a run result on the expired job");
  check bool "queued job ran after the expiry" true
    (j2.Job.state = Job.Done (Job.Verdict C.Master.Unsat));
  let s = Svc.stats svc in
  check int "one expiry" 1 s.Svc.deadline_expired;
  check int "hosts all back" s.Svc.hosts_total s.Svc.hosts_free

let test_burst_sheds_with_hint () =
  let cfg = { svc_config with Svc.queue_capacity = 2; max_concurrent = 1 } in
  let svc = Svc.create ~cfg ~testbed:(testbed 2) () in
  let outcomes =
    List.map
      (fun i -> Svc.submit svc ~tenant:"burst" ~priority:Job.Normal (planted (10 + i)))
      [ 0; 1; 2; 3 ]
  in
  let shed = List.filter (function Svc.Rejected _ -> true | _ -> false) outcomes in
  check int "burst beyond the queue is shed" 2 (List.length shed);
  List.iter
    (function
      | Svc.Rejected { retry_after } -> check bool "positive retry hint" true (retry_after > 0.)
      | _ -> ())
    shed;
  Svc.run svc;
  let s = Svc.stats svc in
  check int "admitted jobs completed" 2 s.Svc.completed;
  check int "shed counted" 2 s.Svc.shed;
  check bool "shed jobs are terminal too" true (List.for_all Job.is_terminal (Svc.jobs svc))

let test_preemption_requeues_victim () =
  let cfg = { svc_config with Svc.max_concurrent = 1; queue_capacity = 4 } in
  let svc = Svc.create ~cfg ~testbed:(testbed 2) () in
  ignore (Svc.submit svc ~tenant:"batch" ~priority:Job.Low (php ~pigeons:7 ~holes:6));
  Svc.submit_at svc ~at:3. ~tenant:"urgent" ~priority:Job.High (planted 4);
  Svc.run svc;
  let low = job_by_id svc 1 and high = job_by_id svc 2 in
  check bool "victim was preempted" true (low.Job.preemptions >= 1);
  check bool "victim still reached its verdict" true
    (low.Job.state = Job.Done (Job.Verdict C.Master.Unsat));
  check bool "high job solved" true
    (match high.Job.state with Job.Done (Job.Verdict (C.Master.Sat _)) -> true | _ -> false);
  let s = Svc.stats svc in
  check bool "preemption counted" true (s.Svc.preempted >= 1);
  check int "hosts all back" s.Svc.hosts_total s.Svc.hosts_free

let test_deadline_races_master_failover () =
  let cfg = { svc_config with Svc.max_concurrent = 1 } in
  let svc = Svc.create ~cfg ~testbed:(testbed 2) () in
  ignore (Svc.submit svc ~tenant:"acme" ~priority:Job.Normal ~deadline_in:6. (php ~pigeons:9 ~holes:8));
  (* crash the job's master mid-run with no scripted restart: the
     deadline at t=6 lands squarely inside the outage window *)
  ignore
    (Grid.Sim.schedule_at (Svc.sim svc) ~time:3. (fun () ->
         match Svc.running_masters svc with
         | [ (_, m) ] -> C.Master.crash_master m
         | _ -> Alcotest.fail "expected exactly one running master"));
  Svc.run svc;
  let j = job_by_id svc 1 in
  check bool "deadline terminal despite outage" true (j.Job.state = Job.Done Job.Deadline_expired);
  (match j.Job.result with
  | Some r ->
      check int "the outage really happened" 1 r.C.Master.master_crashes;
      check bool "journal closed with the deadline verdict" true
        (match r.C.Master.answer with C.Master.Unknown "deadline" -> true | _ -> false)
  | None -> Alcotest.fail "expected a run result");
  let s = Svc.stats svc in
  check int "hosts recovered from the downed run" s.Svc.hosts_total s.Svc.hosts_free

let test_cancel_mid_run () =
  let svc = Svc.create ~cfg:svc_config ~testbed:(testbed 2) () in
  ignore (Svc.submit svc ~tenant:"acme" ~priority:Job.Normal (php ~pigeons:8 ~holes:7));
  ignore
    (Grid.Sim.schedule_at (Svc.sim svc) ~time:4. (fun () ->
         check bool "cancel accepted" true (Svc.cancel_job svc ~id:1 ~reason:"operator abort")));
  Svc.run svc;
  let j = job_by_id svc 1 in
  check bool "cancelled terminal" true (j.Job.state = Job.Done (Job.Cancelled "operator abort"));
  check bool "second cancel refused" false (Svc.cancel_job svc ~id:1 ~reason:"again");
  let s = Svc.stats svc in
  check int "cancellation counted" 1 s.Svc.cancelled;
  check int "hosts all back" s.Svc.hosts_total s.Svc.hosts_free

(* ---------- the chaos matrix scenario ---------- *)

(* >= 8 concurrent jobs with mixed priorities and deadlines, under
   master crash-failover, host crashes and message corruption, plus a
   scripted overload burst.  Returns everything a determinism check
   needs to compare. *)
let chaos_scenario ~seed =
  let cfg =
    {
      Svc.default_config with
      Svc.run = run_config;
      hosts_per_job = 2;
      max_concurrent = 8;
      queue_capacity = 8;
      starvation_after = 30.;
      retry_after_base = 15.;
      preemption = true;
      seed;
      chaos = Some { Svc.default_chaos with Svc.master_crash = true; corrupt_p = 0.03; crash_hosts = 1 };
    }
  in
  let svc = Svc.create ~cfg ~testbed:(testbed 16) () in
  let prio i = match i mod 3 with 0 -> Job.Low | 1 -> Job.Normal | _ -> Job.High in
  (* first wave: eight jobs dispatched together at t=0 *)
  for i = 0 to 7 do
    ignore
      (Svc.submit svc ~tenant:(Printf.sprintf "t%d" (i mod 3)) ~priority:(prio i)
         ~label:(Printf.sprintf "wave1-%d" i)
         (if i mod 2 = 0 then php ~pigeons:6 ~holes:5 else planted ~nvars:22 (40 + i)))
  done;
  (* second wave while all eight run: a hard high-priority job with a
     deadline it cannot meet, plus queue pressure *)
  Svc.submit_at svc ~at:3. ~tenant:"t0" ~priority:Job.High ~deadline_in:6. ~label:"doomed"
    (php ~pigeons:9 ~holes:8);
  for i = 0 to 4 do
    Svc.submit_at svc ~at:3.2 ~tenant:(Printf.sprintf "t%d" (i mod 2)) ~priority:(prio (i + 1))
      ~label:(Printf.sprintf "wave2-%d" i)
      (planted ~nvars:22 (60 + i))
  done;
  (* overload burst: ten submissions into a queue of eight *)
  for i = 0 to 9 do
    Svc.submit_at svc ~at:3.4 ~tenant:"burst" ~priority:Job.Low
      ~label:(Printf.sprintf "burst-%d" i)
      (planted ~nvars:22 (80 + i))
  done;
  Svc.run svc;
  svc

let scenario_summary svc =
  let job_line (j : Job.t) =
    Printf.sprintf "%d %s %s %s p=%d" j.Job.id j.Job.tenant (Job.priority_string j.Job.priority)
      (Job.state_string j.Job.state) j.Job.preemptions
  in
  String.concat "\n" (List.map job_line (Svc.jobs svc))

let check_lifecycle_invariant svc =
  let jobs = Svc.jobs svc in
  check bool "every job is terminal" true (List.for_all Job.is_terminal jobs);
  (* exactly one terminal record per job in the lifecycle log *)
  let terminals = Hashtbl.create 64 in
  let bump id = Hashtbl.replace terminals id (1 + Option.value ~default:0 (Hashtbl.find_opt terminals id)) in
  List.iter
    (function
      | S.Joblog.Shed { id; _ } | S.Joblog.Cache_hit { id; _ } | S.Joblog.Finished { id; _ } -> bump id
      | _ -> ())
    (S.Joblog.entries (Svc.joblog svc));
  List.iter
    (fun (j : Job.t) ->
      check int
        (Printf.sprintf "job %d has exactly one terminal record" j.Job.id)
        1
        (Option.value ~default:0 (Hashtbl.find_opt terminals j.Job.id)))
    jobs;
  (* the replayed log agrees with the in-memory states *)
  let st = S.Joblog.replay (Svc.joblog svc) in
  List.iter
    (fun (j : Job.t) ->
      match Hashtbl.find_opt st.S.Joblog.jobs j.Job.id with
      | Some (S.Joblog.Done s) ->
          check Alcotest.string
            (Printf.sprintf "job %d log/state agreement" j.Job.id)
            (Job.state_string j.Job.state) s
      | _ -> Alcotest.fail (Printf.sprintf "job %d not terminal in the replayed log" j.Job.id))
    jobs;
  (* no leaked resources, no orphaned runs *)
  let s = Svc.stats svc in
  check int "all hosts returned to the pool" s.Svc.hosts_total s.Svc.hosts_free;
  check bool "no master left running" true (Svc.running_masters svc = []);
  (* verdicts that did land are correct: php instances are UNSAT,
     planted instances carry a model the master already verified *)
  List.iter
    (fun (j : Job.t) ->
      match j.Job.state with
      | Job.Done (Job.Verdict a) | Job.Done (Job.Cached a) -> (
          match (j.Job.label, a) with
          | _, C.Master.Sat m -> check bool "model satisfies" true (Sat.Model.satisfies j.Job.cnf m)
          | label, C.Master.Unsat ->
              check bool (label ^ " unsat is expected") true
                (String.length label >= 5 && String.sub label 0 5 = "wave1")
          | _, C.Master.Unknown _ -> ())
      | _ -> ())
    jobs

(* ---------- brownout and health reporting ---------- *)

let job_by_label svc label =
  match List.find_opt (fun (j : Job.t) -> j.Job.label = label) (Svc.jobs svc) with
  | Some j -> j
  | None -> Alcotest.fail (Printf.sprintf "job %S not found" label)

(* Two of six leased hosts turn into silent stragglers: their progress
   rate collapses, the healthy fraction drops under the threshold, and
   the service enters brownout — shedding queued low-priority work and
   stretching outstanding advisory deadlines instead of failing jobs on
   a schedule the pool can no longer meet. *)
let test_brownout_sheds_and_stretches () =
  let cfg =
    {
      svc_config with
      Svc.hosts_per_job = 6;
      max_concurrent = 1;
      brownout_threshold = 0.7;
      brownout_stretch = 2.;
      chaos = Some { Svc.default_chaos with Svc.slow_hosts = 2; slow_factor = 1000. };
      run = { run_config with Cfg.heartbeat_period = 2. };
    }
  in
  let svc = Svc.create ~cfg ~testbed:(testbed 6) () in
  (* the long job leases the whole pool while two of its hosts rot *)
  (match Svc.submit svc ~tenant:"t0" ~priority:Job.Normal ~label:"long" (php ~pigeons:8 ~holes:7) with
  | Svc.Accepted -> ()
  | _ -> Alcotest.fail "long job must be accepted");
  ignore (Svc.submit svc ~tenant:"t1" ~priority:Job.Low ~label:"sacrificial" (planted 3));
  ignore
    (Svc.submit svc ~tenant:"t2" ~priority:Job.Normal ~deadline_in:10_000. ~label:"stretchy"
       (planted 4));
  Svc.run svc;
  let s = Svc.stats svc in
  check bool "brownout entered" true (s.Svc.brownouts >= 1);
  check bool "low-priority queued job shed on entry" true
    (match (job_by_label svc "sacrificial").Job.state with
    | Job.Done (Job.Shed _) -> true
    | _ -> false);
  check bool "advisory deadline stretched" true (s.Svc.deadlines_stretched >= 1);
  check bool "stretched job still reached a verdict" true
    (match (job_by_label svc "stretchy").Job.state with
    | Job.Done (Job.Verdict _) | Job.Done (Job.Cached _) -> true
    | _ -> false);
  check int "hosts all returned" s.Svc.hosts_total s.Svc.hosts_free;
  (* the brownout state is visible in the service report *)
  match Obs.Json.member "service" (Svc.report svc) with
  | Some (Obs.Json.Obj fields) ->
      check bool "report carries brownout count" true (List.mem_assoc "brownouts" fields);
      check bool "report carries brownout flag" true (List.mem_assoc "brownout" fields)
  | _ -> Alcotest.fail "service section missing from report"

(* The per-host health table round-trips through the service report:
   one row per host the model has seen, every column present, and the
   straggler's row visibly demoted. *)
let test_report_health_table_roundtrip () =
  let cfg =
    {
      svc_config with
      Svc.hosts_per_job = 4;
      max_concurrent = 1;
      chaos = Some { Svc.default_chaos with Svc.slow_hosts = 1; slow_factor = 1000. };
      run = { run_config with Cfg.heartbeat_period = 2. };
    }
  in
  let svc = Svc.create ~cfg ~testbed:(testbed 4) () in
  ignore (Svc.submit svc ~tenant:"t" ~priority:Job.Normal (php ~pigeons:7 ~holes:6));
  Svc.run svc;
  let doc = Svc.report svc in
  (match Obs.Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("service report invalid: " ^ e));
  match Obs.Json.member "health" doc with
  | Some (Obs.Json.List rows) ->
      check bool "at least one host row" true (List.length rows >= 1);
      let scores =
        List.map
          (function
            | Obs.Json.Obj fields ->
                List.iter
                  (fun k ->
                    check bool (k ^ " column present") true (List.mem_assoc k fields))
                  [
                    "host";
                    "score";
                    "state";
                    "ack_ewma_s";
                    "hb_jitter_s";
                    "progress_rate";
                    "crashes";
                    "quarantines";
                    "corruptions";
                    "retries";
                  ];
                (match List.assoc "score" fields with
                | Obs.Json.Float f -> f
                | _ -> Alcotest.fail "score must be a float")
            | _ -> Alcotest.fail "health row must be an object")
          rows
      in
      check bool "the straggler's score is visibly demoted" true
        (List.exists (fun f -> f < 0.5) scores);
      check bool "healthy hosts still score high" true (List.exists (fun f -> f > 0.8) scores)
  | _ -> Alcotest.fail "health table missing from report"

let test_chaos_matrix_every_job_terminal () =
  let svc = chaos_scenario ~seed:7 in
  check_lifecycle_invariant svc;
  let s = Svc.stats svc in
  check bool "shed happened" true (s.Svc.shed >= 1);
  check bool "deadline expiry happened" true (s.Svc.deadline_expired >= 1);
  check bool "completions happened" true (s.Svc.completed >= 8);
  (* the first wave really ran concurrently: eight runs overlap in time *)
  let jobs = Svc.jobs svc in
  let intervals =
    List.filter_map
      (fun (j : Job.t) ->
        match (j.Job.started_at, j.Job.finished_at) with
        | Some st, Some fin when j.Job.result <> None -> Some (st, fin)
        | _ -> None)
      jobs
  in
  let peak =
    List.fold_left
      (fun acc (st, _) ->
        max acc (List.length (List.filter (fun (st', fin') -> st' <= st && st < fin') intervals)))
      0 intervals
  in
  check bool "at least 8 concurrent runs" true (peak >= 8);
  (* the chaos plan really fired: crash-failovers and wire corruption
     survived inside the runs *)
  let sum f = List.fold_left (fun acc (j : Job.t) -> match j.Job.result with Some r -> acc + f r | None -> acc) 0 jobs in
  check bool "master crashes survived" true (sum (fun r -> r.C.Master.master_crashes) >= 4);
  check bool "corruption detected and refused" true (sum (fun r -> r.C.Master.corrupt_detected) >= 1);
  (* resubmitting an already-solved instance is served from the cache
     with zero subproblems dispatched *)
  (match Svc.submit svc ~tenant:"replay" ~priority:Job.Normal (php ~pigeons:6 ~holes:5) with
  | Svc.Cached C.Master.Unsat -> ()
  | _ -> Alcotest.fail "expected a cached UNSAT verdict");
  let resub = List.rev (Svc.jobs svc) |> List.hd in
  check bool "no run for the resubmission" true (resub.Job.result = None);
  check bool "cache hit visible in counters" true ((Svc.stats svc).Svc.cache_hits >= 1);
  (* the service report builds, validates, and carries the counters *)
  let doc = Svc.report svc in
  (match Obs.Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("service report invalid: " ^ e));
  match Obs.Json.member "service" doc with
  | Some (Obs.Json.Obj fields) ->
      check bool "report exposes shed counter" true (List.mem_assoc "shed" fields);
      check bool "report exposes cache hits" true (List.mem_assoc "cache_hits" fields)
  | _ -> Alcotest.fail "service section missing from report"

let test_chaos_matrix_deterministic_replay () =
  let a = chaos_scenario ~seed:7 in
  let b = chaos_scenario ~seed:7 in
  check Alcotest.string "identical job outcomes" (scenario_summary a) (scenario_summary b);
  check Alcotest.string "identical lifecycle digests"
    (S.Joblog.digest (S.Joblog.replay (Svc.joblog a)))
    (S.Joblog.digest (S.Joblog.replay (Svc.joblog b)))

(* Property-style sweep: the lifecycle invariant holds whatever the
   seeded chaos plan does. *)
let test_lifecycle_invariant_across_seeds () =
  List.iter (fun seed -> check_lifecycle_invariant (chaos_scenario ~seed)) [ 1; 13; 23 ]

(* ---------- observability acceptance ---------- *)

module J = Obs.Json

(* A seeded chaos run (silent straggler + master crash-failover) with
   live SLOs, flight recorder and anomaly detectors: the affected
   tenant's error budget must show burn, at least one anomaly trigger
   must dump the flight recorder with events causally covering the
   trigger window, and the whole observable surface must be
   byte-stable across two runs of the same seed. *)
let obs_scenario ~seed =
  let obs = Obs.create ~flight:(Obs.Flight.create ()) ~anomaly:(Obs.Anomaly.create ()) () in
  let spec =
    match Obs.Slo.parse "t0:queue_wait<1,solve<5@0.95,errors<0.3;*:solve<30" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let cfg =
    {
      Svc.default_config with
      Svc.run = run_config;
      hosts_per_job = 4;
      max_concurrent = 1;
      queue_capacity = 8;
      seed;
      chaos =
        Some
          {
            Svc.default_chaos with
            Svc.master_crash = true;
            slow_hosts = 1;
            slow_factor = 1000.;
          };
    }
  in
  let svc = Svc.create ~obs ~slo:spec ~cfg ~testbed:(testbed 8) () in
  List.iteri
    (fun i cnf ->
      ignore
        (Svc.submit svc ~tenant:"t0" ~priority:Job.Normal
           ~label:(Printf.sprintf "obs-%d" i) cnf))
    [ php ~pigeons:6 ~holes:5; planted ~nvars:22 41; planted ~nvars:22 42 ];
  Svc.run svc;
  svc

let test_obs_slo_burn_and_flight_dump () =
  let svc = obs_scenario ~seed:7 in
  (* the SLO section shows budget burn for the affected tenant *)
  let tracker = match Svc.slo svc with Some t -> t | None -> Alcotest.fail "no slo tracker" in
  let objectives =
    match J.member "objectives" (Obs.Slo.to_json tracker ~now:(Grid.Sim.now (Svc.sim svc))) with
    | Some (J.List objs) -> objs
    | _ -> Alcotest.fail "slo json has no objectives"
  in
  let burned_for_t0 =
    List.exists
      (fun o ->
        match (J.member "tenant" o, J.member "budget_burned" o) with
        | Some (J.String "t0"), Some (J.Float b) -> b > 0.
        | _ -> false)
      objectives
  in
  check bool "t0 burned budget under chaos" true burned_for_t0;
  (* the chaos plan raised anomaly triggers (master failover at least) *)
  let anomalies = Svc.anomalies svc in
  check bool "anomaly triggers fired" true (anomalies <> []);
  check bool "master failover tripped" true
    (List.exists (fun (tr : Obs.Anomaly.trigger) -> tr.Obs.Anomaly.rule = "master-failover") anomalies);
  (* every trigger dumped the flight recorder; events causally cover
     the window up to the trigger *)
  let dumps = Svc.flight_dumps svc in
  check bool "at least one flight dump" true (dumps <> []);
  List.iter
    (fun (name, doc) ->
      check bool "canonical dump name" true
        (String.length name > 7 && String.sub name 0 7 = "FLIGHT-");
      let at = match J.member "at" doc with Some (J.Float a) -> a | _ -> Alcotest.fail "no at" in
      let win_from, win_to =
        match J.member "window" doc with
        | Some w -> (
            match (J.member "from" w, J.member "to" w) with
            | Some (J.Float a), Some (J.Float b) -> (a, b)
            | _ -> Alcotest.fail "window shape")
        | None -> Alcotest.fail "no window"
      in
      let events = match J.member "events" doc with Some (J.List es) -> es | _ -> [] in
      check bool "dump carries events" true (events <> []);
      let seqs, times =
        List.split
          (List.map
             (fun e ->
               match (J.member "seq" e, J.member "t" e) with
               | Some (J.Int s), Some (J.Float t) -> (s, t)
               | Some (J.Int s), Some (J.Int t) -> (s, float_of_int t)
               | _ -> Alcotest.fail "event shape")
             events)
      in
      check bool "events in causal (seq) order" true
        (List.for_all2 ( < )
           (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
           (List.tl seqs));
      List.iter
        (fun t ->
          check bool "event inside dump window" true (t >= win_from -. 1e-9 && t <= win_to +. 1e-9))
        times;
      check bool "window closes at the trigger" true (win_to <= at +. 1e-9))
    dumps

let test_obs_byte_stable_across_runs () =
  let capture svc =
    let now = Grid.Sim.now (Svc.sim svc) in
    let tracker = match Svc.slo svc with Some t -> t | None -> Alcotest.fail "no slo" in
    let slo = J.to_string (Obs.Slo.to_json tracker ~now) in
    let dumps =
      List.map (fun (name, doc) -> name ^ "\n" ^ J.to_string doc) (Svc.flight_dumps svc)
    in
    (* the metrics sections include wall-clock solver timings, so byte
       stability is asserted on the virtual-time-driven sections *)
    let report = Svc.report svc in
    let section k =
      match J.member k report with Some v -> J.to_string v | None -> Alcotest.fail (k ^ " missing")
    in
    (slo, String.concat "\n---\n" dumps, String.concat "\n" (List.map section [ "service"; "jobs"; "slo"; "anomalies" ]))
  in
  let s1, d1, r1 = capture (obs_scenario ~seed:7) in
  let s2, d2, r2 = capture (obs_scenario ~seed:7) in
  check Alcotest.string "slo section byte-stable" s1 s2;
  check Alcotest.string "flight dumps byte-stable" d1 d2;
  check Alcotest.string "report sections byte-stable" r1 r2

let () =
  Alcotest.run "service"
    [
      ( "admission",
        [
          Alcotest.test_case "priority and fairness" `Quick test_admission_priority_and_fairness;
          Alcotest.test_case "starvation guard" `Quick test_admission_starvation_guard;
          Alcotest.test_case "bounds and retry hint" `Quick test_admission_bounds_and_retry_hint;
        ] );
      ( "cache",
        [
          Alcotest.test_case "canonical digest" `Quick test_cache_digest_canonical;
          Alcotest.test_case "store and verify" `Quick test_cache_store_and_verify;
        ] );
      ("joblog", [ Alcotest.test_case "replay and scrub" `Quick test_joblog_replay_and_scrub ]);
      ( "scheduling",
        [
          Alcotest.test_case "single job verdict" `Quick test_single_job_verdict;
          Alcotest.test_case "cache hit on resubmission" `Quick test_cache_hit_on_resubmission;
          Alcotest.test_case "deadline releases pool" `Quick test_deadline_expiry_releases_pool;
          Alcotest.test_case "burst sheds with hint" `Quick test_burst_sheds_with_hint;
          Alcotest.test_case "preemption requeues victim" `Quick test_preemption_requeues_victim;
          Alcotest.test_case "deadline races failover" `Quick test_deadline_races_master_failover;
          Alcotest.test_case "cancel mid-run" `Quick test_cancel_mid_run;
        ] );
      ( "brownout",
        [
          Alcotest.test_case "sheds low and stretches deadlines" `Quick
            test_brownout_sheds_and_stretches;
          Alcotest.test_case "health table round-trips" `Quick test_report_health_table_roundtrip;
        ] );
      ( "chaos-matrix",
        [
          Alcotest.test_case "every job terminal" `Quick test_chaos_matrix_every_job_terminal;
          Alcotest.test_case "deterministic replay" `Quick test_chaos_matrix_deterministic_replay;
          Alcotest.test_case "invariant across seeds" `Slow test_lifecycle_invariant_across_seeds;
        ] );
      ( "observability",
        [
          Alcotest.test_case "slo burn + flight dump" `Quick test_obs_slo_burn_and_flight_dump;
          Alcotest.test_case "byte-stable across runs" `Quick test_obs_byte_stable_across_runs;
        ] );
    ]
