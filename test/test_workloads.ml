(* Tests for the workload generators: every family's satisfiability status
   must match its mathematical ground truth, instances must be
   deterministic in their seeds, and the registry must be well-formed. *)

module Cnf = Sat.Cnf
module Solver = Sat.Solver
module Brute = Sat.Brute
module Model = Sat.Model
module W = Workloads

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let solve cnf =
  match Solver.solve (Solver.create cnf) with
  | Solver.Sat m ->
      check bool "model verifies" true (Model.satisfies cnf m);
      `Sat m
  | Solver.Unsat -> `Unsat
  | Solver.Budget_exhausted | Solver.Mem_pressure -> Alcotest.fail "solver gave up"

let is_sat cnf = match solve cnf with `Sat _ -> true | `Unsat -> false

let same_cnf a b =
  Cnf.nvars a = Cnf.nvars b
  && List.map Array.to_list (Cnf.clauses a) = List.map Array.to_list (Cnf.clauses b)

(* ---------- Circuit ---------- *)

let bits_of_int c n value =
  List.init n (fun i ->
      if value land (1 lsl i) <> 0 then W.Circuit.snot (W.Circuit.snot (W.Circuit.input c))
      else W.Circuit.input c)

let test_circuit_adder () =
  (* constrain the inputs to constants and check the sum is forced *)
  let cases = [ (3, 5); (0, 0); (7, 7); (12, 9) ] in
  List.iter
    (fun (x, y) ->
      let c = W.Circuit.create () in
      let a = List.init 4 (fun _ -> W.Circuit.input c) in
      let b = List.init 4 (fun _ -> W.Circuit.input c) in
      W.Circuit.assert_equal_const c a x;
      W.Circuit.assert_equal_const c b y;
      let sum = W.Circuit.ripple_add c a b in
      W.Circuit.assert_equal_const c sum (x + y);
      check bool (Printf.sprintf "%d+%d consistent" x y) true (is_sat (W.Circuit.to_cnf c));
      (* and the wrong sum must be unsatisfiable *)
      let c2 = W.Circuit.create () in
      let a = List.init 4 (fun _ -> W.Circuit.input c2) in
      let b = List.init 4 (fun _ -> W.Circuit.input c2) in
      W.Circuit.assert_equal_const c2 a x;
      W.Circuit.assert_equal_const c2 b y;
      let sum = W.Circuit.ripple_add c2 a b in
      W.Circuit.assert_equal_const c2 sum (x + y + 1);
      check bool (Printf.sprintf "%d+%d wrong sum rejected" x y) false
        (is_sat (W.Circuit.to_cnf c2)))
    cases

let test_circuit_multiplier () =
  List.iter
    (fun (x, y) ->
      let c = W.Circuit.create () in
      let a = List.init 4 (fun _ -> W.Circuit.input c) in
      let b = List.init 4 (fun _ -> W.Circuit.input c) in
      W.Circuit.assert_equal_const c a x;
      W.Circuit.assert_equal_const c b y;
      let prod = W.Circuit.multiplier c a b in
      W.Circuit.assert_equal_const c prod (x * y);
      check bool (Printf.sprintf "%d*%d consistent" x y) true (is_sat (W.Circuit.to_cnf c)))
    [ (3, 5); (15, 15); (0, 9); (7, 11) ]

let test_circuit_gates () =
  (* xor truth table via satisfiability of forced assignments *)
  List.iter
    (fun (x, y) ->
      let c = W.Circuit.create () in
      let a = W.Circuit.input c and b = W.Circuit.input c in
      let o = W.Circuit.sxor c a b in
      W.Circuit.assert_sig c (if x then a else W.Circuit.snot a);
      W.Circuit.assert_sig c (if y then b else W.Circuit.snot b);
      W.Circuit.assert_sig c (if x <> y then o else W.Circuit.snot o);
      check bool "xor table" true (is_sat (W.Circuit.to_cnf c)))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_circuit_constants () =
  let c = W.Circuit.create () in
  check bool "and with false" true (W.Circuit.sand c W.Circuit.tru W.Circuit.fls = W.Circuit.fls);
  check bool "not true" true (W.Circuit.snot W.Circuit.tru = W.Circuit.fls);
  ignore (bits_of_int c 2 1)

(* ---------- Pigeonhole ---------- *)

let test_php_status () =
  check bool "5 into 4 unsat" false (is_sat (W.Php.instance ~pigeons:5 ~holes:4));
  check bool "4 into 4 sat" true (is_sat (W.Php.instance ~pigeons:4 ~holes:4));
  check bool "3 into 4 sat" true (is_sat (W.Php.instance ~pigeons:3 ~holes:4))

(* ---------- Random ---------- *)

let test_random_deterministic () =
  let a = W.Random_sat.instance ~nvars:50 ~ratio:4.0 ~seed:7 () in
  let b = W.Random_sat.instance ~nvars:50 ~ratio:4.0 ~seed:7 () in
  check bool "same seed same instance" true (same_cnf a b);
  let c = W.Random_sat.instance ~nvars:50 ~ratio:4.0 ~seed:8 () in
  check bool "different seed differs" false (same_cnf a c)

let test_random_planted_sat () =
  (* planted instances are satisfiable even above the threshold *)
  List.iter
    (fun seed ->
      check bool "planted sat" true
        (is_sat (W.Random_sat.planted ~nvars:40 ~ratio:6.0 ~seed ())))
    [ 1; 2; 3 ]

let test_random_clause_count () =
  let cnf = W.Random_sat.instance ~nvars:100 ~ratio:4.0 ~seed:1 () in
  check int "clause count" 400 (Cnf.nclauses cnf)

(* ---------- Parity / Tseitin ---------- *)

let test_xor_clauses_semantics () =
  (* compare against brute-force parity for 3 variables *)
  List.iter
    (fun rhs ->
      let cnf = Cnf.make ~nvars:3 (W.Tseitin.xor_clauses [ 1; 2; 3 ] rhs) in
      check int "model count is 4"
        4 (Brute.count_models cnf);
      match Brute.solve cnf with
      | Brute.Sat m ->
          let parity =
            List.fold_left (fun acc v -> if Model.value m v then not acc else acc) false [ 1; 2; 3 ]
          in
          check bool "parity honoured" rhs parity
      | Brute.Unsat -> Alcotest.fail "xor system should be satisfiable")
    [ true; false ]

let test_parity_planted_sat () =
  check bool "uncorrupted parity sat" true
    (is_sat (W.Parity.instance ~nbits:30 ~nsamples:35 ~subset:3 ~corrupted:0 ~seed:3))

let test_tseitin_charge () =
  check bool "odd charge unsat" false
    (is_sat (W.Tseitin.instance ~nvertices:8 ~degree:3 ~charge:`Odd ~seed:2));
  check bool "even charge sat" true
    (is_sat (W.Tseitin.instance ~nvertices:8 ~degree:3 ~charge:`Even ~seed:2))

(* ---------- Counter / mixer ---------- *)

let test_counter_bmc () =
  check bool "counter reaches steps mod 2^bits" true
    (is_sat (W.Counter.instance ~bits:4 ~steps:5 ~target:5));
  check bool "wrap-around" true (is_sat (W.Counter.instance ~bits:3 ~steps:9 ~target:1));
  check bool "wrong target unsat" false (is_sat (W.Counter.instance ~bits:4 ~steps:5 ~target:6));
  check int "reachable helper" 1 (W.Counter.reachable ~bits:3 ~steps:9)

let test_lfsr_inversion () =
  check bool "lfsr preimage exists" true (is_sat (W.Counter.lfsr ~bits:12 ~steps:6 ~target:0x35))

let test_mixer_preimage_sat () =
  List.iter
    (fun seed ->
      check bool "mixer preimage planted sat" true
        (is_sat (W.Counter.mixer_preimage ~bits:16 ~rounds:4 ~seed)))
    [ 1; 5; 11 ]

let test_mixer_deterministic () =
  let a = W.Counter.mixer_preimage ~bits:16 ~rounds:4 ~seed:1 in
  let b = W.Counter.mixer_preimage ~bits:16 ~rounds:4 ~seed:1 in
  check bool "deterministic" true (same_cnf a b)

(* ---------- Factoring ---------- *)

let test_factoring_semiprime () =
  let product = W.Factoring.semiprime ~bits:6 ~seed:4 in
  let cnf = W.Factoring.instance ~abits:6 ~bbits:6 ~product in
  match solve cnf with
  | `Sat m ->
      let a, b = W.Factoring.decode_factors ~abits:6 ~bbits:6 m in
      check int "factors multiply back" product (a * b);
      check bool "both nontrivial" true (a > 1 && b > 1)
  | `Unsat -> Alcotest.fail "semiprime must factor"

let test_factoring_prime_unsat () =
  let product = W.Factoring.prime ~bits:6 ~seed:4 in
  check bool "prime target unsat" false
    (is_sat (W.Factoring.instance ~abits:6 ~bbits:6 ~product))

let test_prime_helpers () =
  let p = W.Factoring.prime ~bits:5 ~seed:1 in
  check bool "prime is prime" true
    (let rec loop d = d * d > p || (p mod d <> 0 && loop (d + 1)) in
     p > 1 && loop 2);
  check bool "prime needs full width" true (p > (1 lsl 5) - 1)

(* ---------- Quasigroup ---------- *)

let test_quasigroup_status () =
  check bool "plain latin square sat" true
    (is_sat (W.Quasigroup.instance ~n:4 ~idempotent:false ~symmetric:false));
  check bool "idempotent odd order sat" true
    (is_sat (W.Quasigroup.instance ~n:5 ~idempotent:true ~symmetric:true));
  check bool "idempotent symmetric even order unsat" false
    (is_sat (W.Quasigroup.instance ~n:4 ~idempotent:true ~symmetric:true))

(* ---------- Hanoi ---------- *)

let test_hanoi_status () =
  check int "optimal steps" 7 (W.Hanoi.optimal_steps 3);
  check bool "solvable at optimal" true
    (is_sat (W.Hanoi.instance ~disks:3 ~steps:7));
  check bool "solvable with slack" true (is_sat (W.Hanoi.instance ~disks:3 ~steps:9));
  check bool "unsolvable below optimal" false (is_sat (W.Hanoi.instance ~disks:3 ~steps:6))

(* ---------- Coloring ---------- *)

let test_coloring_cycle () =
  check bool "odd cycle 2 colors unsat" false (is_sat (W.Coloring.cycle ~n:5 ~colors:2));
  check bool "odd cycle 3 colors sat" true (is_sat (W.Coloring.cycle ~n:5 ~colors:3));
  check bool "even cycle 2 colors sat" true (is_sat (W.Coloring.cycle ~n:6 ~colors:2))

let test_coloring_grid () =
  check bool "grid with diagonals needs 4" false
    (is_sat (W.Coloring.grid ~rows:3 ~cols:3 ~colors:3));
  check bool "grid 4-colorable" true (is_sat (W.Coloring.grid ~rows:3 ~cols:3 ~colors:4))

let test_coloring_mycielski () =
  (* M4 is the Groetzsch graph: chromatic number 4, triangle-free *)
  check bool "M4 3 colors unsat" false (is_sat (W.Coloring.mycielski ~levels:4 ~colors:3));
  check bool "M4 4 colors sat" true (is_sat (W.Coloring.mycielski ~levels:4 ~colors:4))

let test_coloring_random_deterministic () =
  let a = W.Coloring.random_graph ~n:30 ~avg_degree:5. ~colors:3 ~seed:2 in
  let b = W.Coloring.random_graph ~n:30 ~avg_degree:5. ~colors:3 ~seed:2 in
  check bool "deterministic" true (same_cnf a b)

(* ---------- Equivalence mitres ---------- *)

let test_adder_mitre () =
  check bool "equivalent adders: mitre unsat" false
    (is_sat (W.Equiv.adder_mitre ~bits:6 ~bug:false));
  check bool "bugged adder: mitre sat" true (is_sat (W.Equiv.adder_mitre ~bits:6 ~bug:true))

let test_multiplier_mitre () =
  check bool "commutativity mitre unsat" false
    (is_sat (W.Equiv.multiplier_mitre ~bits:4 ~bug:false));
  check bool "bugged multiplier mitre sat" true
    (is_sat (W.Equiv.multiplier_mitre ~bits:4 ~bug:true))

(* ---------- Registry ---------- *)

let test_registry_shape () =
  check int "42 Table 1 rows" 42 (List.length W.Registry.table1);
  check int "9 Table 2 rows" 9 (List.length W.Registry.table2);
  check bool "find works" true (W.Registry.find "6pipe.cnf" <> None);
  check bool "find missing" true (W.Registry.find "nonexistent.cnf" = None);
  check bool "several families" true (List.length W.Registry.families >= 6)

let test_registry_generators_work () =
  (* every analog generates a well-formed, nonempty formula *)
  List.iter
    (fun (e : W.Registry.entry) ->
      let cnf = e.W.Registry.gen () in
      check bool (e.W.Registry.name ^ " nonempty") true
        (Cnf.nvars cnf > 0 && Cnf.nclauses cnf > 0))
    W.Registry.table1

let test_registry_categories () =
  let count c = List.length (List.filter (fun e -> e.W.Registry.category = c) W.Registry.table1) in
  check int "both-solved rows" 23 (count W.Registry.Both_solved);
  check int "gridsat-only rows" 10 (count W.Registry.Gridsat_only);
  check int "neither rows" 9 (count W.Registry.Neither_solved)

let () =
  Alcotest.run "workloads"
    [
      ( "circuit",
        [
          Alcotest.test_case "adder" `Quick test_circuit_adder;
          Alcotest.test_case "multiplier" `Quick test_circuit_multiplier;
          Alcotest.test_case "gates" `Quick test_circuit_gates;
          Alcotest.test_case "constants" `Quick test_circuit_constants;
        ] );
      ("php", [ Alcotest.test_case "status" `Quick test_php_status ]);
      ( "random",
        [
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "planted sat" `Quick test_random_planted_sat;
          Alcotest.test_case "clause count" `Quick test_random_clause_count;
        ] );
      ( "parity",
        [
          Alcotest.test_case "xor semantics" `Quick test_xor_clauses_semantics;
          Alcotest.test_case "planted sat" `Quick test_parity_planted_sat;
          Alcotest.test_case "tseitin charge" `Quick test_tseitin_charge;
        ] );
      ( "counter",
        [
          Alcotest.test_case "bmc" `Quick test_counter_bmc;
          Alcotest.test_case "lfsr" `Quick test_lfsr_inversion;
          Alcotest.test_case "mixer sat" `Quick test_mixer_preimage_sat;
          Alcotest.test_case "mixer deterministic" `Quick test_mixer_deterministic;
        ] );
      ( "factoring",
        [
          Alcotest.test_case "semiprime" `Quick test_factoring_semiprime;
          Alcotest.test_case "prime unsat" `Quick test_factoring_prime_unsat;
          Alcotest.test_case "prime helpers" `Quick test_prime_helpers;
        ] );
      ("quasigroup", [ Alcotest.test_case "status" `Slow test_quasigroup_status ]);
      ("hanoi", [ Alcotest.test_case "status" `Quick test_hanoi_status ]);
      ( "coloring",
        [
          Alcotest.test_case "cycle" `Quick test_coloring_cycle;
          Alcotest.test_case "grid" `Quick test_coloring_grid;
          Alcotest.test_case "mycielski" `Quick test_coloring_mycielski;
          Alcotest.test_case "random deterministic" `Quick test_coloring_random_deterministic;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "adder mitre" `Quick test_adder_mitre;
          Alcotest.test_case "multiplier mitre" `Quick test_multiplier_mitre;
        ] );
      ( "registry",
        [
          Alcotest.test_case "shape" `Quick test_registry_shape;
          Alcotest.test_case "generators" `Slow test_registry_generators_work;
          Alcotest.test_case "categories" `Quick test_registry_categories;
        ] );
    ]
