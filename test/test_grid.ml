(* Tests for the Grid substrate: simulator, traces, NWS, network, batch,
   messaging. *)

module Sim = Grid.Sim
module Trace = Grid.Trace
module Nws = Grid.Nws
module Network = Grid.Network
module Everyware = Grid.Everyware
module Batch = Grid.Batch
module Resource = Grid.Resource

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let flt = Alcotest.float 1e-9

(* ---------- Sim ---------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  Sim.run sim ~until:10.;
  check (Alcotest.list int) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  check flt "clock at last event" 3.0 (Sim.now sim)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim ~until:2.;
  check (Alcotest.list int) "same-time events fire in scheduling order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let e = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel sim e;
  Sim.run sim ~until:10.;
  check bool "cancelled event does not fire" false !fired;
  check int "pending empty" 0 (Sim.pending sim)

let test_sim_cancel_fired_no_leak () =
  let sim = Sim.create () in
  let e = Sim.schedule sim ~delay:1.0 (fun () -> ()) in
  Sim.run sim ~until:10.;
  Sim.cancel sim e;
  (* cancelling an already-fired id must not leave a tombstone behind *)
  check int "late cancel leaves pending at zero" 0 (Sim.pending sim);
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()));
  check int "fresh event counted correctly" 1 (Sim.pending sim)

let test_sim_cancel_twice () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let e = Sim.schedule sim ~delay:1.0 (fun () -> incr fired) in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> incr fired));
  Sim.cancel sim e;
  Sim.cancel sim e;
  check int "double cancel counts once" 1 (Sim.pending sim);
  Sim.run sim ~until:10.;
  check int "only the live event fired" 1 !fired;
  check int "queue drained" 0 (Sim.pending sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> log := "b" :: !log))));
  Sim.run sim ~until:10.;
  check (Alcotest.list Alcotest.string) "nested event fires" [ "a"; "b" ] (List.rev !log);
  check flt "clock advanced" 1.5 (Sim.now sim)

let test_sim_until_boundary () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> incr fired));
  Sim.run sim ~until:2.0;
  check int "only the early event fired" 1 !fired;
  check int "late event still pending" 1 (Sim.pending sim);
  Sim.run sim ~until:10.0;
  check int "late event fires later" 2 !fired

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule sim ~delay:(-5.) (fun () -> fired := true));
  Sim.run sim ~until:0.;
  check bool "clamped to now" true !fired

let test_sim_determinism () =
  let run () =
    let sim = Sim.create () in
    let log = ref [] in
    for i = 0 to 20 do
      ignore
        (Sim.schedule sim ~delay:(float_of_int ((i * 7) mod 5)) (fun () -> log := i :: !log))
    done;
    Sim.run sim ~until:100.;
    !log
  in
  check bool "two identical runs agree" true (run () = run ())

(* ---------- Trace ---------- *)

let test_trace_constant () =
  let t = Trace.constant 0.7 in
  check flt "constant" 0.7 (Trace.availability t 0.);
  check flt "constant later" 0.7 (Trace.availability t 1e6)

let test_trace_clamping () =
  let hi = Trace.constant 5.0 and lo = Trace.constant (-1.0) in
  check flt "clamped high" 1.0 (Trace.availability hi 0.);
  check flt "clamped low" 0.05 (Trace.availability lo 0.)

let test_trace_periodic_bounds () =
  let t = Trace.periodic ~mean:0.6 ~amplitude:0.3 ~period:100. ~phase:0. in
  let ok = ref true in
  for i = 0 to 200 do
    let a = Trace.availability t (float_of_int i) in
    if a < 0.05 || a > 1.0 then ok := false
  done;
  check bool "periodic stays in bounds" true !ok

let test_trace_noisy_deterministic () =
  let t1 = Trace.noisy ~seed:42 ~mean:0.5 ~amplitude:0.4 ~interval:10. in
  let t2 = Trace.noisy ~seed:42 ~mean:0.5 ~amplitude:0.4 ~interval:10. in
  let same = ref true in
  for i = 0 to 100 do
    let time = float_of_int i *. 3.3 in
    if Trace.availability t1 time <> Trace.availability t2 time then same := false
  done;
  check bool "same seed, same trace" true !same;
  let t3 = Trace.noisy ~seed:43 ~mean:0.5 ~amplitude:0.4 ~interval:10. in
  let differs = ref false in
  for i = 0 to 100 do
    let time = float_of_int i *. 13.7 in
    if Trace.availability t1 time <> Trace.availability t3 time then differs := true
  done;
  check bool "different seed differs somewhere" true !differs

let test_trace_overlay () =
  let t = Trace.overlay (Trace.constant 0.8) (Trace.constant 0.5) in
  check flt "product" 0.4 (Trace.availability t 0.)

(* ---------- NWS ---------- *)

let test_nws_empty_forecast () =
  let f = Nws.create () in
  check flt "optimistic before data" 1.0 (Nws.forecast f)

let test_nws_constant_series () =
  let f = Nws.create () in
  for _ = 1 to 50 do
    Nws.observe f 0.42
  done;
  check flt "constant series forecast" 0.42 (Nws.forecast f);
  check bool "near-zero error" true (Nws.mae f < 0.05)

let test_nws_tracks_shift () =
  let f = Nws.create () in
  for _ = 1 to 30 do
    Nws.observe f 0.9
  done;
  for _ = 1 to 30 do
    Nws.observe f 0.2
  done;
  let fc = Nws.forecast f in
  check bool "forecast moved to the new regime" true (fc < 0.5)

let test_nws_adaptive_beats_worst () =
  (* On an alternating series the running mean is the best predictor;
     the adaptive choice must not be worse than 2x the best expert. *)
  let f = Nws.create () in
  for i = 1 to 200 do
    Nws.observe f (if i mod 2 = 0 then 0.2 else 0.8)
  done;
  check bool "adaptive error bounded" true (Nws.mae f <= 0.65);
  check int "observation count" 200 (Nws.observations f)

(* Adversarial series: the mixture of experts must converge onto a
   responsive predictor and keep its cumulative error bounded whatever
   shape the availability trace takes. *)

let test_nws_step_change () =
  let f = Nws.create () in
  for _ = 1 to 100 do
    Nws.observe f 0.9
  done;
  for _ = 1 to 200 do
    Nws.observe f 0.3
  done;
  check flt "forecast converged to the new regime" 0.3 (Nws.forecast f);
  (* the running mean stays polluted by the old regime forever; the
     winner must be one of the responsive experts *)
  check bool "best predictor abandoned the stale mean" true (Nws.best_predictor f <> "mean");
  check bool "one step only costs one error spike" true (Nws.mae f <= 0.05)

let test_nws_oscillation_bounded () =
  (* worst case for any point predictor: a square wave.  The adaptive
     error must stay within the wave's amplitude and the forecast
     between its rails. *)
  let f = Nws.create () in
  for i = 1 to 300 do
    Nws.observe f (if i mod 2 = 0 then 0.1 else 0.9)
  done;
  check bool "mae bounded by the amplitude" true (Nws.mae f <= 0.5);
  let fc = Nws.forecast f in
  check bool "forecast between the rails" true (fc >= 0.1 && fc <= 0.9)

let test_nws_slow_drift () =
  let f = Nws.create () in
  for i = 0 to 499 do
    Nws.observe f (0.2 +. (0.6 *. float_of_int i /. 499.))
  done;
  let fc = Nws.forecast f in
  check bool "forecast tracks the head of the drift" true (Float.abs (fc -. 0.8) < 0.15);
  check bool "tracking error stays small" true (Nws.mae f < 0.05);
  check bool "drift winner is a responsive expert" true (Nws.best_predictor f <> "mean")

(* ---------- Network ---------- *)

let test_network_intra_vs_inter () =
  let net = Network.create () in
  let intra = Network.transfer_time net ~src:"ucsb" ~dst:"ucsb" ~bytes:1_000_000 in
  let inter = Network.transfer_time net ~src:"ucsb" ~dst:"utk" ~bytes:1_000_000 in
  check bool "LAN much faster than WAN" true (intra *. 10. < inter)

let test_network_custom_link () =
  let net = Network.create () in
  Network.set_link net "a" "b" ~latency:1.0 ~bandwidth:10.;
  check flt "custom link time" (1.0 +. 10.) (Network.transfer_time net ~src:"a" ~dst:"b" ~bytes:100);
  check flt "symmetric" (1.0 +. 10.) (Network.transfer_time net ~src:"b" ~dst:"a" ~bytes:100)

let test_network_size_monotone () =
  let net = Network.create () in
  let t1 = Network.transfer_time net ~src:"a" ~dst:"b" ~bytes:1_000 in
  let t2 = Network.transfer_time net ~src:"a" ~dst:"b" ~bytes:1_000_000 in
  check bool "bigger messages take longer" true (t2 > t1)

(* ---------- Everyware ---------- *)

let test_everyware_delivery () =
  let sim = Sim.create () in
  let net = Network.create () in
  let bus = Everyware.create sim net in
  let received = ref [] in
  Everyware.register bus ~id:1 ~site:"ucsb" ~handler:(fun ~src msg -> received := (src, msg) :: !received);
  Everyware.register bus ~id:2 ~site:"utk" ~handler:(fun ~src:_ _ -> ());
  Everyware.send bus ~src:2 ~dst:1 ~bytes:1000 "hello";
  check int "not yet delivered" 0 (List.length !received);
  Sim.run sim ~until:10.;
  check (Alcotest.list (Alcotest.pair int Alcotest.string)) "delivered with source" [ (2, "hello") ]
    !received;
  check int "counted" 1 (Everyware.messages_sent bus);
  check int "bytes counted" 1000 (Everyware.bytes_sent bus)

let test_everyware_big_messages_slower () =
  let sim = Sim.create () in
  let net = Network.create () in
  let bus = Everyware.create sim net in
  let t_small = ref 0. and t_big = ref 0. in
  Everyware.register bus ~id:1 ~site:"ucsb" ~handler:(fun ~src:_ -> function
    | "small" -> t_small := Sim.now sim
    | _ -> t_big := Sim.now sim);
  Everyware.register bus ~id:2 ~site:"utk" ~handler:(fun ~src:_ _ -> ());
  Everyware.send bus ~src:2 ~dst:1 ~bytes:100 "small";
  Everyware.send bus ~src:2 ~dst:1 ~bytes:100_000_000 "big";
  Sim.run sim ~until:1e9;
  check bool "big after small" true (!t_big > !t_small)

let test_everyware_unregistered_drop () =
  let sim = Sim.create () in
  let bus = Everyware.create sim (Network.create ()) in
  Everyware.register bus ~id:1 ~site:"a" ~handler:(fun ~src:_ _ -> ());
  Everyware.send bus ~src:1 ~dst:99 ~bytes:10 "lost";
  Sim.run sim ~until:10. (* must not raise *)

let test_everyware_unregister_in_flight () =
  let sim = Sim.create () in
  let bus = Everyware.create sim (Network.create ()) in
  let got = ref false in
  Everyware.register bus ~id:1 ~site:"a" ~handler:(fun ~src:_ _ -> got := true);
  Everyware.register bus ~id:2 ~site:"b" ~handler:(fun ~src:_ _ -> ());
  Everyware.send bus ~src:2 ~dst:1 ~bytes:10 "x";
  Everyware.unregister bus ~id:1;
  Sim.run sim ~until:10.;
  check bool "message to dead endpoint dropped" false !got

let test_everyware_fault_drop () =
  let sim = Sim.create () in
  let bus = Everyware.create sim (Network.create ()) in
  let got = ref 0 in
  Everyware.register bus ~id:1 ~site:"a" ~handler:(fun ~src:_ _ -> incr got);
  Everyware.register bus ~id:2 ~site:"b" ~handler:(fun ~src:_ _ -> incr got);
  Everyware.set_fault bus (fun ~src_site:_ ~dst_site ~bytes:_ ->
      if String.equal dst_site "a" then Everyware.Drop else Everyware.Deliver);
  Everyware.send bus ~src:2 ~dst:1 ~bytes:10 "eaten";
  Everyware.send bus ~src:1 ~dst:2 ~bytes:10 "through";
  Sim.run sim ~until:100.;
  check int "only the unfaulted direction delivered" 1 !got;
  check int "drop counted" 1 (Everyware.messages_dropped bus);
  check int "dropped bytes counted" 10 (Everyware.bytes_dropped bus);
  check int "sends counted regardless" 2 (Everyware.messages_sent bus)

let test_everyware_fault_delay_and_duplicate () =
  let sim = Sim.create () in
  let bus = Everyware.create sim (Network.create ()) in
  let arrivals = ref [] in
  Everyware.register bus ~id:1 ~site:"a" ~handler:(fun ~src:_ msg ->
      arrivals := (msg, Sim.now sim) :: !arrivals);
  Everyware.register bus ~id:2 ~site:"b" ~handler:(fun ~src:_ _ -> ());
  Everyware.set_fault bus (fun ~src_site:_ ~dst_site:_ ~bytes:_ -> Everyware.Delay 5.0);
  Everyware.send bus ~src:2 ~dst:1 ~bytes:10 "slow";
  Everyware.clear_fault bus;
  Everyware.send bus ~src:2 ~dst:1 ~bytes:10 "plain";
  Everyware.set_fault bus (fun ~src_site:_ ~dst_site:_ ~bytes:_ -> Everyware.Duplicate 1.0);
  Everyware.send bus ~src:2 ~dst:1 ~bytes:10 "twice";
  Sim.run sim ~until:100.;
  let count m = List.length (List.filter (fun (x, _) -> String.equal x m) !arrivals) in
  check int "duplicated delivered twice" 2 (count "twice");
  check int "delayed delivered once" 1 (count "slow");
  check bool "delay adds latency" true (List.assoc "slow" !arrivals > List.assoc "plain" !arrivals)

(* ---------- Fault plans ---------- *)

let test_fault_crash_hang_schedule () =
  let sim = Sim.create () in
  let crashed = ref [] and hung = ref [] in
  let ctl =
    Grid.Fault.arm ~sim ~seed:1
      ~on_crash:(fun h -> crashed := (h, Sim.now sim) :: !crashed)
      ~on_hang:(fun h -> hung := (h, Sim.now sim) :: !hung)
      [ Grid.Fault.Crash_host { host = 3; at = 5. }; Grid.Fault.Hang_host { host = 4; at = 7. } ]
  in
  Sim.run sim ~until:100.;
  check bool "crash fired at its scripted instant" true (!crashed = [ (3, 5.) ]);
  check bool "hang fired at its scripted instant" true (!hung = [ (4, 7.) ]);
  let c = Grid.Fault.counters ctl in
  check int "crash counted" 1 c.Grid.Fault.crashes;
  check int "hang counted" 1 c.Grid.Fault.hangs

let test_fault_partition_window () =
  let sim = Sim.create () in
  let ctl =
    Grid.Fault.arm ~sim ~seed:1 ~on_crash:ignore ~on_hang:ignore
      [ Grid.Fault.Partition_site { site = "isolated"; from_t = 10.; until_t = 20. } ]
  in
  let decide ~src ~dst = Grid.Fault.decide ctl ~src_site:src ~dst_site:dst ~bytes:1 in
  let inside = ref Everyware.Deliver
  and inbound = ref Everyware.Deliver
  and intra = ref Everyware.Drop
  and after = ref Everyware.Drop in
  ignore
    (Sim.schedule_at sim ~time:15. (fun () ->
         inside := decide ~src:"isolated" ~dst:"other";
         inbound := decide ~src:"other" ~dst:"isolated";
         intra := decide ~src:"isolated" ~dst:"isolated"));
  ignore (Sim.schedule_at sim ~time:25. (fun () -> after := decide ~src:"isolated" ~dst:"other"));
  Sim.run sim ~until:100.;
  check bool "outbound crossing dropped in window" true (!inside = Everyware.Drop);
  check bool "inbound crossing dropped in window" true (!inbound = Everyware.Drop);
  check bool "intra-site traffic unaffected" true (!intra = Everyware.Deliver);
  check bool "traffic flows again after healing" true (!after = Everyware.Deliver)

let test_fault_drop_probability_and_determinism () =
  let run seed =
    let sim = Sim.create () in
    let ctl =
      Grid.Fault.arm ~sim ~seed ~on_crash:ignore ~on_hang:ignore
        [
          Grid.Fault.Drop_messages
            { src_site = None; dst_site = None; p = 0.3; from_t = 0.; until_t = 1e9 };
        ]
    in
    List.init 500 (fun _ -> Grid.Fault.decide ctl ~src_site:"a" ~dst_site:"b" ~bytes:1)
  in
  let a = run 42 and b = run 42 and c = run 7 in
  check bool "same seed replays the same decisions" true (a = b);
  check bool "different seed differs" true (a <> c);
  let drops = List.length (List.filter (fun d -> d = Everyware.Drop) a) in
  check bool "drop rate in the ballpark of p" true (drops > 100 && drops < 200)

let test_fault_slow_flaky_schedule () =
  let sim = Sim.create () in
  let changes = ref [] in
  let ctl =
    Grid.Fault.arm ~sim ~seed:1 ~on_crash:ignore ~on_hang:ignore
      ~on_slow:(fun h f -> changes := (Sim.now sim, h, f) :: !changes)
      [
        Grid.Fault.Slow_host { host = 2; at = 3.; factor = 8. };
        Grid.Fault.Flaky_host { host = 5; factor = 4.; period = 10.; from_t = 0.; until_t = 20. };
      ]
  in
  Sim.run sim ~until:100.;
  let changes = List.rev !changes in
  check bool "one-shot slowdown fired at its instant" true (List.mem (3., 2, 8.) changes);
  let host5 = List.filter_map (fun (t, h, f) -> if h = 5 then Some (t, f) else None) changes in
  (* two periods: slow at 0 and 10, restored at 5 and 15, final restore at 20 *)
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "flaky oscillation schedule"
    [ (0., 4.); (5., 1.); (10., 4.); (15., 1.); (20., 1.) ]
    host5;
  let c = Grid.Fault.counters ctl in
  check int "slow phases counted" 3 c.Grid.Fault.slowdowns

let test_fault_validate_speed_faults () =
  let ok plan = check bool "plan accepted" true (Grid.Fault.validate plan = Ok ()) in
  let rejected plan =
    check bool "plan rejected" true (Result.is_error (Grid.Fault.validate plan))
  in
  ok [ Grid.Fault.Slow_host { host = 1; at = 0.; factor = 20. } ];
  rejected [ Grid.Fault.Slow_host { host = 1; at = 0.; factor = 0. } ];
  rejected [ Grid.Fault.Slow_host { host = 1; at = 0.; factor = -2. } ];
  rejected [ Grid.Fault.Slow_host { host = 1; at = -1.; factor = 2. } ];
  rejected [ Grid.Fault.Flaky_host { host = 1; factor = 0.; period = 5.; from_t = 0.; until_t = 9. } ];
  rejected [ Grid.Fault.Flaky_host { host = 1; factor = 4.; period = 0.; from_t = 0.; until_t = 9. } ];
  rejected [ Grid.Fault.Flaky_host { host = 1; factor = 4.; period = 5.; from_t = 9.; until_t = 0. } ];
  (* a Slow_host lasts forever, so any later speed fault on the same
     host overlaps it; distinct hosts never conflict *)
  rejected
    [
      Grid.Fault.Slow_host { host = 3; at = 5.; factor = 8. };
      Grid.Fault.Flaky_host { host = 3; factor = 4.; period = 2.; from_t = 50.; until_t = 60. };
    ];
  rejected
    [
      Grid.Fault.Slow_host { host = 3; at = 5.; factor = 8. };
      Grid.Fault.Slow_host { host = 3; at = 9.; factor = 2. };
    ];
  rejected
    [
      Grid.Fault.Flaky_host { host = 4; factor = 4.; period = 2.; from_t = 0.; until_t = 10. };
      Grid.Fault.Flaky_host { host = 4; factor = 2.; period = 3.; from_t = 8.; until_t = 20. };
    ];
  ok
    [
      Grid.Fault.Slow_host { host = 1; at = 5.; factor = 8. };
      Grid.Fault.Slow_host { host = 2; at = 5.; factor = 8. };
      Grid.Fault.Flaky_host { host = 4; factor = 4.; period = 2.; from_t = 0.; until_t = 10. };
      Grid.Fault.Flaky_host { host = 4; factor = 2.; period = 3.; from_t = 10.; until_t = 20. };
    ]

(* ---------- Batch ---------- *)

let test_batch_lifecycle () =
  let sim = Sim.create () in
  let batch = Batch.create sim ~mean_wait:100. ~seed:7 in
  let started = ref (-1.) and ended = ref (-1.) in
  let job =
    Batch.submit batch ~nodes:100 ~duration:50.
      ~on_start:(fun () -> started := Sim.now sim)
      ~on_end:(fun () -> ended := Sim.now sim)
  in
  check bool "queued" true (Batch.state job = Batch.Queued);
  Sim.run sim ~until:1e9;
  check bool "ran" true (Batch.state job = Batch.Finished);
  check bool "started after a wait" true (!started > 0.);
  check flt "duration honoured" 50. (!ended -. !started);
  check int "nodes recorded" 100 (Batch.nodes job)

let test_batch_cancel_queued () =
  let sim = Sim.create () in
  let batch = Batch.create sim ~mean_wait:100. ~seed:7 in
  let started = ref false in
  let job =
    Batch.submit batch ~nodes:10 ~duration:50.
      ~on_start:(fun () -> started := true)
      ~on_end:(fun () -> ())
  in
  Batch.cancel batch job;
  Sim.run sim ~until:1e9;
  check bool "never started" false !started;
  check bool "cancelled" true (Batch.state job = Batch.Cancelled)

let test_batch_cancel_running () =
  let sim = Sim.create () in
  let batch = Batch.create sim ~mean_wait:10. ~seed:7 in
  let ended = ref false in
  let job =
    Batch.submit batch ~nodes:10 ~duration:1000.
      ~on_start:(fun () -> ())
      ~on_end:(fun () -> ended := true)
  in
  (* run until it starts, then cancel *)
  while Batch.state job = Batch.Queued && Sim.step sim do
    ()
  done;
  check bool "running" true (Batch.state job = Batch.Running);
  Batch.cancel batch job;
  Sim.run sim ~until:1e9;
  check bool "on_end suppressed" false !ended;
  check bool "cancelled" true (Batch.state job = Batch.Cancelled)

let test_batch_deterministic_wait () =
  let wait seed =
    let sim = Sim.create () in
    let batch = Batch.create sim ~mean_wait:118_800. ~seed in
    let job =
      Batch.submit batch ~nodes:100 ~duration:1. ~on_start:(fun () -> ()) ~on_end:(fun () -> ())
    in
    Batch.queue_wait batch job
  in
  check flt "same seed same wait" (wait 3) (wait 3);
  check bool "positive wait" true (wait 3 > 0.)

(* ---------- more NWS / Sim / Trace coverage ---------- *)

let test_nws_best_predictor_named () =
  let f = Nws.create () in
  for _ = 1 to 20 do
    Nws.observe f 0.5
  done;
  check bool "winner is one of the experts" true
    (List.mem (Nws.best_predictor f) [ "last"; "mean"; "window_mean"; "window_median" ])

let test_nws_forecast_in_range () =
  let f = Nws.create () in
  let trace = Trace.noisy ~seed:3 ~mean:0.6 ~amplitude:0.3 ~interval:5. in
  for i = 1 to 100 do
    Nws.observe f (Trace.availability trace (float_of_int i))
  done;
  let fc = Nws.forecast f in
  check bool "forecast within trace bounds" true (fc >= 0.05 && fc <= 1.0)

let test_sim_events_fired_counter () =
  let sim = Sim.create () in
  for _ = 1 to 7 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()))
  done;
  Sim.run sim ~until:5.;
  check int "events fired" 7 (Sim.events_fired sim)

let test_sim_max_events_valve () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr fired))
  done;
  Sim.run ~max_events:3 sim ~until:5.;
  check int "stopped at the valve" 3 !fired

let test_trace_noisy_piecewise_constant () =
  let t = Trace.noisy ~seed:4 ~mean:0.5 ~amplitude:0.3 ~interval:10. in
  check bool "constant within an interval" true
    (Trace.availability t 12.0 = Trace.availability t 17.9)

let test_everyware_fifo_per_link () =
  (* equal-size messages on the same link arrive in send order *)
  let sim = Sim.create () in
  let bus = Everyware.create sim (Network.create ()) in
  let received = ref [] in
  Everyware.register bus ~id:1 ~site:"a" ~handler:(fun ~src:_ msg -> received := msg :: !received);
  Everyware.register bus ~id:2 ~site:"b" ~handler:(fun ~src:_ _ -> ());
  for i = 1 to 10 do
    Everyware.send bus ~src:2 ~dst:1 ~bytes:100 i
  done;
  Sim.run sim ~until:10.;
  check (Alcotest.list int) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !received)

let prop_heap_random_updates =
  (* interleave inserts, score bumps and pops; the heap must always pop a
     maximal member *)
  let gen = QCheck.(list_of_size (QCheck.Gen.int_range 1 120) (int_range 0 2)) in
  QCheck.Test.make ~name:"heap under random updates" ~count:50 gen (fun ops ->
      let n = 40 in
      let score = Array.make (n + 1) 0. in
      let h = Sat.Heap.create ~nvars:n ~gt:(fun a b -> score.(a) > score.(b)) in
      let next = ref 1 in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op with
          | 0 ->
              if !next <= n then begin
                Sat.Heap.insert h !next;
                incr next
              end
          | 1 ->
              if !next > 1 then begin
                let v = 1 + (i mod (!next - 1)) in
                score.(v) <- score.(v) +. float_of_int (i + 1);
                Sat.Heap.update h v
              end
          | _ ->
              if not (Sat.Heap.is_empty h) then begin
                let top = Sat.Heap.remove_max h in
                (* no remaining member may beat the popped one *)
                for v = 1 to !next - 1 do
                  if Sat.Heap.mem h v && score.(v) > score.(top) then ok := false
                done
              end)
        ops;
      !ok)

(* ---------- Resource ---------- *)

let test_resource_memory_rule () =
  let r =
    Resource.make ~id:0 ~name:"n0" ~site:"ucsb" ~speed:100. ~mem_bytes:(1024 * 1024 * 1024)
      ~kind:Resource.Interactive
  in
  check bool "60% rule" true
    (Resource.usable_memory r = int_of_float (0.6 *. float_of_int (1024 * 1024 * 1024)));
  check bool "min memory is 128MB" true (Resource.min_client_memory = 128 * 1024 * 1024)

let test_resource_validation () =
  Alcotest.check_raises "zero speed rejected" (Invalid_argument "Resource.make: speed must be positive")
    (fun () ->
      ignore
        (Resource.make ~id:0 ~name:"x" ~site:"s" ~speed:0. ~mem_bytes:1 ~kind:Resource.Interactive))

let () =
  Alcotest.run "grid"
    [
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_sim_cancel_fired_no_leak;
          Alcotest.test_case "cancel twice" `Quick test_sim_cancel_twice;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "until boundary" `Quick test_sim_until_boundary;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay_clamped;
          Alcotest.test_case "determinism" `Quick test_sim_determinism;
        ] );
      ( "trace",
        [
          Alcotest.test_case "constant" `Quick test_trace_constant;
          Alcotest.test_case "clamping" `Quick test_trace_clamping;
          Alcotest.test_case "periodic bounds" `Quick test_trace_periodic_bounds;
          Alcotest.test_case "noisy determinism" `Quick test_trace_noisy_deterministic;
          Alcotest.test_case "overlay" `Quick test_trace_overlay;
        ] );
      ( "nws",
        [
          Alcotest.test_case "empty forecast" `Quick test_nws_empty_forecast;
          Alcotest.test_case "constant series" `Quick test_nws_constant_series;
          Alcotest.test_case "regime shift" `Quick test_nws_tracks_shift;
          Alcotest.test_case "adaptive error bounded" `Quick test_nws_adaptive_beats_worst;
          Alcotest.test_case "adversarial: step change" `Quick test_nws_step_change;
          Alcotest.test_case "adversarial: oscillation" `Quick test_nws_oscillation_bounded;
          Alcotest.test_case "adversarial: slow drift" `Quick test_nws_slow_drift;
        ] );
      ( "network",
        [
          Alcotest.test_case "intra vs inter" `Quick test_network_intra_vs_inter;
          Alcotest.test_case "custom link" `Quick test_network_custom_link;
          Alcotest.test_case "size monotone" `Quick test_network_size_monotone;
        ] );
      ( "everyware",
        [
          Alcotest.test_case "delivery" `Quick test_everyware_delivery;
          Alcotest.test_case "size-dependent latency" `Quick test_everyware_big_messages_slower;
          Alcotest.test_case "unknown destination" `Quick test_everyware_unregistered_drop;
          Alcotest.test_case "unregister in flight" `Quick test_everyware_unregister_in_flight;
          Alcotest.test_case "fault drop" `Quick test_everyware_fault_drop;
          Alcotest.test_case "fault delay and duplicate" `Quick
            test_everyware_fault_delay_and_duplicate;
        ] );
      ( "fault",
        [
          Alcotest.test_case "crash/hang schedule" `Quick test_fault_crash_hang_schedule;
          Alcotest.test_case "partition window" `Quick test_fault_partition_window;
          Alcotest.test_case "drop probability" `Quick test_fault_drop_probability_and_determinism;
          Alcotest.test_case "slow/flaky schedule" `Quick test_fault_slow_flaky_schedule;
          Alcotest.test_case "validate speed faults" `Quick test_fault_validate_speed_faults;
        ] );
      ( "batch",
        [
          Alcotest.test_case "lifecycle" `Quick test_batch_lifecycle;
          Alcotest.test_case "cancel queued" `Quick test_batch_cancel_queued;
          Alcotest.test_case "cancel running" `Quick test_batch_cancel_running;
          Alcotest.test_case "deterministic wait" `Quick test_batch_deterministic_wait;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "everyware fifo" `Quick test_everyware_fifo_per_link;
          QCheck_alcotest.to_alcotest prop_heap_random_updates;
          Alcotest.test_case "nws best predictor" `Quick test_nws_best_predictor_named;
          Alcotest.test_case "nws forecast range" `Quick test_nws_forecast_in_range;
          Alcotest.test_case "sim fired counter" `Quick test_sim_events_fired_counter;
          Alcotest.test_case "sim max events" `Quick test_sim_max_events_valve;
          Alcotest.test_case "trace piecewise" `Quick test_trace_noisy_piecewise_constant;
        ] );
      ( "resource",
        [
          Alcotest.test_case "memory rules" `Quick test_resource_memory_rule;
          Alcotest.test_case "validation" `Quick test_resource_validation;
        ] );
    ]
