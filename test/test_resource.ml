(* Resource-exhaustion suite: watermark queues, windowed byte budgets,
   disk quotas and the faults that exercise them.

   The layer's contract has three legs, each tested here:
   - bounded queues shed the least valuable traffic and never a control
     (critical) envelope — exhaustion degrades sharing, not correctness;
   - per-link share budgets bound the bytes any link carries inside one
     virtual-time window, deterministically;
   - disk quotas force emergency compaction, then an explicit degraded
     mode that appends-and-counts rather than raising, and exits on
     relief. *)

module C = Gridsat_core
module Cfg = C.Config
module Flow = C.Flow
module F = Grid.Fault
module S = Gridsat_service
module Svc = S.Service
module Job = S.Job

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let answer_kind = function
  | C.Master.Sat _ -> "SAT"
  | C.Master.Unsat -> "UNSAT"
  | C.Master.Unknown _ -> "UNKNOWN"

let has_event p (r : C.Master.result) = List.exists (fun e -> p e.C.Events.kind) r.C.Master.events

(* Same tuning as the chaos suite: eager splitting, frequent share
   flushes, light checkpoints — small instances still exercise the
   machinery. *)
let run_config =
  {
    Cfg.default with
    Cfg.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
    checkpoint = Cfg.Light;
    checkpoint_period = 5.;
    heartbeat_period = 5.;
    suspect_timeout = 30.;
  }

let testbed n = C.Testbed.uniform ~n ~speed:500. ()

let solve ?(config = run_config) ?(fault_plan = []) ?on_master ?(n = 6) cnf =
  C.Gridsat.solve ~config ~fault_plan ?on_master ~testbed:(testbed n) cnf

(* ---------- watermark queue ---------- *)

let test_queue_shed_lowest_value () =
  let q = Flow.queue ~high:3 ~critical:(fun _ -> false) ~value:(fun x -> x) () in
  check (Alcotest.list int) "no shed below the watermark" [] (Flow.push q 5);
  ignore (Flow.push q 1);
  ignore (Flow.push q 3);
  check (Alcotest.list int) "lowest value shed first" [ 1 ] (Flow.push q 4);
  check int "depth restored to the watermark" 3 (Flow.depth q);
  check int "peak saw the overflow" 4 (Flow.peak q);
  check int "shed counted" 1 (Flow.shed_count q);
  check (Alcotest.list int) "FIFO order preserved for survivors" [ 5; 3; 4 ] (Flow.drain q)

let test_queue_shed_ties_oldest_first () =
  let q = Flow.queue ~high:2 ~critical:(fun _ -> false) ~value:(fun _ -> 0) () in
  ignore (Flow.push q 10);
  ignore (Flow.push q 20);
  check (Alcotest.list int) "oldest among equals goes first" [ 10 ] (Flow.push q 30);
  check (Alcotest.list int) "younger equals survive" [ 20; 30 ] (Flow.drain q)

let test_queue_critical_unsheddable () =
  let q = Flow.queue ~high:2 ~critical:snd ~value:fst () in
  ignore (Flow.push q (0, true));
  ignore (Flow.push q (0, true));
  check (Alcotest.list (Alcotest.pair int bool)) "an all-critical queue exceeds the watermark" []
    (Flow.push q (0, true));
  check int "critical items pile up past high" 3 (Flow.depth q);
  (* a sheddable newcomer over the watermark is itself the victim *)
  check (Alcotest.list (Alcotest.pair int bool)) "the sheddable newcomer is shed" [ (5, false) ]
    (Flow.push q (5, false));
  check int "nothing critical was lost" 3 (Flow.depth q)

let test_queue_pressure_hysteresis () =
  let q = Flow.queue ~low:1 ~high:3 ~critical:(fun _ -> true) ~value:(fun _ -> 0) () in
  ignore (Flow.push q 1);
  ignore (Flow.push q 2);
  check bool "below high: no pressure" false (Flow.under_pressure q);
  ignore (Flow.push q 3);
  check bool "latched at the high watermark" true (Flow.under_pressure q);
  ignore (Flow.pop q);
  check bool "still latched between the watermarks" true (Flow.under_pressure q);
  ignore (Flow.pop q);
  check bool "released at the low watermark" false (Flow.under_pressure q)

let test_queue_push_front_and_take () =
  let q = Flow.queue ~high:5 ~critical:(fun _ -> false) ~value:(fun x -> x) () in
  ignore (Flow.push q 1);
  ignore (Flow.push q 2);
  ignore (Flow.push_front q 9);
  check (Alcotest.option int) "requeued item pops first" (Some 9) (Flow.pop q);
  ignore (Flow.push q 4);
  check (Alcotest.option int) "take_first finds the oldest match" (Some 2)
    (Flow.take_first q (fun x -> x mod 2 = 0));
  check (Alcotest.list int) "the rest keeps its order" [ 1; 4 ] (Flow.drain q)

(* Property: no push sequence can make the queue drop a critical item,
   and nothing is silently lost — every pushed item is either still
   queued or was returned to the caller as shed. *)
let prop_shed_never_drops_critical =
  let gen = QCheck.Gen.(list_size (int_bound 40) (pair (int_bound 100) bool)) in
  let print items =
    String.concat ";"
      (List.map (fun (v, c) -> Printf.sprintf "(%d,%b)" v c) items)
  in
  QCheck.Test.make ~count:300 ~name:"watermark shed never drops a critical item"
    (QCheck.make ~print gen) (fun items ->
      let q = Flow.queue ~high:4 ~critical:snd ~value:fst () in
      let shed = List.concat_map (fun it -> Flow.push q it) items in
      let kept = Flow.drain q in
      List.for_all (fun (_, critical) -> not critical) shed
      && List.length kept + List.length shed = List.length items
      && List.length (List.filter snd kept) = List.length (List.filter snd items))

(* ---------- windowed byte budget ---------- *)

let test_budget_window_discipline () =
  let b = Flow.budget ~bytes_per_window:100 ~window:5. in
  check bool "first charge admitted" true (Flow.admit b ~key:1 ~now:0. ~bytes:60);
  check int "remaining reflects the charge" 40 (Flow.remaining b ~key:1 ~now:1.);
  check bool "over-budget charge refused" false (Flow.admit b ~key:1 ~now:2. ~bytes:60);
  check bool "another key has its own ledger" true (Flow.admit b ~key:2 ~now:2. ~bytes:60);
  check bool "the next window readmits" true (Flow.admit b ~key:1 ~now:5.1 ~bytes:60);
  check int "refusals counted" 1 (Flow.budget_shed_items b);
  check int "refused bytes counted" 60 (Flow.budget_shed_bytes b);
  check int "admitted bytes counted" 180 (Flow.charged_total b);
  check int "window peak is the largest single-window charge" 60 (Flow.window_peak b);
  check bool "window peak bounded by the budget" true (Flow.window_peak b <= 100)

(* ---------- choke-link ledger ---------- *)

let test_choke_ledger_deterministic () =
  let sim = Grid.Sim.create () in
  let specs =
    [
      F.Choke_link
        {
          src_site = Some "east";
          dst_site = Some "west";
          bytes_per_window = 100;
          window = 10.;
          from_t = 0.;
          until_t = infinity;
        };
    ]
  in
  (match F.validate specs with Ok () -> () | Error m -> Alcotest.fail m);
  let ctl = F.arm ~sim ~seed:7 ~on_crash:ignore ~on_hang:ignore specs in
  check bool "within budget delivers" true
    (F.decide ctl ~src_site:"east" ~dst_site:"west" ~bytes:60 = Grid.Everyware.Deliver);
  (* both directions share one ledger: the model is a physical pipe *)
  check bool "reverse direction draws on the same window" true
    (F.decide ctl ~src_site:"west" ~dst_site:"east" ~bytes:60 = Grid.Everyware.Drop);
  check bool "a non-matching link is unaffected" true
    (F.decide ctl ~src_site:"east" ~dst_site:"north" ~bytes:60 = Grid.Everyware.Deliver);
  check int "choked refusal counted" 1 (F.counters ctl).F.choked;
  (* advance virtual time into the next window: the budget resets *)
  ignore (Grid.Sim.schedule_at sim ~time:10.5 (fun () -> ()));
  ignore (Grid.Sim.step sim);
  check bool "the next window readmits" true
    (F.decide ctl ~src_site:"east" ~dst_site:"west" ~bytes:60 = Grid.Everyware.Deliver)

(* ---------- journal and joblog disk quotas ---------- *)

let test_journal_quota_degraded_cycle () =
  let open C.Journal in
  let j = create ~compact_every:100 () in
  for i = 1 to 50 do
    append j (Registered { client = i })
  done;
  check bool "the journal occupies real bytes" true (occupancy j > 0);
  check bool "no quota: never degraded" false (degraded j);
  (* a 1-byte quota no compaction can satisfy: emergency compaction
     first, then explicit degraded mode *)
  set_quota j ~quota:1;
  check bool "tightening forced an emergency compaction" true (forced_compactions j > 0);
  check bool "still over after compacting: degraded" true (degraded j);
  let before = degraded_entries j in
  append j (Registered { client = 99 });
  check bool "appends continue while degraded, counted" true (degraded_entries j > before);
  check bool "degraded appends still replay" true (Hashtbl.mem (replay j).clients 99);
  check bool "occupancy peak tracked" true (bytes_peak j >= occupancy j);
  set_quota j ~quota:0;
  check bool "quota relief exits degraded mode" false (degraded j)

let test_joblog_quota_degraded_cycle () =
  let open S.Joblog in
  let l = create () in
  append l (Submitted { id = 1; tenant = "t"; priority = "normal"; digest = "d"; deadline = None });
  append l (Admitted { id = 1 });
  check bool "no quota: never degraded" false (degraded l);
  (* append-only store: nothing to compact, degraded until relief *)
  set_quota l ~quota:1;
  check bool "tightening below the size degrades immediately" true (degraded l);
  let before = degraded_entries l in
  append l (Finished { id = 1; terminal = "completed" });
  check bool "appends continue while degraded, counted" true (degraded_entries l > before);
  check int "no record was dropped" 3 (List.length (entries l));
  check bool "size peak tracked" true (bytes_peak l >= bytes l);
  set_quota l ~quota:0;
  check bool "quota relief exits degraded mode" false (degraded l)

(* ---------- duplicate suppression ---------- *)

(* Inject the same (sound: it comes from the original CNF) clause twice
   from a busy client.  The master relays both batches; every receiving
   client must enqueue the clause once and suppress the copy. *)
let test_share_dup_suppressed () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let clause =
    List.fold_left
      (fun best c -> if Array.length c < Array.length best then c else best)
      (List.hd (Sat.Cnf.clauses cnf))
      (Sat.Cnf.clauses cnf)
  in
  let r =
    solve
      ~on_master:(fun m ->
        (* wait until at least two clients are busy, so the relays have a
           recipient that is actually solving *)
        let rec arm () =
          C.Master.schedule m ~delay:2. (fun () ->
              match C.Master.busy_client_ids m with
              | c :: _ :: _ ->
                  C.Master.inject m ~src:c (C.Protocol.Shares { clauses = [ clause ] });
                  C.Master.inject m ~src:c (C.Protocol.Shares { clauses = [ clause ] })
              | _ -> arm ())
        in
        arm ())
      cnf
  in
  check Alcotest.string "verdict unharmed by duplicate shares" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "duplicates suppressed at ingestion" true (r.C.Master.dup_suppressed > 0)

(* ---------- per-link share budgets ---------- *)

let budget_config = { run_config with Cfg.share_budget = 512; share_window = 5. }

let test_share_budget_bounds_link_bytes () =
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  let baseline = solve cnf in
  check Alcotest.string "baseline is unsat" "UNSAT" (answer_kind baseline.C.Master.answer);
  let r = solve ~config:budget_config cnf in
  check Alcotest.string "verdict unchanged under a share budget" "UNSAT"
    (answer_kind r.C.Master.answer);
  check bool "something was still shared" true (r.C.Master.share_link_peak > 0);
  check bool "per-link window peak bounded by the budget" true
    (r.C.Master.share_link_peak <= 512);
  check bool "the budget actually refused clauses" true (r.C.Master.shares_shed > 0);
  check bool "sheds visible in the event log" true
    (has_event (function C.Events.Shares_shed _ -> true | _ -> false) r);
  (* byte-stability: the same seed must charge the same windows *)
  let again = solve ~config:budget_config cnf in
  check bool "identical event timeline on replay" true
    (r.C.Master.events = again.C.Master.events);
  check int "share bytes byte-stable" r.C.Master.share_bytes again.C.Master.share_bytes;
  check int "sheds byte-stable" r.C.Master.shares_shed again.C.Master.shares_shed

(* ---------- bounded outage outbox ---------- *)

(* Regression for the unbounded-outbox hazard: a long master outage with
   a tiny outbox cap must shed share batches (the sheddable, low-value
   traffic) while every control envelope — results, split registrations —
   survives to reconciliation, so the verdict is unchanged. *)
let outage_config =
  {
    run_config with
    Cfg.share_flush_interval = 0.5;
    retry_base = 0.25;
    retry_max_attempts = 3;
    resync_grace = 5.;
    outbox_cap = 2;
  }

let test_outbox_bounded_during_outage () =
  let cnf = Workloads.Php.instance ~pigeons:8 ~holes:7 in
  let baseline = solve ~config:outage_config cnf in
  check Alcotest.string "baseline is unsat" "UNSAT" (answer_kind baseline.C.Master.answer);
  let t = baseline.C.Master.time in
  let plan =
    [
      F.Crash_master
        { at = Float.max 4. (0.25 *. t); restart_after = Float.max 25. (0.4 *. t) };
    ]
  in
  let r = solve ~config:outage_config ~fault_plan:plan cnf in
  check Alcotest.string "verdict survives the bounded outage" "UNSAT"
    (answer_kind r.C.Master.answer);
  check int "the master crashed once" 1 r.C.Master.master_crashes;
  check bool "the outage outbox filled past its cap" true (r.C.Master.outbox_peak >= 2);
  check bool "low-value share traffic was shed" true (r.C.Master.outbox_shed > 0);
  check bool "sheds visible in the event log" true
    (has_event (function C.Events.Outbox_shed _ -> true | _ -> false) r);
  (* same plan, same seed: the bounded timeline replays exactly *)
  let again = solve ~config:outage_config ~fault_plan:plan cnf in
  check bool "identical event timeline on replay" true
    (r.C.Master.events = again.C.Master.events)

(* ---------- disk-full fault against a live run ---------- *)

let test_disk_full_degrades_and_recovers () =
  let cnf = Workloads.Php.instance ~pigeons:6 ~holes:5 in
  let baseline = solve cnf in
  let t = baseline.C.Master.time in
  (* quota 1: no compaction can satisfy it, so degraded mode is certain;
     relief lands mid-run (Disk_full perturbs no messages, so the faulted
     run keeps the baseline's timeline) *)
  let plan = [ F.Disk_full { at = 0.3 *. t; quota = 1; until_t = 0.6 *. t } ] in
  let r = solve ~fault_plan:plan cnf in
  check Alcotest.string "verdict survives a full disk" "UNSAT" (answer_kind r.C.Master.answer);
  check bool "quota crossing forced an emergency compaction" true
    (r.C.Master.forced_compactions > 0);
  check bool "degraded appends were counted" true (r.C.Master.degraded_entries > 0);
  check bool "degraded entry visible in the event log" true
    (has_event (function C.Events.Journal_degraded _ -> true | _ -> false) r);
  check bool "recovery visible after quota relief" true
    (has_event (function C.Events.Journal_recovered _ -> true | _ -> false) r)

(* ---------- service: joblog quota and resource pressure ---------- *)

let svc_config =
  {
    Svc.default_config with
    Svc.run = run_config;
    hosts_per_job = 2;
    max_concurrent = 2;
    queue_capacity = 8;
    starvation_after = 30.;
  }

let test_service_joblog_quota_pressure () =
  let obs = Obs.create ~flight:(Obs.Flight.create ()) ~anomaly:(Obs.Anomaly.create ()) () in
  let cfg = { svc_config with Svc.run = { run_config with Cfg.journal_quota = 1 } } in
  let svc = Svc.create ~obs ~cfg ~testbed:(testbed 4) () in
  (match Svc.submit svc ~tenant:"acme" ~priority:Job.Normal (Workloads.Php.instance ~pigeons:6 ~holes:5) with
  | Svc.Accepted -> ()
  | _ -> Alcotest.fail "job must be accepted");
  Svc.run svc;
  let s = Svc.stats svc in
  check int "the job completed" 1 s.Svc.completed;
  check bool "joblog degraded appends counted" true (s.Svc.joblog_degraded_entries > 0);
  check bool "resource pressure asserted while the quota holds" true s.Svc.resource_pressure;
  check bool "durability alarm tripped" true
    (List.exists
       (fun (tr : Obs.Anomaly.trigger) -> tr.Obs.Anomaly.rule = "joblog-degraded")
       (Svc.anomalies svc));
  check bool "the alarm dumped the flight recorder" true (Svc.flight_dumps svc <> [])

let () =
  Alcotest.run "resource"
    [
      ( "flow-queue",
        [
          Alcotest.test_case "shed lowest value first" `Quick test_queue_shed_lowest_value;
          Alcotest.test_case "shed ties oldest first" `Quick test_queue_shed_ties_oldest_first;
          Alcotest.test_case "critical unsheddable" `Quick test_queue_critical_unsheddable;
          Alcotest.test_case "pressure hysteresis" `Quick test_queue_pressure_hysteresis;
          Alcotest.test_case "push_front and take_first" `Quick test_queue_push_front_and_take;
          QCheck_alcotest.to_alcotest prop_shed_never_drops_critical;
        ] );
      ( "flow-budget",
        [
          Alcotest.test_case "window discipline" `Quick test_budget_window_discipline;
          Alcotest.test_case "choke ledger deterministic" `Quick test_choke_ledger_deterministic;
        ] );
      ( "disk-quota",
        [
          Alcotest.test_case "journal degraded cycle" `Quick test_journal_quota_degraded_cycle;
          Alcotest.test_case "joblog degraded cycle" `Quick test_joblog_quota_degraded_cycle;
          Alcotest.test_case "disk-full degrades and recovers" `Slow
            test_disk_full_degrades_and_recovers;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "duplicate shares suppressed" `Slow test_share_dup_suppressed;
          Alcotest.test_case "budget bounds link bytes" `Slow test_share_budget_bounds_link_bytes;
        ] );
      ( "outbox",
        [
          Alcotest.test_case "bounded during a long outage" `Slow
            test_outbox_bounded_during_outage;
        ] );
      ( "service",
        [
          Alcotest.test_case "joblog quota pressure" `Slow test_service_joblog_quota_pressure;
        ] );
    ]
