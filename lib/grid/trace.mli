(** Deterministic background-load traces.

    The paper's testbed was shared: "none of the resources we used were
    dedicated to our use".  A trace gives, for every instant of virtual
    time, the fraction of a host's CPU available to a GridSAT client.
    Traces are pure functions of time (seeded hashing, no hidden state),
    so simulations replay identically. *)

type t

val constant : float -> t
(** Always the given availability (clamped to [0.05, 1]). *)

val periodic : mean:float -> amplitude:float -> period:float -> phase:float -> t
(** Sinusoidal load (diurnal patterns): [mean + amplitude * sin]. *)

val noisy : seed:int -> mean:float -> amplitude:float -> interval:float -> t
(** Piecewise-constant noise: a fresh pseudo-random availability in
    [mean - amplitude, mean + amplitude] every [interval] seconds,
    derived by hashing [(seed, step index)]. *)

val overlay : t -> t -> t
(** Pointwise product of two traces (compose load sources). *)

val availability : t -> float -> float
(** [availability t time] is in [0.05, 1.0] — a host never stalls
    completely, matching time-shared Unix scheduling. *)
