(** Descriptions of Grid computational resources.

    A resource models one host of the testbed: a relative processing speed
    (solver propagation steps per virtual second when unloaded), a memory
    capacity, a site (for network costs) and a kind — interactive hosts are
    available immediately, batch hosts only exist while a batch job runs
    (paper Section 4: GrADS/UCSB hosts vs. IBM Blue Horizon nodes). *)

type kind = Interactive | Batch

type t = {
  id : int;
  name : string;
  site : string;
  speed : float;  (** solver steps per virtual second at 100% availability *)
  mem_bytes : int;
  kind : kind;
}

val make : id:int -> name:string -> site:string -> speed:float -> mem_bytes:int -> kind:kind -> t

val min_client_memory : int
(** Clients refuse to start on hosts below this free-memory threshold
    (paper: 128 MB). *)

val usable_memory : t -> int
(** The solver memory budget on this host: 60% of capacity, the paper's
    rule for avoiding the Linux out-of-memory killer. *)

val pp : Format.formatter -> t -> unit
