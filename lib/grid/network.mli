(** Wide-area network model.

    Sites (campuses) are connected by links with latency and bandwidth;
    hosts within a site communicate over a fast LAN.  Transfer time is
    [latency + bytes / bandwidth] — enough to reproduce the paper's
    communication effects (subproblem transfers of 10 KB – 500 MB
    dominate, clause shares are small but frequent). *)

type t

val create :
  ?intra_latency:float ->
  ?intra_bandwidth:float ->
  ?default_latency:float ->
  ?default_bandwidth:float ->
  unit ->
  t
(** Bandwidths in bytes per virtual second, latencies in virtual
    seconds.  Defaults: LAN 0.5 ms / 100 MB/s, WAN 40 ms / 2 MB/s. *)

val set_link : t -> string -> string -> latency:float -> bandwidth:float -> unit
(** Overrides the (symmetric) link between two sites. *)

val transfer_time : t -> src:string -> dst:string -> bytes:int -> float
(** Time to move [bytes] from a host at [src] to a host at [dst]. *)

val link_parameters : t -> string -> string -> float * float
(** [(latency, bandwidth)] currently in effect between two sites. *)
