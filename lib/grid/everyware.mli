(** EveryWare-style messaging between simulated processes.

    The paper's GridSAT components communicate through the EveryWare
    toolkit.  This layer provides the same service over the simulator:
    typed point-to-point messages between registered endpoints, delivered
    after the network transfer time for their payload size, with global
    traffic accounting.  Peer-to-peer subproblem transfers and
    master/client control traffic both go through here.

    Delivery is perfect unless a fault hook is installed (see
    {!set_fault}): fault injection can drop, delay, or duplicate any
    message at send time, which is how {!Fault} plans model lossy WAN
    links, partitions, and latency spikes. *)

type fault_decision =
  | Deliver  (** normal delivery after the transfer time *)
  | Drop  (** the message is lost; counted in {!messages_dropped} *)
  | Delay of float  (** delivered, but this many extra seconds late *)
  | Duplicate of float  (** delivered normally, plus a second copy this much later *)
  | Corrupt
      (** delivered on time, but the payload is passed through the hook
          installed with {!set_corrupt} (bit rot in flight); degrades to
          [Deliver] if no corruptor is installed *)

type 'msg t

val create : ?obs:Obs.t -> Sim.t -> Network.t -> 'msg t
(** [obs] (default [Obs.disabled]) receives send/drop/duplicate counters
    and per-site-pair message byte/latency histograms. *)

val register : 'msg t -> id:int -> site:string -> handler:(src:int -> 'msg -> unit) -> unit
(** Registers endpoint [id] at [site].  Re-registering replaces the
    handler (used when a client restarts on the same host). *)

val registered : 'msg t -> id:int -> bool
(** Whether [id] currently has an endpoint (a crashed master's endpoint
    disappears until its replacement re-registers). *)

val unregister : 'msg t -> id:int -> unit
(** Messages in flight to an unregistered endpoint are dropped silently
    (a crashed host). *)

val send : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Schedules delivery of [msg] after the transfer time from [src]'s site
    to [dst]'s site, subject to the fault hook.  Raises [Invalid_argument]
    if [src] is not registered; unknown destinations drop the message at
    delivery time. *)

val set_fault :
  'msg t -> (src_site:string -> dst_site:string -> bytes:int -> fault_decision) -> unit
(** Installs a delivery hook consulted once per {!send}.  The hook must be
    deterministic given the send sequence (seed any randomness) or runs
    stop being reproducible. *)

val clear_fault : 'msg t -> unit

val set_corrupt : 'msg t -> ('msg -> 'msg) -> unit
(** Installs the payload transform applied when the fault hook answers
    [Corrupt].  The transform models in-flight bit rot and must be
    deterministic; the protocol layer supplies one that garbles message
    content while leaving routing/framing headers readable. *)

val messages_sent : 'msg t -> int

val bytes_sent : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Messages the fault hook decided to drop. *)

val bytes_dropped : 'msg t -> int

val messages_corrupted : 'msg t -> int
(** Messages whose payload the fault hook garbled in flight. *)

val transfer_time : 'msg t -> src:int -> dst:int -> bytes:int -> float
(** The delay {!send} would apply right now (used by clients to record
    how long their problem took to arrive — the split-timeout base). *)
