type event_id = int

module Key = struct
  type t = { time : float; seq : int }

  let compare a b =
    match Float.compare a.time b.time with 0 -> compare a.seq b.seq | c -> c
end

module Pq = Map.Make (Key)

type t = {
  mutable clock : float;
  mutable queue : (unit -> unit) Pq.t;
  mutable next_seq : int;
  queued : (int, unit) Hashtbl.t;  (* seqs currently in the queue *)
  cancelled : (int, unit) Hashtbl.t;
  mutable fired : int;
  obs_on : bool;
  c_events : Obs.Metrics.counter;
  g_pending : Obs.Metrics.gauge;
}

let create ?(obs = Obs.disabled) () =
  {
    clock = 0.;
    queue = Pq.empty;
    next_seq = 0;
    queued = Hashtbl.create 64;
    cancelled = Hashtbl.create 64;
    fired = 0;
    obs_on = Obs.enabled obs;
    c_events = Obs.Metrics.counter (Obs.metrics obs) "sim.events";
    g_pending = Obs.Metrics.gauge (Obs.metrics obs) "sim.pending.max";
  }

let now t = t.clock

let schedule_at t ~time f =
  let time = Float.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.queue <- Pq.add { Key.time; seq } f t.queue;
  Hashtbl.replace t.queued seq ();
  if t.obs_on then Obs.Metrics.gauge_max t.g_pending (float_of_int (Pq.cardinal t.queue));
  seq

let schedule t ~delay f = schedule_at t ~time:(t.clock +. Float.max 0. delay) f

(* Only ids still in the queue are recorded: cancelling an already-fired or
   unknown id must stay a no-op, or [pending] undercounts forever. *)
let cancel t id = if Hashtbl.mem t.queued id then Hashtbl.replace t.cancelled id ()

let pending t = Pq.cardinal t.queue - Hashtbl.length t.cancelled

let events_fired t = t.fired

let rec step t =
  match Pq.min_binding_opt t.queue with
  | None -> false
  | Some (key, f) ->
      t.queue <- Pq.remove key t.queue;
      Hashtbl.remove t.queued key.Key.seq;
      if Hashtbl.mem t.cancelled key.Key.seq then begin
        Hashtbl.remove t.cancelled key.Key.seq;
        step t
      end
      else begin
        t.clock <- key.Key.time;
        t.fired <- t.fired + 1;
        if t.obs_on then Obs.Metrics.incr t.c_events;
        f ();
        true
      end

let run ?(max_events = max_int) t ~until =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match Pq.min_binding_opt t.queue with
    | None -> continue := false
    | Some (key, _) ->
        if key.Key.time > until then continue := false
        else if step t then incr fired
        else continue := false
  done
