type job_state = Queued | Running | Finished | Cancelled

type job = {
  id : int;
  nodes : int;
  wait : float;
  mutable state : job_state;
  mutable start_event : Sim.event_id option;
  mutable end_event : Sim.event_id option;
}

type t = { sim : Sim.t; mean_wait : float; seed : int; mutable next_id : int }

let create sim ~mean_wait ~seed =
  if mean_wait < 0. then invalid_arg "Batch.create: negative mean wait";
  { sim; mean_wait; seed; next_id = 0 }

(* Deterministic exponential draw from (seed, job id). *)
let draw_wait t id =
  let h = Hashtbl.hash (t.seed, id, 0x5bd1e995) in
  let u = (float_of_int (h land 0x3FFFFFFF) +. 1.) /. float_of_int 0x40000000 in
  t.mean_wait *. -.log u

let submit t ~nodes ~duration ~on_start ~on_end =
  if nodes <= 0 then invalid_arg "Batch.submit: nodes must be positive";
  if duration <= 0. then invalid_arg "Batch.submit: duration must be positive";
  let id = t.next_id in
  t.next_id <- id + 1;
  let job = { id; nodes; wait = draw_wait t id; state = Queued; start_event = None; end_event = None } in
  let start () =
    if job.state = Queued then begin
      job.state <- Running;
      job.end_event <-
        Some
          (Sim.schedule t.sim ~delay:duration (fun () ->
               if job.state = Running then begin
                 job.state <- Finished;
                 on_end ()
               end));
      on_start ()
    end
  in
  job.start_event <- Some (Sim.schedule t.sim ~delay:job.wait start);
  job

let cancel t job =
  match job.state with
  | Queued ->
      (match job.start_event with Some e -> Sim.cancel t.sim e | None -> ());
      job.state <- Cancelled
  | Running ->
      (match job.end_event with Some e -> Sim.cancel t.sim e | None -> ());
      job.state <- Cancelled
  | Finished | Cancelled -> ()

let state job = job.state

let queue_wait _t job = job.wait

let nodes job = job.nodes
