let window_size = 10

type predictor = {
  name : string;
  mutable prediction : float;
  mutable abs_error : float;
  update : t -> float -> float; (* series state + new value -> next prediction *)
}

and t = {
  mutable last : float;
  mutable count : int;
  mutable sum : float;
  window : float array; (* ring buffer of the last [window_size] values *)
  mutable window_fill : int;
  mutable window_pos : int;
  mutable predictors : predictor list;
  mutable adaptive_error : float;
}

let window_values t =
  let n = min t.window_fill window_size in
  Array.init n (fun i -> t.window.((t.window_pos - n + i + (2 * window_size)) mod window_size))

let predict_last t _v = t.last

let predict_mean t _v = if t.count = 0 then 1.0 else t.sum /. float_of_int t.count

let predict_window_mean t _v =
  let w = window_values t in
  if Array.length w = 0 then 1.0
  else Array.fold_left ( +. ) 0. w /. float_of_int (Array.length w)

let predict_window_median t _v =
  let w = window_values t in
  if Array.length w = 0 then 1.0
  else begin
    Array.sort Float.compare w;
    w.(Array.length w / 2)
  end

let create () =
  let mk name update = { name; prediction = 1.0; abs_error = 0.; update } in
  {
    last = 1.0;
    count = 0;
    sum = 0.;
    window = Array.make window_size 0.;
    window_fill = 0;
    window_pos = 0;
    predictors =
      [
        mk "last" predict_last;
        mk "mean" predict_mean;
        mk "window_mean" predict_window_mean;
        mk "window_median" predict_window_median;
      ];
    adaptive_error = 0.;
  }

let best t =
  match t.predictors with
  | [] -> assert false
  | first :: rest ->
      List.fold_left (fun acc p -> if p.abs_error < acc.abs_error then p else acc) first rest

let forecast t = if t.count = 0 then 1.0 else (best t).prediction

let best_predictor t = (best t).name

let observations t = t.count

let mae t = if t.count <= 1 then 0. else t.adaptive_error /. float_of_int (t.count - 1)

let observe t v =
  (* score the standing forecasts against the new measurement *)
  if t.count > 0 then begin
    t.adaptive_error <- t.adaptive_error +. Float.abs (forecast t -. v);
    List.iter (fun p -> p.abs_error <- p.abs_error +. Float.abs (p.prediction -. v)) t.predictors
  end;
  (* update series state *)
  t.last <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  t.window.(t.window_pos) <- v;
  t.window_pos <- (t.window_pos + 1) mod window_size;
  t.window_fill <- min (t.window_fill + 1) window_size;
  (* refresh every predictor's next-step forecast *)
  List.iter (fun p -> p.prediction <- p.update t v) t.predictors
