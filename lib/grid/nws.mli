(** Network Weather Service style forecaster.

    The real NWS runs a family of cheap predictors over each measurement
    series and forecasts with whichever predictor has accumulated the
    lowest error so far (a mixture of experts).  GridSAT's master uses
    these forecasts to rank resources (paper Section 3.3).  This module
    reproduces that scheme over the simulated availability traces. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Feeds the next measurement of the series. *)

val forecast : t -> float
(** Predicted next value.  Before any observation, returns [1.0]
    (optimistic, like an unloaded host). *)

val best_predictor : t -> string
(** Name of the currently winning predictor ("last", "mean",
    "window_mean" or "window_median"). *)

val observations : t -> int

val mae : t -> float
(** Mean absolute error of the adaptive forecast so far. *)
