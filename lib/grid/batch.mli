(** Batch-controlled system (the IBM Blue Horizon in the paper).

    A job asks for a number of nodes for a maximum duration.  It waits in
    the queue for a long, variable time (the paper reports ~33 hours on
    average for a 100-node, 12-hour job), then runs with exclusive access
    and ends when its duration expires or it is cancelled.  GridSAT
    submits such a job at startup, absorbs the queue wait with interactive
    resources, and cancels the job if the instance is solved early. *)

type t

type job

type job_state = Queued | Running | Finished | Cancelled

val create : Sim.t -> mean_wait:float -> seed:int -> t
(** Queue waits are deterministic draws from an exponential-ish
    distribution with the given mean (hash-seeded). *)

val submit :
  t ->
  nodes:int ->
  duration:float ->
  on_start:(unit -> unit) ->
  on_end:(unit -> unit) ->
  job
(** [on_start] fires when the nodes are allocated; [on_end] when the job
    reaches its duration limit (not on cancellation). *)

val cancel : t -> job -> unit
(** Cancels a queued job (it never starts) or kills a running one
    ([on_end] is not called). *)

val state : job -> job_state

val queue_wait : t -> job -> float
(** The wait this job was/will be assigned. *)

val nodes : job -> int
