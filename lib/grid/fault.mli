(** Deterministic, seeded fault injection (paper Section 3.3's premise).

    Grid resources are unreliable: clients die, batch partitions expire,
    and wide-area links are slow and lossy.  A fault {e plan} scripts such
    conditions against the {!Sim} clock so a run can be subjected to the
    same faults, in the same order, on every execution:

    - {!Crash_host}: the host process dies silently at time [at] — nothing
      tells the master; it must {e detect} the death (missed heartbeats).
    - {!Hang_host}: the host stops responding at [at] but is not known
      dead (a wedged process or an unreachable NAT'd node).
    - {!Drop_messages}: each message on a link (either direction; [None]
      matches any site) is lost with probability [p] during a window.
    - {!Partition_site}: every message crossing the site boundary is lost
      during the window (an expired reservation, a downed uplink).
    - {!Latency_spike}: messages on a link arrive [extra] seconds late
      during the window.
    - {!Duplicate_messages}: each message is delivered twice with
      probability [p] (retransmission storms); the receiver-side dedup of
      the reliable-delivery layer must absorb the copies.

    Crash/hang actions are scheduled on the simulator when the plan is
    {!arm}ed; message faults are evaluated per send through
    {!Everyware.set_fault} with a private seeded RNG, so the whole run
    stays reproducible. *)

type spec =
  | Crash_host of { host : int; at : float }
  | Hang_host of { host : int; at : float }
  | Crash_master of { at : float; restart_after : float }
      (** the master process dies at [at] (volatile state lost, endpoint
          gone) and a replacement replays the journal [restart_after]
          seconds later.  Clients keep solving autonomously in between.
          [restart_after = infinity] means no replacement ever starts —
          the shape used under hot-standby replication, where the
          standby's lease expiry promotes it instead. *)
  | Drop_messages of {
      src_site : string option;
      dst_site : string option;
      p : float;
      from_t : float;
      until_t : float;
    }
  | Partition_site of { site : string; from_t : float; until_t : float }
  | Latency_spike of {
      src_site : string option;
      dst_site : string option;
      extra : float;
      from_t : float;
      until_t : float;
    }
  | Duplicate_messages of { p : float; extra : float; from_t : float; until_t : float }
  | Corrupt_messages of {
      src_site : string option;
      dst_site : string option;
      p : float;
      from_t : float;
      until_t : float;
    }
      (** each message on a matching link has its payload garbled in flight
          with probability [p] during the window — the receiver gets the
          message on time, but its content is trash.  A lost message beats a
          garbled one when both fire. *)
  | Corrupt_storage of { at : float; journal_records : int; checkpoints : bool }
      (** at time [at], rot the newest [journal_records] write-ahead journal
          records and (if [checkpoints]) every checkpoint snapshot at rest *)
  | Slow_host of { host : int; at : float; factor : float }
      (** from time [at] on, the host computes [factor]× slower than its
          advertised speed ([factor] > 1 is a straggler; [factor] < 1 a
          speedup).  The host never misses a heartbeat — the slowdown is
          invisible to crash detection and must be caught by the health
          model's progress-rate signal. *)
  | Flaky_host of {
      host : int;
      factor : float;
      period : float;
      from_t : float;
      until_t : float;
    }
      (** oscillating speed: during [[from_t, until_t)] the host alternates
          between [factor]× slowdown (first half of each [period]) and full
          speed (second half); restored to full speed at [until_t]. *)
  | Choke_link of {
      src_site : string option;
      dst_site : string option;
      bytes_per_window : int;
      window : float;
      from_t : float;
      until_t : float;
    }
      (** a saturated link: during the window, each matching link (both
          directions share one ledger — the model is a physical pipe)
          delivers at most [bytes_per_window] bytes per [window] virtual
          seconds; messages beyond the budget are dropped and counted in
          [choked].  Deterministic — windows are a pure function of
          virtual time, no RNG draw is consumed. *)
  | Disk_full of { at : float; quota : int; until_t : float }
      (** the master's stable storage fills up: at [at] the journal's
          disk quota is forced down to [quota] bytes (emergency
          compaction, then journaled-degraded mode if still over); at
          [until_t] (if finite) the quota is lifted — relief after an
          operator cleaned the disk. *)

type counters = {
  crashes : int;
  hangs : int;
  master_crashes : int;
  dropped : int;  (** messages the plan decided to lose *)
  delayed : int;
  duplicated : int;
  corrupted : int;  (** messages whose payload the plan garbled in flight *)
  storage_corruptions : int;  (** [Corrupt_storage] actions fired *)
  slowdowns : int;  (** slowdown applications ([Slow_host] firings plus [Flaky_host] slow phases) *)
  choked : int;  (** messages dropped because a [Choke_link] byte window was exhausted *)
  disk_fulls : int;  (** [Disk_full] actions fired (relief events are not counted) *)
}

type t

val arm :
  sim:Sim.t ->
  seed:int ->
  on_crash:(int -> unit) ->
  on_hang:(int -> unit) ->
  ?on_master_crash:(unit -> unit) ->
  ?on_master_restart:(unit -> unit) ->
  ?on_storage_corrupt:(journal_records:int -> checkpoints:bool -> unit) ->
  ?on_slow:(int -> float -> unit) ->
  ?on_disk_full:(quota:int -> unit) ->
  spec list ->
  t
(** Schedules the plan's crash/hang actions on [sim] and returns the
    controller whose {!decide} implements the message faults.  [on_crash]
    and [on_hang] receive the host id at the scripted instant;
    [on_master_crash] / [on_master_restart] (default no-ops) fire at a
    {!Crash_master} spec's [at] and [at +. restart_after];
    [on_storage_corrupt] (default no-op) fires at a {!Corrupt_storage}
    spec's [at] with the spec's scope; [on_slow] (default no-op) receives
    [(host, factor)] at every {!Slow_host} / {!Flaky_host} speed change
    ([factor = 1.0] restores full speed); [on_disk_full] (default no-op)
    fires at a {!Disk_full} spec's [at] with the injected quota and again
    at [until_t] with [quota = 0] (relief). *)

val decide :
  t -> src_site:string -> dst_site:string -> bytes:int -> Everyware.fault_decision
(** The {!Everyware.set_fault} hook for this plan. *)

val counters : t -> counters
(** How many faults the plan has injected so far. *)

val validate : spec list -> (unit, string) result
(** Rejects malformed plans with a descriptive message: probabilities
    outside [[0, 1]], windows whose [until_t] precedes [from_t], negative
    times, delays or record counts, non-positive slowdown factors or
    periods, and overlapping {!Slow_host}/{!Flaky_host} windows on one
    host (the last toggle would win, making the schedule ambiguous).
    Called by the {!Gridsat} entry points before a plan is armed. *)
