(** Deterministic discrete-event simulator.

    The whole Grid substrate (network transfers, compute slices, batch
    queues) runs on virtual time managed here.  Events scheduled for the
    same instant fire in scheduling order, which makes every simulation
    fully deterministic. *)

type t

type event_id

val create : ?obs:Obs.t -> unit -> t
(** [obs] (default [Obs.disabled]) receives an event counter and a
    max-queue-depth gauge. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] fires [f] at [now t +. delay].  Negative delays
    are clamped to zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Fires at an absolute time (clamped to [now]). *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or unknown event is a no-op. *)

val step : t -> bool
(** Processes the next event.  Returns [false] when no events remain. *)

val run : ?max_events:int -> t -> until:float -> unit
(** Processes events in order until the queue is empty, the next event
    lies beyond [until], or [max_events] have fired (safety valve,
    default unlimited).  The clock is left at the last fired event. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_fired : t -> int
