type t = {
  intra_latency : float;
  intra_bandwidth : float;
  default_latency : float;
  default_bandwidth : float;
  links : (string * string, float * float) Hashtbl.t;
}

let create ?(intra_latency = 0.0005) ?(intra_bandwidth = 100e6) ?(default_latency = 0.04)
    ?(default_bandwidth = 2e6) () =
  if intra_bandwidth <= 0. || default_bandwidth <= 0. then
    invalid_arg "Network.create: bandwidth must be positive";
  { intra_latency; intra_bandwidth; default_latency; default_bandwidth; links = Hashtbl.create 16 }

let canonical a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_link t a b ~latency ~bandwidth =
  if bandwidth <= 0. then invalid_arg "Network.set_link: bandwidth must be positive";
  Hashtbl.replace t.links (canonical a b) (latency, bandwidth)

let link_parameters t a b =
  if String.equal a b then
    match Hashtbl.find_opt t.links (canonical a b) with
    | Some p -> p
    | None -> (t.intra_latency, t.intra_bandwidth)
  else
    match Hashtbl.find_opt t.links (canonical a b) with
    | Some p -> p
    | None -> (t.default_latency, t.default_bandwidth)

let transfer_time t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Network.transfer_time: negative size";
  let latency, bandwidth = link_parameters t src dst in
  latency +. (float_of_int bytes /. bandwidth)
