type 'msg endpoint = { site : string; handler : src:int -> 'msg -> unit }

type 'msg t = {
  sim : Sim.t;
  net : Network.t;
  endpoints : (int, 'msg endpoint) Hashtbl.t;
  mutable messages : int;
  mutable bytes : int;
}

let create sim net = { sim; net; endpoints = Hashtbl.create 64; messages = 0; bytes = 0 }

let register t ~id ~site ~handler = Hashtbl.replace t.endpoints id { site; handler }

let unregister t ~id = Hashtbl.remove t.endpoints id

let site_of t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some e -> e.site
  | None -> invalid_arg (Printf.sprintf "Everyware: endpoint %d not registered" id)

let transfer_time t ~src ~dst ~bytes =
  Network.transfer_time t.net ~src:(site_of t src) ~dst:(site_of t dst) ~bytes

let send t ~src ~dst ~bytes msg =
  let src_site = site_of t src in
  let dst_site =
    match Hashtbl.find_opt t.endpoints dst with Some e -> e.site | None -> src_site
  in
  let delay = Network.transfer_time t.net ~src:src_site ~dst:dst_site ~bytes in
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  ignore
    (Sim.schedule t.sim ~delay (fun () ->
         match Hashtbl.find_opt t.endpoints dst with
         | Some e -> e.handler ~src msg
         | None -> () (* endpoint vanished while the message was in flight *)))

let messages_sent t = t.messages

let bytes_sent t = t.bytes
