type fault_decision = Deliver | Drop | Delay of float | Duplicate of float | Corrupt

type 'msg endpoint = { site : string; handler : src:int -> 'msg -> unit }

type 'msg t = {
  sim : Sim.t;
  net : Network.t;
  endpoints : (int, 'msg endpoint) Hashtbl.t;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable dropped_bytes : int;
  mutable corrupted : int;
  mutable fault : (src_site:string -> dst_site:string -> bytes:int -> fault_decision) option;
  mutable corruptor : ('msg -> 'msg) option;
  obs : Obs.t;
  obs_on : bool;
  c_sent : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_duplicated : Obs.Metrics.counter;
  c_corrupted : Obs.Metrics.counter;
  (* per-site-pair histograms, cached so a send never re-derives labels *)
  pair_hists : (string * string, Obs.Metrics.histogram * Obs.Metrics.histogram) Hashtbl.t;
}

let create ?(obs = Obs.disabled) sim net =
  let m = Obs.metrics obs in
  {
    sim;
    net;
    endpoints = Hashtbl.create 64;
    messages = 0;
    bytes = 0;
    dropped = 0;
    dropped_bytes = 0;
    corrupted = 0;
    fault = None;
    corruptor = None;
    obs;
    obs_on = Obs.enabled obs;
    c_sent = Obs.Metrics.counter m "net.messages.sent";
    c_dropped = Obs.Metrics.counter m "net.messages.dropped";
    c_duplicated = Obs.Metrics.counter m "net.messages.duplicated";
    c_corrupted = Obs.Metrics.counter m "net.messages.corrupted";
    pair_hists = Hashtbl.create 16;
  }

let register t ~id ~site ~handler = Hashtbl.replace t.endpoints id { site; handler }

let unregister t ~id = Hashtbl.remove t.endpoints id

let registered t ~id = Hashtbl.mem t.endpoints id

let set_fault t f = t.fault <- Some f

let clear_fault t = t.fault <- None

let set_corrupt t f = t.corruptor <- Some f

let site_of t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some e -> e.site
  | None -> invalid_arg (Printf.sprintf "Everyware: endpoint %d not registered" id)

let transfer_time t ~src ~dst ~bytes =
  Network.transfer_time t.net ~src:(site_of t src) ~dst:(site_of t dst) ~bytes

let pair_hists t ~src_site ~dst_site =
  match Hashtbl.find_opt t.pair_hists (src_site, dst_site) with
  | Some pair -> pair
  | None ->
      let labels = [ ("src", src_site); ("dst", dst_site) ] in
      let m = Obs.metrics t.obs in
      let pair =
        ( Obs.Metrics.histogram m ~labels "net.message.bytes",
          Obs.Metrics.histogram m ~labels "net.message.latency" )
      in
      Hashtbl.replace t.pair_hists (src_site, dst_site) pair;
      pair

let send t ~src ~dst ~bytes msg =
  let src_site = site_of t src in
  let dst_site =
    match Hashtbl.find_opt t.endpoints dst with Some e -> e.site | None -> src_site
  in
  let delay = Network.transfer_time t.net ~src:src_site ~dst:dst_site ~bytes in
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  if t.obs_on then begin
    Obs.Metrics.incr t.c_sent;
    let h_bytes, h_latency = pair_hists t ~src_site ~dst_site in
    Obs.Metrics.observe h_bytes (float_of_int bytes);
    Obs.Metrics.observe h_latency delay
  end;
  let deliver_msg extra m =
    ignore
      (Sim.schedule t.sim ~delay:(delay +. extra) (fun () ->
           match Hashtbl.find_opt t.endpoints dst with
           | Some e -> e.handler ~src m
           | None -> () (* endpoint vanished while the message was in flight *)))
  in
  let deliver extra = deliver_msg extra msg in
  let decision =
    match t.fault with None -> Deliver | Some f -> f ~src_site ~dst_site ~bytes
  in
  match decision with
  | Deliver -> deliver 0.
  | Drop ->
      t.dropped <- t.dropped + 1;
      t.dropped_bytes <- t.dropped_bytes + bytes;
      if t.obs_on then Obs.Metrics.incr t.c_dropped
  | Delay extra -> deliver (Float.max 0. extra)
  | Duplicate extra ->
      if t.obs_on then Obs.Metrics.incr t.c_duplicated;
      deliver 0.;
      deliver (Float.max 0. extra)
  | Corrupt -> (
      (* the payload bytes rot in flight; delivery timing is unchanged.
         Without an installed corruptor the decision degrades to Deliver
         (the bus does not know the message representation). *)
      match t.corruptor with
      | None -> deliver 0.
      | Some f ->
          t.corrupted <- t.corrupted + 1;
          if t.obs_on then Obs.Metrics.incr t.c_corrupted;
          deliver_msg 0. (f msg))

let messages_sent t = t.messages

let bytes_sent t = t.bytes

let messages_dropped t = t.dropped

let bytes_dropped t = t.dropped_bytes

let messages_corrupted t = t.corrupted
