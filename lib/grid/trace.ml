type t = float -> float

let clamp x = Float.max 0.05 (Float.min 1.0 x)

let constant a =
  let a = clamp a in
  fun _ -> a

let periodic ~mean ~amplitude ~period ~phase =
  if period <= 0. then invalid_arg "Trace.periodic: period must be positive";
  fun time -> clamp (mean +. (amplitude *. sin (((2. *. Float.pi) *. (time +. phase)) /. period)))

(* Deterministic uniform value in [0,1) from (seed, step). *)
let hash01 seed step =
  let h = Hashtbl.hash (seed, step, 0x9e3779b9) in
  float_of_int (h land 0x3FFFFFFF) /. float_of_int 0x40000000

let noisy ~seed ~mean ~amplitude ~interval =
  if interval <= 0. then invalid_arg "Trace.noisy: interval must be positive";
  fun time ->
    let step = int_of_float (Float.max 0. time /. interval) in
    let u = hash01 seed step in
    clamp (mean +. (amplitude *. ((2. *. u) -. 1.)))

let overlay a b time = clamp (a time *. b time)

let availability t time = clamp (t time)
