type kind = Interactive | Batch

type t = {
  id : int;
  name : string;
  site : string;
  speed : float;
  mem_bytes : int;
  kind : kind;
}

let make ~id ~name ~site ~speed ~mem_bytes ~kind =
  if speed <= 0. then invalid_arg "Resource.make: speed must be positive";
  if mem_bytes <= 0 then invalid_arg "Resource.make: memory must be positive";
  { id; name; site; speed; mem_bytes; kind }

let min_client_memory = 128 * 1024 * 1024

let usable_memory t = int_of_float (0.6 *. float_of_int t.mem_bytes)

let pp ppf t =
  Format.fprintf ppf "%s@%s (speed %.0f, mem %d MB%s)" t.name t.site t.speed
    (t.mem_bytes / (1024 * 1024))
    (match t.kind with Interactive -> "" | Batch -> ", batch")
