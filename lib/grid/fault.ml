type spec =
  | Crash_host of { host : int; at : float }
  | Hang_host of { host : int; at : float }
  | Crash_master of { at : float; restart_after : float }
  | Drop_messages of {
      src_site : string option;
      dst_site : string option;
      p : float;
      from_t : float;
      until_t : float;
    }
  | Partition_site of { site : string; from_t : float; until_t : float }
  | Latency_spike of {
      src_site : string option;
      dst_site : string option;
      extra : float;
      from_t : float;
      until_t : float;
    }
  | Duplicate_messages of { p : float; extra : float; from_t : float; until_t : float }
  | Corrupt_messages of {
      src_site : string option;
      dst_site : string option;
      p : float;
      from_t : float;
      until_t : float;
    }
  | Corrupt_storage of { at : float; journal_records : int; checkpoints : bool }
  | Slow_host of { host : int; at : float; factor : float }
  | Flaky_host of {
      host : int;
      factor : float;
      period : float;
      from_t : float;
      until_t : float;
    }
  | Choke_link of {
      src_site : string option;
      dst_site : string option;
      bytes_per_window : int;
      window : float;
      from_t : float;
      until_t : float;
    }
  | Disk_full of { at : float; quota : int; until_t : float }

type counters = {
  crashes : int;
  hangs : int;
  master_crashes : int;
  dropped : int;
  delayed : int;
  duplicated : int;
  corrupted : int;
  storage_corruptions : int;
  slowdowns : int;
  choked : int;
  disk_fulls : int;
}

(* Armed state of one Choke_link spec: per-link byte ledger for the
   current window.  Window indices are [floor ((now - from_t) / window)],
   a pure function of virtual time, so the same messages at the same
   instants always hit the same windows — no RNG involved. *)
type choke = {
  c_src : string option;
  c_dst : string option;
  c_budget : int;
  c_window : float;
  c_from : float;
  c_until : float;
  ledger : (string, int * int) Hashtbl.t;  (* link key -> (window idx, bytes used) *)
}

type t = {
  sim : Sim.t;
  specs : spec list;
  chokes : choke list;
  rng : Random.State.t;
  mutable crashes : int;
  mutable hangs : int;
  mutable master_crashes : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable storage_corruptions : int;
  mutable slowdowns : int;
  mutable choked : int;
  mutable disk_fulls : int;
}

let arm ~sim ~seed ~on_crash ~on_hang ?(on_master_crash = fun () -> ())
    ?(on_master_restart = fun () -> ())
    ?(on_storage_corrupt = fun ~journal_records:_ ~checkpoints:_ -> ())
    ?(on_slow = fun _host _factor -> ())
    ?(on_disk_full = fun ~quota:_ -> ()) specs =
  let chokes =
    List.filter_map
      (function
        | Choke_link { src_site; dst_site; bytes_per_window; window; from_t; until_t } ->
            Some
              {
                c_src = src_site;
                c_dst = dst_site;
                c_budget = bytes_per_window;
                c_window = window;
                c_from = from_t;
                c_until = until_t;
                ledger = Hashtbl.create 16;
              }
        | _ -> None)
      specs
  in
  let t =
    {
      sim;
      specs;
      chokes;
      rng = Random.State.make [| seed; 0x5eed |];
      crashes = 0;
      hangs = 0;
      master_crashes = 0;
      dropped = 0;
      delayed = 0;
      duplicated = 0;
      corrupted = 0;
      storage_corruptions = 0;
      slowdowns = 0;
      choked = 0;
      disk_fulls = 0;
    }
  in
  List.iter
    (function
      | Crash_host { host; at } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.crashes <- t.crashes + 1;
                 on_crash host))
      | Hang_host { host; at } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.hangs <- t.hangs + 1;
                 on_hang host))
      | Crash_master { at; restart_after } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.master_crashes <- t.master_crashes + 1;
                 on_master_crash ()));
          (* restart_after = infinity means the old master never comes
             back (a hot standby is expected to take over); scheduling an
             infinite-time event would drag the virtual clock along *)
          if restart_after < infinity then
            ignore (Sim.schedule_at sim ~time:(at +. restart_after) (fun () -> on_master_restart ()))
      | Corrupt_storage { at; journal_records; checkpoints } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.storage_corruptions <- t.storage_corruptions + 1;
                 on_storage_corrupt ~journal_records ~checkpoints))
      | Slow_host { host; at; factor } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.slowdowns <- t.slowdowns + 1;
                 on_slow host factor))
      | Flaky_host { host; factor; period; from_t; until_t } ->
          (* Oscillation: slow for the first half of each period, restored
             for the second.  Each toggle schedules the next, so the chain
             supports an unbounded window without flooding the calendar. *)
          let rec toggle time slow_next =
            if time < until_t then
              ignore
                (Sim.schedule_at sim ~time (fun () ->
                     if slow_next then begin
                       t.slowdowns <- t.slowdowns + 1;
                       on_slow host factor
                     end
                     else on_slow host 1.0;
                     toggle (time +. (period /. 2.)) (not slow_next)))
          in
          toggle from_t true;
          if until_t < infinity then
            ignore (Sim.schedule_at sim ~time:until_t (fun () -> on_slow host 1.0))
      | Disk_full { at; quota; until_t } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.disk_fulls <- t.disk_fulls + 1;
                 on_disk_full ~quota));
          (* quota relief: the disk was cleaned up / extended *)
          if until_t < infinity then
            ignore (Sim.schedule_at sim ~time:until_t (fun () -> on_disk_full ~quota:0))
      | Drop_messages _ | Partition_site _ | Latency_spike _ | Duplicate_messages _
      | Corrupt_messages _ | Choke_link _ ->
          ())
    specs;
  t

let site_matches pattern site =
  match pattern with None -> true | Some s -> String.equal s site

(* A link spec matches in either direction: the paper's faults (expired
   reservations, saturated links) do not care who initiated the transfer. *)
let link_matches ~a ~b ~src_site ~dst_site =
  (site_matches a src_site && site_matches b dst_site)
  || (site_matches a dst_site && site_matches b src_site)

let in_window now ~from_t ~until_t = now >= from_t && now < until_t

(* A choked link's ledger is keyed by the unordered site pair — the model
   is a saturated physical link, whose capacity both directions share. *)
let choke_key ~src_site ~dst_site =
  if String.compare src_site dst_site <= 0 then src_site ^ "|" ^ dst_site
  else dst_site ^ "|" ^ src_site

(* Charge [bytes] against every matching choke's current window; the
   first refusal chokes the message.  Purely arithmetic on virtual time —
   same messages at the same instants always choke identically. *)
let choke_admits t ~now ~src_site ~dst_site ~bytes =
  List.for_all
    (fun c ->
      if
        in_window now ~from_t:c.c_from ~until_t:c.c_until
        && link_matches ~a:c.c_src ~b:c.c_dst ~src_site ~dst_site
      then begin
        let key = choke_key ~src_site ~dst_site in
        let w = int_of_float (floor ((now -. c.c_from) /. c.c_window)) in
        let used =
          match Hashtbl.find_opt c.ledger key with
          | Some (w', u) when w' = w -> u
          | _ -> 0
        in
        if used + bytes <= c.c_budget then begin
          Hashtbl.replace c.ledger key (w, used + bytes);
          true
        end
        else false
      end
      else true)
    t.chokes

(* Evaluated once per message at send time.  A partition or probabilistic
   drop short-circuits, then a choked link's exhausted byte window;
   otherwise latency spikes accumulate and a duplication draw may fire on
   top. *)
let decide t ~src_site ~dst_site ~bytes =
  let now = Sim.now t.sim in
  let dropped =
    List.exists
      (function
        | Partition_site { site; from_t; until_t } ->
            in_window now ~from_t ~until_t
            && (String.equal site src_site <> String.equal site dst_site)
        | Drop_messages { src_site = a; dst_site = b; p; from_t; until_t } ->
            in_window now ~from_t ~until_t
            && link_matches ~a ~b ~src_site ~dst_site
            && Random.State.float t.rng 1.0 < p
        | Crash_host _ | Hang_host _ | Crash_master _ | Latency_spike _ | Duplicate_messages _
        | Corrupt_messages _ | Corrupt_storage _ | Slow_host _ | Flaky_host _ | Choke_link _
        | Disk_full _ ->
            false)
      t.specs
  in
  if dropped then begin
    t.dropped <- t.dropped + 1;
    Everyware.Drop
  end
  else if t.chokes <> [] && not (choke_admits t ~now ~src_site ~dst_site ~bytes) then begin
    t.choked <- t.choked + 1;
    t.dropped <- t.dropped + 1;
    Everyware.Drop
  end
  else if
    (* a lost message beats a garbled one; a garbled one beats mere lateness
       (the payload is already trash, extra delay adds nothing to the model) *)
    List.exists
      (function
        | Corrupt_messages { src_site = a; dst_site = b; p; from_t; until_t } ->
            in_window now ~from_t ~until_t
            && link_matches ~a ~b ~src_site ~dst_site
            && Random.State.float t.rng 1.0 < p
        | _ -> false)
      t.specs
  then begin
    t.corrupted <- t.corrupted + 1;
    Everyware.Corrupt
  end
  else begin
    let extra_delay =
      List.fold_left
        (fun acc spec ->
          match spec with
          | Latency_spike { src_site = a; dst_site = b; extra; from_t; until_t }
            when in_window now ~from_t ~until_t && link_matches ~a ~b ~src_site ~dst_site ->
              acc +. extra
          | _ -> acc)
        0. t.specs
    in
    let duplicate_after =
      List.fold_left
        (fun acc spec ->
          match (acc, spec) with
          | None, Duplicate_messages { p; extra; from_t; until_t }
            when in_window now ~from_t ~until_t && Random.State.float t.rng 1.0 < p ->
              Some extra
          | _ -> acc)
        None t.specs
    in
    match (extra_delay, duplicate_after) with
    | 0., None -> Everyware.Deliver
    | 0., Some extra ->
        t.duplicated <- t.duplicated + 1;
        Everyware.Duplicate extra
    | d, None ->
        t.delayed <- t.delayed + 1;
        Everyware.Delay d
    | d, Some _ ->
        (* a delayed link also duplicating: count the dominant effect *)
        t.delayed <- t.delayed + 1;
        Everyware.Delay d
  end

let counters t =
  {
    crashes = t.crashes;
    hangs = t.hangs;
    master_crashes = t.master_crashes;
    dropped = t.dropped;
    delayed = t.delayed;
    duplicated = t.duplicated;
    corrupted = t.corrupted;
    storage_corruptions = t.storage_corruptions;
    slowdowns = t.slowdowns;
    choked = t.choked;
    disk_fulls = t.disk_fulls;
  }

let validate specs =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let prob what p = if p < 0. || p > 1. then Some (what, p) else None in
  let window what ~from_t ~until_t =
    if until_t < from_t then err "%s: until_t (%g) precedes from_t (%g)" what until_t from_t
    else Ok ()
  in
  let check = function
    | Crash_host { at; _ } | Hang_host { at; _ } ->
        if at < 0. then err "crash/hang time must be non-negative, got %g" at else Ok ()
    | Crash_master { at; restart_after } ->
        if at < 0. then err "Crash_master: at must be non-negative, got %g" at
        else if restart_after < 0. then
          err "Crash_master: restart_after must be non-negative, got %g" restart_after
        else Ok ()
    | Drop_messages { p; from_t; until_t; _ } -> (
        match prob "Drop_messages" p with
        | Some (what, p) -> err "%s: probability %g outside [0, 1]" what p
        | None -> window "Drop_messages" ~from_t ~until_t)
    | Partition_site { from_t; until_t; _ } -> window "Partition_site" ~from_t ~until_t
    | Latency_spike { extra; from_t; until_t; _ } ->
        if extra < 0. then err "Latency_spike: extra must be non-negative, got %g" extra
        else window "Latency_spike" ~from_t ~until_t
    | Duplicate_messages { p; extra; from_t; until_t } -> (
        match prob "Duplicate_messages" p with
        | Some (what, p) -> err "%s: probability %g outside [0, 1]" what p
        | None ->
            if extra < 0. then err "Duplicate_messages: extra must be non-negative, got %g" extra
            else window "Duplicate_messages" ~from_t ~until_t)
    | Corrupt_messages { p; from_t; until_t; _ } -> (
        match prob "Corrupt_messages" p with
        | Some (what, p) -> err "%s: probability %g outside [0, 1]" what p
        | None -> window "Corrupt_messages" ~from_t ~until_t)
    | Corrupt_storage { at; journal_records; _ } ->
        if at < 0. then err "Corrupt_storage: at must be non-negative, got %g" at
        else if journal_records < 0 then
          err "Corrupt_storage: journal_records must be non-negative, got %d" journal_records
        else Ok ()
    | Slow_host { at; factor; _ } ->
        if at < 0. then err "Slow_host: at must be non-negative, got %g" at
        else if factor <= 0. then err "Slow_host: factor must be positive, got %g" factor
        else Ok ()
    | Flaky_host { factor; period; from_t; until_t; _ } ->
        if factor <= 0. then err "Flaky_host: factor must be positive, got %g" factor
        else if period <= 0. then err "Flaky_host: period must be positive, got %g" period
        else window "Flaky_host" ~from_t ~until_t
    | Choke_link { bytes_per_window; window = w; from_t; until_t; _ } ->
        if bytes_per_window < 1 then
          err "Choke_link: bytes_per_window must be at least 1, got %d" bytes_per_window
        else if w <= 0. then err "Choke_link: window must be positive, got %g" w
        else window "Choke_link" ~from_t ~until_t
    | Disk_full { at; quota; until_t } ->
        if at < 0. then err "Disk_full: at must be non-negative, got %g" at
        else if quota < 1 then err "Disk_full: quota must be at least 1 byte, got %d" quota
        else if until_t < at then
          err "Disk_full: until_t (%g) precedes at (%g)" until_t at
        else Ok ()
  in
  (* Two speed faults targeting the same host with overlapping windows
     would fight over the slowdown factor (last toggle wins), making the
     injected schedule ambiguous — reject the plan instead. *)
  let speed_windows =
    List.filter_map
      (function
        | Slow_host { host; at; _ } -> Some (host, at, infinity, "Slow_host")
        | Flaky_host { host; from_t; until_t; _ } -> Some (host, from_t, until_t, "Flaky_host")
        | _ -> None)
      specs
  in
  let rec overlap = function
    | [] -> Ok ()
    | (host, f1, u1, n1) :: rest -> (
        match
          List.find_opt (fun (h, f2, u2, _) -> h = host && f1 < u2 && f2 < u1) rest
        with
        | Some (_, _, _, n2) ->
            err "%s and %s overlap on host %d: one slowdown factor at a time" n1 n2 host
        | None -> overlap rest)
  in
  List.fold_left
    (fun acc spec -> match acc with Error _ -> acc | Ok () -> check spec)
    (Ok ()) specs
  |> function
  | Error _ as e -> e
  | Ok () -> overlap speed_windows
