type spec =
  | Crash_host of { host : int; at : float }
  | Hang_host of { host : int; at : float }
  | Crash_master of { at : float; restart_after : float }
  | Drop_messages of {
      src_site : string option;
      dst_site : string option;
      p : float;
      from_t : float;
      until_t : float;
    }
  | Partition_site of { site : string; from_t : float; until_t : float }
  | Latency_spike of {
      src_site : string option;
      dst_site : string option;
      extra : float;
      from_t : float;
      until_t : float;
    }
  | Duplicate_messages of { p : float; extra : float; from_t : float; until_t : float }

type counters = {
  crashes : int;
  hangs : int;
  master_crashes : int;
  dropped : int;
  delayed : int;
  duplicated : int;
}

type t = {
  sim : Sim.t;
  specs : spec list;
  rng : Random.State.t;
  mutable crashes : int;
  mutable hangs : int;
  mutable master_crashes : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
}

let arm ~sim ~seed ~on_crash ~on_hang ?(on_master_crash = fun () -> ())
    ?(on_master_restart = fun () -> ()) specs =
  let t =
    {
      sim;
      specs;
      rng = Random.State.make [| seed; 0x5eed |];
      crashes = 0;
      hangs = 0;
      master_crashes = 0;
      dropped = 0;
      delayed = 0;
      duplicated = 0;
    }
  in
  List.iter
    (function
      | Crash_host { host; at } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.crashes <- t.crashes + 1;
                 on_crash host))
      | Hang_host { host; at } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.hangs <- t.hangs + 1;
                 on_hang host))
      | Crash_master { at; restart_after } ->
          ignore
            (Sim.schedule_at sim ~time:at (fun () ->
                 t.master_crashes <- t.master_crashes + 1;
                 on_master_crash ()));
          ignore (Sim.schedule_at sim ~time:(at +. restart_after) (fun () -> on_master_restart ()))
      | Drop_messages _ | Partition_site _ | Latency_spike _ | Duplicate_messages _ -> ())
    specs;
  t

let site_matches pattern site =
  match pattern with None -> true | Some s -> String.equal s site

(* A link spec matches in either direction: the paper's faults (expired
   reservations, saturated links) do not care who initiated the transfer. *)
let link_matches ~a ~b ~src_site ~dst_site =
  (site_matches a src_site && site_matches b dst_site)
  || (site_matches a dst_site && site_matches b src_site)

let in_window now ~from_t ~until_t = now >= from_t && now < until_t

(* Evaluated once per message at send time.  A partition or probabilistic
   drop short-circuits; otherwise latency spikes accumulate and a
   duplication draw may fire on top. *)
let decide t ~src_site ~dst_site ~bytes:_ =
  let now = Sim.now t.sim in
  let dropped =
    List.exists
      (function
        | Partition_site { site; from_t; until_t } ->
            in_window now ~from_t ~until_t
            && (String.equal site src_site <> String.equal site dst_site)
        | Drop_messages { src_site = a; dst_site = b; p; from_t; until_t } ->
            in_window now ~from_t ~until_t
            && link_matches ~a ~b ~src_site ~dst_site
            && Random.State.float t.rng 1.0 < p
        | Crash_host _ | Hang_host _ | Crash_master _ | Latency_spike _ | Duplicate_messages _ ->
            false)
      t.specs
  in
  if dropped then begin
    t.dropped <- t.dropped + 1;
    Everyware.Drop
  end
  else begin
    let extra_delay =
      List.fold_left
        (fun acc spec ->
          match spec with
          | Latency_spike { src_site = a; dst_site = b; extra; from_t; until_t }
            when in_window now ~from_t ~until_t && link_matches ~a ~b ~src_site ~dst_site ->
              acc +. extra
          | _ -> acc)
        0. t.specs
    in
    let duplicate_after =
      List.fold_left
        (fun acc spec ->
          match (acc, spec) with
          | None, Duplicate_messages { p; extra; from_t; until_t }
            when in_window now ~from_t ~until_t && Random.State.float t.rng 1.0 < p ->
              Some extra
          | _ -> acc)
        None t.specs
    in
    match (extra_delay, duplicate_after) with
    | 0., None -> Everyware.Deliver
    | 0., Some extra ->
        t.duplicated <- t.duplicated + 1;
        Everyware.Duplicate extra
    | d, None ->
        t.delayed <- t.delayed + 1;
        Everyware.Delay d
    | d, Some _ ->
        (* a delayed link also duplicating: count the dominant effect *)
        t.delayed <- t.delayed + 1;
        Everyware.Delay d
  end

let counters t =
  {
    crashes = t.crashes;
    hangs = t.hangs;
    master_crashes = t.master_crashes;
    dropped = t.dropped;
    delayed = t.delayed;
    duplicated = t.duplicated;
  }
