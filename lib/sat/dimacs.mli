(** DIMACS CNF reader and writer.

    Accepts the usual format: optional [c ...] comment lines, one
    [p cnf <vars> <clauses>] header, then whitespace-separated signed
    integers with [0] terminating each clause.  The declared clause count
    is checked loosely (a mismatch is tolerated, as many archive files get
    it wrong), but literals must respect the declared variable count. *)

exception Parse_error of string

val parse_string : string -> Cnf.t
(** Parses a DIMACS document from a string.  Raises {!Parse_error}. *)

val parse_channel : in_channel -> Cnf.t

val parse_file : string -> Cnf.t

val to_string : Cnf.t -> string
(** Serialises a formula back to DIMACS. *)

val write_channel : out_channel -> Cnf.t -> unit

val write_file : string -> Cnf.t -> unit
