(** Satisfying assignments.

    A model is a total assignment of the variables [1 .. nvars].  GridSAT's
    master verifies every model reported by a client before declaring the
    instance satisfiable (paper Section 3.4); {!satisfies} is that check. *)

type t

val of_array : bool array -> t
(** [of_array a] wraps an assignment; [a.(v)] is the value of variable [v],
    index 0 is ignored. *)

val nvars : t -> int

val value : t -> int -> bool
(** [value m v] is the value of variable [v]. *)

val to_array : t -> bool array
(** Returns a copy of the underlying assignment. *)

val true_literals : t -> int list
(** The model as DIMACS-style signed integers, one per variable. *)

val satisfies : Cnf.t -> t -> bool
(** [satisfies cnf m] checks the model against every clause of [cnf].
    Raises [Invalid_argument] if the model covers fewer variables. *)

val pp : Format.formatter -> t -> unit
