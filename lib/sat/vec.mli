(** Growable arrays used throughout the solver's hot paths.

    A deliberately small imperative vector: amortised O(1) push, O(1)
    random access, and in-place compaction helpers used by the watch
    lists.  A [dummy] element fills unused capacity so the implementation
    never needs [Obj.magic]. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty vector whose spare slots hold [dummy]. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get t i] is element [i]; raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element; raises [Invalid_argument] if empty. *)

val last : 'a t -> 'a

val clear : 'a t -> unit
(** Logically empties the vector (keeps capacity, overwrites with dummy). *)

val shrink : 'a t -> int -> unit
(** [shrink t n] keeps the first [n] elements. *)

val swap_remove : 'a t -> int -> unit
(** [swap_remove t i] removes element [i] in O(1) by moving the last
    element into its place. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a -> 'a list -> 'a t
(** [of_list dummy xs] builds a vector from [xs]. *)

val copy : 'a t -> 'a t
