type 'a t = { mutable data : 'a array; mutable sz : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; sz = 0; dummy }

let size t = t.sz

let is_empty t = t.sz = 0

let check t i =
  if i < 0 || i >= t.sz then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.sz;
  t.data <- data

let push t v =
  if t.sz = Array.length t.data then grow t;
  t.data.(t.sz) <- v;
  t.sz <- t.sz + 1

let pop t =
  if t.sz = 0 then invalid_arg "Vec.pop: empty";
  t.sz <- t.sz - 1;
  let v = t.data.(t.sz) in
  t.data.(t.sz) <- t.dummy;
  v

let last t =
  if t.sz = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.sz - 1)

let clear t =
  Array.fill t.data 0 t.sz t.dummy;
  t.sz <- 0

let shrink t n =
  if n < 0 || n > t.sz then invalid_arg "Vec.shrink";
  Array.fill t.data n (t.sz - n) t.dummy;
  t.sz <- n

let swap_remove t i =
  check t i;
  t.data.(i) <- t.data.(t.sz - 1);
  t.data.(t.sz - 1) <- t.dummy;
  t.sz <- t.sz - 1

let iter f t =
  for i = 0 to t.sz - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.sz - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.sz - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.sz && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.sz - 1) []

let of_list dummy xs =
  let t = create ~capacity:(max 1 (List.length xs)) dummy in
  List.iter (push t) xs;
  t

let copy t = { data = Array.copy t.data; sz = t.sz; dummy = t.dummy }
