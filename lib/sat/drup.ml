module T = Types

type step = Add of T.lit array | Delete of T.lit array

type t = step list

(* A small, self-contained unit-propagation engine over occurrence lists.
   Deliberately independent of the CDCL solver: it shares no code with it,
   so a checked proof does not trust the solver's propagation. *)
module Engine = struct
  type engine = {
    nvars : int;
    mutable clauses : T.lit array array;
    mutable nclauses : int;
    mutable deleted : bool array;
    occ : int list array; (* literal -> indices of clauses containing it *)
  }

  let create nvars =
    {
      nvars;
      clauses = Array.make 16 [||];
      nclauses = 0;
      deleted = Array.make 16 false;
      occ = Array.make (2 * (nvars + 1)) [];
    }

  let add e lits =
    if e.nclauses = Array.length e.clauses then begin
      let clauses = Array.make (2 * e.nclauses) [||] in
      Array.blit e.clauses 0 clauses 0 e.nclauses;
      e.clauses <- clauses;
      let deleted = Array.make (2 * e.nclauses) false in
      Array.blit e.deleted 0 deleted 0 e.nclauses;
      e.deleted <- deleted
    end;
    let idx = e.nclauses in
    e.clauses.(idx) <- lits;
    e.nclauses <- idx + 1;
    Array.iter (fun l -> e.occ.(l) <- idx :: e.occ.(l)) lits

  (* Lenient deletion (standard for DRUP): remove one clause with exactly
     these literals as a set; ignore if absent. *)
  let delete e lits =
    let target = List.sort_uniq compare (Array.to_list lits) in
    let matches idx =
      (not e.deleted.(idx))
      && List.sort_uniq compare (Array.to_list e.clauses.(idx)) = target
    in
    match lits with
    | [||] -> ()
    | _ ->
        let candidates = e.occ.(lits.(0)) in
        (match List.find_opt matches candidates with
        | Some idx -> e.deleted.(idx) <- true
        | None -> ())

  (* Unit propagation starting from [assumptions] (literals taken as true).
     Returns [true] iff a conflict is reached.  Fresh assignment state per
     call. *)
  let propagates_to_conflict e assumptions =
    let value = Array.make (e.nvars + 1) T.Unknown in
    let lit_value l = T.lit_value value.(T.var l) l in
    let queue = Queue.create () in
    let conflict = ref false in
    let assign l =
      match lit_value l with
      | T.True -> ()
      | T.False -> conflict := true
      | T.Unknown ->
          value.(T.var l) <- (if T.is_pos l then T.True else T.False);
          Queue.push l queue
    in
    List.iter assign assumptions;
    (* also propagate pre-existing unit clauses *)
    for idx = 0 to e.nclauses - 1 do
      if (not e.deleted.(idx)) && Array.length e.clauses.(idx) = 1 then
        assign e.clauses.(idx).(0)
    done;
    while (not !conflict) && not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      let falsified = T.negate l in
      List.iter
        (fun idx ->
          if (not !conflict) && not e.deleted.(idx) then begin
            let lits = e.clauses.(idx) in
            let satisfied = ref false in
            let unassigned = ref [] in
            Array.iter
              (fun q ->
                match lit_value q with
                | T.True -> satisfied := true
                | T.Unknown -> unassigned := q :: !unassigned
                | T.False -> ())
              lits;
            if not !satisfied then
              match !unassigned with
              | [] -> conflict := true
              | [ u ] -> assign u
              | _ -> ()
          end)
        e.occ.(falsified)
    done;
    !conflict
end

let check_clause_rup cnf earlier clause =
  let e = Engine.create (Cnf.nvars cnf) in
  Cnf.iter (Engine.add e) cnf;
  List.iter (Engine.add e) earlier;
  Engine.propagates_to_conflict e (List.map T.negate (Array.to_list clause))

(* Proof text arriving over the network is untrusted: a literal whose
   variable exceeds the formula's range would index out of the engine's
   arrays, so every step is bounds-checked before it touches the engine. *)
let check_under cnf ~assumptions proof =
  let nvars = Cnf.nvars cnf in
  let in_bounds l =
    let v = T.var l in
    v >= 1 && v <= nvars
  in
  let bad_lits lits = List.find_opt (fun l -> not (in_bounds l)) (Array.to_list lits) in
  let e = Engine.create nvars in
  Cnf.iter (Engine.add e) cnf;
  let rec replay i = function
    | [] ->
        (* implicit final empty clause: the accumulated database must be
           unit-refutable under the assumptions *)
        if Engine.propagates_to_conflict e assumptions then Ok ()
        else Error "proof does not derive the empty clause"
    | Add [||] :: _ ->
        if Engine.propagates_to_conflict e assumptions then Ok ()
        else Error (Printf.sprintf "step %d: explicit empty clause is not RUP" i)
    | Add lits :: rest -> (
        match bad_lits lits with
        | Some l -> Error (Printf.sprintf "step %d: literal %d out of range" i (T.to_int l))
        | None ->
            let negated = List.map T.negate (Array.to_list lits) in
            if Engine.propagates_to_conflict e (assumptions @ negated) then begin
              Engine.add e lits;
              replay (i + 1) rest
            end
            else Error (Format.asprintf "step %d: clause %a is not RUP" i T.pp_clause lits))
    | Delete lits :: rest -> (
        match bad_lits lits with
        | Some l -> Error (Printf.sprintf "step %d: literal %d out of range" i (T.to_int l))
        | None ->
            Engine.delete e lits;
            replay (i + 1) rest)
  in
  match List.find_opt (fun l -> not (in_bounds l)) assumptions with
  | Some l -> Error (Printf.sprintf "assumption literal %d out of range" (T.to_int l))
  | None -> if Cnf.has_empty_clause cnf then Ok () else replay 0 proof

let check cnf proof = check_under cnf ~assumptions:[] proof

(* ---------- DRUP text format ---------- *)

let to_string proof =
  let buf = Buffer.create 4096 in
  List.iter
    (fun step ->
      let lits, prefix = match step with Add l -> (l, "") | Delete l -> (l, "d ") in
      Buffer.add_string buf prefix;
      Array.iter (fun l -> Buffer.add_string buf (string_of_int (T.to_int l) ^ " ")) lits;
      Buffer.add_string buf "0\n")
    proof;
  Buffer.contents buf

let of_string text =
  let parse_line line =
    let line = String.trim line in
    if line = "" then None
    else begin
      let is_delete = String.length line >= 2 && line.[0] = 'd' && line.[1] = ' ' in
      let body = if is_delete then String.sub line 2 (String.length line - 2) else line in
      let ints =
        String.split_on_char ' ' body
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match int_of_string_opt s with
               | Some i -> i
               | None -> failwith ("Drup.of_string: not an integer: " ^ s))
      in
      match List.rev ints with
      | 0 :: rev_lits ->
          if List.mem 0 rev_lits then
            failwith "Drup.of_string: 0 inside a clause (truncated or merged lines?)";
          let lits = Array.of_list (List.rev_map T.lit_of_int rev_lits) in
          Some (if is_delete then Delete lits else Add lits)
      | _ -> failwith "Drup.of_string: line not terminated by 0"
    end
  in
  String.split_on_char '\n' text |> List.filter_map parse_line
