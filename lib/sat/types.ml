type lit = int

type value = True | False | Unknown

let pos v = v * 2

let neg v = (v * 2) + 1

let lit_of_int i =
  if i = 0 then invalid_arg "Types.lit_of_int: zero"
  else if i > 0 then pos i
  else neg (-i)

let to_int l =
  let v = l lsr 1 in
  if l land 1 = 0 then v else -v

let var l = l lsr 1

let is_pos l = l land 1 = 0

let negate l = l lxor 1

let lit_value v l =
  match v with
  | Unknown -> Unknown
  | True -> if is_pos l then True else False
  | False -> if is_pos l then False else True

let value_not = function
  | True -> False
  | False -> True
  | Unknown -> Unknown

let pp_lit ppf l = Format.fprintf ppf "%d" (to_int l)

let pp_value ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Unknown -> Format.pp_print_string ppf "unknown"

let pp_clause ppf lits =
  Format.pp_print_char ppf '(';
  Array.iteri
    (fun i l ->
      if i > 0 then Format.pp_print_string ppf " | ";
      pp_lit ppf l)
    lits;
  Format.pp_print_char ppf ')'
