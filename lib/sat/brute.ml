type result = Sat of Model.t | Unsat

let check_size cnf =
  let n = Cnf.nvars cnf in
  if n > 26 then invalid_arg "Brute: too many variables";
  n

let assignment_of_bits n bits =
  let a = Array.make (n + 1) false in
  for v = 1 to n do
    a.(v) <- bits land (1 lsl (v - 1)) <> 0
  done;
  a

let solve cnf =
  let n = check_size cnf in
  let rec loop bits =
    if bits >= 1 lsl n then Unsat
    else begin
      let a = assignment_of_bits n bits in
      if Cnf.eval cnf a then Sat (Model.of_array a) else loop (bits + 1)
    end
  in
  loop 0

let count_models cnf =
  let n = check_size cnf in
  let count = ref 0 in
  for bits = 0 to (1 lsl n) - 1 do
    if Cnf.eval cnf (assignment_of_bits n bits) then incr count
  done;
  !count
