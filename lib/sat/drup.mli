(** DRUP proof logging and checking.

    The paper's master verifies SAT answers by evaluating the model;
    nothing in 2003 verified UNSAT answers.  This module adds that,
    modern-style: the solver can log every learned clause (and deletion)
    as a DRUP proof, and {!check} replays the proof with a small,
    independent unit-propagation engine — each learned clause must be a
    reverse-unit-propagation (RUP) consequence of the clauses before it,
    and the proof must end in the empty clause.  A checked proof gives an
    end-to-end soundness guarantee that does not trust the solver.

    Proofs can also be (de)serialised in the standard DRUP text format
    used by SAT-competition checkers. *)

type step =
  | Add of Types.lit array  (** a learned clause, in derivation order *)
  | Delete of Types.lit array  (** an explicit deletion (optional in DRUP) *)

type t = step list
(** A proof, in derivation order. *)

val check : Cnf.t -> t -> (unit, string) result
(** [check cnf proof] verifies that every added clause is RUP with respect
    to the formula plus the previously added (and not yet deleted) clauses,
    and that the proof derives the empty clause (or an immediate root
    conflict).  Returns a diagnostic on failure. *)

val check_under : Cnf.t -> assumptions:Types.lit list -> t -> (unit, string) result
(** [check_under cnf ~assumptions proof] is {!check} relative to a set of
    assumed literals: every RUP test (and the final empty-clause check) is
    seeded with [assumptions] in addition to the negated clause.  A proof
    that checks certifies that [cnf /\ assumptions] is unsatisfiable —
    exactly what a guiding-path subproblem claims, with [assumptions] the
    branch's path literals.  This is how the master certifies each
    distributed UNSAT fragment: the fragment only needs to be valid under
    its own branch, not for the global formula.  Unit propagation is
    monotone under extra assumptions, so any proof accepted by {!check}
    is accepted here too.  Proof steps (and assumptions) mentioning
    variables outside the formula's range yield [Error], never an
    exception — proof text that crossed the network is untrusted input. *)

val check_clause_rup : Cnf.t -> Types.lit array list -> Types.lit array -> bool
(** [check_clause_rup cnf earlier clause] checks a single RUP step:
    asserting the negation of [clause] and unit-propagating over
    [cnf @ earlier] must yield a conflict. *)

val to_string : t -> string
(** Standard DRUP text ("d" lines for deletions, "0"-terminated). *)

val of_string : string -> t
(** Parses DRUP text.  Raises [Failure] on malformed input. *)
