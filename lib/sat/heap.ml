type t = {
  mutable heap : int array;
  mutable sz : int;
  pos : int array; (* variable -> index in [heap], or -1 when absent *)
  gt : int -> int -> bool;
}

let create ~nvars ~gt =
  { heap = Array.make (max 16 (nvars + 1)) 0; sz = 0; pos = Array.make (nvars + 1) (-1); gt }

let mem t v = t.pos.(v) >= 0

let is_empty t = t.sz = 0

let size t = t.sz

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.gt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.sz && t.gt t.heap.(l) t.heap.(!best) then best := l;
  if r < t.sz && t.gt t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let insert t v =
  if not (mem t v) then begin
    if t.sz = Array.length t.heap then begin
      let heap = Array.make (2 * t.sz) 0 in
      Array.blit t.heap 0 heap 0 t.sz;
      t.heap <- heap
    end;
    t.heap.(t.sz) <- v;
    t.pos.(v) <- t.sz;
    t.sz <- t.sz + 1;
    sift_up t (t.sz - 1)
  end

let remove_max t =
  if t.sz = 0 then raise Not_found;
  let top = t.heap.(0) in
  t.sz <- t.sz - 1;
  t.pos.(top) <- -1;
  if t.sz > 0 then begin
    let moved = t.heap.(t.sz) in
    t.heap.(0) <- moved;
    t.pos.(moved) <- 0;
    sift_down t 0
  end;
  top

let update t v =
  let i = t.pos.(v) in
  if i >= 0 then begin
    sift_up t i;
    sift_down t t.pos.(v)
  end

let rebuild t =
  for i = (t.sz / 2) - 1 downto 0 do
    sift_down t i
  done
