module T = Types

type clause = {
  mutable lits : T.lit array; (* lits.(0) and lits.(1) are the watched literals *)
  learned : bool;
  mutable activity : float;
  mutable deleted : bool;
}

type restart_strategy = Luby | Geometric of float | Fixed

type config = {
  decay_interval : int;
  decay_factor : float;
  restarts_enabled : bool;
  restart_base : int;
  restart_strategy : restart_strategy;
  mem_limit_bytes : int;
  learned_cap_factor : float;
  learned_cap_min : int;
  reduce_db_enabled : bool;
  share_export_max : int;
  capture_conflicts : bool;
  random_decision_freq : float;
  emit_proof : bool;
  minimize_learned : bool;
  phase_saving : bool;
  seed : int;
}

let default_config =
  {
    decay_interval = 256;
    decay_factor = 0.5;
    restarts_enabled = true;
    restart_base = 128;
    restart_strategy = Luby;
    mem_limit_bytes = 256 * 1024 * 1024;
    learned_cap_factor = 2.0;
    learned_cap_min = 5_000;
    reduce_db_enabled = true;
    share_export_max = 16;
    capture_conflicts = false;
    random_decision_freq = 0.02;
    emit_proof = false;
    minimize_learned = false;
    phase_saving = false;
    seed = 0;
  }

type outcome = Sat of Model.t | Unsat | Budget_exhausted | Mem_pressure

type conflict_info = {
  conflicting_clause : T.lit array;
  conflicting_var : int;
  implication_graph : (int * int * T.lit array option) list;
  learned : T.lit array;
  uip_var : int;
  backjump_level : int;
}

let dummy_clause = { lits = [||]; learned = false; activity = 0.; deleted = true }

(* A watch-list entry: the clause plus a "blocker" literal (some other
   literal of the clause, usually the other watch).  If the blocker is
   true the clause is satisfied and need not be dereferenced at all —
   the classic mem-traffic optimisation for two-watched-literal BCP. *)
type watcher = { c : clause; blocker : T.lit }

let dummy_watcher = { c = dummy_clause; blocker = 0 }

type t = {
  cfg : config;
  nvars : int;
  cnf : Cnf.t; (* the original formula, kept for model building *)
  assigns : T.value array; (* var -> value *)
  levels : int array; (* var -> decision level (valid when assigned) *)
  reasons : clause option array; (* var -> antecedent *)
  tainted : bool array;
      (* var -> the root-level assignment of this variable depends on a
         guiding-path assumption (so it is NOT implied by the global
         formula).  Tainted literals are kept inside clauses and re-enter
         learned clauses, which keeps every clause in the database — and
         hence every shared clause — valid for the global problem. *)
  score : float array; (* literal -> VSIDS counter *)
  watches : watcher Vec.t array; (* literal -> clauses watching that literal *)
  order : Heap.t;
  trail : T.lit Vec.t;
  trail_lim : int Vec.t; (* trail index where each decision level starts *)
  mutable qhead : int;
  clauses : clause Vec.t; (* original problem clauses *)
  learnts : clause Vec.t;
  mutable ok : bool;
  seen : bool array;
  phase : bool array; (* var -> last assigned polarity (for phase saving) *)
  mutable var_inc : float;
  mutable cla_inc : float;
  stats : Stats.t;
  mutable conflicts_since_restart : int;
  mutable restart_limit : int;
  mutable luby_index : int;
  mutable n_active_clauses : int;
  mutable db_lits : int; (* total literal slots across active clauses *)
  pending_foreign : T.lit array Queue.t;
  fresh_shares : T.lit array Queue.t;
  mutable last_learned : (T.lit array * int) option;
  mutable last_simplify_trail : int; (* root trail size at last simplification *)
  mutable proof_rev : Drup.step list; (* DRUP proof, newest step first *)
  rng : Random.State.t;
  (* telemetry: [obs_on] is the single hot-path guard; the instrument
     handles are resolved once at construction so recording is a mutable
     store, never a registry lookup *)
  obs : Obs.t;
  obs_on : bool;
  obs_tid : int;
  mutable obs_parent : Obs.Span.id; (* span to parent solver phases under *)
  h_bcp : Obs.Metrics.histogram;
  c_decisions : Obs.Metrics.counter;
  c_conflicts : Obs.Metrics.counter;
  c_learned : Obs.Metrics.counter;
  c_restarts : Obs.Metrics.counter;
}

let nvars t = t.nvars

let decision_level t = Vec.size t.trail_lim

let n_learned t = Vec.size t.learnts

let is_ok t = t.ok

let stats t = t.stats

let set_obs_parent t sid = t.obs_parent <- sid

(* Accounting: 48 bytes of per-clause overhead + 8 per literal slot. *)
let db_bytes t = (48 * t.n_active_clauses) + (8 * t.db_lits)

let value_of_var t v = t.assigns.(v)

let value_of_lit t l = T.lit_value t.assigns.(T.var l) l

(* Hot-path truth tests: pattern matches compile to constant-tag checks,
   unlike [=] which would call the polymorphic comparison. *)
let lit_true t l = match value_of_lit t l with T.True -> true | T.False | T.Unknown -> false

let lit_false t l = match value_of_lit t l with T.False -> true | T.True | T.Unknown -> false

let lit_unknown t l = match value_of_lit t l with T.Unknown -> true | T.True | T.False -> false

let var_unknown t v = match t.assigns.(v) with T.Unknown -> true | T.True | T.False -> false

let level_of_var t v =
  match t.assigns.(v) with
  | T.Unknown -> invalid_arg "Solver.level_of_var: unassigned variable"
  | T.True | T.False -> t.levels.(v)

let antecedent_of_var t v =
  match t.reasons.(v) with
  | Some c when not c.deleted -> Some (Array.copy c.lits)
  | Some _ | None -> None

let trail_literals t = Vec.to_list t.trail

let last_learned t = t.last_learned

let log_proof t step = if t.cfg.emit_proof then t.proof_rev <- step :: t.proof_rev

let proof t = List.rev t.proof_rev

let root_lits t =
  let stop = if Vec.is_empty t.trail_lim then Vec.size t.trail else Vec.get t.trail_lim 0 in
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (Vec.get t.trail i :: acc) in
  loop (stop - 1) []

let root_facts t = List.filter (fun l -> not t.tainted.(T.var l)) (root_lits t)

let root_path t = List.filter (fun l -> t.tainted.(T.var l)) (root_lits t)

(* ---------- VSIDS ---------- *)

let var_score score v = Float.max score.(T.pos v) score.(T.neg v)

let rescale_scores t =
  for l = 0 to Array.length t.score - 1 do
    t.score.(l) <- t.score.(l) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100;
  Heap.rebuild t.order

let bump_lit t l =
  t.score.(l) <- t.score.(l) +. t.var_inc;
  if t.score.(l) > 1e100 then rescale_scores t;
  Heap.update t.order (T.var l)

let decay_scores t = t.var_inc <- t.var_inc /. t.cfg.decay_factor

let bump_clause_activity t (c : clause) =
  if c.learned then begin
    c.activity <- c.activity +. t.cla_inc;
    if c.activity > 1e100 then begin
      Vec.iter (fun cl -> cl.activity <- cl.activity *. 1e-100) t.learnts;
      t.cla_inc <- t.cla_inc *. 1e-100
    end
  end

(* ---------- assignment primitives ---------- *)

(* [taint] is only consulted for root-level assignments without an
   antecedent clause; with an antecedent the taint is inherited from the
   clause's other literals. *)
let enqueue ?(taint = false) t l reason =
  let v = T.var l in
  t.assigns.(v) <- (if T.is_pos l then T.True else T.False);
  t.levels.(v) <- decision_level t;
  t.reasons.(v) <- reason;
  if decision_level t = 0 then begin
    t.tainted.(v) <-
      (match reason with
      | Some c -> Array.exists (fun q -> T.var q <> v && t.tainted.(T.var q)) c.lits
      | None -> taint);
    (* Root assignments are permanent, but their antecedents are not:
       [simplify_db] forgets them and [reduce_db] may then delete the
       clause, after which a proof checker's unit propagation could no
       longer re-derive the literal.  Persist each root literal as a unit
       proof step while its derivation is still in the database (it is RUP
       here: assumptions seed the guiding-path literals, propagation the
       rest).  The [emit_proof] guard is repeated to keep the step
       allocation off the hot path. *)
    if t.cfg.emit_proof then log_proof t (Drup.Add [| l |])
  end
  else t.tainted.(v) <- false;
  Vec.push t.trail l

let backtrack t level =
  if decision_level t > level then begin
    let keep = Vec.get t.trail_lim level in
    for i = Vec.size t.trail - 1 downto keep do
      let v = T.var (Vec.get t.trail i) in
      (match t.assigns.(v) with
      | T.True -> t.phase.(v) <- true
      | T.False -> t.phase.(v) <- false
      | T.Unknown -> ());
      t.assigns.(v) <- T.Unknown;
      t.reasons.(v) <- None;
      Heap.insert t.order v
    done;
    Vec.shrink t.trail keep;
    Vec.shrink t.trail_lim level;
    t.qhead <- keep
  end

(* ---------- propagation ---------- *)

let propagate t =
  let start = Obs.Clock.now () in
  let confl = ref None in
  let conflicted = ref false in
  while (not !conflicted) && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.stats.propagations <- t.stats.propagations + 1;
    let false_lit = T.negate p in
    let ws = t.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let w = Vec.get ws !i in
      incr i;
      let c = w.c in
      if c.deleted then () (* lazily dropped from the watch list *)
      else if !conflicted || lit_true t w.blocker then begin
        Vec.set ws !j w;
        incr j
      end
      else begin
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_true t first then begin
          Vec.set ws !j { c; blocker = first };
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && lit_false t c.lits.(!k) do
            incr k
          done;
          if !k < len then begin
            (* found a replacement watch; move the clause to its list *)
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push t.watches.(c.lits.(1)) { c; blocker = first }
          end
          else begin
            Vec.set ws !j w;
            incr j;
            if lit_false t first then begin
              confl := Some c;
              conflicted := true
            end
            else enqueue t first (Some c)
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  let dt = Obs.Clock.now () -. start in
  t.stats.bcp_seconds <- t.stats.bcp_seconds +. dt;
  if t.obs_on then Obs.Metrics.observe t.h_bcp dt;
  !confl

(* ---------- conflict analysis (FirstUIP) ---------- *)

let analyze t confl =
  let learnt = Vec.create 0 in
  Vec.push learnt 0 (* placeholder for the asserting literal *);
  let to_clear = Vec.create 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let reason_clause = ref confl in
  let index = ref (Vec.size t.trail - 1) in
  let dlevel = decision_level t in
  let finished = ref false in
  while not !finished do
    let c = !reason_clause in
    bump_clause_activity t c;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = T.var q in
      if not t.seen.(v) then begin
        if t.levels.(v) > 0 then begin
          t.seen.(v) <- true;
          Vec.push to_clear v;
          if t.levels.(v) >= dlevel then incr counter else Vec.push learnt q
        end
        else if t.tainted.(v) then begin
          (* root assumption: keep it so the learned clause stays
             globally valid and can be shared with every client *)
          t.seen.(v) <- true;
          Vec.push to_clear v;
          Vec.push learnt q
        end
      end
    done;
    while not t.seen.(T.var (Vec.get t.trail !index)) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    t.seen.(T.var !p) <- false;
    decr counter;
    if !counter = 0 then finished := true
    else
      reason_clause :=
        (match t.reasons.(T.var !p) with
        | Some c -> c
        | None -> assert false (* only the UIP can lack an antecedent *))
  done;
  Vec.set learnt 0 (T.negate !p);
  (* Optional local clause minimization (an extension beyond zChaff-2001):
     a non-asserting literal is redundant if every literal of its
     antecedent is already in the learned clause (seen) or is an untainted
     root fact.  Removing it is a self-subsuming resolution step, so the
     clause stays globally valid. *)
  let lits =
    if not t.cfg.minimize_learned then Array.init (Vec.size learnt) (Vec.get learnt)
    else begin
      let redundant q =
        let v = T.var q in
        t.levels.(v) > 0
        &&
        match t.reasons.(v) with
        | None -> false
        | Some c ->
            Array.for_all
              (fun r ->
                let rv = T.var r in
                rv = v || t.seen.(rv) || (t.levels.(rv) = 0 && not t.tainted.(rv)))
              c.lits
      in
      let kept = ref [ Vec.get learnt 0 ] in
      for k = Vec.size learnt - 1 downto 1 do
        let q = Vec.get learnt k in
        if not (redundant q) then kept := !kept @ [ q ]
      done;
      Array.of_list !kept
    end
  in
  Vec.iter (fun v -> t.seen.(v) <- false) to_clear;
  (* Backjump level: the highest level among the non-asserting literals;
     put that literal in slot 1 so it can be watched. *)
  let blevel = ref 0 in
  let pos = ref 1 in
  for k = 1 to Array.length lits - 1 do
    let lv = t.levels.(T.var lits.(k)) in
    if lv > !blevel then begin
      blevel := lv;
      pos := k
    end
  done;
  if Array.length lits > 1 then begin
    let tmp = lits.(1) in
    lits.(1) <- lits.(!pos);
    lits.(!pos) <- tmp
  end;
  (lits, !blevel)

(* ---------- clause construction ---------- *)

let attach_clause t c =
  Vec.push t.watches.(c.lits.(0)) { c; blocker = c.lits.(1) };
  Vec.push t.watches.(c.lits.(1)) { c; blocker = c.lits.(0) };
  t.n_active_clauses <- t.n_active_clauses + 1;
  t.db_lits <- t.db_lits + Array.length c.lits

let delete_clause t c =
  if not c.deleted then begin
    log_proof t (Drup.Delete (Array.copy c.lits));
    c.deleted <- true;
    t.n_active_clauses <- t.n_active_clauses - 1;
    t.db_lits <- t.db_lits - Array.length c.lits
  end

let record_share t lits =
  if Array.length lits <= t.cfg.share_export_max then begin
    if Queue.length t.fresh_shares >= 8192 then ignore (Queue.pop t.fresh_shares);
    Queue.push (Array.copy lits) t.fresh_shares
  end

(* Record a learned clause (already backjumped to its assertion level) and
   enqueue its asserting literal. *)
let record_learned t lits =
  log_proof t (Drup.Add (Array.copy lits));
  t.stats.learned <- t.stats.learned + 1;
  if t.obs_on then Obs.Metrics.incr t.c_learned;
  t.stats.learned_literals <- t.stats.learned_literals + Array.length lits;
  record_share t lits;
  Array.iter (bump_lit t) lits;
  if Array.length lits = 1 then enqueue t lits.(0) None
  else begin
    let c = { lits; learned = true; activity = t.cla_inc; deleted = false } in
    attach_clause t c;
    Vec.push t.learnts c;
    enqueue t lits.(0) (Some c)
  end;
  t.last_learned <- Some (Array.copy lits, decision_level t)

(* Add an original (or foreign) clause while at decision level 0, after
   simplifying it against the root assignment.  Returns false if the clause
   is already satisfied at the root (and was therefore discarded). *)
(* A false root literal may only be stripped when it is untainted (its
   negation is implied by the global formula); tainted literals stay so the
   clause remains globally valid. *)
let strippable t l = lit_false t l && not t.tainted.(T.var l)

(* Install a clause while at decision level 0: discard if satisfied, strip
   untainted false literals, then either record the conflict, enqueue the
   root implication (taint inherited from the surviving false literals), or
   store the clause with its unknown literals in the watched slots. *)
let install_clause_root t ~learned ~activity lits =
  assert (decision_level t = 0);
  if Array.exists (fun l -> lit_true t l) lits then `Satisfied
  else begin
    let kept = List.filter (fun l -> not (strippable t l)) (Array.to_list lits) in
    let unknowns, falses = List.partition (fun l -> lit_unknown t l) kept in
    match unknowns with
    | [] ->
        log_proof t (Drup.Add [||]);
        t.ok <- false;
        `Conflict
    | [ l ] ->
        let taint = List.exists (fun q -> t.tainted.(T.var q)) falses in
        log_proof t (Drup.Add [| l |]);
        enqueue ~taint t l None;
        `Implication
    | _ ->
        let arr = Array.of_list (unknowns @ falses) in
        (* an original clause installed verbatim is already in the checker's
           database; logging it would only bloat transferred proof
           fragments.  A proof step is owed only when the stored clause
           differs from the formula: learned/foreign, or strengthened by
           root-level stripping. *)
        if learned || List.length kept < Array.length lits then
          log_proof t (Drup.Add (Array.copy arr));
        let c = { lits = arr; learned; activity; deleted = false } in
        attach_clause t c;
        if learned then Vec.push t.learnts c else Vec.push t.clauses c;
        Array.iter (bump_lit t) arr;
        `Added
  end

(* ---------- learned-DB reduction ---------- *)

let clause_locked t c =
  Array.length c.lits > 0
  &&
  let v = T.var c.lits.(0) in
  (match t.reasons.(v) with Some r -> r == c | None -> false)
  && not (var_unknown t v)

let reduce_db t =
  let sp =
    if t.obs_on then
      Obs.Span.enter (Obs.spans t.obs) ~parent:t.obs_parent ~tid:t.obs_tid ~cat:"solver"
        ~args:[ ("learnts", Obs.Json.Int (Vec.size t.learnts)) ]
        "reduce_db"
    else Obs.Span.none
  in
  let live = Vec.fold (fun acc c -> if c.deleted then acc else c :: acc) [] t.learnts in
  let arr = Array.of_list live in
  Array.sort (fun a b -> Float.compare a.activity b.activity) arr;
  let target = Array.length arr / 2 in
  let removed = ref 0 in
  Array.iter
    (fun c ->
      if !removed < target && (not (clause_locked t c)) && Array.length c.lits > 2 then begin
        delete_clause t c;
        incr removed
      end)
    arr;
  t.stats.deleted <- t.stats.deleted + !removed;
  (* compact the learnts vector *)
  let keep = List.rev (Vec.fold (fun acc c -> if c.deleted then acc else c :: acc) [] t.learnts) in
  Vec.clear t.learnts;
  List.iter (Vec.push t.learnts) keep;
  if t.obs_on then
    Obs.Span.exit (Obs.spans t.obs) sp ~args:[ ("deleted", Obs.Json.Int !removed) ]

(* ---------- root-level simplification (the paper's pruning pass) ---------- *)

let rebuild_watches t =
  Array.iter Vec.clear t.watches;
  let rewatch c =
    if not c.deleted then begin
      Vec.push t.watches.(c.lits.(0)) { c; blocker = c.lits.(1) };
      Vec.push t.watches.(c.lits.(1)) { c; blocker = c.lits.(0) }
    end
  in
  Vec.iter rewatch t.clauses;
  Vec.iter rewatch t.learnts

let simplify_clause_root t c =
  if not c.deleted then begin
    if Array.exists (fun l -> lit_true t l) c.lits then delete_clause t c
    else begin
      let kept = List.filter (fun l -> not (strippable t l)) (Array.to_list c.lits) in
      let unknowns, falses = List.partition (fun l -> lit_unknown t l) kept in
      match unknowns with
      | [] ->
          log_proof t (Drup.Add [||]);
          t.ok <- false;
          delete_clause t c
      | [ l ] ->
          let taint = List.exists (fun q -> t.tainted.(T.var q)) falses in
          log_proof t (Drup.Add [| l |]);
          enqueue ~taint t l None;
          delete_clause t c
      | _ ->
          let n = List.length kept in
          if n < Array.length c.lits then begin
            let strengthened = Array.of_list (unknowns @ falses) in
            log_proof t (Drup.Add (Array.copy strengthened));
            log_proof t (Drup.Delete (Array.copy c.lits));
            t.db_lits <- t.db_lits - (Array.length c.lits - n);
            c.lits <- strengthened
          end
    end
  end

let compact_clause_vec vec =
  let keep = List.rev (Vec.fold (fun acc c -> if c.deleted then acc else c :: acc) [] vec) in
  Vec.clear vec;
  List.iter (Vec.push vec) keep

let simplify_db t =
  assert (decision_level t = 0);
  let sp =
    if t.obs_on then
      Obs.Span.enter (Obs.spans t.obs) ~parent:t.obs_parent ~tid:t.obs_tid ~cat:"solver"
        ~args:[ ("root_lits", Obs.Json.Int (Vec.size t.trail)) ]
        "simplify_db"
    else Obs.Span.none
  in
  (* Root-assigned variables never participate in conflict analysis, so
     their antecedents may be forgotten before clauses are deleted. *)
  Vec.iter (fun l -> t.reasons.(T.var l) <- None) t.trail;
  Vec.iter (simplify_clause_root t) t.clauses;
  Vec.iter (simplify_clause_root t) t.learnts;
  compact_clause_vec t.clauses;
  compact_clause_vec t.learnts;
  rebuild_watches t;
  t.last_simplify_trail <- Vec.size t.trail;
  t.stats.root_simplifications <- t.stats.root_simplifications + 1;
  if t.obs_on then Obs.Span.exit (Obs.spans t.obs) sp

(* ---------- foreign clause merging (paper Section 3.2, four cases) ---------- *)

let pending_foreign t = Queue.length t.pending_foreign

let queue_foreign_clauses t cs = List.iter (fun c -> Queue.push c t.pending_foreign) cs

let merge_foreign t =
  assert (decision_level t = 0);
  let batch = Queue.length t.pending_foreign in
  let sp =
    if t.obs_on && batch > 0 then
      Obs.Span.enter (Obs.spans t.obs) ~parent:t.obs_parent ~tid:t.obs_tid ~cat:"solver"
        ~args:[ ("pending", Obs.Json.Int batch) ]
        "merge_foreign"
    else Obs.Span.none
  in
  let merged0 = t.stats.foreign_merged in
  while t.ok && not (Queue.is_empty t.pending_foreign) do
    let lits = Queue.pop t.pending_foreign in
    match install_clause_root t ~learned:true ~activity:t.cla_inc lits with
    | `Satisfied -> t.stats.foreign_discarded <- t.stats.foreign_discarded + 1
    | `Conflict -> () (* all literals false: the subproblem is unsatisfiable *)
    | `Implication -> t.stats.foreign_implications <- t.stats.foreign_implications + 1
    | `Added -> t.stats.foreign_merged <- t.stats.foreign_merged + 1
  done;
  if t.obs_on && batch > 0 then
    Obs.Span.exit (Obs.spans t.obs) sp
      ~args:[ ("merged", Obs.Json.Int (t.stats.foreign_merged - merged0)) ]

(* ---------- shares export ---------- *)

let drain_shares t ~max_len =
  let out = ref [] in
  while not (Queue.is_empty t.fresh_shares) do
    let c = Queue.pop t.fresh_shares in
    if Array.length c <= max_len then out := c :: !out
  done;
  List.rev !out

(* ---------- decisions ---------- *)

let random_unassigned t =
  let rec attempt k =
    if k = 0 then None
    else
      let v = 1 + Random.State.int t.rng t.nvars in
      if var_unknown t v then Some v else attempt (k - 1)
  in
  attempt 8

let pick_branch_var t =
  let from_heap () =
    let rec pop () =
      if Heap.is_empty t.order then None
      else
        let v = Heap.remove_max t.order in
        if var_unknown t v then Some v else pop ()
    in
    pop ()
  in
  if t.cfg.random_decision_freq > 0. && Random.State.float t.rng 1.0 < t.cfg.random_decision_freq
  then (match random_unassigned t with Some v -> Some v | None -> from_heap ())
  else from_heap ()

let decide t =
  match pick_branch_var t with
  | None -> false
  | Some v ->
      let l =
        if t.cfg.phase_saving then if t.phase.(v) then T.pos v else T.neg v
        else if t.score.(T.pos v) >= t.score.(T.neg v) then T.pos v
        else T.neg v
      in
      Vec.push t.trail_lim (Vec.size t.trail);
      enqueue t l None;
      t.stats.decisions <- t.stats.decisions + 1;
      if t.obs_on then Obs.Metrics.incr t.c_decisions;
      if decision_level t > t.stats.max_decision_level then
        t.stats.max_decision_level <- decision_level t;
      true

(* ---------- restarts ---------- *)

(* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  (* find the k with 2^(k-1) <= i < 2^k *)
  let rec size k = if (1 lsl k) - 1 >= i then k else size (k + 1) in
  let k = size 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1) else luby (i - (1 lsl (k - 1)) + 1)

let restart t =
  backtrack t 0;
  t.conflicts_since_restart <- 0;
  t.luby_index <- t.luby_index + 1;
  (t.restart_limit <-
    (match t.cfg.restart_strategy with
    | Luby -> t.cfg.restart_base * luby t.luby_index
    | Geometric factor -> max 1 (int_of_float (float_of_int t.restart_limit *. factor))
    | Fixed -> t.cfg.restart_base));
  t.stats.restarts <- t.stats.restarts + 1;
  if t.obs_on then begin
    Obs.Metrics.incr t.c_restarts;
    ignore
      (Obs.Span.instant (Obs.spans t.obs) ~parent:t.obs_parent ~tid:t.obs_tid ~cat:"solver"
         ~args:[ ("restarts", Obs.Json.Int t.stats.restarts) ]
         "restart")
  end

(* ---------- construction ---------- *)

let create_internal cfg cnf ~obs ~obs_tid ~facts ~assumptions =
  let nvars = Cnf.nvars cnf in
  let score = Array.make (2 * (nvars + 1)) 0. in
  let order = Heap.create ~nvars ~gt:(fun a b -> var_score score a > var_score score b) in
  let m = Obs.metrics obs in
  let labels = [ ("client", string_of_int obs_tid) ] in
  let t =
    {
      cfg;
      nvars;
      cnf;
      assigns = Array.make (nvars + 1) T.Unknown;
      tainted = Array.make (nvars + 1) false;
      levels = Array.make (nvars + 1) 0;
      reasons = Array.make (nvars + 1) None;
      score;
      watches = Array.init (2 * (nvars + 1)) (fun _ -> Vec.create ~capacity:4 dummy_watcher);
      order;
      trail = Vec.create 0;
      trail_lim = Vec.create 0;
      qhead = 0;
      clauses = Vec.create dummy_clause;
      learnts = Vec.create dummy_clause;
      ok = not (Cnf.has_empty_clause cnf);
      seen = Array.make (nvars + 1) false;
      phase = Array.make (nvars + 1) false;
      var_inc = 1.0;
      cla_inc = 1.0;
      stats = Stats.create ();
      conflicts_since_restart = 0;
      restart_limit = cfg.restart_base;
      luby_index = 1;
      n_active_clauses = 0;
      db_lits = 0;
      pending_foreign = Queue.create ();
      fresh_shares = Queue.create ();
      last_learned = None;
      last_simplify_trail = 0;
      proof_rev = [];
      rng = Random.State.make [| cfg.seed; nvars; Cnf.nclauses cnf |];
      obs;
      obs_on = Obs.enabled obs;
      obs_tid;
      obs_parent = Obs.Span.none;
      h_bcp = Obs.Metrics.histogram m ~labels "solver.bcp.seconds";
      c_decisions = Obs.Metrics.counter m ~labels "solver.decisions";
      c_conflicts = Obs.Metrics.counter m ~labels "solver.conflicts";
      c_learned = Obs.Metrics.counter m ~labels "solver.learned";
      c_restarts = Obs.Metrics.counter m ~labels "solver.restarts";
    }
  in
  for v = 1 to nvars do
    Heap.insert order v
  done;
  let assert_root taint l =
    match value_of_lit t l with
    | T.Unknown -> enqueue ~taint t l None
    | T.True -> ()
    | T.False -> t.ok <- false
  in
  List.iter (assert_root false) facts;
  List.iter (assert_root true) assumptions;
  if t.ok then
    Cnf.iter
      (fun lits ->
        if t.ok then ignore (install_clause_root t ~learned:false ~activity:0. (Array.copy lits)))
      cnf;
  if t.ok then (match propagate t with Some _ -> t.ok <- false | None -> ());
  t

let create ?(config = default_config) ?(obs = Obs.disabled) ?(obs_tid = Obs.Span.run_tid) cnf =
  create_internal config cnf ~obs ~obs_tid ~facts:[] ~assumptions:[]

let create_with_roots ?(config = default_config) ?(obs = Obs.disabled)
    ?(obs_tid = Obs.Span.run_tid) ?(facts = []) cnf assumptions =
  create_internal config cnf ~obs ~obs_tid ~facts ~assumptions

(* ---------- model extraction ---------- *)

let extract_model t =
  let a = Array.make (t.nvars + 1) false in
  for v = 1 to t.nvars do
    a.(v) <- (match t.assigns.(v) with T.True -> true | T.False | T.Unknown -> false)
  done;
  Model.of_array a

(* ---------- conflict-info capture ---------- *)

let capture_graph t =
  List.map
    (fun l ->
      let v = T.var l in
      (v, t.levels.(v), antecedent_of_var t v))
    (Vec.to_list t.trail)

(* ---------- main search ---------- *)

let learned_cap t =
  int_of_float (t.cfg.learned_cap_factor *. float_of_int (Vec.size t.clauses))
  + t.cfg.learned_cap_min

let handle_conflict t confl =
  t.stats.conflicts <- t.stats.conflicts + 1;
  if t.obs_on then Obs.Metrics.incr t.c_conflicts;
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  if decision_level t = 0 then begin
    log_proof t (Drup.Add [||]);
    t.ok <- false;
    None
  end
  else begin
    let lits, blevel = analyze t confl in
    backtrack t blevel;
    record_learned t lits;
    if t.stats.conflicts mod t.cfg.decay_interval = 0 then decay_scores t;
    t.cla_inc <- t.cla_inc /. 0.999;
    Some (lits, blevel)
  end

let over_mem_limit t = db_bytes t > t.cfg.mem_limit_bytes

let run t ~budget =
  let start = Obs.Clock.now () in
  let start_props = t.stats.propagations in
  let result = ref None in
  while !result = None do
    if not t.ok then result := Some Unsat
    else begin
      if decision_level t = 0 then begin
        merge_foreign t;
        if t.ok && Vec.size t.trail > t.last_simplify_trail && t.qhead = Vec.size t.trail then
          simplify_db t
      end;
      if not t.ok then result := Some Unsat
      else
        match propagate t with
        | Some confl -> (
            match handle_conflict t confl with
            | None -> result := Some Unsat
            | Some _ ->
                if t.cfg.reduce_db_enabled && Vec.size t.learnts > learned_cap t then reduce_db t;
                if over_mem_limit t then begin
                  if t.cfg.reduce_db_enabled then reduce_db t;
                  if over_mem_limit t then result := Some Mem_pressure
                end)
        | None ->
            if t.stats.propagations - start_props >= budget then result := Some Budget_exhausted
            else if
              t.cfg.restarts_enabled
              && t.conflicts_since_restart >= t.restart_limit
              && decision_level t > 0
            then restart t
            else if decision_level t = 0 && pending_foreign t > 0 then
              () (* loop back to merge before deciding *)
            else if not (decide t) then result := Some (Sat (extract_model t))
    end
  done;
  t.stats.total_seconds <- t.stats.total_seconds +. (Obs.Clock.now () -. start);
  match !result with Some r -> r | None -> assert false

let solve ?(budget = max_int) t = run t ~budget

(* ---------- splitting (paper Figure 2) ---------- *)

let split t =
  if decision_level t = 0 then None
  else begin
    let level1_start = Vec.get t.trail_lim 0 in
    let level1_end =
      if Vec.size t.trail_lim > 1 then Vec.get t.trail_lim 1 else Vec.size t.trail
    in
    let first_decision = Vec.get t.trail level1_start in
    let roots_before = root_lits t in
    let facts = List.filter (fun l -> not t.tainted.(T.var l)) roots_before in
    let path = List.filter (fun l -> t.tainted.(T.var l)) roots_before in
    let level1 = ref [] in
    for i = level1_end - 1 downto level1_start do
      level1 := Vec.get t.trail i :: !level1
    done;
    backtrack t 0;
    (* commit this side of the branch: the whole first decision level moves
       into the root as (tainted) guiding-path assumptions ([enqueue] logs
       each as a unit proof step, keeping the fragment checkable after the
       original antecedents are forgotten) *)
    List.iter
      (fun l ->
        match value_of_lit t l with
        | T.Unknown -> enqueue ~taint:true t l None
        | T.True -> ()
        | T.False -> t.ok <- false)
      !level1;
    Some (facts, path @ [ T.negate first_decision ])
  end

(* ---------- transfer helpers ---------- *)

let visible_clause t c =
  if c.deleted then None
  else if Array.exists (fun l -> lit_true t l && t.levels.(T.var l) = 0) c.lits
  then None
  else
    Some
      (Array.of_list
         (List.filter
            (fun l ->
              not (lit_false t l && t.levels.(T.var l) = 0 && not t.tainted.(T.var l)))
            (Array.to_list c.lits)))

let active_clauses t =
  let collect acc vec =
    Vec.fold
      (fun acc c -> match visible_clause t c with Some lits -> lits :: acc | None -> acc)
      acc vec
  in
  List.rev (collect (collect [] t.clauses) t.learnts)

let transfer_bytes t =
  let roots = List.length (root_lits t) in
  db_bytes t + (8 * roots) + 64

(* ---------- manual driving (Figure 1 replay) ---------- *)

let decide_manual t l =
  if t.qhead <> Vec.size t.trail then
    invalid_arg "Solver.decide_manual: propagation pending";
  if not (lit_unknown t l) then invalid_arg "Solver.decide_manual: variable assigned";
  Vec.push t.trail_lim (Vec.size t.trail);
  enqueue t l None;
  t.stats.decisions <- t.stats.decisions + 1

let propagate_manual t =
  match propagate t with
  | None -> `Ok
  | Some confl ->
      let conflicting_clause = Array.copy confl.lits in
      let conflicting_var = T.var confl.lits.(0) in
      let implication_graph = capture_graph t in
      if decision_level t = 0 then begin
        t.ok <- false;
        `Conflict
          {
            conflicting_clause;
            conflicting_var;
            implication_graph;
            learned = [||];
            uip_var = 0;
            backjump_level = 0;
          }
      end
      else begin
        t.stats.conflicts <- t.stats.conflicts + 1;
        let lits, blevel = analyze t confl in
        backtrack t blevel;
        record_learned t lits;
        `Conflict
          {
            conflicting_clause;
            conflicting_var;
            implication_graph;
            learned = Array.copy lits;
            uip_var = T.var lits.(0);
            backjump_level = blevel;
          }
      end
