(** Indexed binary max-heap over variables, used for VSIDS decision order.

    The heap stores variable indices and orders them with a caller-supplied
    comparison (normally "has a higher activity score").  Because scores
    change while a variable sits in the heap, the owner must call {!update}
    after every score change. *)

type t

val create : nvars:int -> gt:(int -> int -> bool) -> t
(** [create ~nvars ~gt] makes an empty heap able to hold variables
    [1 .. nvars].  [gt a b] must return [true] iff variable [a] should be
    popped before variable [b]. *)

val insert : t -> int -> unit
(** Inserts a variable; no-op if already present. *)

val mem : t -> int -> bool

val is_empty : t -> bool

val size : t -> int

val remove_max : t -> int
(** Pops the greatest variable.  Raises [Not_found] when empty. *)

val update : t -> int -> unit
(** Restores heap order after the score of a member variable changed;
    no-op if the variable is not in the heap. *)

val rebuild : t -> unit
(** Re-heapifies the whole structure (after a global score rescale). *)
