(** CNF preprocessing (an extension beyond the paper's 2003 toolchain).

    Three classic equisatisfiability-preserving simplifications, applied to
    fixpoint in rounds:
    - {b subsumption}: drop any clause that is a superset of another;
    - {b self-subsuming resolution}: if resolving two clauses on a pivot
      yields a subset of one of them, strengthen that clause by removing
      the pivot literal;
    - {b bounded variable elimination} (SatELite-style): eliminate a
      variable by replacing its occurrences with all resolvents when that
      does not grow the clause count.

    Eliminated variables are recorded so that a model of the simplified
    formula can be {!extend}ed to a model of the original one. *)

type elimination
(** Reconstruction data for one eliminated variable. *)

type result = {
  cnf : Cnf.t;  (** the simplified formula (same variable space) *)
  clauses_before : int;
  clauses_after : int;
  eliminated : int;  (** variables removed by elimination *)
  subsumed : int;  (** clauses dropped by subsumption *)
  strengthened : int;  (** literals removed by self-subsumption *)
  elims : elimination list;  (** consumed by {!extend} *)
}

val run : ?max_rounds:int -> ?elim_growth:int -> Cnf.t -> result
(** [run cnf] simplifies.  [elim_growth] (default 0) is how many extra
    clauses variable elimination may introduce net. *)

val extend : result -> Model.t -> Model.t
(** Completes a model of [result.cnf] into a model of the original
    formula by choosing values for the eliminated variables. *)

val solve : ?config:Solver.config -> Cnf.t -> Solver.outcome
(** Preprocess-then-solve convenience: runs {!run}, solves the simplified
    formula, and extends any model back to the original variables. *)
