module T = Types

type elimination = { var : int; pos_clauses : T.lit array list }

type result = {
  cnf : Cnf.t;
  clauses_before : int;
  clauses_after : int;
  eliminated : int;
  subsumed : int;
  strengthened : int;
  elims : elimination list; (* most recent first *)
}

(* Working state: clauses as sorted literal arrays, None when removed. *)
type state = {
  nvars : int;
  mutable clauses : T.lit array option array;
  mutable n : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable elims : elimination list;
}

let sorted lits =
  let l = List.sort_uniq compare (Array.to_list lits) in
  Array.of_list l

let tautology lits =
  let rec loop i =
    i + 1 < Array.length lits && ((lits.(i) lxor lits.(i + 1)) = 1 || loop (i + 1))
  in
  loop 0

let add_clause st lits =
  if not (tautology lits) then begin
    if st.n = Array.length st.clauses then begin
      let a = Array.make (max 16 (2 * st.n)) None in
      Array.blit st.clauses 0 a 0 st.n;
      st.clauses <- a
    end;
    st.clauses.(st.n) <- Some lits;
    st.n <- st.n + 1
  end

let occurrences st =
  let occ = Array.make (2 * (st.nvars + 1)) [] in
  for i = 0 to st.n - 1 do
    match st.clauses.(i) with
    | Some lits -> Array.iter (fun l -> occ.(l) <- i :: occ.(l)) lits
    | None -> ()
  done;
  occ

(* is [small] a subset of [big]?  both sorted *)
let subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec loop i j =
    if i >= ns then true
    else if j >= nb then false
    else if small.(i) = big.(j) then loop (i + 1) (j + 1)
    else if small.(i) > big.(j) then loop i (j + 1)
    else false
  in
  ns <= nb && loop 0 0

(* subset except that [small] contains [p] where [big] contains [negate p] *)
let subset_modulo small big p =
  Array.for_all
    (fun l -> if l = p then Array.exists (fun b -> b = T.negate p) big else Array.exists (fun b -> b = l) big)
    small

(* One subsumption + self-subsumption sweep.  Returns true if anything
   changed. *)
let subsumption_round st =
  let occ = occurrences st in
  let changed = ref false in
  (* candidate subsumers visit clauses sharing their rarest literal *)
  let rarest lits =
    Array.fold_left
      (fun best l -> if List.length occ.(l) < List.length occ.(best) then l else best)
      lits.(0) lits
  in
  for i = 0 to st.n - 1 do
    match st.clauses.(i) with
    | None -> ()
    | Some small ->
        if Array.length small > 0 then begin
          (* plain subsumption of longer clauses sharing the rarest literal *)
          List.iter
            (fun j ->
              if j <> i then
                match st.clauses.(j) with
                | Some big when subset small big ->
                    st.clauses.(j) <- None;
                    st.subsumed <- st.subsumed + 1;
                    changed := true
                | _ -> ())
            occ.(rarest small);
          (* self-subsuming resolution: for each literal p of [small], a
             clause containing ~p and the rest of [small] loses ~p *)
          Array.iter
            (fun p ->
              List.iter
                (fun j ->
                  if j <> i then
                    match st.clauses.(j) with
                    | Some big when subset_modulo small big p ->
                        let stronger =
                          Array.of_list
                            (List.filter (fun l -> l <> T.negate p) (Array.to_list big))
                        in
                        st.clauses.(j) <- Some stronger;
                        st.strengthened <- st.strengthened + 1;
                        changed := true
                    | _ -> ())
                occ.(T.negate p))
            small
        end
  done;
  !changed

(* Bounded variable elimination: replace a variable's clauses by their
   resolvents when that does not grow the database by more than [growth]. *)
let elimination_round st ~growth =
  let changed = ref false in
  let occ = ref (occurrences st) in
  for v = 1 to st.nvars do
    let live lit = List.filter (fun j -> st.clauses.(j) <> None) !occ.(lit) in
    let pos = live (T.pos v) and neg = live (T.neg v) in
    let npos = List.length pos and nneg = List.length neg in
    if npos + nneg > 0 && npos * nneg <= npos + nneg + growth && npos + nneg <= 20 then begin
      let clause j = match st.clauses.(j) with Some c -> c | None -> assert false in
      let resolve cp cn =
        let lits =
          List.filter (fun l -> T.var l <> v) (Array.to_list cp @ Array.to_list cn)
        in
        sorted (Array.of_list lits)
      in
      let resolvents =
        List.concat_map (fun jp -> List.map (fun jn -> resolve (clause jp) (clause jn)) neg) pos
        |> List.filter (fun r -> not (tautology r))
      in
      (* record the positive side for model extension, then rewrite *)
      st.elims <- { var = v; pos_clauses = List.map clause pos } :: st.elims;
      List.iter (fun j -> st.clauses.(j) <- None) (pos @ neg);
      List.iter (add_clause st) resolvents;
      occ := occurrences st;
      changed := true
    end
  done;
  !changed

let run ?(max_rounds = 3) ?(elim_growth = 0) cnf =
  let st =
    {
      nvars = Cnf.nvars cnf;
      clauses = Array.make (max 16 (Cnf.nclauses cnf)) None;
      n = 0;
      subsumed = 0;
      strengthened = 0;
      elims = [];
    }
  in
  Cnf.iter (fun c -> add_clause st (sorted c)) cnf;
  let before = st.n in
  let rec rounds k =
    if k > 0 then begin
      let a = subsumption_round st in
      let b = elimination_round st ~growth:elim_growth in
      if a || b then rounds (k - 1)
    end
  in
  rounds max_rounds;
  let survivors =
    Array.to_list st.clauses |> List.filter_map (fun c -> c) |> List.map Array.copy
  in
  {
    cnf = Cnf.of_lit_arrays ~nvars:st.nvars survivors;
    clauses_before = before;
    clauses_after = List.length survivors;
    eliminated = List.length st.elims;
    subsumed = st.subsumed;
    strengthened = st.strengthened;
    elims = st.elims;
  }

let extend (result : result) model =
  let a = Model.to_array model in
  let lit_true l = if T.is_pos l then a.(T.var l) else not a.(T.var l) in
  (* reverse elimination order = head-first, since elims is newest-first *)
  List.iter
    (fun { var; pos_clauses } ->
      let forced_true =
        List.exists
          (fun c -> Array.for_all (fun l -> T.var l = var || not (lit_true l)) c)
          pos_clauses
      in
      a.(var) <- forced_true)
    result.elims;
  Model.of_array a

let solve ?config cnf =
  let result = run cnf in
  let solver = Solver.create ?config result.cnf in
  match Solver.solve solver with
  | Solver.Sat m -> Solver.Sat (extend result m)
  | other -> other
