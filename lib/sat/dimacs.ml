exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Tokenise into int tokens, skipping comments and the header; returns
   (nvars, tokens in order). *)
let parse_tokens lines =
  let nvars = ref (-1) in
  let tokens = ref [] in
  let handle_line line =
    let line = String.trim line in
    if line = "" then ()
    else if line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      if !nvars >= 0 then fail "duplicate problem header";
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; nv; _nc ] -> (
          match int_of_string_opt nv with
          | Some n when n >= 0 -> nvars := n
          | _ -> fail "bad variable count in header: %s" nv)
      | _ -> fail "malformed problem line: %S" line
    end
    else begin
      if !nvars < 0 then fail "clause data before 'p cnf' header";
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      let parse_word w =
        match int_of_string_opt w with
        | Some i -> tokens := i :: !tokens
        | None -> fail "not an integer: %S" w
      in
      List.iter parse_word words
    end
  in
  List.iter handle_line lines;
  if !nvars < 0 then fail "missing 'p cnf' header";
  (!nvars, List.rev !tokens)

let clauses_of_tokens nvars tokens =
  let clauses = ref [] and current = ref [] in
  let add_token i =
    if i = 0 then begin
      clauses := List.rev !current :: !clauses;
      current := []
    end
    else begin
      let v = abs i in
      if v > nvars then fail "literal %d exceeds declared variable count %d" i nvars;
      current := i :: !current
    end
  in
  List.iter add_token tokens;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  List.rev !clauses

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let nvars, tokens = parse_tokens lines in
  Cnf.make ~nvars (clauses_of_tokens nvars tokens)

let parse_channel ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  parse_string (Buffer.contents buf)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)

let to_string cnf =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.nvars cnf) (Cnf.nclauses cnf));
  let add_clause c =
    Array.iter (fun l -> Buffer.add_string buf (string_of_int (Types.to_int l) ^ " ")) c;
    Buffer.add_string buf "0\n"
  in
  Cnf.iter add_clause cnf;
  Buffer.contents buf

let write_channel oc cnf = output_string oc (to_string cnf)

let write_file path cnf =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write_channel oc cnf)
