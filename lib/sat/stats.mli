(** Mutable counters describing a solver run.

    [bcp_seconds] / [total_seconds] back the paper's Section 2.4 claim that
    Boolean constraint propagation dominates run time (measured with the
    monotonic [Obs.Clock] at propagation-call granularity, so the cost of
    the instrumentation itself is negligible). *)

type t = {
  mutable decisions : int;
  mutable propagations : int; (* literals propagated; the solver's "step" unit *)
  mutable conflicts : int;
  mutable learned : int; (* learned clauses added *)
  mutable learned_literals : int;
  mutable deleted : int; (* learned clauses deleted by DB reduction *)
  mutable restarts : int;
  mutable max_decision_level : int;
  mutable root_simplifications : int;
  mutable foreign_merged : int; (* foreign shared clauses merged into the DB *)
  mutable foreign_discarded : int; (* foreign clauses discarded as root-satisfied *)
  mutable foreign_implications : int; (* foreign clauses that forced a root implication *)
  mutable bcp_seconds : float;
  mutable total_seconds : float;
}

val create : unit -> t

val copy : t -> t

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (max for [max_decision_level]). *)

val avg_learned_length : t -> float

val bcp_fraction : t -> float
(** Fraction of measured run time spent in BCP, in [0, 1]; [0] when no
    time was recorded. *)

val pp : Format.formatter -> t -> unit
(** Print every field (counters, timings, and the derived averages). *)

val json : t -> Obs.Json.t
(** All fields plus [avg_learned_length]/[bcp_fraction], for embedding
    in the run report. *)

val to_json : t -> string
(** [json] rendered compactly. *)
