type t = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable learned_literals : int;
  mutable deleted : int;
  mutable restarts : int;
  mutable max_decision_level : int;
  mutable root_simplifications : int;
  mutable foreign_merged : int;
  mutable foreign_discarded : int;
  mutable foreign_implications : int;
  mutable bcp_seconds : float;
  mutable total_seconds : float;
}

let create () =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    learned = 0;
    learned_literals = 0;
    deleted = 0;
    restarts = 0;
    max_decision_level = 0;
    root_simplifications = 0;
    foreign_merged = 0;
    foreign_discarded = 0;
    foreign_implications = 0;
    bcp_seconds = 0.;
    total_seconds = 0.;
  }

let copy t = { t with decisions = t.decisions }

let add acc x =
  acc.decisions <- acc.decisions + x.decisions;
  acc.propagations <- acc.propagations + x.propagations;
  acc.conflicts <- acc.conflicts + x.conflicts;
  acc.learned <- acc.learned + x.learned;
  acc.learned_literals <- acc.learned_literals + x.learned_literals;
  acc.deleted <- acc.deleted + x.deleted;
  acc.restarts <- acc.restarts + x.restarts;
  acc.max_decision_level <- max acc.max_decision_level x.max_decision_level;
  acc.root_simplifications <- acc.root_simplifications + x.root_simplifications;
  acc.foreign_merged <- acc.foreign_merged + x.foreign_merged;
  acc.foreign_discarded <- acc.foreign_discarded + x.foreign_discarded;
  acc.foreign_implications <- acc.foreign_implications + x.foreign_implications;
  acc.bcp_seconds <- acc.bcp_seconds +. x.bcp_seconds;
  acc.total_seconds <- acc.total_seconds +. x.total_seconds

let avg_learned_length t =
  if t.learned = 0 then 0. else float_of_int t.learned_literals /. float_of_int t.learned

let bcp_fraction t = if t.total_seconds <= 0. then 0. else t.bcp_seconds /. t.total_seconds

let pp ppf t =
  Format.fprintf ppf
    "@[<v>decisions            %d@,propagations         %d@,conflicts            %d@,\
     learned              %d (avg len %.1f)@,learned literals     %d@,\
     deleted              %d@,restarts             %d@,max level            %d@,\
     root simplifications %d@,foreign merged       %d@,foreign implications %d@,\
     foreign discarded    %d@,bcp seconds          %.3f@,total seconds        %.3f@,\
     bcp fraction         %.1f%%@]"
    t.decisions t.propagations t.conflicts t.learned (avg_learned_length t)
    t.learned_literals t.deleted t.restarts t.max_decision_level t.root_simplifications
    t.foreign_merged t.foreign_implications t.foreign_discarded t.bcp_seconds
    t.total_seconds
    (100. *. bcp_fraction t)

let json t =
  Obs.Json.Obj
    [
      ("decisions", Obs.Json.Int t.decisions);
      ("propagations", Obs.Json.Int t.propagations);
      ("conflicts", Obs.Json.Int t.conflicts);
      ("learned", Obs.Json.Int t.learned);
      ("learned_literals", Obs.Json.Int t.learned_literals);
      ("deleted", Obs.Json.Int t.deleted);
      ("restarts", Obs.Json.Int t.restarts);
      ("max_decision_level", Obs.Json.Int t.max_decision_level);
      ("root_simplifications", Obs.Json.Int t.root_simplifications);
      ("foreign_merged", Obs.Json.Int t.foreign_merged);
      ("foreign_discarded", Obs.Json.Int t.foreign_discarded);
      ("foreign_implications", Obs.Json.Int t.foreign_implications);
      ("bcp_seconds", Obs.Json.Float t.bcp_seconds);
      ("total_seconds", Obs.Json.Float t.total_seconds);
      ("avg_learned_length", Obs.Json.Float (avg_learned_length t));
      ("bcp_fraction", Obs.Json.Float (bcp_fraction t));
    ]

let to_json t = Obs.Json.to_string (json t)
