type t = bool array (* index 0 unused *)

let of_array a =
  if Array.length a = 0 then invalid_arg "Model.of_array: empty";
  Array.copy a

let nvars t = Array.length t - 1

let value t v =
  if v < 1 || v >= Array.length t then invalid_arg "Model.value: variable out of range";
  t.(v)

let to_array t = Array.copy t

let true_literals t =
  let rec loop v acc = if v < 1 then acc else loop (v - 1) ((if t.(v) then v else -v) :: acc) in
  loop (nvars t) []

let satisfies cnf m =
  if nvars m < Cnf.nvars cnf then invalid_arg "Model.satisfies: model too small";
  Cnf.eval cnf m

let pp ppf t =
  Format.pp_print_char ppf '[';
  List.iteri
    (fun i l ->
      if i > 0 then Format.pp_print_char ppf ' ';
      Format.pp_print_int ppf l)
    (true_literals t);
  Format.pp_print_char ppf ']'
