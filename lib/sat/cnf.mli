(** Immutable CNF formulas.

    A formula is a conjunction of clauses over variables [1 .. nvars];
    each clause is an array of encoded literals (see {!Types}).  Building a
    formula normalises every clause: duplicate literals are removed and
    tautological clauses (containing both [l] and [~l]) are dropped.  An
    empty clause is kept — it makes the formula trivially unsatisfiable. *)

type t

val make : nvars:int -> int list list -> t
(** [make ~nvars clauses] builds a formula from DIMACS-style clauses
    (signed nonzero integers).  Raises [Invalid_argument] if a literal
    mentions a variable outside [1 .. nvars] or is zero. *)

val of_lit_arrays : nvars:int -> Types.lit array list -> t
(** Builds a formula from already-encoded literal arrays (normalised the
    same way as {!make}). *)

val nvars : t -> int

val nclauses : t -> int

val clauses : t -> Types.lit array list
(** The normalised clauses.  The returned arrays must not be mutated. *)

val iter : (Types.lit array -> unit) -> t -> unit

val nliterals : t -> int
(** Total number of literal occurrences. *)

val dropped_tautologies : t -> int
(** How many input clauses were dropped as tautologies during
    normalisation. *)

val has_empty_clause : t -> bool

val eval : t -> bool array -> bool
(** [eval t assignment] evaluates the formula under a total assignment
    ([assignment.(v)] is the value of variable [v]; index 0 unused). *)

val clause_eval : Types.lit array -> bool array -> bool
(** Evaluates a single clause under a total assignment. *)

val with_extra_clauses : t -> Types.lit array list -> t
(** [with_extra_clauses t cs] is [t] conjoined with [cs]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary (variable/clause counts and the clauses). *)
