(** Reference solver by exhaustive enumeration.

    Only usable for small variable counts; it exists so the test suite can
    cross-check the CDCL solver on randomly generated formulas. *)

type result = Sat of Model.t | Unsat

val solve : Cnf.t -> result
(** [solve cnf] enumerates all assignments.  Raises [Invalid_argument] for
    formulas with more than 26 variables. *)

val count_models : Cnf.t -> int
(** Number of satisfying assignments (same size restriction). *)
