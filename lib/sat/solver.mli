(** zChaff-class CDCL solver: the sequential core of GridSAT.

    The solver implements the Chaff algorithm as described in Section 2 of
    the paper: DPLL search with two-watched-literal Boolean constraint
    propagation, FirstUIP conflict-driven clause learning with
    non-chronological backjumping, literal-counter VSIDS decisions with
    periodic decay, optional restarts, learned-clause database reduction,
    and root-level formula simplification (the pruning optimisation the
    authors also added to their sequential zChaff baseline).

    Beyond a plain solver it exposes the hooks GridSAT needs:
    - {b steppable execution}: {!run} consumes a propagation budget and can
      return early, which lets the grid simulator interleave many clients
      and lets a client detect memory pressure instead of dying;
    - {b splitting}: {!split} performs the paper's Figure 2 transformation,
      returning the complementary subproblem while committing the local
      first-decision branch;
    - {b clause sharing}: {!drain_shares} exports freshly learned short
      clauses, {!queue_foreign_clauses} accepts clauses from peers which
      are batch-merged at the root level with the paper's four-case rule;
    - {b introspection}: enough visibility into the trail, antecedents and
      conflict analysis to replay the paper's Figure 1 example. *)

type t

type restart_strategy =
  | Luby  (** restart_base times the Luby sequence (the default) *)
  | Geometric of float  (** interval multiplied by the factor each restart *)
  | Fixed  (** every [restart_base] conflicts (zChaff-2001 style) *)

type config = {
  decay_interval : int;  (** conflicts between VSIDS decays (paper: periodic halving) *)
  decay_factor : float;  (** score multiplier applied at each decay, in (0,1) *)
  restarts_enabled : bool;
  restart_base : int;  (** conflicts before the first restart *)
  restart_strategy : restart_strategy;
  mem_limit_bytes : int;  (** clause-DB budget; exceeded => [Mem_pressure] *)
  learned_cap_factor : float;
      (** learned clauses are reduced when they exceed
          [learned_cap_factor * original clauses + learned_cap_min] *)
  learned_cap_min : int;
  reduce_db_enabled : bool;
      (** delete low-activity learned clauses when the DB grows.  zChaff-2001
          (the paper's baseline) kept everything until memory ran out; turn
          this off to reproduce its MEM_OUT behaviour. *)
  share_export_max : int;  (** record learned clauses up to this length for export *)
  capture_conflicts : bool;  (** snapshot implication graphs (slow; for inspection) *)
  random_decision_freq : float;  (** probability of a random decision, in [0,1) *)
  emit_proof : bool;
      (** log a DRUP proof of every clause derivation; check it with
          {!Drup.check}.  Intended for runs without foreign clause
          injection (foreign clauses are not locally derivable, so proofs
          of sharing runs will not check). *)
  minimize_learned : bool;
      (** shrink learned clauses by self-subsuming resolution (off by
          default: zChaff-2001 did not minimize; ablated in the bench) *)
  phase_saving : bool;
      (** decide variables with their last assigned polarity instead of
          the higher literal score (off by default, likewise ablated) *)
  seed : int;
}

val default_config : config

val create : ?config:config -> ?obs:Obs.t -> ?obs_tid:int -> Cnf.t -> t
(** Builds a solver over the formula.  Unit clauses are asserted at the
    root level and propagated immediately.  [obs] (default
    [Obs.disabled]) receives per-solver metrics and phase spans; [obs_tid]
    is the telemetry track — the owning client's id in grid runs. *)

val create_with_roots :
  ?config:config -> ?obs:Obs.t -> ?obs_tid:int -> ?facts:Types.lit list -> Cnf.t -> Types.lit list -> t
(** [create_with_roots ~facts cnf path] asserts two kinds of literals at
    decision level 0 — this is how a client instantiates a received
    subproblem (root assignments + clause set):
    - [facts] are implied by the global formula (original unit clauses,
      root consequences): they may be freely simplified away;
    - [path] are {e guiding-path assumptions} created by splits: they are
      tracked as tainted, kept inside clauses, and re-introduced into
      learned clauses so that every clause this solver learns — and hence
      every clause it shares — remains valid for the global problem. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Budget_exhausted  (** the propagation budget ran out; call {!run} again *)
  | Mem_pressure  (** the clause DB exceeds the memory limit even after reduction *)

val run : t -> budget:int -> outcome
(** [run t ~budget] continues the search for at most [budget] propagation
    steps.  The solver retains all state between calls. *)

val solve : ?budget:int -> t -> outcome
(** Convenience wrapper: runs with a very large (or given) budget. *)

val stats : t -> Stats.t

val set_obs_parent : t -> Obs.Span.id -> unit
(** Parent subsequent solver phase spans (reduce-DB, simplify, merges)
    under the given span — the client's per-subproblem solve span. *)

val nvars : t -> int

val decision_level : t -> int

val n_learned : t -> int

val db_bytes : t -> int
(** Estimated clause-database footprint in bytes (literals + per-clause
    overhead), the quantity compared against [mem_limit_bytes]. *)

val is_ok : t -> bool
(** [false] once the solver has derived a root-level conflict. *)

(** {1 Distributed hooks} *)

val drain_shares : t -> max_len:int -> Types.lit array list
(** Learned clauses of length [<= max_len] recorded since the previous
    drain (at most [share_export_max] long ones are recorded at all). *)

val queue_foreign_clauses : t -> Types.lit array list -> unit
(** Queues clauses learned by peers.  They are merged in a batch the next
    time the solver sits at decision level 0 (paper Section 3.2). *)

val pending_foreign : t -> int

val root_lits : t -> Types.lit list
(** The literals currently asserted at decision level 0, in trail order. *)

val root_facts : t -> Types.lit list
(** Root literals implied by the global formula (untainted). *)

val root_path : t -> Types.lit list
(** Root literals that are guiding-path assumptions (tainted). *)

val split : t -> (Types.lit list * Types.lit list) option
(** Performs the Figure 2 split.  Returns [Some (facts, path)] — the root
    assignment of the {e new} subproblem: the donor's root facts, plus the
    donor's guiding path extended with the complement of the donor's first
    decision.  As a side effect the donor commits its whole first decision
    level into its own root (as new guiding-path assumptions).  Returns
    [None] when there is no decision to split on. *)

val active_clauses : t -> Types.lit array list
(** All live clauses (original + learned), as currently simplified.  Used
    to serialise a subproblem for transfer. *)

val transfer_bytes : t -> int
(** Size estimate of a subproblem transfer message (root literals + active
    clauses), matching {!db_bytes} accounting. *)

(** {1 Introspection (Figure 1 replay and tests)} *)

type conflict_info = {
  conflicting_clause : Types.lit array;
  conflicting_var : int;
  implication_graph : (int * int * Types.lit array option) list;
      (** assigned (var, level, antecedent clause) at the moment of conflict,
          in trail order; [None] antecedent marks a decision or root unit *)
  learned : Types.lit array;  (** the FirstUIP learned clause; element 0 asserts *)
  uip_var : int;
  backjump_level : int;
}

val value_of_var : t -> int -> Types.value

val value_of_lit : t -> Types.lit -> Types.value

val level_of_var : t -> int -> int
(** Decision level of an assigned variable; raises [Invalid_argument] if
    the variable is unassigned. *)

val antecedent_of_var : t -> int -> Types.lit array option
(** The clause that implied the variable, [None] for decisions/root units
    or unassigned variables. *)

val trail_literals : t -> Types.lit list
(** The trail in assignment order. *)

val decide_manual : t -> Types.lit -> unit
(** Opens a new decision level and assigns the literal.  Raises
    [Invalid_argument] if the variable is already assigned or propagation
    is pending. *)

val propagate_manual : t -> [ `Ok | `Conflict of conflict_info ]
(** Propagates to fixpoint.  On conflict, performs FirstUIP analysis,
    backjumps, records the learned clause, and returns the full
    {!conflict_info} (the implication graph is always captured on this
    path regardless of [capture_conflicts]). *)

val last_learned : t -> (Types.lit array * int) option
(** The most recent learned clause and its backjump level. *)

val proof : t -> Drup.t
(** The DRUP proof logged so far (empty unless [emit_proof] is set).
    After an {!outcome} of [Unsat], [Drup.check] on the original formula
    and this proof independently certifies the answer. *)
