type t = {
  nvars : int;
  clauses : Types.lit array list; (* reversed insertion order is fine *)
  nliterals : int;
  dropped : int;
  has_empty : bool;
}

(* Normalise a sorted literal list: drop duplicates, detect tautology. *)
let normalise lits =
  let sorted = List.sort_uniq compare lits in
  let rec tautological = function
    | a :: (b :: _ as rest) ->
        (a lxor b) = 1 || tautological rest
    | _ -> false
  in
  if tautological sorted then None else Some (Array.of_list sorted)

let check_lit ~nvars l =
  let v = Types.var l in
  if v < 1 || v > nvars then
    invalid_arg
      (Printf.sprintf "Cnf: literal %d out of range (nvars = %d)" (Types.to_int l) nvars)

let of_lit_arrays ~nvars arrays =
  if nvars < 0 then invalid_arg "Cnf: negative nvars";
  let clauses = ref [] and nliterals = ref 0 and dropped = ref 0 and has_empty = ref false in
  let add_clause arr =
    Array.iter (check_lit ~nvars) arr;
    match normalise (Array.to_list arr) with
    | None -> incr dropped
    | Some c ->
        if Array.length c = 0 then has_empty := true;
        nliterals := !nliterals + Array.length c;
        clauses := c :: !clauses
  in
  List.iter add_clause arrays;
  {
    nvars;
    clauses = List.rev !clauses;
    nliterals = !nliterals;
    dropped = !dropped;
    has_empty = !has_empty;
  }

let make ~nvars clauses =
  let encode c = Array.of_list (List.map Types.lit_of_int c) in
  of_lit_arrays ~nvars (List.map encode clauses)

let nvars t = t.nvars

let nclauses t = List.length t.clauses

let clauses t = t.clauses

let iter f t = List.iter f t.clauses

let nliterals t = t.nliterals

let dropped_tautologies t = t.dropped

let has_empty_clause t = t.has_empty

let clause_eval clause assignment =
  Array.exists
    (fun l ->
      let v = assignment.(Types.var l) in
      if Types.is_pos l then v else not v)
    clause

let eval t assignment =
  if Array.length assignment < t.nvars + 1 then invalid_arg "Cnf.eval: assignment too short";
  List.for_all (fun c -> clause_eval c assignment) t.clauses

let with_extra_clauses t extra =
  let fresh = of_lit_arrays ~nvars:t.nvars extra in
  {
    nvars = t.nvars;
    clauses = t.clauses @ fresh.clauses;
    nliterals = t.nliterals + fresh.nliterals;
    dropped = t.dropped + fresh.dropped;
    has_empty = t.has_empty || fresh.has_empty;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>cnf: %d vars, %d clauses@," t.nvars (nclauses t);
  List.iter (fun c -> Format.fprintf ppf "%a@," Types.pp_clause c) t.clauses;
  Format.fprintf ppf "@]"
