(** Basic types shared across the solver: literal encoding and truth values.

    Variables are positive integers [1 .. nvars].  Literals use the minisat
    encoding: the positive literal of variable [v] is [2 * v], the negative
    literal is [2 * v + 1].  This lets every literal index directly into
    arrays of size [2 * (nvars + 1)]. *)

type lit = int
(** An encoded literal.  Always [>= 2] for a valid variable. *)

type value = True | False | Unknown
(** Truth value of a variable or literal. *)

val pos : int -> lit
(** [pos v] is the positive literal of variable [v]. *)

val neg : int -> lit
(** [neg v] is the negative literal of variable [v]. *)

val lit_of_int : int -> lit
(** [lit_of_int i] converts a DIMACS-style signed integer ([i <> 0]) to a
    literal: positive integers map to positive literals. *)

val to_int : lit -> int
(** [to_int l] is the DIMACS-style signed integer for [l]. *)

val var : lit -> int
(** [var l] is the variable of [l]. *)

val is_pos : lit -> bool
(** [is_pos l] is [true] iff [l] is a positive literal. *)

val negate : lit -> lit
(** [negate l] is the complementary literal of [l]. *)

val lit_value : value -> lit -> value
(** [lit_value v l] is the value of literal [l] given that its variable has
    value [v]. *)

val value_not : value -> value
(** Logical negation lifted to three-valued logic. *)

val pp_lit : Format.formatter -> lit -> unit
(** Prints a literal in DIMACS form (e.g. [-7]). *)

val pp_value : Format.formatter -> value -> unit

val pp_clause : Format.formatter -> lit array -> unit
(** Prints a clause as a disjunction of DIMACS literals, e.g. [(1 | -3 | 4)]. *)
