module Integrity = Gridsat_core.Integrity

type entry =
  | Submitted of {
      id : int;
      tenant : string;
      priority : string;
      digest : string;
      deadline : float option;
    }
  | Admitted of { id : int }
  | Shed of { id : int; retry_after : float }
  | Cache_hit of { id : int; answer : string }
  | Started of { id : int; hosts : int list }
  | Requeued of { id : int; reason : string }
  | Finished of { id : int; terminal : string }

type jstate = Queued | Running | Done of string

type state = {
  jobs : (int, jstate) Hashtbl.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
  mutable cache_hits : int;
  mutable requeues : int;
}

(* Full-fidelity rendering: the at-rest seal covers every field. *)
let pp_entry ppf = function
  | Submitted { id; tenant; priority; digest; deadline } ->
      Format.fprintf ppf "submitted %d %s %s %s %s" id tenant priority digest
        (match deadline with None -> "-" | Some d -> Printf.sprintf "%.3f" d)
  | Admitted { id } -> Format.fprintf ppf "admitted %d" id
  | Shed { id; retry_after } -> Format.fprintf ppf "shed %d %.3f" id retry_after
  | Cache_hit { id; answer } -> Format.fprintf ppf "cache-hit %d %s" id answer
  | Started { id; hosts } ->
      Format.fprintf ppf "started %d [%s]" id
        (String.concat " " (List.map string_of_int hosts))
  | Requeued { id; reason } -> Format.fprintf ppf "requeued %d %s" id reason
  | Finished { id; terminal } -> Format.fprintf ppf "finished %d %s" id terminal

(* Deterministic per-record byte estimate (the joblog models an
   append-only file; same records, same cost, so quota crossings replay
   at the same points). *)
let entry_bytes = function
  | Submitted { tenant; priority; digest; _ } ->
      24 + String.length tenant + String.length priority + String.length digest
  | Admitted _ -> 16
  | Shed _ -> 24
  | Cache_hit { answer; _ } -> 16 + String.length answer
  | Started { hosts; _ } -> 16 + (8 * List.length hosts)
  | Requeued { reason; _ } -> 16 + String.length reason
  | Finished { terminal; _ } -> 16 + String.length terminal

type t = {
  mutable records : (entry * int) list;  (* newest first, sealed *)
  mutable appended : int;
  mutable records_dropped : int;
  mutable quota : int;  (* bytes; 0 = unlimited *)
  mutable bytes : int;
  mutable bytes_peak : int;
  mutable degraded : bool;
  mutable degraded_entries : int;
  obs_on : bool;
  flight : Obs.Flight.t;
  flight_on : bool;
  c_appends : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_degraded : Obs.Metrics.counter;
  g_bytes : Obs.Metrics.gauge;
}

let create ?(obs = Obs.disabled) ?(quota = 0) () =
  let m = Obs.metrics obs in
  {
    records = [];
    appended = 0;
    records_dropped = 0;
    quota = max 0 quota;
    bytes = 0;
    bytes_peak = 0;
    degraded = false;
    degraded_entries = 0;
    obs_on = Obs.enabled obs;
    flight = Obs.flight obs;
    flight_on = Obs.Flight.is_enabled (Obs.flight obs);
    c_appends = Obs.Metrics.counter m "service.joblog.appends";
    c_dropped = Obs.Metrics.counter m "service.joblog.records.dropped";
    c_degraded = Obs.Metrics.counter m "service.joblog.degraded_entries";
    g_bytes = Obs.Metrics.gauge m "service.joblog.bytes";
  }

let seal e = Integrity.crc32 (Format.asprintf "%a" pp_entry e)

(* Compact structured view for the flight recorder. *)
let flight_view e : string * (string * Obs.Json.t) list =
  let i n v = (n, Obs.Json.Int v) in
  let s n v = (n, Obs.Json.String v) in
  match e with
  | Submitted { id; tenant; priority; _ } ->
      ("job_submitted", [ i "job" id; s "tenant" tenant; s "priority" priority ])
  | Admitted { id } -> ("job_admitted", [ i "job" id ])
  | Shed { id; retry_after } -> ("job_shed", [ i "job" id; ("retry_after", Obs.Json.Float retry_after) ])
  | Cache_hit { id; answer } -> ("job_cache_hit", [ i "job" id; s "answer" answer ])
  | Started { id; hosts } -> ("job_started", [ i "job" id; i "hosts" (List.length hosts) ])
  | Requeued { id; reason } -> ("job_requeued", [ i "job" id; s "reason" reason ])
  | Finished { id; terminal } -> ("job_finished", [ i "job" id; s "terminal" terminal ])

(* The joblog is append-only (there is no snapshot to compact into), so
   the quota defense is purely the explicit degraded mode: records keep
   landing — losing lifecycle records would be worse than overrunning an
   advisory quota — but each over-quota append is counted, and the
   service alarms on the transition. *)
let update_quota t =
  t.degraded <- t.quota > 0 && t.bytes > t.quota;
  if t.bytes > t.bytes_peak then t.bytes_peak <- t.bytes;
  if t.obs_on then Obs.Metrics.set t.g_bytes (float_of_int t.bytes)

let append t e =
  t.records <- (e, seal e) :: t.records;
  t.appended <- t.appended + 1;
  t.bytes <- t.bytes + entry_bytes e;
  update_quota t;
  if t.degraded then begin
    t.degraded_entries <- t.degraded_entries + 1;
    if t.obs_on then Obs.Metrics.incr t.c_degraded
  end;
  (if t.flight_on then
     let name, args = flight_view e in
     Obs.Flight.note t.flight ~sub:"service" ~args name);
  if t.obs_on then Obs.Metrics.incr t.c_appends

let scrub t =
  let ok, bad = List.partition (fun (e, d) -> seal e = d) t.records in
  if bad <> [] then begin
    t.records <- ok;
    t.records_dropped <- t.records_dropped + List.length bad;
    t.bytes <- List.fold_left (fun a (e, _) -> a + entry_bytes e) 0 ok;
    update_quota t;
    if t.obs_on then List.iter (fun _ -> Obs.Metrics.incr t.c_dropped) bad
  end

let set_quota t ~quota =
  t.quota <- max 0 quota;
  update_quota t

let quota t = t.quota

let bytes t = t.bytes

let bytes_peak t = t.bytes_peak

let degraded t = t.degraded

let degraded_entries t = t.degraded_entries

let empty_state () =
  { jobs = Hashtbl.create 32; submitted = 0; admitted = 0; shed = 0; cache_hits = 0; requeues = 0 }

let apply st = function
  | Submitted { id; _ } ->
      st.submitted <- st.submitted + 1;
      Hashtbl.replace st.jobs id Queued
  | Admitted { id } ->
      st.admitted <- st.admitted + 1;
      Hashtbl.replace st.jobs id Queued
  | Shed { id; _ } ->
      st.shed <- st.shed + 1;
      Hashtbl.replace st.jobs id (Done "shed")
  | Cache_hit { id; answer } ->
      st.cache_hits <- st.cache_hits + 1;
      Hashtbl.replace st.jobs id (Done ("cached:" ^ answer))
  | Started { id; _ } -> Hashtbl.replace st.jobs id Running
  | Requeued { id; _ } ->
      st.requeues <- st.requeues + 1;
      Hashtbl.replace st.jobs id Queued
  | Finished { id; terminal } -> Hashtbl.replace st.jobs id (Done terminal)

let replay t =
  scrub t;
  let st = empty_state () in
  List.iter (fun (e, _) -> apply st e) (List.rev t.records);
  st

let corrupt_tail t ~n =
  let rec rot k = function
    | (e, d) :: rest when k > 0 -> (e, Integrity.corrupted d) :: rot (k - 1) rest
    | rest -> rest
  in
  t.records <- rot n t.records

let entries t = List.rev_map fst t.records

let appended t = t.appended

let records_dropped t = t.records_dropped

let digest st =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) st.jobs [] |> List.sort compare in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "sub=%d adm=%d shed=%d hit=%d req=%d;" st.submitted st.admitted st.shed
       st.cache_hits st.requeues);
  List.iter
    (fun id ->
      let s =
        match Hashtbl.find st.jobs id with
        | Queued -> "queued"
        | Running -> "running"
        | Done term -> term
      in
      Buffer.add_string buf (Printf.sprintf "%d=%s;" id s))
    ids;
  let s = Buffer.contents buf in
  Printf.sprintf "%x-%x" (Integrity.fnv1a s) (Integrity.crc32 s)
