type t = {
  capacity : int;
  starvation_after : float;
  mutable queue : Job.t list;  (* submission order *)
}

let create ~capacity ~starvation_after =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; starvation_after; queue = [] }

let length t = List.length t.queue

let is_full t = List.length t.queue >= t.capacity

let enqueue t job =
  if is_full t then invalid_arg "Admission.enqueue: queue full";
  t.queue <- t.queue @ [ job ]

let requeue t job = t.queue <- t.queue @ [ job ]

let remove t job = t.queue <- List.filter (fun (j : Job.t) -> j.id <> job.Job.id) t.queue

let effective_priority t ~now (j : Job.t) =
  let base = Job.priority_level j.priority in
  if t.starvation_after <= 0. then base
  else
    let waited = now -. j.submitted_at in
    base + int_of_float (waited /. t.starvation_after)

(* Highest effective priority first; ties prefer the tenant with the
   fewest running jobs, then the earliest submission (lowest id — ids are
   handed out in submission order). *)
let best t ~now ~tenant_load =
  match t.queue with
  | [] -> None
  | first :: rest ->
      let better (a : Job.t) (b : Job.t) =
        let ea = effective_priority t ~now a and eb = effective_priority t ~now b in
        if ea <> eb then ea > eb
        else
          let la = tenant_load a.tenant and lb = tenant_load b.tenant in
          if la <> lb then la < lb else a.id < b.id
      in
      Some (List.fold_left (fun acc j -> if better j acc then j else acc) first rest)

let peek t ~now ~tenant_load = best t ~now ~tenant_load

let take t ~now ~tenant_load =
  match best t ~now ~tenant_load with
  | None -> None
  | Some j ->
      remove t j;
      Some j

let retry_after t ~base = base *. float_of_int (List.length t.queue + 1)

let queued_jobs t = t.queue
