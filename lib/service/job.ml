type priority = Low | Normal | High

let priority_level = function Low -> 0 | Normal -> 1 | High -> 2

let priority_string = function Low -> "low" | Normal -> "normal" | High -> "high"

let priority_of_string = function
  | "low" -> Ok Low
  | "normal" -> Ok Normal
  | "high" -> Ok High
  | s -> Error (Printf.sprintf "unknown priority %S (expected low|normal|high)" s)

type terminal =
  | Verdict of Gridsat_core.Master.answer
  | Cached of Gridsat_core.Master.answer
  | Shed of { retry_after : float }
  | Deadline_expired
  | Cancelled of string

type state = Queued | Running | Done of terminal

type t = {
  id : int;
  tenant : string;
  priority : priority;
  label : string;
  cnf : Sat.Cnf.t;
  digest : string;
  mutable deadline : float option;
      (* advisory: brownout stretches it, so the armed expiry timer
         re-checks this field before cancelling *)
  submitted_at : float;
  mutable state : state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable preemptions : int;
  mutable result : Gridsat_core.Master.result option;
}

let answer_string = function
  | Gridsat_core.Master.Sat _ -> "SAT"
  | Gridsat_core.Master.Unsat -> "UNSAT"
  | Gridsat_core.Master.Unknown reason -> Printf.sprintf "UNKNOWN(%s)" reason

let terminal_string = function
  | Verdict a -> "verdict:" ^ answer_string a
  | Cached a -> "cached:" ^ answer_string a
  | Shed _ -> "shed"
  | Deadline_expired -> "deadline"
  | Cancelled reason -> "cancelled:" ^ reason

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done t -> terminal_string t

let is_terminal t = match t.state with Done _ -> true | _ -> false
