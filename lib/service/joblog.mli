(** Job lifecycle journal: the service-level analogue of the master's
    write-ahead {!Gridsat_core.Journal}.

    Every admission decision and every job state transition is appended
    as a CRC-sealed record, so a service brought back after a crash can
    replay the log and recover which jobs were in flight, which had
    already reached a terminal state, and what that state was — run-level
    recovery (split trees, checkpoints) stays the per-run journal's
    business.  Records whose seal no longer matches are scrubbed and
    counted, never folded into replayed state. *)

type entry =
  | Submitted of {
      id : int;
      tenant : string;
      priority : string;
      digest : string;
      deadline : float option;
    }
  | Admitted of { id : int }
  | Shed of { id : int; retry_after : float }
  | Cache_hit of { id : int; answer : string }
  | Started of { id : int; hosts : int list }
  | Requeued of { id : int; reason : string }  (** preempted back into the queue *)
  | Finished of { id : int; terminal : string }
      (** [terminal] is {!Job.terminal_string} of the outcome *)

type jstate = Queued | Running | Done of string

type state = {
  jobs : (int, jstate) Hashtbl.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
  mutable cache_hits : int;
  mutable requeues : int;
}

type t

val create : ?obs:Obs.t -> ?quota:int -> unit -> t
(** [quota] (estimated bytes, default 0 = unlimited) is the disk quota of
    the joblog's backing store. *)

val append : t -> entry -> unit

val set_quota : t -> quota:int -> unit
(** Change the disk quota (0 lifts it); the degraded flag re-evaluates
    immediately. *)

val quota : t -> int

val bytes : t -> int
(** Deterministic estimate of the log's on-disk size. *)

val bytes_peak : t -> int

val degraded : t -> bool
(** True while the estimated size exceeds a non-zero quota.  The joblog
    is append-only (nothing to compact), so degraded mode only exits on
    quota relief; appends continue but are counted. *)

val degraded_entries : t -> int
(** Records appended while over quota. *)

val replay : t -> state
(** Scrubs, then folds the surviving records in order. *)

val entries : t -> entry list
(** Surviving records, oldest first (test hook: lets the property test
    count terminal records per job without replaying). *)

val appended : t -> int

val records_dropped : t -> int

val corrupt_tail : t -> n:int -> unit
(** Fault injection: rot the seals of the newest [n] records. *)

val digest : state -> string
(** Canonical digest of a replayed state (sorted job ids), for
    determinism checks. *)

val pp_entry : Format.formatter -> entry -> unit
