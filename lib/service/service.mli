(** Multi-tenant job service: many concurrent GridSAT runs over one
    shared host pool.

    The service owns the simulator, the network and the pool of hosts
    described by a {!Gridsat_core.Testbed}.  Each admitted job gets its
    own message bus and its own {!Gridsat_core.Master} over a sub-pool of
    leased hosts; when the run terminates (verdict, deadline expiry,
    preemption or cancellation) the lease returns to the pool and the
    next queued job is dispatched.  Batch and late hosts of the base
    testbed are ignored — the service schedules over the interactive
    pool only.

    Overload robustness:
    - a bounded admission queue sheds excess submissions immediately,
      with a retry-after hint that scales with queue depth;
    - dispatch order is priority- and fairness-aware with a starvation
      guard ({!Admission});
    - per-job deadlines cancel runs gracefully through
      {!Gridsat_core.Master.cancel} — hosts come back to the pool, the
      run journal closes with a clean [Unknown] verdict, no subproblem is
      orphaned — even when the deadline lands inside a master
      crash-failover window;
    - a strictly higher-priority queued job may preempt the weakest
      running job when the pool is exhausted; the victim is requeued,
      not lost;
    - verdicts are cached by canonical CNF digest ({!Cache}), so
      resubmitting a solved instance costs zero subproblems;
    - every lifecycle transition is journaled ({!Joblog}) with CRC
      seals, so a service restart can recover job states by replay.

    Determinism: given the same config (including [seed]), testbed and
    submission script, the whole multi-run schedule — admissions,
    dispatches, preemptions, per-job chaos — replays identically. *)

type chaos = {
  master_crash : bool;
      (** crash each job's master mid-run and restart it a few (seeded)
          seconds later *)
  corrupt_p : float;  (** per-message payload corruption probability *)
  crash_hosts : int;
      (** silently crash up to this many of each job's leased hosts
          (always leaving at least one alive) *)
  slow_hosts : int;
      (** silently slow down up to this many of each job's leased hosts
          (taken from the tail of the lease, so crash and slowdown
          targets only overlap on tiny leases) *)
  slow_factor : float;
      (** compute-budget divisor applied to slowed hosts; heartbeats and
          acks stay on time, so the straggler is invisible to crash
          detection *)
  flaky : bool;
      (** oscillate slowed hosts between full and [slow_factor] speed on
          a seeded period instead of a one-shot permanent slowdown *)
  choke : int;
      (** saturate every link of each job's run: at most this many bytes
          per [run.share_window] virtual seconds per link, excess dropped
          (0 disables).  Deterministic — no RNG draw is consumed. *)
}

val default_chaos : chaos
(** No chaos armed: all counts zero, [slow_factor] 8, [flaky] off,
    [choke] 0 — the base record to override per field. *)

type config = {
  queue_capacity : int;  (** bounded admission queue size *)
  hosts_per_job : int;  (** lease size for each dispatched run *)
  max_concurrent : int;  (** cap on simultaneously running jobs *)
  starvation_after : float;
      (** queued jobs gain one priority level per this many seconds *)
  retry_after_base : float;  (** base of the shed retry-after hint *)
  pump_period : float;  (** scheduler tick, virtual seconds *)
  preemption : bool;
  brownout_threshold : float;
      (** enter brownout when the healthy fraction of the pool drops
          below this ([0.] disables the policy, the default).  Exit has
          [+0.1] hysteresis so an oscillating host cannot flap it. *)
  brownout_stretch : float;
      (** multiplier applied to outstanding advisory deadlines when a
          brownout begins (>= 1) *)
  run : Gridsat_core.Config.t;  (** per-run master configuration *)
  chaos : chaos option;  (** per-job fault plan template, if any *)
  seed : int;  (** seeds the chaos offsets and nothing else *)
}

val default_config : config

type submit_outcome =
  | Accepted  (** queued; will run when resources allow *)
  | Cached of Gridsat_core.Master.answer  (** served from the verdict cache *)
  | Rejected of { retry_after : float }  (** shed: queue full, try later *)

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  cache_hits : int;
  deadline_expired : int;
  preempted : int;  (** preemption events (a job can count several times) *)
  cancelled : int;
  completed : int;  (** jobs that reached a run verdict *)
  hosts_total : int;
  hosts_free : int;
  hosts_healthy : int;
      (** hosts currently admissible with a health score >= 0.4 *)
  brownout : bool;  (** the service is in brownout right now *)
  brownouts : int;  (** brownout entries so far *)
  deadlines_stretched : int;
      (** advisory deadlines stretched by brownout entries *)
  resource_pressure : bool;
      (** the second brownout dimension is asserted right now: the joblog
          is over its disk quota, or a running master reports pressure
          (degraded run journal, a client outbox latched over its
          watermark, recent share-budget sheds) *)
  joblog_degraded_entries : int;
      (** joblog records appended while over its disk quota *)
}

type t

val create :
  ?obs:Obs.t ->
  ?slo:Obs.Slo.spec ->
  ?on_flight:(name:string -> Obs.Json.t -> unit) ->
  ?on_expo:(string -> unit) ->
  ?expo_period:float ->
  cfg:config ->
  testbed:Gridsat_core.Testbed.t ->
  unit ->
  t
(** Validates the configuration ([Invalid_argument] on nonsense: empty
    pool, [hosts_per_job] larger than the pool, non-positive capacities
    or periods, invalid [run] config) and sets up the shared simulator,
    network and host pool.

    Observability wiring (all optional):
    - [slo]: a parsed {!Obs.Slo} spec; the service feeds it at
      schedule/terminal transitions, surfaces it in the report's ["slo"]
      section, and trips an [slo-fast-burn] anomaly on fast burn;
    - [on_flight]: called with the canonical file name and document each
      time an anomaly trigger dumps the flight recorder of [obs] (the
      dumps are also retained, see {!flight_dumps});
    - [on_expo]: called with the Prometheus-style exposition of the
      metrics registry every [expo_period] (default 30) virtual seconds
      while jobs are outstanding, and once more when {!run} returns. *)

val submit :
  t ->
  tenant:string ->
  priority:Job.priority ->
  ?deadline_in:float ->
  ?label:string ->
  Sat.Cnf.t ->
  submit_outcome
(** Submits a job at the current virtual time.  [deadline_in] is
    relative to submission; when it expires the job is cancelled
    gracefully wherever it is (queued or running).  Cache hits and sheds
    are decided — and the job made terminal — before this returns. *)

val submit_at :
  t ->
  at:float ->
  tenant:string ->
  priority:Job.priority ->
  ?deadline_in:float ->
  ?label:string ->
  Sat.Cnf.t ->
  unit
(** Scripts a future submission at absolute virtual time [at]; {!run}
    keeps driving the simulation until all scripted submissions have
    landed and resolved. *)

val cancel_job : t -> id:int -> reason:string -> bool
(** External cancellation.  [false] if the job is unknown or already
    terminal. *)

val run : t -> unit
(** Drives the simulation until every submitted and scripted job has
    reached a terminal state.  If the event queue ever drains with jobs
    still outstanding (should be impossible — the pump re-arms itself),
    the leftovers are cancelled with a clean ["service stalled"] terminal
    rather than raising. *)

val outstanding : t -> bool

val jobs : t -> Job.t list
(** All jobs ever submitted, in submission order. *)

val stats : t -> stats

val joblog : t -> Joblog.t

val verdict_cache : t -> Cache.t

val sim : t -> Grid.Sim.t

val health : t -> Gridsat_core.Health.t
(** The pool-global host-health model shared across every run the
    service dispatches: a host that misbehaved under one job starts its
    next lease already demoted (or in probation). *)

val slo : t -> Obs.Slo.t option
(** The live SLO tracker, when the service was created with a spec. *)

val anomalies : t -> Obs.Anomaly.trigger list
(** All anomaly triggers fired so far (oldest first). *)

val flight_dumps : t -> (string * Obs.Json.t) list
(** Flight-recorder incident dumps captured so far, oldest first, as
    [(canonical file name, document)]. *)

val running_masters : t -> (int * Gridsat_core.Master.t) list
(** [(job id, master)] for currently running jobs — test hook for
    injecting faults mid-run. *)

val report : t -> Obs.Json.t
(** Aggregated service report: meta, the counters above (including
    brownout state), a per-host health table, per-job rows (state, wait,
    outcome, splits/messages when a run happened), plus the shared
    metrics registry and span summary. *)
