(** Bounded admission queue with priority, tenant fairness and a
    starvation guard.

    Admission is where overload turns into graceful degradation instead
    of collapse: when the queue is full the job is {e shed} immediately
    with a retry-after hint, rather than accepted into a backlog the
    service cannot drain.

    Dispatch order is by {e effective} priority: the job's base priority
    plus an aging bonus of one level per [starvation_after] seconds
    waited — so a Low job cannot be starved forever by a stream of High
    arrivals.  Ties prefer the tenant with the fewest running jobs
    (fairness), then FIFO by submission. *)

type t

val create : capacity:int -> starvation_after:float -> t
(** [capacity] is the maximum number of queued (not running) jobs;
    [starvation_after <= 0] disables aging. *)

val length : t -> int

val is_full : t -> bool

val enqueue : t -> Job.t -> unit
(** Raises [Invalid_argument] if the queue is full — callers must check
    {!is_full} and shed instead. *)

val requeue : t -> Job.t -> unit
(** Re-admits a preemption victim.  Bypasses the capacity check: the job
    was already admitted once, and shedding it now would break the
    admitted-jobs-reach-a-real-terminal guarantee. *)

val remove : t -> Job.t -> unit
(** Drops the job from the queue if present (deadline expiry while
    still queued). *)

val effective_priority : t -> now:float -> Job.t -> int
(** Base priority level plus the aging bonus earned so far. *)

val peek : t -> now:float -> tenant_load:(string -> int) -> Job.t option
(** The job that would be dispatched next, without removing it.
    [tenant_load] reports how many jobs a tenant currently has
    running. *)

val take : t -> now:float -> tenant_load:(string -> int) -> Job.t option
(** {!peek} and remove. *)

val retry_after : t -> base:float -> float
(** Backoff hint handed to a shed submitter: scales with queue depth, so
    a deeper backlog pushes retries further out. *)

val queued_jobs : t -> Job.t list
(** Current contents in submission order (for reports and stall
    cleanup). *)
