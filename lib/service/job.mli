(** A solve job: one CNF instance submitted to the multi-tenant service.

    A job moves through at most three states — queued, running, done —
    and lands in {e exactly one} terminal outcome.  The terminal set is
    the contract the property tests pin: whatever the chaos plan does to
    the masters underneath, every admitted job ends up with one of these
    and nothing else. *)

type priority = Low | Normal | High

val priority_level : priority -> int
(** [Low] is 0, [Normal] 1, [High] 2. *)

val priority_string : priority -> string

val priority_of_string : string -> (priority, string) result

type terminal =
  | Verdict of Gridsat_core.Master.answer
      (** the run finished on its own: SAT, UNSAT or Unknown (timeout) *)
  | Cached of Gridsat_core.Master.answer
      (** served from the verdict cache; no subproblem was dispatched *)
  | Shed of { retry_after : float }
      (** refused at admission (queue full); [retry_after] is the backoff
          hint returned to the submitter, in virtual seconds *)
  | Deadline_expired  (** the per-job deadline cancelled the run *)
  | Cancelled of string  (** external cancellation (operator abort, stall) *)

type state = Queued | Running | Done of terminal

type t = {
  id : int;
  tenant : string;
  priority : priority;
  label : string;
  cnf : Sat.Cnf.t;
  digest : string;  (** canonical CNF digest (see {!Cache.digest}) *)
  mutable deadline : float option;
      (** absolute virtual time, if any.  Advisory: a service brownout
          stretches it, and the armed expiry timer re-checks this field
          before cancelling. *)
  submitted_at : float;
  mutable state : state;
  mutable started_at : float option;  (** first dispatch (not re-set on requeue) *)
  mutable finished_at : float option;
  mutable preemptions : int;  (** times this job was preempted and requeued *)
  mutable result : Gridsat_core.Master.result option;
      (** the underlying run's result, when a run actually happened *)
}

val answer_string : Gridsat_core.Master.answer -> string
(** ["SAT"], ["UNSAT"] or ["UNKNOWN(<reason>)"]. *)

val terminal_string : terminal -> string
(** Stable one-token-ish rendering used by the job log and reports:
    ["verdict:SAT"], ["cached:UNSAT"], ["shed"], ["deadline"],
    ["cancelled:<reason>"]. *)

val state_string : state -> string

val is_terminal : t -> bool
