(** Verdict cache keyed by canonical CNF digest.

    Two submissions of the same formula — same clauses in any order, any
    duplication, any clause-internal literal order — canonicalise to the
    same key, so the second one is served instantly without dispatching a
    single subproblem.

    Trust argument: the cache only ever stores verdicts the master
    already {e proved} — a SAT model that passed {!Sat.Model.satisfies},
    or an UNSAT verdict (certified fragment-by-fragment when certify mode
    is on).  On top of that, a cached SAT model is re-verified against
    the {e newly submitted} formula at serve time, so even a digest
    collision (or a rotted stored model) cannot make the service hand a
    wrong model to a different formula: a hit that fails re-verification
    is treated as a miss.  Unknown verdicts (timeouts, cancellations) are
    never cached — they describe the run, not the formula. *)

type t

val create : unit -> t

val digest : Sat.Cnf.t -> string
(** Canonical digest: clauses are normalised (sorted literals, sorted
    clause list, duplicates removed) before hashing, and the key pairs
    two independent hashes (FNV-1a and CRC-32) of the rendering to make
    accidental collisions negligible. *)

val find : t -> digest:string -> cnf:Sat.Cnf.t -> Gridsat_core.Master.answer option
(** A verified verdict for this formula, if one is stored.  SAT hits are
    re-checked against [cnf] before being served; a failing check counts
    as a miss (and evicts the entry). *)

val store : t -> digest:string -> Gridsat_core.Master.answer -> unit
(** Remembers a terminal verdict.  Unknown answers are ignored; an
    existing entry is kept (first proof wins). *)

val size : t -> int

val hits : t -> int

val stores : t -> int
