module Core = Gridsat_core
module Master = Core.Master
module Config = Core.Config
module Testbed = Core.Testbed
module J = Obs.Json

type chaos = {
  master_crash : bool;
  corrupt_p : float;
  crash_hosts : int;
  slow_hosts : int;
  slow_factor : float;
  flaky : bool;
  choke : int;
}

type config = {
  queue_capacity : int;
  hosts_per_job : int;
  max_concurrent : int;
  starvation_after : float;
  retry_after_base : float;
  pump_period : float;
  preemption : bool;
  brownout_threshold : float;
  brownout_stretch : float;
  run : Config.t;
  chaos : chaos option;
  seed : int;
}

let default_chaos =
  {
    master_crash = false;
    corrupt_p = 0.;
    crash_hosts = 0;
    slow_hosts = 0;
    slow_factor = 8.;
    flaky = false;
    choke = 0;
  }

let default_config =
  {
    queue_capacity = 16;
    hosts_per_job = 3;
    max_concurrent = 4;
    starvation_after = 120.;
    retry_after_base = 30.;
    pump_period = 1.;
    preemption = true;
    brownout_threshold = 0.;
    brownout_stretch = 1.5;
    run = Config.default;
    chaos = None;
    seed = 0;
  }

type submit_outcome =
  | Accepted
  | Cached of Master.answer
  | Rejected of { retry_after : float }

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  cache_hits : int;
  deadline_expired : int;
  preempted : int;
  cancelled : int;
  completed : int;
  hosts_total : int;
  hosts_free : int;
  hosts_healthy : int;
  brownout : bool;
  brownouts : int;
  deadlines_stretched : int;
  resource_pressure : bool;
  joblog_degraded_entries : int;
}

(* Why a job's run is being torn down before its own verdict: set by the
   service before Master.cancel, read back when the finished run is
   finalised.  Tracking intent here (instead of parsing the master's
   Unknown reason string) keeps the terminal-state decision in one
   place. *)
type intent = Deadline | Preempt | Abort of string

type running = {
  rjob : Job.t;
  master : Master.t;
  lease : Testbed.host list;
  mutable cancel_intent : intent option;
}

type t = {
  sim : Grid.Sim.t;
  net : Grid.Network.t;
  obs : Obs.t;
  slo : Obs.Slo.t option;
  on_flight : (name:string -> J.t -> unit) option;
  on_expo : (string -> unit) option;
  expo_period : float;
  mutable flight_dumps : (string * J.t) list;  (* newest first *)
  d_cache_hit : Obs.Anomaly.detector;  (* 0/1 stream; fires on hit-rate collapse *)
  cfg : config;
  base : Testbed.t;
  mutable free_hosts : Testbed.host list;  (* ascending by resource id *)
  hosts_total : int;
  adm : Admission.t;
  cache : Cache.t;
  log : Joblog.t;
  mutable running : running list;
  mutable all_jobs : Job.t list;  (* newest first *)
  mutable next_id : int;
  mutable pump_armed : bool;
  mutable pending_submissions : int;
  rng : Random.State.t;
  health : Core.Health.t;
      (* one model shared across every run the service dispatches: host
         ids are pool-global, so a host that misbehaved under one job
         starts its next lease already demoted (or in probation) *)
  mutable brownout : bool;
  mutable n_brownouts : int;
  mutable joblog_degraded_seen : bool;  (* edge detector for the durability alarm *)
  mutable n_stretched : int;
  (* plain counters mirrored into Obs so they land in reports *)
  mutable n_submitted : int;
  mutable n_admitted : int;
  mutable n_shed : int;
  mutable n_cache_hits : int;
  mutable n_deadline : int;
  mutable n_preempted : int;
  mutable n_cancelled : int;
  mutable n_completed : int;
  c_submitted : Obs.Metrics.counter;
  c_admitted : Obs.Metrics.counter;
  c_shed : Obs.Metrics.counter;
  c_cache_hit : Obs.Metrics.counter;
  c_deadline : Obs.Metrics.counter;
  c_preempted : Obs.Metrics.counter;
  c_cancelled : Obs.Metrics.counter;
  c_completed : Obs.Metrics.counter;
}

let host_id (h : Testbed.host) = h.Testbed.resource.Grid.Resource.id

let by_id a b = compare (host_id a) (host_id b)

let create ?(obs = Obs.disabled) ?slo ?on_flight ?on_expo ?(expo_period = 30.) ~cfg
    ~testbed () =
  if expo_period <= 0. then invalid_arg "Service.create: expo_period must be positive";
  Config.validate_exn cfg.run;
  if cfg.queue_capacity < 1 then invalid_arg "Service.create: queue_capacity must be >= 1";
  if cfg.max_concurrent < 1 then invalid_arg "Service.create: max_concurrent must be >= 1";
  if cfg.pump_period <= 0. then invalid_arg "Service.create: pump_period must be positive";
  if cfg.retry_after_base <= 0. then invalid_arg "Service.create: retry_after_base must be positive";
  let pool = List.sort by_id testbed.Testbed.hosts in
  let n = List.length pool in
  if n = 0 then invalid_arg "Service.create: empty host pool";
  if cfg.hosts_per_job < 1 || cfg.hosts_per_job > n then
    invalid_arg "Service.create: hosts_per_job must be in [1, pool size]";
  (match cfg.chaos with
  | Some ch when ch.corrupt_p < 0. || ch.corrupt_p > 1. ->
      invalid_arg "Service.create: chaos corrupt_p must be in [0,1]"
  | Some ch when ch.slow_hosts > 0 && ch.slow_factor <= 0. ->
      invalid_arg "Service.create: chaos slow_factor must be positive"
  | _ -> ());
  if cfg.brownout_threshold < 0. || cfg.brownout_threshold > 1. then
    invalid_arg "Service.create: brownout_threshold must be in [0,1]";
  if cfg.brownout_stretch < 1. then
    invalid_arg "Service.create: brownout_stretch must be >= 1";
  let sim = Grid.Sim.create ~obs () in
  Obs.set_clock obs (fun () -> Grid.Sim.now sim);
  let net = Grid.Network.create () in
  testbed.Testbed.configure_network net;
  let m = Obs.metrics obs in
  let t =
  {
    sim;
    net;
    obs;
    slo = Option.map Obs.Slo.create slo;
    on_flight;
    on_expo;
    expo_period;
    flight_dumps = [];
    d_cache_hit =
      Obs.Anomaly.detector (Obs.anomaly obs) ~name:"cache-hit-rate" ~direction:`Low
        ~min_n:16 ();
    cfg;
    base = testbed;
    free_hosts = pool;
    hosts_total = n;
    adm = Admission.create ~capacity:cfg.queue_capacity ~starvation_after:cfg.starvation_after;
    cache = Cache.create ();
    log = Joblog.create ~obs ~quota:cfg.run.Config.journal_quota ();
    running = [];
    all_jobs = [];
    next_id = 1;
    pump_armed = false;
    pending_submissions = 0;
    rng = Random.State.make [| cfg.seed; 0x5e47 |];
    health = Core.Health.create ();
    brownout = false;
    n_brownouts = 0;
    joblog_degraded_seen = false;
    n_stretched = 0;
    n_submitted = 0;
    n_admitted = 0;
    n_shed = 0;
    n_cache_hits = 0;
    n_deadline = 0;
    n_preempted = 0;
    n_cancelled = 0;
    n_completed = 0;
    c_submitted = Obs.Metrics.counter m "service.jobs.submitted";
    c_admitted = Obs.Metrics.counter m "service.jobs.admitted";
    c_shed = Obs.Metrics.counter m "service.jobs.shed";
    c_cache_hit = Obs.Metrics.counter m "service.jobs.cache_hit";
    c_deadline = Obs.Metrics.counter m "service.jobs.deadline_expired";
    c_preempted = Obs.Metrics.counter m "service.jobs.preempted";
    c_cancelled = Obs.Metrics.counter m "service.jobs.cancelled";
    c_completed = Obs.Metrics.counter m "service.jobs.completed";
  }
  in
  (* every anomaly trigger dumps the flight recorder: the rings hold the
     causally-ordered window that led up to the trigger *)
  (if Obs.Anomaly.is_enabled (Obs.anomaly obs) && Obs.Flight.is_enabled (Obs.flight obs)
   then
     Obs.Anomaly.on_trigger (Obs.anomaly obs) (fun tr ->
         let doc =
           Obs.Flight.dump (Obs.flight obs) ~at:tr.Obs.Anomaly.at ~trigger:tr.rule
             ~detail:tr.detail ()
         in
         let name = Obs.Flight.file_name ~at:tr.Obs.Anomaly.at ~trigger:tr.rule in
         t.flight_dumps <- (name, doc) :: t.flight_dumps;
         match t.on_flight with Some f -> f ~name doc | None -> ()));
  (match t.slo with
  | Some slo ->
      Obs.Slo.on_fast_burn slo (fun ~tenant ~target ~burn ->
          Obs.Anomaly.trip (Obs.anomaly obs) ~at:(Grid.Sim.now sim) ~rule:"slo-fast-burn"
            ~value:burn ~detail:(tenant ^ "/" ^ target) ())
  | None -> ());
  t

let now t = Grid.Sim.now t.sim

let outstanding t =
  t.pending_submissions > 0 || Admission.length t.adm > 0 || t.running <> []

let tenant_load t tenant =
  List.length (List.filter (fun r -> r.rjob.Job.tenant = tenant) t.running)

(* Terminal transition for every outcome except shed/cache-hit (those are
   decided inside submit, before the job ever counts as admitted). *)
let finish_job t (job : Job.t) terminal =
  job.Job.state <- Job.Done terminal;
  job.Job.finished_at <- Some (now t);
  Joblog.append t.log (Joblog.Finished { id = job.Job.id; terminal = Job.terminal_string terminal });
  let tenant = job.Job.tenant in
  (match (t.slo, terminal) with
  | Some slo, Job.Verdict _ ->
      Obs.Slo.note_solved slo ~now:(now t) ~tenant (now t -. job.Job.submitted_at)
  | Some slo, (Job.Deadline_expired | Job.Cancelled _ | Job.Shed _) ->
      Obs.Slo.note_error slo ~now:(now t) ~tenant
  | Some slo, Job.Cached _ ->
      Obs.Slo.note_solved slo ~now:(now t) ~tenant (now t -. job.Job.submitted_at)
  | None, _ -> ());
  match terminal with
  | Job.Verdict _ ->
      t.n_completed <- t.n_completed + 1;
      Obs.Metrics.incr t.c_completed;
      Obs.Metrics.observe
        (Obs.Metrics.histogram (Obs.metrics t.obs) ~labels:[ ("tenant", tenant) ]
           "service.e2e_s")
        (now t -. job.Job.submitted_at)
  | Job.Deadline_expired ->
      t.n_deadline <- t.n_deadline + 1;
      Obs.Metrics.incr t.c_deadline;
      Obs.Anomaly.trip (Obs.anomaly t.obs) ~at:(now t) ~rule:"deadline-miss"
        ~detail:(Printf.sprintf "job %d tenant %s" job.Job.id tenant) ()
  | Job.Cancelled _ ->
      t.n_cancelled <- t.n_cancelled + 1;
      Obs.Metrics.incr t.c_cancelled
  | Job.Cached _ | Job.Shed _ -> ()

(* Return a finished run's lease to the pool and give its job a terminal
   state (or requeue it, if it was preempted). *)
let finalize_run t r =
  let job = r.rjob in
  t.running <- List.filter (fun x -> x != r) t.running;
  t.free_hosts <- List.sort by_id (r.lease @ t.free_hosts);
  (let flight = Obs.flight t.obs in
   if Obs.Flight.is_enabled flight then
     Obs.Flight.note flight ~sub:"pool"
       ~args:
         [
           ("job", J.Int job.Job.id);
           ("hosts", J.List (List.map (fun h -> J.Int (host_id h)) r.lease));
         ]
       "lease_returned");
  let result = Master.result r.master in
  job.Job.result <- Some result;
  match r.cancel_intent with
  | Some Preempt ->
      job.Job.state <- Job.Queued;
      job.Job.preemptions <- job.Job.preemptions + 1;
      Joblog.append t.log (Joblog.Requeued { id = job.Job.id; reason = "preempted" });
      Admission.requeue t.adm job
  | Some Deadline -> finish_job t job Job.Deadline_expired
  | Some (Abort reason) -> finish_job t job (Job.Cancelled reason)
  | None ->
      let answer = result.Master.answer in
      Cache.store t.cache ~digest:job.Job.digest answer;
      finish_job t job (Job.Verdict answer)

(* Seeded per-job fault plan, offsets drawn from the service RNG (the
   draw order follows the deterministic dispatch order, so the whole
   schedule replays). *)
let arm_chaos t ch ~(master : Master.t) ~bus ~(job : Job.t) ~lease =
  let start = now t in
  let frnd hi = Random.State.float t.rng hi in
  let specs = ref [] in
  if ch.corrupt_p > 0. then
    specs :=
      Grid.Fault.Corrupt_messages
        { src_site = None; dst_site = None; p = ch.corrupt_p; from_t = start; until_t = start +. 1e6 }
      :: !specs;
  if ch.choke > 0 then
    specs :=
      Grid.Fault.Choke_link
        {
          src_site = None;
          dst_site = None;
          bytes_per_window = ch.choke;
          window = t.cfg.run.Config.share_window;
          from_t = start;
          until_t = start +. 1e6;
        }
      :: !specs;
  if ch.master_crash then begin
    let at = start +. 1. +. frnd 1.5 in
    (* under hot-standby replication the crashed primary never restarts —
       the standby's lease expiry promotes it instead.  The draw still
       happens so the rest of the chaos schedule stays aligned with the
       equivalent non-standby run at the same seed. *)
    let drawn = 1. +. frnd 1. in
    let restart_after = if t.cfg.run.Config.standby then infinity else drawn in
    specs := Grid.Fault.Crash_master { at; restart_after } :: !specs
  end;
  let crashes = min ch.crash_hosts (List.length lease - 1) in
  List.iteri
    (fun i h ->
      if i < crashes then
        specs :=
          Grid.Fault.Crash_host { host = host_id h; at = start +. 0.8 +. (float_of_int i *. 0.7) +. frnd 0.7 }
          :: !specs)
    lease;
  (* stragglers take the tail of the lease, so crash and slowdown targets
     only overlap when the lease is smaller than both counts *)
  let n_lease = List.length lease in
  let slows = min ch.slow_hosts n_lease in
  List.iteri
    (fun i h ->
      if i >= n_lease - slows then begin
        let at = start +. 0.5 +. frnd 1.0 in
        if ch.flaky then
          specs :=
            Grid.Fault.Flaky_host
              {
                host = host_id h;
                factor = ch.slow_factor;
                period = 4. +. frnd 4.;
                from_t = at;
                until_t = at +. 1e6;
              }
            :: !specs
        else
          specs := Grid.Fault.Slow_host { host = host_id h; at; factor = ch.slow_factor } :: !specs
      end)
    lease;
  if !specs <> [] then begin
    let ctl =
      Grid.Fault.arm ~sim:t.sim
        ~seed:(t.cfg.seed + (31 * job.Job.id))
        ~on_crash:(fun host -> Master.crash_host master host)
        ~on_hang:(fun host -> Master.hang_host master host)
        ~on_master_crash:(fun () -> Master.crash_master master)
        ~on_master_restart:(fun () -> Master.restart_master master)
        ~on_storage_corrupt:(fun ~journal_records ~checkpoints ->
          Master.corrupt_storage master ~journal_records ~checkpoints)
        ~on_slow:(fun host factor -> Master.slow_host master host factor)
        ~on_disk_full:(fun ~quota -> Master.set_journal_quota master ~quota)
        !specs
    in
    Grid.Everyware.set_corrupt bus Core.Protocol.corrupt;
    Grid.Everyware.set_fault bus (fun ~src_site ~dst_site ~bytes ->
        Grid.Fault.decide ctl ~src_site ~dst_site ~bytes)
  end

let start_job t (job : Job.t) =
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | h :: rest -> split (n - 1) (h :: acc) rest
  in
  let lease, free = split t.cfg.hosts_per_job [] t.free_hosts in
  t.free_hosts <- free;
  (* Each run lives on its own bus over the shared sim+network: endpoint
     ids (master 0, host resource ids) cannot collide across jobs, and
     per-job fault hooks stay contained.  The sub-testbed's network hook
     is a no-op — the service configured the links once at creation. *)
  let sub =
    {
      Testbed.name = Printf.sprintf "%s/job-%d" t.base.Testbed.name job.Job.id;
      master_site = t.base.Testbed.master_site;
      hosts = lease;
      batch = None;
      late_hosts = [];
      configure_network = (fun _ -> ());
    }
  in
  (* every instrument a job's master/clients/solvers create goes through
     a scoped handle: samples land in job/tenant-labeled series instead
     of bleeding into the instruments of concurrently running jobs *)
  let job_obs =
    Obs.scope t.obs
      ~labels:[ ("job", string_of_int job.Job.id); ("tenant", job.Job.tenant) ]
  in
  let bus = Grid.Everyware.create ~obs:job_obs t.sim t.net in
  let rcfg = { t.cfg.run with Config.seed = t.cfg.run.Config.seed + job.Job.id } in
  let master =
    Master.create ~obs:job_obs ~health:t.health ~sim:t.sim ~net:t.net ~bus ~cfg:rcfg
      ~testbed:sub job.Job.cnf
  in
  (match t.cfg.chaos with None -> () | Some ch -> arm_chaos t ch ~master ~bus ~job ~lease);
  job.Job.state <- Job.Running;
  if job.Job.started_at = None then job.Job.started_at <- Some (now t);
  let wait = now t -. job.Job.submitted_at in
  (match t.slo with
  | Some slo -> Obs.Slo.note_queue_wait slo ~now:(now t) ~tenant:job.Job.tenant wait
  | None -> ());
  Obs.Metrics.observe
    (Obs.Metrics.histogram (Obs.metrics t.obs)
       ~labels:[ ("tenant", job.Job.tenant) ]
       "service.queue_wait_s")
    wait;
  (let flight = Obs.flight t.obs in
   if Obs.Flight.is_enabled flight then
     Obs.Flight.note flight ~sub:"pool"
       ~args:
         [
           ("job", J.Int job.Job.id);
           ("hosts", J.List (List.map (fun h -> J.Int (host_id h)) lease));
         ]
       "lease_granted");
  Joblog.append t.log (Joblog.Started { id = job.Job.id; hosts = List.map host_id lease });
  t.running <- { rjob = job; master; lease; cancel_intent = None } :: t.running

let can_dispatch t =
  List.length t.running < t.cfg.max_concurrent
  && List.length t.free_hosts >= t.cfg.hosts_per_job

let admit t =
  let progress = ref true in
  while !progress && can_dispatch t do
    match Admission.take t.adm ~now:(now t) ~tenant_load:(tenant_load t) with
    | Some job -> start_job t job
    | None -> progress := false
  done

(* When the pool is exhausted and the next queued job outranks (by base
   priority, not aging) the weakest running one, cancel that victim and
   requeue it.  One victim per tick keeps the policy gradual and cheap. *)
let maybe_preempt t =
  if t.cfg.preemption && not (can_dispatch t) then
    match Admission.peek t.adm ~now:(now t) ~tenant_load:(tenant_load t) with
    | None -> ()
    | Some waiting -> (
        let level (r : running) = Job.priority_level r.rjob.Job.priority in
        let weaker a b =
          (* lowest priority; ties prefer the youngest run (least sunk
             work), then the higher job id *)
          level a < level b
          || (level a = level b
             && (a.rjob.Job.started_at > b.rjob.Job.started_at
                || (a.rjob.Job.started_at = b.rjob.Job.started_at && a.rjob.Job.id > b.rjob.Job.id)))
        in
        let victim =
          List.fold_left
            (fun acc r ->
              if r.cancel_intent <> None then acc
              else match acc with None -> Some r | Some b -> if weaker r b then Some r else acc)
            None t.running
        in
        match victim with
        | Some r when level r < Job.priority_level waiting.Job.priority ->
            t.n_preempted <- t.n_preempted + 1;
            Obs.Metrics.incr t.c_preempted;
            r.cancel_intent <- Some Preempt;
            Master.cancel r.master ~reason:"preempted";
            finalize_run t r
        | _ -> ())

(* ---------- brownout ---------- *)

(* A host counts as healthy when it may receive work (breaker not open)
   and its blended score has not collapsed.  Unknown hosts score 1.0, so
   a fresh service starts at full health. *)
let healthy_hosts t =
  let tnow = now t in
  List.fold_left
    (fun acc h ->
      let id = host_id h in
      if
        Core.Health.admissible t.health ~host:id ~now:tnow
        && Core.Health.score t.health ~host:id >= 0.4
      then acc + 1
      else acc)
    0 t.base.Testbed.hosts

(* Advisory deadlines stretch under brownout: the capacity the submitter
   sized its deadline against is partly gone, so expiring jobs on
   schedule would turn a capacity dip into an outage.  The armed expiry
   timers re-check [Job.deadline] before cancelling (see
   [arm_deadline]). *)
let stretch_deadlines t =
  let tnow = now t in
  List.iter
    (fun (job : Job.t) ->
      match (job.Job.state, job.Job.deadline) with
      | (Job.Queued | Job.Running), Some d when d > tnow ->
          job.Job.deadline <- Some (tnow +. ((d -. tnow) *. t.cfg.brownout_stretch));
          t.n_stretched <- t.n_stretched + 1
      | _ -> ())
    (List.rev t.all_jobs)

let shed_low_queued t =
  List.iter
    (fun (job : Job.t) ->
      if job.Job.state = Job.Queued && job.Job.priority = Job.Low then begin
        Admission.remove t.adm job;
        let retry_after = Admission.retry_after t.adm ~base:t.cfg.retry_after_base in
        job.Job.state <- Job.Done (Job.Shed { retry_after });
        job.Job.finished_at <- Some (now t);
        t.n_shed <- t.n_shed + 1;
        Obs.Metrics.incr t.c_shed;
        (match t.slo with
        | Some slo -> Obs.Slo.note_error slo ~now:(now t) ~tenant:job.Job.tenant
        | None -> ());
        Joblog.append t.log (Joblog.Shed { id = job.Job.id; retry_after })
      end)
    (Admission.queued_jobs t.adm)

(* Resource pressure is the second brownout dimension: a degraded joblog,
   or any running master reporting pressure (degraded run journal, a
   client outbox latched over its watermark, recent share-budget sheds).
   Healthy-fraction measures missing capacity; this measures capacity
   that is present but saturating its queues and disks. *)
let resource_pressure t =
  Joblog.degraded t.log || List.exists (fun r -> Master.resource_pressure r.master) t.running

(* Edge-trigger the joblog durability alarm: the joblog cannot compact
   (append-only), so crossing its quota is an operator page, not a
   recoverable hiccup. *)
let check_joblog t =
  let deg = Joblog.degraded t.log in
  if deg && not t.joblog_degraded_seen then
    Obs.Anomaly.trip (Obs.anomaly t.obs) ~at:(now t) ~rule:"joblog-degraded"
      ~detail:
        (Printf.sprintf "%d bytes over a %d quota" (Joblog.bytes t.log) (Joblog.quota t.log))
      ();
  t.joblog_degraded_seen <- deg

(* Entered when the healthy fraction of the pool drops below the
   threshold OR the service is under resource pressure; exited with
   hysteresis (threshold + 0.1) and only once the pressure has cleared,
   so an oscillating host or a flapping queue cannot flap the policy.
   On entry, queued low-priority work is shed and every outstanding
   advisory deadline stretches. *)
let update_brownout t =
  if t.cfg.brownout_threshold > 0. then begin
    let frac = float_of_int (healthy_hosts t) /. float_of_int t.hosts_total in
    let pressure = resource_pressure t in
    if (not t.brownout) && (frac < t.cfg.brownout_threshold || pressure) then begin
      t.brownout <- true;
      t.n_brownouts <- t.n_brownouts + 1;
      let rule = if frac < t.cfg.brownout_threshold then "brownout" else "brownout-resource" in
      Obs.Anomaly.trip (Obs.anomaly t.obs) ~at:(now t) ~rule ~value:frac
        ~threshold:t.cfg.brownout_threshold ();
      shed_low_queued t;
      stretch_deadlines t
    end
    else if t.brownout && frac >= t.cfg.brownout_threshold +. 0.1 && not pressure then
      t.brownout <- false
  end

let finalize_finished t =
  let done_, live = List.partition (fun r -> Master.finished r.master) t.running in
  ignore live;
  (* oldest job first: finalization order (and thus requeue/cache order)
     is a function of job ids, not of the running-list shape *)
  List.iter (finalize_run t)
    (List.sort (fun a b -> compare a.rjob.Job.id b.rjob.Job.id) done_)

let rec pump t =
  t.pump_armed <- false;
  finalize_finished t;
  check_joblog t;
  update_brownout t;
  maybe_preempt t;
  admit t;
  arm_pump t

and arm_pump t =
  if (not t.pump_armed) && outstanding t then begin
    t.pump_armed <- true;
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.pump_period (fun () -> pump t))
  end

let rec arm_deadline t (job : Job.t) =
  match job.Job.deadline with
  | None -> ()
  | Some at ->
      ignore
        (Grid.Sim.schedule_at t.sim ~time:at (fun () ->
             match job.Job.deadline with
             | Some at' when at' > at +. 1e-9 ->
                 (* a brownout stretched the deadline after this timer was
                    armed: chase the new one instead of expiring early *)
                 arm_deadline t job
             | Some _ | None -> (
             match job.Job.state with
             | Job.Done _ -> ()
             | Job.Queued ->
                 Admission.remove t.adm job;
                 finish_job t job Job.Deadline_expired
             | Job.Running -> (
                 match List.find_opt (fun r -> r.rjob == job) t.running with
                 | None -> ()
                 | Some r ->
                     if Master.finished r.master then
                       (* verdict reached before the deadline, finalization
                          pending: let the pump credit the real answer *)
                       ()
                     else begin
                       r.cancel_intent <- Some Deadline;
                       (* Master.cancel restarts a downed master first, so a
                          deadline landing inside a crash-failover window
                          still stops the clients and closes the journal *)
                       Master.cancel r.master ~reason:"deadline";
                       finalize_run t r
                     end))))

let submit t ~tenant ~priority ?deadline_in ?label cnf =
  let id = t.next_id in
  t.next_id <- id + 1;
  let label = match label with Some l -> l | None -> Printf.sprintf "job-%d" id in
  let digest = Cache.digest cnf in
  let deadline = Option.map (fun d -> now t +. d) deadline_in in
  let job =
    {
      Job.id;
      tenant;
      priority;
      label;
      cnf;
      digest;
      deadline;
      submitted_at = now t;
      state = Job.Queued;
      started_at = None;
      finished_at = None;
      preemptions = 0;
      result = None;
    }
  in
  t.all_jobs <- job :: t.all_jobs;
  t.n_submitted <- t.n_submitted + 1;
  Obs.Metrics.incr t.c_submitted;
  Joblog.append t.log
    (Joblog.Submitted
       { id; tenant; priority = Job.priority_string priority; digest; deadline });
  match Cache.find t.cache ~digest ~cnf with
  | Some answer ->
      Obs.Anomaly.observe t.d_cache_hit ~at:(now t) 1.0;
      job.Job.state <- Job.Done (Job.Cached answer);
      job.Job.finished_at <- Some (now t);
      t.n_cache_hits <- t.n_cache_hits + 1;
      Obs.Metrics.incr t.c_cache_hit;
      (match t.slo with
      | Some slo -> Obs.Slo.note_solved slo ~now:(now t) ~tenant 0.0
      | None -> ());
      Joblog.append t.log (Joblog.Cache_hit { id; answer = Job.answer_string answer });
      Cached answer
  | None ->
      Obs.Anomaly.observe t.d_cache_hit ~at:(now t) 0.0;
      (* brownout sheds lowest-priority first: Low submissions bounce at
         the door while degraded capacity is reserved for the rest *)
      if Admission.is_full t.adm || (t.brownout && priority = Job.Low) then begin
        let retry_after = Admission.retry_after t.adm ~base:t.cfg.retry_after_base in
        job.Job.state <- Job.Done (Job.Shed { retry_after });
        job.Job.finished_at <- Some (now t);
        t.n_shed <- t.n_shed + 1;
        Obs.Metrics.incr t.c_shed;
        (match t.slo with
        | Some slo -> Obs.Slo.note_error slo ~now:(now t) ~tenant
        | None -> ());
        Joblog.append t.log (Joblog.Shed { id; retry_after });
        Rejected { retry_after }
      end
      else begin
        Admission.enqueue t.adm job;
        t.n_admitted <- t.n_admitted + 1;
        Obs.Metrics.incr t.c_admitted;
        Joblog.append t.log (Joblog.Admitted { id });
        arm_deadline t job;
        arm_pump t;
        Accepted
      end

let submit_at t ~at ~tenant ~priority ?deadline_in ?label cnf =
  t.pending_submissions <- t.pending_submissions + 1;
  ignore
    (Grid.Sim.schedule_at t.sim ~time:at (fun () ->
         t.pending_submissions <- t.pending_submissions - 1;
         ignore (submit t ~tenant ~priority ?deadline_in ?label cnf)))

let cancel_job t ~id ~reason =
  match List.find_opt (fun (j : Job.t) -> j.Job.id = id) t.all_jobs with
  | None -> false
  | Some job -> (
      match job.Job.state with
      | Job.Done _ -> false
      | Job.Queued ->
          Admission.remove t.adm job;
          finish_job t job (Job.Cancelled reason);
          true
      | Job.Running -> (
          match List.find_opt (fun r -> r.rjob == job) t.running with
          | None -> false
          | Some r ->
              r.cancel_intent <- Some (Abort reason);
              Master.cancel r.master ~reason;
              finalize_run t r;
              true))

let render_expo t =
  match t.on_expo with
  | None -> ()
  | Some f -> f (Obs.Expo.render (Obs.metrics t.obs))

let rec arm_expo t =
  if t.on_expo <> None then
    ignore
      (Grid.Sim.schedule t.sim ~delay:t.expo_period (fun () ->
           render_expo t;
           if outstanding t then arm_expo t))

let run t =
  arm_expo t;
  pump t;
  while outstanding t && Grid.Sim.step t.sim do
    ()
  done;
  (* The pump re-arms itself while anything is outstanding, so the queue
     draining early should be impossible; if it ever happens, close every
     leftover with a clean terminal instead of raising. *)
  if outstanding t then begin
    List.iter
      (fun r ->
        r.cancel_intent <- Some (Abort "service stalled");
        Master.cancel r.master ~reason:"service stalled")
      t.running;
    finalize_finished t;
    List.iter
      (fun (job : Job.t) ->
        Admission.remove t.adm job;
        finish_job t job (Job.Cancelled "service stalled"))
      (Admission.queued_jobs t.adm)
  end;
  (* a final exposition write captures the terminal state *)
  render_expo t

let jobs t = List.rev t.all_jobs

let sim t = t.sim

let health t = t.health

let joblog t = t.log

let verdict_cache t = t.cache

let slo t = t.slo

let anomalies t = Obs.Anomaly.triggers (Obs.anomaly t.obs)

let flight_dumps t = List.rev t.flight_dumps

let running_masters t =
  List.map (fun r -> (r.rjob.Job.id, r.master)) t.running
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stats t =
  {
    submitted = t.n_submitted;
    admitted = t.n_admitted;
    shed = t.n_shed;
    cache_hits = t.n_cache_hits;
    deadline_expired = t.n_deadline;
    preempted = t.n_preempted;
    cancelled = t.n_cancelled;
    completed = t.n_completed;
    hosts_total = t.hosts_total;
    hosts_free = List.length t.free_hosts;
    hosts_healthy = healthy_hosts t;
    brownout = t.brownout;
    brownouts = t.n_brownouts;
    deadlines_stretched = t.n_stretched;
    resource_pressure = resource_pressure t;
    joblog_degraded_entries = Joblog.degraded_entries t.log;
  }

let job_json (j : Job.t) =
  let fopt = function None -> J.Null | Some v -> J.Float v in
  let run_fields =
    match j.Job.result with
    | None -> [ ("splits", J.Int 0); ("messages", J.Int 0); ("promotions", J.Int 0) ]
    | Some r ->
        [
          ("splits", J.Int r.Master.splits);
          ("messages", J.Int r.Master.messages);
          ("promotions", J.Int r.Master.promotions);
        ]
  in
  J.Obj
    ([
       ("id", J.Int j.Job.id);
       ("tenant", J.String j.Job.tenant);
       ("priority", J.String (Job.priority_string j.Job.priority));
       ("label", J.String j.Job.label);
       ("digest", J.String j.Job.digest);
       ("state", J.String (Job.state_string j.Job.state));
       ("submitted_at", J.Float j.Job.submitted_at);
       ("started_at", fopt j.Job.started_at);
       ("finished_at", fopt j.Job.finished_at);
       ("deadline", fopt j.Job.deadline);
       ("preemptions", J.Int j.Job.preemptions);
     ]
    @ run_fields)

let report t =
  let s = stats t in
  let service =
    J.Obj
      [
        ("submitted", J.Int s.submitted);
        ("admitted", J.Int s.admitted);
        ("shed", J.Int s.shed);
        ("cache_hits", J.Int s.cache_hits);
        ("deadline_expired", J.Int s.deadline_expired);
        ("preempted", J.Int s.preempted);
        ("cancelled", J.Int s.cancelled);
        ("completed", J.Int s.completed);
        ("hosts_total", J.Int s.hosts_total);
        ("hosts_free", J.Int s.hosts_free);
        ("hosts_healthy", J.Int s.hosts_healthy);
        ("brownout", J.Bool s.brownout);
        ("brownouts", J.Int s.brownouts);
        ("deadlines_stretched", J.Int s.deadlines_stretched);
        ("cache_size", J.Int (Cache.size t.cache));
        ("resource_pressure", J.Bool s.resource_pressure);
        ("joblog_appends", J.Int (Joblog.appended t.log));
        ("joblog_records_dropped", J.Int (Joblog.records_dropped t.log));
        ("joblog_bytes", J.Int (Joblog.bytes t.log));
        ("joblog_bytes_peak", J.Int (Joblog.bytes_peak t.log));
        ("joblog_quota", J.Int (Joblog.quota t.log));
        ("joblog_degraded", J.Bool (Joblog.degraded t.log));
        ("joblog_degraded_entries", J.Int s.joblog_degraded_entries);
        ("joblog_digest", J.String (Joblog.digest (Joblog.replay t.log)));
      ]
  in
  Obs.Report.build
    ~meta:
      [
        ("kind", J.String "service");
        ("testbed", J.String t.base.Testbed.name);
        ("seed", J.Int t.cfg.seed);
        ("queue_capacity", J.Int t.cfg.queue_capacity);
        ("hosts_per_job", J.Int t.cfg.hosts_per_job);
        ("max_concurrent", J.Int t.cfg.max_concurrent);
        ("virtual_time", J.Float (now t));
      ]
    ~sections:
      ([
         ("service", service);
         ("health", Core.Health.to_json t.health);
         ("jobs", J.List (List.map job_json (jobs t)));
       ]
      @ (match t.slo with
        | Some slo -> [ ("slo", Obs.Slo.to_json slo ~now:(now t)) ]
        | None -> [])
      @ (if Obs.Anomaly.is_enabled (Obs.anomaly t.obs) then
           [ ("anomalies", Obs.Anomaly.to_json (Obs.anomaly t.obs)) ]
         else [])
      @ [ ("metrics_merged", Obs.Metrics.merged_json (Obs.metrics t.obs)) ])
    ~metrics:(Obs.metrics t.obs) ~spans:(Obs.spans t.obs) ()
