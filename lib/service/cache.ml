module Master = Gridsat_core.Master
module Integrity = Gridsat_core.Integrity

type entry = Model of Sat.Model.t | Unsat_proved

type t = {
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable stores : int;
}

let create () = { table = Hashtbl.create 16; hits = 0; stores = 0 }

(* Canonical rendering: each clause as its sorted DIMACS literals (Cnf
   normalisation already removed duplicate literals), the clause list
   itself sorted and deduplicated.  The formula's identity is exactly
   this set-of-sets plus the variable count. *)
let canonical cnf =
  let clause arr =
    Array.to_list arr |> List.map Sat.Types.to_int |> List.sort compare
  in
  let clauses = List.map clause (Sat.Cnf.clauses cnf) in
  let clauses = List.sort_uniq compare clauses in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p %d;" (Sat.Cnf.nvars cnf));
  List.iter
    (fun c ->
      List.iter
        (fun l ->
          Buffer.add_string buf (string_of_int l);
          Buffer.add_char buf ' ')
        c;
      Buffer.add_char buf ';')
    clauses;
  Buffer.contents buf

let digest cnf =
  let s = canonical cnf in
  Printf.sprintf "%x-%x" (Integrity.fnv1a s) (Integrity.crc32 s)

let find t ~digest ~cnf =
  match Hashtbl.find_opt t.table digest with
  | None -> None
  | Some Unsat_proved ->
      t.hits <- t.hits + 1;
      Some Master.Unsat
  | Some (Model m) ->
      (* serve-time re-verification against the formula actually
         submitted: a hit never trusts the digest alone *)
      if Sat.Model.satisfies cnf m then begin
        t.hits <- t.hits + 1;
        Some (Master.Sat m)
      end
      else begin
        Hashtbl.remove t.table digest;
        None
      end

let store t ~digest answer =
  if not (Hashtbl.mem t.table digest) then
    match answer with
    | Master.Sat m ->
        Hashtbl.replace t.table digest (Model m);
        t.stores <- t.stores + 1
    | Master.Unsat ->
        Hashtbl.replace t.table digest Unsat_proved;
        t.stores <- t.stores + 1
    | Master.Unknown _ -> ()

let size t = Hashtbl.length t.table

let hits t = t.hits

let stores t = t.stores
