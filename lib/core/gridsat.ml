let solve ?(config = Config.default) ?(fault_plan = []) ?(obs = Obs.disabled) ?health ?on_master
    ~testbed cnf =
  Config.validate_exn config;
  let sim = Grid.Sim.create ~obs () in
  (* Spans carry virtual time: the whole run's trace lives on the
     simulation clock, so cross-process causality lines up in Perfetto. *)
  Obs.set_clock obs (fun () -> Grid.Sim.now sim);
  let net = Grid.Network.create () in
  let bus = Grid.Everyware.create ~obs sim net in
  let master = Master.create ~obs ?health ~sim ~net ~bus ~cfg:config ~testbed cnf in
  (match fault_plan with
  | [] -> ()
  | specs ->
      (match Grid.Fault.validate specs with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Gridsat.solve: bad fault plan: " ^ msg));
      let ctl =
        Grid.Fault.arm ~sim ~seed:config.Config.seed
          ~on_crash:(fun host -> Master.crash_host master host)
          ~on_hang:(fun host -> Master.hang_host master host)
          ~on_master_crash:(fun () -> Master.crash_master master)
          ~on_master_restart:(fun () -> Master.restart_master master)
          ~on_storage_corrupt:(fun ~journal_records ~checkpoints ->
            Master.corrupt_storage master ~journal_records ~checkpoints)
          ~on_slow:(fun host factor -> Master.slow_host master host factor)
          ~on_disk_full:(fun ~quota -> Master.set_journal_quota master ~quota)
          specs
      in
      (* the corruptor garbles a payload in place of delivering it intact:
         the inner message rots, the framing headers keep their own CRC *)
      Grid.Everyware.set_corrupt bus Protocol.corrupt;
      Grid.Everyware.set_fault bus (fun ~src_site ~dst_site ~bytes ->
          Grid.Fault.decide ctl ~src_site ~dst_site ~bytes));
  (match on_master with Some f -> f master | None -> ());
  (* Drive the simulation until the master reaches a verdict.  The master
     always arms an overall-timeout event, so this terminates. *)
  while (not (Master.finished master)) && Grid.Sim.step sim do
    ()
  done;
  (* The event queue draining without a verdict should be impossible (the
     master always arms the overall timeout), but a caller who asked for
     a run report must get one even then: close the run with a clean
     Unknown instead of raising, so --report/--trace artifacts are still
     emitted and the journal carries a verdict. *)
  if not (Master.finished master) then Master.cancel master ~reason:"simulation stalled";
  Master.result master

let answer_string = function
  | Master.Sat _ -> "SAT"
  | Master.Unsat -> "UNSAT"
  | Master.Unknown reason -> Printf.sprintf "UNKNOWN(%s)" reason

let pp_result ppf (r : Master.result) =
  Format.fprintf ppf
    "@[<v>answer          %s@,time            %.1f s@,max clients     %d@,splits          %d@,\
     shared clauses  %d (in %d batches)@,messages        %d (%d bytes)@,events          %d@]"
    (answer_string r.Master.answer) r.Master.time r.Master.max_clients r.Master.splits
    r.Master.shared_clauses r.Master.share_batches r.Master.messages r.Master.bytes
    (List.length r.Master.events)
