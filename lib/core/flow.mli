(** Watermark-bounded queues and windowed byte budgets.

    The resource-exhaustion primitives shared by the reliable-channel
    outbox (bounded buffering during a master outage), clause sharing
    (per-link bandwidth budgets) and, indirectly, the service brownout
    (queue-pressure signals).  Everything here is deterministic: shed
    decisions are a function of queue content, the configured watermarks
    and virtual time only, so bounded runs replay byte-identically. *)

(** {1 Watermark queue} *)

type 'a queue
(** A FIFO bounded by a high watermark.  Pushing past the high watermark
    sheds the lowest-value non-critical item (ties broken oldest-first);
    items satisfying the [critical] predicate are unsheddable by
    construction — a queue holding only critical items may exceed the
    watermark rather than drop one.  [under_pressure] latches when depth
    reaches the high watermark and releases once it drains to the low
    watermark (hysteresis, so an oscillating producer cannot flap
    downstream policy). *)

val queue :
  ?low:int -> high:int -> critical:('a -> bool) -> value:('a -> int) -> unit -> 'a queue
(** [low] defaults to [high / 2].  Raises [Invalid_argument] when
    [high < 1] or [low] lies outside [[0, high]].  Higher [value] means
    more worth keeping. *)

val push : 'a queue -> 'a -> 'a list
(** Append at the tail; returns the items shed to restore the watermark
    (possibly including the pushed item itself). *)

val push_front : 'a queue -> 'a -> 'a list
(** Insert at the head (requeue after a failed delivery attempt); same
    shed discipline as {!push}. *)

val pop : 'a queue -> 'a option
(** Remove the head (FIFO order). *)

val drain : 'a queue -> 'a list
(** Remove and return everything, oldest first. *)

val take_first : 'a queue -> ('a -> bool) -> 'a option
(** Remove and return the first (oldest) item satisfying the predicate. *)

val iter : 'a queue -> ('a -> unit) -> unit

val count : 'a queue -> ('a -> bool) -> int

val depth : 'a queue -> int

val peak : 'a queue -> int
(** Highest depth ever reached. *)

val shed_count : 'a queue -> int
(** Total items shed over the queue's lifetime. *)

val is_empty : 'a queue -> bool

val under_pressure : 'a queue -> bool
(** True from the instant depth reaches the high watermark until it
    drains back to the low watermark. *)

(** {1 Windowed byte budget} *)

type budget
(** Per-key (per-link) byte budget per virtual-time window, HordeSat
    style: each key may charge at most [bytes_per_window] bytes inside
    any window of [window] virtual seconds (windows are aligned to
    [floor (now / window)], so same-seed runs charge identically). *)

val budget : bytes_per_window:int -> window:float -> budget
(** Raises [Invalid_argument] when [bytes_per_window < 1] or
    [window <= 0]. *)

val admit : budget -> key:int -> now:float -> bytes:int -> bool
(** Charge [bytes] against [key]'s current window if it fits; [false]
    means the charge was refused (and counted as shed). *)

val remaining : budget -> key:int -> now:float -> int

val charged_total : budget -> int
(** Bytes admitted across all keys and windows. *)

val budget_shed_bytes : budget -> int

val budget_shed_items : budget -> int

val window_peak : budget -> int
(** The largest byte total any single key charged inside one window —
    by construction never exceeds [bytes_per_window]. *)
