module T = Sat.Types

type t = {
  nvars : int;
  facts : T.lit list;
  path : T.lit list;
  clauses : T.lit array list;
}

let initial cnf =
  { nvars = Sat.Cnf.nvars cnf; facts = []; path = []; clauses = Sat.Cnf.clauses cnf }

let nclauses t = List.length t.clauses

let depth t = List.length t.path

let bytes t =
  let clause_bytes = List.fold_left (fun acc c -> acc + 48 + (8 * Array.length c)) 0 t.clauses in
  clause_bytes + (8 * (List.length t.facts + List.length t.path)) + 64

let to_solver ~config ?obs ?obs_tid t =
  let cnf = Sat.Cnf.of_lit_arrays ~nvars:t.nvars t.clauses in
  Sat.Solver.create_with_roots ~config ?obs ?obs_tid ~facts:t.facts cnf t.path

let capture solver =
  {
    nvars = Sat.Solver.nvars solver;
    facts = Sat.Solver.root_facts solver;
    path = Sat.Solver.root_path solver;
    clauses = Sat.Solver.active_clauses solver;
  }

let prune t =
  let root = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace root l ()) t.facts;
  List.iter (fun l -> Hashtbl.replace root l ()) t.path;
  let fact_vars = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace fact_vars (T.var l) ()) t.facts;
  let satisfied c = Array.exists (fun l -> Hashtbl.mem root l) c in
  let strippable l = Hashtbl.mem root (T.negate l) && Hashtbl.mem fact_vars (T.var l) in
  let simplify c =
    if satisfied c then None
    else Some (Array.of_list (List.filter (fun l -> not (strippable l)) (Array.to_list c)))
  in
  { t with clauses = List.filter_map simplify t.clauses }

(* A subproblem is fully determined by the original formula and its
   guiding path (the paper's Figure 2 invariant): root facts are globally
   implied (the solver re-derives them by propagation) and learned clauses
   are only accelerants.  So the lineage alone reconstructs the branch. *)
let of_lineage cnf path =
  prune { nvars = Sat.Cnf.nvars cnf; facts = []; path; clauses = Sat.Cnf.clauses cnf }

let split_from solver =
  let clauses = Sat.Solver.active_clauses solver in
  match Sat.Solver.split solver with
  | None -> None
  | Some (facts, path) -> Some (prune { nvars = Sat.Solver.nvars solver; facts; path; clauses })

(* Certified transfers must stay lineage-pure: the travelling clause set is
   the clause set this client itself received (inductively, a subset of the
   original formula — [prune] with no facts only drops satisfied clauses,
   it never strips literals), and no root facts travel, so the receiver's
   whole root state is exactly its guiding path.  The master can then check
   the receiver's eventual DRUP fragment against the original CNF under
   the journaled path alone. *)
let split_pure ~origin solver =
  match Sat.Solver.split solver with
  | None -> None
  | Some (_facts, path) ->
      Some (prune { nvars = origin.nvars; facts = []; path; clauses = origin.clauses })

let capture_pure ~origin solver =
  prune
    {
      nvars = origin.nvars;
      facts = [];
      path = Sat.Solver.root_path solver;
      clauses = origin.clauses;
    }

(* Wire format:
     p subproblem <nvars> <nclauses>
     f <facts as DIMACS ints> 0
     a <path as DIMACS ints> 0
     <clause> 0
     ... *)
let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p subproblem %d %d\n" t.nvars (List.length t.clauses));
  let add_ints prefix lits =
    Buffer.add_string buf prefix;
    List.iter (fun l -> Buffer.add_string buf (string_of_int (T.to_int l) ^ " ")) lits;
    Buffer.add_string buf "0\n"
  in
  add_ints "f " t.facts;
  add_ints "a " t.path;
  List.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int (T.to_int l) ^ " ")) c;
      Buffer.add_string buf "0\n")
    t.clauses;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  let parse_ints body =
    let ints =
      String.split_on_char ' ' body
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some i -> i
             | None -> failwith ("Subproblem.of_string: not an integer: " ^ s))
    in
    match List.rev ints with
    | 0 :: rev -> List.rev_map T.lit_of_int rev
    | _ -> failwith "Subproblem.of_string: line not terminated by 0"
  in
  match lines with
  | header :: rest -> (
      match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
      | [ "p"; "subproblem"; nv; _nc ] ->
          let nvars =
            match int_of_string_opt nv with
            | Some n when n >= 0 -> n
            | _ -> failwith "Subproblem.of_string: bad variable count"
          in
          let facts = ref [] and path = ref [] and clauses = ref [] in
          List.iter
            (fun line ->
              if String.length line >= 2 && line.[0] = 'f' && line.[1] = ' ' then
                facts := parse_ints (String.sub line 2 (String.length line - 2))
              else if String.length line >= 2 && line.[0] = 'a' && line.[1] = ' ' then
                path := parse_ints (String.sub line 2 (String.length line - 2))
              else clauses := Array.of_list (parse_ints line) :: !clauses)
            rest;
          { nvars; facts = !facts; path = !path; clauses = List.rev !clauses }
      | _ -> failwith "Subproblem.of_string: missing header")
  | [] -> failwith "Subproblem.of_string: empty document"

let pp ppf t =
  Format.fprintf ppf "subproblem: %d vars, %d clauses, %d facts, path depth %d (%d bytes)"
    t.nvars (nclauses t) (List.length t.facts) (depth t) (bytes t)
