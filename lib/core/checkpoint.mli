(** Checkpoint store (paper Section 3.4).

    [Light] checkpoints persist only the root assignment of a client's
    subproblem (the clause set is recovered from the original problem
    file); [Heavy] checkpoints also persist the learned-clause database.
    The paper estimates ~0.5 GB per client for heavy checkpoints — the
    store tracks sizes so benchmarks can report that cost. *)

type t

val create : ?obs:Obs.t -> Sat.Cnf.t -> t
(** The original formula, used to rebuild clause sets for light
    checkpoints.  [obs] (default [Obs.disabled]) receives save/restore
    counters, a stored-bytes histogram, and instant-spans. *)

val save : t -> client:int -> mode:Config.checkpoint_mode -> Subproblem.t -> int
(** Stores (replacing) the client's checkpoint; returns stored bytes
    (0 for [No_checkpoint]). *)

val restore : t -> client:int -> Subproblem.t option
(** The subproblem to restart from, reconstructed per the stored mode:
    a light checkpoint yields the original clauses plus the saved root
    assignment; a heavy checkpoint yields the full saved state.  A
    snapshot whose at-rest integrity seal (CRC-32 of its serialised form,
    taken at save time) no longer matches is discarded and [None] is
    returned — restoring a rotted root assignment could silently narrow
    the search space, while [None] sends the caller down the safe
    lineage re-derivation path. *)

val corrupt_all : t -> unit
(** Fault injection: rot every stored snapshot at rest, so the next
    {!restore} of each discards it. *)

val drop : t -> client:int -> unit

val total_bytes : t -> int

val saves : t -> int

val discarded : t -> int
(** Snapshots discarded on restore because their integrity seal no longer
    matched. *)
