(** At-least-once delivery with receiver-side dedup for critical control
    messages.

    Both the master and every client own one instance.  {!send} wraps the
    payload in a {!Protocol.Reliable} envelope with a per-sender message
    id and retries it on a bounded exponential backoff until an
    {!Protocol.Ack} arrives or the attempt budget is exhausted, at which
    point the owner's [on_give_up] decides what the loss means (a donor
    returns the orphaned subproblem to the master; the master releases a
    reserved partner).  {!admit} is the receive side: it records
    [(src, mid)] pairs so retried or network-duplicated envelopes are
    acked again but delivered only once. *)

type t

val create :
  ?obs:Obs.t ->
  ?obs_tid:int ->
  ?seed:int ->
  ?jitter:float ->
  ?on_ack:(dst:int -> latency:float -> unit) ->
  sim:Grid.Sim.t ->
  send_raw:(dst:int -> Protocol.msg -> unit) ->
  active:(unit -> bool) ->
  retry_base:float ->
  max_attempts:int ->
  on_retry:(dst:int -> attempt:int -> unit) ->
  ?on_exhausted:(dst:int -> attempts:int -> unit) ->
  on_give_up:(dst:int -> Protocol.msg -> unit) ->
  unit ->
  t
(** [obs]/[obs_tid] label this channel's telemetry (send/retry/exhausted
    counters, an ack-latency histogram, and retry instant-spans) with the
    owning endpoint.
    [active] gates retries: a dead client must not keep transmitting.
    [retry_base] is the first backoff delay; attempt [k] waits
    [retry_base * 2^k], capped at [32 * retry_base].  [jitter] (clamped
    to [[0, 1]], default 0) spreads every delay uniformly over
    [±jitter×delay] using a private RNG seeded from [(seed, obs_tid)] —
    deterministic under a fixed seed, but desynchronised across
    endpoints, so channels that all exhausted during a master outage do
    not stampede the restarted master in lockstep.  [on_ack] (default
    no-op) reports each settled send's round-trip latency — the health
    model's ack-latency feed, deliberately separate from the obs-gated
    histogram.  After [max_attempts] unacked (re)transmissions,
    [on_exhausted] fires (a distinct signal that the budget ran dry —
    clients use it to detect a master outage) and then [on_give_up]
    fires with the original payload. *)

val set_retry_base : t -> float option -> unit
(** Adaptive override of the backoff base ([None] restores the
    configured constant).  The override is clamped to
    [[0.001, retry_base]]: observed-latency tuning may tighten the
    schedule but never slow it past the configured worst case. *)

val backoff : t -> int -> float
(** The delay the channel would arm for retry attempt [k]: the bounded
    exponential above, with one fresh jitter draw when jitter is on
    (exposed so tests can pin the cap and the jitter envelope). *)

val send : t -> dst:int -> Protocol.msg -> unit
(** Transmits the envelope immediately and arms the first retry timer. *)

val handle_ack : t -> mid:int -> unit
(** Settles an outstanding send; unknown mids (duplicate acks, acks after
    give-up) are ignored. *)

val handle_nack : t -> mid:int -> unit
(** The receiver reported envelope [mid] arrived corrupt: cancel its
    backoff timer and retransmit immediately.  The retransmission still
    consumes an attempt, so a link that corrupts every copy exhausts the
    bounded budget and reaches [on_give_up] rather than retrying forever.
    Unknown mids are ignored. *)

val nudge : t -> dst:int -> unit
(** Retransmits every envelope still outstanding toward [dst] right now,
    on a reset attempt budget.  Called on proof of life from a previously
    unreachable peer (a restarted master's resync request): transmissions
    made into the outage were lost, and without the reset a stale
    exhaustion timer could declare the recovered link dead. *)

val admit : t -> src:int -> mid:int -> bool
(** [true] exactly once per [(src, mid)]: the caller should ack every
    envelope but deliver only admitted ones. *)

val stop : t -> unit
(** Cancels all retry timers (owner is shutting down). *)

val outstanding : t -> int
(** Envelopes still awaiting an ack. *)

val outstanding_to : t -> dst:int -> int
(** Envelopes still awaiting an ack from one destination (clients probe a
    downed master only when no envelope toward it is already in flight). *)

val retries : t -> int
(** Total retransmissions performed. *)

val gave_up : t -> int
(** Sends abandoned after exhausting [max_attempts]. *)

val nacked : t -> int
(** Immediate retransmissions triggered by receiver NACKs. *)
