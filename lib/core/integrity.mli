(** Content digests for integrity checking.

    Everything the distributed layer persists or puts on the wire can be
    corrupted: message payloads in flight, checkpoint snapshots and
    journal records at rest.  This module provides the two digests the
    stack seals records with, both dependency-free and deterministic:

    - {!fnv1a}, a 64-bit FNV-1a hash (truncated to OCaml's native int),
      used for in-flight message frames ({!Protocol.frame}) where speed
      matters and the adversary is random bit rot, not malice;
    - {!crc32}, the standard reflected CRC-32 (polynomial 0xEDB88320),
      used for at-rest records (journal entries, checkpoint snapshots)
      where we mirror what a storage layer would do.

    A digest detects corruption; it does not authenticate.  Certification
    of {e answers} (which must not trust the sender at all) is the job of
    DRUP checking and model re-evaluation, not of this module. *)

val fnv1a : string -> int
(** 64-bit FNV-1a over the bytes of the string, truncated to [int]. *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected) over the bytes of the string, in [0, 2^32). *)

val corrupted : int -> int
(** [corrupted d] is a digest guaranteed to differ from [d] — how fault
    injection models a record whose bytes rotted while its seal (or the
    data under it) changed. *)
