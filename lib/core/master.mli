(** The GridSAT master (paper Section 3.3).

    The master owns the resource pool, launches empty clients, assigns the
    initial problem to the first registrant, brokers splits (including the
    backlog of denied requests, served longest-running-first), relays
    clause shares, directs migrations toward stronger idle resources,
    verifies reported models, submits/cancels the batch job, and decides
    termination: all subproblems exhausted means UNSAT, a verified model
    means SAT, and the overall timeout or an unrecoverable client death
    means no answer. *)

type answer = Sat of Sat.Model.t | Unsat | Unknown of string

type result = {
  answer : answer;
  time : float;  (** virtual seconds from start to termination *)
  max_clients : int;  (** peak number of simultaneously busy clients *)
  splits : int;
  share_batches : int;
  shared_clauses : int;
  messages : int;
  bytes : int;
  checkpoint_bytes : int;
  solver_stats : Sat.Stats.t;  (** aggregated over all clients *)
  events : Events.t list;  (** chronological *)
}

type t

val create :
  sim:Grid.Sim.t ->
  net:Grid.Network.t ->
  bus:Protocol.msg Grid.Everyware.t ->
  cfg:Config.t ->
  testbed:Testbed.t ->
  Sat.Cnf.t ->
  t
(** Sets up the run: registers the master endpoint, launches clients on
    every interactive host, submits the batch job if the testbed has one,
    arms the overall timeout and the NWS probes. *)

val finished : t -> bool

val result : t -> result
(** Raises [Invalid_argument] before the run has finished. *)

val busy_clients : t -> int

val busy_client_ids : t -> int list
(** Ids of currently busy clients, ascending (for fault injection). *)

val kill_client : t -> int -> unit
(** Failure injection for tests: kills the client and lets the master's
    monitoring react (free an idle resource; recover a busy client's
    subproblem from its checkpoint, or fail the run if there is none). *)

val events_so_far : t -> Events.t list

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedules an action on the run's simulator clock.  Used by tests and
    examples to inject failures or observe the run at chosen instants. *)
