(** The GridSAT master (paper Section 3.3).

    The master owns the resource pool, launches empty clients, assigns the
    initial problem to the first registrant, brokers splits (including the
    backlog of denied requests, served longest-running-first), relays
    clause shares, directs migrations toward stronger idle resources,
    verifies reported models, submits/cancels the batch job, and decides
    termination: all subproblems exhausted means UNSAT, a verified model
    means SAT, and the overall timeout or an unrecoverable client death
    means no answer.

    Fault tolerance: the master runs a lease-based failure detector over
    client heartbeats ([heartbeat_period] / [suspect_timeout]); a silent
    monitored host is declared dead and its subproblem recovered from its
    checkpoint (or from the master's own in-flight copy) onto an idle
    host, parking in a recovery queue when none is free.  When a dead
    client left no checkpoint its subproblem is re-derived from the
    original CNF and the guiding-path lineage journaled at every split —
    losing a client never loses search space.  Subproblems are tracked by
    identity (pid), so duplicated deliveries or re-homed copies cannot
    make the live count drift and cause a premature UNSAT.  Messages from
    hosts already declared dead are fenced.

    Master durability: every state transition is appended to a
    write-ahead {!Journal} (stable storage, with periodic compaction into
    snapshots).  {!crash_master} wipes all volatile state and drops the
    endpoint off the bus; {!restart_master} replays the journal, asks the
    surviving clients to resync, and after a grace window reconciles —
    adopting work the clients still hold, re-homing orphans from
    checkpoints or lineage, and fencing journal-dead hosts. *)

type answer = Sat of Sat.Model.t | Unsat | Unknown of string

type result = {
  answer : answer;
  time : float;  (** virtual seconds from start to termination *)
  max_clients : int;  (** peak number of simultaneously busy clients *)
  splits : int;
  share_batches : int;
  shared_clauses : int;
  messages : int;
  bytes : int;
  dropped_messages : int;  (** messages eaten by injected faults *)
  dropped_bytes : int;
  retries : int;  (** reliable-channel retransmissions, all senders *)
  false_suspicions : int;
      (** suspected-dead hosts that later proved alive (and were fenced) *)
  recoveries : int;  (** subproblems recovered from a checkpoint *)
  rederivations : int;
      (** lost subproblems rebuilt from the original CNF + journaled lineage *)
  master_crashes : int;  (** injected master failures survived *)
  hedges : int;
      (** straggling subproblems cloned onto a second host (first result
          wins, the loser is cancelled and fenced) *)
  hedge_cancellations : int;
      (** losing hedge copies fenced after their pid resolved elsewhere *)
  checkpoint_bytes : int;
  corrupt_detected : int;
      (** wire payloads that failed their integrity-frame digest check
          (at any endpoint) and were refused *)
  nacks : int;
      (** corrupt reliable envelopes NACKed for immediate retransmit *)
  certified_fragments : int;
      (** UNSAT fragments whose DRUP proof checked under the branch's
          recorded guiding path (certify mode) *)
  quarantines : int;
      (** clients written off because an answer failed verification *)
  checkpoints_discarded : int;
      (** checkpoint snapshots rejected by their at-rest seal *)
  journal_records_dropped : int;
      (** journal records rejected by their at-rest seal during replay *)
  ships : int;  (** journal batches shipped to the hot standby *)
  promotions : int;
      (** standby promotions (0 or 1 with a single standby): the lease on
          the primary expired and the shadow journal took over the run *)
  stale_epoch_rejections : int;
      (** frames refused, at any endpoint, because their epoch predates
          the highest one the receiver had seen — a superseded primary's
          traffic after a partition heal or zombie restart *)
  replication_divergences : int;
      (** standby shadow-replay digests that failed to match the
          primary's shipped digest — must be 0 in any sound run *)
  shares_shed : int;
      (** clause relays refused because a recipient link's share-budget
          window was exhausted (0 without a budget) *)
  share_bytes : int;  (** share-relay bytes actually put on the wire *)
  share_link_peak : int;
      (** most share bytes any one recipient link carried in any single
          budget window — bounded by [Config.share_budget] by
          construction when a budget is set *)
  dup_suppressed : int;
      (** foreign clauses clients refused on ingestion as duplicates *)
  outbox_shed : int;
      (** outage-outbox messages shed by the watermark policy across all
          clients (always share batches, never control messages) *)
  outbox_peak : int;  (** deepest any client's outage outbox ever got *)
  forced_compactions : int;
      (** emergency journal compactions forced by the disk quota *)
  degraded_entries : int;
      (** journal records appended while in journaled-degraded mode *)
  journal_bytes : int;  (** peak estimated journal occupancy in bytes *)
  solver_stats : Sat.Stats.t;  (** aggregated over all clients *)
  events : Events.t list;  (** chronological *)
}

type t

val create :
  ?obs:Obs.t ->
  ?health:Health.t ->
  sim:Grid.Sim.t ->
  net:Grid.Network.t ->
  bus:Protocol.msg Grid.Everyware.t ->
  cfg:Config.t ->
  testbed:Testbed.t ->
  Sat.Cnf.t ->
  t
(** Sets up the run: registers the master endpoint, launches clients on
    every interactive host, submits the batch job if the testbed has one,
    arms the overall timeout, the NWS probes and the failure detector.
    [obs] (default [Obs.disabled]) is threaded through every layer the
    master owns (journal, checkpoints, reliable channel, clients and
    their solvers): scheduling/recovery counters and instant-spans land
    on the master track, and the five-message split sequence is covered
    by a ["split"] span from grant to Split_ok/Split_failed.
    [health] wires a host-health model into scheduling (probation
    withholding, score-blended ranking, hedging/adaptive-timeout
    percentiles); the service passes one shared across runs.  When
    omitted, a private model is created whenever the config enables
    hedging or adaptive timeouts. *)

val finished : t -> bool

val result : t -> result
(** Raises [Invalid_argument] before the run has finished. *)

val busy_clients : t -> int

val busy_client_ids : t -> int list
(** Ids of currently busy clients, ascending (for fault injection). *)

val reserved_hosts : t -> int list
(** Ids of hosts currently parked in the [Reserved] state, ascending.
    Empty after termination (reservations are released). *)

val kill_client : t -> int -> unit
(** Failure injection for tests: kills the client and lets the master
    react immediately (free an idle resource; recover a busy client's
    subproblem from its checkpoint, or fail the run if there is none). *)

val crash_host : t -> int -> unit
(** Silent fault injection: the process dies but the master is not told —
    it discovers the death when the heartbeat lease expires. *)

val hang_host : t -> int -> unit
(** Silent fault injection: the process wedges (stops computing and
    heartbeating) but stays registered on the network. *)

val slow_host : t -> int -> float -> unit
(** Silent fault injection: [slow_host t id factor] divides the host's
    per-slice compute budget by [factor] ([1.0] restores full speed).
    The host stays perfectly responsive — heartbeats and acks on time —
    so only the health model's progress-rate signal and the hedging
    comparison against the fleet duration p99 can catch it. *)

val health : t -> Health.t option
(** The health model wired into this run's pool, if any. *)

val set_journal_quota : t -> quota:int -> unit
(** Fault injection / operations: change the journal's disk quota at run
    time (0 lifts it).  Crossing the quota forces an emergency compaction
    and, if the journal is still over, enters journaled-degraded mode
    (durability alert logged, anomaly tripped, standby shipment paused);
    relief or shrinkage exits it.  This is the [Fault.Disk_full] hook. *)

val resource_pressure : t -> bool
(** Whether the run is under resource pressure right now: the journal is
    in degraded mode, a client's outage outbox is latched above its high
    watermark, or the share budget shed within the last window.  A
    service-brownout input. *)

val corrupt_storage : t -> journal_records:int -> checkpoints:bool -> unit
(** At-rest fault injection: flips the integrity seals of the newest
    [journal_records] journal records and, if [checkpoints], of every
    checkpoint snapshot.  Silent until a replay scrubs the journal tail
    or a recovery discards the snapshot and falls back to lineage
    re-derivation. *)

val inject : t -> src:int -> Protocol.msg -> unit
(** Test hook: delivers a forged payload to the master as if [src] had
    sent it, bypassing the wire (so integrity framing cannot catch it).
    Exercises the certification and quarantine paths against answers
    that are well-formed but wrong — e.g. a {!Protocol.Finished_unsat}
    whose proof fragment does not check. *)

val crash_master : t -> unit
(** Failure injection: the master process dies.  Its endpoint disappears
    from the bus and every piece of volatile state is lost; only the
    journal and the checkpoint store (stable storage) survive.  Clients
    are not told — they discover the outage through retry exhaustion and
    keep solving autonomously.  No-op once finished or already down. *)

val restart_master : t -> unit
(** Failure injection: a replacement master starts.  It replays the
    journal, re-registers the endpoint, sends {!Protocol.Resync_request}
    to every not-known-dead client, and after [resync_grace] reconciles:
    subproblems the clients still hold are adopted, orphans are re-homed
    from their last holder's checkpoint or re-derived from lineage, and
    dispatching resumes.  No-op unless currently down — except after a
    standby promotion, where the restarted process is a superseded
    zombie: it rejoins at its old epoch and lives only until the first
    new-epoch frame fences it. *)

val cancel : t -> reason:string -> unit
(** Graceful external cancellation (deadline expiry, preemption, operator
    abort): terminates the run with a clean [Unknown reason] verdict —
    reservations released, the verdict journaled, Stop broadcast to every
    surviving client.  If the master is down when the cancel lands (a
    deadline racing a crash-failover window), a replacement is restarted
    first so the Stop actually reaches the clients.  No-op once
    finished. *)

val journal : t -> Journal.t
(** The master's write-ahead journal (for tests and bench: replay
    determinism, append/compaction counters).  After a promotion this is
    the standby's shadow journal — the shipped prefix that took over as
    the authoritative log. *)

val epoch : t -> int
(** The current master epoch: 0 until a promotion bumps it.  Stamped into
    every outgoing integrity frame so stale-primary traffic is
    recognisable fleet-wide. *)

val promoted : t -> bool
(** Whether the hot standby has taken this run over. *)

val replica : t -> Replica.t option
(** The hot-standby replica, when the config enables [standby] (for
    tests: applied counts, divergences, shadow digests). *)

val events_so_far : t -> Events.t list

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedules an action on the run's simulator clock.  Used by tests and
    examples to inject failures or observe the run at chosen instants. *)
