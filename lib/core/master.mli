(** The GridSAT master (paper Section 3.3).

    The master owns the resource pool, launches empty clients, assigns the
    initial problem to the first registrant, brokers splits (including the
    backlog of denied requests, served longest-running-first), relays
    clause shares, directs migrations toward stronger idle resources,
    verifies reported models, submits/cancels the batch job, and decides
    termination: all subproblems exhausted means UNSAT, a verified model
    means SAT, and the overall timeout or an unrecoverable client death
    means no answer.

    Fault tolerance: the master runs a lease-based failure detector over
    client heartbeats ([heartbeat_period] / [suspect_timeout]); a silent
    monitored host is declared dead and its subproblem recovered from its
    checkpoint (or from the master's own in-flight copy) onto an idle
    host, parking in a recovery queue when none is free.  Subproblems are
    tracked by identity (pid), so duplicated deliveries or re-homed copies
    cannot make the live count drift and cause a premature UNSAT.
    Messages from hosts already declared dead are fenced. *)

type answer = Sat of Sat.Model.t | Unsat | Unknown of string

type result = {
  answer : answer;
  time : float;  (** virtual seconds from start to termination *)
  max_clients : int;  (** peak number of simultaneously busy clients *)
  splits : int;
  share_batches : int;
  shared_clauses : int;
  messages : int;
  bytes : int;
  dropped_messages : int;  (** messages eaten by injected faults *)
  dropped_bytes : int;
  retries : int;  (** reliable-channel retransmissions, all senders *)
  false_suspicions : int;
      (** suspected-dead hosts that later proved alive (and were fenced) *)
  recoveries : int;  (** subproblems recovered from a checkpoint *)
  checkpoint_bytes : int;
  solver_stats : Sat.Stats.t;  (** aggregated over all clients *)
  events : Events.t list;  (** chronological *)
}

type t

val create :
  sim:Grid.Sim.t ->
  net:Grid.Network.t ->
  bus:Protocol.msg Grid.Everyware.t ->
  cfg:Config.t ->
  testbed:Testbed.t ->
  Sat.Cnf.t ->
  t
(** Sets up the run: registers the master endpoint, launches clients on
    every interactive host, submits the batch job if the testbed has one,
    arms the overall timeout, the NWS probes and the failure detector. *)

val finished : t -> bool

val result : t -> result
(** Raises [Invalid_argument] before the run has finished. *)

val busy_clients : t -> int

val busy_client_ids : t -> int list
(** Ids of currently busy clients, ascending (for fault injection). *)

val reserved_hosts : t -> int list
(** Ids of hosts currently parked in the [Reserved] state, ascending.
    Empty after termination (reservations are released). *)

val kill_client : t -> int -> unit
(** Failure injection for tests: kills the client and lets the master
    react immediately (free an idle resource; recover a busy client's
    subproblem from its checkpoint, or fail the run if there is none). *)

val crash_host : t -> int -> unit
(** Silent fault injection: the process dies but the master is not told —
    it discovers the death when the heartbeat lease expires. *)

val hang_host : t -> int -> unit
(** Silent fault injection: the process wedges (stops computing and
    heartbeating) but stays registered on the network. *)

val events_so_far : t -> Events.t list

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedules an action on the run's simulator clock.  Used by tests and
    examples to inject failures or observe the run at chosen instants. *)
