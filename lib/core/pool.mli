(** Pool state, split out of {!Master}.

    A pool is the host-side half of the old monolithic master: the
    inventory of grid hosts with their lease states ([Launching] →
    [Idle] → [Reserved] → [Busy], or [Dead]), the per-host NWS
    forecasters the scheduler ranks by, the failure-detector anchors
    ([last_heard]), and the reliable transport endpoint.  It knows
    nothing about any particular solve run — the split tree, journal and
    certification bookkeeping stay in {!Master} — which is what lets the
    {!module:Gridsat_service} front-end schedule many concurrent runs
    over one shared host inventory, leasing each run its own pool. *)

type rstate = Launching | Idle | Reserved | Busy | Dead

type host = {
  client : Client.t;
  resource : Grid.Resource.t;
  trace : Grid.Trace.t;
  nws : Grid.Nws.t;
  mutable rstate : rstate;
  mutable busy_since : float;
  mutable last_heard : float;  (** failure-detector lease anchor *)
  mutable fenced : bool;
      (** a declared-dead host that spoke again was told to stop *)
  mutable pid : Protocol.pid option;
      (** the subproblem this host is working on *)
}

type t

val create : unit -> t

val add :
  t -> sim:Grid.Sim.t -> client:Client.t -> resource:Grid.Resource.t -> trace:Grid.Trace.t -> unit
(** Registers a freshly launched host, in [Launching] state with its
    lease anchored at the current virtual time. *)

val find : t -> int -> host
val find_opt : t -> int -> host option
val iter : (int -> host -> unit) -> t -> unit
val fold : (int -> host -> 'a -> 'a) -> t -> 'a -> 'a
val size : t -> int

val set_reliable : t -> Reliable.t -> unit
(** Installs the pool's reliable transport endpoint (once, at
    construction). *)

val reliable : t -> Reliable.t

val set_health : t -> Health.t -> unit
(** Wires a host-health model into scheduling: {!idle_candidates}
    withholds hosts whose circuit breaker is open and attaches each
    admissible host's health score to its candidate, and {!rank} blends
    the score in.  Without a model every host scores 1.0 (the pure NWS
    ranking). *)

val health : t -> Health.t option

val health_score : t -> int -> float

val health_admissible : t -> now:float -> int -> bool

val busy_count : t -> int
val busy_ids : t -> int list
val reserved_ids : t -> int list

val unreserve : t -> int -> unit
(** Returns a [Reserved] host to [Idle]; no-op in any other state. *)

val idle_candidates : t -> resyncing:bool -> now:float -> Scheduler.candidate list
(** Live, admissible idle hosts as scheduler candidates, ascending by
    resource id.  Empty while [resyncing]: an "idle" host may hold
    unreported work until reconciliation closes.  Hosts in health
    probation are withheld. *)

val rank : t -> host -> float
(** The host's scheduler rank under its current NWS forecast and health
    score. *)

val weakest_busy : t -> host option

val expired : t -> now:float -> timeout:float -> int list
(** Monitored hosts whose heartbeat lease ran out, ascending. *)

val observe_nws : t -> now:float -> unit
(** Feeds every live host's availability trace into its forecaster. *)

val aggregate_solver_stats : t -> Sat.Stats.t
