type scheduler_policy = Nws_rank | Random_pick | First_fit

type checkpoint_mode = No_checkpoint | Light | Heavy

type t = {
  share_max_len : int;
  split_timeout : float;
  overall_timeout : float;
  slice : float;
  share_flush_interval : float;
  mem_headroom : float;
  min_client_memory : int;
  scheduler : scheduler_policy;
  nws_probe_interval : float;
  migration_enabled : bool;
  checkpoint : checkpoint_mode;
  checkpoint_period : float;
  heartbeat_period : float;
  suspect_timeout : float;
  retry_base : float;
  retry_max_attempts : int;
  retry_jitter : float;
  adaptive_timeouts : bool;
  hedge : bool;
  journal_compact_every : int;
  resync_grace : float;
  integrity_checks : bool;
  certify : bool;
  standby : bool;
  ship_sync : bool;
  ship_interval : float;
  standby_lease : float;
  share_budget : int;
  share_window : float;
  journal_quota : int;
  outbox_cap : int;
  solver_config : Sat.Solver.config;
  seed : int;
}

let default =
  {
    share_max_len = 10;
    split_timeout = 100.;
    overall_timeout = 6000.;
    slice = 2.0;
    share_flush_interval = 10.;
    mem_headroom = 0.9;
    min_client_memory = Grid.Resource.min_client_memory;
    scheduler = Nws_rank;
    nws_probe_interval = 30.;
    migration_enabled = true;
    checkpoint = No_checkpoint;
    checkpoint_period = 10.;
    heartbeat_period = 10.;
    suspect_timeout = 60.;
    retry_base = 2.;
    retry_max_attempts = 6;
    retry_jitter = 0.1;
    adaptive_timeouts = false;
    hedge = false;
    journal_compact_every = 64;
    resync_grace = 10.;
    integrity_checks = true;
    certify = false;
    standby = false;
    ship_sync = false;
    ship_interval = 2.;
    standby_lease = 30.;
    share_budget = 0;
    share_window = 10.;
    journal_quota = 0;
    outbox_cap = 32;
    solver_config = Sat.Solver.default_config;
    seed = 0;
  }

let experiment_set_1 = default

let experiment_set_2 = { default with share_max_len = 3; overall_timeout = 12_000. }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.heartbeat_period <= 0. then
    err "heartbeat_period must be positive, got %g" t.heartbeat_period
  else if t.suspect_timeout <= t.heartbeat_period then
    err
      "suspect_timeout (%g) must exceed heartbeat_period (%g): a lease shorter than one beacon \
       interval declares every healthy client dead"
      t.suspect_timeout t.heartbeat_period
  else if t.checkpoint_period <= 0. then
    err "checkpoint_period must be positive, got %g" t.checkpoint_period
  else if t.retry_max_attempts < 1 then
    err "retry_max_attempts must be at least 1, got %d" t.retry_max_attempts
  else if t.retry_base <= 0. then err "retry_base must be positive, got %g" t.retry_base
  else if not (t.retry_jitter >= 0. && t.retry_jitter <= 1.) then
    err "retry_jitter must lie in [0, 1], got %g" t.retry_jitter
  else if t.slice <= 0. then err "slice must be positive, got %g" t.slice
  else if t.overall_timeout <= 0. then
    err "overall_timeout must be positive, got %g" t.overall_timeout
  else if t.share_flush_interval <= 0. then
    err "share_flush_interval must be positive, got %g" t.share_flush_interval
  else if not (t.mem_headroom > 0. && t.mem_headroom <= 1.) then
    err "mem_headroom must lie in (0, 1], got %g" t.mem_headroom
  else if t.share_max_len < 0 then err "share_max_len must be non-negative, got %d" t.share_max_len
  else if t.split_timeout < 0. then err "split_timeout must be non-negative, got %g" t.split_timeout
  else if t.nws_probe_interval <= 0. then
    err "nws_probe_interval must be positive, got %g" t.nws_probe_interval
  else if t.min_client_memory < 0 then
    err "min_client_memory must be non-negative, got %d" t.min_client_memory
  else if t.journal_compact_every < 1 then
    err "journal_compact_every must be at least 1, got %d" t.journal_compact_every
  else if t.resync_grace <= 0. then err "resync_grace must be positive, got %g" t.resync_grace
  else if t.certify && not t.integrity_checks then
    err
      "certify requires integrity_checks: a certified run must not accept answers whose \
       transport can silently rot"
  else if t.certify && t.share_max_len > 0 then
    err
      "certify requires share_max_len = 0: foreign clauses are not locally derivable, so \
       clause-sharing runs cannot produce checkable per-branch proofs"
  else if t.ship_sync && not t.standby then
    err
      "ship_sync requires standby: synchronous journal shipping with zero standbys would \
       block every append on an ack that can never arrive"
  else if t.standby && t.ship_interval <= 0. then
    err "ship_interval must be positive, got %g" t.ship_interval
  else if t.standby && t.standby_lease <= t.heartbeat_period then
    err
      "standby_lease (%g) must exceed heartbeat_period (%g): a lease shorter than one ship \
       interval's worth of silence would promote the standby against a healthy primary"
      t.standby_lease t.heartbeat_period
  else if t.share_budget < 0 then
    err "share_budget must be non-negative (0 disables the budget), got %d" t.share_budget
  else if t.share_window <= 0. then
    err "share_window must be positive, got %g" t.share_window
  else if t.journal_quota < 0 then
    err "journal_quota must be non-negative (0 disables the quota), got %d" t.journal_quota
  else if t.outbox_cap < 1 then
    err
      "outbox_cap must be at least 1, got %d: a zero-capacity outbox would shed every \
       envelope buffered during a master outage"
      t.outbox_cap
  else Ok ()

let validate_exn t =
  match validate t with Ok () -> () | Error msg -> invalid_arg ("Config.validate: " ^ msg)
