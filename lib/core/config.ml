type scheduler_policy = Nws_rank | Random_pick | First_fit

type checkpoint_mode = No_checkpoint | Light | Heavy

type t = {
  share_max_len : int;
  split_timeout : float;
  overall_timeout : float;
  slice : float;
  share_flush_interval : float;
  mem_headroom : float;
  min_client_memory : int;
  scheduler : scheduler_policy;
  nws_probe_interval : float;
  migration_enabled : bool;
  checkpoint : checkpoint_mode;
  checkpoint_period : float;
  heartbeat_period : float;
  suspect_timeout : float;
  retry_base : float;
  retry_max_attempts : int;
  solver_config : Sat.Solver.config;
  seed : int;
}

let default =
  {
    share_max_len = 10;
    split_timeout = 100.;
    overall_timeout = 6000.;
    slice = 2.0;
    share_flush_interval = 10.;
    mem_headroom = 0.9;
    min_client_memory = Grid.Resource.min_client_memory;
    scheduler = Nws_rank;
    nws_probe_interval = 30.;
    migration_enabled = true;
    checkpoint = No_checkpoint;
    checkpoint_period = 10.;
    heartbeat_period = 10.;
    suspect_timeout = 60.;
    retry_base = 2.;
    retry_max_attempts = 6;
    solver_config = Sat.Solver.default_config;
    seed = 0;
  }

let experiment_set_1 = default

let experiment_set_2 = { default with share_max_len = 3; overall_timeout = 12_000. }
