(* Reconstruct the busy-client step function by replaying the events that
   change a client's busy state, mirroring the master's bookkeeping. *)
let busy_curve events =
  let busy = Hashtbl.create 64 in
  let points = ref [] in
  let record time = points := (time, Hashtbl.length busy) :: !points in
  (match events with e :: _ -> record e.Events.time | [] -> ());
  List.iter
    (fun e ->
      let changed =
        match e.Events.kind with
        | Events.Problem_assigned { dst; _ } ->
            Hashtbl.replace busy dst ();
            true
        | Events.Client_finished_unsat id | Events.Client_found_model id
        | Events.Client_killed id ->
            Hashtbl.remove busy id;
            true
        | Events.Client_suspected { client } ->
            (* the master writes the host off; its work re-enters the curve
               when the recovered problem is assigned *)
            Hashtbl.remove busy client;
            true
        | Events.Migration { src; _ } ->
            Hashtbl.remove busy src;
            true
        | Events.Terminated _ ->
            Hashtbl.reset busy;
            true
        | _ -> false
      in
      if changed then record e.Events.time)
    events;
  List.rev !points

let peak curve = List.fold_left (fun acc (_, n) -> max acc n) 0 curve

let span curve =
  match (curve, List.rev curve) with
  | (t0, _) :: _, (t1, _) :: _ -> (t0, t1)
  | _ -> (0., 0.)

let client_seconds curve =
  let rec loop acc = function
    | (t0, n) :: ((t1, _) :: _ as rest) -> loop (acc +. (float_of_int n *. (t1 -. t0))) rest
    | [ _ ] | [] -> acc
  in
  loop 0. curve

let average curve =
  let t0, t1 = span curve in
  if t1 <= t0 then 0. else client_seconds curve /. (t1 -. t0)

(* Value of the step function at a given time. *)
let value_at curve time =
  let rec loop last = function
    | (t, n) :: rest -> if t <= time then loop n rest else last
    | [] -> last
  in
  loop 0 curve

let ascii_chart ?(width = 60) ?(height = 10) curve =
  match curve with
  | [] -> "(no data)\n"
  | _ when (let t0, t1 = span curve in t1 <= t0) ->
      (* a single point (or a zero-width span) has no time axis to chart *)
      let t0, _ = span curve in
      Printf.sprintf "(no data: %d client(s) at t=%.0f)\n" (peak curve) t0
  | _ ->
      let t0, t1 = span curve in
      let top = max 1 (peak curve) in
      let samples =
        Array.init width (fun i ->
            let time = t0 +. ((t1 -. t0) *. (float_of_int i +. 0.5) /. float_of_int width) in
            value_at curve time)
      in
      let buf = Buffer.create ((width + 12) * (height + 2)) in
      for row = height downto 1 do
        let threshold = float_of_int row /. float_of_int height *. float_of_int top in
        Buffer.add_string buf (Printf.sprintf "%4d | " (int_of_float (Float.ceil threshold)));
        Array.iter
          (fun v -> Buffer.add_char buf (if float_of_int v >= threshold then '#' else ' '))
          samples;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf ("     +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "      %-8.0f%*s\n" t0 (width - 8) (Printf.sprintf "%.0f vs" t1));
      Buffer.contents buf

let json curve =
  let t0, t1 = span curve in
  Obs.Json.Obj
    [
      ("peak", Obs.Json.Int (peak curve));
      ("average", Obs.Json.Float (average curve));
      ("client_seconds", Obs.Json.Float (client_seconds curve));
      ("t0", Obs.Json.Float t0);
      ("t1", Obs.Json.Float t1);
      ( "points",
        Obs.Json.List
          (List.map (fun (t, n) -> Obs.Json.List [ Obs.Json.Float t; Obs.Json.Int n ]) curve) );
    ]
