(* Watermark-bounded queues and windowed byte budgets: the primitives of
   the resource-exhaustion layer.  Both are deterministic — shed decisions
   depend only on queue content, configured watermarks and virtual time,
   never on wall clock or unseeded randomness — so a bounded run replays
   byte-identically under the same seed. *)

(* ---------- watermark queue ---------- *)

type 'a queue = {
  low : int;
  high : int;
  critical : 'a -> bool;
  value : 'a -> int;
  (* oldest first; the int is an admission sequence number used as the
     deterministic tie-break of the shed policy *)
  mutable items : (int * 'a) list;
  mutable seq : int;
  mutable depth : int;
  mutable peak : int;
  mutable shed : int;
  mutable pressured : bool;
}

let queue ?low ~high ~critical ~value () =
  if high < 1 then invalid_arg "Flow.queue: high watermark must be >= 1";
  let low = match low with Some l -> l | None -> high / 2 in
  if low < 0 || low > high then
    invalid_arg "Flow.queue: low watermark must lie in [0, high]";
  {
    low;
    high;
    critical;
    value;
    items = [];
    seq = 0;
    depth = 0;
    peak = 0;
    shed = 0;
    pressured = false;
  }

let depth t = t.depth

let peak t = t.peak

let shed_count t = t.shed

let is_empty t = t.items = []

let under_pressure t = t.pressured

let update_pressure t =
  if t.depth >= t.high then t.pressured <- true
  else if t.depth <= t.low then t.pressured <- false

(* Shed the lowest-value non-critical item; among equal values the oldest
   goes first (stale data-plane traffic is the least useful).  Critical
   items are unsheddable by construction: a queue holding only critical
   items is allowed to exceed the high watermark. *)
let shed_one t =
  let victim =
    List.fold_left
      (fun acc (seq, x) ->
        if t.critical x then acc
        else
          match acc with
          | None -> Some (seq, x)
          | Some (_, best) -> if t.value x < t.value best then Some (seq, x) else acc)
      None t.items
  in
  match victim with
  | None -> None
  | Some (vseq, x) ->
      t.items <- List.filter (fun (s, _) -> s <> vseq) t.items;
      t.depth <- t.depth - 1;
      t.shed <- t.shed + 1;
      Some x

let rec enforce t acc =
  if t.depth > t.high then
    match shed_one t with
    | Some x -> enforce t (x :: acc)
    | None -> List.rev acc
  else List.rev acc

let admit t x append =
  let seq = t.seq in
  t.seq <- seq + 1;
  if append then t.items <- t.items @ [ (seq, x) ] else t.items <- (seq, x) :: t.items;
  t.depth <- t.depth + 1;
  if t.depth > t.peak then t.peak <- t.depth;
  let out = enforce t [] in
  update_pressure t;
  out

let push t x = admit t x true

let push_front t x = admit t x false

let pop t =
  match t.items with
  | [] -> None
  | (_, x) :: rest ->
      t.items <- rest;
      t.depth <- t.depth - 1;
      update_pressure t;
      Some x

let drain t =
  let out = List.map snd t.items in
  t.items <- [];
  t.depth <- 0;
  update_pressure t;
  out

let take_first t pred =
  let rec go acc = function
    | [] -> None
    | (_, x) :: rest when pred x ->
        t.items <- List.rev_append acc rest;
        t.depth <- t.depth - 1;
        update_pressure t;
        Some x
    | it :: rest -> go (it :: acc) rest
  in
  go [] t.items

let iter t f = List.iter (fun (_, x) -> f x) t.items

let count t pred = List.fold_left (fun n (_, x) -> if pred x then n + 1 else n) 0 t.items

(* ---------- windowed byte budget ---------- *)

(* Per-key (per-link) byte budget per virtual-time window.  Window index
   is [floor (now / window)], so two runs observing the same virtual
   instants charge identically. *)

type budget = {
  bytes_per_window : int;
  window : float;
  (* key -> (window index, bytes charged in that window) *)
  charges : (int, int * int) Hashtbl.t;
  mutable charged_total : int;
  mutable shed_bytes : int;
  mutable shed_items : int;
  mutable window_peak : int;
}

let budget ~bytes_per_window ~window =
  if bytes_per_window < 1 then invalid_arg "Flow.budget: bytes_per_window must be >= 1";
  if window <= 0. then invalid_arg "Flow.budget: window must be positive";
  {
    bytes_per_window;
    window;
    charges = Hashtbl.create 16;
    charged_total = 0;
    shed_bytes = 0;
    shed_items = 0;
    window_peak = 0;
  }

let window_index t now = int_of_float (floor (now /. t.window))

let used t ~key ~now =
  let w = window_index t now in
  match Hashtbl.find_opt t.charges key with
  | Some (w', used) when w' = w -> used
  | _ -> 0

let remaining t ~key ~now = max 0 (t.bytes_per_window - used t ~key ~now)

let admit t ~key ~now ~bytes =
  let w = window_index t now in
  let u = used t ~key ~now in
  if u + bytes <= t.bytes_per_window then begin
    let u' = u + bytes in
    Hashtbl.replace t.charges key (w, u');
    t.charged_total <- t.charged_total + bytes;
    if u' > t.window_peak then t.window_peak <- u';
    true
  end
  else begin
    t.shed_bytes <- t.shed_bytes + bytes;
    t.shed_items <- t.shed_items + 1;
    false
  end

let charged_total t = t.charged_total

let budget_shed_bytes t = t.shed_bytes

let budget_shed_items t = t.shed_items

let window_peak t = t.window_peak
