module R = Grid.Resource
module Solver = Sat.Solver

type callbacks = {
  log : Events.kind -> unit;
  save_checkpoint : client:int -> Subproblem.t -> unit;
  note_dup : int -> unit;
  note_outbox : depth:int -> shed:int -> unit;
}

type solving = {
  solver : Solver.t;
  pid : Protocol.pid;  (* identity of the subproblem being worked on *)
  origin : Subproblem.t;
      (* the subproblem exactly as received — certified runs derive every
         outgoing transfer from it so clause sets stay lineage-pure *)
  span : Obs.Span.id;  (* telemetry span covering this subproblem's solve *)
  started_at : float;
  transfer_time : float;  (* how long the problem took to reach us *)
  mutable split_epoch : float;  (* start of the current run-time-heuristic window *)
  mutable split_pending : bool;
  mutable last_share_flush : float;
  mutable last_checkpoint : float;
  mutable hard_mem_strikes : int;  (* consecutive slices at the hard memory limit *)
}

type state = Idle | Solving of solving

type t = {
  cid : int;
  mutable master : int;
      (* the master's bus endpoint: re-pointed when a frame from a newer
         epoch announces that a promoted standby took the run over *)
  mutable epoch : int;  (* highest master epoch seen; stamps every frame we send *)
  sim : Grid.Sim.t;
  bus : Protocol.msg Grid.Everyware.t;
  cfg : Config.t;
  resource : R.t;
  trace : Grid.Trace.t;
  callbacks : callbacks;
  mem_budget : int;
  mutable state : state;
  mutable alive : bool;
  mutable hung : bool;  (* fault injection: process wedged, not known dead *)
  mutable slow_factor : float;  (* fault injection: >1 divides the compute budget *)
  mutable token : int;  (* bumped on every state change to invalidate stale slices *)
  mutable next_branch : int;  (* stamps pids of branches this client donates *)
  mutable rel : Reliable.t option;  (* set once in create; never None afterwards *)
  mutable master_down : bool;  (* retry exhaustion toward the master flipped this *)
  outbox : Protocol.msg Flow.queue;  (* master-bound traffic parked during the outage *)
  mutable probing : bool;  (* the outage probe loop is armed *)
  seen_shares : (string, unit) Hashtbl.t;
      (* canonical keys of every foreign clause already enqueued into a
         solver here: a clause relayed twice (duplicate delivery, or two
         masters' relays racing across a failover) is suppressed *)
  mutable dup_suppressed : int;
  stats_acc : Sat.Stats.t;
  obs : Obs.t;
  obs_on : bool;
  flight : Obs.Flight.t;
  flight_on : bool;
  c_problems : Obs.Metrics.counter;
  c_shares_flushed : Obs.Metrics.counter;
  c_splits_donated : Obs.Metrics.counter;
  c_dups : Obs.Metrics.counter;
  c_outbox_shed : Obs.Metrics.counter;
  g_outbox : Obs.Metrics.gauge;
  h_transfer : Obs.Metrics.histogram;
}

let id t = t.cid

let is_busy t = match t.state with Solving _ -> true | Idle -> false

let is_alive t = t.alive

let is_hung t = t.hung

(* A slowed host keeps heartbeating on schedule and acking promptly — the
   only observable symptom is that solver work trickles.  That asymmetry
   is the point: crash detection cannot see it. *)
let set_slow_factor t factor = if factor > 0. then t.slow_factor <- factor

let slow_factor t = t.slow_factor

let busy_since t = match t.state with Solving s -> Some s.started_at | Idle -> None

let mem_bytes_in_use t = match t.state with Solving s -> Solver.db_bytes s.solver | Idle -> 0

let solver_stats t =
  let acc = Sat.Stats.copy t.stats_acc in
  (match t.state with Solving s -> Sat.Stats.add acc (Solver.stats s.solver) | Idle -> ());
  acc

let send_raw t ~dst msg =
  let msg = if t.cfg.Config.integrity_checks then Protocol.frame ~epoch:t.epoch msg else msg in
  Grid.Everyware.send t.bus ~src:t.cid ~dst ~bytes:(Protocol.size msg) msg

let reliable t = match t.rel with Some r -> r | None -> assert false

let master_down t = t.master_down

let outbox_depth t = Flow.depth t.outbox

let outbox_peak t = Flow.peak t.outbox

let outbox_shed t = Flow.shed_count t.outbox

let outbox_pressured t = Flow.under_pressure t.outbox

let dup_suppressed t = t.dup_suppressed

(* During a master outage the client keeps solving autonomously and parks
   its master-bound traffic in a watermark-bounded outbox instead of
   burning retries into a void.  Crossing the high watermark
   ([Config.outbox_cap]) sheds the biggest buffered share batches first
   (they are only accelerants and accrue every flush interval); control
   messages are unsheddable by construction and always survive the
   outage. *)
let report_shed t shed =
  let n = List.length shed in
  if n > 0 then t.callbacks.log (Events.Outbox_shed { client = t.cid; shed = n });
  t.callbacks.note_outbox ~depth:(Flow.depth t.outbox) ~shed:n;
  if t.obs_on then begin
    if n > 0 then Obs.Metrics.add t.c_outbox_shed n;
    Obs.Metrics.set t.g_outbox (float_of_int (Flow.depth t.outbox))
  end

let buffer_for_master t msg = report_shed t (Flow.push t.outbox msg)

(* Critical control messages ride the ack/retry channel; shares and other
   safe-to-lose traffic goes straight out.  Anything aimed at a downed
   master is buffered for redelivery instead. *)
let send t ~dst msg =
  if dst = t.master && t.master_down then buffer_for_master t msg
  else if Protocol.critical msg then Reliable.send (reliable t) ~dst msg
  else send_raw t ~dst msg

let flush_outbox t =
  let pending = Flow.drain t.outbox in
  if t.obs_on then Obs.Metrics.set t.g_outbox 0.;
  List.iter (fun m -> send t ~dst:t.master m) pending

(* Any delivery from the master is proof of life: end the outage and
   redeliver everything that accumulated during it. *)
let master_reachable t =
  if t.master_down then begin
    t.master_down <- false;
    flush_outbox t
  end

(* While the master is down, periodically re-offer the oldest buffered
   control message through the reliable channel (one probe chain at a
   time).  If the master is still gone the send exhausts its retries and
   the message returns to the outbox; once a replacement master acks or
   sends anything, [master_reachable] flushes the rest. *)
let rec probe_master t =
  if t.alive && (not t.hung) && t.master_down then begin
    (if Reliable.outstanding_to (reliable t) ~dst:t.master = 0 then
       match Flow.take_first t.outbox Protocol.critical with
       | Some m -> Reliable.send (reliable t) ~dst:t.master m
       | None -> ());
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.Config.heartbeat_period (fun () -> probe_master t))
  end
  else t.probing <- false

let note_master_down t msg =
  if not t.master_down then begin
    t.master_down <- true;
    t.callbacks.log (Events.Master_outage_detected { client = t.cid })
  end;
  (* the given-up message is the oldest outstanding one: requeue it first *)
  report_shed t (Flow.push_front t.outbox msg);
  if not t.probing then begin
    t.probing <- true;
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.Config.heartbeat_period (fun () -> probe_master t))
  end

let now t = Grid.Sim.now t.sim

(* How many consecutive hard-memory slices a client survives before the
   operating system kills it (paper: the Linux OOM killer). *)
let oom_strikes = 50

let finish_problem ?(outcome = "done") t =
  (match t.state with
  | Solving s ->
      Sat.Stats.add t.stats_acc (Solver.stats s.solver);
      if t.flight_on then
        Obs.Flight.note t.flight ~sub:"client"
          ~args:
            [
              ("client", Obs.Json.Int t.cid);
              ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst s.pid) (snd s.pid)));
              ("outcome", Obs.Json.String outcome);
            ]
          "solve_finished";
      if t.obs_on then
        Obs.Span.exit (Obs.spans t.obs) s.span
          ~args:[ ("outcome", Obs.Json.String outcome) ]
  | Idle -> ());
  t.state <- Idle;
  t.token <- t.token + 1

let die t =
  if t.alive then begin
    t.alive <- false;
    if t.flight_on then
      Obs.Flight.note t.flight ~sub:"client" ~args:[ ("client", Obs.Json.Int t.cid) ] "died";
    (match t.state with
    | Solving s when t.obs_on ->
        Obs.Span.exit (Obs.spans t.obs) s.span
          ~args:[ ("outcome", Obs.Json.String "died") ]
    | _ -> ());
    t.state <- Idle;
    t.token <- t.token + 1;
    (match t.rel with Some r -> Reliable.stop r | None -> ());
    Grid.Everyware.unregister t.bus ~id:t.cid
  end

let kill t = die t

(* A hung host stops computing, heartbeating and answering, but its
   endpoint stays registered: to the rest of the grid it is
   indistinguishable from a live-but-unreachable process. *)
let hang t =
  if t.alive && not t.hung then begin
    t.hung <- true;
    t.token <- t.token + 1;
    match t.rel with Some r -> Reliable.stop r | None -> ()
  end

(* The run-time split heuristic (Section 3.3): a client asks for help after
   working for twice the time its problem took to arrive, but never sooner
   than the configured floor. *)
let split_deadline t s = s.split_epoch +. Float.max (2. *. s.transfer_time) t.cfg.split_timeout

let flush_shares t s =
  let shares = Solver.drain_shares s.solver ~max_len:t.cfg.share_max_len in
  s.last_share_flush <- now t;
  if shares <> [] then begin
    if t.obs_on then Obs.Metrics.add t.c_shares_flushed (List.length shares);
    send t ~dst:t.master (Protocol.Shares { clauses = shares })
  end

let maybe_checkpoint t s =
  match t.cfg.checkpoint with
  | Config.No_checkpoint -> ()
  | Config.Light | Config.Heavy ->
      if now t -. s.last_checkpoint >= t.cfg.checkpoint_period then begin
        s.last_checkpoint <- now t;
        t.callbacks.save_checkpoint ~client:t.cid (Subproblem.capture s.solver)
      end

let request_split t s reason =
  if not s.split_pending then begin
    s.split_pending <- true;
    t.callbacks.log (Events.Split_requested { client = t.cid; reason });
    send t ~dst:t.master (Protocol.Split_request reason)
  end

let rec schedule_slice t delay =
  let token = t.token in
  ignore (Grid.Sim.schedule t.sim ~delay (fun () -> slice t token))

and slice t token =
  if t.alive && (not t.hung) && token = t.token then
    match t.state with
    | Idle -> ()
    | Solving s ->
        let avail = Grid.Trace.availability t.trace (now t) in
        let budget =
          max 1 (int_of_float (t.cfg.slice *. t.resource.R.speed *. avail /. t.slow_factor))
        in
        (match Solver.run s.solver ~budget with
        | Solver.Sat model ->
            t.callbacks.log (Events.Client_found_model t.cid);
            send t ~dst:t.master (Protocol.Found_model model);
            finish_problem ~outcome:"sat" t
        | Solver.Unsat ->
            t.callbacks.log (Events.Client_finished_unsat t.cid);
            flush_shares t s;
            let proof =
              if t.cfg.certify then Some (Sat.Drup.to_string (Solver.proof s.solver)) else None
            in
            send t ~dst:t.master (Protocol.Finished_unsat { pid = s.pid; proof });
            finish_problem ~outcome:"unsat" t
        | Solver.Mem_pressure ->
            (* at the hard limit the solver cannot even store new learned
               clauses; without relief the OS eventually kills us *)
            s.hard_mem_strikes <- s.hard_mem_strikes + 1;
            request_split t s `Memory;
            if s.hard_mem_strikes > oom_strikes then begin
              t.callbacks.log (Events.Client_killed t.cid);
              die t
            end
            else schedule_slice t t.cfg.slice
        | Solver.Budget_exhausted ->
            s.hard_mem_strikes <- 0;
            if Solver.db_bytes s.solver > int_of_float (t.cfg.mem_headroom *. float_of_int t.mem_budget)
            then request_split t s `Memory
            else if now t >= split_deadline t s then request_split t s `Long_running;
            if now t -. s.last_share_flush >= t.cfg.share_flush_interval then flush_shares t s;
            maybe_checkpoint t s;
            schedule_slice t t.cfg.slice)

let start_problem t ~src ~pid ~transfer_time sp =
  let solver_config =
    {
      t.cfg.solver_config with
      Solver.mem_limit_bytes = t.mem_budget;
      Solver.share_export_max = max t.cfg.share_max_len t.cfg.solver_config.Solver.share_export_max;
      Solver.emit_proof = t.cfg.solver_config.Solver.emit_proof || t.cfg.certify;
      Solver.seed = t.cfg.solver_config.Solver.seed + t.cid;
    }
  in
  let solver = Subproblem.to_solver ~config:solver_config ~obs:t.obs ~obs_tid:t.cid sp in
  if t.flight_on then
    Obs.Flight.note t.flight ~sub:"client"
      ~args:
        [
          ("client", Obs.Json.Int t.cid);
          ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
          ("from", Obs.Json.Int src);
          ("bytes", Obs.Json.Int (Subproblem.bytes sp));
        ]
      "problem_received";
  let span =
    if t.obs_on then begin
      Obs.Metrics.incr t.c_problems;
      Obs.Metrics.observe t.h_transfer transfer_time;
      Obs.Span.enter (Obs.spans t.obs) ~tid:t.cid ~cat:"client"
        ~args:
          [
            ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
            ("from", Obs.Json.Int src);
            ("bytes", Obs.Json.Int (Subproblem.bytes sp));
            ("depth", Obs.Json.Int (Subproblem.depth sp));
          ]
        "solve"
    end
    else Obs.Span.none
  in
  Solver.set_obs_parent solver span;
  t.token <- t.token + 1;
  t.state <-
    Solving
      {
        solver;
        pid;
        origin = sp;
        span;
        started_at = now t;
        transfer_time;
        split_epoch = now t;
        split_pending = false;
        last_share_flush = now t;
        last_checkpoint = now t;
        hard_mem_strikes = 0;
      };
  send t ~dst:t.master
    (Protocol.Problem_received
       { pid; from = src; bytes = Subproblem.bytes sp; path = sp.Subproblem.path });
  (* an initial checkpoint covers the window before the first periodic one *)
  (match t.cfg.checkpoint with
  | Config.No_checkpoint -> ()
  | Config.Light | Config.Heavy -> t.callbacks.save_checkpoint ~client:t.cid sp);
  schedule_slice t t.cfg.slice

let fresh_branch_pid t =
  let n = t.next_branch in
  t.next_branch <- n + 1;
  (t.cid, n)

let handle_split_partner t partner =
  match t.state with
  | Idle -> send t ~dst:t.master Protocol.Split_failed
  | Solving s -> (
      s.split_pending <- false;
      let branch =
        (* certified runs keep the travelling clause set lineage-pure so the
           receiver's eventual proof checks under its journaled path alone *)
        if t.cfg.certify then Subproblem.split_pure ~origin:s.origin s.solver
        else Subproblem.split_from s.solver
      in
      match branch with
      | None -> send t ~dst:t.master Protocol.Split_failed
      | Some sp ->
          let bytes = Subproblem.bytes sp in
          let pid = fresh_branch_pid t in
          s.split_epoch <- now t;
          s.hard_mem_strikes <- 0;
          if t.flight_on then
            Obs.Flight.note t.flight ~sub:"client"
              ~args:
                [
                  ("client", Obs.Json.Int t.cid);
                  ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
                  ("partner", Obs.Json.Int partner);
                ]
              "split_donated";
          if t.obs_on then begin
            Obs.Metrics.incr t.c_splits_donated;
            ignore
              (Obs.Span.instant (Obs.spans t.obs) ~parent:s.span ~tid:t.cid ~cat:"protocol"
                 ~args:
                   [
                     ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
                     ("partner", Obs.Json.Int partner);
                     ("bytes", Obs.Json.Int bytes);
                   ]
                 "split.donate")
          end;
          send t ~dst:partner (Protocol.Problem { pid; sp; sent_at = now t });
          (* [split_from] just committed the donor's first decision level
             into its own root, so both lineages are final here *)
          send t ~dst:t.master
            (Protocol.Split_ok
               {
                 pid;
                 dst = partner;
                 bytes;
                 path = sp.Subproblem.path;
                 donor_path = Solver.root_path s.solver;
               }))

let handle_migrate t target =
  match t.state with
  | Idle -> ()
  | Solving s ->
      let sp =
        if t.cfg.certify then Subproblem.capture_pure ~origin:s.origin s.solver
        else Subproblem.capture s.solver
      in
      send t ~dst:target (Protocol.Problem { pid = s.pid; sp; sent_at = now t });
      finish_problem ~outcome:"migrated" t

let handle_payload t ~src msg =
  match msg with
  | Protocol.Problem { pid; sp; sent_at } ->
      if is_busy t then
        (* double-assignment race (e.g. the master re-homed work while a
           peer handoff was still in flight): never swallow a subproblem —
           hand it back to the master for re-homing *)
        send t ~dst:t.master (Protocol.Orphaned { pid; sp })
      else start_problem t ~src ~pid ~transfer_time:(Float.max 0.1 (now t -. sent_at)) sp
  | Protocol.Split_partner { partner } -> handle_split_partner t partner
  | Protocol.Share_relay { origin = _; clauses } -> (
      match t.state with
      | Solving s ->
          (* duplicate suppression: a clause relayed twice (duplicate
             delivery, overlapping relays across a failover) is counted,
             not re-enqueued.  The key is the sorted literal set, so the
             same clause arriving in any literal order still matches. *)
          let fresh =
            List.filter
              (fun c ->
                let key =
                  Array.to_list c
                  |> List.map Sat.Types.to_int
                  |> List.sort compare
                  |> List.map string_of_int
                  |> String.concat ","
                in
                if Hashtbl.mem t.seen_shares key then begin
                  t.dup_suppressed <- t.dup_suppressed + 1;
                  t.callbacks.note_dup 1;
                  if t.obs_on then Obs.Metrics.incr t.c_dups;
                  false
                end
                else begin
                  Hashtbl.add t.seen_shares key ();
                  true
                end)
              clauses
          in
          if fresh <> [] then Solver.queue_foreign_clauses s.solver fresh
      | Idle -> ())
  | Protocol.Migrate_to { target } -> handle_migrate t target
  | Protocol.Cancel { pid } -> (
      (* stand down from a hedged copy that lost the race.  A cancel for a
         pid we no longer hold (already finished, migrated, or a stale
         re-delivery) is a no-op — the master's tombstone absorbs whatever
         we already sent. *)
      match t.state with
      | Solving s when s.pid = pid -> finish_problem ~outcome:"cancelled" t
      | Solving _ | Idle -> ())
  | Protocol.Resync_request ->
      (* a replacement master is reconciling: report what we are doing.
         Everything still unacked toward the master was transmitted into
         the outage — retransmit it now, before the reconciliation grace
         expires, so the new master counts our results and orphans rather
         than re-deriving work that is already done.  Any split
         negotiation that was in flight died with the old master, so
         clear the pending flag and let the heuristics ask again. *)
      Reliable.nudge (reliable t) ~dst:t.master;
      (match t.state with
      | Solving s ->
          s.split_pending <- false;
          send t ~dst:t.master
            (Protocol.Resync
               { pid = Some s.pid; path = Solver.root_path s.solver; busy_since = s.started_at })
      | Idle -> send t ~dst:t.master (Protocol.Resync { pid = None; path = []; busy_since = 0. }))
  | Protocol.Stop ->
      finish_problem ~outcome:"stopped" t;
      (match t.rel with Some r -> Reliable.stop r | None -> ());
      t.alive <- false
  | Protocol.Epoch_notice ->
      (* succession announcement: the adoption already happened in
         [handle] off the frame header *)
      ()
  | Protocol.Register | Protocol.Problem_received _ | Protocol.Split_request _
  | Protocol.Split_ok _ | Protocol.Split_failed | Protocol.Shares _ | Protocol.Finished_unsat _
  | Protocol.Found_model _ | Protocol.Orphaned _ | Protocol.Resync _ | Protocol.Heartbeat _
  | Protocol.Ship _ | Protocol.Ship_ack _ ->
      (* master- or standby-bound messages; a client should never receive them *)
      ()
  | Protocol.Corrupt_payload ->
      (* garbled content that slipped through because integrity framing is
         off: indistinguishable from a lost message *)
      ()
  | Protocol.Ack _ | Protocol.Nack _ | Protocol.Reliable _ | Protocol.Framed _ ->
      (* unwrapped below; never nested *) ()

let handle t ~src msg =
  if t.alive && not t.hung then
    (* read the epoch off the raw frame header before [verify] strips the
       frame — like a reliable mid, the header survives even when the
       payload digest check fails *)
    let frame_epoch = Protocol.epoch_of msg in
    match Protocol.verify msg with
    | `Corrupt payload -> (
        (* the frame's digest check failed: refuse the payload.  If the
           surviving envelope header names a reliable mid, NACK it so the
           sender retransmits immediately instead of waiting out its
           backoff timer. *)
        match payload with
        | Protocol.Reliable { mid; _ } ->
            t.callbacks.log (Events.Corrupt_message_detected { receiver = t.cid; nacked = true });
            send_raw t ~dst:src (Protocol.Nack { mid })
        | _ -> t.callbacks.log (Events.Corrupt_message_detected { receiver = t.cid; nacked = false })
        )
    | `Ok msg ->
        (* Epoch fencing rides the frame header.  A frame older than the
           highest epoch we have seen is a superseded master's traffic:
           refuse it and answer with an [Epoch_notice] (framed at our
           epoch) so the zombie learns it was fenced.  A frame from a
           newer epoch coming from a master endpoint (id <= 0) announces
           a promoted standby: adopt the epoch and re-point [t.master] —
           the failover redirects clients, it never restarts them.
           Non-standby runs frame everything at epoch 0 and always fall
           straight through. *)
        if frame_epoch < t.epoch then begin
          t.callbacks.log
            (Events.Stale_epoch_rejected
               { receiver = t.cid; src; epoch = frame_epoch; current = t.epoch });
          send_raw t ~dst:src Protocol.Epoch_notice
        end
        else begin
          if frame_epoch > t.epoch then begin
            t.epoch <- frame_epoch;
            (* only master endpoints (id <= 0) can announce a succession;
               [master_reachable] below ends any outage and flushes the
               outbox toward the new address *)
            if src <= 0 && src <> t.master then t.master <- src
          end;
          if src = t.master then master_reachable t;
          match msg with
          | Protocol.Reliable { mid; payload } ->
              send_raw t ~dst:src (Protocol.Ack { mid });
              if Reliable.admit (reliable t) ~src ~mid then handle_payload t ~src payload
          | Protocol.Ack { mid } -> Reliable.handle_ack (reliable t) ~mid
          | Protocol.Nack { mid } -> Reliable.handle_nack (reliable t) ~mid
          | _ -> handle_payload t ~src msg
        end

(* Empty clients take a moment to launch before they can register
   (process start-up on the remote host). *)
let launch_delay = 1.0

let rec heartbeat_loop t =
  if t.alive && not t.hung then begin
    send_raw t ~dst:t.master
      (Protocol.Heartbeat { decisions = (solver_stats t).Sat.Stats.decisions });
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.Config.heartbeat_period (fun () -> heartbeat_loop t))
  end

let create ?(obs = Obs.disabled) ~sim ~bus ~cfg ~resource ~trace ~master callbacks =
  let m = Obs.metrics obs in
  let labels = [ ("client", string_of_int resource.R.id) ] in
  let t =
    {
      cid = resource.R.id;
      master;
      epoch = 0;
      sim;
      bus;
      cfg;
      resource;
      trace;
      callbacks;
      mem_budget = R.usable_memory resource;
      state = Idle;
      alive = resource.R.mem_bytes >= cfg.Config.min_client_memory;
      hung = false;
      slow_factor = 1.0;
      token = 0;
      next_branch = 0;
      rel = None;
      master_down = false;
      outbox =
        (* the biggest buffered share batch is the least valuable message:
           shares are accelerants, control messages are the run *)
        Flow.queue ~high:cfg.Config.outbox_cap ~critical:Protocol.critical
          ~value:(fun m -> -Protocol.size m)
          ();
      probing = false;
      seen_shares = Hashtbl.create 64;
      dup_suppressed = 0;
      stats_acc = Sat.Stats.create ();
      obs;
      obs_on = Obs.enabled obs;
      flight = Obs.flight obs;
      flight_on = Obs.Flight.is_enabled (Obs.flight obs);
      c_problems = Obs.Metrics.counter m ~labels "client.problems.received";
      c_shares_flushed = Obs.Metrics.counter m ~labels "client.shares.flushed";
      c_splits_donated = Obs.Metrics.counter m ~labels "client.splits.donated";
      c_dups = Obs.Metrics.counter m ~labels "client.shares.dup_suppressed";
      c_outbox_shed = Obs.Metrics.counter m ~labels "client.outbox.shed";
      g_outbox = Obs.Metrics.gauge m ~labels "client.outbox.depth";
      h_transfer = Obs.Metrics.histogram m ~labels "client.transfer.seconds";
    }
  in
  let rel =
    Reliable.create ~obs ~obs_tid:t.cid ~seed:cfg.Config.seed ~jitter:cfg.Config.retry_jitter
      ~sim ~send_raw:(fun ~dst msg -> send_raw t ~dst msg)
      ~active:(fun () -> t.alive && not t.hung)
      ~retry_base:cfg.Config.retry_base ~max_attempts:cfg.Config.retry_max_attempts
      ~on_retry:(fun ~dst ~attempt ->
        callbacks.log (Events.Message_retried { src = t.cid; dst; attempt }))
      ~on_exhausted:(fun ~dst ~attempts ->
        callbacks.log (Events.Retries_exhausted { src = t.cid; dst; attempts }))
      ~on_give_up:(fun ~dst msg ->
        callbacks.log (Events.Message_given_up { src = t.cid; dst });
        if dst = t.master then
          (* retry exhaustion toward the master is how a client detects a
             master outage: keep the message and switch to buffering *)
          note_master_down t msg
        else
          (* a lost peer-to-peer handoff must not swallow the branch: hand
             the subproblem back to the master for re-homing *)
          match msg with
          | Protocol.Problem { pid; sp; _ } ->
              callbacks.log (Events.Orphan_returned { donor = t.cid });
              send t ~dst:t.master (Protocol.Orphaned { pid; sp })
          | _ -> ())
      ()
  in
  t.rel <- Some rel;
  if t.alive then begin
    Grid.Everyware.register bus ~id:t.cid ~site:resource.R.site ~handler:(fun ~src msg ->
        handle t ~src msg);
    ignore
      (Grid.Sim.schedule sim ~delay:launch_delay (fun () ->
           if t.alive && not t.hung then begin
             send t ~dst:master Protocol.Register;
             heartbeat_loop t
           end))
  end;
  t
