module R = Grid.Resource
module Solver = Sat.Solver

type callbacks = {
  log : Events.kind -> unit;
  save_checkpoint : client:int -> Subproblem.t -> unit;
}

type solving = {
  solver : Solver.t;
  started_at : float;
  transfer_time : float;  (* how long the problem took to reach us *)
  mutable split_epoch : float;  (* start of the current run-time-heuristic window *)
  mutable split_pending : bool;
  mutable last_share_flush : float;
  mutable last_checkpoint : float;
  mutable hard_mem_strikes : int;  (* consecutive slices at the hard memory limit *)
}

type state = Idle | Solving of solving

type t = {
  cid : int;
  master : int;
  sim : Grid.Sim.t;
  bus : Protocol.msg Grid.Everyware.t;
  cfg : Config.t;
  resource : R.t;
  trace : Grid.Trace.t;
  callbacks : callbacks;
  mem_budget : int;
  mutable state : state;
  mutable alive : bool;
  mutable token : int;  (* bumped on every state change to invalidate stale slices *)
  stats_acc : Sat.Stats.t;
}

let id t = t.cid

let is_busy t = match t.state with Solving _ -> true | Idle -> false

let is_alive t = t.alive

let busy_since t = match t.state with Solving s -> Some s.started_at | Idle -> None

let mem_bytes_in_use t = match t.state with Solving s -> Solver.db_bytes s.solver | Idle -> 0

let solver_stats t =
  let acc = Sat.Stats.copy t.stats_acc in
  (match t.state with Solving s -> Sat.Stats.add acc (Solver.stats s.solver) | Idle -> ());
  acc

let send t ~dst msg = Grid.Everyware.send t.bus ~src:t.cid ~dst ~bytes:(Protocol.size msg) msg

let now t = Grid.Sim.now t.sim

(* How many consecutive hard-memory slices a client survives before the
   operating system kills it (paper: the Linux OOM killer). *)
let oom_strikes = 50

let finish_problem t =
  (match t.state with
  | Solving s -> Sat.Stats.add t.stats_acc (Solver.stats s.solver)
  | Idle -> ());
  t.state <- Idle;
  t.token <- t.token + 1

let die t =
  if t.alive then begin
    t.alive <- false;
    t.state <- Idle;
    t.token <- t.token + 1;
    Grid.Everyware.unregister t.bus ~id:t.cid
  end

let kill t = die t

(* The run-time split heuristic (Section 3.3): a client asks for help after
   working for twice the time its problem took to arrive, but never sooner
   than the configured floor. *)
let split_deadline t s = s.split_epoch +. Float.max (2. *. s.transfer_time) t.cfg.split_timeout

let flush_shares t s =
  let shares = Solver.drain_shares s.solver ~max_len:t.cfg.share_max_len in
  s.last_share_flush <- now t;
  if shares <> [] then send t ~dst:t.master (Protocol.Shares { clauses = shares })

let maybe_checkpoint t s =
  match t.cfg.checkpoint with
  | Config.No_checkpoint -> ()
  | Config.Light | Config.Heavy ->
      if now t -. s.last_checkpoint >= 5. *. t.cfg.slice then begin
        s.last_checkpoint <- now t;
        t.callbacks.save_checkpoint ~client:t.cid (Subproblem.capture s.solver)
      end

let request_split t s reason =
  if not s.split_pending then begin
    s.split_pending <- true;
    t.callbacks.log (Events.Split_requested { client = t.cid; reason });
    send t ~dst:t.master (Protocol.Split_request reason)
  end

let rec schedule_slice t delay =
  let token = t.token in
  ignore (Grid.Sim.schedule t.sim ~delay (fun () -> slice t token))

and slice t token =
  if t.alive && token = t.token then
    match t.state with
    | Idle -> ()
    | Solving s ->
        let avail = Grid.Trace.availability t.trace (now t) in
        let budget = max 1 (int_of_float (t.cfg.slice *. t.resource.R.speed *. avail)) in
        (match Solver.run s.solver ~budget with
        | Solver.Sat model ->
            t.callbacks.log (Events.Client_found_model t.cid);
            send t ~dst:t.master (Protocol.Found_model model);
            finish_problem t
        | Solver.Unsat ->
            t.callbacks.log (Events.Client_finished_unsat t.cid);
            flush_shares t s;
            send t ~dst:t.master Protocol.Finished_unsat;
            finish_problem t
        | Solver.Mem_pressure ->
            (* at the hard limit the solver cannot even store new learned
               clauses; without relief the OS eventually kills us *)
            s.hard_mem_strikes <- s.hard_mem_strikes + 1;
            request_split t s `Memory;
            if s.hard_mem_strikes > oom_strikes then begin
              t.callbacks.log (Events.Client_killed t.cid);
              die t
            end
            else schedule_slice t t.cfg.slice
        | Solver.Budget_exhausted ->
            s.hard_mem_strikes <- 0;
            if Solver.db_bytes s.solver > int_of_float (t.cfg.mem_headroom *. float_of_int t.mem_budget)
            then request_split t s `Memory
            else if now t >= split_deadline t s then request_split t s `Long_running;
            if now t -. s.last_share_flush >= t.cfg.share_flush_interval then flush_shares t s;
            maybe_checkpoint t s;
            schedule_slice t t.cfg.slice)

let start_problem t ~src ~transfer_time sp =
  let solver_config =
    {
      t.cfg.solver_config with
      Solver.mem_limit_bytes = t.mem_budget;
      Solver.share_export_max = max t.cfg.share_max_len t.cfg.solver_config.Solver.share_export_max;
      Solver.seed = t.cfg.solver_config.Solver.seed + t.cid;
    }
  in
  let solver = Subproblem.to_solver ~config:solver_config sp in
  t.token <- t.token + 1;
  t.state <-
    Solving
      {
        solver;
        started_at = now t;
        transfer_time;
        split_epoch = now t;
        split_pending = false;
        last_share_flush = now t;
        last_checkpoint = now t;
        hard_mem_strikes = 0;
      };
  send t ~dst:t.master
    (Protocol.Problem_received { from = src; bytes = Subproblem.bytes sp; depth = Subproblem.depth sp });
  (* an initial checkpoint covers the window before the first periodic one *)
  (match t.cfg.checkpoint with
  | Config.No_checkpoint -> ()
  | Config.Light | Config.Heavy -> t.callbacks.save_checkpoint ~client:t.cid sp);
  schedule_slice t t.cfg.slice

let handle_split_partner t partner =
  match t.state with
  | Idle -> send t ~dst:t.master Protocol.Split_failed
  | Solving s -> (
      s.split_pending <- false;
      match Subproblem.split_from s.solver with
      | None -> send t ~dst:t.master Protocol.Split_failed
      | Some sp ->
          let bytes = Subproblem.bytes sp in
          s.split_epoch <- now t;
          s.hard_mem_strikes <- 0;
          send t ~dst:partner (Protocol.Problem { sp; sent_at = now t });
          send t ~dst:t.master (Protocol.Split_ok { dst = partner; bytes }))

let handle_migrate t target =
  match t.state with
  | Idle -> ()
  | Solving s ->
      let sp = Subproblem.capture s.solver in
      send t ~dst:target (Protocol.Problem { sp; sent_at = now t });
      finish_problem t

let handle t ~src msg =
  if t.alive then
    match msg with
    | Protocol.Problem { sp; sent_at } ->
        if is_busy t then
          (* protocol violation under normal operation; drop defensively *)
          ()
        else start_problem t ~src ~transfer_time:(Float.max 0.1 (now t -. sent_at)) sp
    | Protocol.Split_partner { partner } -> handle_split_partner t partner
    | Protocol.Share_relay { origin = _; clauses } -> (
        match t.state with
        | Solving s -> Solver.queue_foreign_clauses s.solver clauses
        | Idle -> ())
    | Protocol.Migrate_to { target } -> handle_migrate t target
    | Protocol.Stop ->
        finish_problem t;
        t.alive <- false
    | Protocol.Register | Protocol.Problem_received _ | Protocol.Split_request _
    | Protocol.Split_ok _ | Protocol.Split_failed | Protocol.Shares _ | Protocol.Finished_unsat
    | Protocol.Found_model _ ->
        (* master-bound messages; a client should never receive them *)
        ()

(* Empty clients take a moment to launch before they can register
   (process start-up on the remote host). *)
let launch_delay = 1.0

let create ~sim ~bus ~cfg ~resource ~trace ~master callbacks =
  let t =
    {
      cid = resource.R.id;
      master;
      sim;
      bus;
      cfg;
      resource;
      trace;
      callbacks;
      mem_budget = R.usable_memory resource;
      state = Idle;
      alive = resource.R.mem_bytes >= cfg.Config.min_client_memory;
      token = 0;
      stats_acc = Sat.Stats.create ();
    }
  in
  if t.alive then begin
    Grid.Everyware.register bus ~id:t.cid ~site:resource.R.site ~handler:(fun ~src msg ->
        handle t ~src msg);
    ignore (Grid.Sim.schedule sim ~delay:launch_delay (fun () -> send t ~dst:master Protocol.Register))
  end;
  t
