(** GridSAT: the distributed solver, end to end.

    [solve ~testbed cnf] stands up the whole apparatus on the simulated
    Grid — network, messaging, NWS probes, master, one client per host,
    the batch job if any — runs the master-client protocol to completion,
    and returns the answer with full run metrics and the event log.

    {[
      let testbed = Gridsat_core.Testbed.grads () in
      let result = Gridsat_core.Gridsat.solve ~testbed cnf in
      match result.Gridsat_core.Master.answer with
      | Gridsat_core.Master.Sat model -> ...
      | Gridsat_core.Master.Unsat -> ...
      | Gridsat_core.Master.Unknown reason -> ...
    ]} *)

val solve :
  ?config:Config.t ->
  ?fault_plan:Grid.Fault.spec list ->
  ?obs:Obs.t ->
  ?health:Health.t ->
  ?on_master:(Master.t -> unit) ->
  testbed:Testbed.t ->
  Sat.Cnf.t ->
  Master.result
(** Runs to termination (answer, timeout, or unrecoverable failure).
    Raises [Invalid_argument] if [config] is inconsistent (see
    {!Config.validate}).  [fault_plan] arms the fault-injection subsystem
    against the run: host crashes, hangs, and master crash/restart cycles
    fire on the simulation clock, and message faults (drops, delays,
    duplicates, partitions) are applied to every send.  The plan is
    evaluated with a private RNG seeded from the config, so the same plan
    and seed replay the identical failure schedule.  [health] wires a
    (possibly shared) host-health model into the run's scheduling; see
    {!Master.create}.  [on_master] exposes
    the master right after construction — tests use it to inject failures
    at scheduled times.  [obs] (default [Obs.disabled]) collects metrics
    and spans across every layer of the run; its span clock is pointed at
    the simulation's virtual clock, so exported traces are deterministic
    for a given config and seed. *)

val answer_string : Master.answer -> string
(** "SAT", "UNSAT" or "UNKNOWN(reason)". *)

val pp_result : Format.formatter -> Master.result -> unit
(** One-paragraph run summary (answer, time, peak clients, traffic). *)
