(** Resource ranking and selection policies (paper Section 3.3).

    Pure functions over candidate descriptions so the policies are easy to
    test and to ablate against each other in the benchmarks. *)

type candidate = {
  resource : Grid.Resource.t;
  forecast : float;  (** NWS availability forecast in [0, 1] *)
  health : float;  (** {!Health.score} in [(0, 1]]; 1.0 when no model is wired *)
}

val rank : candidate -> float
(** The master's resource rank: forecast processing power scaled by a
    memory-capacity factor (the paper ranks by "processing power and
    memory capacity as forecast by the NWS"), multiplied by the host's
    observed health score. *)

val pick :
  Config.scheduler_policy -> rng:Random.State.t -> candidate list -> candidate option
(** Chooses the resource to receive the next subproblem among idle
    candidates.  [Nws_rank] takes the best {!rank}; the other policies are
    benchmark ablations. *)

val pick_backlog : (int * float) list -> int option
(** Given [(client, busy-since)] backlogged split requests, returns the
    client that has been working on the same subproblem the longest
    (the paper's backlog rule). *)

val should_migrate :
  enabled:bool -> busy_rank:float -> idle_rank:float -> bool
(** Migration heuristic: move a subproblem when an idle resource is at
    least twice as powerful as the one it currently runs on. *)
