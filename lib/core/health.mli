(** Per-host health model and circuit breaker (DESIGN.md §9).

    Grid hosts degrade without dying: the paper's NWS forecasts rank raw
    capacity, but a host running 20× slower than advertised never misses
    a heartbeat and so is invisible to crash detection.  This module
    blends what the master can actually observe — ack latency, heartbeat
    jitter, solve-progress rate (decisions/s from heartbeats), and
    crash/corruption history — into a score in [(0, 1]] that multiplies
    into {!Scheduler.rank} next to the forecast.

    Repeat offenders trip a circuit breaker: the host enters exponential
    probation ([probation_base · 2^(streak-1)] virtual seconds) during
    which it receives no work, then {e half-open} — it is handed exactly
    one canary subproblem, and only a successful result re-admits it.

    The model owns an always-enabled metrics registry (independent of
    [--report]) because adaptive timeouts and hedging read percentiles
    from its histograms.  One instance may be shared across runs (the
    service does): host ids are pool-global. *)

type t

val create : ?probation_base:float -> unit -> t
(** [probation_base] (default 30 virtual seconds) is the first
    probation; each further breaker trip doubles it. *)

(** {1 Signal feeds} *)

val note_ack : t -> host:int -> latency:float -> unit
(** An acknowledged reliable send: round-trip [latency] seconds. *)

val note_heartbeat : t -> host:int -> now:float -> decisions:int -> unit
(** A heartbeat carrying the client's cumulative solver decision count;
    consecutive beats yield the gap (jitter) and progress-rate signals. *)

val note_duration : t -> elapsed:float -> unit
(** A subproblem reached a result after [elapsed] virtual seconds — the
    fleet-wide duration histogram that hedging compares against. *)

type incident = [ `Crash | `Quarantine | `Exhausted | `Corruption | `Retry ]

val incident : t -> host:int -> now:float -> incident -> float option
(** Record a bad event.  [`Crash], [`Quarantine] and [`Exhausted] (retry
    give-up) trip the breaker and return [Some until_t], the probation
    deadline; [`Corruption] and [`Retry] only weigh on the score and
    return [None]. *)

val note_assigned : t -> host:int -> unit
(** Work was handed to the host; in the half-open state this marks the
    canary as outstanding so no second problem lands before it
    resolves. *)

val note_success : t -> host:int -> bool
(** The host returned a good result.  [true] iff this was a half-open
    canary succeeding — the breaker closes and the probation streak
    resets. *)

(** {1 Queries} *)

val score : t -> host:int -> float
(** Blended health in [(0, 1]]: incident factor × relative ack latency ×
    relative progress rate, halved while half-open, floored at 0.05 (so
    a sick-but-admissible host still ranks above an open-breaker one).
    Unknown hosts score 1.0. *)

val admissible : t -> host:int -> now:float -> bool
(** Whether the host may receive work now.  Transitions an expired open
    breaker to half-open as a side effect; half-open hosts are
    admissible only while their canary slot is free. *)

val duration_p99 : t -> float option
(** p99 subproblem duration; [None] until ≥ 5 samples. *)

val hb_gap_p99 : t -> float option
(** p99 heartbeat gap; [None] until ≥ 20 samples. *)

val ack_p99 : t -> float option
(** p99 ack latency; [None] until ≥ 20 samples. *)

val suspect_timeout : t -> heartbeat_period:float -> default:float -> float
(** Adaptive lease: [3 × hb_gap_p99] clamped to
    [[2.5 × heartbeat_period, default]] — it may only tighten the
    configured constant, never loosen it. *)

val retry_base : t -> default:float -> float option
(** Adaptive retry base: [2 × ack_p99] clamped to
    [[default/4, default]]; [None] until enough samples. *)

(** {1 Reporting} *)

type view = {
  v_host : int;
  v_score : float;
  v_state : string;  (** ["ok"] | ["probation"] | ["canary"] *)
  v_ack_ewma : float;
  v_hb_jitter : float;
  v_rate : float;
  v_crashes : int;
  v_quarantines : int;
  v_corruptions : int;
  v_retries : int;
}

val views : t -> view list
(** Per-host table sorted by host id. *)

val to_json : t -> Obs.Json.t
(** The table as a JSON array (the service report's [health] section). *)

val metrics : t -> Obs.Metrics.t
(** The model's private registry (ack/gap/duration histograms). *)
