(** The sequential comparator: zChaff on the fastest dedicated host.

    The paper times plain zChaff (augmented with the same root-level
    pruning optimisation as GridSAT's clients) on the fastest processor
    available, dedicated, with a wall-clock timeout and the host's memory
    as a hard limit.  This module reproduces that measurement in virtual
    time: the solver runs alone at full speed, and its propagation count
    divided by the host speed is its solution time. *)

type outcome = Sat of Sat.Model.t | Unsat | Timeout | Memout

type run = {
  outcome : outcome;
  time : float;  (** virtual seconds consumed (= timeout when [Timeout]) *)
  stats : Sat.Stats.t;
}

val run :
  ?config:Sat.Solver.config ->
  ?timeout:float ->
  host:Testbed.host ->
  Sat.Cnf.t ->
  run
(** [run ~host cnf] solves on [host] in dedicated mode (availability 1).
    The memory limit is the host's usable memory unless the solver config
    overrides it lower.  Default timeout: 18000 virtual seconds (the
    paper's zChaff allowance). *)
