module T = Sat.Types

(* The entry type itself lives in [Protocol] (so the wire can ship
   entries to a hot standby without a dependency cycle); re-exporting the
   constructors here keeps every [Journal.Assigned ...] call site — and
   the journal's ownership of the format — unchanged. *)
type entry = Protocol.journal_entry =
  | Registered of { client : int }
  | Assigned of { pid : Protocol.pid; dst : int; path : T.lit list }
  | Started of { pid : Protocol.pid; client : int }
  | Granted of { requester : int; partner : int }
  | Split of {
      donor : int;
      donor_pid : Protocol.pid;
      donor_path : T.lit list;
      pid : Protocol.pid;
      dst : int;
      path : T.lit list;
    }
  | Refuted of { pid : Protocol.pid }
  | Shared of { clauses : int }
  | Suspected of { client : int }
  | Died of { client : int }
  | Adopted of { pid : Protocol.pid; client : int; path : T.lit list }
  | Verdict of { answer : string }

type client_state = Alive | Dead

type state = {
  clients : (int, client_state) Hashtbl.t;
  live : (Protocol.pid, T.lit list) Hashtbl.t;
  holder : (Protocol.pid, int) Hashtbl.t;
  refuted : (Protocol.pid, unit) Hashtbl.t;
  mutable problem_assigned : bool;
  mutable splits : int;
  mutable share_batches : int;
  mutable shared_clauses : int;
  mutable verdict : string option;
}

let empty_state () =
  {
    clients = Hashtbl.create 16;
    live = Hashtbl.create 64;
    holder = Hashtbl.create 64;
    refuted = Hashtbl.create 64;
    problem_assigned = false;
    splits = 0;
    share_batches = 0;
    shared_clauses = 0;
    verdict = None;
  }

let copy_state s =
  {
    s with
    clients = Hashtbl.copy s.clients;
    live = Hashtbl.copy s.live;
    holder = Hashtbl.copy s.holder;
    refuted = Hashtbl.copy s.refuted;
  }

(* A refutation is final: pids are never reused, so a registration that
   arrives after the pid was refuted (message reordering around a split,
   possibly spanning a master restart) must not resurrect it. *)
let register st pid path client =
  if not (Hashtbl.mem st.refuted pid) then begin
    Hashtbl.replace st.live pid path;
    Hashtbl.replace st.holder pid client
  end

let apply st = function
  | Registered { client } -> Hashtbl.replace st.clients client Alive
  | Assigned { pid; dst; path } ->
      st.problem_assigned <- true;
      register st pid path dst
  | Started { pid; client } -> if not (Hashtbl.mem st.refuted pid) then Hashtbl.replace st.holder pid client
  | Granted _ -> ()
  | Split { donor; donor_pid; donor_path; pid; dst; path } ->
      st.splits <- st.splits + 1;
      register st donor_pid donor_path donor;
      register st pid path dst
  | Refuted { pid } ->
      Hashtbl.remove st.live pid;
      Hashtbl.remove st.holder pid;
      Hashtbl.replace st.refuted pid ()
  | Shared { clauses } ->
      st.share_batches <- st.share_batches + 1;
      st.shared_clauses <- st.shared_clauses + clauses
  | Suspected _ -> ()
  | Died { client } ->
      Hashtbl.replace st.clients client Dead;
      (* the dead host no longer holds anything; its live pids await
         re-homing (checkpoint or lineage re-derivation) *)
      let held =
        Hashtbl.fold (fun pid h acc -> if h = client then pid :: acc else acc) st.holder []
      in
      List.iter (Hashtbl.remove st.holder) held
  | Adopted { pid; client; path } ->
      (* a client busy on any subproblem proves the root was assigned,
         even when the Assigned record itself predates this log (a
         standby's shadow only holds the shipped suffix) *)
      st.problem_assigned <- true;
      register st pid path client
  | Verdict { answer } -> st.verdict <- Some answer

(* Full-fidelity rendering: every field of every entry lands in the
   output, so the at-rest integrity seal covers the whole record. *)
let pp_entry ppf e =
  let lits ppf ls =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      (fun ppf l -> Format.pp_print_int ppf (T.to_int l))
      ppf ls
  in
  let pid ppf (a, b) = Format.fprintf ppf "%d.%d" a b in
  match e with
  | Registered { client } -> Format.fprintf ppf "registered %d" client
  | Assigned { pid = p; dst; path } -> Format.fprintf ppf "assigned %a -> %d [%a]" pid p dst lits path
  | Started { pid = p; client } -> Format.fprintf ppf "started %a @ %d" pid p client
  | Granted { requester; partner } -> Format.fprintf ppf "granted %d + %d" requester partner
  | Split { donor; donor_pid; donor_path; pid = p; dst; path } ->
      Format.fprintf ppf "split %a @ %d [%a] -> %a @ %d [%a]" pid donor_pid donor lits donor_path
        pid p dst lits path
  | Refuted { pid = p } -> Format.fprintf ppf "refuted %a" pid p
  | Shared { clauses } -> Format.fprintf ppf "shared %d" clauses
  | Suspected { client } -> Format.fprintf ppf "suspected %d" client
  | Died { client } -> Format.fprintf ppf "died %d" client
  | Adopted { pid = p; client; path } ->
      Format.fprintf ppf "adopted %a @ %d [%a]" pid p client lits path
  | Verdict { answer } -> Format.fprintf ppf "verdict %s" answer

(* Byte occupancy is an estimate (this journal models stable storage, it
   does not serialise to a real file), but a deterministic one: the same
   entries always cost the same bytes, so quota crossings replay at the
   same virtual instants. *)
let state_bytes st =
  let b = ref 64 in
  Hashtbl.iter (fun _ _ -> b := !b + 8) st.clients;
  Hashtbl.iter (fun _ path -> b := !b + 16 + (8 * List.length path)) st.live;
  Hashtbl.iter (fun _ _ -> b := !b + 8) st.holder;
  Hashtbl.iter (fun _ _ -> b := !b + 8) st.refuted;
  !b

type t = {
  compact_every : int;
  mutable base : state;  (* the last snapshot *)
  mutable pending : (entry * int) list;
      (* newest first; entries since the snapshot, each sealed with the
         CRC-32 of its canonical rendering at append time *)
  mutable pending_n : int;
  mutable appended : int;
  mutable compactions : int;
  mutable records_dropped : int;
  mutable quota : int;  (* bytes; 0 = unlimited *)
  mutable base_bytes : int;
  mutable pending_bytes : int;
  mutable bytes_peak : int;
  mutable forced_compactions : int;
  mutable degraded : bool;
  mutable degraded_entries : int;
  obs : Obs.t;
  obs_on : bool;
  c_appends : Obs.Metrics.counter;
  c_compactions : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_forced : Obs.Metrics.counter;
  c_degraded : Obs.Metrics.counter;
  g_bytes : Obs.Metrics.gauge;
}

let create ?(obs = Obs.disabled) ?(quota = 0) ~compact_every () =
  let m = Obs.metrics obs in
  let base = empty_state () in
  {
    compact_every = max 1 compact_every;
    base;
    pending = [];
    pending_n = 0;
    appended = 0;
    compactions = 0;
    records_dropped = 0;
    quota = max 0 quota;
    base_bytes = state_bytes base;
    pending_bytes = 0;
    bytes_peak = 0;
    forced_compactions = 0;
    degraded = false;
    degraded_entries = 0;
    obs;
    obs_on = Obs.enabled obs;
    c_appends = Obs.Metrics.counter m "journal.appends";
    c_compactions = Obs.Metrics.counter m "journal.compactions";
    c_dropped = Obs.Metrics.counter m "journal.records.dropped";
    c_forced = Obs.Metrics.counter m "journal.forced_compactions";
    c_degraded = Obs.Metrics.counter m "journal.degraded_entries";
    g_bytes = Obs.Metrics.gauge m "journal.bytes";
  }

let seal e = Integrity.crc32 (Format.asprintf "%a" pp_entry e)

(* Drop pending records whose seal no longer matches their content (torn
   or rotted at rest).  Each bad record is counted once: it disappears
   from the pending list here, before any replay or compaction reads it.
   Losing a record degrades recovery precision (a lost lineage means a
   later re-derivation may have to give up) but never corrupts state —
   strictly better than folding garbage into the snapshot. *)
let scrub t =
  let ok, bad = List.partition (fun (e, d) -> seal e = d) t.pending in
  if bad <> [] then begin
    t.pending <- ok;
    t.pending_n <- List.length ok;
    t.pending_bytes <- List.fold_left (fun a (e, _) -> a + Protocol.entry_bytes e) 0 ok;
    t.records_dropped <- t.records_dropped + List.length bad;
    if t.obs_on then
      List.iter (fun _ -> Obs.Metrics.incr t.c_dropped) bad
  end

let compact t =
  scrub t;
  let folded = t.pending_n in
  List.iter (fun (e, _) -> apply t.base e) (List.rev t.pending);
  t.pending <- [];
  t.pending_n <- 0;
  t.pending_bytes <- 0;
  t.base_bytes <- state_bytes t.base;
  t.compactions <- t.compactions + 1;
  if t.obs_on then begin
    Obs.Metrics.incr t.c_compactions;
    ignore
      (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"journal"
         ~args:[ ("entries_folded", Obs.Json.Int folded) ]
         "journal.compact")
  end

let occupancy t = t.base_bytes + t.pending_bytes

let over_quota t = t.quota > 0 && occupancy t > t.quota

(* Quota discipline: the first crossing forces an emergency compaction
   (folding pending entries into the snapshot is the only way this
   storage can shrink).  If the snapshot alone still exceeds the quota,
   the journal enters degraded mode — appends keep landing (losing
   recovery records would be worse than overrunning an advisory quota)
   but each one is counted, and the owner is expected to alarm and pause
   replica shipping.  Degraded mode exits as soon as occupancy drops back
   under quota, whether by compaction shrinkage or quota relief. *)
let enforce_quota t =
  if (not t.degraded) && over_quota t then begin
    t.forced_compactions <- t.forced_compactions + 1;
    if t.obs_on then Obs.Metrics.incr t.c_forced;
    compact t;
    if over_quota t then t.degraded <- true
  end
  else if t.degraded && not (over_quota t) then t.degraded <- false

let append t e =
  t.pending <- (e, seal e) :: t.pending;
  t.pending_n <- t.pending_n + 1;
  t.pending_bytes <- t.pending_bytes + Protocol.entry_bytes e;
  t.appended <- t.appended + 1;
  if t.obs_on then Obs.Metrics.incr t.c_appends;
  let occ = occupancy t in
  if occ > t.bytes_peak then t.bytes_peak <- occ;
  if t.pending_n >= t.compact_every then compact t;
  enforce_quota t;
  if t.degraded then begin
    t.degraded_entries <- t.degraded_entries + 1;
    if t.obs_on then Obs.Metrics.incr t.c_degraded
  end;
  if t.obs_on then Obs.Metrics.set t.g_bytes (float_of_int (occupancy t))

let set_quota t ~quota =
  t.quota <- max 0 quota;
  enforce_quota t;
  if t.obs_on then Obs.Metrics.set t.g_bytes (float_of_int (occupancy t))

let quota t = t.quota

let degraded t = t.degraded

let degraded_entries t = t.degraded_entries

let forced_compactions t = t.forced_compactions

let bytes_peak t = t.bytes_peak

let replay t =
  scrub t;
  let st = copy_state t.base in
  List.iter (fun (e, _) -> apply st e) (List.rev t.pending);
  st

let corrupt_tail t ~n =
  let rec rot k = function
    | (e, d) :: rest when k > 0 -> (e, Integrity.corrupted d) :: rot (k - 1) rest
    | rest -> rest
  in
  t.pending <- rot n t.pending

let appended t = t.appended

let compactions t = t.compactions

let records_dropped t = t.records_dropped

let entries_since_snapshot t = t.pending_n

(* Canonical serialisation: every table is rendered in sorted key order so
   two replays of the same journal digest identically regardless of
   hashtable iteration order. *)
let digest st =
  let buf = Buffer.create 1024 in
  let lits ls = String.concat "," (List.map (fun l -> string_of_int (T.to_int l)) ls) in
  let pid (a, b) = Printf.sprintf "%d.%d" a b in
  Hashtbl.fold (fun id cs acc -> (id, cs) :: acc) st.clients []
  |> List.sort compare
  |> List.iter (fun (id, cs) ->
         Buffer.add_string buf
           (Printf.sprintf "c %d %s\n" id (match cs with Alive -> "alive" | Dead -> "dead")));
  Hashtbl.fold (fun p path acc -> (p, path) :: acc) st.live []
  |> List.sort compare
  |> List.iter (fun (p, path) ->
         let h = match Hashtbl.find_opt st.holder p with Some h -> string_of_int h | None -> "-" in
         Buffer.add_string buf (Printf.sprintf "l %s @%s [%s]\n" (pid p) h (lits path)));
  Hashtbl.fold (fun p () acc -> p :: acc) st.refuted []
  |> List.sort compare
  |> List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "r %s\n" (pid p)));
  Buffer.add_string buf
    (Printf.sprintf "s %b %d %d %d %s\n" st.problem_assigned st.splits st.share_batches
       st.shared_clauses
       (match st.verdict with Some v -> v | None -> "-"));
  Digest.to_hex (Digest.string (Buffer.contents buf))

