(** Descriptions of the simulated Grids the benchmarks run on.

    {!grads} models the paper's first apparatus: 34 shared machines across
    UTK, UIUC and UCSD, heterogeneous in speed and memory, with the master
    at UCSD.  {!set2} models the second apparatus: 27 machines (UIUC
    cluster, UCSD and UCSB desktops) plus an IBM Blue Horizon batch
    allocation that joins after a long queue wait.

    Host speeds are in solver propagation steps per virtual second; they
    set the scale of virtual time, and only ratios matter for the
    reproduced results. *)

type host = { resource : Grid.Resource.t; trace : Grid.Trace.t }

type batch_spec = {
  site : string;
  nodes : int;
  node_speed : float;
  node_mem : int;
  duration : float;
  mean_wait : float;
  queue_seed : int;  (** seed of the queue-wait draw (independent of the run seed) *)
}

type t = {
  name : string;
  master_site : string;
  hosts : host list;
  batch : batch_spec option;
  late_hosts : (float * host) list;
      (** interactive resources that become available mid-run (paper
          Section 3.3: "more clients [can] join at runtime") *)
  configure_network : Grid.Network.t -> unit;
}

val grads : ?seed:int -> ?base_speed:float -> unit -> t
(** The 34-host GrADS testbed (experiment set 1). *)

val set2 :
  ?seed:int ->
  ?base_speed:float ->
  ?batch_nodes:int ->
  ?batch_mean_wait:float ->
  ?batch_duration:float ->
  unit ->
  t
(** The second apparatus: 27 interactive hosts + Blue Horizon batch job. *)

val uniform : ?seed:int -> ?site:string -> ?mem_mb:int -> n:int -> speed:float -> unit -> t
(** A homogeneous dedicated cluster (for tests and controlled ablations). *)

val fastest : t -> host
(** The highest-speed interactive host (where the sequential baseline is
    timed, "the fastest processor available in dedicated mode"). *)

val nhosts : t -> int
