(** Timestamped event log of a GridSAT run.

    The log is how tests assert protocol behaviour (e.g. the five-message
    split sequence of Figure 3) and how examples narrate a run. *)

type kind =
  | Client_started of int  (** client id registered with the master *)
  | Problem_assigned of { src : int; dst : int; bytes : int; depth : int }
  | Split_requested of { client : int; reason : [ `Memory | `Long_running ] }
  | Split_granted of { client : int; partner : int }
  | Split_denied of { client : int }  (** no idle resource: request backlogged *)
  | Split_completed of { src : int; dst : int; bytes : int }
  | Migration of { src : int; dst : int; bytes : int }
  | Shares_broadcast of { origin : int; count : int; recipients : int }
  | Client_finished_unsat of int
  | Client_found_model of int
  | Model_verified of bool
  | Client_killed of int
  | Host_crashed of int  (** fault injection ground truth: silent crash *)
  | Host_hung of int  (** fault injection ground truth: silent hang *)
  | Client_suspected of { client : int }
      (** the failure detector's lease on this client expired *)
  | False_suspicion of { client : int }
      (** a message arrived from a host already declared dead; it is fenced *)
  | Message_retried of { src : int; dst : int; attempt : int }
  | Message_given_up of { src : int; dst : int }
  | Recovery_requeued of { client : int }
      (** a recovered subproblem is parked until a host frees up *)
  | Orphan_returned of { donor : int }
      (** a donor's peer-to-peer handoff exhausted its retries *)
  | Retries_exhausted of { src : int; dst : int; attempts : int }
      (** a reliable send ran out its whole retry budget (precedes the
          owner's give-up recovery) *)
  | Checkpoint_saved of { client : int; bytes : int }
  | Recovered_from_checkpoint of { client : int; onto : int }
  | Rederived_from_lineage of { holder : int option; depth : int }
      (** a lost subproblem with no usable checkpoint was reconstructed
          from the original CNF and its journaled guiding-path lineage *)
  | Master_crashed  (** fault injection ground truth: the master process died *)
  | Master_restarted  (** a fresh master came up and replayed the journal *)
  | Master_outage_detected of { client : int }
      (** a client exhausted its retries toward the master and switched to
          buffering its master-bound traffic *)
  | Client_resynced of { client : int; busy : bool }
      (** reconciliation: the client reported its state to the new master *)
  | Batch_job_submitted of { nodes : int }
  | Batch_job_started of { nodes : int }
  | Batch_job_cancelled
  | Corrupt_message_detected of { receiver : int; nacked : bool }
      (** an integrity frame failed its digest check at [receiver];
          [nacked] if the corrupt payload was a reliable envelope whose
          mid survived, triggering an immediate retransmit request *)
  | Storage_corrupted of { journal_records : int; checkpoints : bool }
      (** fault injection ground truth: at-rest rot of the master's
          stable storage *)
  | Unsat_fragment_certified of { pid : Protocol.pid; client : int; steps : int }
      (** the client's DRUP fragment for [pid] RUP-checked against the
          original formula under the branch's journaled guiding path *)
  | Certification_failed of { pid : Protocol.pid; client : int; reason : string }
      (** an UNSAT claim whose proof was missing, malformed, or did not
          check; the claim is rejected and the client quarantined *)
  | Client_quarantined of { client : int }
      (** the client's answer failed verification: it is written off and
          its subproblem re-derived from lineage onto another host *)
  | Host_slowed of { host : int; factor : float }
      (** fault injection ground truth: the host now computes [factor]×
          slower ([1.0] restores full speed) *)
  | Hedge_launched of { pid : Protocol.pid; primary : int; backup : int }
      (** the subproblem outlived the fleet's p99 duration with idle
          capacity available, so a second copy was dispatched *)
  | Hedge_cancelled of { pid : Protocol.pid; loser : int }
      (** one hedged copy answered; the other was told to stand down *)
  | Host_probation of { host : int; until_t : float }
      (** the host's circuit breaker tripped: no work until [until_t] *)
  | Host_readmitted of { host : int }
      (** a half-open host's canary subproblem succeeded; breaker closed *)
  | Journal_shipped of { seq : int; entries : int }
      (** the primary flushed a journal batch to the hot standby *)
  | Ship_applied of { seq : int; applied : int; ok : bool }
      (** the standby applied batch [seq]; [ok] is the continuous
          consistency check — its shadow replay digest matched the
          primary's *)
  | Replication_diverged of { seq : int }
      (** the standby's shadow replay digest did not match the primary's
          at batch [seq] — replication is unsound (should never happen) *)
  | Standby_promoted of { epoch : int }
      (** the standby's lease on the primary expired: it bumped the master
          epoch, took over the run, and is resyncing the clients *)
  | Stale_epoch_rejected of { receiver : int; src : int; epoch : int; current : int }
      (** an endpoint refused a frame whose epoch predates the one it has
          seen — a zombie primary's traffic after a partition heal *)
  | Stale_primary_fenced of { epoch : int }
      (** a superseded primary observed a frame from a newer epoch and
          stood down for good *)
  | Shares_shed of { origin : int; clauses : int; bytes : int }
      (** the per-link share budget refused these clauses (longest
          first); they were dropped, not queued *)
  | Outbox_shed of { client : int; shed : int }
      (** a client's master-outage outbox crossed its high watermark and
          shed buffered share batches (control envelopes are kept) *)
  | Forced_compaction of { occupancy : int; quota : int }
      (** an append pushed the journal past its disk quota; an emergency
          snapshot compaction was forced *)
  | Journal_degraded of { occupancy : int; quota : int }
      (** even compacted, the journal exceeds its quota: the run enters
          journaled-degraded mode — appends continue to be counted,
          replica shipping pauses, a durability alert trips *)
  | Journal_recovered of { occupancy : int; quota : int }
      (** quota relief (or compaction shrinkage) brought the journal back
          under quota; durability guarantees resume *)
  | Terminated of string

type t = { time : float; kind : kind }

val make : float -> kind -> t

val pp : Format.formatter -> t -> unit

val flight_view : kind -> string * (string * Obs.Json.t) list
(** Stable structured rendering for the flight recorder: a snake_case
    event name plus identifying arguments. *)
