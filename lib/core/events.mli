(** Timestamped event log of a GridSAT run.

    The log is how tests assert protocol behaviour (e.g. the five-message
    split sequence of Figure 3) and how examples narrate a run. *)

type kind =
  | Client_started of int  (** client id registered with the master *)
  | Problem_assigned of { src : int; dst : int; bytes : int; depth : int }
  | Split_requested of { client : int; reason : [ `Memory | `Long_running ] }
  | Split_granted of { client : int; partner : int }
  | Split_denied of { client : int }  (** no idle resource: request backlogged *)
  | Split_completed of { src : int; dst : int; bytes : int }
  | Migration of { src : int; dst : int; bytes : int }
  | Shares_broadcast of { origin : int; count : int; recipients : int }
  | Client_finished_unsat of int
  | Client_found_model of int
  | Model_verified of bool
  | Client_killed of int
  | Checkpoint_saved of { client : int; bytes : int }
  | Recovered_from_checkpoint of { client : int; onto : int }
  | Batch_job_submitted of { nodes : int }
  | Batch_job_started of { nodes : int }
  | Batch_job_cancelled
  | Terminated of string

type t = { time : float; kind : kind }

val make : float -> kind -> t

val pp : Format.formatter -> t -> unit
