(** GridSAT run configuration.

    The defaults correspond to the paper's first experiment set
    (Section 4): learned clauses of length at most 10 are shared, a client
    asks for a split after running for twice its problem-transfer time
    (never less than 100 s), and the run aborts after 6000 s. *)

type scheduler_policy =
  | Nws_rank  (** rank idle resources by NWS forecast x speed and memory (the paper's scheduler) *)
  | Random_pick  (** ablation: pick an idle resource uniformly at random *)
  | First_fit  (** ablation: pick the first idle resource by id *)

type checkpoint_mode = No_checkpoint | Light | Heavy
(** Section 3.4: [Light] persists only root-level assignments; [Heavy]
    additionally persists the learned clauses. *)

type t = {
  share_max_len : int;  (** maximum length of shared learned clauses (paper: 10 or 3) *)
  split_timeout : float;  (** floor for the run-time split heuristic, seconds (paper: 100) *)
  overall_timeout : float;  (** give up after this much virtual time (paper: 6000/12000) *)
  slice : float;  (** compute-slice quantum in virtual seconds *)
  share_flush_interval : float;  (** how often a client broadcasts fresh short clauses *)
  mem_headroom : float;  (** request a split when the DB exceeds this fraction of the budget *)
  min_client_memory : int;  (** hosts below this memory refuse to run a client (paper: 128 MB) *)
  scheduler : scheduler_policy;
  nws_probe_interval : float;  (** how often the master samples host availability *)
  migration_enabled : bool;
  checkpoint : checkpoint_mode;
  checkpoint_period : float;
      (** how often a busy client persists its state (virtual seconds), so
          it stays recoverable even if it never splits *)
  heartbeat_period : float;  (** client liveness beacon interval *)
  suspect_timeout : float;
      (** lease length of the master's failure detector: a monitored host
          silent for longer is declared dead and its work recovered.  Must
          comfortably exceed [heartbeat_period]. *)
  retry_base : float;  (** first backoff delay of the reliable channel *)
  retry_max_attempts : int;
      (** reliable sends abandoned after this many unacked transmissions *)
  retry_jitter : float;
      (** relative spread (in [[0, 1]]) applied to every reliable backoff
          delay from a per-endpoint seeded RNG: deterministic under the
          run seed, but desynchronised across clients, so retries that
          exhausted together during a master outage cannot stampede the
          restarted master in lockstep *)
  adaptive_timeouts : bool;
      (** derive the failure-detector lease and the reliable retry base
          from observed latency percentiles (heartbeat-gap p99, ack p99)
          instead of the fixed constants.  Adaptive values may only
          tighten the configured ones — [suspect_timeout]/[retry_base]
          remain the worst-case bounds. *)
  hedge : bool;
      (** straggler hedging: when a subproblem's elapsed time exceeds the
          fleet's p99 solve duration and an idle healthy host exists, the
          master dispatches a second copy of the same branch; the first
          result wins and the loser is cancelled.  Accounting stays
          exactly-once — both copies share one pid. *)
  journal_compact_every : int;
      (** fold the master's write-ahead journal into a snapshot every this
          many entries (bounds replay work after a master crash) *)
  resync_grace : float;
      (** how long a restarted master waits for client [Resync] reports
          before treating unclaimed live subproblems as orphans *)
  integrity_checks : bool;
      (** seal every wire message in a digest frame (receivers drop — and
          NACK, for reliable envelopes — payloads that fail the check),
          and verify at-rest seals on journal records and checkpoint
          snapshots.  On by default; the disabled path costs one branch. *)
  certify : bool;
      (** distributed UNSAT certification: clients log DRUP proofs and
          attach the fragment to [Finished_unsat]; the master RUP-checks
          every fragment against the original formula under the branch's
          journaled guiding path before tombstoning it, and quarantines
          clients whose answers fail.  Requires [integrity_checks] and
          [share_max_len = 0] (foreign clauses are not locally derivable,
          so sharing runs cannot produce checkable per-branch proofs). *)
  standby : bool;
      (** hot-standby master replication: the master ships its journal
          records to a shadow replica that continuously verifies its
          replay digest against the primary's; when the standby's lease
          on the primary expires it bumps the master epoch and promotes
          itself, reconciling through the normal resync path — clients
          are redirected, not restarted *)
  ship_sync : bool;
      (** ship every journal record the moment it is appended (zero
          replication lag at the cost of one wire message per append)
          instead of batching on [ship_interval].  Requires [standby]. *)
  ship_interval : float;
      (** how often (virtual seconds) the primary flushes the pending
          journal records to the standby in async ship mode; an empty
          batch is still shipped so the shipment stream doubles as the
          standby's liveness signal on an idle master *)
  standby_lease : float;
      (** how long the standby tolerates silence from the primary before
          promoting itself.  Must comfortably exceed [heartbeat_period]
          (the ship stream ticks at [ship_interval] <= lease). *)
  share_budget : int;
      (** per-link clause-sharing byte budget per [share_window] of
          virtual time (HordeSat-style bandwidth cap).  When a relay
          would exceed a recipient link's budget, the longest (lowest
          value) clauses are shed first and counted; 0 disables the
          budget and restores unconditional broadcast. *)
  share_window : float;
      (** length (virtual seconds) of the clause-sharing budget window *)
  journal_quota : int;
      (** disk quota (estimated bytes) for the master's write-ahead
          journal.  Crossing it forces an emergency snapshot compaction;
          if the journal is still over quota it enters journaled-degraded
          mode (durability alert, replica shipping paused) instead of
          raising.  0 disables the quota. *)
  outbox_cap : int;
      (** high watermark of a client's master-outage outbox: beyond this
          depth buffered share batches are shed (control-plane envelopes
          are unsheddable and may exceed the cap) *)
  solver_config : Sat.Solver.config;
  seed : int;
}

val default : t

val experiment_set_1 : t
(** Share length 10, 100 s split timeout, 6000 s overall — Table 1 solvable runs. *)

val experiment_set_2 : t
(** Share length 3 — Table 2 runs (the harder instances). *)

val validate : t -> (unit, string) result
(** Rejects inconsistent configurations with a descriptive message:
    non-positive periods/timeouts, [suspect_timeout <= heartbeat_period]
    (every healthy client would be declared dead), [retry_max_attempts <
    1], [mem_headroom] outside [(0, 1]], [certify] without
    [integrity_checks] or with clause sharing enabled, [ship_sync]
    without [standby], non-positive [ship_interval], [standby_lease]
    not exceeding [heartbeat_period], negative [share_budget] or
    [journal_quota], non-positive [share_window], [outbox_cap < 1], and
    similar contradictions that would silently wedge or corrupt a run. *)

val validate_exn : t -> unit
(** Raises [Invalid_argument] where {!validate} returns [Error].  Called
    by the {!Gridsat} entry points before a run starts. *)
