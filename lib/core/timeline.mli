(** Parallelism profile of a run, derived from the event log.

    The paper notes that the number of active clients "starts at one and
    varies during the run", collapsing to zero when the problem is solved.
    This module reconstructs that curve from a {!Master.result}'s events,
    computes utilisation summaries, and renders a terminal chart — the
    repository's stand-in for a clients-over-time figure. *)

val busy_curve : Events.t list -> (float * int) list
(** Step function of simultaneously busy clients: [(time, count)] points
    at every change, in chronological order, starting from [(t0, 0)]. *)

val peak : (float * int) list -> int

val average : (float * int) list -> float
(** Time-weighted mean number of busy clients over the curve's span.
    0.0 for an empty or single-point curve (no elapsed time). *)

val client_seconds : (float * int) list -> float
(** The integral of the curve: total busy client-time consumed. *)

val ascii_chart : ?width:int -> ?height:int -> (float * int) list -> string
(** A bar chart of the curve ([width] time buckets, [height] rows).
    Empty and zero-width (single-point) curves render a defined
    ["(no data...)"] line instead of a degenerate chart. *)

val json : (float * int) list -> Obs.Json.t
(** Curve summary (peak, average, client-seconds, span) plus the raw
    points, for embedding in the run report. *)
