(** The master's write-ahead journal (durability layer).

    Every master state transition that matters for recovery — client
    registration, problem assignment, split grants and completions,
    clause-share accounting, suspicion, death, adoption, verdict — is
    appended to the journal {e before} the transition's messages go out.
    The journal models the master's stable storage: a crashed master loses
    all volatile state (reservations, in-flight transfers, backlogs) but
    the journal survives, and {!replay} folds it back into the state a
    restarted master needs to resume the run.

    Entries pending since the last snapshot are folded into a base
    snapshot every [compact_every] appends, bounding replay work — the
    classical WAL + checkpoint compaction scheme.

    Replay is deterministic: {!digest} renders the replayed state in
    canonical (sorted) order, so two replays of the same journal always
    produce identical digests. *)

(** Re-export of {!Protocol.journal_entry}: the constructors are defined
    on the protocol side so a {!Protocol.Ship} message can carry entries
    to a hot-standby replica, but the journal remains the authority on
    their meaning. *)
type entry = Protocol.journal_entry =
  | Registered of { client : int }
  | Assigned of { pid : Protocol.pid; dst : int; path : Sat.Types.lit list }
      (** the master sent [pid] (with guiding-path lineage [path]) to [dst] *)
  | Started of { pid : Protocol.pid; client : int }
      (** [client] confirmed it is working on [pid] *)
  | Granted of { requester : int; partner : int }
  | Split of {
      donor : int;
      donor_pid : Protocol.pid;
      donor_path : Sat.Types.lit list;
      pid : Protocol.pid;
      dst : int;
      path : Sat.Types.lit list;
    }
      (** a completed split: the donor kept [donor_pid] (its lineage grew
          to [donor_path]) and handed the complementary branch [pid] with
          lineage [path] to [dst] *)
  | Refuted of { pid : Protocol.pid }
  | Shared of { clauses : int }
  | Suspected of { client : int }
  | Died of { client : int }
  | Adopted of { pid : Protocol.pid; client : int; path : Sat.Types.lit list }
      (** reconciliation: a resyncing client reported live work *)
  | Verdict of { answer : string }

type client_state = Alive | Dead

type state = {
  clients : (int, client_state) Hashtbl.t;
  live : (Protocol.pid, Sat.Types.lit list) Hashtbl.t;
      (** every unrefuted subproblem and its guiding-path lineage — enough
          to re-derive the subproblem from the original CNF *)
  holder : (Protocol.pid, int) Hashtbl.t;  (** last known holder of each live pid *)
  refuted : (Protocol.pid, unit) Hashtbl.t;
      (** tombstones: every pid ever refuted.  Pids are never reused, so a
          registration entry for a tombstoned pid is ignored on replay —
          a [Refuted] that was journaled before a reordered [Split] or
          [Adopted] entry must not resurrect the subproblem. *)
  mutable problem_assigned : bool;
  mutable splits : int;
  mutable share_batches : int;
  mutable shared_clauses : int;
  mutable verdict : string option;
}

type t

val create : ?obs:Obs.t -> ?quota:int -> compact_every:int -> unit -> t
(** [obs] (default [Obs.disabled]) receives append/compaction counters,
    an occupancy gauge, and a compaction instant-span on the master
    track.  [quota] (estimated bytes, default 0 = unlimited) is the disk
    quota enforced by {!append}/{!set_quota}. *)

val append : t -> entry -> unit
(** Appends one entry, compacting into the snapshot when [compact_every]
    entries have accumulated since the last compaction. *)

val replay : t -> state
(** Snapshot plus pending entries, folded into a fresh state.  Records
    whose at-rest integrity seal no longer matches (torn/rotted writes)
    are discarded — and counted in {!records_dropped} — rather than
    folded in as garbage.  Replaying twice yields equal states. *)

val digest : state -> string
(** Canonical hex digest of a replayed state (order-independent). *)

val appended : t -> int
(** Total entries ever appended. *)

val set_quota : t -> quota:int -> unit
(** Change the disk quota (0 lifts it).  Tightening below the current
    occupancy forces an emergency compaction immediately; if the
    compacted snapshot alone still exceeds the quota the journal enters
    degraded mode.  Relief above the occupancy exits degraded mode. *)

val quota : t -> int

val occupancy : t -> int
(** Estimated on-disk bytes: the snapshot plus the pending records.  The
    estimate is deterministic, so quota crossings replay at the same
    virtual instants under the same seed. *)

val bytes_peak : t -> int
(** Highest occupancy ever observed. *)

val over_quota : t -> bool

val degraded : t -> bool
(** Journaled-degraded mode: occupancy exceeds the quota even after a
    forced compaction.  Appends continue (dropping recovery records
    would be strictly worse than overrunning an advisory quota) but each
    is counted in {!degraded_entries}; the owner is expected to raise a
    durability alert and pause replica shipping until recovery. *)

val degraded_entries : t -> int
(** Entries appended while the journal was in degraded mode. *)

val forced_compactions : t -> int
(** Emergency compactions forced by a quota crossing (in addition to the
    periodic [compact_every] ones, which {!compactions} also counts). *)

val compactions : t -> int
(** How many times pending entries were folded into the snapshot. *)

val entries_since_snapshot : t -> int

val records_dropped : t -> int
(** Pending records discarded because their integrity seal (CRC-32 of the
    canonical rendering, taken at append time) no longer matched. *)

val corrupt_tail : t -> n:int -> unit
(** Fault injection: rot the newest [n] not-yet-compacted records at rest,
    so their seals stop matching.  The next {!replay} or compaction
    discards them. *)

val pp_entry : Format.formatter -> entry -> unit
