module R = Grid.Resource

type answer = Sat of Sat.Model.t | Unsat | Unknown of string

type result = {
  answer : answer;
  time : float;
  max_clients : int;
  splits : int;
  share_batches : int;
  shared_clauses : int;
  messages : int;
  bytes : int;
  dropped_messages : int;
  dropped_bytes : int;
  retries : int;
  false_suspicions : int;
  recoveries : int;
  rederivations : int;
  master_crashes : int;
  hedges : int;
  hedge_cancellations : int;
  checkpoint_bytes : int;
  corrupt_detected : int;
  nacks : int;
  certified_fragments : int;
  quarantines : int;
  checkpoints_discarded : int;
  journal_records_dropped : int;
  ships : int;
  promotions : int;
  stale_epoch_rejections : int;
  replication_divergences : int;
  shares_shed : int;
  share_bytes : int;
  share_link_peak : int;
  dup_suppressed : int;
  outbox_shed : int;
  outbox_peak : int;
  forced_compactions : int;
  degraded_entries : int;
  journal_bytes : int;
  solver_stats : Sat.Stats.t;
  events : Events.t list;
}

(* Pool state (hosts, lease states, NWS forecasters, reliable endpoint)
   lives in [Pool]; re-export its state machine and host record so the
   protocol code below reads unqualified.  Everything left in [t] is
   per-run state: the split tree, journal, certification bookkeeping. *)
type rstate = Pool.rstate = Launching | Idle | Reserved | Busy | Dead

type hostinfo = Pool.host = {
  client : Client.t;
  resource : R.t;
  trace : Grid.Trace.t;
  nws : Grid.Nws.t;
  mutable rstate : rstate;
  mutable busy_since : float;
  mutable last_heard : float;  (* failure-detector lease anchor *)
  mutable fenced : bool;  (* a declared-dead host that spoke again was told to stop *)
  mutable pid : Protocol.pid option;  (* the subproblem this host is working on *)
}

type t = {
  sim : Grid.Sim.t;
  bus : Protocol.msg Grid.Everyware.t;
  cfg : Config.t;
  cnf : Sat.Cnf.t;
  testbed : Testbed.t;
  pool : Pool.t;
  checkpoints : Checkpoint.t;
  mutable backlog : (int * float) list;  (* requester, busy-since at request time *)
  mutable pending_partner : (int * int) list;  (* requester -> reserved partner *)
  mutable migrating : (int * int) list;  (* source -> reserved target *)
  live_problems : (Protocol.pid, unit) Hashtbl.t;
      (* every subproblem not yet refuted; UNSAT iff it drains empty.
         Keyed by pid so duplicated or re-homed copies count once. *)
  in_flight : (int, Protocol.pid * Subproblem.t) Hashtbl.t;
      (* problems the master itself sent that are not yet acknowledged by a
         Problem_received; recoverable without a checkpoint *)
  pending_recovery : (Protocol.pid * Subproblem.t * int * bool) Queue.t;
      (* pid, subproblem, failed client, came-from-checkpoint.  A queue,
         not a list: recoveries are appended at the tail and served from
         the head, and a mass failure can park hundreds of subproblems —
         list-append accumulation made that quadratic. *)
  pending_cert : (Protocol.pid, int * string option) Hashtbl.t;
      (* certify mode: UNSAT claims that overtook the registration
         recording their branch's guiding path (client, proof); settled
         when the lineage arrives *)
  mutable journal : Journal.t;
      (* write-ahead log on stable storage: survives a master crash.
         Mutable because promotion swaps in the standby's shadow journal:
         the shipped prefix becomes the authoritative log of the run *)
  mutable replica : Replica.t option;  (* hot standby (cfg.standby) *)
  mutable epoch : int;
      (* master epoch: stamped into every outgoing integrity frame and
         bumped at promotion, so traffic from a superseded primary is
         recognisably stale everywhere *)
  mutable active_id : int;
      (* bus endpoint this master speaks from: [master_id], or
         [Replica.standby_id] once the standby has been promoted *)
  mutable promoted : bool;  (* the standby took over this run *)
  mutable ship_buffer : Protocol.journal_entry list;
      (* journal entries appended since the last shipment, newest first *)
  mutable shipped_seq : int;  (* entries shipped so far *)
  mutable standby_applied : int;  (* from the standby's latest Ship_ack *)
  mutable outage_started : float option;
      (* when the current master outage began (crash or usurpation) —
         closed into the failover histogram at reconciliation *)
  lineage : (Protocol.pid, Sat.Types.lit list) Hashtbl.t;
      (* guiding-path lineage of every live subproblem — enough to
         re-derive any of them from the original CNF *)
  last_holder : (Protocol.pid, int) Hashtbl.t;
  refuted_pids : (Protocol.pid, unit) Hashtbl.t;
      (* tombstones: pids are never reused, so a registration arriving
         after the pid's refutation (a Split_ok or Problem_received
         reordered behind the holder's own Finished_unsat) must be
         absorbed, not resurrected as live work *)
  hedged : (Protocol.pid, unit) Hashtbl.t;
      (* pids currently solved by two hosts at once (straggler hedging).
         A hedged pid must keep a stable identity until one copy wins:
         split grants are denied, migration skips it, and losing its
         entry here (master crash) only costs the loser-cancel
         optimisation — pid-keyed accounting stays exactly-once *)
  mutable down : bool;  (* the master process is crashed right now *)
  mutable resyncing : bool;  (* restarted; waiting out the resync grace *)
  mutable problem_assigned : bool;
  mutable finished : bool;
  mutable answer : answer option;
  mutable max_clients : int;
  mutable splits : int;
  mutable share_batches : int;
  mutable shared_clauses : int;
  share_budget : Flow.budget option;
      (* per-recipient-link byte budget per virtual-time window
         ([cfg.share_budget] > 0); [None] keeps unconditional broadcast *)
  mutable shares_shed : int;  (* clause relays refused by the budget *)
  mutable share_bytes : int;  (* share bytes actually put on the wire *)
  mutable last_share_shed : float;  (* resource-pressure recency signal *)
  mutable n_dup : int;  (* duplicate clauses suppressed across all clients *)
  mutable n_outbox_shed : int;  (* outage-outbox messages shed across all clients *)
  mutable outbox_peak : int;  (* deepest any client's outage outbox ever got *)
  mutable checkpoint_bytes_peak : int;
  mutable events : Events.t list;  (* newest first *)
  mutable batch_job : (Grid.Batch.t * Grid.Batch.job) option;
  mutable next_batch_id : int;
  rng : Random.State.t;
  started_at : float;
  obs : Obs.t;
  obs_on : bool;
  split_spans : (int, Obs.Span.id) Hashtbl.t;  (* requester -> open split span *)
  mutable outage_span : Obs.Span.id;  (* covers a master crash .. reconciliation *)
  c_splits_granted : Obs.Metrics.counter;
  c_splits_denied : Obs.Metrics.counter;
  c_splits_completed : Obs.Metrics.counter;
  c_shares_relayed : Obs.Metrics.counter;
  c_recov_checkpoint : Obs.Metrics.counter;
  c_recov_rederived : Obs.Metrics.counter;
  c_recov_requeued : Obs.Metrics.counter;
  c_migrations : Obs.Metrics.counter;
  c_deaths : Obs.Metrics.counter;
  c_corrupt_detected : Obs.Metrics.counter;
  c_nacks : Obs.Metrics.counter;
  c_certified : Obs.Metrics.counter;
  c_quarantines : Obs.Metrics.counter;
  c_ships : Obs.Metrics.counter;
  c_stale_rejected : Obs.Metrics.counter;
  c_shares_shed : Obs.Metrics.counter;
  c_share_bytes : Obs.Metrics.counter;
  g_repl_lag : Obs.Metrics.gauge;
  h_failover : Obs.Metrics.histogram;
  h_share_fanout : Obs.Metrics.histogram;
  flight : Obs.Flight.t;
  flight_on : bool;
  anomaly : Obs.Anomaly.t;
  anomaly_on : bool;
  d_hb_gap : Obs.Anomaly.detector;  (* fleet-wide heartbeat inter-arrival gaps *)
  d_share_volume : Obs.Anomaly.detector;  (* bytes per relayed share batch *)
  last_hb : (int, float) Hashtbl.t;  (* per-host previous heartbeat time *)
}

let master_id = 0

let initial_pid : Protocol.pid = (master_id, 0)

(* Every endpoint's events funnel through here (clients log via their
   callbacks), so this is also where the run-wide integrity and
   certification counters are kept. *)
let log t kind =
  (if t.obs_on then
     match kind with
     | Events.Corrupt_message_detected { nacked; _ } ->
         Obs.Metrics.incr t.c_corrupt_detected;
         if nacked then Obs.Metrics.incr t.c_nacks
     | Events.Unsat_fragment_certified _ -> Obs.Metrics.incr t.c_certified
     | Events.Client_quarantined _ -> Obs.Metrics.incr t.c_quarantines
     | Events.Stale_epoch_rejected _ -> Obs.Metrics.incr t.c_stale_rejected
     | _ -> ());
  (if t.flight_on then
     let name, args = Events.flight_view kind in
     Obs.Flight.note t.flight ~sub:"master" ~args name);
  (if t.anomaly_on then
     let trip rule detail =
       Obs.Anomaly.trip t.anomaly ~at:(Grid.Sim.now t.sim) ~rule ~detail ()
     in
     match kind with
     | Events.Client_quarantined { client } -> trip "quarantine" (Printf.sprintf "client %d" client)
     | Events.Host_probation { host; _ } -> trip "probation" (Printf.sprintf "host %d" host)
     | Events.Master_restarted -> trip "master-failover" ""
     | Events.Standby_promoted { epoch } -> trip "master-failover" (Printf.sprintf "epoch %d" epoch)
     | Events.Journal_degraded { occupancy; quota } ->
         trip "journal-degraded" (Printf.sprintf "%d bytes over a %d quota" occupancy quota)
     | _ -> ());
  t.events <- Events.make (Grid.Sim.now t.sim) kind :: t.events

let spanr t = Obs.spans t.obs

let minstant t ?parent ?args ~cat name =
  if t.obs_on then ignore (Obs.Span.instant (spanr t) ?parent ?args ~tid:Obs.Span.master_tid ~cat name)

let events_so_far t = List.rev t.events

let schedule t ~delay f = ignore (Grid.Sim.schedule t.sim ~delay f)

let busy_clients t = Pool.busy_count t.pool

let busy_client_ids t = Pool.busy_ids t.pool

let finished t = t.finished

let reliable t = Pool.reliable t.pool

(* A crashed master cannot transmit: its volatile state (and endpoint) are
   gone until restart.  Guarding here keeps stray timers harmless. *)
let send_raw t ~dst msg =
  if not t.down then begin
    let msg =
      if t.cfg.Config.integrity_checks then Protocol.frame ~epoch:t.epoch msg else msg
    in
    Grid.Everyware.send t.bus ~src:t.active_id ~dst ~bytes:(Protocol.size msg) msg
  end

let journal t = t.journal

let epoch t = t.epoch

let promoted t = t.promoted

let replica t = t.replica

let send t ~dst msg =
  if Protocol.critical msg then Reliable.send (reliable t) ~dst msg else send_raw t ~dst msg

(* Flush the pending journal entries to the standby.  The shipped digest
   is the primary's replay digest *after* this batch: every flush drains
   the whole buffer, so the standby's shadow journal — the shipped prefix
   — must render to exactly this digest once it applies the batch.  An
   empty flush still goes out: the shipment stream is the standby's
   liveness signal, so an idle primary must keep ticking it. *)
let ship_flush t =
  match t.replica with
  | Some _ when (not t.down) && (not t.promoted) && not t.finished ->
      let entries = List.rev t.ship_buffer in
      t.ship_buffer <- [];
      let seq = t.shipped_seq in
      t.shipped_seq <- seq + List.length entries;
      let state_digest = Journal.digest (Journal.replay t.journal) in
      log t (Events.Journal_shipped { seq; entries = List.length entries });
      if t.obs_on then Obs.Metrics.incr t.c_ships;
      send t ~dst:Replica.standby_id (Protocol.Ship { seq; entries; state_digest })
  | _ -> ()

let rec ship_loop t =
  if (not t.finished) && t.replica <> None && not t.promoted then begin
    if (not t.down) && not (Journal.degraded t.journal) then ship_flush t;
    schedule t ~delay:t.cfg.Config.ship_interval (fun () -> ship_loop t)
  end

(* Watch the journal's quota machinery across an operation: emit the
   durability alert the moment a forced compaction fires or degraded mode
   is entered/left (the entry alarm also trips the anomaly log via the
   [log] rules, which dumps the flight recorder where the service wires
   it). *)
let watch_journal t f =
  let fc_before = Journal.forced_compactions t.journal in
  let deg_before = Journal.degraded t.journal in
  f ();
  let occupancy = Journal.occupancy t.journal and quota = Journal.quota t.journal in
  if Journal.forced_compactions t.journal > fc_before then
    log t (Events.Forced_compaction { occupancy; quota });
  if Journal.degraded t.journal && not deg_before then
    log t (Events.Journal_degraded { occupancy; quota })
  else if deg_before && not (Journal.degraded t.journal) then
    log t (Events.Journal_recovered { occupancy; quota })

let set_journal_quota t ~quota = watch_journal t (fun () -> Journal.set_quota t.journal ~quota)

let jlog t entry =
  watch_journal t (fun () -> Journal.append t.journal entry);
  if t.replica <> None && not t.promoted then begin
    t.ship_buffer <- entry :: t.ship_buffer;
    (* degraded storage pauses shipment (the standby must not ack a prefix
       the primary may be forced to drop); the buffer keeps accumulating
       and the lag gauge rises until recovery resumes the stream *)
    if Journal.degraded t.journal then begin
      if t.obs_on then
        Obs.Metrics.set t.g_repl_lag
          (float_of_int (max 0 (Journal.appended t.journal - t.standby_applied)))
    end
    else if t.cfg.Config.ship_sync then ship_flush t
  end

let update_max t =
  let b = busy_clients t in
  if b > t.max_clients then t.max_clients <- b

let health t = Pool.health t.pool

(* Health-signal feeds.  All of them are no-ops without a wired model, so
   a plain master keeps its exact historical behaviour. *)
let note_incident t host kind =
  match health t with
  | None -> ()
  | Some hm -> (
      match Health.incident hm ~host ~now:(Grid.Sim.now t.sim) kind with
      | Some until_t -> log t (Events.Host_probation { host; until_t })
      | None -> ())

(* A host handed back a good result: feed the fleet duration histogram
   (hedging compares against its p99) and let a half-open breaker close. *)
let note_host_success t src =
  match health t with
  | None -> ()
  | Some hm ->
      (match Pool.find_opt t.pool src with
      | Some h when h.rstate = Busy ->
          Health.note_duration hm ~elapsed:(Grid.Sim.now t.sim -. h.busy_since)
      | _ -> ());
      if Health.note_success hm ~host:src then log t (Events.Host_readmitted { host = src })

let aggregate_stats t = Pool.aggregate_solver_stats t.pool

let count_events t f = List.fold_left (fun acc e -> if f e.Events.kind then acc + 1 else acc) 0 t.events

let result t =
  match t.answer with
  | None -> invalid_arg "Master.result: run not finished"
  | Some answer ->
      {
        answer;
        time = Grid.Sim.now t.sim -. t.started_at;
        max_clients = t.max_clients;
        splits = t.splits;
        share_batches = t.share_batches;
        shared_clauses = t.shared_clauses;
        messages = Grid.Everyware.messages_sent t.bus;
        bytes = Grid.Everyware.bytes_sent t.bus;
        dropped_messages = Grid.Everyware.messages_dropped t.bus;
        dropped_bytes = Grid.Everyware.bytes_dropped t.bus;
        retries = count_events t (function Events.Message_retried _ -> true | _ -> false);
        false_suspicions = count_events t (function Events.False_suspicion _ -> true | _ -> false);
        recoveries =
          count_events t (function Events.Recovered_from_checkpoint _ -> true | _ -> false);
        rederivations =
          count_events t (function Events.Rederived_from_lineage _ -> true | _ -> false);
        master_crashes = count_events t (function Events.Master_crashed -> true | _ -> false);
        hedges = count_events t (function Events.Hedge_launched _ -> true | _ -> false);
        hedge_cancellations =
          count_events t (function Events.Hedge_cancelled _ -> true | _ -> false);
        checkpoint_bytes = t.checkpoint_bytes_peak;
        corrupt_detected =
          count_events t (function Events.Corrupt_message_detected _ -> true | _ -> false);
        nacks =
          count_events t (function
            | Events.Corrupt_message_detected { nacked = true; _ } -> true
            | _ -> false);
        certified_fragments =
          count_events t (function Events.Unsat_fragment_certified _ -> true | _ -> false);
        quarantines = count_events t (function Events.Client_quarantined _ -> true | _ -> false);
        checkpoints_discarded = Checkpoint.discarded t.checkpoints;
        journal_records_dropped = Journal.records_dropped t.journal;
        ships = count_events t (function Events.Journal_shipped _ -> true | _ -> false);
        promotions = count_events t (function Events.Standby_promoted _ -> true | _ -> false);
        stale_epoch_rejections =
          count_events t (function Events.Stale_epoch_rejected _ -> true | _ -> false);
        replication_divergences =
          count_events t (function Events.Replication_diverged _ -> true | _ -> false);
        shares_shed = t.shares_shed;
        share_bytes = t.share_bytes;
        share_link_peak =
          (match t.share_budget with Some b -> Flow.window_peak b | None -> 0);
        dup_suppressed = t.n_dup;
        outbox_shed = t.n_outbox_shed;
        outbox_peak = t.outbox_peak;
        forced_compactions = Journal.forced_compactions t.journal;
        degraded_entries = Journal.degraded_entries t.journal;
        journal_bytes = Journal.bytes_peak t.journal;
        solver_stats = aggregate_stats t;
        events = events_so_far t;
      }

(* Resource pressure (a service-brownout input): degraded stable storage,
   any client's outage outbox latched above its high watermark, or a
   share-budget shed within the last budget window. *)
let resource_pressure t =
  Journal.degraded t.journal
  || Grid.Sim.now t.sim -. t.last_share_shed <= t.cfg.Config.share_window
  ||
  let pressured = ref false in
  Pool.iter (fun _ h -> if Client.outbox_pressured h.client then pressured := true) t.pool;
  !pressured

let host t id = Pool.find t.pool id

let unreserve t id = Pool.unreserve t.pool id

let reserved_hosts t = Pool.reserved_ids t.pool

let terminate t answer why =
  if not t.finished then begin
    t.finished <- true;
    t.answer <- Some answer;
    jlog t
      (Journal.Verdict
         { answer = (match answer with Sat _ -> "SAT" | Unsat -> "UNSAT" | Unknown _ -> "UNKNOWN") });
    log t (Events.Terminated why);
    (* a finished run must not leave hosts parked in Reserved: clear every
       outstanding reservation before the Stop broadcast *)
    List.iter (fun (_, partner) -> unreserve t partner) t.pending_partner;
    List.iter (fun (_, target) -> unreserve t target) t.migrating;
    Hashtbl.iter (fun dst _ -> unreserve t dst) t.in_flight;
    t.pending_partner <- [];
    t.migrating <- [];
    t.backlog <- [];
    Queue.clear t.pending_recovery;
    Hashtbl.reset t.pending_cert;
    Hashtbl.reset t.in_flight;
    Reliable.stop (reliable t);
    (match t.replica with Some r -> Replica.stop r | None -> ());
    Pool.iter
      (fun id h -> if h.rstate <> Dead && Client.is_alive h.client then send_raw t ~dst:id Protocol.Stop)
      t.pool;
    match t.batch_job with
    | Some (ctl, job)
      when Grid.Batch.state job = Grid.Batch.Queued || Grid.Batch.state job = Grid.Batch.Running ->
        Grid.Batch.cancel ctl job;
        log t Events.Batch_job_cancelled
    | Some _ | None -> ()
  end

(* ---------- scheduling ---------- *)

let idle_candidates t =
  Pool.idle_candidates t.pool ~resyncing:t.resyncing ~now:(Grid.Sim.now t.sim)

let grant_split t requester =
  match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
  | None -> false
  | Some cand ->
      let partner = cand.Scheduler.resource.R.id in
      (host t partner).rstate <- Reserved;
      t.pending_partner <- (requester, partner) :: t.pending_partner;
      jlog t (Journal.Granted { requester; partner });
      log t (Events.Split_granted { client = requester; partner });
      if t.obs_on then begin
        Obs.Metrics.incr t.c_splits_granted;
        (* the span covers the paper's five-message split sequence: it
           opens at the grant and closes on Split_ok / Split_failed *)
        let sp =
          Obs.Span.enter (spanr t) ~tid:Obs.Span.master_tid ~cat:"protocol"
            ~args:[ ("requester", Obs.Json.Int requester); ("partner", Obs.Json.Int partner) ]
            "split"
        in
        Hashtbl.replace t.split_spans requester sp
      end;
      send t ~dst:requester (Protocol.Split_partner { partner });
      true

let release_partner t requester =
  match List.assoc_opt requester t.pending_partner with
  | None -> None
  | Some partner ->
      t.pending_partner <- List.remove_assoc requester t.pending_partner;
      Some partner

(* A client that reported its subproblem finished is idle again: release
   everything the master held on its behalf. *)
let free_finisher t src =
  note_host_success t src;
  (match Pool.find_opt t.pool src with
  | Some h when h.rstate = Busy ->
      h.rstate <- Idle;
      h.pid <- None
  | _ -> ());
  (match release_partner t src with
  | Some partner -> unreserve t partner
  | None -> ());
  Checkpoint.drop t.checkpoints ~client:src;
  t.backlog <- List.filter (fun (c, _) -> c <> src) t.backlog

(* Every problem the master sends is journaled as an assignment first: the
   WAL records the pid, the addressee and the guiding-path lineage, so a
   replacement master can re-derive the branch if everything else is
   lost. *)
let send_problem t ~dst pid sp =
  (match health t with Some hm -> Health.note_assigned hm ~host:dst | None -> ());
  (host t dst).rstate <- Reserved;
  Hashtbl.replace t.in_flight dst (pid, sp);
  Hashtbl.replace t.lineage pid sp.Subproblem.path;
  Hashtbl.replace t.last_holder pid dst;
  jlog t (Journal.Assigned { pid; dst; path = sp.Subproblem.path });
  minstant t ~cat:"master"
    ~args:
      [
        ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
        ("dst", Obs.Json.Int dst);
        ("bytes", Obs.Json.Int (Subproblem.bytes sp));
      ]
    "assign";
  send t ~dst (Protocol.Problem { pid; sp; sent_at = Grid.Sim.now t.sim })

(* Re-home a subproblem that lost its host (checkpoint recovery or a
   returned orphan).  The pid is already in [live_problems]; if no idle
   host is available the work parks in [pending_recovery] — never lost,
   so the run cannot answer UNSAT while it waits. *)
let assign_recovered t ~failed ~from_checkpoint pid sp =
  match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
  | Some cand ->
      let dst = cand.Scheduler.resource.R.id in
      if from_checkpoint then begin
        log t (Events.Recovered_from_checkpoint { client = failed; onto = dst });
        if t.obs_on then Obs.Metrics.incr t.c_recov_checkpoint
      end;
      send_problem t ~dst pid sp
  | None ->
      log t (Events.Recovery_requeued { client = failed });
      if t.obs_on then Obs.Metrics.incr t.c_recov_requeued;
      Queue.add (pid, sp, failed, from_checkpoint) t.pending_recovery

let rec serve_recovery t =
  if (not t.finished) && not (Queue.is_empty t.pending_recovery) then
    match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
    | None -> ()
    | Some cand ->
        let dst = cand.Scheduler.resource.R.id in
        let pid, sp, failed, from_checkpoint = Queue.pop t.pending_recovery in
        if from_checkpoint then begin
          log t (Events.Recovered_from_checkpoint { client = failed; onto = dst });
          if t.obs_on then Obs.Metrics.incr t.c_recov_checkpoint
        end;
        send_problem t ~dst pid sp;
        serve_recovery t

(* The last line of defence: a subproblem whose holder and checkpoint are
   both gone is reconstructed from the original CNF and its journaled
   guiding-path lineage (Figure 2: the lineage fully determines the
   branch), then requeued.  No component loss ends the run [Unknown]. *)
let rederive_lost t ~holder pid =
  match Hashtbl.find_opt t.lineage pid with
  | Some path ->
      let sp = Subproblem.of_lineage t.cnf path in
      log t (Events.Rederived_from_lineage { holder; depth = List.length path });
      if t.obs_on then Obs.Metrics.incr t.c_recov_rederived;
      minstant t ~cat:"master"
        ~args:
          [
            ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
            ("depth", Obs.Json.Int (List.length path));
          ]
        "rederive";
      Hashtbl.replace t.live_problems pid ();
      let failed = match holder with Some h -> h | None -> master_id in
      assign_recovered t ~failed ~from_checkpoint:false pid sp
  | None ->
      (* unreachable by construction: every assignment, split and adoption
         journals its lineage before any message leaves the master *)
      terminate t (Unknown "lost subproblem with no recorded lineage") "unrecoverable loss"

(* Serve the backlog with a freshly idle resource: the paper splits the
   client that has been running the same subproblem the longest. *)
let rec serve_backlog t =
  if (not t.finished) && t.backlog <> [] then begin
    let live =
      List.filter
        (fun (c, _) ->
          match Pool.find_opt t.pool c with
          | Some h -> h.rstate = Busy && Client.is_alive h.client
          | None -> false)
        t.backlog
    in
    t.backlog <- live;
    (* hedged requesters stay backlogged but are not eligible until their
       hedge resolves (see [on_split_request]) *)
    let eligible =
      List.filter
        (fun (c, _) ->
          match Pool.find_opt t.pool c with
          | Some { pid = Some p; _ } -> not (Hashtbl.mem t.hedged p)
          | Some { pid = None; _ } | None -> true)
        live
    in
    match Scheduler.pick_backlog eligible with
    | None -> ()
    | Some requester ->
        if grant_split t requester then begin
          t.backlog <- List.filter (fun (c, _) -> c <> requester) t.backlog;
          serve_backlog t
        end
  end

(* Migration (Section 3.4): with an empty backlog, move the subproblem of the
   weakest busy host onto a much stronger idle host. *)
let consider_migration t =
  if (not t.finished) && t.cfg.migration_enabled && t.backlog = [] && t.migrating = [] then begin
    match (Pool.weakest_busy t.pool, Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t)) with
    | Some src, Some cand ->
        let dst = cand.Scheduler.resource.R.id in
        if
          dst <> src.resource.R.id
          && (match src.pid with
             | Some p -> not (Hashtbl.mem t.hedged p)
             | None -> true)
          && Scheduler.should_migrate ~enabled:true ~busy_rank:(Pool.rank t.pool src)
               ~idle_rank:(Scheduler.rank cand)
        then begin
          (host t dst).rstate <- Reserved;
          t.migrating <- (src.resource.R.id, dst) :: t.migrating;
          if t.obs_on then Obs.Metrics.incr t.c_migrations;
          minstant t ~cat:"master"
            ~args:[ ("src", Obs.Json.Int src.resource.R.id); ("dst", Obs.Json.Int dst) ]
            "migrate";
          send t ~dst:src.resource.R.id (Protocol.Migrate_to { target = dst })
        end
    | _ -> ()
  end

let dispatch t =
  if not (t.down || t.resyncing) then begin
    serve_recovery t;
    serve_backlog t;
    consider_migration t
  end

(* Refute [pid]: drop it everywhere, remember the tombstone, and settle the
   verdict if the pool drained.  Removal is idempotent by pid: a duplicated
   or re-homed copy of the same subproblem cannot drive the live count
   negative.  UNSAT also waits out pending split pairs — a granted split
   whose Split_ok has not arrived yet may be about to register a new live
   branch — and the resync window: a split granted just before a master
   crash may exist only on the partner, whose Resync is the sole record of
   it. *)
let refute_pid t pid =
  if not (Hashtbl.mem t.refuted_pids pid) then begin
    Hashtbl.replace t.refuted_pids pid ();
    jlog t (Journal.Refuted { pid })
  end;
  Hashtbl.remove t.live_problems pid;
  Hashtbl.remove t.lineage pid;
  Hashtbl.remove t.last_holder pid;
  (* a certification claim parked for this pid is moot now; its reporter
     has been sitting idle since it sent the claim *)
  (match Hashtbl.find_opt t.pending_cert pid with
  | Some (client, _) ->
      Hashtbl.remove t.pending_cert pid;
      free_finisher t client
  | None -> ());
  (* a hedged pid just resolved: the first copy to report won.  Fence the
     losing copies — cancel live holders (the Cancel rides the reliable
     channel) and drop the still-in-flight backup — so the pool returns
     whole and no loser's late answer is ever double-counted. *)
  if Hashtbl.mem t.hedged pid then begin
    Hashtbl.remove t.hedged pid;
    Pool.iter
      (fun id h ->
        if h.rstate = Busy && h.pid = Some pid then begin
          log t (Events.Hedge_cancelled { pid; loser = id });
          send t ~dst:id (Protocol.Cancel { pid });
          h.rstate <- Idle;
          h.pid <- None;
          Checkpoint.drop t.checkpoints ~client:id;
          t.backlog <- List.filter (fun (c, _) -> c <> id) t.backlog
        end)
      t.pool;
    let stale =
      Hashtbl.fold (fun dst (p, _) acc -> if p = pid then dst :: acc else acc) t.in_flight []
    in
    List.iter
      (fun dst ->
        log t (Events.Hedge_cancelled { pid; loser = dst });
        Hashtbl.remove t.in_flight dst;
        unreserve t dst;
        send t ~dst (Protocol.Cancel { pid }))
      stale
  end;
  if
    Hashtbl.length t.live_problems = 0
    && Queue.is_empty t.pending_recovery
    && t.pending_partner = []
    && Hashtbl.length t.pending_cert = 0
    && (not t.resyncing) && t.problem_assigned
  then terminate t Unsat "all subproblems refuted: unsatisfiable"
  else dispatch t

(* A registration that raced behind the holder's own Finished_unsat (the
   refutation was journaled first): undo the registration we just recorded
   and free the reporting host instead of believing it busy forever. *)
let absorb_if_refuted t ~holder pid =
  if Hashtbl.mem t.refuted_pids pid then begin
    (match Pool.find_opt t.pool holder with
    | Some h when h.pid = Some pid ->
        if h.rstate = Busy then h.rstate <- Idle;
        h.pid <- None;
        (* hedge mode: the loser's copy outraced its own cancellation
           (registration reordered behind the refutation); tell it to
           stop instead of letting it grind the dead branch to the end *)
        if t.cfg.Config.hedge then send t ~dst:holder (Protocol.Cancel { pid })
    | _ -> ());
    refute_pid t pid
  end

let close_split_span t requester args =
  if t.obs_on then
    match Hashtbl.find_opt t.split_spans requester with
    | Some sp ->
        Hashtbl.remove t.split_spans requester;
        Obs.Span.exit (spanr t) sp ~args
    | None -> ()

(* ---------- client death (also the teeth behind quarantine) ---------- *)

let pid_homed t pid =
  Pool.fold (fun _ h acc -> acc || (h.rstate = Busy && h.pid = Some pid)) t.pool false
  || Hashtbl.fold (fun _ (p, _) acc -> acc || p = pid) t.in_flight false
  || Queue.fold (fun acc (p, _, _, _) -> acc || p = pid) false t.pending_recovery

(* Write [id] off and recover whatever it was responsible for.  Shared by
   the failure detector (lease expiry), direct test injection, and the
   certification quarantine path. *)
let declare_dead t id =
  match Pool.find_opt t.pool id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead then begin
        let prev = h.rstate in
        let prev_pid = h.pid in
        h.rstate <- Dead;
        h.pid <- None;
        jlog t (Journal.Died { client = id });
        note_incident t id `Crash;
        if t.obs_on then Obs.Metrics.incr t.c_deaths;
        minstant t ~cat:"master" ~args:[ ("client", Obs.Json.Int id) ] "client.dead";
        close_split_span t id [ ("outcome", Obs.Json.String "requester-died") ];
        t.backlog <- List.filter (fun (c, _) -> c <> id) t.backlog;
        (* a split requester died while its partner sat reserved *)
        (match release_partner t id with
        | Some partner -> unreserve t partner
        | None -> ());
        (* if [id] was someone's reserved partner, the donor's own
           retry/orphan path brings the branch back; just forget the pair *)
        t.pending_partner <- List.filter (fun (_, p) -> p <> id) t.pending_partner;
        (match List.assoc_opt id t.migrating with
        | Some target ->
            t.migrating <- List.remove_assoc id t.migrating;
            unreserve t target
        | None -> ());
        t.migrating <- List.filter (fun (_, d) -> d <> id) t.migrating;
        if not t.finished then begin
          match Hashtbl.find_opt t.in_flight id with
          | Some (pid, sp) ->
              (* we still hold the very subproblem we sent it *)
              Hashtbl.remove t.in_flight id;
              if Hashtbl.mem t.hedged pid && pid_homed t pid then begin
                (* the dead host was the hedge backup; the primary still
                   holds the branch — the hedge simply collapses *)
                Hashtbl.remove t.hedged pid;
                log t (Events.Hedge_cancelled { pid; loser = id })
              end
              else assign_recovered t ~failed:id ~from_checkpoint:false pid sp
          | None -> (
              if prev = Busy then
                match prev_pid with
                | None -> ()
                | Some pid when Hashtbl.mem t.hedged pid && pid_homed t pid ->
                    (* one copy of a hedged pid died; the survivor keeps
                       the branch homed, so nothing needs re-deriving *)
                    Hashtbl.remove t.hedged pid;
                    log t (Events.Hedge_cancelled { pid; loser = id })
                | Some pid -> (
                    (* a certified run never restores a dead client's
                       checkpoint: the snapshot carries facts and clauses
                       the next holder could not re-derive in its own
                       proof fragment, so the branch is rebuilt from the
                       original CNF and its journaled lineage instead *)
                    let restored =
                      if t.cfg.Config.certify then None
                      else Checkpoint.restore t.checkpoints ~client:id
                    in
                    match restored with
                    | Some sp ->
                        Checkpoint.drop t.checkpoints ~client:id;
                        assign_recovered t ~failed:id ~from_checkpoint:true pid sp
                    | None ->
                        (* no checkpoint: reconstruct the branch from its
                           journaled lineage instead of aborting the run *)
                        rederive_lost t ~holder:(Some id) pid))
        end
      end

let kill_client t id =
  match Pool.find_opt t.pool id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead then begin
        Client.kill h.client;
        log t (Events.Client_killed id);
        declare_dead t id
      end

(* ---------- UNSAT certification ---------- *)

(* Certify a client's UNSAT claim: its DRUP fragment must RUP-check
   against the original formula under the branch's recorded guiding path
   (never under anything the client itself reported at finish time).  The
   fragment is untrusted input: parse failures and out-of-range literals
   are certification failures, not exceptions. *)
let check_fragment t ~path proof =
  match proof with
  | None -> Error "no proof fragment attached"
  | Some text -> (
      match Sat.Drup.of_string text with
      | exception Failure msg -> Error msg
      | fragment -> (
          match Sat.Drup.check_under t.cnf ~assumptions:path fragment with
          | Ok () -> Ok (List.length fragment)
          | Error reason -> Error reason))

(* A client whose answer failed verification is written off entirely: its
   solver state, checkpoint and future messages are all suspect.  Its
   branch is re-derived from the original CNF and the journaled lineage
   (both trusted) and re-solved elsewhere. *)
let quarantine t ~client ~pid ~reason =
  log t (Events.Certification_failed { pid; client; reason });
  log t (Events.Client_quarantined { client });
  minstant t ~cat:"master"
    ~args:[ ("client", Obs.Json.Int client); ("reason", Obs.Json.String reason) ]
    "quarantine";
  note_incident t client `Quarantine;
  kill_client t client;
  (* [kill_client] re-homed whatever the master believed [client] held;
     if the disputed pid was not that (the claim raced ahead of its
     registration), re-home it explicitly *)
  if (not t.finished) && Hashtbl.mem t.live_problems pid && not (pid_homed t pid) then
    rederive_lost t ~holder:(Some client) pid

let settle_certification t ~src pid ~path proof =
  match check_fragment t ~path proof with
  | Ok steps ->
      log t (Events.Unsat_fragment_certified { pid; client = src; steps });
      minstant t ~cat:"master"
        ~args:
          [
            ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
            ("client", Obs.Json.Int src);
            ("steps", Obs.Json.Int steps);
          ]
        "certify.ok";
      free_finisher t src;
      refute_pid t pid
  | Error reason -> quarantine t ~client:src ~pid ~reason

(* A registration just recorded the lineage of [pid]; settle any UNSAT
   claim that was parked waiting for it. *)
let settle_pending_cert t pid =
  if t.cfg.Config.certify then
    match Hashtbl.find_opt t.pending_cert pid with
    | None -> ()
    | Some (client, proof) -> (
        Hashtbl.remove t.pending_cert pid;
        match Hashtbl.find_opt t.lineage pid with
        | Some path -> settle_certification t ~src:client pid ~path proof
        | None -> ())

(* ---------- message handling ---------- *)

let assign_initial_problem t dst =
  let sp = Subproblem.initial t.cnf in
  t.problem_assigned <- true;
  Hashtbl.replace t.live_problems initial_pid ();
  send_problem t ~dst initial_pid sp

let on_register t src =
  let h = host t src in
  h.rstate <- Idle;
  jlog t (Journal.Registered { client = src });
  log t (Events.Client_started src);
  if not t.problem_assigned then assign_initial_problem t src else dispatch t

let on_problem_received t src ~pid ~from ~bytes ~path =
  let h = host t src in
  Hashtbl.remove t.in_flight src;
  (* a migration target becoming busy frees its source *)
  (match List.find_opt (fun (_, dst) -> dst = src) t.migrating with
  | Some (s, _) ->
      t.migrating <- List.filter (fun (_, dst) -> dst <> src) t.migrating;
      let sh = host t s in
      if sh.rstate = Busy then begin
        sh.rstate <- Idle;
        sh.pid <- None
      end;
      log t (Events.Migration { src = s; dst = src; bytes })
  | None -> ());
  Hashtbl.replace t.live_problems pid ();
  (* the receiver reports its lineage, closing the gap where a split's
     [Split_ok] has not arrived yet: the branch is re-derivable from the
     journal the moment anyone confirms holding it.  In certify mode a
     lineage the master already recorded is authoritative — a client
     report never overwrites the path its fragment will be checked
     under. *)
  if (not t.cfg.Config.certify) || not (Hashtbl.mem t.lineage pid) then
    Hashtbl.replace t.lineage pid path;
  Hashtbl.replace t.last_holder pid src;
  jlog t (Journal.Started { pid; client = src });
  jlog t (Journal.Adopted { pid; client = src; path });
  h.rstate <- Busy;
  h.pid <- Some pid;
  h.busy_since <- Grid.Sim.now t.sim;
  log t (Events.Problem_assigned { src = from; dst = src; bytes; depth = List.length path });
  update_max t;
  settle_pending_cert t pid;
  absorb_if_refuted t ~holder:src pid;
  dispatch t

let on_split_request t src _reason =
  (* the requesting client already logged the Split_requested event.  A
     hedged requester is never granted: a split advances the donor's
     lineage, and the other copy of the branch would then overlap both
     children — the request parks in the backlog until the hedge
     resolves. *)
  let hedged_requester =
    match (host t src).pid with Some p -> Hashtbl.mem t.hedged p | None -> false
  in
  if hedged_requester || not (grant_split t src) then begin
    let h = host t src in
    t.backlog <- t.backlog @ [ (src, h.busy_since) ];
    if t.obs_on then Obs.Metrics.incr t.c_splits_denied;
    log t (Events.Split_denied { client = src })
  end

(* Certify mode: a split is only accepted if the two sides structurally
   cover the donor's old branch.  The child's path must be the donor's
   old path plus the negation of the committed first decision — i.e. its
   last element negated appears in the donor's reported path, and every
   other element does too (the donor's path may additionally carry the
   decision's level-1 propagations, which unit propagation re-derives
   during checking, so they are ignored rather than trusted). *)
let split_covers ~donor_path ~path =
  match List.rev path with
  | [] -> false
  | last :: rev_pre ->
      List.mem (Sat.Types.negate last) donor_path
      && List.for_all (fun l -> List.mem l donor_path) rev_pre

let on_split_ok t src ~pid ~dst ~bytes ~path ~donor_path =
  t.splits <- t.splits + 1;
  if t.obs_on then Obs.Metrics.incr t.c_splits_completed;
  close_split_span t src
    [
      ("outcome", Obs.Json.String "ok");
      ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
      ("dst", Obs.Json.Int dst);
      ("bytes", Obs.Json.Int bytes);
    ];
  t.pending_partner <- List.remove_assoc src t.pending_partner;
  let donor_pid = (host t src).pid in
  let verdict =
    if not t.cfg.Config.certify then `Accept donor_path
    else
      match donor_pid with
      | None ->
          (* the donor's own branch concluded before this Split_ok was
             processed; in certify mode that conclusion was certified
             under the pre-split path, which covers both children — the
             new branch is redundant *)
          `Covered
      | Some _ when split_covers ~donor_path ~path -> (
          (* record the donor's new branch as old-path + committed
             decision, derived from the child's path rather than taken
             from the donor's report *)
          match List.rev path with
          | last :: rev_pre -> `Accept (List.rev rev_pre @ [ Sat.Types.negate last ])
          | [] -> assert false)
      | Some _ -> `Reject
  in
  match verdict with
  | `Accept donor_lineage ->
      Hashtbl.replace t.live_problems pid ();
      Hashtbl.replace t.lineage pid path;
      Hashtbl.replace t.last_holder pid dst;
      (* the donor committed its first decision level into its own root, so
         its lineage grew too: journal both sides of the split *)
      (match donor_pid with
      | Some donor_pid ->
          Hashtbl.replace t.lineage donor_pid donor_lineage;
          jlog t (Journal.Split { donor = src; donor_pid; donor_path = donor_lineage; pid; dst; path })
      | None ->
          (* reordered delivery: the donor's own branch already concluded;
             only the new branch needs journaling *)
          jlog t (Journal.Assigned { pid; dst; path }));
      log t (Events.Split_completed { src; dst; bytes });
      settle_pending_cert t pid;
      absorb_if_refuted t ~holder:dst pid
  | `Covered ->
      log t (Events.Split_completed { src; dst; bytes });
      refute_pid t pid
  | `Reject ->
      (* the two sides do not cover the branch being split: accepting
         them could certify UNSAT while search space silently vanishes.
         Write the child out of the cover (its holder is freed when it
         reports) and quarantine the donor — its pre-split branch, whose
         lineage was deliberately not advanced, is re-solved whole. *)
      refute_pid t pid;
      quarantine t ~client:src
        ~pid:(match donor_pid with Some p -> p | None -> pid)
        ~reason:"split paths are not complementary"

let on_split_failed t src =
  close_split_span t src [ ("outcome", Obs.Json.String "failed") ];
  (match release_partner t src with
  | Some partner -> unreserve t partner
  | None -> ());
  dispatch t

let on_shares t src clauses =
  t.share_batches <- t.share_batches + 1;
  t.shared_clauses <- t.shared_clauses + List.length clauses;
  (if t.anomaly_on then
     (* rough wire size: one word per literal plus a header per clause *)
     let bytes = List.fold_left (fun a c -> a + 8 + (8 * Array.length c)) 0 clauses in
     Obs.Anomaly.observe t.d_share_volume ~at:(Grid.Sim.now t.sim) (float_of_int bytes));
  let clause_bytes c = 16 + (8 * Array.length c) in
  let recipients = ref 0 in
  (match t.share_budget with
  | None ->
      (* no budget configured: the paper's unconditional broadcast *)
      let batch_bytes = List.fold_left (fun a c -> a + clause_bytes c) 0 clauses in
      Pool.iter
        (fun id h ->
          if id <> src && h.rstate = Busy && Client.is_alive h.client then begin
            incr recipients;
            t.share_bytes <- t.share_bytes + batch_bytes;
            if t.obs_on then Obs.Metrics.add t.c_share_bytes batch_bytes;
            send t ~dst:id (Protocol.Share_relay { origin = src; clauses })
          end)
        t.pool
  | Some budget ->
      (* HordeSat-style value ordering: the solver exports no LBD, so
         clause length is the value signal — shortest (most valuable)
         first; each recipient link admits the prefix that fits its byte
         budget for the current virtual-time window and sheds the tail.
         Ordered ascending, one refusal implies every later clause is
         refused too, so the filter below admits exactly a prefix. *)
      let ordered =
        List.stable_sort (fun a b -> compare (Array.length a) (Array.length b)) clauses
      in
      let tnow = Grid.Sim.now t.sim in
      let shed_clauses = ref 0 and shed_bytes = ref 0 and sent_bytes = ref 0 in
      Pool.iter
        (fun id h ->
          if id <> src && h.rstate = Busy && Client.is_alive h.client then begin
            let admitted =
              List.filter
                (fun c ->
                  let bytes = clause_bytes c in
                  if Flow.admit budget ~key:id ~now:tnow ~bytes then begin
                    sent_bytes := !sent_bytes + bytes;
                    true
                  end
                  else begin
                    incr shed_clauses;
                    shed_bytes := !shed_bytes + bytes;
                    false
                  end)
                ordered
            in
            if admitted <> [] then begin
              incr recipients;
              send t ~dst:id (Protocol.Share_relay { origin = src; clauses = admitted })
            end
          end)
        t.pool;
      t.share_bytes <- t.share_bytes + !sent_bytes;
      if t.obs_on then Obs.Metrics.add t.c_share_bytes !sent_bytes;
      if !shed_clauses > 0 then begin
        t.shares_shed <- t.shares_shed + !shed_clauses;
        t.last_share_shed <- tnow;
        log t (Events.Shares_shed { origin = src; clauses = !shed_clauses; bytes = !shed_bytes });
        if t.obs_on then Obs.Metrics.add t.c_shares_shed !shed_clauses
      end);
  jlog t (Journal.Shared { clauses = List.length clauses });
  if t.obs_on then begin
    Obs.Metrics.add t.c_shares_relayed (List.length clauses);
    Obs.Metrics.observe t.h_share_fanout (float_of_int !recipients);
    minstant t ~cat:"protocol"
      ~args:
        [
          ("origin", Obs.Json.Int src);
          ("clauses", Obs.Json.Int (List.length clauses));
          ("recipients", Obs.Json.Int !recipients);
        ]
      "share.broadcast"
  end;
  log t (Events.Shares_broadcast { origin = src; count = List.length clauses; recipients = !recipients })

let on_finished_unsat t src pid proof =
  log t (Events.Client_finished_unsat src);
  if not t.cfg.Config.certify then begin
    free_finisher t src;
    (* tombstone even a pid we have no record of: under loss and retries a
       finish can overtake the Split_ok / Problem_received that would have
       registered it, and the journaled tombstone makes the late
       registration harmless across a master crash too *)
    refute_pid t pid
  end
  else if Hashtbl.mem t.refuted_pids pid then begin
    (* a duplicate of a claim that was already settled *)
    free_finisher t src;
    refute_pid t pid
  end
  else
    match Hashtbl.find_opt t.lineage pid with
    | Some path -> settle_certification t ~src pid ~path proof
    | None ->
        (* the claim overtook the registration that records this branch's
           guiding path; park it (the reporter stays marked busy) until
           the lineage arrives and the fragment can be checked *)
        Hashtbl.replace t.pending_cert pid (src, proof)

let on_found_model t src model =
  log t (Events.Client_found_model src);
  let ok = Sat.Model.satisfies t.cnf model in
  log t (Events.Model_verified ok);
  if ok then terminate t (Sat model) "model found and verified"
  else if t.cfg.Config.certify then
    (* a falsified SAT claim: write the claimant off and keep solving —
       its branch (if it held one) is re-derived and re-solved elsewhere *)
    match (host t src).pid with
    | Some pid -> quarantine t ~client:src ~pid ~reason:"model does not satisfy the formula"
    | None ->
        log t (Events.Client_quarantined { client = src });
        kill_client t src
  else begin
    (* never expected outside certify mode: treat as a fatal protocol error *)
    terminate t (Unknown "model verification failed") "model verification failed"
  end

(* A donor exhausted the retries of a peer-to-peer Problem handoff and
   returned the branch.  Undo whatever reservation backed the handoff and
   re-home the subproblem; a late copy reaching the original addressee
   only duplicates work, which the pid accounting absorbs. *)
let on_orphaned t src pid sp =
  let h = host t src in
  (match release_partner t src with
  | Some partner -> unreserve t partner
  | None -> ());
  (match List.assoc_opt src t.migrating with
  | Some target ->
      t.migrating <- List.remove_assoc src t.migrating;
      unreserve t target
  | None -> ());
  (* a migration source already dropped its solver state; it is idle now *)
  if h.pid = Some pid then begin
    if h.rstate = Busy then h.rstate <- Idle;
    h.pid <- None
  end;
  if Hashtbl.mem t.refuted_pids pid then dispatch t  (* already refuted elsewhere *)
  else begin
    Hashtbl.replace t.live_problems pid ();
    if (not t.cfg.Config.certify) || not (Hashtbl.mem t.lineage pid) then
      Hashtbl.replace t.lineage pid sp.Subproblem.path;
    assign_recovered t ~failed:src ~from_checkpoint:false pid sp
  end

(* Reconciliation after a master restart: each surviving client reports
   what it is doing.  Busy reports are adopted (journaled, so the next
   crash can replay them too); idle reports release any stale Busy/
   Reserved marking the replayed journal implied. *)
let on_resync t src ~pid ~path ~busy_since =
  let h = host t src in
  log t (Events.Client_resynced { client = src; busy = pid <> None });
  (* any busy client proves the search started, even when this master's
     journal (a standby's shadow is only the shipped prefix) never saw
     the Assigned record — without this the final refutation could never
     satisfy the problem_assigned guard on the UNSAT verdict *)
  if pid <> None then t.problem_assigned <- true;
  (match pid with
  | Some p when Hashtbl.mem t.refuted_pids p ->
      (* the client is still solving a branch another copy of which was
         already refuted — harmless duplicate work; its own finish will
         free it, but the dead pid must not be re-adopted *)
      h.rstate <- Busy;
      h.pid <- Some p;
      h.busy_since <- busy_since;
      update_max t
  | Some p ->
      h.rstate <- Busy;
      h.pid <- Some p;
      h.busy_since <- busy_since;
      Hashtbl.replace t.live_problems p ();
      (* certify mode: the replayed journal's lineage (what the fragment
         will be checked under) outranks the client's own report *)
      if (not t.cfg.Config.certify) || not (Hashtbl.mem t.lineage p) then
        Hashtbl.replace t.lineage p path;
      Hashtbl.replace t.last_holder p src;
      jlog t (Journal.Adopted { pid = p; client = src; path = Hashtbl.find t.lineage p });
      update_max t;
      settle_pending_cert t p
  | None ->
      (match h.rstate with
      (* Launching: this master's journal never saw the client register
         (a standby's shadow can predate it), but answering a resync
         proves it did — it is alive and idle, not still booting *)
      | Busy | Reserved | Launching -> h.rstate <- Idle
      | Idle | Dead -> ());
      h.pid <- None);
  dispatch t

let handle_payload t ~src msg =
  match msg with
  | Protocol.Register -> on_register t src
  | Protocol.Problem_received { pid; from; bytes; path } ->
      on_problem_received t src ~pid ~from ~bytes ~path
  | Protocol.Split_request reason -> on_split_request t src reason
  | Protocol.Split_ok { pid; dst; bytes; path; donor_path } ->
      on_split_ok t src ~pid ~dst ~bytes ~path ~donor_path
  | Protocol.Split_failed -> on_split_failed t src
  | Protocol.Shares { clauses } -> on_shares t src clauses
  | Protocol.Finished_unsat { pid; proof } -> on_finished_unsat t src pid proof
  | Protocol.Found_model m -> on_found_model t src m
  | Protocol.Orphaned { pid; sp } -> on_orphaned t src pid sp
  | Protocol.Resync { pid; path; busy_since } -> on_resync t src ~pid ~path ~busy_since
  | Protocol.Heartbeat { decisions } -> (
      (* the beat already refreshed the failure-detector lease in
         [handle]; its payload feeds the health model's gap-jitter and
         progress-rate signals *)
      (if t.anomaly_on then begin
         let now = Grid.Sim.now t.sim in
         (match Hashtbl.find_opt t.last_hb src with
         | Some prev -> Obs.Anomaly.observe t.d_hb_gap ~at:now (now -. prev)
         | None -> ());
         Hashtbl.replace t.last_hb src now
       end);
      match health t with
      | Some hm -> Health.note_heartbeat hm ~host:src ~now:(Grid.Sim.now t.sim) ~decisions
      | None -> ())
  | Protocol.Problem _ | Protocol.Split_partner _ | Protocol.Share_relay _
  | Protocol.Migrate_to _ | Protocol.Cancel _ | Protocol.Resync_request | Protocol.Stop ->
      (* client-bound messages; the master should never receive them *)
      ()
  | Protocol.Corrupt_payload ->
      (* garbled content that slipped through because integrity framing is
         off: indistinguishable from a lost message *)
      ()
  | Protocol.Ship _ | Protocol.Ship_ack _ | Protocol.Epoch_notice ->
      (* replication-link traffic is dispatched in [handle] before the
         pool lookup; a pool host never speaks it *)
      ()
  | Protocol.Ack _ | Protocol.Nack _ | Protocol.Reliable _ | Protocol.Framed _ ->
      (* unwrapped by [handle]; never nested *) ()

(* A message from a host we already declared dead.  Acks still settle our
   own retries; a model is always worth verifying; a heartbeat is proof of
   life, i.e. a false suspicion.  Everything else is fenced: the host's
   work was re-homed, so letting it talk again would double-count. *)
let handle_zombie t ~src h msg =
  let fence () =
    if not h.fenced then begin
      h.fenced <- true;
      (match msg with
      | Protocol.Heartbeat _ -> log t (Events.False_suspicion { client = src })
      | _ -> ());
      send_raw t ~dst:src Protocol.Stop
    end
  in
  match msg with
  | Protocol.Ack { mid } -> Reliable.handle_ack (reliable t) ~mid
  | Protocol.Reliable { mid; payload } -> (
      (* ack even zombies, to quiet their retry timers *)
      send_raw t ~dst:src (Protocol.Ack { mid });
      fence ();
      match payload with
      | Protocol.Found_model m when Reliable.admit (reliable t) ~src ~mid -> on_found_model t src m
      | _ -> ())
  | Protocol.Found_model m ->
      fence ();
      on_found_model t src m
  | _ -> fence ()

(* Replication-link traffic: the standby is not a pool host, so its raw
   acks and ship acks are dispatched before the pool lookup.  A ship ack
   is where the primary learns the replication lag. *)
let handle_standby t msg =
  match Protocol.verify msg with
  | `Corrupt _ -> log t (Events.Corrupt_message_detected { receiver = t.active_id; nacked = false })
  | `Ok msg -> (
      match msg with
      | Protocol.Ack { mid } -> Reliable.handle_ack (reliable t) ~mid
      | Protocol.Nack { mid } -> Reliable.handle_nack (reliable t) ~mid
      | Protocol.Ship_ack { applied; _ } ->
          t.standby_applied <- max t.standby_applied applied;
          if t.obs_on then
            Obs.Metrics.set t.g_repl_lag
              (float_of_int (max 0 (Journal.appended t.journal - t.standby_applied)))
      | _ -> ())

let handle t ~src msg =
  if (not t.finished) && not t.down then begin
    (* The epoch rides in the frame header (like a reliable mid, it is
       readable even when the payload digest fails), so fencing happens
       before anything else.  A frame from a newer epoch means another
       master has been promoted past this one: stand down for good.  A
       frame from an older epoch is a superseded sender: refuse it and
       tell it about the succession.  Non-standby runs frame everything
       at epoch 0 and never take either branch. *)
    let frame_epoch = Protocol.epoch_of msg in
    if frame_epoch > t.epoch then begin
      log t (Events.Stale_primary_fenced { epoch = frame_epoch });
      t.down <- true;
      t.resyncing <- false;
      Reliable.stop (reliable t);
      Grid.Everyware.unregister t.bus ~id:t.active_id
    end
    else if frame_epoch < t.epoch then begin
      log t
        (Events.Stale_epoch_rejected
           { receiver = t.active_id; src; epoch = frame_epoch; current = t.epoch });
      send_raw t ~dst:src Protocol.Epoch_notice
    end
    else if src = Replica.standby_id then handle_standby t msg
    else
      match Pool.find_opt t.pool src with
      | None -> ()
      | Some h -> (
        match Protocol.verify msg with
        | `Corrupt payload ->
            (* never act on rotten bytes, dead sender or not.  A live
               reliable envelope whose mid survived in the frame header is
               NACKed so the sender retransmits immediately instead of
               waiting out its backoff timer. *)
            if h.rstate <> Dead then (
              note_incident t src `Corruption;
              match payload with
              | Protocol.Reliable { mid; _ } ->
                  log t (Events.Corrupt_message_detected { receiver = master_id; nacked = true });
                  send_raw t ~dst:src (Protocol.Nack { mid })
              | _ ->
                  log t (Events.Corrupt_message_detected { receiver = master_id; nacked = false }))
        | `Ok msg ->
            if h.rstate = Dead then handle_zombie t ~src h msg
            else begin
              h.last_heard <- Grid.Sim.now t.sim;
              match msg with
              | Protocol.Reliable { mid; payload } ->
                  send_raw t ~dst:src (Protocol.Ack { mid });
                  if Reliable.admit (reliable t) ~src ~mid then handle_payload t ~src payload
              | Protocol.Ack { mid } -> Reliable.handle_ack (reliable t) ~mid
              | Protocol.Nack { mid } -> Reliable.handle_nack (reliable t) ~mid
              | _ -> handle_payload t ~src msg
            end)
  end

(* ---------- failure handling ---------- *)

(* Silent fault injection: the grid layer flips the host; the master only
   finds out when the failure detector's lease expires. *)
let crash_host t id =
  match Pool.find_opt t.pool id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead && Client.is_alive h.client then begin
        log t (Events.Host_crashed id);
        Client.kill h.client
      end

let hang_host t id =
  match Pool.find_opt t.pool id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead && Client.is_alive h.client && not (Client.is_hung h.client) then begin
        log t (Events.Host_hung id);
        Client.hang h.client
      end

(* Silent fault injection: the host's compute slices shrink by [factor]
   (1.0 restores full speed) while its heartbeats, acks and protocol
   traffic stay perfectly on time — a straggler, invisible to the failure
   detector, that only the health model's progress-rate signal and the
   hedging comparison against the fleet's duration p99 can catch. *)
let slow_host t id factor =
  match Pool.find_opt t.pool id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead && Client.is_alive h.client && Client.slow_factor h.client <> factor
      then begin
        log t (Events.Host_slowed { host = id; factor });
        Client.set_slow_factor h.client factor
      end

(* At-rest fault injection: rot the newest [journal_records] seals of the
   write-ahead journal and (optionally) every checkpoint snapshot.  The
   damage is silent; it surfaces when a replay scrubs the journal tail or
   a recovery discards the snapshot and falls back to lineage. *)
let corrupt_storage t ~journal_records ~checkpoints =
  log t (Events.Storage_corrupted { journal_records; checkpoints });
  if journal_records > 0 then Journal.corrupt_tail t.journal ~n:journal_records;
  if checkpoints then Checkpoint.corrupt_all t.checkpoints

(* Test hook: deliver a forged payload to the master as if [src] had sent
   it (bypassing the wire, so integrity framing cannot catch it) — for
   exercising the certification and quarantine paths against answers that
   are well-formed but wrong. *)
let inject t ~src msg = handle_payload t ~src msg

(* ---------- master crash and failover ---------- *)

(* The master process dies: its endpoint disappears from the bus and every
   piece of volatile state — reservations, in-flight transfers, the split
   backlog, the recovery queue — is lost.  Only the journal and the
   checkpoint store (both stable storage) survive.  Clients notice via
   retry exhaustion and keep solving autonomously. *)
let drop_volatile t =
  Hashtbl.reset t.in_flight;
  Hashtbl.reset t.live_problems;
  Hashtbl.reset t.lineage;
  Hashtbl.reset t.last_holder;
  Hashtbl.reset t.refuted_pids;
  Hashtbl.reset t.hedged;
  t.pending_partner <- [];
  t.migrating <- [];
  t.backlog <- [];
  Queue.clear t.pending_recovery;
  Hashtbl.reset t.pending_cert

let crash_master t =
  if (not t.finished) && not t.down then begin
    log t Events.Master_crashed;
    if t.obs_on then begin
      Hashtbl.reset t.split_spans;
      t.outage_span <-
        Obs.Span.enter (spanr t) ~tid:Obs.Span.master_tid ~cat:"master" "master.outage"
    end;
    t.down <- true;
    t.resyncing <- false;
    t.outage_started <- Some (Grid.Sim.now t.sim);
    Reliable.stop (reliable t);
    Grid.Everyware.unregister t.bus ~id:t.active_id;
    drop_volatile t
  end

(* Reconciliation closes: any journaled live subproblem that no surviving
   client adopted and no in-flight transfer covers is an orphan.  Prefer
   its last holder's checkpoint; otherwise re-derive it from the original
   CNF and its journaled lineage.  Either way it is requeued, never
   dropped. *)
let reconcile t =
  if (not t.finished) && (not t.down) && t.resyncing then begin
    t.resyncing <- false;
    if t.obs_on && t.outage_span <> Obs.Span.none then begin
      Obs.Span.exit (spanr t) t.outage_span;
      t.outage_span <- Obs.Span.none
    end;
    (match t.outage_started with
    | Some t0 ->
        t.outage_started <- None;
        if t.obs_on then Obs.Metrics.observe t.h_failover (Grid.Sim.now t.sim -. t0)
    | None -> ());
    let held = Hashtbl.create 16 in
    Pool.iter
      (fun _ h ->
        match (h.rstate, h.pid) with Busy, Some p -> Hashtbl.replace held p () | _ -> ())
      t.pool;
    Hashtbl.iter (fun _ (p, _) -> Hashtbl.replace held p ()) t.in_flight;
    let orphans =
      Hashtbl.fold (fun p () acc -> if Hashtbl.mem held p then acc else p :: acc) t.live_problems []
      |> List.sort compare
    in
    List.iter
      (fun p ->
        if not t.finished then
          match Hashtbl.find_opt t.last_holder p with
          | Some holder
            when (not t.cfg.Config.certify)
                 && Checkpoint.restore t.checkpoints ~client:holder <> None -> (
              match Checkpoint.restore t.checkpoints ~client:holder with
              | Some sp ->
                  Checkpoint.drop t.checkpoints ~client:holder;
                  assign_recovered t ~failed:holder ~from_checkpoint:true p sp
              | None -> ())
          | holder ->
              (* no usable checkpoint — or a certified run, which never
                 restores snapshots (their facts and clauses would not be
                 re-derivable in the next holder's proof fragment) *)
              rederive_lost t ~holder p)
      orphans;
    (* a standby's shadow can predate the very first assignment (the
       primary died before any non-empty ship flush).  If nothing — no
       journal record, no busy resync — proves the search ever started,
       start it from the root now: clients already registered with the
       old primary will never send another Register to trigger it *)
    if (not t.finished) && not t.problem_assigned then (
      match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
      | Some cand -> assign_initial_problem t cand.Scheduler.resource.R.id
      | None -> ());
    (* the verdict may have become decidable during the window: results
       that arrived while UNSAT was deferred could have drained the pool *)
    if
      (not t.finished)
      && Hashtbl.length t.live_problems = 0
      && Queue.is_empty t.pending_recovery
      && t.pending_partner = []
      && Hashtbl.length t.pending_cert = 0
      && t.problem_assigned
    then terminate t Unsat "all subproblems refuted: unsatisfiable"
    else dispatch t
  end

(* The shared recovery routine of a replacement master — whether it is
   the old process restarted from stable storage or the hot standby
   promoted onto its shadow journal.  Replays [t.journal] into the
   volatile tables, resets the failure detector's leases (the old
   [last_heard] anchors died with the old process), and asks every
   not-known-dead client to resync.  Assignment stays gated until the
   resync grace elapses and [reconcile] runs. *)
let recover_from_journal t =
  let st = Journal.replay t.journal in
  Hashtbl.iter
    (fun pid path ->
      Hashtbl.replace t.live_problems pid ();
      Hashtbl.replace t.lineage pid path)
    st.Journal.live;
  Hashtbl.iter (fun pid h -> Hashtbl.replace t.last_holder pid h) st.Journal.holder;
  Hashtbl.iter (fun pid () -> Hashtbl.replace t.refuted_pids pid ()) st.Journal.refuted;
  t.problem_assigned <- st.Journal.problem_assigned;
  t.splits <- st.Journal.splits;
  t.share_batches <- st.Journal.share_batches;
  t.shared_clauses <- st.Journal.shared_clauses;
  let now = Grid.Sim.now t.sim in
  Pool.iter
    (fun id h ->
      h.pid <- None;
      h.busy_since <- 0.;
      (match Hashtbl.find_opt st.Journal.clients id with
      | Some Journal.Dead -> h.rstate <- Dead  (* journal-dead stays fenced *)
      | Some Journal.Alive -> h.rstate <- Idle  (* provisional until its Resync *)
      | None -> h.rstate <- Launching);
      if h.rstate <> Dead then h.last_heard <- now)
    t.pool;
  t.resyncing <- true;
  Pool.iter (fun id h -> if h.rstate <> Dead then send t ~dst:id Protocol.Resync_request) t.pool;
  schedule t ~delay:t.cfg.Config.resync_grace (fun () -> reconcile t)

(* A superseded primary that is still (or again) running: it holds the
   old epoch, so every frame it emits is recognisably stale.  The ghost
   keeps broadcasting resync requests the way a freshly restarted master
   would — until the first reply framed at the successor's epoch fences
   it for good.  It never acks reliable envelopes: clients that still
   address it fall into their ordinary master-outage autonomy until the
   promoted master's own resync reaches them. *)
let spawn_ghost t ~epoch =
  let fenced = ref false in
  let ghost_send ~dst msg =
    let msg = if t.cfg.Config.integrity_checks then Protocol.frame ~epoch msg else msg in
    Grid.Everyware.send t.bus ~src:master_id ~dst ~bytes:(Protocol.size msg) msg
  in
  Grid.Everyware.register t.bus ~id:master_id ~site:t.testbed.Testbed.master_site
    ~handler:(fun ~src:_ msg ->
      if (not !fenced) && Protocol.epoch_of msg > epoch then begin
        fenced := true;
        log t (Events.Stale_primary_fenced { epoch });
        Grid.Everyware.unregister t.bus ~id:master_id
      end);
  let rec haunt () =
    if (not !fenced) && not t.finished then begin
      Pool.iter
        (fun id h -> if h.rstate <> Dead then ghost_send ~dst:id Protocol.Resync_request)
        t.pool;
      (* a zombie primary also keeps shipping to what it believes is its
         standby.  The promoted master's stale-epoch rejection of that
         batch is the observable proof of succession, and the
         [Epoch_notice] it answers with is what fences the ghost. *)
      ghost_send ~dst:Replica.standby_id (Protocol.Ship { seq = 0; entries = []; state_digest = "" });
      ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.Config.heartbeat_period haunt)
    end
  in
  haunt ()

(* The standby's lease on the primary expired: promote it.  The shadow
   journal — the shipped prefix of the primary's — becomes the
   authoritative log, the epoch is bumped so the whole fleet can tell
   successor from superseded, and the standby's endpoint is re-registered
   with the full master handler.  Anything in the replication lag window
   (appended but never shipped) is re-derived through the ordinary
   resync/orphan path, exactly as after a restart.  If the old primary
   is not actually down — a partition, not a crash: dueling masters —
   its persona is handed to a stale-epoch ghost that the first
   new-epoch frame fences. *)
let promote t =
  if (not t.finished) && not t.promoted then begin
    match t.replica with
    | None -> ()
    | Some r ->
        Replica.mark_promoted r;
        let old_epoch = t.epoch in
        let dueling = not t.down in
        if t.outage_started = None then t.outage_started <- Some (Grid.Sim.now t.sim);
        if t.obs_on && t.outage_span = Obs.Span.none then
          t.outage_span <-
            Obs.Span.enter (spanr t) ~tid:Obs.Span.master_tid ~cat:"master" "master.outage";
        (* the old primary's authority dies here: whatever it still had in
           flight is cancelled (a live duelist keeps only its ghost) *)
        Reliable.stop (reliable t);
        if dueling then begin
          drop_volatile t;
          Grid.Everyware.unregister t.bus ~id:master_id
        end;
        t.epoch <- old_epoch + 1;
        t.promoted <- true;
        t.down <- false;
        t.resyncing <- false;
        t.active_id <- Replica.standby_id;
        t.journal <- Replica.journal r;
        t.ship_buffer <- [];
        Grid.Everyware.register t.bus ~id:Replica.standby_id ~site:Replica.site
          ~handler:(fun ~src msg -> handle t ~src msg);
        if dueling then spawn_ghost t ~epoch:old_epoch;
        log t (Events.Standby_promoted { epoch = t.epoch });
        minstant t ~parent:t.outage_span ~cat:"master" "master.promoted";
        recover_from_journal t
  end

(* A replacement master comes up at the old endpoint.  If the standby
   already took the run over, the restarted process is a zombie: it
   rejoins at its superseded epoch and lives only until fenced. *)
let restart_master t =
  if not t.finished then begin
    if t.promoted then begin
      if not (Grid.Everyware.registered t.bus ~id:master_id) then
        spawn_ghost t ~epoch:(t.epoch - 1)
    end
    else if t.down then begin
      t.down <- false;
      Grid.Everyware.register t.bus ~id:master_id ~site:t.testbed.Testbed.master_site
        ~handler:(fun ~src msg -> handle t ~src msg);
      log t Events.Master_restarted;
      minstant t ~parent:t.outage_span ~cat:"master" "master.restarted";
      recover_from_journal t
    end
  end

(* External cancellation (deadline expiry, preemption, operator abort) —
   the graceful path the job service rides.  Unlike a raw [terminate],
   cancelling a run whose master is currently down fails over first:
   the replacement replays the journal and re-registers the endpoint, so
   the Stop broadcast actually reaches the surviving clients and every
   host comes back to the pool instead of solving a dead job forever.
   The journal closes with a clean [Unknown reason] verdict either way. *)
let cancel t ~reason =
  if not t.finished then begin
    if t.down then restart_master t;
    terminate t (Unknown reason) reason
  end

(* ---------- periodic monitoring ---------- *)

(* Straggler hedging (at most one clone per monitor tick): when a busy
   host has been grinding the same subproblem for longer than the fleet's
   p99 duration and an admissible idle host exists, re-derive the branch
   from its journaled lineage and race a second copy.  Both copies carry
   the same pid, so the live-problem accounting cannot drift; the first
   result wins and [refute_pid] fences the loser.  Split donors in
   flight, migration sources and already-hedged pids are skipped — all
   three would let the branch's lineage move under the clone. *)
let consider_hedge t ~now =
  if t.cfg.Config.hedge && not (t.down || t.resyncing) then
    match health t with
    | None -> ()
    | Some hm -> (
        match Health.duration_p99 hm with
        | None -> ()
        | Some p99 -> (
            let stragglers =
              Pool.fold
                (fun id h acc ->
                  match h.pid with
                  | Some pid
                    when h.rstate = Busy && Client.is_alive h.client
                         && (not (Hashtbl.mem t.hedged pid))
                         && Hashtbl.mem t.live_problems pid
                         && (not (Hashtbl.mem t.pending_cert pid))
                         && (not (List.mem_assoc id t.pending_partner))
                         && (not (List.mem_assoc id t.migrating))
                         && now -. h.busy_since > p99 ->
                      (now -. h.busy_since, id, pid) :: acc
                  | _ -> acc)
                t.pool []
              |> List.sort (fun (e1, i1, _) (e2, i2, _) ->
                     if e1 <> e2 then compare e2 e1 else compare i1 i2)
            in
            match stragglers with
            | [] -> ()
            | (_, primary, pid) :: _ -> (
                match Hashtbl.find_opt t.lineage pid with
                | None -> ()
                | Some path -> (
                    match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
                    | None -> ()
                    | Some cand ->
                        let backup = cand.Scheduler.resource.R.id in
                        let sp = Subproblem.of_lineage t.cnf path in
                        Hashtbl.replace t.hedged pid ();
                        log t (Events.Hedge_launched { pid; primary; backup });
                        minstant t ~cat:"master"
                          ~args:
                            [
                              ("pid", Obs.Json.String (Printf.sprintf "%d.%d" (fst pid) (snd pid)));
                              ("primary", Obs.Json.Int primary);
                              ("backup", Obs.Json.Int backup);
                            ]
                          "hedge";
                        send_problem t ~dst:backup pid sp))))

let rec monitor t =
  if not t.finished then begin
    (* a crashed master observes nothing (the loop keeps ticking so the
       detector resumes cleanly after restart) *)
    if not (t.down || t.resyncing) then begin
      let now = Grid.Sim.now t.sim in
      (* adaptive timeouts: once enough latency samples exist the lease
         and the retry base tighten toward what the fleet actually
         delivers — never past the configured constants *)
      let suspect =
        match health t with
        | Some hm when t.cfg.Config.adaptive_timeouts ->
            Health.suspect_timeout hm ~heartbeat_period:t.cfg.Config.heartbeat_period
              ~default:t.cfg.Config.suspect_timeout
        | _ -> t.cfg.Config.suspect_timeout
      in
      (match health t with
      | Some hm when t.cfg.Config.adaptive_timeouts ->
          Reliable.set_retry_base (reliable t)
            (Health.retry_base hm ~default:t.cfg.Config.retry_base)
      | _ -> ());
      let expired = Pool.expired t.pool ~now ~timeout:suspect in
      List.iter
        (fun id ->
          if not t.finished then begin
            jlog t (Journal.Suspected { client = id });
            log t (Events.Client_suspected { client = id });
            declare_dead t id
          end)
        expired;
      if not t.finished then consider_hedge t ~now
    end;
    if not t.finished then
      schedule t ~delay:t.cfg.Config.heartbeat_period (fun () -> monitor t)
  end

let rec nws_probe t =
  if not t.finished then begin
    if not t.down then Pool.observe_nws t.pool ~now:(Grid.Sim.now t.sim);
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.nws_probe_interval (fun () -> nws_probe t))
  end

(* ---------- construction ---------- *)

let add_host t (th : Testbed.host) callbacks =
  let client =
    Client.create ~obs:t.obs ~sim:t.sim ~bus:t.bus ~cfg:t.cfg ~resource:th.Testbed.resource
      ~trace:th.Testbed.trace ~master:master_id callbacks
  in
  Pool.add t.pool ~sim:t.sim ~client ~resource:th.Testbed.resource ~trace:th.Testbed.trace

let batch_hosts t (spec : Testbed.batch_spec) =
  List.init spec.Testbed.nodes (fun i ->
      let id = t.next_batch_id + i in
      {
        Testbed.resource =
          R.make ~id
            ~name:(Printf.sprintf "bh-%03d" i)
            ~site:spec.Testbed.site ~speed:spec.Testbed.node_speed ~mem_bytes:spec.Testbed.node_mem
            ~kind:R.Batch;
        trace = Grid.Trace.constant 1.0 (* batch nodes run dedicated *);
      })

let create ?(obs = Obs.disabled) ?health ~sim ~net ~bus ~cfg ~testbed cnf =
  testbed.Testbed.configure_network net;
  let m = Obs.metrics obs in
  (* hedging and adaptive timeouts read their percentiles from the health
     model: wire one up even when the caller (who may share a model
     across runs, as the service does) did not pass one *)
  let health =
    match health with
    | Some _ as h -> h
    | None ->
        if cfg.Config.hedge || cfg.Config.adaptive_timeouts then Some (Health.create ())
        else None
  in
  let t =
    {
      sim;
      bus;
      cfg;
      cnf;
      testbed;
      pool = Pool.create ();
      checkpoints = Checkpoint.create ~obs cnf;
      backlog = [];
      pending_partner = [];
      migrating = [];
      live_problems = Hashtbl.create 64;
      in_flight = Hashtbl.create 16;
      pending_recovery = Queue.create ();
      pending_cert = Hashtbl.create 8;
      journal =
        Journal.create ~obs ~compact_every:cfg.Config.journal_compact_every
          ~quota:cfg.Config.journal_quota ();
      replica = None;
      epoch = 0;
      active_id = master_id;
      promoted = false;
      ship_buffer = [];
      shipped_seq = 0;
      standby_applied = 0;
      outage_started = None;
      lineage = Hashtbl.create 64;
      last_holder = Hashtbl.create 64;
      refuted_pids = Hashtbl.create 64;
      hedged = Hashtbl.create 8;
      down = false;
      resyncing = false;
      problem_assigned = false;
      finished = false;
      answer = None;
      max_clients = 0;
      splits = 0;
      share_batches = 0;
      shared_clauses = 0;
      share_budget =
        (if cfg.Config.share_budget > 0 then
           Some
             (Flow.budget ~bytes_per_window:cfg.Config.share_budget
                ~window:cfg.Config.share_window)
         else None);
      shares_shed = 0;
      share_bytes = 0;
      last_share_shed = neg_infinity;
      n_dup = 0;
      n_outbox_shed = 0;
      outbox_peak = 0;
      checkpoint_bytes_peak = 0;
      events = [];
      batch_job = None;
      next_batch_id = 1000;
      rng = Random.State.make [| cfg.Config.seed; 77 |];
      started_at = Grid.Sim.now sim;
      obs;
      obs_on = Obs.enabled obs;
      flight = Obs.flight obs;
      flight_on = Obs.Flight.is_enabled (Obs.flight obs);
      anomaly = Obs.anomaly obs;
      anomaly_on = Obs.Anomaly.is_enabled (Obs.anomaly obs);
      d_hb_gap =
        Obs.Anomaly.detector (Obs.anomaly obs) ~name:"heartbeat-gap" ~direction:`High
          ~min_n:16 ();
      d_share_volume =
        Obs.Anomaly.detector (Obs.anomaly obs) ~name:"share-volume" ~direction:`High
          ~min_n:16 ();
      last_hb = Hashtbl.create 16;
      split_spans = Hashtbl.create 8;
      outage_span = Obs.Span.none;
      c_splits_granted = Obs.Metrics.counter m "master.splits.granted";
      c_splits_denied = Obs.Metrics.counter m "master.splits.denied";
      c_splits_completed = Obs.Metrics.counter m "master.splits.completed";
      c_shares_relayed = Obs.Metrics.counter m "master.shares.relayed";
      c_recov_checkpoint = Obs.Metrics.counter m "master.recoveries.checkpoint";
      c_recov_rederived = Obs.Metrics.counter m "master.recoveries.rederived";
      c_recov_requeued = Obs.Metrics.counter m "master.recoveries.requeued";
      c_migrations = Obs.Metrics.counter m "master.migrations";
      c_deaths = Obs.Metrics.counter m "master.client.deaths";
      c_corrupt_detected = Obs.Metrics.counter m "integrity.corrupt.detected";
      c_nacks = Obs.Metrics.counter m "integrity.nacks";
      c_certified = Obs.Metrics.counter m "certify.unsat_fragments";
      c_quarantines = Obs.Metrics.counter m "certify.quarantines";
      c_ships = Obs.Metrics.counter m "master.journal.ships";
      c_stale_rejected = Obs.Metrics.counter m "epoch.stale.rejected";
      c_shares_shed = Obs.Metrics.counter m "master.shares.shed";
      c_share_bytes = Obs.Metrics.counter m "master.shares.bytes";
      g_repl_lag = Obs.Metrics.gauge m "standby.replication.lag";
      h_failover = Obs.Metrics.histogram m "master.failover.seconds";
      h_share_fanout = Obs.Metrics.histogram m "master.share.fanout";
    }
  in
  (match health with Some hm -> Pool.set_health t.pool hm | None -> ());
  Pool.set_reliable t.pool
    (Reliable.create ~obs ~obs_tid:Obs.Span.master_tid ~seed:cfg.Config.seed
         ~jitter:cfg.Config.retry_jitter
         ~on_ack:(fun ~dst ~latency ->
           match Pool.health t.pool with
           | Some hm -> Health.note_ack hm ~host:dst ~latency
           | None -> ())
         ~sim
         ~send_raw:(fun ~dst msg -> send_raw t ~dst msg)
         ~active:(fun () -> not t.finished)
         ~retry_base:cfg.Config.retry_base ~max_attempts:cfg.Config.retry_max_attempts
         ~on_retry:(fun ~dst ~attempt ->
           note_incident t dst `Retry;
           log t (Events.Message_retried { src = master_id; dst; attempt }))
         ~on_exhausted:(fun ~dst ~attempts ->
           note_incident t dst `Exhausted;
           log t (Events.Retries_exhausted { src = master_id; dst; attempts }))
         ~on_give_up:(fun ~dst msg ->
           log t (Events.Message_given_up { src = master_id; dst });
           if not t.finished then
             match msg with
             | Protocol.Problem { pid; sp; _ } -> (
                 (* the addressee is alive (its heartbeats keep the lease)
                    but unreachable; take the problem back *)
                 match Hashtbl.find_opt t.in_flight dst with
                 | Some (p, _) when p = pid ->
                     Hashtbl.remove t.in_flight dst;
                     unreserve t dst;
                     assign_recovered t ~failed:dst ~from_checkpoint:false pid sp
                 | _ -> ())
             | Protocol.Split_partner { partner } ->
                 (* the requester never learned about its partner *)
                 (match release_partner t dst with
                 | Some p when p = partner -> unreserve t p
                 | Some p -> unreserve t p
                 | None -> ());
                 dispatch t
             | Protocol.Migrate_to { target } -> (
                 match List.assoc_opt dst t.migrating with
                 | Some tgt when tgt = target ->
                     t.migrating <- List.remove_assoc dst t.migrating;
                     unreserve t tgt
                 | _ -> ())
             | _ -> ())
         ());
  Grid.Everyware.register bus ~id:master_id ~site:testbed.Testbed.master_site
    ~handler:(fun ~src msg -> handle t ~src msg);
  if cfg.Config.standby then begin
    t.replica <-
      Some
        (Replica.create ~obs ~sim ~bus ~cfg
           ~log:(fun kind -> log t kind)
           ~on_lease_expired:(fun () -> promote t)
           ());
    ship_loop t
  end;
  let callbacks =
    {
      Client.log = (fun kind -> log t kind);
      save_checkpoint =
        (fun ~client sp ->
          let bytes = Checkpoint.save t.checkpoints ~client ~mode:cfg.Config.checkpoint sp in
          if bytes > 0 then begin
            log t (Events.Checkpoint_saved { client; bytes });
            let total = Checkpoint.total_bytes t.checkpoints in
            if total > t.checkpoint_bytes_peak then t.checkpoint_bytes_peak <- total
          end);
      note_dup = (fun n -> t.n_dup <- t.n_dup + n);
      note_outbox =
        (fun ~depth ~shed ->
          if depth > t.outbox_peak then t.outbox_peak <- depth;
          t.n_outbox_shed <- t.n_outbox_shed + shed);
    }
  in
  List.iter (fun th -> add_host t th callbacks) testbed.Testbed.hosts;
  (match testbed.Testbed.batch with
  | None -> ()
  | Some spec ->
      let batch =
        Grid.Batch.create sim ~mean_wait:spec.Testbed.mean_wait ~seed:spec.Testbed.queue_seed
      in
      log t (Events.Batch_job_submitted { nodes = spec.Testbed.nodes });
      let job =
        Grid.Batch.submit batch ~nodes:spec.Testbed.nodes ~duration:spec.Testbed.duration
          ~on_start:(fun () ->
            if not t.finished then begin
              log t (Events.Batch_job_started { nodes = spec.Testbed.nodes });
              List.iter (fun th -> add_host t th callbacks) (batch_hosts t spec)
            end)
          ~on_end:(fun () ->
            if not t.finished then
              terminate t (Unknown "batch job expired") "batch job reached its duration limit")
      in
      t.batch_job <- Some (batch, job));
  List.iter
    (fun (time, th) ->
      ignore
        (Grid.Sim.schedule sim ~delay:time (fun () ->
             if not t.finished then add_host t th callbacks)))
    testbed.Testbed.late_hosts;
  ignore
    (Grid.Sim.schedule sim ~delay:cfg.Config.overall_timeout (fun () ->
         terminate t (Unknown "timeout") "overall timeout"));
  nws_probe t;
  monitor t;
  t
