module R = Grid.Resource

type answer = Sat of Sat.Model.t | Unsat | Unknown of string

type result = {
  answer : answer;
  time : float;
  max_clients : int;
  splits : int;
  share_batches : int;
  shared_clauses : int;
  messages : int;
  bytes : int;
  checkpoint_bytes : int;
  solver_stats : Sat.Stats.t;
  events : Events.t list;
}

type rstate = Launching | Idle | Reserved | Busy | Dead

type hostinfo = {
  client : Client.t;
  resource : R.t;
  trace : Grid.Trace.t;
  nws : Grid.Nws.t;
  mutable rstate : rstate;
  mutable busy_since : float;
}

type t = {
  sim : Grid.Sim.t;
  bus : Protocol.msg Grid.Everyware.t;
  cfg : Config.t;
  cnf : Sat.Cnf.t;
  testbed : Testbed.t;
  hosts : (int, hostinfo) Hashtbl.t;
  checkpoints : Checkpoint.t;
  mutable backlog : (int * float) list;  (* requester, busy-since at request time *)
  mutable pending_partner : (int * int) list;  (* requester -> reserved partner *)
  mutable migrating : (int * int) list;  (* source -> reserved target *)
  mutable active_problems : int;
  mutable problem_assigned : bool;
  mutable finished : bool;
  mutable answer : answer option;
  mutable max_clients : int;
  mutable splits : int;
  mutable share_batches : int;
  mutable shared_clauses : int;
  mutable checkpoint_bytes_peak : int;
  mutable events : Events.t list;  (* newest first *)
  mutable batch_job : (Grid.Batch.t * Grid.Batch.job) option;
  mutable next_batch_id : int;
  rng : Random.State.t;
  started_at : float;
}

let master_id = 0

let log t kind = t.events <- Events.make (Grid.Sim.now t.sim) kind :: t.events

let events_so_far t = List.rev t.events

let schedule t ~delay f = ignore (Grid.Sim.schedule t.sim ~delay f)

let busy_clients t =
  Hashtbl.fold (fun _ h acc -> if h.rstate = Busy then acc + 1 else acc) t.hosts 0

let busy_client_ids t =
  Hashtbl.fold (fun id h acc -> if h.rstate = Busy then id :: acc else acc) t.hosts []
  |> List.sort compare

let finished t = t.finished

let send t ~dst msg = Grid.Everyware.send t.bus ~src:master_id ~dst ~bytes:(Protocol.size msg) msg

let update_max t =
  let b = busy_clients t in
  if b > t.max_clients then t.max_clients <- b

let aggregate_stats t =
  let acc = Sat.Stats.create () in
  Hashtbl.iter (fun _ h -> Sat.Stats.add acc (Client.solver_stats h.client)) t.hosts;
  acc

let result t =
  match t.answer with
  | None -> invalid_arg "Master.result: run not finished"
  | Some answer ->
      {
        answer;
        time = Grid.Sim.now t.sim -. t.started_at;
        max_clients = t.max_clients;
        splits = t.splits;
        share_batches = t.share_batches;
        shared_clauses = t.shared_clauses;
        messages = Grid.Everyware.messages_sent t.bus;
        bytes = Grid.Everyware.bytes_sent t.bus;
        checkpoint_bytes = t.checkpoint_bytes_peak;
        solver_stats = aggregate_stats t;
        events = events_so_far t;
      }

let terminate t answer why =
  if not t.finished then begin
    t.finished <- true;
    t.answer <- Some answer;
    log t (Events.Terminated why);
    Hashtbl.iter
      (fun id h -> if h.rstate <> Dead && Client.is_alive h.client then send t ~dst:id Protocol.Stop)
      t.hosts;
    match t.batch_job with
    | Some (ctl, job)
      when Grid.Batch.state job = Grid.Batch.Queued || Grid.Batch.state job = Grid.Batch.Running ->
        Grid.Batch.cancel ctl job;
        log t Events.Batch_job_cancelled
    | Some _ | None -> ()
  end

(* ---------- scheduling ---------- *)

let idle_candidates t =
  Hashtbl.fold
    (fun _ h acc ->
      if h.rstate = Idle && Client.is_alive h.client then
        { Scheduler.resource = h.resource; forecast = Grid.Nws.forecast h.nws } :: acc
      else acc)
    t.hosts []
  (* stable order so Random_pick and ties are reproducible *)
  |> List.sort (fun a b -> compare a.Scheduler.resource.R.id b.Scheduler.resource.R.id)

let host t id = Hashtbl.find t.hosts id

let grant_split t requester =
  match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
  | None -> false
  | Some cand ->
      let partner = cand.Scheduler.resource.R.id in
      (host t partner).rstate <- Reserved;
      t.pending_partner <- (requester, partner) :: t.pending_partner;
      log t (Events.Split_granted { client = requester; partner });
      send t ~dst:requester (Protocol.Split_partner { partner });
      true

let release_partner t requester =
  match List.assoc_opt requester t.pending_partner with
  | None -> None
  | Some partner ->
      t.pending_partner <- List.remove_assoc requester t.pending_partner;
      Some partner

(* Serve the backlog with a freshly idle resource: the paper splits the
   client that has been running the same subproblem the longest. *)
let rec serve_backlog t =
  if (not t.finished) && t.backlog <> [] then begin
    let live =
      List.filter
        (fun (c, _) ->
          match Hashtbl.find_opt t.hosts c with
          | Some h -> h.rstate = Busy && Client.is_alive h.client
          | None -> false)
        t.backlog
    in
    t.backlog <- live;
    match Scheduler.pick_backlog live with
    | None -> ()
    | Some requester ->
        if grant_split t requester then begin
          t.backlog <- List.filter (fun (c, _) -> c <> requester) t.backlog;
          serve_backlog t
        end
  end

let rank_of (h : hostinfo) =
  Scheduler.rank { Scheduler.resource = h.resource; forecast = Grid.Nws.forecast h.nws }

(* Migration (Section 3.4): with an empty backlog, move the subproblem of the
   weakest busy host onto a much stronger idle host. *)
let consider_migration t =
  if (not t.finished) && t.cfg.migration_enabled && t.backlog = [] && t.migrating = [] then begin
    let busy =
      Hashtbl.fold (fun _ h acc -> if h.rstate = Busy then h :: acc else acc) t.hosts []
    in
    let weakest =
      List.fold_left
        (fun acc h ->
          match acc with
          | None -> Some h
          | Some best -> if rank_of h < rank_of best then Some h else acc)
        None busy
    in
    match (weakest, Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t)) with
    | Some src, Some cand ->
        let dst = cand.Scheduler.resource.R.id in
        if
          dst <> src.resource.R.id
          && Scheduler.should_migrate ~enabled:true ~busy_rank:(rank_of src)
               ~idle_rank:(Scheduler.rank cand)
        then begin
          (host t dst).rstate <- Reserved;
          t.migrating <- (src.resource.R.id, dst) :: t.migrating;
          send t ~dst:src.resource.R.id (Protocol.Migrate_to { target = dst })
        end
    | _ -> ()
  end

(* ---------- message handling ---------- *)

let assign_initial_problem t dst =
  let sp = Subproblem.initial t.cnf in
  t.problem_assigned <- true;
  t.active_problems <- 1;
  (host t dst).rstate <- Reserved;
  send t ~dst (Protocol.Problem { sp; sent_at = Grid.Sim.now t.sim })

let on_register t src =
  let h = host t src in
  h.rstate <- Idle;
  log t (Events.Client_started src);
  if not t.problem_assigned then assign_initial_problem t src
  else begin
    serve_backlog t;
    consider_migration t
  end

let on_problem_received t src ~from ~bytes ~depth =
  let h = host t src in
  (* a migration target becoming busy frees its source *)
  (match List.find_opt (fun (_, dst) -> dst = src) t.migrating with
  | Some (s, _) ->
      t.migrating <- List.filter (fun (_, dst) -> dst <> src) t.migrating;
      let sh = host t s in
      if sh.rstate = Busy then sh.rstate <- Idle;
      log t (Events.Migration { src = s; dst = src; bytes })
  | None -> ());
  h.rstate <- Busy;
  h.busy_since <- Grid.Sim.now t.sim;
  log t (Events.Problem_assigned { src = from; dst = src; bytes; depth });
  update_max t;
  serve_backlog t;
  consider_migration t

let on_split_request t src _reason =
  (* the requesting client already logged the Split_requested event *)
  if not (grant_split t src) then begin
    let h = host t src in
    t.backlog <- t.backlog @ [ (src, h.busy_since) ];
    log t (Events.Split_denied { client = src })
  end

let on_split_ok t src dst bytes =
  t.splits <- t.splits + 1;
  t.active_problems <- t.active_problems + 1;
  t.pending_partner <- List.remove_assoc src t.pending_partner;
  log t (Events.Split_completed { src; dst; bytes })

let on_split_failed t src =
  (match release_partner t src with
  | Some partner ->
      let h = host t partner in
      if h.rstate = Reserved then h.rstate <- Idle
  | None -> ());
  serve_backlog t

let on_shares t src clauses =
  t.share_batches <- t.share_batches + 1;
  t.shared_clauses <- t.shared_clauses + List.length clauses;
  let recipients = ref 0 in
  Hashtbl.iter
    (fun id h ->
      if id <> src && h.rstate = Busy && Client.is_alive h.client then begin
        incr recipients;
        send t ~dst:id (Protocol.Share_relay { origin = src; clauses })
      end)
    t.hosts;
  log t (Events.Shares_broadcast { origin = src; count = List.length clauses; recipients = !recipients })

let on_finished_unsat t src =
  let h = host t src in
  if h.rstate = Busy then h.rstate <- Idle;
  Checkpoint.drop t.checkpoints ~client:src;
  t.backlog <- List.filter (fun (c, _) -> c <> src) t.backlog;
  log t (Events.Client_finished_unsat src);
  t.active_problems <- t.active_problems - 1;
  if t.active_problems <= 0 then terminate t Unsat "all clients idle: unsatisfiable"
  else begin
    serve_backlog t;
    consider_migration t
  end

let on_found_model t src model =
  log t (Events.Client_found_model src);
  let ok = Sat.Model.satisfies t.cnf model in
  log t (Events.Model_verified ok);
  if ok then terminate t (Sat model) "model found and verified"
  else begin
    (* never expected: treat as a fatal protocol error *)
    terminate t (Unknown "model verification failed") "model verification failed"
  end

let handle t ~src msg =
  if not t.finished then
    match msg with
    | Protocol.Register -> on_register t src
    | Protocol.Problem_received { from; bytes; depth } ->
        on_problem_received t src ~from ~bytes ~depth
    | Protocol.Split_request reason -> on_split_request t src reason
    | Protocol.Split_ok { dst; bytes } -> on_split_ok t src dst bytes
    | Protocol.Split_failed -> on_split_failed t src
    | Protocol.Shares { clauses } -> on_shares t src clauses
    | Protocol.Finished_unsat -> on_finished_unsat t src
    | Protocol.Found_model m -> on_found_model t src m
    | Protocol.Problem _ | Protocol.Split_partner _ | Protocol.Share_relay _
    | Protocol.Migrate_to _ | Protocol.Stop ->
        (* client-bound messages; the master should never receive them *)
        ()

(* ---------- failure handling ---------- *)

let kill_client t id =
  match Hashtbl.find_opt t.hosts id with
  | None -> ()
  | Some h ->
      if h.rstate <> Dead then begin
        let was_busy = h.rstate = Busy in
        Client.kill h.client;
        h.rstate <- Dead;
        t.backlog <- List.filter (fun (c, _) -> c <> id) t.backlog;
        log t (Events.Client_killed id);
        if was_busy && not t.finished then begin
          match Checkpoint.restore t.checkpoints ~client:id with
          | Some sp -> (
              match Scheduler.pick t.cfg.scheduler ~rng:t.rng (idle_candidates t) with
              | Some cand ->
                  let dst = cand.Scheduler.resource.R.id in
                  (host t dst).rstate <- Reserved;
                  log t (Events.Recovered_from_checkpoint { client = id; onto = dst });
                  Checkpoint.drop t.checkpoints ~client:id;
                  send t ~dst (Protocol.Problem { sp; sent_at = Grid.Sim.now t.sim })
              | None ->
                  terminate t (Unknown "client crashed; no idle resource for recovery")
                    "unrecoverable client failure")
          | None ->
              (* the paper's current implementation does not tolerate the
                 death of a working client without checkpoints *)
              terminate t (Unknown "busy client crashed without checkpoint")
                "unrecoverable client failure"
        end
      end

(* ---------- periodic monitoring ---------- *)

let rec nws_probe t =
  if not t.finished then begin
    Hashtbl.iter
      (fun _ h ->
        if h.rstate <> Dead then
          Grid.Nws.observe h.nws (Grid.Trace.availability h.trace (Grid.Sim.now t.sim)))
      t.hosts;
    ignore (Grid.Sim.schedule t.sim ~delay:t.cfg.nws_probe_interval (fun () -> nws_probe t))
  end

(* ---------- construction ---------- *)

let add_host t (th : Testbed.host) callbacks =
  let client =
    Client.create ~sim:t.sim ~bus:t.bus ~cfg:t.cfg ~resource:th.Testbed.resource
      ~trace:th.Testbed.trace ~master:master_id callbacks
  in
  Hashtbl.replace t.hosts th.Testbed.resource.R.id
    {
      client;
      resource = th.Testbed.resource;
      trace = th.Testbed.trace;
      nws = Grid.Nws.create ();
      rstate = Launching;
      busy_since = 0.;
    }

let batch_hosts t (spec : Testbed.batch_spec) =
  List.init spec.Testbed.nodes (fun i ->
      let id = t.next_batch_id + i in
      {
        Testbed.resource =
          R.make ~id
            ~name:(Printf.sprintf "bh-%03d" i)
            ~site:spec.Testbed.site ~speed:spec.Testbed.node_speed ~mem_bytes:spec.Testbed.node_mem
            ~kind:R.Batch;
        trace = Grid.Trace.constant 1.0 (* batch nodes run dedicated *);
      })

let create ~sim ~net ~bus ~cfg ~testbed cnf =
  testbed.Testbed.configure_network net;
  let t =
    {
      sim;
      bus;
      cfg;
      cnf;
      testbed;
      hosts = Hashtbl.create 64;
      checkpoints = Checkpoint.create cnf;
      backlog = [];
      pending_partner = [];
      migrating = [];
      active_problems = 0;
      problem_assigned = false;
      finished = false;
      answer = None;
      max_clients = 0;
      splits = 0;
      share_batches = 0;
      shared_clauses = 0;
      checkpoint_bytes_peak = 0;
      events = [];
      batch_job = None;
      next_batch_id = 1000;
      rng = Random.State.make [| cfg.Config.seed; 77 |];
      started_at = Grid.Sim.now sim;
    }
  in
  Grid.Everyware.register bus ~id:master_id ~site:testbed.Testbed.master_site
    ~handler:(fun ~src msg -> handle t ~src msg);
  let callbacks =
    {
      Client.log = (fun kind -> log t kind);
      save_checkpoint =
        (fun ~client sp ->
          let bytes = Checkpoint.save t.checkpoints ~client ~mode:cfg.Config.checkpoint sp in
          if bytes > 0 then begin
            log t (Events.Checkpoint_saved { client; bytes });
            let total = Checkpoint.total_bytes t.checkpoints in
            if total > t.checkpoint_bytes_peak then t.checkpoint_bytes_peak <- total
          end);
    }
  in
  List.iter (fun th -> add_host t th callbacks) testbed.Testbed.hosts;
  (match testbed.Testbed.batch with
  | None -> ()
  | Some spec ->
      let batch =
        Grid.Batch.create sim ~mean_wait:spec.Testbed.mean_wait ~seed:spec.Testbed.queue_seed
      in
      log t (Events.Batch_job_submitted { nodes = spec.Testbed.nodes });
      let job =
        Grid.Batch.submit batch ~nodes:spec.Testbed.nodes ~duration:spec.Testbed.duration
          ~on_start:(fun () ->
            if not t.finished then begin
              log t (Events.Batch_job_started { nodes = spec.Testbed.nodes });
              List.iter (fun th -> add_host t th callbacks) (batch_hosts t spec)
            end)
          ~on_end:(fun () ->
            if not t.finished then
              terminate t (Unknown "batch job expired") "batch job reached its duration limit")
      in
      t.batch_job <- Some (batch, job));
  List.iter
    (fun (time, th) ->
      ignore
        (Grid.Sim.schedule sim ~delay:time (fun () ->
             if not t.finished then add_host t th callbacks)))
    testbed.Testbed.late_hosts;
  ignore
    (Grid.Sim.schedule sim ~delay:cfg.Config.overall_timeout (fun () ->
         terminate t (Unknown "timeout") "overall timeout"));
  nws_probe t;
  t
