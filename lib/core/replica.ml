(* Hot-standby master replica: consumes the primary's journal shipments,
   maintains a shadow journal whose replay digest must match the
   primary's, and promotes itself (via a callback into Master) when its
   lease on the primary expires. *)

let standby_id = -1

let site = "standby"

type t = {
  sim : Grid.Sim.t;
  bus : Protocol.msg Grid.Everyware.t;
  cfg : Config.t;
  log : Events.kind -> unit;
  on_lease_expired : unit -> unit;
  journal : Journal.t;
  pending : (int, Protocol.journal_entry list * string) Hashtbl.t;
      (* out-of-order batches, keyed by the entry index they start at *)
  seen : (int * int, unit) Hashtbl.t;  (* (src, mid) reliable-envelope dedup *)
  mutable applied_entries : int;
  mutable batches : int;
  mutable divergences : int;
  mutable epoch : int;
  mutable last_heard : float;
  mutable promoted : bool;
  mutable stopped : bool;
  obs_on : bool;
  c_ships : Obs.Metrics.counter;
  c_divergences : Obs.Metrics.counter;
}

let journal t = t.journal

let applied t = t.applied_entries

let batches t = t.batches

let divergences t = t.divergences

let epoch t = t.epoch

let promoted t = t.promoted

let digest t = Journal.digest (Journal.replay t.journal)

let mark_promoted t = t.promoted <- true

let stop t = t.stopped <- true

let send_raw t ~dst msg =
  let msg =
    if t.cfg.Config.integrity_checks then Protocol.frame ~epoch:t.epoch msg else msg
  in
  Grid.Everyware.send t.bus ~src:standby_id ~dst ~bytes:(Protocol.size msg) msg

let send_ack t ~dst ~seq ~ok =
  send_raw t ~dst (Protocol.Ship_ack { seq; applied = t.applied_entries; ok })

(* Apply a batch whose first entry has index [seq].  Batches are immutable
   once flushed, so any batch starting below our applied count is a pure
   re-delivery: re-ack it (the original ack may have been lost) without
   touching the shadow journal.  Batches starting above it are buffered
   until the gap fills — the shadow journal must stay a strict prefix of
   the primary's or the digests are meaningless. *)
let rec apply_batch t ~src ~seq ~entries ~state_digest =
  if seq < t.applied_entries then send_ack t ~dst:src ~seq ~ok:true
  else if seq > t.applied_entries then
    Hashtbl.replace t.pending seq (entries, state_digest)
  else begin
    List.iter (Journal.append t.journal) entries;
    t.applied_entries <- t.applied_entries + List.length entries;
    t.batches <- t.batches + 1;
    if t.obs_on then Obs.Metrics.incr t.c_ships;
    (* the continuous consistency check: our shadow replay must render to
       the exact digest the primary computed when it flushed this batch *)
    let ok = String.equal (digest t) state_digest in
    if not ok then begin
      t.divergences <- t.divergences + 1;
      if t.obs_on then Obs.Metrics.incr t.c_divergences;
      t.log (Events.Replication_diverged { seq })
    end;
    t.log (Events.Ship_applied { seq; applied = t.applied_entries; ok });
    send_ack t ~dst:src ~seq ~ok;
    match Hashtbl.find_opt t.pending t.applied_entries with
    | Some (entries, state_digest) ->
        let seq = t.applied_entries in
        Hashtbl.remove t.pending seq;
        apply_batch t ~src ~seq ~entries ~state_digest
    | None -> ()
  end

let admit t ~src ~mid =
  if Hashtbl.mem t.seen (src, mid) then false
  else begin
    Hashtbl.replace t.seen (src, mid) ();
    true
  end

let handle_payload t ~src msg =
  match msg with
  | Protocol.Ship { seq; entries; state_digest } -> apply_batch t ~src ~seq ~entries ~state_digest
  | _ ->
      (* the primary only ever ships; anything else is noise (e.g. a
         client probing a stale address) and carries no standby meaning *)
      ()

let handle t ~src msg =
  if not (t.stopped || t.promoted) then begin
    let frame_epoch = Protocol.epoch_of msg in
    match Protocol.verify msg with
    | `Corrupt payload -> (
        match payload with
        | Protocol.Reliable { mid; _ } ->
            t.log (Events.Corrupt_message_detected { receiver = standby_id; nacked = true });
            send_raw t ~dst:src (Protocol.Nack { mid })
        | _ -> t.log (Events.Corrupt_message_detected { receiver = standby_id; nacked = false }))
    | `Ok msg ->
        if frame_epoch < t.epoch then begin
          t.log
            (Events.Stale_epoch_rejected
               { receiver = standby_id; src; epoch = frame_epoch; current = t.epoch });
          send_raw t ~dst:src Protocol.Epoch_notice
        end
        else begin
          if frame_epoch > t.epoch then t.epoch <- frame_epoch;
          t.last_heard <- Grid.Sim.now t.sim;
          match msg with
          | Protocol.Reliable { mid; payload } ->
              send_raw t ~dst:src (Protocol.Ack { mid });
              if admit t ~src ~mid then handle_payload t ~src payload
          | Protocol.Ack _ | Protocol.Nack _ ->
              (* the standby never sends reliably, so it has nothing to settle *)
              ()
          | msg -> handle_payload t ~src msg
        end
  end

(* The shipment stream is the liveness signal: the primary flushes at
   least every ship_interval even when idle, so lease-length silence
   means the primary (or the path to it) is gone. *)
let rec watch t =
  if not (t.stopped || t.promoted) then
    if Grid.Sim.now t.sim -. t.last_heard > t.cfg.Config.standby_lease then begin
      t.promoted <- true;
      t.on_lease_expired ()
    end
    else
      let delay = Float.max 0.5 (t.cfg.Config.standby_lease /. 16.) in
      ignore (Grid.Sim.schedule t.sim ~delay (fun () -> watch t))

let create ?(obs = Obs.disabled) ~sim ~bus ~cfg ~log ~on_lease_expired () =
  let m = Obs.metrics obs in
  let t =
    {
      sim;
      bus;
      cfg;
      log;
      on_lease_expired;
      journal = Journal.create ~obs ~compact_every:cfg.Config.journal_compact_every ();
      pending = Hashtbl.create 8;
      seen = Hashtbl.create 64;
      applied_entries = 0;
      batches = 0;
      divergences = 0;
      epoch = 0;
      last_heard = Grid.Sim.now sim;
      promoted = false;
      stopped = false;
      obs_on = Obs.enabled obs;
      c_ships = Obs.Metrics.counter m "standby.ships.applied";
      c_divergences = Obs.Metrics.counter m "standby.divergences";
    }
  in
  Grid.Everyware.register bus ~id:standby_id ~site ~handler:(fun ~src msg -> handle t ~src msg);
  watch t;
  t
