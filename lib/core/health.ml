(* Per-host health: EWMA signal tracking, incident history and a circuit
   breaker.  See DESIGN.md §9.

   The model owns its metrics registry (always enabled, independent of the
   run's --report flag): the adaptive-timeout and hedging decisions read
   percentiles from these histograms, so they must accumulate real samples
   even on runs with telemetry off.  Obs.disabled would hand out shared
   dummy instruments and silently break both. *)

type breaker = Closed | Open of { until_t : float } | Half_open

type host = {
  id : int;
  mutable ack_ewma : float; (* seconds; 0. until the first sample *)
  mutable ack_n : int;
  mutable gap_ewma : float; (* heartbeat inter-arrival, seconds *)
  mutable gap_jitter : float; (* EWMA of |gap - gap_ewma| *)
  mutable gap_n : int;
  mutable last_heartbeat : float; (* -1. until the first beat *)
  mutable last_decisions : int;
  mutable rate_ewma : float; (* solver decisions per virtual second *)
  mutable rate_n : int;
  mutable crashes : int;
  mutable quarantines : int;
  mutable corruptions : int;
  mutable retries : int;
  mutable breaker : breaker;
  mutable probation_streak : int; (* consecutive breaker trips *)
  mutable canary_out : bool; (* Half_open: probe assigned, unresolved *)
}

type t = {
  metrics : Obs.Metrics.t;
  h_ack : Obs.Metrics.histogram; (* fleet-wide ack latency *)
  h_gap : Obs.Metrics.histogram; (* fleet-wide heartbeat gaps *)
  h_duration : Obs.Metrics.histogram; (* subproblem solve durations *)
  hosts : (int, host) Hashtbl.t;
  probation_base : float;
}

let alpha = 0.2

let ewma prev n x = if n = 0 then x else ((1. -. alpha) *. prev) +. (alpha *. x)

let create ?(probation_base = 30.) () =
  let metrics = Obs.Metrics.create ~enabled:true in
  {
    metrics;
    h_ack = Obs.Metrics.histogram metrics "health.ack_latency_s";
    h_gap = Obs.Metrics.histogram metrics "health.heartbeat_gap_s";
    h_duration = Obs.Metrics.histogram metrics "health.subproblem_duration_s";
    hosts = Hashtbl.create 16;
    probation_base;
  }

let host t id =
  match Hashtbl.find_opt t.hosts id with
  | Some h -> h
  | None ->
      let h =
        {
          id;
          ack_ewma = 0.;
          ack_n = 0;
          gap_ewma = 0.;
          gap_jitter = 0.;
          gap_n = 0;
          last_heartbeat = -1.;
          last_decisions = 0;
          rate_ewma = 0.;
          rate_n = 0;
          crashes = 0;
          quarantines = 0;
          corruptions = 0;
          retries = 0;
          breaker = Closed;
          probation_streak = 0;
          canary_out = false;
        }
      in
      Hashtbl.add t.hosts id h;
      h

(* ---------- signal feeds ---------- *)

let note_ack t ~host:id ~latency =
  if latency >= 0. then begin
    let h = host t id in
    Obs.Metrics.observe t.h_ack latency;
    h.ack_ewma <- ewma h.ack_ewma h.ack_n latency;
    h.ack_n <- h.ack_n + 1
  end

let note_heartbeat t ~host:id ~now ~decisions =
  let h = host t id in
  if h.last_heartbeat >= 0. then begin
    let gap = now -. h.last_heartbeat in
    if gap > 0. then begin
      Obs.Metrics.observe t.h_gap gap;
      h.gap_jitter <- ewma h.gap_jitter h.gap_n (Float.abs (gap -. h.gap_ewma));
      h.gap_ewma <- ewma h.gap_ewma h.gap_n gap;
      h.gap_n <- h.gap_n + 1;
      (* A new subproblem resets the client's solver, so the decision
         counter can step backwards — skip those beats rather than
         recording a negative rate. *)
      let delta = decisions - h.last_decisions in
      if delta >= 0 then begin
        h.rate_ewma <- ewma h.rate_ewma h.rate_n (float_of_int delta /. gap);
        h.rate_n <- h.rate_n + 1
      end
    end
  end;
  h.last_heartbeat <- now;
  h.last_decisions <- decisions

let note_duration t ~elapsed = if elapsed >= 0. then Obs.Metrics.observe t.h_duration elapsed

(* ---------- circuit breaker ---------- *)

type incident = [ `Crash | `Quarantine | `Exhausted | `Corruption | `Retry ]

let incident t ~host:id ~now kind =
  let h = host t id in
  let trip () =
    h.probation_streak <- h.probation_streak + 1;
    let until_t =
      now +. (t.probation_base *. (2. ** float_of_int (h.probation_streak - 1)))
    in
    h.breaker <- Open { until_t };
    h.canary_out <- false;
    Some until_t
  in
  match kind with
  | `Crash ->
      h.crashes <- h.crashes + 1;
      trip ()
  | `Quarantine ->
      h.quarantines <- h.quarantines + 1;
      trip ()
  | `Exhausted -> trip ()
  | `Corruption ->
      h.corruptions <- h.corruptions + 1;
      None
  | `Retry ->
      h.retries <- h.retries + 1;
      None

let admissible t ~host:id ~now =
  let h = host t id in
  match h.breaker with
  | Closed -> true
  | Half_open -> not h.canary_out
  | Open { until_t } ->
      if now >= until_t then begin
        h.breaker <- Half_open;
        true
      end
      else false

let note_assigned t ~host:id =
  let h = host t id in
  match h.breaker with Half_open -> h.canary_out <- true | Closed | Open _ -> ()

let note_success t ~host:id =
  let h = host t id in
  match h.breaker with
  | Half_open ->
      h.breaker <- Closed;
      h.probation_streak <- 0;
      h.canary_out <- false;
      true
  | Closed | Open _ -> false

(* ---------- blended score ---------- *)

let clamp lo hi x = Float.min hi (Float.max lo x)

let fleet_median_rate t =
  let rates =
    Hashtbl.fold (fun _ h acc -> if h.rate_n > 0 then h.rate_ewma :: acc else acc) t.hosts []
  in
  match List.sort compare rates with
  | [] -> 0.
  | sorted -> List.nth sorted (List.length sorted / 2)

let score t ~host:id =
  let h = host t id in
  match h.breaker with
  | Open _ -> 0.
  | (Half_open | Closed) as b ->
      let incidents =
        1.
        /. (1.
           +. (0.5 *. float_of_int h.crashes)
           +. (0.5 *. float_of_int h.quarantines)
           +. (0.25 *. float_of_int h.corruptions)
           +. (0.02 *. float_of_int h.retries))
      in
      let latency =
        if h.ack_n = 0 then 1.
        else
          let p50 = Obs.Metrics.quantile t.h_ack 0.5 in
          if p50 <= 0. || h.ack_ewma <= 0. then 1. else clamp 0.25 1. (p50 /. h.ack_ewma)
      in
      let progress =
        if h.rate_n = 0 then 1.
        else
          let median = fleet_median_rate t in
          if median <= 0. then 1. else clamp 0.1 1. (h.rate_ewma /. median)
      in
      let raw = incidents *. latency *. progress in
      let raw = if b = Half_open then raw *. 0.5 else raw in
      Float.max 0.05 raw

(* ---------- percentile-derived deadlines ---------- *)

let quantile_if h ~min_count q =
  if Obs.Metrics.hist_count h >= min_count then Some (Obs.Metrics.quantile h q) else None

let duration_p99 t = quantile_if t.h_duration ~min_count:5 0.99

let hb_gap_p99 t = quantile_if t.h_gap ~min_count:20 0.99

let ack_p99 t = quantile_if t.h_ack ~min_count:20 0.99

(* Adaptive deadlines may only tighten the configured constants, never
   loosen them: the config value stays the worst-case bound the chaos
   tests were written against. *)

let suspect_timeout t ~heartbeat_period ~default =
  match hb_gap_p99 t with
  | None -> default
  | Some p99 -> clamp (2.5 *. heartbeat_period) default (3. *. p99)

let retry_base t ~default =
  match ack_p99 t with
  | None -> None
  | Some p99 -> Some (clamp (0.25 *. default) default (2. *. p99))

(* ---------- reporting ---------- *)

type view = {
  v_host : int;
  v_score : float;
  v_state : string;
  v_ack_ewma : float;
  v_hb_jitter : float;
  v_rate : float;
  v_crashes : int;
  v_quarantines : int;
  v_corruptions : int;
  v_retries : int;
}

let state_string h =
  match h.breaker with
  | Closed -> "ok"
  | Open _ -> "probation"
  | Half_open -> "canary"

let views t =
  Hashtbl.fold (fun _ h acc -> h :: acc) t.hosts []
  |> List.sort (fun a b -> compare a.id b.id)
  |> List.map (fun h ->
         {
           v_host = h.id;
           v_score = score t ~host:h.id;
           v_state = state_string h;
           v_ack_ewma = h.ack_ewma;
           v_hb_jitter = h.gap_jitter;
           v_rate = h.rate_ewma;
           v_crashes = h.crashes;
           v_quarantines = h.quarantines;
           v_corruptions = h.corruptions;
           v_retries = h.retries;
         })

let to_json t =
  let module J = Obs.Json in
  J.List
    (List.map
       (fun v ->
         J.Obj
           [
             ("host", J.Int v.v_host);
             ("score", J.Float v.v_score);
             ("state", J.String v.v_state);
             ("ack_ewma_s", J.Float v.v_ack_ewma);
             ("hb_jitter_s", J.Float v.v_hb_jitter);
             ("progress_rate", J.Float v.v_rate);
             ("crashes", J.Int v.v_crashes);
             ("quarantines", J.Int v.v_quarantines);
             ("corruptions", J.Int v.v_corruptions);
             ("retries", J.Int v.v_retries);
           ])
       (views t))

let metrics t = t.metrics
