module Solver = Sat.Solver

type outcome = Sat of Sat.Model.t | Unsat | Timeout | Memout

type run = { outcome : outcome; time : float; stats : Sat.Stats.t }

let run ?config ?(timeout = 18_000.) ~host cnf =
  let resource = host.Testbed.resource in
  let base =
    match config with
    | Some c -> c
    | None ->
        (* zChaff 2001 kept every learned clause until memory overflowed *)
        { Solver.default_config with Solver.reduce_db_enabled = false }
  in
  let config =
    {
      base with
      Solver.mem_limit_bytes = min base.Solver.mem_limit_bytes (Grid.Resource.usable_memory resource);
    }
  in
  let solver = Solver.create ~config cnf in
  let speed = resource.Grid.Resource.speed in
  let total_budget = timeout *. speed in
  (* run in chunks so the propagation count (hence virtual time) is exact
     enough without letting one call overshoot the timeout by much *)
  let chunk = max 1 (int_of_float (speed *. 10.)) in
  let rec loop () =
    let used = float_of_int (Solver.stats solver).Sat.Stats.propagations in
    if used >= total_budget then Timeout
    else
      match Solver.run solver ~budget:chunk with
      | Solver.Sat m -> Sat m
      | Solver.Unsat -> Unsat
      | Solver.Mem_pressure -> Memout
      | Solver.Budget_exhausted -> loop ()
  in
  let outcome = loop () in
  let stats = Sat.Stats.copy (Solver.stats solver) in
  let time =
    match outcome with
    | Timeout -> timeout
    | Sat _ | Unsat | Memout -> float_of_int stats.Sat.Stats.propagations /. speed
  in
  { outcome; time; stats }
