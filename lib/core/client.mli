(** A GridSAT client: one solver process on one Grid host.

    A client is launched "empty", registers with the master, and waits for
    a subproblem.  While solving it runs in compute slices whose step
    budget follows the host's speed and current availability; it monitors
    its own memory and run time to decide when to ask the master for a
    split (paper Section 3.3: "the decision to add a resource is made
    locally by a client"), broadcasts freshly learned short clauses, and
    merges clauses received from peers.  On a split directive it performs
    the Figure 2 transformation and ships the complementary subproblem
    directly to its partner (peer-to-peer, the large message of
    Figure 3).

    Liveness: every client beacons a {!Protocol.Heartbeat} to the master
    each [heartbeat_period], and all critical control messages ride a
    reliable (ack + bounded-retry) channel.  Clause shares remain
    fire-and-forget.

    Master outages: when a reliable send toward the master exhausts its
    retry budget the client concludes the master is down, keeps solving
    autonomously, and buffers its master-bound traffic (results, split
    requests, orphan returns, a bounded number of clause-share batches).
    It periodically re-offers the oldest buffered control message; the
    moment anything arrives from a (restarted) master the buffer is
    flushed, and a {!Protocol.Resync_request} is answered with the
    client's current pid and guiding-path lineage so the new master can
    adopt the work. *)

type t

type callbacks = {
  log : Events.kind -> unit;  (** master-side event log *)
  save_checkpoint : client:int -> Subproblem.t -> unit;
  note_dup : int -> unit;
      (** [n] foreign clauses were suppressed as duplicates on ingestion *)
  note_outbox : depth:int -> shed:int -> unit;
      (** outage-outbox occupancy changed: current [depth] and how many
          buffered messages the watermark policy just [shed] *)
}

val create :
  ?obs:Obs.t ->
  sim:Grid.Sim.t ->
  bus:Protocol.msg Grid.Everyware.t ->
  cfg:Config.t ->
  resource:Grid.Resource.t ->
  trace:Grid.Trace.t ->
  master:int ->
  callbacks ->
  t
(** Registers the client's endpoint and schedules its startup
    registration with the master (a short launch delay applies). *)

val id : t -> int

val is_busy : t -> bool

val is_alive : t -> bool

val is_hung : t -> bool

val kill : t -> unit
(** Failure injection: the host dies.  The endpoint is unregistered; any
    in-flight messages to it are dropped.  The master is {e not} notified
    (it discovers the death through its own monitoring). *)

val hang : t -> unit
(** Failure injection: the process wedges.  It stops computing,
    heartbeating, answering and retrying, but its endpoint stays
    registered, so to the rest of the grid it is indistinguishable from a
    live-but-unreachable process. *)

val set_slow_factor : t -> float -> unit
(** Failure injection: divide the client's per-slice compute budget by
    [factor] ([1.0] restores full speed; non-positive values are
    ignored).  Unlike {!kill}/{!hang} the client stays fully responsive —
    heartbeats, acks and protocol traffic are unaffected — so the
    slowdown is invisible to crash detection and must be caught by the
    health model's progress-rate signal. *)

val slow_factor : t -> float

val solver_stats : t -> Sat.Stats.t
(** Accumulated statistics over every subproblem this client worked on. *)

val busy_since : t -> float option

val mem_bytes_in_use : t -> int

val master_down : t -> bool
(** Whether this client currently believes the master is unreachable
    (retry exhaustion flipped it; any delivery from the master clears it). *)

val outbox_depth : t -> int
(** Messages currently parked in the outage outbox. *)

val outbox_peak : t -> int
(** Highest outbox depth ever reached. *)

val outbox_shed : t -> int
(** Buffered messages the outbox's watermark policy shed (always
    non-critical traffic — clause-share batches; control messages are
    unsheddable by construction). *)

val outbox_pressured : t -> bool
(** Whether the outbox is latched above its high watermark (releases at
    the low watermark) — a resource-pressure input to service brownout. *)

val dup_suppressed : t -> int
(** Foreign clauses dropped on ingestion because an identical clause
    (same sorted literal set) was already enqueued here. *)
