type entry = { sp : Subproblem.t; bytes : int; light : bool; mutable seal : int }

type t = {
  cnf : Sat.Cnf.t;
  store : (int, entry) Hashtbl.t;
  mutable saves : int;
  mutable discarded : int;
  obs : Obs.t;
  obs_on : bool;
  c_saves : Obs.Metrics.counter;
  c_restores : Obs.Metrics.counter;
  c_discarded : Obs.Metrics.counter;
  h_bytes : Obs.Metrics.histogram;
}

let create ?(obs = Obs.disabled) cnf =
  let m = Obs.metrics obs in
  {
    cnf;
    store = Hashtbl.create 16;
    saves = 0;
    discarded = 0;
    obs;
    obs_on = Obs.enabled obs;
    c_saves = Obs.Metrics.counter m "checkpoint.saves";
    c_restores = Obs.Metrics.counter m "checkpoint.restores";
    c_discarded = Obs.Metrics.counter m "checkpoint.discarded";
    h_bytes = Obs.Metrics.histogram m "checkpoint.bytes";
  }

let record_save t ~client ~light bytes =
  t.saves <- t.saves + 1;
  if t.obs_on then begin
    Obs.Metrics.incr t.c_saves;
    Obs.Metrics.observe t.h_bytes (float_of_int bytes);
    ignore
      (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"checkpoint"
         ~args:
           [
             ("client", Obs.Json.Int client);
             ("bytes", Obs.Json.Int bytes);
             ("light", Obs.Json.Bool light);
           ]
         "checkpoint.save")
  end

(* At-rest integrity seal over the snapshot's serialised form, taken at
   save time and re-checked on restore. *)
let seal_of sp = Integrity.crc32 (Subproblem.to_string sp)

let save t ~client ~mode sp =
  match mode with
  | Config.No_checkpoint -> 0
  | Config.Light ->
      (* only the root assignment is persisted; clauses come back from the
         problem file on restore *)
      let stripped = { sp with Subproblem.clauses = [] } in
      let bytes = Subproblem.bytes stripped in
      Hashtbl.replace t.store client
        { sp = stripped; bytes; light = true; seal = seal_of stripped };
      record_save t ~client ~light:true bytes;
      bytes
  | Config.Heavy ->
      let bytes = Subproblem.bytes sp in
      Hashtbl.replace t.store client { sp; bytes; light = false; seal = seal_of sp };
      record_save t ~client ~light:false bytes;
      bytes

let restore t ~client =
  match Hashtbl.find_opt t.store client with
  | None -> None
  | Some { sp; light; seal; _ } when seal = seal_of sp ->
      if t.obs_on then begin
        Obs.Metrics.incr t.c_restores;
        ignore
          (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"checkpoint"
             ~args:[ ("client", Obs.Json.Int client); ("light", Obs.Json.Bool light) ]
             "checkpoint.restore")
      end;
      if light then
        Some (Subproblem.prune { sp with Subproblem.clauses = Sat.Cnf.clauses t.cnf })
      else Some sp
  | Some _ ->
      (* the snapshot rotted at rest: restoring garbage could silently
         narrow the search space, so the checkpoint is discarded and the
         caller falls back to lineage re-derivation *)
      Hashtbl.remove t.store client;
      t.discarded <- t.discarded + 1;
      if t.obs_on then begin
        Obs.Metrics.incr t.c_discarded;
        ignore
          (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"checkpoint"
             ~args:[ ("client", Obs.Json.Int client) ]
             "checkpoint.corrupt_discarded")
      end;
      None

let corrupt_all t = Hashtbl.iter (fun _ e -> e.seal <- Integrity.corrupted e.seal) t.store

let drop t ~client = Hashtbl.remove t.store client

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.store 0

let saves t = t.saves

let discarded t = t.discarded
