type entry = { sp : Subproblem.t; bytes : int; light : bool }

type t = {
  cnf : Sat.Cnf.t;
  store : (int, entry) Hashtbl.t;
  mutable saves : int;
}

let create cnf = { cnf; store = Hashtbl.create 16; saves = 0 }

let save t ~client ~mode sp =
  match mode with
  | Config.No_checkpoint -> 0
  | Config.Light ->
      (* only the root assignment is persisted; clauses come back from the
         problem file on restore *)
      let stripped = { sp with Subproblem.clauses = [] } in
      let bytes = Subproblem.bytes stripped in
      Hashtbl.replace t.store client { sp = stripped; bytes; light = true };
      t.saves <- t.saves + 1;
      bytes
  | Config.Heavy ->
      let bytes = Subproblem.bytes sp in
      Hashtbl.replace t.store client { sp; bytes; light = false };
      t.saves <- t.saves + 1;
      bytes

let restore t ~client =
  match Hashtbl.find_opt t.store client with
  | None -> None
  | Some { sp; light; _ } ->
      if light then
        Some (Subproblem.prune { sp with Subproblem.clauses = Sat.Cnf.clauses t.cnf })
      else Some sp

let drop t ~client = Hashtbl.remove t.store client

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.store 0

let saves t = t.saves
