type entry = { sp : Subproblem.t; bytes : int; light : bool }

type t = {
  cnf : Sat.Cnf.t;
  store : (int, entry) Hashtbl.t;
  mutable saves : int;
  obs : Obs.t;
  obs_on : bool;
  c_saves : Obs.Metrics.counter;
  c_restores : Obs.Metrics.counter;
  h_bytes : Obs.Metrics.histogram;
}

let create ?(obs = Obs.disabled) cnf =
  let m = Obs.metrics obs in
  {
    cnf;
    store = Hashtbl.create 16;
    saves = 0;
    obs;
    obs_on = Obs.enabled obs;
    c_saves = Obs.Metrics.counter m "checkpoint.saves";
    c_restores = Obs.Metrics.counter m "checkpoint.restores";
    h_bytes = Obs.Metrics.histogram m "checkpoint.bytes";
  }

let record_save t ~client ~light bytes =
  t.saves <- t.saves + 1;
  if t.obs_on then begin
    Obs.Metrics.incr t.c_saves;
    Obs.Metrics.observe t.h_bytes (float_of_int bytes);
    ignore
      (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"checkpoint"
         ~args:
           [
             ("client", Obs.Json.Int client);
             ("bytes", Obs.Json.Int bytes);
             ("light", Obs.Json.Bool light);
           ]
         "checkpoint.save")
  end

let save t ~client ~mode sp =
  match mode with
  | Config.No_checkpoint -> 0
  | Config.Light ->
      (* only the root assignment is persisted; clauses come back from the
         problem file on restore *)
      let stripped = { sp with Subproblem.clauses = [] } in
      let bytes = Subproblem.bytes stripped in
      Hashtbl.replace t.store client { sp = stripped; bytes; light = true };
      record_save t ~client ~light:true bytes;
      bytes
  | Config.Heavy ->
      let bytes = Subproblem.bytes sp in
      Hashtbl.replace t.store client { sp; bytes; light = false };
      record_save t ~client ~light:false bytes;
      bytes

let restore t ~client =
  match Hashtbl.find_opt t.store client with
  | None -> None
  | Some { sp; light; _ } ->
      if t.obs_on then begin
        Obs.Metrics.incr t.c_restores;
        ignore
          (Obs.Span.instant (Obs.spans t.obs) ~tid:Obs.Span.master_tid ~cat:"checkpoint"
             ~args:[ ("client", Obs.Json.Int client); ("light", Obs.Json.Bool light) ]
             "checkpoint.restore")
      end;
      if light then
        Some (Subproblem.prune { sp with Subproblem.clauses = Sat.Cnf.clauses t.cnf })
      else Some sp

let drop t ~client = Hashtbl.remove t.store client

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.store 0

let saves t = t.saves
