(* Pool state, split out of [Master]: everything about the grid hosts a
   master (or the multi-tenant job service above it) schedules over —
   who exists, what lease state each host is in, its NWS forecast, and
   the reliable transport endpoint — and nothing about any particular
   solve run.  Per-run state (split tree, journal, live-problem and
   certification bookkeeping) stays in [Master]; the [lib/service]
   front-end leases disjoint host subsets from one shared inventory and
   hands each lease to a run as its own [Pool]. *)

module R = Grid.Resource

type rstate = Launching | Idle | Reserved | Busy | Dead

type host = {
  client : Client.t;
  resource : R.t;
  trace : Grid.Trace.t;
  nws : Grid.Nws.t;
  mutable rstate : rstate;
  mutable busy_since : float;
  mutable last_heard : float;  (* failure-detector lease anchor *)
  mutable fenced : bool;  (* a declared-dead host that spoke again was told to stop *)
  mutable pid : Protocol.pid option;  (* the subproblem this host is working on *)
}

type t = {
  hosts : (int, host) Hashtbl.t;
  mutable rel : Reliable.t option;
      (* the pool's reliable transport endpoint; set once, right after
         construction, and never [None] afterwards *)
  mutable health : Health.t option;
      (* host-health model; optional so the plain-master tests and
         baselines keep the pure NWS ranking *)
}

let create () = { hosts = Hashtbl.create 64; rel = None; health = None }

let add t ~sim ~client ~resource ~trace =
  Hashtbl.replace t.hosts resource.R.id
    {
      client;
      resource;
      trace;
      nws = Grid.Nws.create ();
      rstate = Launching;
      busy_since = 0.;
      last_heard = Grid.Sim.now sim;
      fenced = false;
      pid = None;
    }

let find t id = Hashtbl.find t.hosts id

let find_opt t id = Hashtbl.find_opt t.hosts id

let iter f t = Hashtbl.iter f t.hosts

let fold f t acc = Hashtbl.fold f t.hosts acc

let size t = Hashtbl.length t.hosts

let set_reliable t rel = t.rel <- Some rel

let reliable t = match t.rel with Some r -> r | None -> assert false

let set_health t health = t.health <- Some health

let health t = t.health

let health_score t id =
  match t.health with None -> 1.0 | Some h -> Health.score h ~host:id

let health_admissible t ~now id =
  match t.health with None -> true | Some h -> Health.admissible h ~host:id ~now

let busy_count t =
  Hashtbl.fold (fun _ h acc -> if h.rstate = Busy then acc + 1 else acc) t.hosts 0

let busy_ids t =
  Hashtbl.fold (fun id h acc -> if h.rstate = Busy then id :: acc else acc) t.hosts []
  |> List.sort compare

let reserved_ids t =
  Hashtbl.fold (fun id h acc -> if h.rstate = Reserved then id :: acc else acc) t.hosts []
  |> List.sort compare

let unreserve t id =
  match Hashtbl.find_opt t.hosts id with
  | Some h when h.rstate = Reserved -> h.rstate <- Idle
  | _ -> ()

(* The candidates the scheduler may hand new work to.  While the master is
   resyncing after a crash, "idle" hosts may in fact hold live work that
   has not reported back yet: offer nothing until reconciliation closes.
   Hosts whose circuit breaker is open (probation) are withheld entirely;
   admissible ones carry their health score into the rank. *)
let idle_candidates t ~resyncing ~now =
  if resyncing then []
  else
    Hashtbl.fold
      (fun id h acc ->
        if h.rstate = Idle && Client.is_alive h.client && health_admissible t ~now id then
          {
            Scheduler.resource = h.resource;
            forecast = Grid.Nws.forecast h.nws;
            health = health_score t id;
          }
          :: acc
        else acc)
      t.hosts []
    (* stable order so Random_pick and ties are reproducible *)
    |> List.sort (fun a b -> compare a.Scheduler.resource.R.id b.Scheduler.resource.R.id)

let rank t h =
  Scheduler.rank
    {
      Scheduler.resource = h.resource;
      forecast = Grid.Nws.forecast h.nws;
      health = health_score t h.resource.R.id;
    }

(* Tie-breaking mirrors the historical master code exactly (collect then
   scan, so ties resolve to the last host in table order): replayed runs
   must keep producing byte-identical timelines. *)
let weakest_busy t =
  let busy = Hashtbl.fold (fun _ h acc -> if h.rstate = Busy then h :: acc else acc) t.hosts [] in
  List.fold_left
    (fun acc h ->
      match acc with
      | None -> Some h
      | Some best -> if rank t h < rank t best then Some h else acc)
    None busy

(* Monitored hosts whose heartbeat lease ran out, ascending.  Dead and
   still-launching hosts are not monitored. *)
let expired t ~now ~timeout =
  Hashtbl.fold
    (fun id h acc ->
      match h.rstate with
      | (Idle | Reserved | Busy) when now -. h.last_heard > timeout -> id :: acc
      | _ -> acc)
    t.hosts []
  |> List.sort compare

let observe_nws t ~now =
  Hashtbl.iter
    (fun _ h ->
      if h.rstate <> Dead then Grid.Nws.observe h.nws (Grid.Trace.availability h.trace now))
    t.hosts

let aggregate_solver_stats t =
  let acc = Sat.Stats.create () in
  Hashtbl.iter (fun _ h -> Sat.Stats.add acc (Client.solver_stats h.client)) t.hosts;
  acc
