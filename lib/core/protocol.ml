type msg =
  | Register
  | Problem of { sp : Subproblem.t; sent_at : float }
  | Problem_received of { from : int; bytes : int; depth : int }
  | Split_request of [ `Memory | `Long_running ]
  | Split_partner of { partner : int }
  | Split_ok of { dst : int; bytes : int }
  | Split_failed
  | Shares of { clauses : Sat.Types.lit array list }
  | Share_relay of { origin : int; clauses : Sat.Types.lit array list }
  | Finished_unsat
  | Found_model of Sat.Model.t
  | Migrate_to of { target : int }
  | Stop

let control_bytes = 64

let shares_bytes clauses =
  List.fold_left (fun acc c -> acc + 16 + (8 * Array.length c)) control_bytes clauses

let model_bytes m = control_bytes + Sat.Model.nvars m

let size = function
  | Problem { sp; _ } -> Subproblem.bytes sp
  | Shares { clauses } | Share_relay { clauses; _ } -> shares_bytes clauses
  | Found_model m -> model_bytes m
  | Register | Problem_received _ | Split_request _ | Split_partner _ | Split_ok _ | Split_failed
  | Finished_unsat | Migrate_to _ | Stop ->
      control_bytes
