type pid = int * int

type msg =
  | Register
  | Problem of { pid : pid; sp : Subproblem.t; sent_at : float }
  | Problem_received of { pid : pid; from : int; bytes : int; path : Sat.Types.lit list }
  | Split_request of [ `Memory | `Long_running ]
  | Split_partner of { partner : int }
  | Split_ok of {
      pid : pid;
      dst : int;
      bytes : int;
      path : Sat.Types.lit list;
      donor_path : Sat.Types.lit list;
    }
  | Split_failed
  | Shares of { clauses : Sat.Types.lit array list }
  | Share_relay of { origin : int; clauses : Sat.Types.lit array list }
  | Finished_unsat of { pid : pid }
  | Found_model of Sat.Model.t
  | Migrate_to of { target : int }
  | Orphaned of { pid : pid; sp : Subproblem.t }
  | Resync_request
  | Resync of { pid : pid option; path : Sat.Types.lit list; busy_since : float }
  | Stop
  | Heartbeat
  | Ack of { mid : int }
  | Reliable of { mid : int; payload : msg }

let control_bytes = 64

let shares_bytes clauses =
  List.fold_left (fun acc c -> acc + 16 + (8 * Array.length c)) control_bytes clauses

let model_bytes m = control_bytes + Sat.Model.nvars m

let rec size = function
  | Problem { sp; _ } | Orphaned { sp; _ } -> Subproblem.bytes sp
  | Shares { clauses } | Share_relay { clauses; _ } -> shares_bytes clauses
  | Found_model m -> model_bytes m
  | Reliable { payload; _ } -> size payload
  | Problem_received { path; _ } | Resync { path; _ } -> control_bytes + (8 * List.length path)
  | Split_ok { path; donor_path; _ } ->
      control_bytes + (8 * (List.length path + List.length donor_path))
  | Register | Split_request _ | Split_partner _ | Split_failed | Finished_unsat _ | Migrate_to _
  | Resync_request | Stop | Heartbeat | Ack _ ->
      control_bytes

(* Clause shares are semantically safe to lose (a learned clause is only an
   accelerant), so they — like the liveness traffic itself — stay
   fire-and-forget.  Everything else is control state whose loss can wedge
   the run and must ride the ack/retry layer. *)
let critical = function
  | Register | Problem _ | Problem_received _ | Split_request _ | Split_partner _ | Split_ok _
  | Split_failed | Finished_unsat _ | Found_model _ | Migrate_to _ | Orphaned _ | Resync_request
  | Resync _ ->
      true
  | Shares _ | Share_relay _ | Stop | Heartbeat | Ack _ | Reliable _ -> false
