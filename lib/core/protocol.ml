type pid = int * int

(* The master's write-ahead journal entries are defined here (and
   re-exported by [Journal]) so the wire protocol can ship them to a
   hot-standby replica without a dependency cycle: [Journal] depends on
   [Protocol] for pids, and [Ship] must carry entries. *)
type journal_entry =
  | Registered of { client : int }
  | Assigned of { pid : pid; dst : int; path : Sat.Types.lit list }
  | Started of { pid : pid; client : int }
  | Granted of { requester : int; partner : int }
  | Split of {
      donor : int;
      donor_pid : pid;
      donor_path : Sat.Types.lit list;
      pid : pid;
      dst : int;
      path : Sat.Types.lit list;
    }
  | Refuted of { pid : pid }
  | Shared of { clauses : int }
  | Suspected of { client : int }
  | Died of { client : int }
  | Adopted of { pid : pid; client : int; path : Sat.Types.lit list }
  | Verdict of { answer : string }

type msg =
  | Register
  | Problem of { pid : pid; sp : Subproblem.t; sent_at : float }
  | Problem_received of { pid : pid; from : int; bytes : int; path : Sat.Types.lit list }
  | Split_request of [ `Memory | `Long_running ]
  | Split_partner of { partner : int }
  | Split_ok of {
      pid : pid;
      dst : int;
      bytes : int;
      path : Sat.Types.lit list;
      donor_path : Sat.Types.lit list;
    }
  | Split_failed
  | Shares of { clauses : Sat.Types.lit array list }
  | Share_relay of { origin : int; clauses : Sat.Types.lit array list }
  | Finished_unsat of { pid : pid; proof : string option }
  | Found_model of Sat.Model.t
  | Migrate_to of { target : int }
  | Cancel of { pid : pid }
  | Orphaned of { pid : pid; sp : Subproblem.t }
  | Resync_request
  | Resync of { pid : pid option; path : Sat.Types.lit list; busy_since : float }
  | Stop
  | Heartbeat of { decisions : int }
  | Ship of { seq : int; entries : journal_entry list; state_digest : string }
  | Ship_ack of { seq : int; applied : int; ok : bool }
  | Epoch_notice
  | Ack of { mid : int }
  | Nack of { mid : int }
  | Reliable of { mid : int; payload : msg }
  | Framed of { digest : int; epoch : int; payload : msg }
  | Corrupt_payload

let control_bytes = 64

let shares_bytes clauses =
  List.fold_left (fun acc c -> acc + 16 + (8 * Array.length c)) control_bytes clauses

let model_bytes m = control_bytes + Sat.Model.nvars m

let frame_bytes = 8

let entry_bytes = function
  | Assigned { path; _ } | Adopted { path; _ } -> 16 + (8 * List.length path)
  | Split { donor_path; path; _ } -> 16 + (8 * (List.length donor_path + List.length path))
  | Registered _ | Started _ | Granted _ | Refuted _ | Shared _ | Suspected _ | Died _
  | Verdict _ ->
      16

let rec size = function
  | Problem { sp; _ } | Orphaned { sp; _ } -> Subproblem.bytes sp
  | Shares { clauses } | Share_relay { clauses; _ } -> shares_bytes clauses
  | Found_model m -> model_bytes m
  | Reliable { payload; _ } -> size payload
  | Framed { payload; _ } -> frame_bytes + size payload
  | Problem_received { path; _ } | Resync { path; _ } -> control_bytes + (8 * List.length path)
  | Split_ok { path; donor_path; _ } ->
      control_bytes + (8 * (List.length path + List.length donor_path))
  | Finished_unsat { proof; _ } ->
      control_bytes + (match proof with None -> 0 | Some p -> String.length p)
  | Ship { entries; state_digest; _ } ->
      control_bytes
      + String.length state_digest
      + List.fold_left (fun acc e -> acc + entry_bytes e) 0 entries
  | Register | Split_request _ | Split_partner _ | Split_failed | Migrate_to _ | Cancel _
  | Resync_request | Stop | Heartbeat _ | Ship_ack _ | Epoch_notice | Ack _ | Nack _
  | Corrupt_payload ->
      control_bytes

(* Clause shares are semantically safe to lose (a learned clause is only an
   accelerant), so they — like the liveness traffic itself — stay
   fire-and-forget.  Everything else is control state whose loss can wedge
   the run and must ride the ack/retry layer. *)
let critical = function
  | Register | Problem _ | Problem_received _ | Split_request _ | Split_partner _ | Split_ok _
  | Split_failed | Finished_unsat _ | Found_model _ | Migrate_to _ | Cancel _ | Orphaned _
  | Resync_request | Resync _ | Ship _ ->
      true
  | Shares _ | Share_relay _ | Stop | Heartbeat _ | Ship_ack _ | Epoch_notice | Ack _ | Nack _
  | Reliable _ | Framed _ | Corrupt_payload ->
      false

(* ---------- integrity framing ---------- *)

(* Canonical rendering for digesting: every field that matters lands in the
   buffer, in a fixed order.  Not a wire format — just a deterministic byte
   string two ends can agree on. *)
let render_entry buf e =
  let pf fmt = Printf.bprintf buf fmt in
  let lits ls = List.iter (fun l -> pf "%d " (Sat.Types.to_int l)) ls in
  match e with
  | Registered { client } -> pf "jreg %d" client
  | Assigned { pid = o, n; dst; path } ->
      pf "jasn %d.%d %d " o n dst;
      lits path
  | Started { pid = o, n; client } -> pf "jsta %d.%d %d" o n client
  | Granted { requester; partner } -> pf "jgra %d %d" requester partner
  | Split { donor; donor_pid = a, b; donor_path; pid = o, n; dst; path } ->
      pf "jspl %d %d.%d " donor a b;
      lits donor_path;
      pf "-> %d.%d %d " o n dst;
      lits path
  | Refuted { pid = o, n } -> pf "jref %d.%d" o n
  | Shared { clauses } -> pf "jshr %d" clauses
  | Suspected { client } -> pf "jsus %d" client
  | Died { client } -> pf "jdie %d" client
  | Adopted { pid = o, n; client; path } ->
      pf "jado %d.%d %d " o n client;
      lits path
  | Verdict { answer } -> pf "jver %s" answer

let rec render buf msg =
  let pf fmt = Printf.bprintf buf fmt in
  let lits ls = List.iter (fun l -> pf "%d " (Sat.Types.to_int l)) ls in
  let clauses cs =
    List.iter
      (fun c ->
        Array.iter (fun l -> pf "%d " (Sat.Types.to_int l)) c;
        Buffer.add_char buf '/')
      cs
  in
  match msg with
  | Register -> pf "register"
  | Problem { pid = o, n; sp; sent_at } ->
      pf "problem %d.%d %h " o n sent_at;
      Buffer.add_string buf (Subproblem.to_string sp)
  | Problem_received { pid = o, n; from; bytes; path } ->
      pf "received %d.%d %d %d " o n from bytes;
      lits path
  | Split_request `Memory -> pf "split? mem"
  | Split_request `Long_running -> pf "split? long"
  | Split_partner { partner } -> pf "partner %d" partner
  | Split_ok { pid = o, n; dst; bytes; path; donor_path } ->
      pf "split_ok %d.%d %d %d p " o n dst bytes;
      lits path;
      pf "d ";
      lits donor_path
  | Split_failed -> pf "split_failed"
  | Shares { clauses = cs } ->
      pf "shares ";
      clauses cs
  | Share_relay { origin; clauses = cs } ->
      pf "relay %d " origin;
      clauses cs
  | Finished_unsat { pid = o, n; proof } ->
      pf "unsat %d.%d " o n;
      Option.iter (Buffer.add_string buf) proof
  | Found_model m -> List.iter (pf "%d ") (Sat.Model.true_literals m)
  | Migrate_to { target } -> pf "migrate %d" target
  | Cancel { pid = o, n } -> pf "cancel %d.%d" o n
  | Orphaned { pid = o, n; sp } ->
      pf "orphaned %d.%d " o n;
      Buffer.add_string buf (Subproblem.to_string sp)
  | Resync_request -> pf "resync?"
  | Resync { pid; path; busy_since } ->
      (match pid with None -> pf "resync idle " | Some (o, n) -> pf "resync %d.%d " o n);
      pf "%h " busy_since;
      lits path
  | Stop -> pf "stop"
  | Heartbeat { decisions } -> pf "hb %d" decisions
  | Ship { seq; entries; state_digest } ->
      pf "ship %d %s " seq state_digest;
      List.iter
        (fun e ->
          render_entry buf e;
          Buffer.add_char buf '/')
        entries
  | Ship_ack { seq; applied; ok } -> pf "ship_ack %d %d %b" seq applied ok
  | Epoch_notice -> pf "epoch!"
  | Ack { mid } -> pf "ack %d" mid
  | Nack { mid } -> pf "nack %d" mid
  | Reliable { mid; payload } ->
      pf "rel %d " mid;
      render buf payload
  | Framed { digest; epoch; payload } ->
      pf "frame %d @%d " digest epoch;
      render buf payload
  | Corrupt_payload -> pf "garbage"

let digest msg =
  let buf = Buffer.create 256 in
  render buf msg;
  Integrity.fnv1a (Buffer.contents buf)

(* The epoch is a header field, not part of the digested payload: like a
   reliable envelope's mid it survives in-flight corruption (it carries
   its own header CRC in any real encoding), so receivers can fence a
   stale sender even when the payload is trash. *)
let frame ?(epoch = 0) msg = Framed { digest = digest msg; epoch; payload = msg }

let epoch_of = function Framed { epoch; _ } -> epoch | _ -> 0

let verify = function
  | Framed { digest = d; payload; _ } ->
      if digest payload = d then `Ok payload else `Corrupt payload
  | msg -> `Ok msg

(* In-flight bit rot: the payload content becomes unreadable trash, while
   the small fixed-position headers — the frame digest and a reliable
   envelope's mid — survive (they carry their own header CRC in any real
   encoding).  That is exactly the shape that lets a receiver detect the
   damage and name the envelope to NACK. *)
let corrupt msg =
  let garble = function
    | Reliable { mid; payload = _ } -> Reliable { mid; payload = Corrupt_payload }
    | _ -> Corrupt_payload
  in
  match msg with
  | Framed { digest; epoch; payload } -> Framed { digest; epoch; payload = garble payload }
  | m -> garble m
