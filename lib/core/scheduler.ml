type candidate = { resource : Grid.Resource.t; forecast : float; health : float }

(* Rank = forecast effective speed, weighted by a slowly growing memory
   factor: a host with four times the memory ranks twice as high at equal
   speed.  Clients are memory-bound as often as CPU-bound (Section 1).
   The health multiplier sits beside the forecast: both are observations
   of how much of the advertised capacity is actually being delivered —
   NWS for the machine, the health model for the solver process. *)
let rank c =
  let mem_gb = float_of_int c.resource.Grid.Resource.mem_bytes /. (1024. *. 1024. *. 1024.) in
  c.resource.Grid.Resource.speed *. c.forecast *. c.health
  *. sqrt (Float.max 0.25 mem_gb)

let pick policy ~rng candidates =
  match candidates with
  | [] -> None
  | first :: _ -> (
      match policy with
      | Config.Nws_rank ->
          Some
            (List.fold_left
               (fun best c -> if rank c > rank best then c else best)
               first candidates)
      | Config.Random_pick ->
          Some (List.nth candidates (Random.State.int rng (List.length candidates)))
      | Config.First_fit ->
          Some
            (List.fold_left
               (fun best c ->
                 if c.resource.Grid.Resource.id < best.resource.Grid.Resource.id then c else best)
               first candidates))

(* Longest-running-first (earliest busy-since wins).  Two clients that
   became busy at the same instant — common right after a mass recovery
   re-homes a batch of subproblems in one event — tie-break on the lower
   client id, not on backlog insertion order, so the choice is a function
   of the entries alone. *)
let pick_backlog entries =
  match entries with
  | [] -> None
  | (c0, t0) :: rest ->
      let client, _ =
        List.fold_left
          (fun (bc, bt) (c, t) -> if t < bt || (t = bt && c < bc) then (c, t) else (bc, bt))
          (c0, t0) rest
      in
      Some client

(* Exactly 2x counts: the paper's bar is "at least twice the forecast
   rank", so the boundary itself migrates (>=, not >). *)
let should_migrate ~enabled ~busy_rank ~idle_rank = enabled && idle_rank >= 2. *. busy_rank
