type kind =
  | Client_started of int
  | Problem_assigned of { src : int; dst : int; bytes : int; depth : int }
  | Split_requested of { client : int; reason : [ `Memory | `Long_running ] }
  | Split_granted of { client : int; partner : int }
  | Split_denied of { client : int }
  | Split_completed of { src : int; dst : int; bytes : int }
  | Migration of { src : int; dst : int; bytes : int }
  | Shares_broadcast of { origin : int; count : int; recipients : int }
  | Client_finished_unsat of int
  | Client_found_model of int
  | Model_verified of bool
  | Client_killed of int
  | Host_crashed of int
  | Host_hung of int
  | Client_suspected of { client : int }
  | False_suspicion of { client : int }
  | Message_retried of { src : int; dst : int; attempt : int }
  | Message_given_up of { src : int; dst : int }
  | Recovery_requeued of { client : int }
  | Orphan_returned of { donor : int }
  | Retries_exhausted of { src : int; dst : int; attempts : int }
  | Checkpoint_saved of { client : int; bytes : int }
  | Recovered_from_checkpoint of { client : int; onto : int }
  | Rederived_from_lineage of { holder : int option; depth : int }
  | Master_crashed
  | Master_restarted
  | Master_outage_detected of { client : int }
  | Client_resynced of { client : int; busy : bool }
  | Batch_job_submitted of { nodes : int }
  | Batch_job_started of { nodes : int }
  | Batch_job_cancelled
  | Corrupt_message_detected of { receiver : int; nacked : bool }
  | Storage_corrupted of { journal_records : int; checkpoints : bool }
  | Unsat_fragment_certified of { pid : Protocol.pid; client : int; steps : int }
  | Certification_failed of { pid : Protocol.pid; client : int; reason : string }
  | Client_quarantined of { client : int }
  | Host_slowed of { host : int; factor : float }
  | Hedge_launched of { pid : Protocol.pid; primary : int; backup : int }
  | Hedge_cancelled of { pid : Protocol.pid; loser : int }
  | Host_probation of { host : int; until_t : float }
  | Host_readmitted of { host : int }
  | Journal_shipped of { seq : int; entries : int }
  | Ship_applied of { seq : int; applied : int; ok : bool }
  | Replication_diverged of { seq : int }
  | Standby_promoted of { epoch : int }
  | Stale_epoch_rejected of { receiver : int; src : int; epoch : int; current : int }
  | Stale_primary_fenced of { epoch : int }
  | Shares_shed of { origin : int; clauses : int; bytes : int }
  | Outbox_shed of { client : int; shed : int }
  | Forced_compaction of { occupancy : int; quota : int }
  | Journal_degraded of { occupancy : int; quota : int }
  | Journal_recovered of { occupancy : int; quota : int }
  | Terminated of string

type t = { time : float; kind : kind }

let make time kind = { time; kind }

let pp_kind ppf = function
  | Client_started id -> Format.fprintf ppf "client %d started" id
  | Problem_assigned { src; dst; bytes; depth } ->
      Format.fprintf ppf "problem (depth %d, %d bytes) sent %d -> %d" depth bytes src dst
  | Split_requested { client; reason } ->
      Format.fprintf ppf "client %d requests split (%s)" client
        (match reason with `Memory -> "memory pressure" | `Long_running -> "long-running")
  | Split_granted { client; partner } ->
      Format.fprintf ppf "master pairs client %d with idle client %d" client partner
  | Split_denied { client } -> Format.fprintf ppf "no idle resource for client %d (backlogged)" client
  | Split_completed { src; dst; bytes } ->
      Format.fprintf ppf "split completed: %d bytes moved %d -> %d" bytes src dst
  | Migration { src; dst; bytes } ->
      Format.fprintf ppf "migration: %d bytes moved %d -> %d" bytes src dst
  | Shares_broadcast { origin; count; recipients } ->
      Format.fprintf ppf "client %d shared %d clauses with %d peers" origin count recipients
  | Client_finished_unsat id -> Format.fprintf ppf "client %d: subproblem unsatisfiable" id
  | Client_found_model id -> Format.fprintf ppf "client %d: found a satisfying assignment" id
  | Model_verified ok -> Format.fprintf ppf "master verified model: %b" ok
  | Client_killed id -> Format.fprintf ppf "client %d killed" id
  | Host_crashed id -> Format.fprintf ppf "fault: host %d crashed (silently)" id
  | Host_hung id -> Format.fprintf ppf "fault: host %d hung (unresponsive)" id
  | Client_suspected { client } ->
      Format.fprintf ppf "client %d suspected dead (lease expired)" client
  | False_suspicion { client } ->
      Format.fprintf ppf "client %d was falsely suspected; fencing it" client
  | Message_retried { src; dst; attempt } ->
      Format.fprintf ppf "message %d -> %d retried (attempt %d)" src dst attempt
  | Message_given_up { src; dst } ->
      Format.fprintf ppf "message %d -> %d abandoned after max retries" src dst
  | Recovery_requeued { client } ->
      Format.fprintf ppf "no idle host: client %d's work queued for recovery" client
  | Orphan_returned { donor } ->
      Format.fprintf ppf "client %d returned an orphaned subproblem (handoff failed)" donor
  | Retries_exhausted { src; dst; attempts } ->
      Format.fprintf ppf "retry budget %d -> %d exhausted after %d attempts" src dst attempts
  | Checkpoint_saved { client; bytes } ->
      Format.fprintf ppf "checkpoint of client %d saved (%d bytes)" client bytes
  | Recovered_from_checkpoint { client; onto } ->
      Format.fprintf ppf "client %d's work recovered onto client %d" client onto
  | Rederived_from_lineage { holder; depth } ->
      Format.fprintf ppf "lost subproblem (depth %d%s) re-derived from its split lineage" depth
        (match holder with Some h -> Printf.sprintf ", last held by %d" h | None -> "")
  | Master_crashed -> Format.fprintf ppf "fault: master crashed (volatile state lost)"
  | Master_restarted -> Format.fprintf ppf "master restarted; journal replayed, resyncing clients"
  | Master_outage_detected { client } ->
      Format.fprintf ppf "client %d detected the master outage (retries exhausted); buffering" client
  | Client_resynced { client; busy } ->
      Format.fprintf ppf "client %d resynced (%s)" client (if busy then "busy" else "idle")
  | Batch_job_submitted { nodes } -> Format.fprintf ppf "batch job submitted (%d nodes)" nodes
  | Batch_job_started { nodes } -> Format.fprintf ppf "batch job started (%d nodes)" nodes
  | Batch_job_cancelled -> Format.fprintf ppf "batch job cancelled"
  | Corrupt_message_detected { receiver; nacked } ->
      Format.fprintf ppf "endpoint %d received a corrupt payload%s" receiver
        (if nacked then " (nacked for immediate retransmit)" else " (dropped)")
  | Storage_corrupted { journal_records; checkpoints } ->
      Format.fprintf ppf "fault: stable storage rotted (%d journal records%s)" journal_records
        (if checkpoints then ", all checkpoints" else "")
  | Unsat_fragment_certified { pid = a, b; client; steps } ->
      Format.fprintf ppf "UNSAT fragment %d.%d from client %d certified (%d proof steps)" a b
        client steps
  | Certification_failed { pid = a, b; client; reason } ->
      Format.fprintf ppf "certification of %d.%d from client %d FAILED: %s" a b client reason
  | Client_quarantined { client } ->
      Format.fprintf ppf "client %d quarantined (unverifiable answer); its work re-derived" client
  | Host_slowed { host; factor } ->
      if factor = 1.0 then Format.fprintf ppf "fault: host %d restored to full speed" host
      else Format.fprintf ppf "fault: host %d slowed %gx" host factor
  | Hedge_launched { pid = a, b; primary; backup } ->
      Format.fprintf ppf "subproblem %d.%d on client %d hedged onto client %d" a b primary backup
  | Hedge_cancelled { pid = a, b; loser } ->
      Format.fprintf ppf "hedge %d.%d resolved; losing copy on client %d cancelled" a b loser
  | Host_probation { host; until_t } ->
      Format.fprintf ppf "host %d enters probation until t=%.1f (circuit breaker open)" host until_t
  | Host_readmitted { host } ->
      Format.fprintf ppf "host %d re-admitted (canary subproblem succeeded)" host
  | Journal_shipped { seq; entries } ->
      Format.fprintf ppf "journal batch #%d shipped to the standby (%d entries)" seq entries
  | Ship_applied { seq; applied; ok } ->
      Format.fprintf ppf "standby applied batch #%d (%d entries total, digest %s)" seq applied
        (if ok then "ok" else "MISMATCH")
  | Replication_diverged { seq } ->
      Format.fprintf ppf "standby replay digest DIVERGED from the primary's at batch #%d" seq
  | Standby_promoted { epoch } ->
      Format.fprintf ppf "standby promoted to primary (epoch %d); resyncing clients" epoch
  | Stale_epoch_rejected { receiver; src; epoch; current } ->
      Format.fprintf ppf "endpoint %d rejected a frame from %d at stale epoch %d (current %d)"
        receiver src epoch current
  | Stale_primary_fenced { epoch } ->
      Format.fprintf ppf "superseded primary (epoch %d) saw a newer epoch and fenced itself" epoch
  | Shares_shed { origin; clauses; bytes } ->
      Format.fprintf ppf "share budget: %d clauses (%d bytes) from client %d shed" clauses bytes
        origin
  | Outbox_shed { client; shed } ->
      Format.fprintf ppf "client %d outbox hit its watermark: %d share batches shed" client shed
  | Forced_compaction { occupancy; quota } ->
      Format.fprintf ppf "journal over quota (%d > %d bytes): emergency compaction forced"
        occupancy quota
  | Journal_degraded { occupancy; quota } ->
      Format.fprintf ppf
        "journal DEGRADED: still %d bytes over a %d-byte quota after compaction; replica \
         shipping paused"
        occupancy quota
  | Journal_recovered { occupancy; quota } ->
      Format.fprintf ppf "journal recovered from degraded mode (%d bytes%s)" occupancy
        (if quota = 0 then ", quota lifted" else Printf.sprintf " under a %d-byte quota" quota)
  | Terminated why -> Format.fprintf ppf "terminated: %s" why

let pp ppf t = Format.fprintf ppf "[%10.1f] %a" t.time pp_kind t.kind

(* Compact structured view for the flight recorder: a stable snake_case
   name plus the identifying arguments, cheap enough to build on every
   logged event when the recorder is live. *)
let flight_view kind : string * (string * Obs.Json.t) list =
  let i n v = (n, Obs.Json.Int v) in
  let f n v = (n, Obs.Json.Float v) in
  let s n v = (n, Obs.Json.String v) in
  let b n v = (n, Obs.Json.Bool v) in
  let pid (a, p) = [ i "pid_src" a; i "pid_seq" p ] in
  match kind with
  | Client_started id -> ("client_started", [ i "client" id ])
  | Problem_assigned { src; dst; bytes; depth } ->
      ("problem_assigned", [ i "src" src; i "dst" dst; i "bytes" bytes; i "depth" depth ])
  | Split_requested { client; reason } ->
      ( "split_requested",
        [ i "client" client; s "reason" (match reason with `Memory -> "memory" | `Long_running -> "long_running") ] )
  | Split_granted { client; partner } -> ("split_granted", [ i "client" client; i "partner" partner ])
  | Split_denied { client } -> ("split_denied", [ i "client" client ])
  | Split_completed { src; dst; bytes } ->
      ("split_completed", [ i "src" src; i "dst" dst; i "bytes" bytes ])
  | Migration { src; dst; bytes } -> ("migration", [ i "src" src; i "dst" dst; i "bytes" bytes ])
  | Shares_broadcast { origin; count; recipients } ->
      ("shares_broadcast", [ i "origin" origin; i "count" count; i "recipients" recipients ])
  | Client_finished_unsat id -> ("client_finished_unsat", [ i "client" id ])
  | Client_found_model id -> ("client_found_model", [ i "client" id ])
  | Model_verified ok -> ("model_verified", [ b "ok" ok ])
  | Client_killed id -> ("client_killed", [ i "client" id ])
  | Host_crashed id -> ("host_crashed", [ i "host" id ])
  | Host_hung id -> ("host_hung", [ i "host" id ])
  | Client_suspected { client } -> ("client_suspected", [ i "client" client ])
  | False_suspicion { client } -> ("false_suspicion", [ i "client" client ])
  | Message_retried { src; dst; attempt } ->
      ("message_retried", [ i "src" src; i "dst" dst; i "attempt" attempt ])
  | Message_given_up { src; dst } -> ("message_given_up", [ i "src" src; i "dst" dst ])
  | Recovery_requeued { client } -> ("recovery_requeued", [ i "client" client ])
  | Orphan_returned { donor } -> ("orphan_returned", [ i "donor" donor ])
  | Retries_exhausted { src; dst; attempts } ->
      ("retries_exhausted", [ i "src" src; i "dst" dst; i "attempts" attempts ])
  | Checkpoint_saved { client; bytes } -> ("checkpoint_saved", [ i "client" client; i "bytes" bytes ])
  | Recovered_from_checkpoint { client; onto } ->
      ("recovered_from_checkpoint", [ i "client" client; i "onto" onto ])
  | Rederived_from_lineage { holder; depth } ->
      ( "rederived_from_lineage",
        (match holder with Some h -> [ i "holder" h ] | None -> []) @ [ i "depth" depth ] )
  | Master_crashed -> ("master_crashed", [])
  | Master_restarted -> ("master_restarted", [])
  | Master_outage_detected { client } -> ("master_outage_detected", [ i "client" client ])
  | Client_resynced { client; busy } -> ("client_resynced", [ i "client" client; b "busy" busy ])
  | Batch_job_submitted { nodes } -> ("batch_job_submitted", [ i "nodes" nodes ])
  | Batch_job_started { nodes } -> ("batch_job_started", [ i "nodes" nodes ])
  | Batch_job_cancelled -> ("batch_job_cancelled", [])
  | Corrupt_message_detected { receiver; nacked } ->
      ("corrupt_message_detected", [ i "receiver" receiver; b "nacked" nacked ])
  | Storage_corrupted { journal_records; checkpoints } ->
      ("storage_corrupted", [ i "journal_records" journal_records; b "checkpoints" checkpoints ])
  | Unsat_fragment_certified { pid = p; client; steps } ->
      ("unsat_fragment_certified", pid p @ [ i "client" client; i "steps" steps ])
  | Certification_failed { pid = p; client; reason } ->
      ("certification_failed", pid p @ [ i "client" client; s "reason" reason ])
  | Client_quarantined { client } -> ("client_quarantined", [ i "client" client ])
  | Host_slowed { host; factor } -> ("host_slowed", [ i "host" host; f "factor" factor ])
  | Hedge_launched { pid = p; primary; backup } ->
      ("hedge_launched", pid p @ [ i "primary" primary; i "backup" backup ])
  | Hedge_cancelled { pid = p; loser } -> ("hedge_cancelled", pid p @ [ i "loser" loser ])
  | Host_probation { host; until_t } -> ("host_probation", [ i "host" host; f "until" until_t ])
  | Host_readmitted { host } -> ("host_readmitted", [ i "host" host ])
  | Journal_shipped { seq; entries } -> ("journal_shipped", [ i "seq" seq; i "entries" entries ])
  | Ship_applied { seq; applied; ok } ->
      ("ship_applied", [ i "seq" seq; i "applied" applied; b "ok" ok ])
  | Replication_diverged { seq } -> ("replication_diverged", [ i "seq" seq ])
  | Standby_promoted { epoch } -> ("standby_promoted", [ i "epoch" epoch ])
  | Stale_epoch_rejected { receiver; src; epoch; current } ->
      ( "stale_epoch_rejected",
        [ i "receiver" receiver; i "src" src; i "epoch" epoch; i "current" current ] )
  | Stale_primary_fenced { epoch } -> ("stale_primary_fenced", [ i "epoch" epoch ])
  | Shares_shed { origin; clauses; bytes } ->
      ("shares_shed", [ i "origin" origin; i "clauses" clauses; i "bytes" bytes ])
  | Outbox_shed { client; shed } -> ("outbox_shed", [ i "client" client; i "shed" shed ])
  | Forced_compaction { occupancy; quota } ->
      ("forced_compaction", [ i "occupancy" occupancy; i "quota" quota ])
  | Journal_degraded { occupancy; quota } ->
      ("journal_degraded", [ i "occupancy" occupancy; i "quota" quota ])
  | Journal_recovered { occupancy; quota } ->
      ("journal_recovered", [ i "occupancy" occupancy; i "quota" quota ])
  | Terminated why -> ("terminated", [ s "why" why ])
