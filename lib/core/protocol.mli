(** Wire protocol between the GridSAT master and its clients.

    Mirrors the paper's message flows: the five-message split sequence of
    Figure 3 ([Split_request] / [Split_partner] / peer-to-peer [Problem] /
    [Problem_received] / [Split_ok]), clause-share broadcasts, result
    reporting, and the master's control directives.

    On top of the paper's flows the protocol carries the failure-handling
    machinery: every live subproblem has a {!pid} so duplicated or
    re-homed copies cannot corrupt the master's accounting, clients
    [Heartbeat] so the master's lease-based detector can declare silent
    hosts dead, and critical control messages travel inside a {!Reliable}
    envelope that is [Ack]ed, deduplicated, and retried with bounded
    exponential backoff.  Clause [Shares] stay fire-and-forget: losing a
    learned clause is semantically safe. *)

type pid = int * int
(** Identity of a live subproblem: [(origin client, local counter)].  The
    initial problem is [(0, 0)]; a split branch is stamped by its donor.
    Pids make re-delivery and recovery idempotent at the master. *)

(** The master's write-ahead journal entries.  Defined here — and
    re-exported verbatim by {!Journal} — so {!Ship} can carry them to a
    hot-standby replica without a [Journal]/[Protocol] dependency cycle.
    See {!Journal} for the per-constructor semantics. *)
type journal_entry =
  | Registered of { client : int }
  | Assigned of { pid : pid; dst : int; path : Sat.Types.lit list }
  | Started of { pid : pid; client : int }
  | Granted of { requester : int; partner : int }
  | Split of {
      donor : int;
      donor_pid : pid;
      donor_path : Sat.Types.lit list;
      pid : pid;
      dst : int;
      path : Sat.Types.lit list;
    }
  | Refuted of { pid : pid }
  | Shared of { clauses : int }
  | Suspected of { client : int }
  | Died of { client : int }
  | Adopted of { pid : pid; client : int; path : Sat.Types.lit list }
  | Verdict of { answer : string }

type msg =
  | Register  (** client -> master: the empty client is up *)
  | Problem of { pid : pid; sp : Subproblem.t; sent_at : float }
      (** problem transfer — master -> first client, or peer -> peer after a
          split/migration.  This is the large message (Figure 3, message 3). *)
  | Problem_received of { pid : pid; from : int; bytes : int; path : Sat.Types.lit list }
      (** receiver -> master (Figure 3, message 4): who sent the problem,
          its size, and its guiding-path lineage (journaled so the branch
          stays re-derivable even before any checkpoint exists) *)
  | Split_request of [ `Memory | `Long_running ]  (** client -> master (message 1) *)
  | Split_partner of { partner : int }  (** master -> client (message 2) *)
  | Split_ok of {
      pid : pid;
      dst : int;
      bytes : int;
      path : Sat.Types.lit list;
      donor_path : Sat.Types.lit list;
    }
      (** donor -> master (message 5); [pid] stamps the handed-off branch.
          Carries both sides' guiding-path lineages — the new branch's
          [path] and the donor's grown [donor_path] — so the master can
          journal them and later re-derive either branch from the original
          CNF alone. *)
  | Split_failed  (** donor -> master: nothing to split *)
  | Shares of { clauses : Sat.Types.lit array list }  (** client -> master *)
  | Share_relay of { origin : int; clauses : Sat.Types.lit array list }
      (** master -> every other active client *)
  | Finished_unsat of { pid : pid; proof : string option }
      (** client -> master: subproblem exhausted.  In certified runs
          [proof] carries the client's DRUP fragment (standard text
          format); the master RUP-checks it against the original formula
          under the branch's journaled guiding path before believing it. *)
  | Found_model of Sat.Model.t  (** client -> master: candidate assignment *)
  | Migrate_to of { target : int }  (** master -> client directive *)
  | Cancel of { pid : pid }
      (** master -> client: stop working on [pid] and report idle.  Sent to
          the losing copy of a hedged subproblem once the winner's result
          is in; a client no longer holding [pid] ignores it, so late or
          re-delivered cancels are harmless. *)
  | Orphaned of { pid : pid; sp : Subproblem.t }
      (** donor -> master: a peer-to-peer handoff was given up on after
          exhausting retries; the branch comes back for re-homing so a dead
          partner cannot silently swallow part of the search space *)
  | Resync_request
      (** restarted master -> every known client: report what you are
          doing so the replayed journal can be reconciled with reality *)
  | Resync of { pid : pid option; path : Sat.Types.lit list; busy_since : float }
      (** client -> restarted master: [Some pid] with the current
          guiding-path lineage if busy (the master adopts the work),
          [None] if idle *)
  | Stop  (** master -> everyone: run is over *)
  | Heartbeat of { decisions : int }
      (** client -> master liveness beacon, fire-and-forget.  Carries the
          client's cumulative solver decision count so the master's health
          model can derive a progress rate: a straggler that heartbeats on
          time but decides slowly is visible here and nowhere else. *)
  | Ship of { seq : int; entries : journal_entry list; state_digest : string }
      (** primary master -> hot standby: journal records appended since the
          last shipment, numbered by the batch's first entry index [seq],
          plus the primary's deterministic replay digest after the batch —
          the standby applies the entries to its shadow journal and checks
          its own replay digest against [state_digest] (continuous
          consistency verification).  Critical: rides the reliable
          channel. *)
  | Ship_ack of { seq : int; applied : int; ok : bool }
      (** standby -> primary: batch [seq] applied; [applied] is the
          standby's total applied-entry count (the primary derives the
          replication-lag gauge from it) and [ok] reports whether the
          shadow replay digest matched *)
  | Epoch_notice
      (** receiver -> stale sender: your frame carried an epoch below
          mine.  Tells a fenced zombie primary that it has been superseded
          (the current epoch rides in the notice's own frame header). *)
  | Ack of { mid : int }  (** receiver -> sender: reliable envelope received *)
  | Nack of { mid : int }
      (** receiver -> sender: reliable envelope [mid] arrived corrupt;
          retransmit now instead of waiting out the backoff timer *)
  | Reliable of { mid : int; payload : msg }
      (** retry envelope for critical control messages *)
  | Framed of { digest : int; epoch : int; payload : msg }
      (** integrity frame sealing every message put on the wire when
          [Config.integrity_checks] is on; receivers verify with {!verify}
          and refuse payloads whose digest does not match.  [epoch] is the
          sender's master epoch (0 for the whole run unless a standby was
          promoted): receivers reject frames from stale epochs, which
          structurally fences zombie primaries after a partition heals. *)
  | Corrupt_payload
      (** what a garbled message reads as at the receiver: unparseable
          trash.  Never sent deliberately — produced by {!corrupt} under
          fault injection. *)

val control_bytes : int
(** Nominal size of a control message. *)

val shares_bytes : Sat.Types.lit array list -> int
(** Serialised size of a clause-share batch. *)

val entry_bytes : journal_entry -> int
(** Serialised size of one journal record — the unit of the journal's
    disk-quota accounting and of [Ship] batch sizing. *)

val model_bytes : Sat.Model.t -> int

val size : msg -> int
(** Size charged to the network for a message.  A [Reliable] envelope
    costs what its payload costs. *)

val critical : msg -> bool
(** Whether a message must be sent through the reliable (ack/retry)
    channel.  [Shares]/[Share_relay], [Heartbeat], [Stop] and the
    envelope machinery itself are not critical. *)

(** {1 Integrity framing} *)

val digest : msg -> int
(** FNV-1a digest of the message's canonical rendering (every semantic
    field, in a fixed order).  Deterministic across runs. *)

val frame : ?epoch:int -> msg -> msg
(** Seals a message for the wire:
    [Framed { digest = digest msg; epoch; payload = msg }].  [epoch]
    (default 0) is a header field alongside the digest — it is {e not}
    digested, so (like a reliable envelope's mid) it survives in-flight
    payload corruption and a receiver can fence a stale sender even when
    the payload is trash. *)

val epoch_of : msg -> int
(** The epoch carried in a message's frame header (0 for unframed
    messages). *)

val verify : msg -> [ `Ok of msg | `Corrupt of msg ]
(** Checks and strips a {!frame}.  Unframed messages pass through as
    [`Ok] (framing off, or pre-integrity traffic); a framed payload whose
    digest does not match comes back as [`Corrupt payload] so the receiver
    can still read surviving envelope headers (to NACK a [Reliable] mid). *)

val corrupt : msg -> msg
(** Fault injection's payload transform ({!Grid.Everyware.set_corrupt}):
    garbles the message content to {!Corrupt_payload} while the framing
    digest and a reliable envelope's [mid] — fixed-position headers with
    their own CRC in any real encoding — survive readable. *)
