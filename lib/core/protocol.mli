(** Wire protocol between the GridSAT master and its clients.

    Mirrors the paper's message flows: the five-message split sequence of
    Figure 3 ([Split_request] / [Split_partner] / peer-to-peer [Problem] /
    [Problem_received] / [Split_ok]), clause-share broadcasts, result
    reporting, and the master's control directives. *)

type msg =
  | Register  (** client -> master: the empty client is up *)
  | Problem of { sp : Subproblem.t; sent_at : float }
      (** problem transfer — master -> first client, or peer -> peer after a
          split/migration.  This is the large message (Figure 3, message 3). *)
  | Problem_received of { from : int; bytes : int; depth : int }
      (** receiver -> master (Figure 3, message 4): who sent the problem,
          its size, and its guiding-path depth *)
  | Split_request of [ `Memory | `Long_running ]  (** client -> master (message 1) *)
  | Split_partner of { partner : int }  (** master -> client (message 2) *)
  | Split_ok of { dst : int; bytes : int }  (** donor -> master (message 5) *)
  | Split_failed  (** donor -> master: nothing to split *)
  | Shares of { clauses : Sat.Types.lit array list }  (** client -> master *)
  | Share_relay of { origin : int; clauses : Sat.Types.lit array list }
      (** master -> every other active client *)
  | Finished_unsat  (** client -> master: subproblem exhausted *)
  | Found_model of Sat.Model.t  (** client -> master: candidate assignment *)
  | Migrate_to of { target : int }  (** master -> client directive *)
  | Stop  (** master -> everyone: run is over *)

val control_bytes : int
(** Nominal size of a control message. *)

val shares_bytes : Sat.Types.lit array list -> int
(** Serialised size of a clause-share batch. *)

val model_bytes : Sat.Model.t -> int

val size : msg -> int
(** Size charged to the network for a message. *)
