(** The aggregated run report: one JSON document merging every layer of
    a finished run — the metrics registry, the span tree, the run-level
    counters from {!Master.result}, the aggregated {!Sat.Stats}, and the
    {!Timeline} busy curve.  [gridsat solve --report] writes it; [gridsat
    report] validates and summarises it. *)

val build : ?meta:(string * Obs.Json.t) list -> obs:Obs.t -> Master.result -> Obs.Json.t
(** A [gridsat-report/1] document ({!Obs.Report.schema}).  [meta] is
    prepended to the report's [meta] object (problem name, seed, ...). *)

val trace : ?process_name:string -> obs:Obs.t -> unit -> Obs.Json.t
(** The run's Chrome [trace_event] document ({!Obs.Chrome.export}). *)
