(** Hot-standby master replica (the receive side of journal shipping).

    The standby owns a shadow {!Journal} fed exclusively by the primary's
    {!Protocol.Ship} batches.  Batches are applied strictly in sequence —
    out-of-order arrivals (network reordering, retransmissions racing a
    late original) are buffered and drained once the gap fills, so the
    shadow journal is always a prefix of the primary's.  After every
    applied batch the standby replays its shadow journal and compares the
    digest against the [state_digest] the primary computed at flush time:
    a mismatch is a {!Events.Replication_diverged} — replication is
    unsound and the run's tests treat it as fatal.

    The shipment stream doubles as the standby's liveness signal: the
    primary flushes on [ship_interval] even when the batch is empty.
    When the standby hears nothing for [standby_lease] virtual seconds it
    fires [on_lease_expired] exactly once — the hook through which
    {!Master} promotes the standby into a primary at a bumped epoch.

    The replica deliberately owns no {!Reliable} channel of its own: it
    raw-acks every reliable envelope it receives and keeps a [(src, mid)]
    table for dedup, mirroring {!Reliable.admit} without the retry
    machinery it never needs ([Ship_ack] loss is repaired by the
    primary's own retries of the next batch). *)

type t

val standby_id : int
(** Bus endpoint id of the standby ([-1]; client ids are positive and the
    primary master is [0]). *)

val site : string
(** The standby's grid site (["standby"]), distinct from the master's so
    a {!Grid.Fault.Partition_site} on it cuts exactly the replication
    link. *)

val create :
  ?obs:Obs.t ->
  sim:Grid.Sim.t ->
  bus:Protocol.msg Grid.Everyware.t ->
  cfg:Config.t ->
  log:(Events.kind -> unit) ->
  on_lease_expired:(unit -> unit) ->
  unit ->
  t
(** Registers the standby endpoint on [bus] at {!standby_id}/{!site} and
    arms the lease watchdog.  [log] receives
    {!Events.Ship_applied} / {!Events.Replication_diverged} /
    {!Events.Stale_epoch_rejected} ground truth. *)

val journal : t -> Journal.t
(** The shadow journal — handed to the promoting master as its
    authoritative write-ahead log. *)

val applied : t -> int
(** Journal entries applied so far (the primary subtracts this, as
    reported by [Ship_ack], from its own appended count to compute the
    replication-lag gauge). *)

val batches : t -> int
(** Ship batches applied (including empty liveness ticks). *)

val divergences : t -> int
(** Digest mismatches observed — must be zero in any sound run. *)

val digest : t -> string
(** Replay digest of the shadow journal right now. *)

val epoch : t -> int
(** Highest master epoch this replica has seen. *)

val promoted : t -> bool
(** Whether [on_lease_expired] has fired (set before the callback runs,
    so re-entrant shipping cannot race the promotion). *)

val mark_promoted : t -> unit
(** Force the replica inert without firing the lease callback (the master
    promotes it for an external reason, e.g. an explicit handover). *)

val stop : t -> unit
(** The run is over: cancel the watchdog and ignore further traffic. *)
