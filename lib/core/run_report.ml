module J = Obs.Json

let answer_json = function
  | Master.Sat _ -> J.String "SAT"
  | Master.Unsat -> J.String "UNSAT"
  | Master.Unknown reason -> J.String (Printf.sprintf "UNKNOWN(%s)" reason)

let run_section (r : Master.result) =
  J.Obj
    [
      ("answer", answer_json r.Master.answer);
      ("time", J.Float r.Master.time);
      ("max_clients", J.Int r.Master.max_clients);
      ("splits", J.Int r.Master.splits);
      ("share_batches", J.Int r.Master.share_batches);
      ("shared_clauses", J.Int r.Master.shared_clauses);
      ("messages", J.Int r.Master.messages);
      ("bytes", J.Int r.Master.bytes);
      ("dropped_messages", J.Int r.Master.dropped_messages);
      ("dropped_bytes", J.Int r.Master.dropped_bytes);
      ("retries", J.Int r.Master.retries);
      ("false_suspicions", J.Int r.Master.false_suspicions);
      ("recoveries", J.Int r.Master.recoveries);
      ("rederivations", J.Int r.Master.rederivations);
      ("master_crashes", J.Int r.Master.master_crashes);
      ("hedges", J.Int r.Master.hedges);
      ("hedge_cancellations", J.Int r.Master.hedge_cancellations);
      ("checkpoint_bytes", J.Int r.Master.checkpoint_bytes);
      ("corrupt_detected", J.Int r.Master.corrupt_detected);
      ("nacks", J.Int r.Master.nacks);
      ("certified_fragments", J.Int r.Master.certified_fragments);
      ("quarantines", J.Int r.Master.quarantines);
      ("checkpoints_discarded", J.Int r.Master.checkpoints_discarded);
      ("journal_records_dropped", J.Int r.Master.journal_records_dropped);
      ("ships", J.Int r.Master.ships);
      ("promotions", J.Int r.Master.promotions);
      ("stale_epoch_rejections", J.Int r.Master.stale_epoch_rejections);
      ("replication_divergences", J.Int r.Master.replication_divergences);
      ("shares_shed", J.Int r.Master.shares_shed);
      ("share_bytes", J.Int r.Master.share_bytes);
      ("share_link_peak", J.Int r.Master.share_link_peak);
      ("dup_suppressed", J.Int r.Master.dup_suppressed);
      ("outbox_shed", J.Int r.Master.outbox_shed);
      ("outbox_peak", J.Int r.Master.outbox_peak);
      ("forced_compactions", J.Int r.Master.forced_compactions);
      ("degraded_entries", J.Int r.Master.degraded_entries);
      ("journal_bytes", J.Int r.Master.journal_bytes);
      ("events", J.Int (List.length r.Master.events));
    ]

let build ?(meta = []) ~obs (r : Master.result) =
  let curve = Timeline.busy_curve r.Master.events in
  Obs.Report.build ~meta
    ~sections:
      [
        ("run", run_section r);
        ("solver", Sat.Stats.json r.Master.solver_stats);
        ("timeline", Timeline.json curve);
      ]
    ~metrics:(Obs.metrics obs) ~spans:(Obs.spans obs) ()

let trace ?process_name ~obs () = Obs.Chrome.export ?process_name (Obs.spans obs)
