(* FNV-1a, 64-bit variant.  Computed in Int64 so the multiply wraps the
   same way on every platform, then truncated to the native int. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv1a s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Int64.to_int !h

(* CRC-32 (IEEE 802.3, reflected).  Table built once at module load. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8)) s;
  !crc lxor 0xFFFFFFFF

let corrupted d = d lxor 0x5A5A5A5A
