(** Transferable search subproblems.

    A subproblem is what travels between clients when the search space is
    split or a problem migrates (paper Figure 2): a root assignment — the
    globally valid [facts] plus the guiding-path [path] — and a clause set
    (original clauses and surviving learned clauses, already simplified
    against the root).  The paper reports these messages ranging from
    10 KB to 500 MB; {!bytes} provides the size the network model
    charges for. *)

type t = {
  nvars : int;
  facts : Sat.Types.lit list;  (** root literals implied by the global formula *)
  path : Sat.Types.lit list;  (** guiding-path assumptions accumulated by splits *)
  clauses : Sat.Types.lit array list;
}

val initial : Sat.Cnf.t -> t
(** The whole problem, as handed to the first client. *)

val bytes : t -> int
(** Serialised size estimate (what a transfer costs on the network). *)

val nclauses : t -> int

val depth : t -> int
(** Length of the guiding path (number of splits on this branch). *)

val to_solver : config:Sat.Solver.config -> ?obs:Obs.t -> ?obs_tid:int -> t -> Sat.Solver.t
(** Instantiates a solver for the subproblem. *)

val capture : Sat.Solver.t -> t
(** Snapshot of a solver's current problem (for migration or
    checkpointing): its root assignment and active clauses. *)

val of_lineage : Sat.Cnf.t -> Sat.Types.lit list -> t
(** Re-derives a subproblem from the original formula and its guiding-path
    lineage alone (Figure 2: a branch is fully determined by its ordered
    root assignments).  Root facts and learned clauses are rebuilt by the
    solver, so a branch whose holder {e and} checkpoint are both lost can
    still be reconstructed and requeued instead of aborting the run. *)

val split_from : Sat.Solver.t -> t option
(** Performs the Figure 2 split on a running solver: captures the clause
    set, commits the solver's first-decision branch locally, and returns
    the complementary subproblem (pruned against its own root).  [None]
    if the solver has no decision to split on. *)

val split_pure : origin:t -> Sat.Solver.t -> t option
(** Like {!split_from}, but {e lineage-pure} for certified runs: instead
    of the donor's current clause database (learned clauses, stripped
    literals), the new branch carries [origin]'s clause set — what the
    donor itself originally received — with no root facts, so the
    receiver's entire root state is its guiding path.  Inductively every
    certified transfer stays a subset of the original formula, which is
    what lets the master check the receiver's DRUP fragment against the
    original CNF under the journaled path alone. *)

val capture_pure : origin:t -> Sat.Solver.t -> t
(** Lineage-pure {!capture}: [origin]'s clauses under the solver's current
    guiding path, for migrations during certified runs. *)

val prune : t -> t
(** The paper's "inconsequential clause removal": drops clauses satisfied
    by the root assignment and strips false literals whose negation is a
    root {e fact} (path literals are kept so clauses stay globally
    valid). *)

val to_string : t -> string
(** Compact wire format: a DIMACS-like document with [f]/[a] header lines
    for the root facts and guiding-path assumptions.  This is what a
    non-simulated deployment would put on the socket. *)

val of_string : string -> t
(** Parses {!to_string}'s format.  Raises [Failure] on malformed input. *)

val pp : Format.formatter -> t -> unit
