module R = Grid.Resource

type host = { resource : R.t; trace : Grid.Trace.t }

type batch_spec = {
  site : string;
  nodes : int;
  node_speed : float;
  node_mem : int;
  duration : float;
  mean_wait : float;
  queue_seed : int;
}

type t = {
  name : string;
  master_site : string;
  hosts : host list;
  batch : batch_spec option;
  late_hosts : (float * host) list;
  configure_network : Grid.Network.t -> unit;
}

let mb n = n * 1024 * 1024

(* Build [count] hosts of one site/class, ids assigned by the caller. *)
let host_group ~seed ~next_id ~site ~prefix ~count ~speed ~mem_mb ~load_mean =
  List.init count (fun i ->
      let id = next_id + i in
      let resource =
        R.make ~id ~name:(Printf.sprintf "%s-%02d" prefix i) ~site ~speed ~mem_bytes:(mb mem_mb)
          ~kind:R.Interactive
      in
      (* every shared host sees its own noise on top of a site-wide
         diurnal pattern *)
      let trace =
        Grid.Trace.overlay
          (Grid.Trace.periodic ~mean:1.0 ~amplitude:0.08 ~period:900. ~phase:(float_of_int id *. 37.))
          (Grid.Trace.noisy ~seed:(seed + id) ~mean:load_mean ~amplitude:0.15 ~interval:60.)
      in
      { resource; trace })

(* WAN links roughly matching a 2003 national testbed. *)
let national_links net =
  let set = Grid.Network.set_link net in
  set "utk" "uiuc" ~latency:0.025 ~bandwidth:4e6;
  set "utk" "ucsd" ~latency:0.055 ~bandwidth:2e6;
  set "uiuc" "ucsd" ~latency:0.05 ~bandwidth:2.5e6;
  set "utk" "ucsb" ~latency:0.055 ~bandwidth:2e6;
  set "uiuc" "ucsb" ~latency:0.05 ~bandwidth:2.5e6;
  set "ucsd" "ucsb" ~latency:0.01 ~bandwidth:8e6;
  set "ucsd" "sdsc" ~latency:0.005 ~bandwidth:10e6;
  set "ucsb" "sdsc" ~latency:0.012 ~bandwidth:8e6;
  set "uiuc" "sdsc" ~latency:0.05 ~bandwidth:2.5e6;
  set "utk" "sdsc" ~latency:0.055 ~bandwidth:2e6

let grads ?(seed = 11) ?(base_speed = 1000.) () =
  let s f = base_speed *. f in
  let g = host_group ~seed in
  let utk_a = g ~next_id:1 ~site:"utk" ~prefix:"utk-a" ~count:8 ~speed:(s 3.0) ~mem_mb:1024 ~load_mean:0.85 in
  let utk_b = g ~next_id:9 ~site:"utk" ~prefix:"utk-b" ~count:6 ~speed:(s 2.2) ~mem_mb:512 ~load_mean:0.8 in
  let uiuc_a = g ~next_id:15 ~site:"uiuc" ~prefix:"uiuc-a" ~count:8 ~speed:(s 1.8) ~mem_mb:512 ~load_mean:0.75 in
  let uiuc_b = g ~next_id:23 ~site:"uiuc" ~prefix:"uiuc-b" ~count:4 ~speed:(s 0.8) ~mem_mb:256 ~load_mean:0.7 in
  let ucsd = g ~next_id:27 ~site:"ucsd" ~prefix:"ucsd" ~count:8 ~speed:(s 1.5) ~mem_mb:512 ~load_mean:0.65 in
  {
    name = "grads-34";
    master_site = "ucsd";
    hosts = utk_a @ utk_b @ uiuc_a @ uiuc_b @ ucsd;
    batch = None;
    late_hosts = [];
    configure_network = national_links;
  }

let set2 ?(seed = 23) ?(base_speed = 1000.) ?(batch_nodes = 24) ?(batch_mean_wait = 118_800.)
    ?(batch_duration = 43_200.) () =
  let s f = base_speed *. f in
  let g = host_group ~seed in
  let uiuc = g ~next_id:1 ~site:"uiuc" ~prefix:"uiuc-c" ~count:16 ~speed:(s 2.0) ~mem_mb:512 ~load_mean:0.8 in
  let ucsd = g ~next_id:17 ~site:"ucsd" ~prefix:"ucsd" ~count:3 ~speed:(s 1.5) ~mem_mb:512 ~load_mean:0.7 in
  let ucsb = g ~next_id:20 ~site:"ucsb" ~prefix:"ucsb" ~count:8 ~speed:(s 2.5) ~mem_mb:1024 ~load_mean:0.85 in
  {
    name = "set2-27+bh";
    master_site = "ucsb";
    hosts = uiuc @ ucsd @ ucsb;
    batch =
      Some
        {
          site = "sdsc";
          nodes = batch_nodes;
          node_speed = s 3.5;
          node_mem = mb 4096;
          duration = batch_duration;
          mean_wait = batch_mean_wait;
          queue_seed = 0;
        };
    late_hosts = [];
    configure_network = national_links;
  }

let uniform ?(seed = 5) ?(site = "local") ?(mem_mb = 1024) ~n ~speed () =
  let hosts =
    List.init n (fun i ->
        let id = i + 1 in
        {
          resource =
            R.make ~id ~name:(Printf.sprintf "node-%02d" i) ~site ~speed ~mem_bytes:(mb mem_mb)
              ~kind:R.Interactive;
          trace = Grid.Trace.constant 1.0;
        })
  in
  ignore seed;
  {
    name = Printf.sprintf "uniform-%d" n;
    master_site = site;
    hosts;
    batch = None;
    late_hosts = [];
    configure_network = (fun _ -> ());
  }

let fastest t =
  match t.hosts with
  | [] -> invalid_arg "Testbed.fastest: empty testbed"
  | h :: rest ->
      List.fold_left
        (fun best x -> if x.resource.R.speed > best.resource.R.speed then x else best)
        h rest

let nhosts t = List.length t.hosts
