type pending = {
  dst : int;
  msg : Protocol.msg;
  sent_at : float;  (* virtual send time, for the ack-latency histogram *)
  mutable attempt : int;  (* retries performed so far *)
  mutable timer : Grid.Sim.event_id;
}

type t = {
  sim : Grid.Sim.t;
  send_raw : dst:int -> Protocol.msg -> unit;
  active : unit -> bool;
  retry_base : float;
  mutable base_override : float option;  (* adaptive base from Health, ≤ retry_base *)
  jitter : float;  (* relative spread in [0, 1]; 0 = the old fixed schedule *)
  rng : Random.State.t;  (* private, seeded: jitter draws replay identically *)
  max_attempts : int;
  on_retry : dst:int -> attempt:int -> unit;
  on_exhausted : dst:int -> attempts:int -> unit;
  on_give_up : dst:int -> Protocol.msg -> unit;
  on_ack : dst:int -> latency:float -> unit;
  mutable next_mid : int;
  outstanding : (int, pending) Hashtbl.t;
  seen : (int * int, unit) Hashtbl.t;  (* (src, mid) already delivered *)
  mutable retries : int;
  mutable gave_up : int;
  mutable nacked : int;
  obs : Obs.t;
  obs_on : bool;
  obs_tid : int;
  flight : Obs.Flight.t;
  flight_on : bool;
  d_ack : Obs.Anomaly.detector;  (* streaming ack-latency outlier detector *)
  c_sends : Obs.Metrics.counter;
  c_retries : Obs.Metrics.counter;
  c_exhausted : Obs.Metrics.counter;
  h_ack : Obs.Metrics.histogram;
}

let create ?(obs = Obs.disabled) ?(obs_tid = Obs.Span.run_tid) ?(seed = 0) ?(jitter = 0.)
    ?(on_ack = fun ~dst:_ ~latency:_ -> ()) ~sim ~send_raw ~active ~retry_base ~max_attempts
    ~on_retry ?(on_exhausted = fun ~dst:_ ~attempts:_ -> ()) ~on_give_up () =
  let m = Obs.metrics obs in
  let labels = [ ("owner", string_of_int obs_tid) ] in
  {
    sim;
    send_raw;
    active;
    retry_base = Float.max 0.001 retry_base;
    base_override = None;
    jitter = Float.max 0. (Float.min 1. jitter);
    rng = Random.State.make [| seed; obs_tid; 0xbac0ff |];
    max_attempts = max 1 max_attempts;
    on_retry;
    on_exhausted;
    on_give_up;
    on_ack;
    next_mid = 0;
    outstanding = Hashtbl.create 16;
    seen = Hashtbl.create 64;
    retries = 0;
    gave_up = 0;
    nacked = 0;
    obs;
    obs_on = Obs.enabled obs;
    obs_tid;
    flight = Obs.flight obs;
    flight_on = Obs.Flight.is_enabled (Obs.flight obs);
    d_ack =
      Obs.Anomaly.detector (Obs.anomaly obs) ~name:"ack-latency" ~direction:`High ~min_n:16
        ();
    c_sends = Obs.Metrics.counter m ~labels "reliable.sends";
    c_retries = Obs.Metrics.counter m ~labels "reliable.retries";
    c_exhausted = Obs.Metrics.counter m ~labels "reliable.exhausted";
    h_ack = Obs.Metrics.histogram m ~labels "reliable.ack.latency";
  }

let base t =
  match t.base_override with
  | Some b -> Float.max 0.001 (Float.min t.retry_base b)
  | None -> t.retry_base

let set_retry_base t b = t.base_override <- b

let backoff t attempt =
  (* bounded exponential: base, 2*base, 4*base, ... capped at 32*base,
     spread by ±jitter so channels that exhausted in lockstep during a
     master outage do not retransmit in lockstep at its recovery *)
  let d = base t *. Float.min 32. (Float.pow 2. (float_of_int attempt)) in
  if t.jitter <= 0. then d
  else d *. (1. -. t.jitter +. (2. *. t.jitter *. Random.State.float t.rng 1.0))

let rec arm_timer t mid p =
  p.timer <-
    Grid.Sim.schedule t.sim ~delay:(backoff t p.attempt) (fun () -> fire t mid)

and fire t mid =
  match Hashtbl.find_opt t.outstanding mid with
  | None -> ()
  | Some p ->
      if not (t.active ()) then Hashtbl.remove t.outstanding mid
      else if p.attempt >= t.max_attempts then begin
        Hashtbl.remove t.outstanding mid;
        t.gave_up <- t.gave_up + 1;
        if t.obs_on then begin
          Obs.Metrics.incr t.c_exhausted;
          ignore
            (Obs.Span.instant (Obs.spans t.obs) ~tid:t.obs_tid ~cat:"protocol"
               ~args:[ ("dst", Obs.Json.Int p.dst); ("attempts", Obs.Json.Int p.attempt) ]
               "reliable.exhausted")
        end;
        if t.flight_on then
          Obs.Flight.note t.flight ~sub:"net"
            ~args:
              [
                ("owner", Obs.Json.Int t.obs_tid);
                ("dst", Obs.Json.Int p.dst);
                ("attempts", Obs.Json.Int p.attempt);
              ]
            "exhausted";
        t.on_exhausted ~dst:p.dst ~attempts:p.attempt;
        t.on_give_up ~dst:p.dst p.msg
      end
      else begin
        p.attempt <- p.attempt + 1;
        t.retries <- t.retries + 1;
        if t.obs_on then begin
          Obs.Metrics.incr t.c_retries;
          ignore
            (Obs.Span.instant (Obs.spans t.obs) ~tid:t.obs_tid ~cat:"protocol"
               ~args:[ ("dst", Obs.Json.Int p.dst); ("attempt", Obs.Json.Int p.attempt) ]
               "reliable.retry")
        end;
        if t.flight_on then
          Obs.Flight.note t.flight ~sub:"net"
            ~args:
              [
                ("owner", Obs.Json.Int t.obs_tid);
                ("dst", Obs.Json.Int p.dst);
                ("attempt", Obs.Json.Int p.attempt);
              ]
            "retry";
        t.on_retry ~dst:p.dst ~attempt:p.attempt;
        t.send_raw ~dst:p.dst (Protocol.Reliable { mid; payload = p.msg });
        arm_timer t mid p
      end

let send t ~dst msg =
  let mid = t.next_mid in
  t.next_mid <- mid + 1;
  let p =
    {
      dst;
      msg;
      sent_at = Grid.Sim.now t.sim;
      attempt = 0;
      timer = Grid.Sim.schedule t.sim ~delay:0. (fun () -> ());
    }
  in
  Grid.Sim.cancel t.sim p.timer;
  Hashtbl.replace t.outstanding mid p;
  if t.obs_on then Obs.Metrics.incr t.c_sends;
  if t.flight_on then
    Obs.Flight.note t.flight ~sub:"net"
      ~args:[ ("owner", Obs.Json.Int t.obs_tid); ("dst", Obs.Json.Int dst); ("mid", Obs.Json.Int mid) ]
      "send";
  t.send_raw ~dst (Protocol.Reliable { mid; payload = msg });
  arm_timer t mid p

let handle_ack t ~mid =
  match Hashtbl.find_opt t.outstanding mid with
  | None -> ()
  | Some p ->
      Grid.Sim.cancel t.sim p.timer;
      Hashtbl.remove t.outstanding mid;
      let latency = Grid.Sim.now t.sim -. p.sent_at in
      if t.obs_on then Obs.Metrics.observe t.h_ack latency;
      Obs.Anomaly.observe t.d_ack ~at:(Grid.Sim.now t.sim) latency;
      if t.flight_on then
        Obs.Flight.note t.flight ~sub:"net"
          ~args:
            [
              ("owner", Obs.Json.Int t.obs_tid);
              ("dst", Obs.Json.Int p.dst);
              ("mid", Obs.Json.Int mid);
              ("latency", Obs.Json.Float latency);
            ]
          "ack";
      t.on_ack ~dst:p.dst ~latency

(* The receiver saw envelope [mid] arrive corrupt: the link works, the
   payload rotted.  Retransmit immediately instead of waiting out the
   backoff timer — the NACK is proof of connectivity, not congestion.
   [fire] keeps the attempt accounting, so a link that corrupts everything
   still exhausts its bounded budget and reaches [on_give_up]. *)
let handle_nack t ~mid =
  match Hashtbl.find_opt t.outstanding mid with
  | None -> ()
  | Some p ->
      Grid.Sim.cancel t.sim p.timer;
      t.nacked <- t.nacked + 1;
      fire t mid

(* Proof of life for [dst] (a restarted master announced itself): whatever
   is still outstanding toward it was transmitted into the outage and
   probably lost, and its exhaustion timer may be about to condemn a link
   that now works.  Retransmit everything immediately on a fresh budget. *)
let nudge t ~dst =
  Hashtbl.iter
    (fun mid p ->
      if p.dst = dst then begin
        Grid.Sim.cancel t.sim p.timer;
        p.attempt <- 0;
        t.retries <- t.retries + 1;
        t.send_raw ~dst (Protocol.Reliable { mid; payload = p.msg });
        arm_timer t mid p
      end)
    t.outstanding

let admit t ~src ~mid =
  if Hashtbl.mem t.seen (src, mid) then false
  else begin
    Hashtbl.replace t.seen (src, mid) ();
    true
  end

let stop t =
  Hashtbl.iter (fun _ p -> Grid.Sim.cancel t.sim p.timer) t.outstanding;
  Hashtbl.reset t.outstanding

let outstanding t = Hashtbl.length t.outstanding

let outstanding_to t ~dst =
  Hashtbl.fold (fun _ p acc -> if p.dst = dst then acc + 1 else acc) t.outstanding 0

let retries t = t.retries

let gave_up t = t.gave_up

let nacked t = t.nacked
