(** Shared-memory parallel GridSAT on OCaml 5 domains.

    This backend runs the same algorithm as the distributed solver — search
    -space splitting on guiding paths plus global sharing of short learned
    clauses — but with real threads instead of simulated grid hosts: a
    lock-protected work queue of {!Gridsat_core.Subproblem.t}s, a global
    clause pool, and one solver per domain.  Workers split their problem
    whenever a peer is hungry, so parallelism again follows demand.

    The answer is deterministic (it is the problem's satisfiability);
    running times and statistics are not, since domains race. *)

type outcome = Sat of Sat.Model.t | Unsat | Budget_exhausted

type stats = {
  domains : int;
  splits : int;
  shared_clauses : int;
  subproblems_solved : int;  (** exhausted (UNSAT) subproblems *)
  propagations : int;
}

val solve :
  ?num_domains:int ->
  ?share_max_len:int ->
  ?slice_budget:int ->
  ?total_budget:int ->
  ?seed:int ->
  Sat.Cnf.t ->
  outcome * stats
(** [solve cnf] returns the verified answer.  [num_domains] defaults to
    [Domain.recommended_domain_count ()]; [total_budget] caps the summed
    propagation count across workers (default: effectively unlimited),
    after which [Budget_exhausted] is returned. *)

val portfolio :
  ?num_domains:int ->
  ?share_max_len:int ->
  ?slice_budget:int ->
  ?total_budget:int ->
  ?seed:int ->
  Sat.Cnf.t ->
  outcome * stats
(** The contrast to GridSAT's search-space splitting: every domain races a
    differently-seeded solver on the {e whole} problem, sharing short
    learned clauses; the first answer wins.  [stats.splits] is always 0.
    Modern portfolio solvers (and the paper's NAGSAT discussion) motivate
    this ablation — compare with {!solve} in the benchmarks. *)
