module Sub = Gridsat_core.Subproblem
module Solver = Sat.Solver

type outcome = Sat of Sat.Model.t | Unsat | Budget_exhausted

type stats = {
  domains : int;
  splits : int;
  shared_clauses : int;
  subproblems_solved : int;
  propagations : int;
}

(* All cross-domain state lives behind one mutex: a work queue of
   subproblems, a grow-only clause pool with per-worker read cursors, the
   outstanding-problem count for termination detection, and the result
   cell.  Contention is negligible because workers only take the lock
   between compute slices. *)
type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : Sub.t Queue.t;
  pool : (int * Sat.Types.lit array) list ref; (* (origin, clause), newest first *)
  mutable pool_len : int;
  mutable outstanding : int; (* queued + being-solved subproblems *)
  mutable hungry : int; (* workers blocked waiting for work *)
  mutable result : outcome option;
  mutable splits : int;
  mutable shared_clauses : int;
  mutable subproblems_solved : int;
  mutable propagations : int;
  mutable budget_left : int;
}

let with_lock sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

let set_result sh r =
  with_lock sh (fun () ->
      if sh.result = None then begin
        sh.result <- Some r;
        Condition.broadcast sh.cond
      end)

(* Take the next subproblem, or learn that the run is over.  Blocks while
   other workers still hold problems that might be split. *)
let next_work sh =
  with_lock sh (fun () ->
      let rec wait () =
        match sh.result with
        | Some _ -> None
        | None -> (
            match Queue.take_opt sh.queue with
            | Some sp -> Some sp
            | None ->
                if sh.outstanding = 0 then begin
                  if sh.result = None then sh.result <- Some Unsat;
                  Condition.broadcast sh.cond;
                  None
                end
                else begin
                  sh.hungry <- sh.hungry + 1;
                  Condition.wait sh.cond sh.mutex;
                  sh.hungry <- sh.hungry - 1;
                  wait ()
                end)
      in
      wait ())

let push_work sh sp =
  with_lock sh (fun () ->
      Queue.push sp sh.queue;
      sh.outstanding <- sh.outstanding + 1;
      sh.splits <- sh.splits + 1;
      Condition.signal sh.cond)

let finish_problem sh =
  with_lock sh (fun () ->
      sh.outstanding <- sh.outstanding - 1;
      sh.subproblems_solved <- sh.subproblems_solved + 1;
      if sh.outstanding = 0 && Queue.is_empty sh.queue then begin
        if sh.result = None then sh.result <- Some Unsat;
        Condition.broadcast sh.cond
      end)

let publish_shares sh ~origin clauses =
  if clauses <> [] then
    with_lock sh (fun () ->
        List.iter
          (fun c ->
            sh.pool := (origin, c) :: !(sh.pool);
            sh.pool_len <- sh.pool_len + 1)
          clauses;
        sh.shared_clauses <- sh.shared_clauses + List.length clauses)

(* Clauses published by other workers since this worker's cursor. *)
let pull_shares sh ~origin ~cursor =
  with_lock sh (fun () ->
      let fresh = sh.pool_len - cursor in
      if fresh <= 0 then ([], sh.pool_len)
      else begin
        let rec take n acc = function
          | (o, c) :: rest when n > 0 ->
              take (n - 1) (if o <> origin then c :: acc else acc) rest
          | _ -> acc
        in
        (take fresh [] !(sh.pool), sh.pool_len)
      end)

let consume_budget sh amount =
  with_lock sh (fun () ->
      sh.propagations <- sh.propagations + amount;
      sh.budget_left <- sh.budget_left - amount;
      if sh.budget_left <= 0 && sh.result = None then begin
        sh.result <- Some Budget_exhausted;
        Condition.broadcast sh.cond
      end)

let hungry_peers sh = with_lock sh (fun () -> sh.hungry + Queue.length sh.queue)

let worker sh ~id ~cnf ~share_max_len ~slice_budget ~seed () =
  let cursor = ref 0 in
  let solver_config =
    {
      Solver.default_config with
      Solver.share_export_max = max share_max_len Solver.default_config.Solver.share_export_max;
      seed = seed + id;
    }
  in
  let rec work_loop () =
    match next_work sh with
    | None -> ()
    | Some sp ->
        let solver = Sub.to_solver ~config:solver_config sp in
        slice_loop solver;
        work_loop ()
  and slice_loop solver =
    let stop = with_lock sh (fun () -> sh.result <> None) in
    if not stop then begin
      let before = (Solver.stats solver).Sat.Stats.propagations in
      let outcome = Solver.run solver ~budget:slice_budget in
      consume_budget sh ((Solver.stats solver).Sat.Stats.propagations - before);
      match outcome with
      | Solver.Sat model ->
          if Sat.Model.satisfies cnf model then set_result sh (Sat model)
          else failwith "Par_solver: model verification failed (solver bug)"
      | Solver.Unsat -> finish_problem sh
      | Solver.Mem_pressure | Solver.Budget_exhausted ->
          publish_shares sh ~origin:id (Solver.drain_shares solver ~max_len:share_max_len);
          let fresh, c = pull_shares sh ~origin:id ~cursor:!cursor in
          cursor := c;
          if fresh <> [] then Solver.queue_foreign_clauses solver fresh;
          if hungry_peers sh > 0 && Solver.decision_level solver > 0 then begin
            match Sub.split_from solver with
            | Some sp -> push_work sh sp
            | None -> ()
          end;
          slice_loop solver
    end
  in
  work_loop ()

(* Portfolio worker: race on the full problem with a distinct seed,
   exchanging short clauses through the shared pool. *)
let portfolio_worker sh ~id ~cnf ~share_max_len ~slice_budget ~seed () =
  let cursor = ref 0 in
  let solver_config =
    {
      Solver.default_config with
      Solver.share_export_max = max share_max_len Solver.default_config.Solver.share_export_max;
      random_decision_freq = 0.05;
      seed = seed + (37 * id) + 1;
    }
  in
  let solver = Solver.create ~config:solver_config cnf in
  let rec slice_loop () =
    let stop = with_lock sh (fun () -> sh.result <> None) in
    if not stop then begin
      let before = (Solver.stats solver).Sat.Stats.propagations in
      let outcome = Solver.run solver ~budget:slice_budget in
      consume_budget sh ((Solver.stats solver).Sat.Stats.propagations - before);
      match outcome with
      | Solver.Sat model ->
          if Sat.Model.satisfies cnf model then set_result sh (Sat model)
          else failwith "Par_solver: model verification failed (solver bug)"
      | Solver.Unsat -> set_result sh Unsat
      | Solver.Mem_pressure | Solver.Budget_exhausted ->
          publish_shares sh ~origin:id (Solver.drain_shares solver ~max_len:share_max_len);
          let fresh, c = pull_shares sh ~origin:id ~cursor:!cursor in
          cursor := c;
          if fresh <> [] then Solver.queue_foreign_clauses solver fresh;
          slice_loop ()
    end
  in
  slice_loop ()

let make_shared total_budget =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    pool = ref [];
    pool_len = 0;
    outstanding = 1;
    hungry = 0;
    result = None;
    splits = 0;
    shared_clauses = 0;
    subproblems_solved = 0;
    propagations = 0;
    budget_left = total_budget;
  }

let finish sh domains =
  let outcome = match sh.result with Some r -> r | None -> Unsat in
  ( outcome,
    {
      domains;
      splits = sh.splits;
      shared_clauses = sh.shared_clauses;
      subproblems_solved = sh.subproblems_solved;
      propagations = sh.propagations;
    } )

let portfolio ?num_domains ?(share_max_len = 10) ?(slice_budget = 20_000)
    ?(total_budget = max_int) ?(seed = 0) cnf =
  let domains =
    match num_domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let sh = make_shared total_budget in
  let spawn id = Domain.spawn (portfolio_worker sh ~id ~cnf ~share_max_len ~slice_budget ~seed) in
  let workers = List.init domains spawn in
  List.iter Domain.join workers;
  finish sh domains

let solve ?num_domains ?(share_max_len = 10) ?(slice_budget = 20_000) ?(total_budget = max_int)
    ?(seed = 0) cnf =
  let domains =
    match num_domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let sh = make_shared total_budget in
  Queue.push (Sub.initial cnf) sh.queue;
  let spawn id = Domain.spawn (worker sh ~id ~cnf ~share_max_len ~slice_budget ~seed) in
  let workers = List.init domains spawn in
  List.iter Domain.join workers;
  finish sh domains
