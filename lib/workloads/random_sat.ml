let draw_clause st ~k ~nvars =
  let rec pick acc n =
    if n = 0 then acc
    else
      let v = 1 + Random.State.int st nvars in
      if List.exists (fun (v', _) -> v' = v) acc then pick acc n
      else pick ((v, Random.State.bool st) :: acc) (n - 1)
  in
  List.map (fun (v, sign) -> if sign then v else -v) (pick [] k)

let instance ?(k = 3) ~nvars ~ratio ~seed () =
  if k < 1 || k > nvars then invalid_arg "Random_sat.instance: bad clause width";
  let st = Random.State.make [| seed; nvars; k |] in
  let nclauses = int_of_float (Float.round (ratio *. float_of_int nvars)) in
  Sat.Cnf.make ~nvars (List.init nclauses (fun _ -> draw_clause st ~k ~nvars))

let planted ?(k = 3) ~nvars ~ratio ~seed () =
  if k < 1 || k > nvars then invalid_arg "Random_sat.planted: bad clause width";
  let st = Random.State.make [| seed; nvars; k; 1 |] in
  let hidden = Array.init (nvars + 1) (fun _ -> Random.State.bool st) in
  let satisfied_by_hidden clause =
    List.exists (fun l -> if l > 0 then hidden.(l) else not hidden.(-l)) clause
  in
  let rec draw () =
    let c = draw_clause st ~k ~nvars in
    if satisfied_by_hidden c then c else draw ()
  in
  let nclauses = int_of_float (Float.round (ratio *. float_of_int nvars)) in
  Sat.Cnf.make ~nvars (List.init nclauses (fun _ -> draw ()))
