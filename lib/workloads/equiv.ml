module C = Circuit

(* Carry-select adder: compute the high half for both carry hypotheses and
   pick with the actual carry out of the low half. *)
let carry_select c a b =
  let n = List.length a in
  let half = n / 2 in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let drop k l = List.filteri (fun i _ -> i >= k) l in
  let add_with_cin cin xs ys =
    let rec loop carry xs ys acc =
      match (xs, ys) with
      | [], [] -> (List.rev acc, carry)
      | x :: xs', y :: ys' ->
          let s, carry' = C.full_adder c x y carry in
          loop carry' xs' ys' (s :: acc)
      | _ -> assert false
    in
    loop cin xs ys []
  in
  let lo_sum, lo_carry = add_with_cin C.fls (take half a) (take half b) in
  let hi0, c0 = add_with_cin C.fls (drop half a) (drop half b) in
  let hi1, c1 = add_with_cin C.tru (drop half a) (drop half b) in
  let hi = List.map2 (fun s0 s1 -> C.mux c ~sel:lo_carry s0 s1) hi0 hi1 in
  let carry_out = C.mux c ~sel:lo_carry c0 c1 in
  lo_sum @ hi @ [ carry_out ]

let adder_mitre ~bits ~bug =
  if bits < 2 then invalid_arg "Equiv.adder_mitre: need at least 2 bits";
  let c = C.create () in
  let a = List.init bits (fun _ -> C.input c) in
  let b = List.init bits (fun _ -> C.input c) in
  let reference = C.ripple_add c a b in
  let implementation = carry_select c a b in
  let implementation =
    if bug then
      (* invert one mid-range sum bit of the implementation *)
      List.mapi (fun i s -> if i = bits / 2 then C.snot s else s) implementation
    else implementation
  in
  let diffs = List.map2 (fun x y -> C.sxor c x y) reference implementation in
  C.assert_sig c (C.big_or c diffs);
  C.to_cnf c

let multiplier_mitre ~bits ~bug =
  if bits < 2 then invalid_arg "Equiv.multiplier_mitre: need at least 2 bits";
  let c = C.create () in
  let a = List.init bits (fun _ -> C.input c) in
  let b = List.init bits (fun _ -> C.input c) in
  let ab = C.multiplier c a b in
  let ba = C.multiplier c b a in
  let ba =
    if bug then List.mapi (fun i s -> if i = bits then C.snot s else s) ba else ba
  in
  let diffs = List.map2 (fun x y -> C.sxor c x y) ab ba in
  C.assert_sig c (C.big_or c diffs);
  C.to_cnf c
