(* Signals are DIMACS-style ints with 0 reserved: variable v is v, its
   negation -v.  Constants are represented by a dedicated always-true
   variable allocated lazily. *)

type signal = Const of bool | Wire of int

type t = {
  mutable next_var : int;
  mutable clauses : int list list; (* DIMACS ints, reversed *)
}

let tru = Const true

let fls = Const false

let create () = { next_var = 0; clauses = [] }

let fresh t =
  t.next_var <- t.next_var + 1;
  t.next_var

let input t = Wire (fresh t)

let add t clause = t.clauses <- clause :: t.clauses

let snot = function Const b -> Const (not b) | Wire v -> Wire (-v)

(* AND gate via Tseitin: o <-> a & b. *)
let sand t a b =
  match (a, b) with
  | Const false, _ | _, Const false -> Const false
  | Const true, x | x, Const true -> x
  | Wire va, Wire vb ->
      if va = vb then a
      else if va = -vb then Const false
      else begin
        let o = fresh t in
        add t [ -o; va ];
        add t [ -o; vb ];
        add t [ o; -va; -vb ];
        Wire o
      end

let sor t a b = snot (sand t (snot a) (snot b))

(* XOR gate via Tseitin: o <-> a (+) b. *)
let sxor t a b =
  match (a, b) with
  | Const false, x | x, Const false -> x
  | Const true, x | x, Const true -> snot x
  | Wire va, Wire vb ->
      if va = vb then Const false
      else if va = -vb then Const true
      else begin
        let o = fresh t in
        add t [ -o; va; vb ];
        add t [ -o; -va; -vb ];
        add t [ o; -va; vb ];
        add t [ o; va; -vb ];
        Wire o
      end

let snand t a b = snot (sand t a b)

let eq t a b = snot (sxor t a b)

let mux t ~sel a b = sor t (sand t (snot sel) a) (sand t sel b)

let big_and t = List.fold_left (sand t) (Const true)

let big_or t = List.fold_left (sor t) (Const false)

let big_xor t = List.fold_left (sxor t) (Const false)

let full_adder t a b cin =
  let sum = sxor t (sxor t a b) cin in
  let carry = sor t (sand t a b) (sand t cin (sxor t a b)) in
  (sum, carry)

let ripple_add t a b =
  let n = max (List.length a) (List.length b) in
  let pad bits = bits @ List.init (n - List.length bits) (fun _ -> Const false) in
  let a = pad a and b = pad b in
  let rec loop a b carry acc =
    match (a, b) with
    | [], [] -> List.rev (carry :: acc)
    | x :: a', y :: b' ->
        let s, c = full_adder t x y carry in
        loop a' b' c (s :: acc)
    | _ -> assert false
  in
  loop a b (Const false) []

let multiplier t a b =
  let width = List.length a + List.length b in
  let pad bits = bits @ List.init (max 0 (width - List.length bits)) (fun _ -> Const false) in
  let shift k bits = List.init k (fun _ -> Const false) @ bits in
  let partials =
    List.mapi (fun i bi -> pad (shift i (List.map (fun aj -> sand t aj bi) a))) b
  in
  let sum =
    List.fold_left
      (fun acc p ->
        let s = ripple_add t acc p in
        (* drop overflow bits beyond the result width *)
        List.filteri (fun i _ -> i < width) s)
      (pad []) partials
  in
  sum

let assert_sig t = function
  | Const true -> ()
  | Const false -> add t [] (* unsatisfiable circuit *)
  | Wire v -> add t [ v ]

let assert_equal_const t bits value =
  if value < 0 then invalid_arg "Circuit.assert_equal_const: negative value";
  List.iteri
    (fun i bit ->
      let want = value land (1 lsl i) <> 0 in
      assert_sig t (if want then bit else snot bit))
    bits;
  if value lsr List.length bits <> 0 then
    invalid_arg "Circuit.assert_equal_const: value does not fit"

let nvars t = t.next_var

let to_cnf t =
  (* empty clause marker: Cnf keeps it and reports trivial unsatisfiability *)
  Sat.Cnf.make ~nvars:t.next_var (List.rev t.clauses)
