let variable ~holes p h = ((p - 1) * holes) + h

let instance ~pigeons ~holes =
  if pigeons < 1 || holes < 1 then invalid_arg "Php.instance: need at least one of each";
  let v = variable ~holes in
  let at_least =
    List.init pigeons (fun p -> List.init holes (fun h -> v (p + 1) (h + 1)))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -v p1 h; -v p2 h ] else None)
              (List.init pigeons (fun i -> i + 1)))
          (List.init pigeons (fun i -> i + 1)))
      (List.init holes (fun i -> i + 1))
  in
  Sat.Cnf.make ~nvars:(pigeons * holes) (at_least @ at_most)
