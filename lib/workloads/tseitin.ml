(* Parity (XOR) constraint over [vars] with right-hand side [b], encoded by
   forbidding every assignment of the wrong parity: 2^(n-1) clauses. *)
let xor_clauses vars b =
  let n = List.length vars in
  let clauses = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let parity = ref false in
    List.iteri (fun i _ -> if mask land (1 lsl i) <> 0 then parity := not !parity) vars;
    (* assignment [mask] (bit=1 means variable true) violates the
       constraint when its parity differs from [b]; forbid it *)
    if !parity <> b then begin
      let clause =
        List.mapi (fun i v -> if mask land (1 lsl i) <> 0 then -v else v) vars
      in
      clauses := clause :: !clauses
    end
  done;
  !clauses

(* Configuration-model d-regular multigraph without self-loops. *)
let random_regular_graph st ~nvertices ~degree =
  let stubs = Array.concat (List.init nvertices (fun v -> Array.make degree v)) in
  let n = Array.length stubs in
  let shuffle () =
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- tmp
    done
  in
  let rec attempt tries =
    if tries = 0 then invalid_arg "Tseitin: could not build a loop-free regular graph";
    shuffle ();
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let a = stubs.(!i) and b = stubs.(!i + 1) in
      if a = b then ok := false else edges := (a, b) :: !edges;
      i := !i + 2
    done;
    if !ok then !edges else attempt (tries - 1)
  in
  attempt 200

let instance ~nvertices ~degree ~charge ~seed =
  if degree < 2 then invalid_arg "Tseitin.instance: degree must be >= 2";
  if nvertices * degree mod 2 <> 0 then
    invalid_arg "Tseitin.instance: nvertices * degree must be even";
  let st = Random.State.make [| seed; nvertices; degree |] in
  let edges = random_regular_graph st ~nvertices ~degree in
  let nedges = List.length edges in
  (* edge i -> variable i+1; collect incident edge variables per vertex *)
  let incident = Array.make nvertices [] in
  List.iteri
    (fun i (a, b) ->
      incident.(a) <- (i + 1) :: incident.(a);
      incident.(b) <- (i + 1) :: incident.(b))
    edges;
  (* random charges with the requested total parity *)
  let charges = Array.init nvertices (fun _ -> Random.State.bool st) in
  let total = Array.fold_left (fun acc c -> if c then not acc else acc) false charges in
  let want_odd = match charge with `Odd -> true | `Even -> false in
  if total <> want_odd then charges.(0) <- not charges.(0);
  let clauses =
    List.concat (List.init nvertices (fun v -> xor_clauses incident.(v) charges.(v)))
  in
  Sat.Cnf.make ~nvars:nedges clauses
