(** Towers-of-Hanoi planning instances (hanoi5/hanoi6 analog).

    SAT planning encoding: state variables give the peg of every disk at
    every time step, action variables pick the move; frame axioms and
    legality constraints complete the encoding.  The instance is
    satisfiable iff the puzzle is solvable within [steps] moves, i.e. iff
    [steps >= 2^disks - 1]. *)

val instance : disks:int -> steps:int -> Sat.Cnf.t

val optimal_steps : int -> int
(** [2^disks - 1]. *)
