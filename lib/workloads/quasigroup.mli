(** Quasigroup (Latin square) existence instances (qg* analog).

    A quasigroup of order [n] is an [n x n] Latin square.  Optional
    axioms: idempotency (a*a = a) and commutativity (a*b = b*a).  An
    idempotent {e commutative} quasigroup exists iff [n] is odd, so
    requesting both axioms at an even order yields a genuinely hard
    unsatisfiable instance, while odd orders (or fewer axioms) are
    satisfiable. *)

val instance : n:int -> idempotent:bool -> symmetric:bool -> Sat.Cnf.t
