let instance ~n ~idempotent ~symmetric =
  if n < 2 then invalid_arg "Quasigroup.instance: order must be >= 2";
  (* var r c v <=> cell (r,c) holds value v  (all 0-based here) *)
  let var r c v = (((r * n) + c) * n) + v + 1 in
  let range = List.init n (fun i -> i) in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if b > a then Some (a, b) else None) range)
      range
  in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  (* every cell holds at least one value, and at most one *)
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          add (List.map (fun v -> var r c v) range);
          List.iter (fun (v1, v2) -> add [ -var r c v1; -var r c v2 ]) pairs)
        range)
    range;
  (* each value appears at most once per row and per column (with the
     at-least constraint this makes every line a permutation) *)
  List.iter
    (fun v ->
      List.iter
        (fun line ->
          List.iter
            (fun (a, b) ->
              add [ -var line a v; -var line b v ] (* row *);
              add [ -var a line v; -var b line v ] (* column *))
            pairs)
        range)
    range;
  if idempotent then List.iter (fun i -> add [ var i i i ]) range;
  if symmetric then
    List.iter
      (fun (r, c) -> List.iter (fun v -> add [ -var r c v; var c r v ]) range)
      pairs;
  Sat.Cnf.make ~nvars:(n * n * n) (List.rev !clauses)
