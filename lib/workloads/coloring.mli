(** Graph-colouring instances (grid_* analog).

    [grid ~rows ~cols ~colors] asks for a proper [colors]-colouring of the
    [rows x cols] grid graph {e with both diagonals in every cell} (a king
    graph minus wrap-around), whose chromatic number is 4 — so 3 colours
    is unsatisfiable and 4 is satisfiable.  [cycle ~n ~colors] colours an
    odd cycle (2 colours unsatisfiable). *)

val grid : rows:int -> cols:int -> colors:int -> Sat.Cnf.t

val cycle : n:int -> colors:int -> Sat.Cnf.t

val mycielski : levels:int -> colors:int -> Sat.Cnf.t
(** Colour the Mycielski graph M_k ([levels = k], starting from a single
    edge M_2 = K2).  M_k is triangle-free for k >= 3 yet has chromatic
    number exactly [levels], so [colors = levels - 1] is unsatisfiable
    with no small witness — the hard UNSAT colouring family. *)

val random_graph : n:int -> avg_degree:float -> colors:int -> seed:int -> Sat.Cnf.t
(** k-colouring of an Erdos-Renyi graph near the colourability threshold;
    status depends on the draw (fixed by [seed]) and is verified during
    benchmark calibration. *)
