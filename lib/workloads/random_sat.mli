(** Uniform random k-SAT.

    Stand-in for the competition's random category (and the rand_net*
    instances).  At clause/variable ratio ~4.26 random 3-SAT sits at the
    phase transition where instances are hardest; below it they are almost
    surely satisfiable, above it almost surely not. *)

val instance : ?k:int -> nvars:int -> ratio:float -> seed:int -> unit -> Sat.Cnf.t
(** [instance ~nvars ~ratio ~seed ()] draws [round (ratio * nvars)]
    clauses of [k] (default 3) distinct literals each, deterministically
    from [seed]. *)

val planted : ?k:int -> nvars:int -> ratio:float -> seed:int -> unit -> Sat.Cnf.t
(** Like {!instance} but every clause is made to agree with a hidden
    assignment, so the result is guaranteed satisfiable (at any ratio). *)
