let optimal_steps disks = (1 lsl disks) - 1

(* Disks are numbered 0 (smallest) to disks-1 (largest); pegs 0..2.
   All disks start on peg 0 and must reach peg 2 after [steps] moves,
   with at most one move per step (idle steps allowed). *)
let instance ~disks ~steps =
  if disks < 1 || disks > 10 then invalid_arg "Hanoi.instance: disks out of range";
  if steps < 0 then invalid_arg "Hanoi.instance: negative steps";
  let pegs = 3 in
  let on d p t = (((d * pegs) + p) * (steps + 1)) + t + 1 in
  let non_base = disks * pegs * (steps + 1) in
  let mv d p q t = non_base + ((((((d * pegs) + p) * pegs) + q) * steps) + t) + 1 in
  let nvars = non_base + (disks * pegs * pegs * steps) in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  let drange = List.init disks (fun i -> i)
  and prange = List.init pegs (fun i -> i)
  and trange = List.init steps (fun i -> i) in
  (* degenerate move variables (p = q) are forbidden outright *)
  List.iter
    (fun d -> List.iter (fun p -> List.iter (fun t -> add [ -mv d p p t ]) trange) prange)
    drange;
  (* each disk sits on exactly one peg at every time *)
  List.iter
    (fun d ->
      List.iter
        (fun t ->
          add (List.map (fun p -> on d p t) prange);
          List.iter
            (fun p1 ->
              List.iter
                (fun p2 -> if p2 > p1 then add [ -on d p1 t; -on d p2 t ])
                prange)
            prange)
        (List.init (steps + 1) (fun i -> i)))
    drange;
  (* initial and goal states *)
  List.iter
    (fun d ->
      add [ on d 0 0 ];
      add [ on d 2 steps ])
    drange;
  (* at most one move per step *)
  let moves_at t =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun p -> List.filter_map (fun q -> if p <> q then Some (mv d p q t) else None) prange)
          prange)
      drange
  in
  List.iter
    (fun t ->
      let ms = moves_at t in
      List.iteri
        (fun i m1 ->
          List.iteri (fun j m2 -> if j > i then add [ -m1; -m2 ]) ms)
        ms)
    trange;
  (* preconditions and effects *)
  List.iter
    (fun t ->
      List.iter
        (fun d ->
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  if p <> q then begin
                    let m = mv d p q t in
                    add [ -m; on d p t ] (* disk is where it moves from *);
                    add [ -m; on d q (t + 1) ] (* and lands where it moves to *);
                    (* no smaller disk on the source (d must be the top)
                       nor on the destination (no stacking on smaller) *)
                    List.iter
                      (fun d' ->
                        if d' < d then begin
                          add [ -m; -on d' p t ];
                          add [ -m; -on d' q t ]
                        end)
                      drange
                  end)
                prange)
            prange)
        drange)
    trange;
  (* frame axioms: a disk stays put unless one of its moves fires *)
  List.iter
    (fun t ->
      List.iter
        (fun d ->
          List.iter
            (fun p ->
              let departures =
                List.filter_map (fun q -> if q <> p then Some (mv d p q t) else None) prange
              in
              add ((-on d p t :: departures) @ [ on d p (t + 1) ]))
            prange)
        drange)
    trange;
  Sat.Cnf.make ~nvars (List.rev !clauses)
