let reachable ~bits ~steps = steps mod (1 lsl bits)

let instance ~bits ~steps ~target =
  if bits < 1 || bits > 20 then invalid_arg "Counter.instance: bits out of range";
  if steps < 0 then invalid_arg "Counter.instance: negative steps";
  let c = Circuit.create () in
  (* state bits are free inputs per step; the transition relation is
     asserted between consecutive steps — the standard BMC unrolling *)
  let state = Array.init (steps + 1) (fun _ -> List.init bits (fun _ -> Circuit.input c)) in
  Circuit.assert_equal_const c state.(0) 0;
  let increment bits_in =
    let rec loop carry = function
      | [] -> []
      | b :: rest -> Circuit.sxor c b carry :: loop (Circuit.sand c b carry) rest
    in
    loop Circuit.tru bits_in
  in
  for step = 0 to steps - 1 do
    let next = increment state.(step) in
    List.iter2
      (fun actual expected -> Circuit.assert_sig c (Circuit.eq c actual expected))
      state.(step + 1) next
  done;
  Circuit.assert_equal_const c state.(steps) target;
  Circuit.to_cnf c

(* Taps chosen per width for a long (not necessarily maximal) period;
   correctness only needs the LFSR to be a bijection on states, which a
   Fibonacci LFSR always is. *)
let taps_for bits = [ 0; (bits / 2) - 1; bits - 2; bits - 1 ] |> List.sort_uniq compare

let lfsr ~bits ~steps ~target =
  if bits < 4 || bits > 60 then invalid_arg "Counter.lfsr: bits out of range";
  if steps < 1 then invalid_arg "Counter.lfsr: need at least one step";
  if target <= 0 || target lsr bits <> 0 then invalid_arg "Counter.lfsr: bad target";
  let c = Circuit.create () in
  let taps = taps_for bits in
  let state = ref (List.init bits (fun _ -> Circuit.input c)) in
  for _ = 1 to steps do
    let s = !state in
    let feedback = Circuit.big_xor c (List.filteri (fun i _ -> List.mem i taps) s) in
    (* shift right: new bit enters at the top *)
    state := List.tl s @ [ feedback ]
  done;
  Circuit.assert_equal_const c !state target;
  Circuit.to_cnf c

(* Rotate-left of an LSB-first signal list. *)
let rotl k bits =
  let n = List.length bits in
  let k = k mod n in
  List.init n (fun i -> List.nth bits ((i - k + n) mod n))

let rotl_int ~bits k x =
  let mask = (1 lsl bits) - 1 in
  ((x lsl k) lor (x lsr (bits - k))) land mask

let mixer_round_const ~bits ~seed r =
  Hashtbl.hash (seed, r, 0x2545F491) land ((1 lsl bits) - 1)

let mixer_step_int ~bits ~seed r x =
  let ( ^^ ) = ( lxor ) in
  rotl_int ~bits 1 x land rotl_int ~bits 8 x
  ^^ rotl_int ~bits 2 x ^^ x ^^ mixer_round_const ~bits ~seed r

let mixer_preimage ~bits ~rounds ~seed =
  if bits < 10 || bits > 60 then invalid_arg "Counter.mixer_preimage: bits out of range";
  if rounds < 1 then invalid_arg "Counter.mixer_preimage: need at least one round";
  (* plant a concrete input and compute the reachable target *)
  let st = Random.State.make [| seed; bits; rounds |] in
  let mask = (1 lsl bits) - 1 in
  let planted = (Random.State.bits st lor (Random.State.bits st lsl 30)) land mask in
  let target = ref planted in
  for r = 0 to rounds - 1 do
    target := mixer_step_int ~bits ~seed r !target
  done;
  (* the same function as a circuit over a free input *)
  let c = Circuit.create () in
  let state = ref (List.init bits (fun _ -> Circuit.input c)) in
  for r = 0 to rounds - 1 do
    let s = !state in
    let anded = List.map2 (Circuit.sand c) (rotl 1 s) (rotl 8 s) in
    let xored = List.map2 (Circuit.sxor c) anded (rotl 2 s) in
    let xored = List.map2 (Circuit.sxor c) xored s in
    let konst = mixer_round_const ~bits ~seed r in
    state :=
      List.mapi
        (fun i b -> if konst land (1 lsl i) <> 0 then Circuit.snot b else b)
        xored
  done;
  Circuit.assert_equal_const c !state !target;
  Circuit.to_cnf c
