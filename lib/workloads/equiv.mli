(** Circuit-equivalence checking instances (the 6pipe/7pipe verification
    analog).

    Two adder implementations — a ripple-carry adder and a
    carry-lookahead-style two-block adder — are compared with a mitre:
    the instance is satisfiable iff some input makes their outputs
    differ.  Without an injected bug the designs are equivalent (UNSAT,
    the hard verification case, like 6pipe/7pipe); [bug:true] flips one
    gate so a distinguishing input exists (SAT, like 7pipe_bug). *)

val adder_mitre : bits:int -> bug:bool -> Sat.Cnf.t

val multiplier_mitre : bits:int -> bug:bool -> Sat.Cnf.t
(** The hard verification instance: a mitre asserting
    [a * b <> b * a] over two [bits x bits] array multipliers.  Equivalent
    (UNSAT) unless [bug] flips a gate; multiplier equivalence is the
    classic CDCL-hostile structure, scaling very steeply with [bits] —
    the analog of the 6pipe/7pipe/comb microprocessor-verification
    rows. *)
