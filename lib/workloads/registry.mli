(** The benchmark registry: one entry per instance of the paper's Table 1
    and Table 2, each mapped to a synthetic analog of the same structural
    family with a known/expected status, plus the numbers the paper
    reports so the harness can print paper-vs-measured rows.

    The original SAT2002 CNF files are not redistributable (and several
    came from proprietary flows); the analogs are generated, seeded, and
    scaled so that a full table run fits a laptop budget while preserving
    the paper's qualitative structure: which rows are easy, which are
    long-running, which exhaust a single host's memory, and which defeat
    both solvers.  Scaling constants are documented in EXPERIMENTS.md. *)

type status = Sat | Unsat | Open
(** [Open] marks the rows whose satisfiability was unknown in 2003
    (starred in the paper). *)

type paper_time = Seconds of float | Timeout | Memout | Hours_bh
(** [Hours_bh] is Table 2's "33hrs+(8hrs on BH)" entry. *)

type category = Both_solved | Gridsat_only | Neither_solved

type entry = {
  name : string;  (** the SAT2002 file name used in the paper *)
  family : string;  (** which generator family the analog uses *)
  status : status;
  category : category;
  paper_zchaff : paper_time;
  paper_gridsat : paper_time;
  paper_max_clients : int option;
  gen : unit -> Sat.Cnf.t;
}

val table1 : entry list
(** All 42 rows of Table 1, in the paper's order. *)

val table2 : entry list
(** The 9 rows of Table 2. *)

val find : string -> entry option

val families : string list
(** Distinct generator families used across the registry. *)
