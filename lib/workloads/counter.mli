(** Bounded-model-checking of a hardware counter (cnt09/cnt10 analog).

    An [n]-bit register starts at zero and increments each cycle.  The
    instance asserts that after [steps] cycles the register equals
    [target] — satisfiable iff [target = steps mod 2^n].  The unrolled
    transition relation gives the long implication chains typical of BMC
    instances. *)

val instance : bits:int -> steps:int -> target:int -> Sat.Cnf.t

val reachable : bits:int -> steps:int -> int
(** The value actually reached: [steps mod 2^bits]. *)

val lfsr : bits:int -> steps:int -> target:int -> Sat.Cnf.t
(** Inversion of a Fibonacci LFSR: the initial state is free, the circuit
    is unrolled [steps] times, and the final state must equal [target].
    Satisfiable for any nonzero [target].  NOTE: shift registers are
    backward-deterministic, so plain unit propagation inverts them; this
    family is kept as an {e easy} structured workload and as a circuit
    regression test.  Use {!mixer_preimage} for the hard variant. *)

val mixer_preimage : bits:int -> rounds:int -> seed:int -> Sat.Cnf.t
(** Preimage of a SIMON-like mixing function: each round computes
    [s' = (s <<< 1 & s <<< 8) ^ (s <<< 2) ^ s ^ round_constant].  A random
    [bits]-wide input is drawn from [seed], the mixer is evaluated
    concretely to obtain the target, and the instance asks for {e any}
    input reaching that target — satisfiable by construction (the planted
    input), and hard because the AND gates stop backward propagation.
    This is the sequential-circuit/inversion analog (cache_05, cnt*,
    sha1). *)
