type status = Sat | Unsat | Open

type paper_time = Seconds of float | Timeout | Memout | Hours_bh

type category = Both_solved | Gridsat_only | Neither_solved

type entry = {
  name : string;
  family : string;
  status : status;
  category : category;
  paper_zchaff : paper_time;
  paper_gridsat : paper_time;
  paper_max_clients : int option;
  gen : unit -> Sat.Cnf.t;
}

(* Generator parameters are calibrated (see EXPERIMENTS.md) so that at the
   benchmark's virtual-time scale each row lands in the paper's band: easy
   rows stay easy, long rows are long, MEM_OUT rows exhaust the baseline
   host's scaled memory before its time budget, and "neither" rows defeat
   both solvers.  Everything is seeded, so the mapping is deterministic. *)

let par4 ~n ~m ~seed () = Parity.instance ~nbits:n ~nsamples:m ~subset:4 ~corrupted:0 ~seed

let rnd_unsat ~n ~seed () = Random_sat.instance ~nvars:n ~ratio:5.0 ~seed ()

let entry ~name ~family ~status ~category ~zchaff ~gridsat ?clients gen =
  {
    name;
    family;
    status;
    category;
    paper_zchaff = zchaff;
    paper_gridsat = gridsat;
    paper_max_clients = clients;
    gen;
  }

let table1 =
  [
    (* ---- problems solved by both zChaff and GridSAT ---- *)
    entry ~name:"6pipe.cnf" ~family:"circuit-equivalence" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 6322.) ~gridsat:(Seconds 4877.) ~clients:34 (fun () ->
        Equiv.multiplier_mitre ~bits:6 ~bug:false);
    entry ~name:"avg-checker-5-34.cnf" ~family:"random-unsat" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 1222.) ~gridsat:(Seconds 1107.) ~clients:9 (rnd_unsat ~n:170 ~seed:1);
    entry ~name:"bart15.cnf" ~family:"mixer-preimage" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 5507.) ~gridsat:(Seconds 673.) ~clients:34 (fun () ->
        Counter.mixer_preimage ~bits:40 ~rounds:9 ~seed:5);
    entry ~name:"cache_05.cnf" ~family:"mixer-preimage" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 1730.) ~gridsat:(Seconds 1565.) ~clients:34 (fun () ->
        Counter.mixer_preimage ~bits:42 ~rounds:9 ~seed:5);
    entry ~name:"cnt09.cnf" ~family:"mixer-preimage" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 3651.) ~gridsat:(Seconds 1610.) ~clients:12 (fun () ->
        Counter.mixer_preimage ~bits:38 ~rounds:9 ~seed:5);
    entry ~name:"dp12s12.cnf" ~family:"parity-planted" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 10587.) ~gridsat:(Seconds 532.) ~clients:8 (par4 ~n:105 ~m:110 ~seed:1);
    entry ~name:"homer11.cnf" ~family:"pigeonhole" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 2545.) ~gridsat:(Seconds 1794.) ~clients:10 (fun () ->
        Php.instance ~pigeons:10 ~holes:9);
    entry ~name:"homer12.cnf" ~family:"graph-coloring" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 14250.) ~gridsat:(Seconds 4400.) ~clients:33 (fun () ->
        Coloring.random_graph ~n:110 ~avg_degree:9.2 ~colors:4 ~seed:1);
    entry ~name:"ip38.cnf" ~family:"random-unsat" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 4794.) ~gridsat:(Seconds 1278.) ~clients:11 (rnd_unsat ~n:210 ~seed:1);
    entry ~name:"rand_net50-60-5.cnf" ~family:"random-unsat" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 16242.) ~gridsat:(Seconds 1725.) ~clients:20 (rnd_unsat ~n:225 ~seed:1);
    entry ~name:"vda_gr_rcs_w8.cnf" ~family:"graph-coloring" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 1427.) ~gridsat:(Seconds 681.) ~clients:15 (fun () ->
        Coloring.random_graph ~n:130 ~avg_degree:11.0 ~colors:5 ~seed:1);
    entry ~name:"w08_14.cnf" ~family:"parity-planted" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 14449.) ~gridsat:(Seconds 1906.) ~clients:34 (par4 ~n:115 ~m:120 ~seed:1);
    entry ~name:"w10_75.cnf" ~family:"parity-planted" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 506.) ~gridsat:(Seconds 252.) ~clients:2 (par4 ~n:100 ~m:105 ~seed:2);
    entry ~name:"Urquhart-s3-b1.cnf" ~family:"tseitin-expander" ~status:Unsat
      ~category:Both_solved ~zchaff:(Seconds 529.) ~gridsat:(Seconds 526.) ~clients:4 (fun () ->
        Tseitin.instance ~nvertices:15 ~degree:4 ~charge:`Odd ~seed:1);
    entry ~name:"ezfact48_5.cnf" ~family:"factoring" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 127.) ~gridsat:(Seconds 196.) ~clients:1 (fun () ->
        Factoring.instance ~abits:9 ~bbits:9 ~product:(Factoring.prime ~bits:9 ~seed:1));
    entry ~name:"glassy-sat-sel_N210_n.cnf" ~family:"random-planted" ~status:Sat
      ~category:Both_solved ~zchaff:(Seconds 7.) ~gridsat:(Seconds 68.) ~clients:1 (fun () ->
        Random_sat.planted ~nvars:210 ~ratio:4.2 ~seed:109 ());
    entry ~name:"grid_10_20.cnf" ~family:"graph-coloring" ~status:Unsat ~category:Both_solved
      ~zchaff:(Seconds 967.) ~gridsat:(Seconds 3165.) ~clients:12 (fun () ->
        Coloring.random_graph ~n:80 ~avg_degree:9.2 ~colors:4 ~seed:1);
    entry ~name:"hanoi5.cnf" ~family:"hanoi-planning" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 2961.) ~gridsat:(Seconds 1852.) ~clients:33 (fun () ->
        Hanoi.instance ~disks:5 ~steps:(Hanoi.optimal_steps 5 + 4));
    entry ~name:"hanoi6_fast.cnf" ~family:"hanoi-planning" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 1116.) ~gridsat:(Seconds 831.) ~clients:4 (fun () ->
        Hanoi.instance ~disks:5 ~steps:(Hanoi.optimal_steps 5 + 2));
    entry ~name:"lisa20_1_a.cnf" ~family:"random-planted" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 181.) ~gridsat:(Seconds 243.) ~clients:2 (fun () ->
        Random_sat.planted ~nvars:280 ~ratio:4.2 ~seed:110 ());
    entry ~name:"lisa21_3_a.cnf" ~family:"parity-planted" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 1792.) ~gridsat:(Seconds 337.) ~clients:4 (par4 ~n:95 ~m:99 ~seed:1);
    entry ~name:"pyhala-braun-sat-30-4-02.cnf" ~family:"factoring" ~status:Sat
      ~category:Both_solved ~zchaff:(Seconds 18.) ~gridsat:(Seconds 84.) ~clients:1 (fun () ->
        Factoring.instance ~abits:8 ~bbits:8 ~product:(Factoring.semiprime ~bits:8 ~seed:2));
    entry ~name:"qg2-8.cnf" ~family:"quasigroup" ~status:Sat ~category:Both_solved
      ~zchaff:(Seconds 180.) ~gridsat:(Seconds 224.) ~clients:2 (fun () ->
        Quasigroup.instance ~n:13 ~idempotent:true ~symmetric:true);
    (* ---- problems solved by GridSAT only ---- *)
    entry ~name:"7pipe_bug.cnf" ~family:"mixer-preimage" ~status:Sat ~category:Gridsat_only
      ~zchaff:Timeout ~gridsat:(Seconds 5058.) ~clients:34 (fun () ->
        Counter.mixer_preimage ~bits:40 ~rounds:10 ~seed:5);
    entry ~name:"dp10u09.cnf" ~family:"random-unsat" ~status:Unsat ~category:Gridsat_only
      ~zchaff:Timeout ~gridsat:(Seconds 2566.) ~clients:26 (rnd_unsat ~n:250 ~seed:1);
    entry ~name:"rand_net40-60-10.cnf" ~family:"random-unsat" ~status:Unsat
      ~category:Gridsat_only ~zchaff:Timeout ~gridsat:(Seconds 1690.) ~clients:30
      (rnd_unsat ~n:250 ~seed:2);
    entry ~name:"f2clk_40.cnf" ~family:"graph-coloring" ~status:Open ~category:Gridsat_only
      ~zchaff:Timeout ~gridsat:(Seconds 3304.) ~clients:23 (fun () ->
        Coloring.random_graph ~n:130 ~avg_degree:9.2 ~colors:4 ~seed:1);
    entry ~name:"Mat26.cnf" ~family:"tseitin-expander" ~status:Unsat ~category:Gridsat_only
      ~zchaff:Memout ~gridsat:(Seconds 1886.) ~clients:21 (fun () ->
        Tseitin.instance ~nvertices:22 ~degree:4 ~charge:`Odd ~seed:1);
    entry ~name:"7pipe.cnf" ~family:"circuit-equivalence" ~status:Unsat ~category:Gridsat_only
      ~zchaff:Memout ~gridsat:(Seconds 6673.) ~clients:34 (fun () ->
        Equiv.multiplier_mitre ~bits:7 ~bug:false);
    entry ~name:"comb2.cnf" ~family:"tseitin-expander" ~status:Open ~category:Gridsat_only
      ~zchaff:Memout ~gridsat:(Seconds 9951.) ~clients:34 (fun () ->
        Tseitin.instance ~nvertices:24 ~degree:4 ~charge:`Odd ~seed:1);
    entry ~name:"pyhala-braun-unsat-40-4-01.cnf" ~family:"factoring" ~status:Unsat
      ~category:Gridsat_only ~zchaff:Memout ~gridsat:(Seconds 2425.) ~clients:34 (fun () ->
        Factoring.instance ~abits:15 ~bbits:15 ~product:(Factoring.prime ~bits:15 ~seed:3));
    entry ~name:"pyhala-braun-unsat-40-4-02.cnf" ~family:"factoring" ~status:Unsat
      ~category:Gridsat_only ~zchaff:Memout ~gridsat:(Seconds 2564.) ~clients:34 (fun () ->
        Factoring.instance ~abits:15 ~bbits:15 ~product:(Factoring.prime ~bits:15 ~seed:7));
    entry ~name:"w08_15.cnf" ~family:"parity-planted" ~status:Open ~category:Gridsat_only
      ~zchaff:Memout ~gridsat:(Seconds 3141.) ~clients:34 (par4 ~n:120 ~m:126 ~seed:1);
    (* ---- problems solved by neither ---- *)
    entry ~name:"comb1.cnf" ~family:"circuit-equivalence" ~status:Open ~category:Neither_solved
      ~zchaff:Timeout ~gridsat:Timeout ~clients:34 (fun () ->
        Equiv.multiplier_mitre ~bits:9 ~bug:false);
    entry ~name:"par32-1-c.cnf" ~family:"parity-planted" ~status:Sat ~category:Neither_solved
      ~zchaff:Timeout ~gridsat:Timeout ~clients:34 (par4 ~n:155 ~m:155 ~seed:3);
    entry ~name:"rand_net70-25-5.cnf" ~family:"random-unsat" ~status:Unsat
      ~category:Neither_solved ~zchaff:Timeout ~gridsat:Timeout ~clients:34
      (rnd_unsat ~n:300 ~seed:1);
    entry ~name:"sha1.cnf" ~family:"random-planted" ~status:Sat ~category:Neither_solved
      ~zchaff:Timeout ~gridsat:Timeout ~clients:34 (fun () ->
        Random_sat.planted ~nvars:1500 ~ratio:4.25 ~seed:1 ());
    entry ~name:"3bitadd_31.cnf" ~family:"random-unsat" ~status:Unsat
      ~category:Neither_solved ~zchaff:Timeout ~gridsat:Timeout ~clients:34
      (rnd_unsat ~n:360 ~seed:9);
    entry ~name:"cnt10.cnf" ~family:"random-planted" ~status:Sat ~category:Neither_solved
      ~zchaff:Timeout ~gridsat:Timeout ~clients:34 (fun () ->
        Random_sat.planted ~nvars:1200 ~ratio:4.25 ~seed:1 ());
    entry ~name:"glassybp-v399-s499089820.cnf" ~family:"parity-planted" ~status:Sat
      ~category:Neither_solved ~zchaff:Timeout ~gridsat:Timeout ~clients:34
      (par4 ~n:170 ~m:170 ~seed:1);
    entry ~name:"hgen3-v300-s1766565160.cnf" ~family:"random-unsat" ~status:Open
      ~category:Neither_solved ~zchaff:Timeout ~gridsat:Timeout ~clients:34
      (rnd_unsat ~n:360 ~seed:2);
    entry ~name:"hanoi6.cnf" ~family:"hanoi-planning" ~status:Sat ~category:Neither_solved
      ~zchaff:Timeout ~gridsat:Timeout ~clients:34 (fun () ->
        Hanoi.instance ~disks:7 ~steps:(Hanoi.optimal_steps 7));
  ]

(* Table 2 reruns the "remaining problems" on the second apparatus; the
   generators are shared with the Table 1 rows of the same name. *)
let table2_row name gridsat =
  match List.find_opt (fun e -> e.name = name) table1 with
  | Some e -> { e with paper_zchaff = Timeout; paper_gridsat = gridsat }
  | None -> invalid_arg ("Registry.table2: unknown row " ^ name)

let table2 =
  [
    table2_row "comb1.cnf" Timeout;
    table2_row "par32-1-c.cnf" Hours_bh;
    table2_row "rand_net70-25-5.cnf" (Seconds 30837.);
    table2_row "sha1.cnf" Timeout;
    table2_row "3bitadd_31.cnf" Timeout;
    table2_row "cnt10.cnf" Timeout;
    table2_row "glassybp-v399-s499089820.cnf" (Seconds 5472.);
    table2_row "hgen3-v300-s1766565160.cnf" Timeout;
    table2_row "hanoi6.cnf" Timeout;
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) table1 with
  | Some e -> Some e
  | None -> List.find_opt (fun e -> e.name = name) table2

let families = List.sort_uniq compare (List.map (fun e -> e.family) table1)
