let coloring_cnf ~nvertices ~colors edges =
  let var v c = (v * colors) + c + 1 in
  let at_least = List.init nvertices (fun v -> List.init colors (fun c -> var v c)) in
  let at_most =
    List.concat_map
      (fun v ->
        List.concat_map
          (fun c1 ->
            List.filter_map
              (fun c2 -> if c2 > c1 then Some [ -var v c1; -var v c2 ] else None)
              (List.init colors (fun i -> i)))
          (List.init colors (fun i -> i)))
      (List.init nvertices (fun v -> v))
  in
  let conflicts =
    List.concat_map
      (fun (a, b) -> List.init colors (fun c -> [ -var a c; -var b c ]))
      edges
  in
  Sat.Cnf.make ~nvars:(nvertices * colors) (at_least @ at_most @ conflicts)

let grid ~rows ~cols ~colors =
  if rows < 2 || cols < 2 then invalid_arg "Coloring.grid: need at least a 2x2 grid";
  if colors < 1 then invalid_arg "Coloring.grid: need at least one colour";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges;
      if r + 1 < rows && c + 1 < cols then begin
        edges := (id r c, id (r + 1) (c + 1)) :: !edges;
        edges := (id r (c + 1), id (r + 1) c) :: !edges
      end
    done
  done;
  coloring_cnf ~nvertices:(rows * cols) ~colors !edges

let cycle ~n ~colors =
  if n < 3 then invalid_arg "Coloring.cycle: need at least 3 vertices";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  coloring_cnf ~nvertices:n ~colors edges

(* Mycielski construction: from G with vertices 0..n-1, build G' with
   vertices 0..n-1 (original), n..2n-1 (shadows), 2n (apex).  Shadow i is
   adjacent to the neighbours of i; the apex is adjacent to all shadows. *)
let mycielski_step (n, edges) =
  let shadow i = n + i in
  let apex = 2 * n in
  let shadow_edges =
    List.concat_map (fun (a, b) -> [ (shadow a, b); (a, shadow b) ]) edges
  in
  let apex_edges = List.init n (fun i -> (shadow i, apex)) in
  ((2 * n) + 1, edges @ shadow_edges @ apex_edges)

let mycielski ~levels ~colors =
  if levels < 2 then invalid_arg "Coloring.mycielski: levels must be >= 2";
  if colors < 1 then invalid_arg "Coloring.mycielski: need at least one colour";
  let rec build k g = if k = 0 then g else build (k - 1) (mycielski_step g) in
  let nvertices, edges = build (levels - 2) (2, [ (0, 1) ]) in
  coloring_cnf ~nvertices ~colors edges

let random_graph ~n ~avg_degree ~colors ~seed =
  if n < 2 then invalid_arg "Coloring.random_graph: need at least 2 vertices";
  let st = Random.State.make [| seed; n; colors |] in
  let nedges = int_of_float (avg_degree *. float_of_int n /. 2.) in
  let seen = Hashtbl.create (2 * nedges) in
  let rec draw acc k =
    if k = 0 then acc
    else begin
      let a = Random.State.int st n and b = Random.State.int st n in
      let key = (min a b, max a b) in
      if a = b || Hashtbl.mem seen key then draw acc k
      else begin
        Hashtbl.replace seen key ();
        draw (key :: acc) (k - 1)
      end
    end
  in
  coloring_cnf ~nvertices:n ~colors (draw [] nedges)
