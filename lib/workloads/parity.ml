let instance ~nbits ~nsamples ~subset ~corrupted ~seed =
  if subset < 1 || subset > nbits then invalid_arg "Parity.instance: bad subset size";
  if corrupted < 0 || corrupted > nsamples then invalid_arg "Parity.instance: bad corruption";
  let st = Random.State.make [| seed; nbits; nsamples; subset |] in
  let hidden = Array.init (nbits + 1) (fun _ -> Random.State.bool st) in
  let sample () =
    let rec pick acc n =
      if n = 0 then acc
      else
        let v = 1 + Random.State.int st nbits in
        if List.mem v acc then pick acc n else pick (v :: acc) (n - 1)
    in
    let vars = pick [] subset in
    let parity = List.fold_left (fun acc v -> if hidden.(v) then not acc else acc) false vars in
    (vars, parity)
  in
  let samples = List.init nsamples (fun _ -> sample ()) in
  let samples =
    List.mapi (fun i (vars, parity) -> if i < corrupted then (vars, not parity) else (vars, parity))
      samples
  in
  let clauses = List.concat_map (fun (vars, parity) -> Tseitin.xor_clauses vars parity) samples in
  Sat.Cnf.make ~nvars:nbits clauses
