let instance ~abits ~bbits ~product =
  if abits < 2 || bbits < 2 then invalid_arg "Factoring.instance: factors need >= 2 bits";
  if product < 0 then invalid_arg "Factoring.instance: negative product";
  let c = Circuit.create () in
  let a = List.init abits (fun _ -> Circuit.input c) in
  let b = List.init bbits (fun _ -> Circuit.input c) in
  let prod = Circuit.multiplier c a b in
  Circuit.assert_equal_const c prod product;
  (* both factors > 1: some bit above bit 0 must be set *)
  let nontrivial bits =
    match bits with
    | _ :: high -> Circuit.assert_sig c (Circuit.big_or c high)
    | [] -> ()
  in
  nontrivial a;
  nontrivial b;
  Circuit.to_cnf c

let is_prime n =
  if n < 2 then false
  else begin
    let rec loop d = d * d > n || (n mod d <> 0 && loop (d + 1)) in
    loop 2
  end

(* Deterministic prime pick: walk upward from a seeded start point. *)
let nth_prime_in ~bits ~index =
  let lo = 1 lsl (bits - 1) and hi = (1 lsl bits) - 1 in
  let span = hi - lo + 1 in
  let start = lo + (Hashtbl.hash (bits, index, 0x9e37) mod span) in
  let rec walk candidate remaining =
    if remaining = 0 then invalid_arg "Factoring: no prime of that size"
    else begin
      let candidate = if candidate > hi then lo else candidate in
      if is_prime candidate then candidate else walk (candidate + 1) (remaining - 1)
    end
  in
  walk start (span + 1)

let semiprime ~bits ~seed =
  let p = nth_prime_in ~bits ~index:seed in
  let q = nth_prime_in ~bits ~index:(seed + 3) in
  p * q

let decode_factors ~abits ~bbits model =
  let bit v = if Sat.Model.value model v then 1 else 0 in
  let decode offset nbits =
    let rec loop i acc = if i < 0 then acc else loop (i - 1) ((acc lsl 1) lor bit (offset + i + 1)) in
    loop (nbits - 1) 0
  in
  (decode 0 abits, decode abits bbits)

let prime ~bits ~seed =
  (* a prime needing the full 2*bits width: no bits x bits factorisation
     with both factors > 1 can exist *)
  let rec find i =
    let candidate = nth_prime_in ~bits:(2 * bits) ~index:(seed + i) in
    if candidate > (1 lsl bits) - 1 then candidate else find (i + 1)
  in
  find 0
