(** Tseitin parity formulas on random regular graphs.

    The analog of the Urquhart instances: assign a variable to every edge
    of a connected d-regular multigraph and a charge to every vertex;
    require each vertex's incident edges to XOR to its charge.  The
    formula is satisfiable iff the total charge is even, and when the
    graph is an expander the UNSAT instances are exponentially hard for
    resolution. *)

val instance : nvertices:int -> degree:int -> charge:[ `Even | `Odd ] -> seed:int -> Sat.Cnf.t
(** [degree] must be at least 2; [`Odd] total charge makes the instance
    unsatisfiable. *)

val xor_clauses : int list -> bool -> int list list
(** [xor_clauses vars b] is the direct CNF of "the XOR of [vars] equals
    [b]" (2^(n-1) clauses — keep [vars] short).  Shared with the parity
    family. *)
