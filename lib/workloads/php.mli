(** Pigeonhole instances.

    [instance ~pigeons ~holes] asks whether [pigeons] pigeons fit into
    [holes] holes, one per hole.  Unsatisfiable iff [pigeons > holes], and
    famously exponential for resolution-based solvers — the stand-in for
    the "hand-made" hard UNSAT families of the SAT2002 suite. *)

val instance : pigeons:int -> holes:int -> Sat.Cnf.t

val variable : holes:int -> int -> int -> int
(** [variable ~holes p h] is the DIMACS variable meaning "pigeon [p] sits
    in hole [h]" (1-based). *)
