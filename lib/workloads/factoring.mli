(** Integer-factoring circuit instances (ezfact / pyhala-braun analog).

    An [abits x bbits] array multiplier is constrained to produce a given
    product, with both factors required to be non-trivial (> 1).  The
    instance is satisfiable iff the target has a factorisation of the
    requested shape — so a (semi)prime target of the right size gives SAT
    and a prime target gives UNSAT. *)

val instance : abits:int -> bbits:int -> product:int -> Sat.Cnf.t

val semiprime : bits:int -> seed:int -> int
(** A product of two primes that each fit in [bits] bits (both > 1),
    chosen deterministically from [seed]. *)

val prime : bits:int -> seed:int -> int
(** A prime that fits in [2 * bits] bits but exceeds what any single
    [bits]-bit factor pair could produce trivially; factoring it with
    [bits x bits] factors is unsatisfiable. *)

val decode_factors : abits:int -> bbits:int -> Sat.Model.t -> int * int
(** Reads the two factors out of a satisfying assignment of {!instance}
    (the factor inputs are the first [abits + bbits] variables). *)
