(** Parity-learning instances (the par8/par16/par32 family analog).

    A hidden bit vector is sampled; each sample XORs a random subset of
    its bits, and a fraction of the reported parities is corrupted.  The
    instance asks for an assignment consistent with {e all} reports —
    satisfiable when nothing is corrupted, and hard for CDCL solvers well
    before the sizes that stumped them in 2002 (par32 was only solved by
    GridSAT). *)

val instance :
  nbits:int -> nsamples:int -> subset:int -> corrupted:int -> seed:int -> Sat.Cnf.t
(** [corrupted = 0] gives a satisfiable (planted) instance; corrupting
    samples usually makes it unsatisfiable (and always leaves it hard). *)
