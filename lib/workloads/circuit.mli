(** Combinational circuit builder with Tseitin CNF encoding.

    Several SAT2002 families are circuit problems (microprocessor
    verification, factoring, counters).  This module builds gate-level
    circuits and emits equisatisfiable CNF via the Tseitin transformation;
    the family generators below use it as their common substrate. *)

type t

type signal
(** A boolean wire: a variable, its negation, or a constant. *)

val create : unit -> t

val tru : signal

val fls : signal

val input : t -> signal
(** A fresh primary input. *)

val snot : signal -> signal

val sand : t -> signal -> signal -> signal

val sor : t -> signal -> signal -> signal

val sxor : t -> signal -> signal -> signal

val snand : t -> signal -> signal -> signal

val mux : t -> sel:signal -> signal -> signal -> signal
(** [mux ~sel a b] is [a] when [sel] is false, [b] when [sel] is true. *)

val big_and : t -> signal list -> signal

val big_or : t -> signal list -> signal

val big_xor : t -> signal list -> signal

val eq : t -> signal -> signal -> signal
(** XNOR. *)

val full_adder : t -> signal -> signal -> signal -> signal * signal
(** [full_adder t a b cin] is [(sum, carry)]. *)

val ripple_add : t -> signal list -> signal list -> signal list
(** LSB-first addition, result has [max len + 1] bits. *)

val multiplier : t -> signal list -> signal list -> signal list
(** LSB-first array multiplier; result has [len a + len b] bits. *)

val assert_sig : t -> signal -> unit
(** Constrains the signal to be true in every model. *)

val assert_equal_const : t -> signal list -> int -> unit
(** Constrains an LSB-first bit vector to a non-negative integer value. *)

val nvars : t -> int

val to_cnf : t -> Sat.Cnf.t
(** The accumulated Tseitin clauses plus assertions. *)
