let usec seconds = int_of_float (Float.round (seconds *. 1e6))

let tid_name tid =
  if tid = Span.master_tid then "master"
  else if tid = Span.run_tid then "run"
  else Printf.sprintf "client %d" tid

let metadata ~process_name tids =
  let proc =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  let threads =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String (tid_name tid) ) ]);
          ])
      tids
  in
  proc :: threads

let event_of_span (s : Span.span) =
  let args =
    ("sid", Json.Int s.sid)
    :: (if s.parent = Span.none then [] else [ ("parent", Json.Int s.parent) ])
    @ s.args
  in
  let common =
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("pid", Json.Int 1);
      ("tid", Json.Int s.tid);
      ("ts", Json.Int (usec s.start));
    ]
  in
  match s.kind with
  | Span.Complete ->
      Json.Obj
        (common
        @ [ ("ph", Json.String "X"); ("dur", Json.Int (usec (s.stop -. s.start))); ("args", Json.Obj args) ]
        )
  | Span.Instant ->
      Json.Obj (common @ [ ("ph", Json.String "i"); ("s", Json.String "t"); ("args", Json.Obj args) ])

let export ?(process_name = "gridsat") recorder =
  let spans = Span.spans recorder in
  let tids =
    List.fold_left (fun acc (s : Span.span) -> if List.mem s.tid acc then acc else s.tid :: acc) [] spans
    |> List.sort compare
  in
  let events = metadata ~process_name tids @ List.map event_of_span spans in
  Json.Obj [ ("displayTimeUnit", Json.String "ms"); ("traceEvents", Json.List events) ]

let export_string ?process_name recorder = Json.to_string (export ?process_name recorder) ^ "\n"

(* ---------- validation ---------- *)

let known_phases = [ "X"; "i"; "M"; "B"; "E"; "b"; "e"; "s"; "t"; "f"; "C" ]

let is_number = function Json.Int _ | Json.Float _ -> true | _ -> false

let validate_event i ev =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
  match ev with
  | Json.Obj _ -> (
      match Json.member "ph" ev with
      | Some (Json.String ph) when List.mem ph known_phases -> (
          match Json.member "name" ev with
          | Some (Json.String _) -> (
              if ph = "M" then Ok ()
              else
                match Json.member "ts" ev with
                | Some ts when is_number ts -> (
                    if ph <> "X" then Ok ()
                    else
                      match Json.member "dur" ev with
                      | Some d when is_number d -> Ok ()
                      | Some _ -> fail "\"X\" event with non-numeric dur"
                      | None -> fail "\"X\" event missing dur")
                | Some _ -> fail "non-numeric ts"
                | None -> fail "missing ts")
          | Some _ -> fail "non-string name"
          | None -> fail "missing name")
      | Some (Json.String ph) -> fail "unknown phase %S" ph
      | Some _ -> fail "non-string ph"
      | None -> fail "missing ph")
  | _ -> fail "not an object"

let validate doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List events) ->
      let rec check i = function
        | [] -> Ok ()
        | ev :: rest -> ( match validate_event i ev with Ok () -> check (i + 1) rest | e -> e)
      in
      check 0 events
  | Some _ -> Error "traceEvents is not an array"
  | None -> Error "missing traceEvents array"
