(** Flight recorder: bounded per-subsystem ring buffers of recent
    structured events, dumped as one causally-ordered incident file when
    an anomaly trigger fires.

    Each subsystem (master, clients, net, pool, service) writes into its
    own ring via {!note}; a disabled recorder costs one branch per call
    site.  Events carry a global monotone sequence number — the run is
    single-threaded on virtual time, so seq order is a causal total
    order across subsystems.  Rings keep only the last [capacity]
    events per subsystem, so a dump is a bounded window ending at the
    trigger, not a full log. *)

type t

type event = {
  seq : int;  (** global causal order across all subsystems *)
  at : float;  (** virtual time *)
  sub : string;  (** subsystem ring the event was recorded into *)
  name : string;
  args : (string * Json.t) list;
}

val create : ?capacity:int -> unit -> t
(** A live recorder keeping the last [capacity] (default 256) events
    per subsystem, clocked by {!Clock.now} until {!set_clock}. *)

val disabled : t
(** Shared inert recorder: {!note} is a single branch, never records. *)

val is_enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Point event timestamps at a custom time source (e.g. virtual
    simulation time). *)

val note : t -> sub:string -> ?args:(string * Json.t) list -> string -> unit
(** Record an event into subsystem [sub]'s ring, evicting the oldest
    when full. *)

val recorded : t -> int
(** Total events ever recorded. *)

val evicted : t -> int
(** Events evicted from rings (and so missing from the next dump). *)

val events : t -> event list
(** Surviving events across all rings, in causal (seq) order. *)

val clear : t -> unit
(** Drop all rings (e.g. after dumping an incident). *)

val dump : t -> at:float -> trigger:string -> ?detail:string -> unit -> Json.t
(** Incident document ([gridsat-flight/1]): the trigger, the covered
    time window, recorded/evicted totals, and the surviving events in
    causal order. *)

val file_name : at:float -> trigger:string -> string
(** Canonical incident file name [FLIGHT-<vtime>-<trigger>.json]; the
    trigger is sanitised to filesystem-safe characters and the virtual
    time zero-padded so names sort chronologically. *)
