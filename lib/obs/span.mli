(** Causal span recorder.

    A span is a named interval (or instant) on a logical track, carrying
    an id and its parent's id so protocol exchanges — a split's
    five-message sequence, a share broadcast's fan-out — can be followed
    across processes.  Timestamps come from the recorder's clock, which
    the embedding run points at virtual (simulation) time for grid runs
    or at {!Clock.now} for sequential ones; with a deterministic clock
    the recorded stream is deterministic too.

    Track ids ([tid]) identify the emitting process: {!master_tid} for
    the master, the client id for clients, {!run_tid} for run-level
    events. *)

type id = int
(** 0 is "no span" (the root, or a recorder that is off). *)

type kind = Complete | Instant

type span = {
  sid : id;
  parent : id;
  name : string;
  cat : string;  (** coarse category: "solver", "protocol", "master", ... *)
  tid : int;
  start : float;
  mutable stop : float;  (** = [start] until {!exit}; instants keep it equal *)
  mutable closed : bool;
  mutable args : (string * Json.t) list;
  kind : kind;
}

type t

val none : id

val run_tid : int
(** Track for run-scoped events (0). *)

val master_tid : int
(** Track for the master process (1000). *)

val create : enabled:bool -> t

val disabled : t

val is_enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Replace the time source (default {!Clock.now}). *)

val now : t -> float

val enter :
  t -> ?parent:id -> ?args:(string * Json.t) list -> ?tid:int -> cat:string -> string -> id
(** Open a span; returns its id ({!none} when disabled or full). *)

val exit : t -> ?args:(string * Json.t) list -> id -> unit
(** Close a span, stamping its end time and appending [args].  Closing
    {!none} or an already-closed span is a no-op. *)

val instant :
  t -> ?parent:id -> ?args:(string * Json.t) list -> ?tid:int -> cat:string -> string -> id
(** Record a point event. *)

val spans : t -> span list
(** All recorded spans in creation order. *)

val count : t -> int

val dropped : t -> int
(** Spans discarded after the recorder filled up (capacity 200_000). *)

val find : t -> id -> span option

val to_json : t -> Json.t
(** Span list as JSON (used inside the run report). *)
