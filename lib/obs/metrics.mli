(** Metrics registry: counters, gauges, and log-bucketed histograms.

    Instruments are looked up (or created) once by [(name, labels)] and
    the returned handle is kept by the instrumented code, so recording on
    the hot path is a single mutable-field update — no hashing, no
    allocation.

    A registry created with [enabled:false] (or the shared {!disabled}
    instance) hands out dummy instruments: recording into them is a store
    into a shared scratch cell, and {!to_json} renders an empty registry.
    Hot paths that want to skip even that store can branch on
    {!is_enabled} once at setup. *)

type t

type counter

type gauge

type histogram

val create : enabled:bool -> t

val disabled : t
(** Shared always-off registry; its instruments are inert. *)

val is_enabled : t -> bool

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find-or-create.  Same [(name, labels)] returns the same handle. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?labels:(string * string) list -> string -> histogram
(** Log-bucketed: 4 sub-buckets per octave (~12% relative accuracy). *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_max : gauge -> float -> unit
(** Keep the maximum of the recorded values. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample.  Non-finite and negative samples count in [count]
    but not in any bucket. *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0,1]: approximate value below which a
    fraction [q] of samples fall (bucket-midpoint interpolation).  0.0
    when empty. *)

val to_json : t -> Json.t
(** Deterministic export: instruments sorted by name then labels.
    Counters/gauges carry their value; histograms carry count, sum,
    min/max and p50/p90/p99. *)
