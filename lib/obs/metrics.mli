(** Metrics registry: counters, gauges, and log-bucketed histograms.

    Instruments are looked up (or created) once by [(name, labels)] and
    the returned handle is kept by the instrumented code, so recording on
    the hot path is a single mutable-field update — no hashing, no
    allocation.

    A registry created with [enabled:false] (or the shared {!disabled}
    instance) hands out dummy instruments: recording into them is a store
    into a shared scratch cell, and {!to_json} renders an empty registry.
    Hot paths that want to skip even that store can branch on
    {!is_enabled} once at setup. *)

type t

type counter

type gauge

type histogram

val create : enabled:bool -> t

val disabled : t
(** Shared always-off registry; its instruments are inert. *)

val is_enabled : t -> bool

val scope : t -> labels:(string * string) list -> t
(** A scoped handle sharing this registry's table: [labels] are appended
    to the labels of every instrument created through it.  This is how
    the service isolates concurrent jobs — each job's subsystems get a
    handle scoped by [job]/[tenant] labels, so their samples land in
    distinct instruments instead of bleeding into each other.  Scoping a
    disabled registry returns it unchanged. *)

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find-or-create.  Same [(name, labels)] returns the same handle. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?labels:(string * string) list -> string -> histogram
(** Log-bucketed: 4 sub-buckets per octave (~12% relative accuracy). *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_max : gauge -> float -> unit
(** Keep the maximum of the recorded values. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample.  Non-finite and negative samples count in [count]
    but not in any bucket. *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0,1]: approximate value below which a
    fraction [q] of samples fall (bucket-midpoint interpolation).  0.0
    when empty. *)

val to_json : t -> Json.t
(** Deterministic export: instruments sorted by name then labels.
    Counters/gauges carry their value; histograms carry count, sum,
    min/max and p50/p90/p99. *)

val merged_json : t -> Json.t
(** Label-stripped service-level view: instruments sharing a base name
    are merged — counters sum, gauges keep the max, histograms add
    bucket-wise (count/sum add, min/max widen), so merged quantiles stay
    within the bucket resolution of the per-label quantile envelope. *)

type export =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      lo : float;
      hi : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

val export_all : t -> (string * export) list
(** Flat deterministic snapshot (sorted by full key, labels included);
    feeds {!Expo}. *)

val export_merged : t -> (string * export) list
(** Like {!export_all} over the label-stripped merged view of
    {!merged_json}. *)
