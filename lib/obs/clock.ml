let last = ref 0.0

let now () =
  let t = Sys.time () in
  if t > !last then last := t;
  !last

let elapsed_since t0 = Float.max 0.0 (now () -. t0)
