(** Minimal JSON values: enough to write and read the telemetry files
    (run reports, Chrome traces, bench snapshots) without an external
    dependency.

    Serialisation is canonical — object members keep their given order,
    floats print through one fixed format — so two identical value trees
    always render to identical bytes (the property the byte-stability
    tests rely on). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact canonical rendering (no insignificant whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for humans. *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Numbers without [.], [e] or [E] load as
    [Int]; everything else as [Float].  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val float_repr : float -> string
(** The canonical float format used by {!to_string} ([%.12g], with
    integral values printed without a fractional part). *)
