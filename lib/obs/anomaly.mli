(** Streaming anomaly triggers on virtual time.

    Two kinds of trigger flow through one funnel: discrete rule trips
    ({!trip} — quarantine, probation, brownout entry, deadline miss,
    master failover, SLO fast-burn) and statistical detectors
    ({!detector}/{!observe} — EWMA mean / EWMA absolute-deviation
    z-scores over live signals such as ack latency, share volume, cache
    hit rate and heartbeat gaps).  Every trigger is recorded and fanned
    out to the registered handlers (the service uses one to dump the
    flight recorder).  All state advances only on observed samples and
    virtual timestamps, so triggers are deterministic per seed. *)

type t

type trigger = {
  at : float;
  rule : string;
  value : float;
  threshold : float;
  detail : string;
}

val create : unit -> t

val disabled : t
(** Shared inert funnel: trips and observations are single branches. *)

val is_enabled : t -> bool

val on_trigger : t -> (trigger -> unit) -> unit
(** Register a handler; handlers run in registration order on every
    trigger. *)

val trip :
  t ->
  at:float ->
  rule:string ->
  ?value:float ->
  ?threshold:float ->
  ?detail:string ->
  unit ->
  unit
(** Fire a discrete trigger. *)

val triggers : t -> trigger list
(** All fired triggers, oldest first. *)

val to_json : t -> Json.t

type detector

val detector :
  t ->
  name:string ->
  ?alpha:float ->
  ?z:float ->
  ?min_n:int ->
  ?cooldown:float ->
  ?direction:[ `High | `Low | `Both ] ->
  unit ->
  detector

val observe : detector -> at:float -> float -> unit
(** Feed one sample at virtual time [at].  The sample is scored against
    the EWMA baseline established by earlier samples; a z-score beyond
    the threshold (in the watched direction) trips the owner funnel
    under the detector's name, rate-limited by [cooldown] seconds.  The
    first [min_n] samples only warm the baseline.  On a disabled
    funnel's detector this is a single branch. *)
