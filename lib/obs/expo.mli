(** Prometheus-style text exposition of a metrics registry.

    Dotted instrument names are sanitised to underscores
    ([service.jobs.completed] → [service_jobs_completed]), labels are
    rendered as [{k="v",...}], and histograms render as summaries: one
    series per quantile (0.5/0.9/0.99) plus [_sum] and [_count].  The
    output is sorted and byte-deterministic for a given registry state,
    so scrapers and CI can diff it. *)

val render : Metrics.t -> string
(** The full registry (labels included), one exposition document. *)

val render_merged : Metrics.t -> string
(** The label-stripped service-level view (see
    {!Metrics.merged_json}). *)
