(* Per-tenant service-level objectives with rolling error budgets and
   multi-window burn-rate alerts.

   Spec grammar (see {!parse}):

     spec      := tenant-slo (';' tenant-slo)*
     tenant-slo:= tenant ':' target (',' target)*
     tenant    := '*' | name            (* '*' = default for any tenant *)
     target    := 'queue_wait' '<' sec ['@' obj]
                | 'solve'      '<' sec ['@' obj]
                | 'errors'     '<' frac

   e.g.  "*:queue_wait<30@0.9,solve<120@0.95,errors<0.05;batch:solve<600"

   Each (tenant, target) is a good/bad event stream.  The error budget is
   1 - objective; the burn rate over a window is
   bad_fraction / (1 - objective), so burn 1.0 = exactly on budget.  A
   fast-burn alert fires when both the short and the long window burn
   past the threshold — the classic multi-window guard against alerting
   on a single bad event. *)

type kind = Queue_wait | Solve | Errors

let kind_name = function
  | Queue_wait -> "queue_wait"
  | Solve -> "solve"
  | Errors -> "errors"

type target = { kind : kind; bound : float; objective : float }

type spec = { raw : string; targets : (string * target list) list }
(** tenant -> targets; tenant "*" is the wildcard fallback *)

let spec_string s = s.raw

let default_objective = 0.9

let parse_target s =
  let s = String.trim s in
  match String.index_opt s '<' with
  | None -> Error (Printf.sprintf "target %S: expected kind<bound" s)
  | Some i -> (
      let kind_s = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let bound_s, obj_s =
        match String.index_opt rest '@' with
        | None -> (String.trim rest, None)
        | Some j ->
            ( String.trim (String.sub rest 0 j),
              Some (String.trim (String.sub rest (j + 1) (String.length rest - j - 1))) )
      in
      let kind =
        match kind_s with
        | "queue_wait" -> Ok Queue_wait
        | "solve" -> Ok Solve
        | "errors" -> Ok Errors
        | k -> Error (Printf.sprintf "unknown SLI %S (want queue_wait|solve|errors)" k)
      in
      match kind with
      | Error e -> Error e
      | Ok kind -> (
          match float_of_string_opt bound_s with
          | None -> Error (Printf.sprintf "target %S: bad bound %S" s bound_s)
          | Some bound when bound <= 0.0 && kind <> Errors ->
              Error (Printf.sprintf "target %S: bound must be positive" s)
          | Some bound when kind = Errors && (bound <= 0.0 || bound >= 1.0) ->
              Error (Printf.sprintf "target %S: error fraction must be in (0,1)" s)
          | Some bound -> (
              match (kind, obj_s) with
              | Errors, Some _ ->
                  Error (Printf.sprintf "target %S: errors takes no @objective" s)
              | Errors, None ->
                  (* errors<f is sugar for objective 1-f on the error stream *)
                  Ok { kind; bound; objective = 1.0 -. bound }
              | _, None -> Ok { kind; bound; objective = default_objective }
              | _, Some o -> (
                  match float_of_string_opt o with
                  | Some o when o > 0.0 && o < 1.0 -> Ok { kind; bound; objective = o }
                  | _ ->
                      Error
                        (Printf.sprintf "target %S: objective must be in (0,1)" s)))))

let parse raw =
  let tenant_slos =
    String.split_on_char ';' raw |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if tenant_slos = [] then Error "empty SLO spec"
  else
    let rec go acc = function
      | [] -> Ok { raw; targets = List.rev acc }
      | part :: rest -> (
          match String.index_opt part ':' with
          | None -> Error (Printf.sprintf "%S: expected tenant:target,..." part)
          | Some i -> (
              let tenant = String.trim (String.sub part 0 i) in
              let tenant = if tenant = "" then "*" else tenant in
              if List.mem_assoc tenant acc then
                Error (Printf.sprintf "duplicate tenant %S in SLO spec" tenant)
              else
                let targets_s =
                  String.sub part (i + 1) (String.length part - i - 1)
                  |> String.split_on_char ','
                in
                let rec targets acc_t = function
                  | [] -> Ok (List.rev acc_t)
                  | t :: ts -> (
                      match parse_target t with
                      | Ok t -> targets (t :: acc_t) ts
                      | Error e -> Error e)
                in
                match targets [] targets_s with
                | Error e -> Error e
                | Ok [] -> Error (Printf.sprintf "tenant %S: no targets" tenant)
                | Ok ts -> go ((tenant, ts) :: acc) rest))
    in
    go [] tenant_slos

(* ---------- runtime tracking ---------- *)

type sample = { at : float; bad : bool }

type stream = {
  tenant : string;
  target : target;
  mutable samples : sample list;  (** newest first, trimmed to window_long *)
  mutable total : int;
  mutable total_bad : int;
  mutable fast_burning : bool;
}

type t = {
  spec : spec;
  window_short : float;
  window_long : float;
  fast_burn : float;
  mutable streams : stream list;  (** creation order *)
  mutable on_fast_burn : (tenant:string -> target:string -> burn:float -> unit) list;
}

let create ?(window_short = 60.0) ?(window_long = 600.0) ?(fast_burn = 6.0) spec =
  { spec; window_short; window_long; fast_burn; streams = []; on_fast_burn = [] }

let spec t = t.spec

let on_fast_burn t f = t.on_fast_burn <- t.on_fast_burn @ [ f ]

let targets_for t tenant =
  match List.assoc_opt tenant t.spec.targets with
  | Some ts -> ts
  | None -> ( match List.assoc_opt "*" t.spec.targets with Some ts -> ts | None -> [])

let stream_for t tenant target =
  match
    List.find_opt (fun s -> s.tenant = tenant && s.target == target) t.streams
  with
  | Some s -> s
  | None ->
      let s =
        { tenant; target; samples = []; total = 0; total_bad = 0; fast_burning = false }
      in
      t.streams <- t.streams @ [ s ];
      s

let window_stats s ~now ~window =
  let from_t = now -. window in
  let n = ref 0 and bad = ref 0 in
  List.iter
    (fun smp ->
      if smp.at >= from_t then begin
        incr n;
        if smp.bad then incr bad
      end)
    s.samples;
  (!n, !bad)

let burn_rate s ~now ~window =
  let n, bad = window_stats s ~now ~window in
  if n = 0 then 0.0
  else
    let budget = 1.0 -. s.target.objective in
    if budget <= 0.0 then 0.0 else float_of_int bad /. float_of_int n /. budget

let record t s ~now ~bad =
  s.samples <- { at = now; bad } :: s.samples;
  s.total <- s.total + 1;
  if bad then s.total_bad <- s.total_bad + 1;
  (* trim beyond the long window *)
  let from_t = now -. t.window_long in
  s.samples <- List.filter (fun smp -> smp.at >= from_t) s.samples;
  let short = burn_rate s ~now ~window:t.window_short in
  let long = burn_rate s ~now ~window:t.window_long in
  let burning = short >= t.fast_burn && long >= t.fast_burn in
  if burning && not s.fast_burning then
    List.iter
      (fun f -> f ~tenant:s.tenant ~target:(kind_name s.target.kind) ~burn:short)
      t.on_fast_burn;
  s.fast_burning <- burning

let note_sample t ~now ~tenant kind value =
  List.iter
    (fun target ->
      if target.kind = kind then
        record t (stream_for t tenant target) ~now ~bad:(value >= target.bound))
    (targets_for t tenant)

let note_queue_wait t ~now ~tenant wait = note_sample t ~now ~tenant Queue_wait wait

let note_solved t ~now ~tenant latency =
  note_sample t ~now ~tenant Solve latency;
  (* a completed job is a good event on the error stream *)
  List.iter
    (fun target ->
      if target.kind = Errors then record t (stream_for t tenant target) ~now ~bad:false)
    (targets_for t tenant)

let note_error t ~now ~tenant =
  List.iter
    (fun target ->
      if target.kind = Errors then record t (stream_for t tenant target) ~now ~bad:true)
    (targets_for t tenant)

let json_of_stream t ~now s =
  let n_short, bad_short = window_stats s ~now ~window:t.window_short in
  let n_long, bad_long = window_stats s ~now ~window:t.window_long in
  let budget = 1.0 -. s.target.objective in
  let burned =
    if s.total = 0 || budget <= 0.0 then 0.0
    else float_of_int s.total_bad /. float_of_int s.total /. budget
  in
  Json.Obj
    [
      ("tenant", Json.String s.tenant);
      ("sli", Json.String (kind_name s.target.kind));
      ("bound", Json.Float s.target.bound);
      ("objective", Json.Float s.target.objective);
      ("events", Json.Int s.total);
      ("bad", Json.Int s.total_bad);
      ("budget_burned", Json.Float burned);
      ( "burn_short",
        Json.Obj
          [
            ("window_s", Json.Float t.window_short);
            ("events", Json.Int n_short);
            ("bad", Json.Int bad_short);
            ("rate", Json.Float (burn_rate s ~now ~window:t.window_short));
          ] );
      ( "burn_long",
        Json.Obj
          [
            ("window_s", Json.Float t.window_long);
            ("events", Json.Int n_long);
            ("bad", Json.Int bad_long);
            ("rate", Json.Float (burn_rate s ~now ~window:t.window_long));
          ] );
      ("fast_burning", Json.Bool s.fast_burning);
    ]

let to_json t ~now =
  Json.Obj
    [
      ("spec", Json.String t.spec.raw);
      ("fast_burn_threshold", Json.Float t.fast_burn);
      ("objectives", Json.List (List.map (json_of_stream t ~now) t.streams));
    ]

let summary t ~now =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-10s <%g@%g  events=%d bad=%d burned=%.2f%s\n" s.tenant
           (kind_name s.target.kind) s.target.bound s.target.objective s.total
           s.total_bad
           (let budget = 1.0 -. s.target.objective in
            if s.total = 0 || budget <= 0.0 then 0.0
            else float_of_int s.total_bad /. float_of_int s.total /. budget)
           (if s.fast_burning then "  FAST-BURN" else "")))
    t.streams;
  ignore now;
  Buffer.contents buf
