(** Telemetry context for a run.

    [Obs.t] bundles a metrics registry and a span recorder behind one
    on/off switch.  Every subsystem takes an optional [?obs] argument
    defaulting to {!disabled}; the disabled context hands out inert
    instruments and never records a span, so instrumented code costs a
    few predictable branches when telemetry is off (verified by the
    [obs] micro-bench).

    The embedding run owns the clock: grid runs point it at virtual
    simulation time (making traces deterministic per seed), sequential
    runs leave the default CPU clock. *)

module Json = Json
module Clock = Clock
module Metrics = Metrics
module Span = Span
module Chrome = Chrome
module Report = Report

type t

val create : unit -> t
(** A live context (metrics + spans enabled), clocked by {!Clock.now}
    until {!set_clock}. *)

val disabled : t
(** The shared inert context. *)

val enabled : t -> bool

val metrics : t -> Metrics.t

val spans : t -> Span.t

val set_clock : t -> (unit -> float) -> unit
(** Point span timestamps at a custom time source (e.g. virtual
    simulation time). *)

val now : t -> float
(** Current time on this context's clock. *)
