(** Telemetry context for a run.

    [Obs.t] bundles a metrics registry, a span recorder, a flight
    recorder and an anomaly-trigger funnel behind one on/off switch.
    Every subsystem takes an optional [?obs] argument defaulting to
    {!disabled}; the disabled context hands out inert instruments and
    never records a span or flight event, so instrumented code costs a
    few predictable branches when telemetry is off (verified by the
    [obs] micro-bench).

    The embedding run owns the clock: grid runs point it at virtual
    simulation time (making traces deterministic per seed), sequential
    runs leave the default CPU clock. *)

module Json = Json
module Clock = Clock
module Metrics = Metrics
module Span = Span
module Chrome = Chrome
module Report = Report
module Flight = Flight
module Anomaly = Anomaly
module Slo = Slo
module Expo = Expo

type t

val create : ?flight:Flight.t -> ?anomaly:Anomaly.t -> unit -> t
(** A live context (metrics + spans enabled), clocked by {!Clock.now}
    until {!set_clock}.  The flight recorder and anomaly funnel default
    to their disabled instances so plain telemetry runs pay (and emit)
    nothing new; pass live ones to opt in. *)

val disabled : t
(** The shared inert context. *)

val enabled : t -> bool

val metrics : t -> Metrics.t

val spans : t -> Span.t

val flight : t -> Flight.t

val anomaly : t -> Anomaly.t

val scope : t -> labels:(string * string) list -> t
(** A context whose metrics handles are scoped by [labels] (see
    {!Metrics.scope}); spans, flight recorder and anomaly funnel are
    shared with the parent. *)

val set_clock : t -> (unit -> float) -> unit
(** Point span and flight-event timestamps at a custom time source
    (e.g. virtual simulation time). *)

val now : t -> float
(** Current time on this context's clock. *)
