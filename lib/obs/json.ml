type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_repr f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write ~indent ~level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          add_escaped buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf item)
        members;
      nl level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 4096 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v

let member k = function Obj members -> List.assoc_opt k members | _ -> None

(* ---------- parsing ---------- *)

exception Parse of int * string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse (c.pos, msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some k when k = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* enough for the escapes our own writer emits plus the common plane *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' ->
            advance c;
            Buffer.add_char buf '"';
            loop ()
        | Some '\\' ->
            advance c;
            Buffer.add_char buf '\\';
            loop ()
        | Some '/' ->
            advance c;
            Buffer.add_char buf '/';
            loop ()
        | Some 'b' ->
            advance c;
            Buffer.add_char buf '\b';
            loop ()
        | Some 'f' ->
            advance c;
            Buffer.add_char buf '\012';
            loop ()
        | Some 'n' ->
            advance c;
            Buffer.add_char buf '\n';
            loop ()
        | Some 'r' ->
            advance c;
            Buffer.add_char buf '\r';
            loop ()
        | Some 't' ->
            advance c;
            Buffer.add_char buf '\t';
            loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
            let hex = String.sub c.text c.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
                c.pos <- c.pos + 4;
                utf8_of_code buf code
            | None -> fail c "bad \\u escape");
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec run () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        run ()
    | _ -> ()
  in
  run ();
  let s = String.sub c.text start (c.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

(* Nesting bound: recursive descent burns native stack per level, so a
   hostile [[[[... input would otherwise overflow it.  512 is far above
   anything our own writer produces. *)
let max_depth = 512

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          items := parse_value c (depth + 1) :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              loop ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec loop () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth + 1) in
          members := (k, v) :: !members;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              loop ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !members)
      end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string text =
  let c = { text; pos = 0 } in
  match parse_value c 0 with
  | v ->
      skip_ws c;
      if c.pos <> String.length text then Error (Printf.sprintf "trailing data at byte %d" c.pos)
      else Ok v
  | exception Parse (pos, msg) -> Error (Printf.sprintf "%s at byte %d" msg pos)
