(** Aggregated run report.

    One JSON document merging the metrics registry, a summary of the
    span tree, and any caller-supplied sections (solver stats, timeline
    busy-curve, run outcome).  The document is self-describing via a
    [schema] tag so [gridsat report] can refuse files it does not
    understand. *)

val schema : string
(** Current schema tag ("gridsat-report/1"). *)

val build :
  ?meta:(string * Json.t) list ->
  ?sections:(string * Json.t) list ->
  metrics:Metrics.t ->
  spans:Span.t ->
  unit ->
  Json.t
(** Assemble the document: [schema], [meta], [metrics], a [spans]
    summary (count, dropped, per-category durations), then the extra
    [sections] in the given order. *)

val validate : Json.t -> (unit, string) result
(** Structural check: schema tag present and recognised, [metrics] an
    object, [spans] a summary object. *)

val summary : Json.t -> string
(** Human terminal rendering of a report document: meta lines, notable
    counters, histogram quantiles, span category totals, and any
    [run]/[solver] sections it finds. *)
