module Json = Json
module Clock = Clock
module Metrics = Metrics
module Span = Span
module Chrome = Chrome
module Report = Report
module Flight = Flight
module Anomaly = Anomaly
module Slo = Slo
module Expo = Expo

type t = {
  on : bool;
  metrics : Metrics.t;
  spans : Span.t;
  flight : Flight.t;
  anomaly : Anomaly.t;
}

let create ?(flight = Flight.disabled) ?(anomaly = Anomaly.disabled) () =
  {
    on = true;
    metrics = Metrics.create ~enabled:true;
    spans = Span.create ~enabled:true;
    flight;
    anomaly;
  }

let disabled =
  {
    on = false;
    metrics = Metrics.disabled;
    spans = Span.disabled;
    flight = Flight.disabled;
    anomaly = Anomaly.disabled;
  }

let enabled t = t.on

let metrics t = t.metrics

let spans t = t.spans

let flight t = t.flight

let anomaly t = t.anomaly

let scope t ~labels =
  if not t.on then t else { t with metrics = Metrics.scope t.metrics ~labels }

let set_clock t clock =
  Span.set_clock t.spans clock;
  Flight.set_clock t.flight clock

let now t = Span.now t.spans
