module Json = Json
module Clock = Clock
module Metrics = Metrics
module Span = Span
module Chrome = Chrome
module Report = Report

type t = { on : bool; metrics : Metrics.t; spans : Span.t }

let create () = { on = true; metrics = Metrics.create ~enabled:true; spans = Span.create ~enabled:true }

let disabled = { on = false; metrics = Metrics.disabled; spans = Span.disabled }

let enabled t = t.on

let metrics t = t.metrics

let spans t = t.spans

let set_clock t clock = Span.set_clock t.spans clock

let now t = Span.now t.spans
