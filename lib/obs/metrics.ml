type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  buckets : int array;  (** 4 sub-buckets per octave, exponents clamped to [-40,39] *)
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type instrument = C of counter | G of gauge | H of histogram

type t = {
  enabled : bool;
  table : (string, instrument) Hashtbl.t;
  scope_labels : (string * string) list;
      (** appended to the labels of every instrument created through this
          handle; scoped handles share [table] with their parent *)
}

let create ~enabled =
  { enabled; table = Hashtbl.create (if enabled then 64 else 1); scope_labels = [] }

let disabled = create ~enabled:false

let is_enabled t = t.enabled

let scope t ~labels =
  if not t.enabled then t else { t with scope_labels = t.scope_labels @ labels }

(* Dummy instruments handed out by a disabled registry: recording into
   them is harmless and they are never exported. *)
let dummy_counter = { c = 0 }

let dummy_gauge = { g = 0.0 }

let dummy_histogram = { buckets = [| 0 |]; count = 0; sum = 0.0; lo = 0.0; hi = 0.0 }

let canonical_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      List.sort compare labels
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ","

let key t name labels =
  match canonical_labels (t.scope_labels @ labels) with
  | "" -> name
  | l -> name ^ "{" ^ l ^ "}"

let sub_octaves = 4

let min_exp = -40 (* smallest tracked value ~ 2^-41 *)

let num_exp = 80

let num_buckets = num_exp * sub_octaves

(* gamma = 2^(1/4); boundaries of the sub-buckets inside one octave of
   the mantissa range [0.5, 1). *)
let gamma = Float.exp (Float.log 2.0 /. float_of_int sub_octaves)

let sub_bound_1 = 0.5 *. gamma

let sub_bound_2 = 0.5 *. gamma *. gamma

let sub_bound_3 = 0.5 *. gamma *. gamma *. gamma

let bucket_index v =
  let m, e = Float.frexp v in
  let e = if e < min_exp then min_exp else if e >= min_exp + num_exp then min_exp + num_exp - 1 else e in
  let sub =
    if m < sub_bound_1 then 0 else if m < sub_bound_2 then 1 else if m < sub_bound_3 then 2 else 3
  in
  ((e - min_exp) * sub_octaves) + sub

(* Geometric midpoint of bucket [i]'s value range. *)
let bucket_mid i =
  let e = (i / sub_octaves) + min_exp in
  let sub = i mod sub_octaves in
  let lo = Float.ldexp (0.5 *. (gamma ** float_of_int sub)) e in
  lo *. Float.sqrt gamma

let counter t ?(labels = []) name =
  if not t.enabled then dummy_counter
  else
    let k = key t name labels in
    match Hashtbl.find_opt t.table k with
    | Some (C c) -> c
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a counter" k)
    | None ->
        let c = { c = 0 } in
        Hashtbl.add t.table k (C c);
        c

let gauge t ?(labels = []) name =
  if not t.enabled then dummy_gauge
  else
    let k = key t name labels in
    match Hashtbl.find_opt t.table k with
    | Some (G g) -> g
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a gauge" k)
    | None ->
        let g = { g = 0.0 } in
        Hashtbl.add t.table k (G g);
        g

let histogram t ?(labels = []) name =
  if not t.enabled then dummy_histogram
  else
    let k = key t name labels in
    match Hashtbl.find_opt t.table k with
    | Some (H h) -> h
    | Some _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a histogram" k)
    | None ->
        let h =
          { buckets = Array.make num_buckets 0; count = 0; sum = 0.0; lo = infinity; hi = neg_infinity }
        in
        Hashtbl.add t.table k (H h);
        h

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

let set g v = g.g <- v

let gauge_max g v = if v > g.g then g.g <- v

let gauge_value g = g.g

let observe h v =
  h.count <- h.count + 1;
  if Float.is_finite v && v > 0.0 then begin
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let i = bucket_index v in
    if Array.length h.buckets > i then h.buckets.(i) <- h.buckets.(i) + 1
  end
  else if v = 0.0 then begin
    (* zeros land in the lowest bucket so they still count for quantiles *)
    if 0.0 < h.lo then h.lo <- 0.0;
    if 0.0 > h.hi then h.hi <- 0.0;
    if Array.length h.buckets > 0 then h.buckets.(0) <- h.buckets.(0) + 1
  end

let hist_count h = h.count

let hist_sum h = h.sum

let bucketed_total h = Array.fold_left ( + ) 0 h.buckets

let quantile h q =
  let total = bucketed_total h in
  if total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = int_of_float (Float.round (q *. float_of_int total)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 and result = ref h.hi in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= target then begin
           result := bucket_mid i;
           raise Exit
         end
       done
     with Exit -> ());
    (* clamp the midpoint estimate into the observed range *)
    let r = !result in
    if h.lo <= h.hi then Float.max h.lo (Float.min h.hi r) else r
  end

let json_of_instrument = function
  | C c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c.c) ]
  | G g -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float g.g) ]
  | H h ->
      let empty = bucketed_total h = 0 in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("min", Json.Float (if empty then 0.0 else h.lo));
          ("max", Json.Float (if empty then 0.0 else h.hi));
          ("p50", Json.Float (quantile h 0.50));
          ("p90", Json.Float (quantile h 0.90));
          ("p99", Json.Float (quantile h 0.99));
        ]

let sorted_entries t =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let to_json t =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_instrument v)) (sorted_entries t))

(* ---------- merged (label-stripped) service-level view ---------- *)

let base_name k = match String.index_opt k '{' with None -> k | Some i -> String.sub k 0 i

let copy_histogram h =
  { buckets = Array.copy h.buckets; count = h.count; sum = h.sum; lo = h.lo; hi = h.hi }

let merge_histogram_into dst src =
  Array.iteri
    (fun i n -> if i < Array.length dst.buckets then dst.buckets.(i) <- dst.buckets.(i) + n)
    src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi

(* Merge instruments sharing a base name (labels stripped): counters sum,
   gauges keep the max, histograms add bucket-wise.  A type clash across
   labels keeps the first (lexicographically smallest) instrument. *)
let merged_entries t =
  let tbl : (string, instrument) Hashtbl.t = Hashtbl.create 64 in
  let names = ref [] in
  List.iter
    (fun (k, v) ->
      let b = base_name k in
      match (Hashtbl.find_opt tbl b, v) with
      | None, C c ->
          Hashtbl.add tbl b (C { c = c.c });
          names := b :: !names
      | None, G g ->
          Hashtbl.add tbl b (G { g = g.g });
          names := b :: !names
      | None, H h ->
          Hashtbl.add tbl b (H (copy_histogram h));
          names := b :: !names
      | Some (C dst), C src -> dst.c <- dst.c + src.c
      | Some (G dst), G src -> if src.g > dst.g then dst.g <- src.g
      | Some (H dst), H src -> merge_histogram_into dst src
      | Some _, _ -> ())
    (sorted_entries t);
  List.sort (fun a b -> String.compare a b) !names
  |> List.map (fun b -> (b, Hashtbl.find tbl b))

let merged_json t =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_instrument v)) (merged_entries t))

(* ---------- flat export (feeds the Prometheus exposition) ---------- *)

type export =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      lo : float;
      hi : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

let export_of_instrument = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h ->
      let empty = bucketed_total h = 0 in
      Histogram
        {
          count = h.count;
          sum = h.sum;
          lo = (if empty then 0.0 else h.lo);
          hi = (if empty then 0.0 else h.hi);
          p50 = quantile h 0.50;
          p90 = quantile h 0.90;
          p99 = quantile h 0.99;
        }

let export_all t = List.map (fun (k, v) -> (k, export_of_instrument v)) (sorted_entries t)

let export_merged t =
  List.map (fun (k, v) -> (k, export_of_instrument v)) (merged_entries t)
