type event = {
  seq : int;
  at : float;
  sub : string;
  name : string;
  args : (string * Json.t) list;
}

type ring = { buf : event option array; mutable next : int }

type t = {
  enabled : bool;
  capacity : int;
  mutable clock : unit -> float;
  mutable seq : int;
  mutable recorded : int;
  mutable evicted : int;
  rings : (string, ring) Hashtbl.t;
}

let create ?(capacity = 256) () =
  {
    enabled = true;
    capacity = (if capacity < 1 then 1 else capacity);
    clock = Clock.now;
    seq = 0;
    recorded = 0;
    evicted = 0;
    rings = Hashtbl.create 8;
  }

let disabled =
  {
    enabled = false;
    capacity = 1;
    clock = (fun () -> 0.0);
    seq = 0;
    recorded = 0;
    evicted = 0;
    rings = Hashtbl.create 1;
  }

let is_enabled t = t.enabled

let set_clock t clock = if t.enabled then t.clock <- clock

let ring t sub =
  match Hashtbl.find_opt t.rings sub with
  | Some r -> r
  | None ->
      let r = { buf = Array.make t.capacity None; next = 0 } in
      Hashtbl.add t.rings sub r;
      r

let note t ~sub ?(args = []) name =
  if t.enabled then begin
    let r = ring t sub in
    let slot = r.next mod t.capacity in
    if r.buf.(slot) <> None then t.evicted <- t.evicted + 1;
    r.buf.(slot) <- Some { seq = t.seq; at = t.clock (); sub; name; args };
    r.next <- r.next + 1;
    t.seq <- t.seq + 1;
    t.recorded <- t.recorded + 1
  end

let recorded t = t.recorded

let evicted t = t.evicted

(* All surviving events across the rings, in global [seq] order.  The
   run is single-threaded on virtual time, so the sequence number is a
   causal total order: an event with a smaller seq happened before. *)
let events t =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ r -> Array.iter (function Some e -> acc := e :: !acc | None -> ()) r.buf)
    t.rings;
  List.sort (fun (a : event) (b : event) -> compare a.seq b.seq) !acc

let clear t =
  Hashtbl.reset t.rings;
  t.evicted <- 0

let json_of_event (e : event) =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("t", Json.Float e.at);
       ("sub", Json.String e.sub);
       ("name", Json.String e.name);
     ]
    @ match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let dump t ~at ~trigger ?(detail = "") () =
  let evs = events t in
  let from_t = match evs with [] -> at | e :: _ -> e.at in
  Json.Obj
    [
      ("schema", Json.String "gridsat-flight/1");
      ("trigger", Json.String trigger);
      ("detail", Json.String detail);
      ("at", Json.Float at);
      ("window", Json.Obj [ ("from", Json.Float from_t); ("to", Json.Float at) ]);
      ("recorded", Json.Int t.recorded);
      ("evicted", Json.Int t.evicted);
      ("events", Json.List (List.map json_of_event evs));
    ]

let file_name ~at ~trigger =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-')
      trigger
  in
  Printf.sprintf "FLIGHT-%012.3f-%s.json" at safe
