(** Chrome [trace_event] export.

    Renders a span recorder's contents in the JSON Trace Event Format
    consumed by [chrome://tracing] and Perfetto: complete spans become
    ["ph":"X"] events, instants become ["ph":"i"], timestamps are integer
    microseconds.  Output is deterministic for a deterministic clock, so
    seeded runs export byte-identical traces. *)

val export : ?process_name:string -> Span.t -> Json.t
(** The full trace document:
    [{"displayTimeUnit":"ms","traceEvents":[...]}] with process/thread
    metadata events first. *)

val export_string : ?process_name:string -> Span.t -> string
(** [export] rendered compactly, with a trailing newline. *)

val validate : Json.t -> (unit, string) result
(** Check a document against the trace_event schema subset we emit:
    a [traceEvents] array whose members each carry [name]/[ph]/[ts]
    (strings/numbers as required), ["X"] events a numeric [dur], and
    only known phase codes. *)
