type id = int

type kind = Complete | Instant

type span = {
  sid : id;
  parent : id;
  name : string;
  cat : string;
  tid : int;
  start : float;
  mutable stop : float;
  mutable closed : bool;
  mutable args : (string * Json.t) list;
  kind : kind;
}

type t = {
  enabled : bool;
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable recorded : span list;  (** newest first *)
  mutable count : int;
  mutable dropped : int;
  by_id : (id, span) Hashtbl.t;
}

let none = 0

let run_tid = 0

let master_tid = 1000

let capacity = 200_000

let create ~enabled =
  {
    enabled;
    clock = Clock.now;
    next_id = 1;
    recorded = [];
    count = 0;
    dropped = 0;
    by_id = Hashtbl.create (if enabled then 256 else 1);
  }

let disabled = create ~enabled:false

let is_enabled t = t.enabled

let set_clock t clock = t.clock <- clock

let now t = t.clock ()

let record t ~kind ?(parent = none) ?(args = []) ?(tid = run_tid) ~cat name =
  if not t.enabled then none
  else if t.count >= capacity then begin
    t.dropped <- t.dropped + 1;
    none
  end
  else begin
    let sid = t.next_id in
    t.next_id <- sid + 1;
    let start = t.clock () in
    let s = { sid; parent; name; cat; tid; start; stop = start; closed = kind = Instant; args; kind } in
    t.recorded <- s :: t.recorded;
    t.count <- t.count + 1;
    Hashtbl.replace t.by_id sid s;
    sid
  end

let enter t ?parent ?args ?tid ~cat name = record t ~kind:Complete ?parent ?args ?tid ~cat name

let instant t ?parent ?args ?tid ~cat name = record t ~kind:Instant ?parent ?args ?tid ~cat name

let exit t ?(args = []) sid =
  if t.enabled && sid <> none then
    match Hashtbl.find_opt t.by_id sid with
    | Some s when s.kind = Complete && not s.closed ->
        s.stop <- Float.max s.start (t.clock ());
        s.closed <- true;
        if args <> [] then s.args <- s.args @ args
    | _ -> ()

let spans t = List.rev t.recorded

let count t = t.count

let dropped t = t.dropped

let find t sid = if sid = none then None else Hashtbl.find_opt t.by_id sid

let json_of_span s =
  let base =
    [
      ("sid", Json.Int s.sid);
      ("parent", Json.Int s.parent);
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("tid", Json.Int s.tid);
      ("start", Json.Float s.start);
      ("kind", Json.String (match s.kind with Complete -> "complete" | Instant -> "instant"));
    ]
  in
  let base = if s.kind = Complete then base @ [ ("dur", Json.Float (s.stop -. s.start)) ] else base in
  let base = if s.args = [] then base else base @ [ ("args", Json.Obj s.args) ] in
  Json.Obj base

let to_json t = Json.List (List.map json_of_span (spans t))
