type trigger = {
  at : float;
  rule : string;
  value : float;
  threshold : float;
  detail : string;
}

type t = {
  enabled : bool;
  mutable handlers : (trigger -> unit) list;
  mutable fired : trigger list;  (** newest first *)
}

let create () = { enabled = true; handlers = []; fired = [] }

let disabled = { enabled = false; handlers = []; fired = [] }

let is_enabled t = t.enabled

let on_trigger t f = if t.enabled then t.handlers <- t.handlers @ [ f ]

let trip t ~at ~rule ?(value = 0.0) ?(threshold = 0.0) ?(detail = "") () =
  if t.enabled then begin
    let tr = { at; rule; value; threshold; detail } in
    t.fired <- tr :: t.fired;
    List.iter (fun f -> f tr) t.handlers
  end

let triggers t = List.rev t.fired

let json_of_trigger tr =
  Json.Obj
    [
      ("at", Json.Float tr.at);
      ("rule", Json.String tr.rule);
      ("value", Json.Float tr.value);
      ("threshold", Json.Float tr.threshold);
      ("detail", Json.String tr.detail);
    ]

let to_json t = Json.List (List.map json_of_trigger (triggers t))

(* ---------- streaming detectors ---------- *)

type detector = {
  owner : t;
  name : string;
  alpha : float;
  z : float;
  min_n : int;
  cooldown : float;
  direction : [ `High | `Low | `Both ];
  mutable n : int;
  mutable mean : float;
  mutable dev : float;  (** EWMA of |x - mean|, a robust spread estimate *)
  mutable last_fire : float;
}

let inert_detector =
  {
    owner = disabled;
    name = "";
    alpha = 0.0;
    z = 0.0;
    min_n = 0;
    cooldown = 0.0;
    direction = `Both;
    n = 0;
    mean = 0.0;
    dev = 0.0;
    last_fire = 0.0;
  }

let detector t ~name ?(alpha = 0.2) ?(z = 4.0) ?(min_n = 8) ?(cooldown = 30.0)
    ?(direction = `Both) () =
  if not t.enabled then inert_detector
  else
    {
      owner = t;
      name;
      alpha;
      z;
      min_n;
      cooldown;
      direction;
      n = 0;
      mean = 0.0;
      dev = 0.0;
      last_fire = neg_infinity;
    }

let eps = 1e-9

let observe d ~at x =
  if d.owner.enabled then begin
    (* score against the state *before* folding x in, so a step change is
       judged against the established baseline *)
    if d.n >= d.min_n && at >= d.last_fire +. d.cooldown then begin
      let spread = d.dev +. eps in
      let score = (x -. d.mean) /. spread in
      let out =
        match d.direction with
        | `High -> score >= d.z
        | `Low -> score <= -.d.z
        | `Both -> Float.abs score >= d.z
      in
      if out then begin
        d.last_fire <- at;
        trip d.owner ~at ~rule:d.name ~value:x ~threshold:d.z
          ~detail:
            (Printf.sprintf "z=%.2f mean=%.6g dev=%.6g" score d.mean d.dev)
          ()
      end
    end;
    if d.n = 0 then begin
      d.mean <- x;
      d.dev <- 0.0
    end
    else begin
      d.mean <- d.mean +. (d.alpha *. (x -. d.mean));
      d.dev <- d.dev +. (d.alpha *. (Float.abs (x -. d.mean) -. d.dev))
    end;
    d.n <- d.n + 1
  end
