(* Prometheus-style text exposition of a metrics registry.

   Instrument names like "service.jobs.completed" become
   "service_jobs_completed"; labels survive as {k="v",...}; histograms
   render as summaries (quantile series plus _sum/_count).  Output is
   sorted and uses the canonical float representation, so the same
   registry state always renders the same bytes. *)

let sanitize name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* Split a registry key "name{k=v,k2=v2}" back into name + label pairs. *)
let split_key k =
  match String.index_opt k '{' with
  | None -> (k, [])
  | Some i ->
      let name = String.sub k 0 i in
      let inner = String.sub k (i + 1) (String.length k - i - 2) in
      let labels =
        String.split_on_char ',' inner
        |> List.filter_map (fun pair ->
               match String.index_opt pair '=' with
               | None -> None
               | Some j ->
                   Some
                     ( String.sub pair 0 j,
                       String.sub pair (j + 1) (String.length pair - j - 1) ))
      in
      (name, labels)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             labels)
      ^ "}"

let num f = Json.float_repr f

let render_exports exports =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (key, export) ->
      let raw_name, labels = split_key key in
      let name = sanitize raw_name in
      match export with
      | Metrics.Counter v ->
          type_line name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (render_labels labels) v)
      | Metrics.Gauge v ->
          type_line name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels labels) (num v))
      | Metrics.Histogram h ->
          type_line name "summary";
          let q quantile v =
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name
                 (render_labels (labels @ [ ("quantile", quantile) ]))
                 (num v))
          in
          q "0.5" h.p50;
          q "0.9" h.p90;
          q "0.99" h.p99;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels) (num h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) h.count))
    exports;
  Buffer.contents buf

let render metrics = render_exports (Metrics.export_all metrics)

let render_merged metrics = render_exports (Metrics.export_merged metrics)
