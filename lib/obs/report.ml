let schema = "gridsat-report/1"

let span_summary spans =
  let cats : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
      let n, dur =
        match Hashtbl.find_opt cats s.cat with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0.0) in
            Hashtbl.add cats s.cat cell;
            cell
      in
      incr n;
      if s.kind = Span.Complete then dur := !dur +. (s.stop -. s.start))
    spans;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cats [] in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  List.map
    (fun (cat, (n, dur)) ->
      (cat, Json.Obj [ ("count", Json.Int !n); ("seconds", Json.Float !dur) ]))
    entries

let build ?(meta = []) ?(sections = []) ~metrics ~spans () =
  let span_obj =
    Json.Obj
      (( "count", Json.Int (Span.count spans) )
      :: ("dropped", Json.Int (Span.dropped spans))
      :: [ ("by_category", Json.Obj (span_summary (Span.spans spans))) ])
  in
  Json.Obj
    ([ ("schema", Json.String schema); ("meta", Json.Obj meta) ]
    @ [ ("metrics", Metrics.to_json metrics); ("spans", span_obj) ]
    @ sections)

let validate doc =
  match Json.member "schema" doc with
  | Some (Json.String s) when s = schema -> (
      match (Json.member "metrics" doc, Json.member "spans" doc) with
      | Some (Json.Obj _), Some (Json.Obj _) -> Ok ()
      | Some (Json.Obj _), _ -> Error "spans is not an object"
      | _, _ -> Error "metrics is not an object")
  | Some (Json.String s) -> Error (Printf.sprintf "unrecognised schema %S (expected %S)" s schema)
  | Some _ -> Error "schema tag is not a string"
  | None -> Error "missing schema tag"

(* ---------- human summary ---------- *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let scalar_to_string = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Json.float_repr f
  | Json.String s -> s
  | (Json.List _ | Json.Obj _) as v -> Json.to_string v

let summary doc =
  let buf = Buffer.create 1024 in
  buf_addf buf "gridsat run report\n";
  (match Json.member "meta" doc with
  | Some (Json.Obj meta) when meta <> [] ->
      List.iter (fun (k, v) -> buf_addf buf "  %-22s %s\n" k (scalar_to_string v)) meta
  | _ -> ());
  (match Json.member "run" doc with
  | Some (Json.Obj run) ->
      buf_addf buf "run:\n";
      List.iter (fun (k, v) -> buf_addf buf "  %-22s %s\n" k (scalar_to_string v)) run
  | _ -> ());
  (match Json.member "solver" doc with
  | Some (Json.Obj solver) ->
      buf_addf buf "solver totals:\n";
      List.iter (fun (k, v) -> buf_addf buf "  %-22s %s\n" k (scalar_to_string v)) solver
  | _ -> ());
  (match Json.member "metrics" doc with
  | Some (Json.Obj metrics) when metrics <> [] ->
      buf_addf buf "metrics (%d instruments):\n" (List.length metrics);
      List.iter
        (fun (name, v) ->
          match Json.member "type" v with
          | Some (Json.String "counter") | Some (Json.String "gauge") ->
              let value = Option.value ~default:Json.Null (Json.member "value" v) in
              buf_addf buf "  %-38s %s\n" name (scalar_to_string value)
          | Some (Json.String "histogram") ->
              let f k = Option.value ~default:Json.Null (Json.member k v) in
              buf_addf buf "  %-38s n=%s p50=%s p90=%s p99=%s max=%s\n" name
                (scalar_to_string (f "count"))
                (scalar_to_string (f "p50"))
                (scalar_to_string (f "p90"))
                (scalar_to_string (f "p99"))
                (scalar_to_string (f "max"))
          | _ -> buf_addf buf "  %-38s %s\n" name (Json.to_string v))
        metrics
  | _ -> buf_addf buf "metrics: (none recorded)\n");
  (match Json.member "spans" doc with
  | Some spans ->
      let count = Option.value ~default:Json.Null (Json.member "count" spans) in
      let dropped = Option.value ~default:(Json.Int 0) (Json.member "dropped" spans) in
      buf_addf buf "spans: %s recorded, %s dropped\n" (scalar_to_string count)
        (scalar_to_string dropped);
      (match Json.member "by_category" spans with
      | Some (Json.Obj cats) ->
          List.iter
            (fun (cat, v) ->
              let f k = Option.value ~default:Json.Null (Json.member k v) in
              buf_addf buf "  %-22s count=%s seconds=%s\n" cat
                (scalar_to_string (f "count"))
                (scalar_to_string (f "seconds")))
            cats
      | _ -> ())
  | None -> ());
  (match Json.member "timeline" doc with
  | Some tl ->
      let f k = Option.value ~default:Json.Null (Json.member k tl) in
      buf_addf buf "timeline: peak=%s avg=%s client_seconds=%s\n"
        (scalar_to_string (f "peak"))
        (scalar_to_string (f "average"))
        (scalar_to_string (f "client_seconds"))
  | None -> ());
  Buffer.contents buf
