(** Monotonic process clock.

    [Sys.time] can stall or (across some runtimes) regress slightly; every
    timing site in the tree reads this helper instead so solver timing,
    span timestamps and bench snapshots share one non-decreasing time
    base. *)

val now : unit -> float
(** Seconds of CPU time since process start, clamped to be
    non-decreasing across calls. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [max 0. (now () -. t0)]. *)
