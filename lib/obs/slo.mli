(** Per-tenant service-level objectives: rolling error budgets and
    multi-window burn-rate alerts over the job stream.

    Spec grammar (semicolon-separated tenant clauses, comma-separated
    targets, ['*'] as the wildcard tenant):

    {v
    spec       := tenant-slo (';' tenant-slo)*
    tenant-slo := tenant ':' target (',' target)*
    tenant     := '*' | name
    target     := 'queue_wait' '<' seconds ['@' objective]
                | 'solve'      '<' seconds ['@' objective]
                | 'errors'     '<' fraction
    v}

    e.g. ["*:queue_wait<30@0.9,solve<120@0.95,errors<0.05;batch:solve<600"].

    [queue_wait]/[solve] targets default to objective 0.9 (90% of jobs
    under the bound); [errors<f] is shorthand for objective [1-f] on the
    terminal-outcome stream.  Each (tenant, target) pair tracks a
    good/bad event stream; burn rate over a window is
    [bad_fraction / (1 - objective)] (1.0 = burning exactly the budget).
    A fast-burn alert fires when both the short and long windows burn
    past the threshold, the multi-window guard against one-off noise. *)

type spec

val parse : string -> (spec, string) result

val spec_string : spec -> string
(** The raw spec text the value was parsed from. *)

type t

val create : ?window_short:float -> ?window_long:float -> ?fast_burn:float -> spec -> t
(** Rolling windows default to 60s/600s of virtual time; [fast_burn]
    (default 6.0) is the burn-rate both windows must exceed to alert. *)

val spec : t -> spec

val on_fast_burn : t -> (tenant:string -> target:string -> burn:float -> unit) -> unit
(** Register an alert handler; called once per (tenant, target) edge
    into the fast-burning state (re-armed when burn drops back). *)

val note_queue_wait : t -> now:float -> tenant:string -> float -> unit
(** A job left the queue after waiting this many (virtual) seconds. *)

val note_solved : t -> now:float -> tenant:string -> float -> unit
(** A job reached a verdict with this end-to-end latency: a sample for
    [solve] targets and a good event for [errors] targets. *)

val note_error : t -> now:float -> tenant:string -> unit
(** A job ended without a verdict (deadline, shed, cancel): a bad event
    for [errors] targets. *)

val to_json : t -> now:float -> Json.t
(** The run report's ["slo"] section: per (tenant, target) totals,
    cumulative budget burn, and both window burn rates. *)

val summary : t -> now:float -> string
(** Human-oriented one-line-per-objective rendering. *)
